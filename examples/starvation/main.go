// Starvation: reproduce the paper's Example 1 / Figure 1 scenario — a
// thread with frequent last-level cache misses runs together with a
// compute-bound thread under plain SOE, and nearly starves; sweeping
// the fairness target F shows the throughput/fairness tradeoff.
//
// The paper's headline observation: without enforcement, over a third
// of runs leave one thread 10-100x slower than its single-thread
// performance while the other is hardly affected.
package main

import (
	"fmt"
	"log"

	"soemt"
)

func main() {
	scale := soemt.QuickScale()
	victim := soemt.MustProfile("swim") // memory-bound: misses constantly
	hog := soemt.MustProfile("galgel")  // cache-resident: almost never misses

	ipcST := make([]float64, 2)
	for i, p := range []soemt.Profile{victim, hog} {
		res, err := soemt.RunSingle(soemt.DefaultMachine(),
			soemt.ThreadSpec{Profile: p, Slot: i}, scale)
		if err != nil {
			log.Fatal(err)
		}
		ipcST[i] = res.Threads[0].IPC
	}
	fmt.Printf("single-thread: %s %.3f IPC, %s %.3f IPC\n\n",
		victim.Name, ipcST[0], hog.Name, ipcST[1])
	fmt.Printf("%-8s %10s %10s %10s %10s %9s\n",
		"F", victim.Name, hog.Name, "slowdown", "slowdown", "fairness")

	for _, f := range []float64{0, 0.25, 0.5, 1} {
		machine := soemt.DefaultMachine()
		if f > 0 {
			machine.Controller.Policy = soemt.Fairness{F: f}
		}
		res, err := soemt.Run(soemt.Spec{
			Machine: machine,
			Threads: []soemt.ThreadSpec{
				{Profile: victim, Slot: 0},
				{Profile: hog, Slot: 1},
			},
			Scale: scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		sp := soemt.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, ipcST)
		fmt.Printf("%-8.2f %10.3f %10.3f %9.1fx %9.1fx %9.3f\n",
			f, res.Threads[0].IPC, res.Threads[1].IPC,
			1/sp[0], 1/sp[1], soemt.FairnessMetric(sp))
	}
	fmt.Println("\ncolumns 2-3: per-thread SOE IPC; slowdowns vs single thread; Eq. 4 fairness")
}
