// Quickstart: run two workloads under SOE multithreading with and
// without fairness enforcement and compare throughput and fairness.
package main

import (
	"fmt"
	"log"

	"soemt"
)

func main() {
	scale := soemt.QuickScale()

	// Single-thread references (the paper's IPC_ST).
	var ipcST []float64
	for slot, name := range []string{"gcc", "eon"} {
		res, err := soemt.RunSingle(soemt.DefaultMachine(),
			soemt.ThreadSpec{Profile: soemt.MustProfile(name), Slot: slot}, scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s alone: IPC %.3f\n", name, res.Threads[0].IPC)
		ipcST = append(ipcST, res.Threads[0].IPC)
	}

	// SOE runs at F = 0 (no enforcement) and F = 1/2.
	run := func(label string, f float64) {
		machine := soemt.DefaultMachine()
		if f > 0 {
			machine.Controller.Policy = soemt.Fairness{F: f}
		} else {
			machine.Controller.Policy = soemt.EventOnly{}
		}
		res, err := soemt.Run(soemt.Spec{
			Machine: machine,
			Threads: []soemt.ThreadSpec{
				{Profile: soemt.MustProfile("gcc"), Slot: 0},
				{Profile: soemt.MustProfile("eon"), Slot: 1},
			},
			Scale: scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		sp := soemt.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, ipcST)
		fmt.Printf("\n%s\n", label)
		fmt.Printf("  total IPC %.3f (gcc %.3f + eon %.3f)\n",
			res.IPCTotal, res.Threads[0].IPC, res.Threads[1].IPC)
		fmt.Printf("  speedups: gcc %.2f, eon %.2f -> fairness %.3f\n",
			sp[0], sp[1], soemt.FairnessMetric(sp))
		fmt.Printf("  switches: %d on misses, %d forced\n",
			res.Switches.Miss, res.Switches.Forced())
	}
	run("SOE, no fairness (F=0)", 0)
	run("SOE, fairness F=1/2", 0.5)
}
