// Timesharing: compare OS-style time sharing against the paper's
// fairness mechanism in simulation (§6 discussion). Small time-share
// quotas buy fairness with heavy switching; large quotas keep
// throughput but lose fairness. The mechanism reaches its fairness
// target with far fewer forced switches.
package main

import (
	"fmt"
	"log"

	"soemt"
)

func main() {
	scale := soemt.QuickScale()
	threads := func() []soemt.ThreadSpec {
		return []soemt.ThreadSpec{
			{Profile: soemt.MustProfile("gcc"), Slot: 0},
			{Profile: soemt.MustProfile("eon"), Slot: 1},
		}
	}

	var ipcST []float64
	for slot, name := range []string{"gcc", "eon"} {
		res, err := soemt.RunSingle(soemt.DefaultMachine(),
			soemt.ThreadSpec{Profile: soemt.MustProfile(name), Slot: slot}, scale)
		if err != nil {
			log.Fatal(err)
		}
		ipcST = append(ipcST, res.Threads[0].IPC)
	}

	report := func(label string, res *soemt.Result) {
		sp := soemt.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, ipcST)
		fmt.Printf("%-24s IPC %.3f  fairness %.3f  switches/1k %.2f\n",
			label, res.IPCTotal, soemt.FairnessMetric(sp),
			float64(res.Switches.Miss+res.Switches.Forced())/float64(res.WallCycles)*1000)
	}

	for _, quota := range []float64{400, 2000, 10000} {
		machine := soemt.DefaultMachine()
		machine.Controller.Policy = soemt.TimeShare{QuotaCycles: quota}
		res, err := soemt.Run(soemt.Spec{Machine: machine, Threads: threads(), Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("time share %5.0f cycles", quota), res)
	}

	for _, f := range []float64{0.5, 1} {
		machine := soemt.DefaultMachine()
		machine.Controller.Policy = soemt.Fairness{F: f}
		res, err := soemt.Run(soemt.Spec{Machine: machine, Threads: threads(), Scale: scale})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("mechanism F=%.2g", f), res)
	}

	machine := soemt.DefaultMachine()
	res, err := soemt.Run(soemt.Spec{Machine: machine, Threads: threads(), Scale: scale})
	if err != nil {
		log.Fatal(err)
	}
	report("event-only (F=0)", res)
}
