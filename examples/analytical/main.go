// Analytical: use the paper's closed-form model (Section 2) to explore
// fairness/throughput tradeoffs without running the simulator — the
// paper's Example 2 plus a custom design-space sweep.
package main

import (
	"fmt"
	"log"

	"soemt"
)

func main() {
	// The paper's Example 2 system.
	sys := soemt.Example2()
	fmt.Println("Example 2: IPC_no_miss=2.5 both, IPM=[15000,1000], Miss_lat=300, Switch_lat=25")
	fmt.Printf("%-6s %9s %9s %9s %9s %9s %9s\n",
		"F", "IPSw1", "IPSw2", "slow1", "slow2", "fairness", "IPC")
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p, err := sys.Predict(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f %9.0f %9.0f %9.2f %9.2f %9.2f %9.3f\n",
			f, p.IPSw[0], p.IPSw[1], p.Slowdown[0], p.Slowdown[1], p.Fairness, p.Total)
	}

	// A custom what-if: how does the fairness/throughput tradeoff move
	// when the fast thread has the higher no-miss IPC? (Fairness
	// enforcement biases execution toward the high-IPC thread and can
	// IMPROVE throughput — the paper's Figure 3 positive band.)
	custom := &soemt.ModelSystem{
		Threads: []soemt.ModelThread{
			{Name: "slow-clean", IPCNoMiss: 2.0, IPM: 15000},
			{Name: "fast-missy", IPCNoMiss: 3.0, IPM: 1000},
		},
		MissLat:   300,
		SwitchLat: 25,
	}
	fmt.Println("\ncustom pair (IPC_no_miss=[2,3], IPM=[15000,1000]): enforcing fairness helps throughput")
	for _, f := range []float64{0, 0.5, 1} {
		p, err := custom.Predict(f)
		if err != nil {
			log.Fatal(err)
		}
		base, _ := custom.Predict(0)
		fmt.Printf("  F=%-4.2f IPC=%.3f (%+.1f%% vs F=0), fairness %.2f\n",
			f, p.Total, (p.Total/base.Total-1)*100, p.Fairness)
	}

	// Time sharing on Example 2 (§6): equal cycle quotas give fairness
	// 0.6 where the mechanism reaches 1.0.
	fair, speedups, err := sys.TimeShareFairness(400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n400-cycle time sharing on Example 2: speedups [%.2f %.2f], fairness %.2f (mechanism: 1.00)\n",
		speedups[0], speedups[1], fair)
}
