// Scheduler: symbiotic job scheduling over SOE (Snavely-style, the
// paper's §1.1 related work). Given a pool of jobs and a two-thread
// SOE processor with the fairness mechanism active, sample every
// pairing, then pick the co-schedule maximizing total weighted speedup
// — first unconstrained, then with a fairness floor.
package main

import (
	"fmt"
	"log"

	"soemt"
	"soemt/internal/core"
	"soemt/internal/sched"
	"soemt/internal/sim"
)

func main() {
	machine := soemt.DefaultMachine()
	machine.Controller.Policy = core.Fairness{F: 0.5}
	scale := sim.Scale{CacheWarm: 100_000, Warm: 80_000, Measure: 300_000, MaxCycles: 60_000_000}

	jobs := []sched.Job{
		{Name: "gcc", Profile: soemt.MustProfile("gcc")},
		{Name: "eon", Profile: soemt.MustProfile("eon")},
		{Name: "swim", Profile: soemt.MustProfile("swim")},
		{Name: "galgel", Profile: soemt.MustProfile("galgel")},
		{Name: "mcf", Profile: soemt.MustProfile("mcf")},
		{Name: "gzip", Profile: soemt.MustProfile("gzip")},
	}

	e, err := sched.NewEvaluator(machine, scale, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampling %d pairings of %d jobs...\n\n", len(jobs)*(len(jobs)-1)/2, len(jobs))
	scores, err := e.ScoreAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %8s %9s %7s\n", "pair", "wspeedup", "fairness", "IPC")
	for _, s := range scores {
		fmt.Printf("%-14s %8.3f %9.3f %7.3f\n",
			jobs[s.A].Name+":"+jobs[s.B].Name, s.WeightedSpeedup, s.Fairness, s.IPC)
	}

	best, err := sched.BestSchedule(scores, len(jobs), sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest schedule (max total weighted speedup %.3f):\n", best.Total)
	for _, p := range best.Pairs {
		fmt.Printf("  %s:%s (ws %.3f, fairness %.3f)\n",
			jobs[p.A].Name, jobs[p.B].Name, p.WeightedSpeedup, p.Fairness)
	}

	floored, err := sched.BestSchedule(scores, len(jobs), sched.Options{MinFairness: 0.4})
	if err != nil {
		fmt.Printf("\nwith fairness floor 0.4: %v\n", err)
		return
	}
	fmt.Printf("\nwith fairness floor 0.4 (total %.3f):\n", floored.Total)
	for _, p := range floored.Pairs {
		fmt.Printf("  %s:%s (ws %.3f, fairness %.3f)\n",
			jobs[p.A].Name, jobs[p.B].Name, p.WeightedSpeedup, p.Fairness)
	}
}
