// Command soetrace generates, inspects and characterises LIT-like
// workload traces.
//
// Usage:
//
//	soetrace -list
//	    List the built-in SPEC-like workload profiles.
//
//	soetrace -characterize [-bench name] [-measure N]
//	    Run workloads alone on the simulated machine and report the
//	    characteristics the paper's model consumes: single-thread IPC,
//	    instructions per miss (IPM) and cycles per miss (CPM).
//
//	soetrace -gen name -o file.lit [-start N] [-slot K] [-events M]
//	    Write a trace container for the named profile, optionally with
//	    M synthetic interrupt/DMA events.
//
//	soetrace -show file.lit
//	    Decode and print a trace container.
package main

import (
	"flag"
	"fmt"
	"os"

	"soemt/internal/rng"
	"soemt/internal/sim"
	"soemt/internal/stats"
	"soemt/internal/trace"
	"soemt/internal/workload"
)

func main() {
	var (
		list         = flag.Bool("list", false, "list built-in workload profiles")
		characterize = flag.Bool("characterize", false, "measure single-thread characteristics")
		benchName    = flag.String("bench", "", "restrict to one profile")
		measure      = flag.Uint64("measure", 400_000, "measured instructions per characterisation run")
		gen          = flag.String("gen", "", "generate a trace for the named profile")
		out          = flag.String("o", "", "output file for -gen")
		start        = flag.Uint64("start", 0, "checkpoint start sequence for -gen")
		slot         = flag.Uint("slot", 0, "address-space slot for -gen")
		events       = flag.Int("events", 0, "number of synthetic injectable events for -gen")
		show         = flag.String("show", "", "decode and print a trace file")
	)
	flag.Parse()

	switch {
	case *list:
		for _, n := range workload.Names() {
			p := workload.MustByName(n)
			fmt.Printf("%-8s load=%.2f store=%.2f branch=%.2f PCold=%.5f chain=%.2f\n",
				n, p.FracLoad, p.FracStore, p.FracBranch, p.PCold, p.ChainFrac)
		}
	case *characterize:
		if err := runCharacterize(*benchName, *measure); err != nil {
			fatal(err)
		}
	case *gen != "":
		if err := runGen(*gen, *out, *start, uint32(*slot), *events); err != nil {
			fatal(err)
		}
	case *show != "":
		if err := runShow(*show); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soetrace:", err)
	os.Exit(1)
}

func runCharacterize(only string, measure uint64) error {
	names := workload.Names()
	if only != "" {
		names = []string{only}
	}
	scale := sim.Scale{
		CacheWarm: measure / 2,
		Warm:      measure / 4,
		Measure:   measure,
		MaxCycles: 2000 * measure,
	}
	tbl := stats.NewTable("profile", "IPC_ST", "IPM", "CPM", "est IPC_ST", "misses")
	for _, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			return fmt.Errorf("unknown profile %q", n)
		}
		res, err := sim.RunSingle(sim.DefaultMachine(), sim.ThreadSpec{Profile: p, Slot: 0}, scale)
		if err != nil {
			return err
		}
		tr := res.Threads[0]
		tbl.AddRowf(n, tr.IPC, fmt.Sprintf("%.0f", tr.IPM), fmt.Sprintf("%.0f", tr.CPM),
			tr.EstIPCST, fmt.Sprintf("%d", tr.Counters.Misses))
	}
	fmt.Print(tbl.String())
	return nil
}

func runGen(name, out string, start uint64, slot uint32, nEvents int) error {
	if out == "" {
		return fmt.Errorf("-gen requires -o")
	}
	p, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown profile %q", name)
	}
	tr := &trace.Trace{
		Profile:    p,
		Checkpoint: trace.Checkpoint{StartSeq: start, Slot: slot},
	}
	s := rng.NewStream(p.Seed ^ 0xE7E7)
	at := start
	for i := 0; i < nEvents; i++ {
		at += 50_000 + uint64(s.Intn(100_000))
		tr.Events = append(tr.Events, trace.Event{
			AtInstr:     at,
			Kind:        trace.EventKind(s.Intn(3)),
			StallCycles: uint32(1000 + s.Intn(5000)),
		})
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.Encode(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: profile=%s start=%d slot=%d events=%d\n",
		out, name, start, slot, len(tr.Events))
	return nil
}

func runShow(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		return err
	}
	fmt.Printf("profile:    %s (seed %#x)\n", tr.Profile.Name, tr.Profile.Seed)
	fmt.Printf("checkpoint: seq=%d slot=%d\n", tr.Checkpoint.StartSeq, tr.Checkpoint.Slot)
	fmt.Printf("mix:        load=%.2f store=%.2f branch=%.2f\n",
		tr.Profile.FracLoad, tr.Profile.FracStore, tr.Profile.FracBranch)
	fmt.Printf("memory:     PCold=%.5f PWarm=%.3f stride=%.2f cold=%dMiB\n",
		tr.Profile.PCold, tr.Profile.PWarm, tr.Profile.StrideFrac, tr.Profile.ColdBytes>>20)
	fmt.Printf("events:     %d\n", len(tr.Events))
	for i, e := range tr.Events {
		if i >= 10 {
			fmt.Printf("  ... %d more\n", len(tr.Events)-10)
			break
		}
		fmt.Printf("  @%-10d %-9s stall=%d\n", e.AtInstr, e.Kind, e.StallCycles)
	}
	return nil
}
