// Command soeproxy is the cluster gateway for a fleet of soeserve
// nodes: it routes submissions by content-addressed fingerprint,
// retries on ring successors when a node or its circuit breaker
// fails, hedges synchronous tier=fast requests against the latency
// tail, and sheds load with deterministic 429/503 + Retry-After.
//
//	soeproxy -addr :8090 -nodes http://n1:8080,http://n2:8080,http://n3:8080
//
//	curl -s localhost:8090/v1/run -d '{"pair":"gcc:eon","f":0.5,"scale":"tiny"}'
//	curl -s localhost:8090/status
//	soeproxy -status -addr localhost:8090
//
// See DESIGN.md §13 for the routing and failure semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"soemt/internal/cli"
	"soemt/internal/cluster"
	"soemt/internal/obs"
	"soemt/internal/proxy"
)

func main() {
	var (
		addr          = flag.String("addr", ":8090", "listen address (or, with -status, the gateway to query)")
		nodes         = flag.String("nodes", "", "comma-separated soeserve base URLs (required unless -status)")
		status        = flag.Bool("status", false, "print the gateway's /status JSON and exit")
		maxAttempts   = flag.Int("retries", 0, "max ring candidates per submission, first attempt included (0 = all)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "fixed latency before hedging a tier=fast request (0 = adaptive p95)")
		maxBody       = flag.Int64("max-body", 1<<20, "max request body bytes (413 beyond)")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "node /healthz probe interval")
		reqTimeout    = flag.Duration("node-timeout", 15*time.Second, "per-node request timeout")
		timeouts      = cli.DefaultHTTPTimeouts()
	)
	timeouts.Flags(flag.CommandLine)
	flag.Parse()

	if *status {
		if err := printStatus(*addr); err != nil {
			fatal(err)
		}
		return
	}
	nodeList := splitNodes(*nodes)
	if len(nodeList) == 0 {
		fatal(errors.New("-nodes is required (comma-separated soeserve URLs)"))
	}

	reg := obs.NewRegistry() // shared: cluster.* and proxy.* side by side on /metrics
	cl, err := cluster.New(cluster.Config{
		Nodes:          nodeList,
		ProbeInterval:  *probeInterval,
		RequestTimeout: *reqTimeout,
		Registry:       reg,
		Logf:           log.Printf,
	})
	if err != nil {
		fatal(err)
	}
	px, err := proxy.New(proxy.Config{
		Cluster:      cl,
		MaxAttempts:  *maxAttempts,
		HedgeAfter:   *hedgeAfter,
		MaxBodyBytes: *maxBody,
		Registry:     reg,
		Logf:         log.Printf,
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	cl.StartProbes(ctx)
	defer cl.StopProbes()

	hs := timeouts.Server(*addr, px.Handler())
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		<-ctx.Done()
		log.Printf("soeproxy: signal received; shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}()

	log.Printf("soeproxy: listening on %s, routing over %d nodes (%s)",
		*addr, len(nodeList), strings.Join(nodeList, ", "))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-stopped
}

func splitNodes(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// printStatus fetches and prints the /status JSON of a running
// gateway; addr accepts ":8090", "host:8090" or a full URL.
func printStatus(addr string) error {
	url := addr
	if strings.HasPrefix(url, ":") {
		url = "127.0.0.1" + url
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := http.Get(url + "/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s from %s/status", resp.Status, url)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soeproxy:", err)
	os.Exit(1)
}
