// soebench runs the standing benchmark suite under all three execution
// engines (event-wheel, idle fast-forward, and the cycle-by-cycle
// reference), taking the median of -iters runs per cell, writes a
// BENCH_<n>.json report, and optionally gates on a committed baseline:
// the per-scenario engine speedup ratios must not regress by more than
// -tolerance. -baseline accepts either a report file or a directory,
// which resolves to its newest BENCH_<n>.json.
//
//	soebench -scale quick -out .              # measure, write BENCH_<n>.json
//	soebench -scale tiny -baseline .          # CI smoke gate vs newest committed report
package main

import (
	"flag"
	"fmt"
	"os"

	"soemt/internal/cli"
	"soemt/internal/perf"
	"soemt/internal/sim"
)

func main() {
	var (
		scaleName = flag.String("scale", "quick", "protocol scale: tiny, quick, paper")
		outDir    = flag.String("out", ".", "directory for the numbered BENCH_<n>.json report")
		outFile   = flag.String("o", "", "exact report path (overrides -out numbering)")
		baseline  = flag.String("baseline", "", "baseline report, or directory holding BENCH_<n>.json files, to gate against (empty = no gate)")
		iters     = flag.Int("iters", 3, "timed runs per scenario/engine cell; the median is reported")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional speedup regression vs baseline")
		minFF     = flag.Float64("min-speedup", 0, "fail unless some scenario's engine speedup reaches this")
		obsRounds = flag.Int("obs-rounds", 3, "best-of rounds for the observability overhead measurement (0 = skip)")
		maxObs    = flag.Float64("max-obs-overhead", 0, "fail if the obs-on/obs-off wall-time ratio exceeds this (0 = no gate)")
	)
	flag.Parse()

	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := cli.SignalContext()
	defer cancel()

	report := perf.NewReport(*scaleName)
	suite := perf.DefaultSuite(scale)
	if err := perf.RunSuite(ctx, report, suite, *iters, func(line string) {
		fmt.Fprintln(os.Stderr, line)
	}); err != nil {
		fatal(err)
	}
	var obsRatio float64
	if *obsRounds > 0 {
		obsRatio, err = perf.MeasureObsOverhead(ctx, report, scale, *obsRounds, func(line string) {
			fmt.Fprintln(os.Stderr, line)
		})
		if err != nil {
			fatal(err)
		}
	}

	path := *outFile
	if path != "" {
		err = report.WriteFile(path)
	} else {
		path, err = report.WriteNumbered(*outDir)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(path)

	if *minFF > 0 {
		best := 0.0
		for _, s := range report.Speedups {
			if s > best {
				best = s
			}
		}
		if best < *minFF {
			fatal(fmt.Errorf("best engine speedup %.2fx below required %.2fx", best, *minFF))
		}
	}
	if *maxObs > 0 && obsRatio > *maxObs {
		fatal(fmt.Errorf("observability overhead ratio %.3f exceeds allowed %.3f", obsRatio, *maxObs))
	}
	if *baseline != "" {
		basePath, err := perf.ResolveBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		base, err := perf.Load(basePath)
		if err != nil {
			fatal(err)
		}
		if err := perf.Compare(report, base, *tolerance); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "baseline gate passed vs %s (tolerance %.0f%%)\n", basePath, *tolerance*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soebench:", err)
	os.Exit(1)
}

func parseScale(s string) (sim.Scale, error) {
	switch s {
	case "tiny":
		return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}, nil
	case "quick":
		return sim.QuickScale(), nil
	case "paper":
		return sim.PaperScale(), nil
	}
	return sim.Scale{}, fmt.Errorf("unknown scale %q", s)
}
