// Command soehyp runs the policy-zoo hypothesis experiments
// (internal/hypotheses): each zoo policy ships with a falsifiable
// hypothesis, a deterministic experiment over pinned workload seeds,
// and a generated FINDINGS_<policy>.md.
//
// Examples:
//
//	soehyp -list                         # registered experiments
//	soehyp -run wfq                      # one experiment, findings to stdout
//	soehyp -all -out hypotheses          # regenerate every committed FINDINGS file
//	soehyp -all -scale quick -check hypotheses
//	                                     # CI smoke: re-run at QuickScale and fail
//	                                     # if any status regressed vs the committed docs
//
// Exit status is 0 only if every selected experiment is SUPPORTED
// (and, with -check, matches the committed status).
package main

import (
	"flag"
	"fmt"
	"os"

	"soemt/internal/cli"
	"soemt/internal/experiments"
	"soemt/internal/hypotheses"
	"soemt/internal/sim"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered experiments and exit")
		runArg   = flag.String("run", "", "run a single experiment by name")
		all      = flag.Bool("all", false, "run every registered experiment")
		scaleArg = flag.String("scale", "tiny", "tiny, quick or paper")
		outDir   = flag.String("out", "", "write FINDINGS_<name>.md files into this directory instead of stdout")
		checkDir = flag.String("check", "", "compare fresh statuses against the committed FINDINGS in this directory; any mismatch or missing marker fails")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (content-addressed; see DESIGN.md)")
	)
	flag.Parse()

	if *list {
		for _, e := range hypotheses.Experiments() {
			fmt.Printf("%-18s policy=%-18s %s\n", e.Name, e.Policy, e.Hypothesis)
		}
		return
	}

	var selected []hypotheses.Experiment
	switch {
	case *runArg != "":
		e, ok := hypotheses.ByName(*runArg)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (try -list)", *runArg))
		}
		selected = []hypotheses.Experiment{e}
	case *all:
		selected = hypotheses.Experiments()
	default:
		flag.Usage()
		os.Exit(2)
	}

	scale, err := parseScale(*scaleArg)
	if err != nil {
		fatal(err)
	}
	cache, err := experiments.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	cache.Logf = func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "soehyp: "+format+"\n", args...)
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	env := hypotheses.Env{Ctx: ctx, ScaleName: *scaleArg, Scale: scale, Cache: cache}
	failed := false
	for _, e := range selected {
		o, err := e.Run(env)
		if err != nil {
			fatal(fmt.Errorf("experiment %s: %w", e.Name, err))
		}
		status := "SUPPORTED"
		if !o.Supported() {
			status = "REFUTED"
			failed = true
		}
		fmt.Fprintf(os.Stderr, "soehyp: %s: %s (scale=%s)\n", e.Name, status, *scaleArg)

		if *outDir != "" {
			path := hypotheses.FindingsPath(*outDir, e.Name)
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := hypotheses.WriteFindings(f, e, env, o); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "soehyp: wrote %s\n", path)
		} else {
			if err := hypotheses.WriteFindings(os.Stdout, e, env, o); err != nil {
				fatal(err)
			}
		}

		if *checkDir != "" {
			path := hypotheses.FindingsPath(*checkDir, e.Name)
			committed, ok := hypotheses.ReadStatus(path)
			switch {
			case !ok:
				fmt.Fprintf(os.Stderr, "soehyp: REGRESSION: %s has no committed status marker\n", path)
				failed = true
			case committed != status:
				fmt.Fprintf(os.Stderr, "soehyp: REGRESSION: %s committed %s but measured %s at scale %s\n",
					e.Name, committed, status, *scaleArg)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func parseScale(s string) (sim.Scale, error) {
	switch s {
	case "tiny":
		return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}, nil
	case "quick":
		return sim.QuickScale(), nil
	case "paper":
		return sim.PaperScale(), nil
	}
	return sim.Scale{}, fmt.Errorf("unknown scale %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soehyp:", err)
	os.Exit(1)
}
