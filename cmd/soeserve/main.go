// Command soeserve exposes the SOE experiment engine as an HTTP
// service: a bounded job queue with backpressure, request coalescing
// on top of the content-addressed result cache, micro-batched
// dispatch into a simulation worker pool, and graceful drain on
// SIGINT/SIGTERM.
//
//	soeserve -addr :8080 -cache-dir /var/cache/soemt
//
//	curl -s localhost:8080/v1/run -d '{"pair":"gcc:eon","f":0.5,"scale":"tiny"}'
//	curl -s localhost:8080/v1/sweep -d '{"pairs":["gcc:eon"],"scale":"tiny"}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/metrics
//
// See DESIGN.md §11 for the architecture and drain semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"soemt/internal/cli"
	"soemt/internal/cluster"
	"soemt/internal/model"
	"soemt/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		queueDepth   = flag.Int("queue", 64, "max accepted-but-unfinished jobs; beyond this, submissions get 429")
		workers      = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		batchSize    = flag.Int("batch", 8, "max jobs per dispatched batch")
		batchDelay   = flag.Duration("batch-delay", 2*time.Millisecond, "max wait to fill a batch after the first job")
		cacheDir     = flag.String("cache-dir", "", "persistent result cache directory (content-addressed; see DESIGN.md)")
		traceCap     = flag.Int("trace-cap", 1<<16, "event-tracer ring capacity for trace-requesting jobs")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max time to finish accepted jobs on shutdown before cancelling them")
		tier         = flag.String("tier", "auto", "default serving tier when requests leave it unset: fast (calibrated model, synchronous), exact (cycle-accurate job), or auto (fast answer + exact refinement)")
		calibration  = flag.String("calibration", "", "calibration table for the fast tier (soesim -calibrate output; default: profile-derived fit with wide error bars)")
		jobRetention = flag.Duration("job-retention", time.Hour, "how long terminal jobs stay queryable on /v1/jobs before eviction (410 Gone); negative keeps them until the size bound")
		maxJobs      = flag.Int("max-jobs", 1024, "max retained terminal jobs regardless of age")
		maxBody      = flag.Int64("max-body", 1<<20, "max request body bytes (413 beyond)")

		nodeName      = flag.String("node-name", "", "this node's name, prefixed onto job ids in cluster deployments")
		self          = flag.String("self", "", "this node's base URL in -peers (required with -peers)")
		peers         = flag.String("peers", "", "comma-separated base URLs of every cluster node including this one; enables the peer cache tier (DESIGN.md §13)")
		peerTimeout   = flag.Duration("peer-timeout", 2*time.Second, "max time for one peer cache fetch before degrading to a local run")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "peer /healthz probe interval")
		timeouts      = cli.DefaultHTTPTimeouts()
	)
	timeouts.Flags(flag.CommandLine)
	flag.Parse()

	var cal *model.Calibration
	if *calibration != "" {
		var err error
		if cal, err = model.LoadCalibration(*calibration); err != nil {
			fatal(err)
		}
		log.Printf("soeserve: fast tier calibrated from %s (%s, bars ±%.1f%% IPC / ±%.2f fairness)",
			*calibration, cal.Source, cal.ErrIPCPc, cal.ErrFairness)
	}
	srv, err := serve.NewServer(serve.Config{
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		BatchSize:       *batchSize,
		BatchDelay:      *batchDelay,
		CacheDir:        *cacheDir,
		TraceCap:        *traceCap,
		DefaultTier:     *tier,
		Calibration:     cal,
		JobRetention:    *jobRetention,
		MaxTerminalJobs: *maxJobs,
		NodeName:        *nodeName,
		MaxBodyBytes:    *maxBody,
		Logf:            log.Printf,
	})
	if err != nil {
		fatal(err)
	}
	cli.NoteResume("soeserve", srv.Cache())

	var cl *cluster.Cluster
	if *peers != "" {
		if *self == "" {
			fatal(errors.New("-peers requires -self (this node's URL in the list)"))
		}
		cl, err = cluster.New(cluster.Config{
			Self:          *self,
			Nodes:         splitPeers(*peers),
			ProbeInterval: *probeInterval,
			Registry:      srv.Observability(),
			Logf:          log.Printf,
		})
		if err != nil {
			fatal(err)
		}
		srv.SetPeers(cl, *peerTimeout)
		log.Printf("soeserve: cluster member %s of %s (peer fill on, timeout %s)", *self, *peers, *peerTimeout)
	}

	// First SIGINT/SIGTERM starts the drain; SignalContext restores the
	// default disposition immediately, so a second signal kills the
	// process if the drain itself wedges.
	ctx, stop := cli.SignalContext()
	defer stop()

	if cl != nil {
		cl.StartProbes(ctx)
		defer cl.StopProbes()
	}

	hs := timeouts.Server(*addr, srv.Handler())
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		log.Printf("soeserve: signal received; draining (deadline %s, signal again to kill)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			log.Printf("soeserve: drain deadline hit; in-flight jobs were interrupted and checkpointed: %v", err)
		} else {
			log.Printf("soeserve: drained cleanly, no accepted job lost")
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		hs.Shutdown(sctx)
	}()

	log.Printf("soeserve: listening on %s (queue=%d workers=%d batch=%d/%s cache=%q)",
		*addr, *queueDepth, *workers, *batchSize, *batchDelay, *cacheDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-drained
}

func splitPeers(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soeserve:", err)
	os.Exit(1)
}
