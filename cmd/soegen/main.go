// Command soegen expands and replays declarative workload specs
// (internal/workload/spec) and fits new specs to recorded traces.
//
// Usage:
//
//	soegen -validate spec.yaml
//	    Parse and validate a spec; exit non-zero with an actionable
//	    error on the first problem.
//
//	soegen -expand spec.yaml [-format table|csv|sweep-json]
//	    Expand the spec into its distinct simulation cells (the
//	    pair/sweep matrix) with the request share each cell carries.
//	    sweep-json emits a /v1/sweep request body of the replayable
//	    pairs.
//
//	soegen -schedule spec.yaml
//	    Print the full deterministic request schedule as CSV.
//	    Identical (spec, seed) always yields byte-identical output.
//
//	soegen -replay spec.yaml -addr http://host:port [-speed X]
//	    Replay the schedule open-loop against a live soeserve or
//	    soeproxy, honoring the 429/503 Retry-After contract, and print
//	    a machine-parsable summary (ok=, rate_limited=, errors=,
//	    distinct_specs=).
//
//	soegen -fit trace.lit -o fitted.yaml [-rate R] [-fit-duration D]
//	    Calibrate a synthetic spec against a recorded trace: fit a
//	    profile matching the trace's IPM / no-miss IPC / CPM and an
//	    arrival process matching its event-gap moments, then write the
//	    fitted spec (inline profile) as YAML.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"soemt/internal/experiments"
	"soemt/internal/serve"
	"soemt/internal/sim"
	"soemt/internal/trace"
	"soemt/internal/workload/spec"
)

func main() {
	var (
		validate = flag.String("validate", "", "spec file to validate")
		expand   = flag.String("expand", "", "spec file to expand into its cell matrix")
		format   = flag.String("format", "table", "expansion format: table, csv or sweep-json")
		schedule = flag.String("schedule", "", "spec file to print as a CSV request schedule")
		replay   = flag.String("replay", "", "spec file to replay against a live endpoint")
		addr     = flag.String("addr", "http://127.0.0.1:8080", "soeserve/soeproxy base URL for -replay")
		speed    = flag.Float64("speed", 1, "replay time compression factor (2 = twice as fast)")
		retries  = flag.Int("max-retries", 8, "max 429/503 bounces per submission during replay")
		fit      = flag.String("fit", "", "trace file to calibrate a synthetic spec against")
		out      = flag.String("o", "", "output file for -fit (default stdout)")
		rate     = flag.Float64("rate", 5, "request rate of the fitted spec (req/s)")
		fitDur   = flag.Duration("fit-duration", 10*time.Second, "duration of the fitted spec")
		fitScale = flag.String("fit-scale", "tiny", "engine scale for calibration runs: tiny, quick or paper")
	)
	flag.Parse()

	var err error
	switch {
	case *validate != "":
		err = runValidate(*validate)
	case *expand != "":
		err = runExpand(*expand, *format)
	case *schedule != "":
		err = runSchedule(*schedule)
	case *replay != "":
		err = runReplay(*replay, *addr, *speed, *retries)
	case *fit != "":
		err = runFit(*fit, *out, *rate, *fitDur, *fitScale)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "soegen:", err)
		os.Exit(1)
	}
}

func load(path string) (*spec.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return spec.Parse(data)
}

func runValidate(path string) error {
	s, err := load(path)
	if err != nil {
		return err
	}
	reqs, err := s.Schedule()
	if err != nil {
		return err
	}
	wire := "replayable over the wire"
	if err := s.Replayable(); err != nil {
		wire = "matrix expansion only (inline profiles or overlays present)"
	}
	fmt.Printf("spec %s: ok — %d clients, %d requests over %v, %s\n",
		s.Name, len(s.Clients), len(reqs), s.Duration, wire)
	return nil
}

func runExpand(path, format string) error {
	s, err := load(path)
	if err != nil {
		return err
	}
	cells, err := s.Matrix()
	if err != nil {
		return err
	}
	switch format {
	case "table":
		fmt.Printf("%-24s %8s %7s %6s %s\n", "CELL", "REQS", "SHARE", "F", "NOTES")
		for _, c := range cells {
			name := c.Pair
			if name == "" {
				name = "bench:" + c.Bench
			}
			notes := ""
			if c.Overlaid {
				notes = "overlaid (local only)"
			}
			fmt.Printf("%-24s %8d %6.1f%% %6g %s\n", name, c.Requests, 100*c.Share, c.F, notes)
		}
	case "csv":
		fmt.Println("pair,bench,f,scale,requests,share,overlaid")
		for _, c := range cells {
			fmt.Printf("%s,%s,%g,%s,%d,%.6f,%v\n",
				c.Pair, c.Bench, c.F, c.Scale, c.Requests, c.Share, c.Overlaid)
		}
	case "sweep-json":
		pairs, skipped, err := s.SweepPairs()
		if err != nil {
			return err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "soegen: %d cell(s) skipped (bench-only or overlaid)\n", skipped)
		}
		body, err := json.MarshalIndent(serve.SweepRequest{Pairs: pairs, Scale: s.ScaleOrDefault()}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(body))
	default:
		return fmt.Errorf("unknown -format %q (want table, csv or sweep-json)", format)
	}
	return nil
}

func runSchedule(path string) error {
	s, err := load(path)
	if err != nil {
		return err
	}
	reqs, err := s.Schedule()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(spec.EncodeSchedule(reqs))
	return err
}

// replayStats aggregates submission outcomes across the dispatch
// goroutines.
type replayStats struct {
	mu          sync.Mutex
	ok          int
	coalesced   int
	rateLimited int
	errors      int
	retries     int
	statuses    map[int]int
}

func (st *replayStats) record(out serve.SubmitOutcome, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.statuses == nil {
		st.statuses = map[int]int{}
	}
	st.retries += out.Retries
	switch {
	case err != nil:
		st.errors++
	case out.Accepted():
		st.ok++
		if out.Coalesced {
			st.coalesced++
		}
		st.statuses[out.Status]++
	case out.Status == 429:
		st.rateLimited++
		st.statuses[out.Status]++
	default:
		st.errors++
		st.statuses[out.Status]++
	}
}

func runReplay(path, addr string, speed float64, maxRetries int) error {
	if speed <= 0 {
		return fmt.Errorf("-speed must be positive, got %v", speed)
	}
	s, err := load(path)
	if err != nil {
		return err
	}
	if err := s.Replayable(); err != nil {
		return err
	}
	reqs, err := s.Schedule()
	if err != nil {
		return err
	}
	distinct := map[string]bool{}
	for _, r := range reqs {
		distinct[r.Key()] = true
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &serve.Client{BaseURL: addr, MaxRetries: maxRetries}
	st := &replayStats{}
	var wg sync.WaitGroup

	fmt.Printf("replaying %s: %d requests (%d distinct specs) over %v at %gx against %s\n",
		s.Name, len(reqs), len(distinct), s.Duration, speed, addr)
	start := time.Now()
	for _, r := range reqs {
		// Open-loop dispatch: fire at the scheduled instant regardless
		// of how earlier submissions fared (slow responses must not
		// throttle offered load — that is the point of open-loop).
		due := time.Duration(float64(r.At) / speed)
		if wait := due - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(wait):
			}
		}
		if ctx.Err() != nil {
			break
		}
		rq := serve.RunRequest{Pair: r.Pair, Bench: r.Bench, F: r.F, Scale: r.Scale, Tier: r.Tier}
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := client.SubmitRun(ctx, rq)
			st.record(out, err)
		}()
	}
	wg.Wait()
	wall := time.Since(start).Round(time.Millisecond)

	st.mu.Lock()
	defer st.mu.Unlock()
	var codes []int
	for c := range st.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Printf("replay %s: requests=%d ok=%d coalesced=%d rate_limited=%d errors=%d retries=%d distinct_specs=%d wall=%v\n",
		s.Name, len(reqs), st.ok, st.coalesced, st.rateLimited, st.errors, st.retries, len(distinct), wall)
	for _, c := range codes {
		fmt.Printf("  status %d: %d\n", c, st.statuses[c])
	}
	if ctx.Err() != nil {
		return fmt.Errorf("interrupted after %v", wall)
	}
	if st.errors > 0 {
		return fmt.Errorf("%d submission(s) ended outside {2xx, 429}", st.errors)
	}
	return nil
}

func scaleByName(name string) (sim.Scale, error) {
	switch name {
	case "tiny":
		return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 200_000, MaxCycles: 40_000_000}, nil
	case "quick":
		return sim.QuickScale(), nil
	case "paper":
		return sim.PaperScale(), nil
	}
	return sim.Scale{}, fmt.Errorf("unknown -fit-scale %q (want tiny, quick or paper)", name)
}

func runFit(tracePath, outPath string, rate float64, dur time.Duration, scaleName string) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		return err
	}
	sc, err := scaleByName(scaleName)
	if err != nil {
		return err
	}
	opts := experiments.DefaultOptions()
	opts.Scale = sc
	r := experiments.NewRunner(opts)

	fit, err := experiments.FitTrace(context.Background(), r, tr)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, fit.Report)
	if !fit.Report.Within() {
		fmt.Fprintln(os.Stderr, "soegen: warning: fit outside tolerance; spec written anyway")
	}
	name := "fitted-" + tr.Profile.Name
	doc := fit.Spec(name, rate, dur).Encode()
	if outPath == "" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(outPath, doc, 0o644)
}
