// Command soesweep runs parameter-sensitivity sweeps on the SOE
// simulator: the fairness target F, the memory latency, the switch
// drain cost, the sampling period Δ, and thread-count scaling.
//
// Examples:
//
//	soesweep -sweep F -pair gcc:eon -points 9
//	soesweep -sweep misslat -pair gcc:eon -values 100,200,300,600
//	soesweep -sweep drain -pair swim:gzip -values 2,6,12,24,48
//	soesweep -sweep delta -pair gcc:eon -values 50000,250000,1000000
//	soesweep -sweep threads -bench swim -max 4
//	soesweep -sweep threads -threads gcc:eon:gzip:crafty -policy grouped-fairness -F 1
//
// Output is an aligned table; -csv switches to CSV for plotting.
// With -cache-dir every simulation result is persisted under a
// content-addressed fingerprint, so repeated sweeps over the same
// configuration are served from disk bit-identically; -metrics prints
// run and cache-hit counters to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"soemt/internal/cli"
	"soemt/internal/core"
	"soemt/internal/experiments"
	"soemt/internal/sim"
	"soemt/internal/stats"
	"soemt/internal/workload"
)

func main() {
	var (
		sweep    = flag.String("sweep", "F", "parameter to sweep: F, misslat, drain, delta, threads")
		pair     = flag.String("pair", "gcc:eon", "two workloads a:b for pair sweeps")
		bench    = flag.String("bench", "swim", "workload for -sweep threads")
		threads  = flag.String("threads", "", "colon-separated mix for -sweep threads (prefix sweep N=2..len under -policy; overrides -bench)")
		policy   = flag.String("policy", "", "switch policy by name: "+strings.Join(core.PolicyNames(), ", ")+" (overrides -F selection)")
		points   = flag.Int("points", 9, "number of F points for -sweep F")
		values   = flag.String("values", "", "comma-separated values for misslat/drain/delta sweeps")
		maxThr   = flag.Int("max", 4, "maximum thread count for -sweep threads")
		fArg     = flag.Float64("F", 0.5, "fairness target for non-F sweeps (0 = event-only)")
		scale    = flag.String("scale", "tiny", "tiny, quick or paper")
		csv      = flag.Bool("csv", false, "emit CSV instead of a table")
		cacheDir = flag.String("cache-dir", "", "persistent result cache directory (content-addressed; see DESIGN.md)")
		metrics  = flag.Bool("metrics", false, "print run/cache metrics to stderr on exit")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per simulation, e.g. 90s (0 = unlimited); an exceeded run fails with a deadline error")
		beat     = flag.Duration("heartbeat", 0, "print a metrics heartbeat line to stderr at this interval during long runs, e.g. 30s (0 = off)")
	)
	flag.Parse()

	sc, err := parseScale(*scale)
	if err != nil {
		fatal(err)
	}
	cache, err := experiments.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	cache.Logf = func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "soesweep: "+format+"\n", args...)
	}

	// SIGINT/SIGTERM cancel the sweep between execution slices; the
	// rows completed so far are still flushed (marked incomplete), and
	// with -cache-dir a rerun resumes from the finished points.
	ctx, stop := cli.SignalContext()
	defer stop()
	stopBeat := cli.StartHeartbeat(ctx, "soesweep", *beat, func() string {
		return cache.Metrics().String()
	})
	defer stopBeat()
	cli.NoteResume("soesweep", cache)
	wd := sim.Watchdog{Timeout: *timeout}

	var tbl *stats.Table
	switch *sweep {
	case "F":
		tbl, err = sweepF(ctx, cache, wd, *pair, *points, sc)
	case "misslat":
		tbl, err = sweepScalar(ctx, cache, wd, *pair, "misslat", parseValues(*values, "100,200,300,600"), *fArg, sc)
	case "drain":
		tbl, err = sweepScalar(ctx, cache, wd, *pair, "drain", parseValues(*values, "2,6,12,24,48"), *fArg, sc)
	case "delta":
		tbl, err = sweepScalar(ctx, cache, wd, *pair, "delta", parseValues(*values, "50000,250000,1000000"), *fArg, sc)
	case "threads":
		if *threads != "" {
			tbl, err = sweepMix(ctx, cache, wd, *threads, *policy, *fArg, sc)
		} else {
			tbl, err = sweepThreads(ctx, cache, wd, *bench, *maxThr, *fArg, sc)
		}
	default:
		err = fmt.Errorf("unknown sweep %q", *sweep)
	}
	// Both exit paths funnel through flush, which emits the table at
	// most once: a SIGINT landing while the final flush is underway must
	// neither print a second copy of the table nor be swallowed into a
	// clean exit 0 (see TestInterruptDuringFinalFlush).
	flushed := false
	flush := func() {
		if tbl == nil || flushed {
			return
		}
		flushed = true
		if d, _ := time.ParseDuration(os.Getenv("SOESWEEP_TEST_FLUSH_DELAY")); d > 0 {
			// Test hook: announce the flush window and hold it open so the
			// acceptance test can land a signal inside it deterministically.
			fmt.Fprintln(os.Stderr, "soesweep: flushing")
			time.Sleep(d)
		}
		if *csv {
			fmt.Print(tbl.CSV())
		} else {
			tbl.WriteTo(os.Stdout)
		}
	}
	if err != nil {
		if cli.Interrupted(ctx, err) {
			flush()
			if *csv {
				fmt.Println("# interrupted: sweep incomplete")
			} else {
				fmt.Fprintln(os.Stderr, "soesweep: interrupted; partial sweep flushed — rerun with the same -cache-dir to resume")
			}
			cli.MarkInterrupted("soesweep", cache, "interrupted by signal")
			os.Exit(cli.ExitInterrupted)
		}
		fatal(err)
	}
	flush()
	cli.ClearInterrupted("soesweep", cache)
	if ctx.Err() != nil {
		// The signal landed after the last point finished — during or
		// just before the final flush. The sweep itself is complete and
		// was flushed exactly once above, so the marker is cleared, but
		// the process still reports the interruption instead of exiting
		// 0 as if nothing happened.
		fmt.Fprintln(os.Stderr, "soesweep: interrupted during final flush; sweep output is complete")
		os.Exit(cli.ExitInterrupted)
	}
	if *metrics {
		fmt.Fprintf(os.Stderr, "soesweep: metrics: %s\n", cache.Metrics())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soesweep:", err)
	os.Exit(1)
}

func parseScale(s string) (sim.Scale, error) {
	switch s {
	case "tiny":
		return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}, nil
	case "quick":
		return sim.QuickScale(), nil
	case "paper":
		return sim.PaperScale(), nil
	}
	return sim.Scale{}, fmt.Errorf("unknown scale %q", s)
}

func parseValues(s, def string) []float64 {
	if s == "" {
		s = def
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad value %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func splitPair(pair string) (workload.Profile, workload.Profile, error) {
	parts := strings.SplitN(pair, ":", 2)
	if len(parts) != 2 {
		return workload.Profile{}, workload.Profile{}, fmt.Errorf("pair must be a:b, got %q", pair)
	}
	a, ok := workload.ByName(parts[0])
	if !ok {
		return workload.Profile{}, workload.Profile{}, fmt.Errorf("unknown profile %q", parts[0])
	}
	b, ok := workload.ByName(parts[1])
	if !ok {
		return workload.Profile{}, workload.Profile{}, fmt.Errorf("unknown profile %q", parts[1])
	}
	return a, b, nil
}

// runPair runs a:b on machine m through the result cache and returns
// results plus per-thread speedups against single-thread references
// (cached across sweep points — the references do not depend on the
// swept parameter unless the machine itself changes).
func runPair(ctx context.Context, c *experiments.Cache, wd sim.Watchdog, m sim.MachineConfig, a, b workload.Profile, sc sim.Scale) (*sim.Result, []float64, error) {
	var st []float64
	for i, p := range []workload.Profile{a, b} {
		refMachine := sim.DefaultMachine()
		refMachine.Controller.Policy = core.EventOnly{}
		ref, err := c.RunSpecContext(ctx, sim.Spec{
			Machine:  refMachine,
			Threads:  []sim.ThreadSpec{{Profile: p, Slot: i}},
			Scale:    sc,
			Watchdog: wd,
		})
		if err != nil {
			return nil, nil, err
		}
		st = append(st, ref.Threads[0].IPC)
	}
	res, err := c.RunSpecContext(ctx, sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: a, Slot: 0},
			{Profile: b, Slot: 1, StartSeq: sameOffset(a, b)},
		},
		Scale:    sc,
		Watchdog: wd,
	})
	if err != nil {
		return nil, nil, err
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "soesweep: WARNING: %s:%s truncated at MaxCycles=%d; values are approximate\n",
			a.Name, b.Name, sc.MaxCycles)
	}
	sp := core.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, st)
	return res, sp, nil
}

func sameOffset(a, b workload.Profile) uint64 {
	if a.Name == b.Name {
		return 100_000
	}
	return 0
}

func policyFor(f float64) core.Policy {
	if f <= 0 {
		return core.EventOnly{}
	}
	return core.Fairness{F: f}
}

// buildPolicy resolves -policy (zoo names, PolicyByName defaults) or
// falls back to the seed -F selection.
func buildPolicy(name string, f float64) (core.Policy, error) {
	if name == "" {
		return policyFor(f), nil
	}
	return core.PolicyByName(name, core.PolicyParams{F: f})
}

// sweepMix sweeps thread count over prefixes of a heterogeneous mix
// under one policy, reporting the min-over-pairs fairness metric at
// each N — the N-thread sweep the hypotheses harness documents
// (hypotheses/FINDINGS_grouped-fairness.md).
func sweepMix(ctx context.Context, c *experiments.Cache, wd sim.Watchdog, mix, policyName string, f float64, sc sim.Scale) (*stats.Table, error) {
	specs, err := experiments.ParseMix(mix)
	if err != nil {
		return nil, err
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("-threads needs at least two workloads, got %q", mix)
	}
	pol, err := buildPolicy(policyName, f)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable("threads", "mix", "total IPC", "fairness", "min speedup", "forced/1k")
	for n := 2; n <= len(specs); n++ {
		m := sim.DefaultMachine()
		m.Controller.Policy = pol
		res, sp, err := experiments.RunMix(ctx, c, wd, m, specs[:n], sc)
		if err != nil {
			return tbl, err
		}
		minSp := sp[0]
		names := specs[0].Profile.Name
		for i := 1; i < n; i++ {
			if sp[i] < minSp {
				minSp = sp[i]
			}
			names += ":" + specs[i].Profile.Name
		}
		tbl.AddRow(fmt.Sprintf("%d", n), names,
			fmt.Sprintf("%.3f", res.IPCTotal),
			fmt.Sprintf("%.3f", core.FairnessMetric(sp)),
			fmt.Sprintf("%.3f", minSp),
			fmt.Sprintf("%.2f", res.ForcedPer1k()))
	}
	return tbl, nil
}

// The sweep functions return the partially built table alongside any
// error, so an interrupted sweep can still flush its completed rows.
func sweepF(ctx context.Context, c *experiments.Cache, wd sim.Watchdog, pair string, points int, sc sim.Scale) (*stats.Table, error) {
	a, b, err := splitPair(pair)
	if err != nil {
		return nil, err
	}
	if points < 2 {
		points = 2
	}
	tbl := stats.NewTable("F", "IPC", "fairness", "speedupA", "speedupB", "forced/1k")
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		m := sim.DefaultMachine()
		m.Controller.Policy = policyFor(f)
		res, sp, err := runPair(ctx, c, wd, m, a, b, sc)
		if err != nil {
			return tbl, err
		}
		tbl.AddRow(fmt.Sprintf("%.3f", f),
			fmt.Sprintf("%.3f", res.IPCTotal),
			fmt.Sprintf("%.3f", core.FairnessMetric(sp)),
			fmt.Sprintf("%.3f", sp[0]), fmt.Sprintf("%.3f", sp[1]),
			fmt.Sprintf("%.2f", res.ForcedPer1k()))
	}
	return tbl, nil
}

func sweepScalar(ctx context.Context, c *experiments.Cache, wd sim.Watchdog, pair, param string, values []float64, f float64, sc sim.Scale) (*stats.Table, error) {
	a, b, err := splitPair(pair)
	if err != nil {
		return nil, err
	}
	tbl := stats.NewTable(param, "IPC", "fairness", "switches/1k", "forced/1k")
	for _, v := range values {
		m := sim.DefaultMachine()
		m.Controller.Policy = policyFor(f)
		switch param {
		case "misslat":
			m.Memory.MemLatency = int(v)
			m.Controller.MissLat = v
		case "drain":
			m.Controller.DrainCycles = uint64(v)
		case "delta":
			m.Controller.Delta = uint64(v)
			if q := uint64(v) / 5; q < m.Controller.MaxCyclesQuota {
				m.Controller.MaxCyclesQuota = q
			}
		default:
			return nil, fmt.Errorf("unknown scalar parameter %q", param)
		}
		res, sp, err := runPair(ctx, c, wd, m, a, b, sc)
		if err != nil {
			return tbl, err
		}
		tbl.AddRow(fmt.Sprintf("%.0f", v),
			fmt.Sprintf("%.3f", res.IPCTotal),
			fmt.Sprintf("%.3f", core.FairnessMetric(sp)),
			fmt.Sprintf("%.2f", float64(res.Switches.Total())/float64(res.WallCycles)*1000),
			fmt.Sprintf("%.2f", res.ForcedPer1k()))
	}
	return tbl, nil
}

// sweepThreads scales the number of copies of one workload from 1 to
// max (Eickemeyer et al.: SOE throughput saturates around three
// threads).
func sweepThreads(ctx context.Context, c *experiments.Cache, wd sim.Watchdog, bench string, max int, f float64, sc sim.Scale) (*stats.Table, error) {
	prof, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("unknown profile %q", bench)
	}
	if max < 1 {
		max = 1
	}
	tbl := stats.NewTable("threads", "total IPC", "speedup vs 1", "switches/1k")
	var base float64
	for n := 1; n <= max; n++ {
		m := sim.DefaultMachine()
		m.Controller.Policy = policyFor(f)
		var threads []sim.ThreadSpec
		for i := 0; i < n; i++ {
			p := prof
			p.Seed += uint64(i) * 7919
			threads = append(threads, sim.ThreadSpec{Profile: p, Slot: i})
		}
		res, err := c.RunSpecContext(ctx, sim.Spec{Machine: m, Threads: threads, Scale: sc, Watchdog: wd})
		if err != nil {
			return tbl, err
		}
		if n == 1 {
			base = res.IPCTotal
		}
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", res.IPCTotal),
			fmt.Sprintf("%.2fx", res.IPCTotal/base),
			fmt.Sprintf("%.2f", float64(res.Switches.Total())/float64(res.WallCycles)*1000))
	}
	return tbl, nil
}
