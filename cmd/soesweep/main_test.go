package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"soemt/internal/cli"
	"soemt/internal/experiments"
)

// TestMain lets the test binary stand in for the soesweep executable:
// with SOESWEEP_TEST_MAIN=1 it runs main() on the arguments after the
// "--" separator. That keeps the acceptance test hermetic — no go
// build step — while still exercising process-level signal delivery
// and real exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("SOESWEEP_TEST_MAIN") == "1" {
		for i, a := range os.Args {
			if a == "--" {
				os.Args = append([]string{os.Args[0]}, os.Args[i+1:]...)
				break
			}
		}
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func startSweep(t *testing.T, cacheDir, flushDelay string) (*exec.Cmd, *strings.Builder, io.ReadCloser) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "--",
		"-sweep", "F", "-points", "2", "-scale", "tiny", "-cache-dir", cacheDir)
	cmd.Env = append(os.Environ(),
		"SOESWEEP_TEST_MAIN=1",
		"SOESWEEP_TEST_FLUSH_DELAY="+flushDelay)
	var stdout strings.Builder
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, &stdout, stderr
}

// Regression: a SIGINT landing while the final flush was underway used
// to be swallowed entirely — the process printed the table, cleared
// the interrupt marker and exited 0, indistinguishable from an
// undisturbed run. It must exit 130, and the (idempotent) flush must
// emit the table exactly once.
func TestInterruptDuringFinalFlush(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep in a subprocess")
	}
	cacheDir := t.TempDir()
	cmd, stdout, stderr := startSweep(t, cacheDir, "2s")

	// The hook announces the open flush window on stderr; land the
	// signal inside it.
	sawFlush := make(chan bool, 1)
	stderrDone := make(chan struct{})
	var errLines strings.Builder
	go func() {
		defer close(stderrDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			fmt.Fprintln(&errLines, sc.Text())
			if strings.Contains(sc.Text(), "soesweep: flushing") {
				sawFlush <- true
			}
		}
	}()
	select {
	case <-sawFlush:
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
	case <-stderrDone:
		cmd.Wait()
		t.Fatalf("sweep finished without ever opening a flush window; stderr:\n%s", errLines.String())
	case <-time.After(2 * time.Minute):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("sweep never reached the flush window; stderr:\n%s", errLines.String())
	}

	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("sweep exited clean despite SIGINT during flush (err=%v); stderr:\n%s", err, errLines.String())
	}
	if code := ee.ExitCode(); code != cli.ExitInterrupted {
		t.Fatalf("exit code = %d, want %d; stderr:\n%s", code, cli.ExitInterrupted, errLines.String())
	}
	if n := strings.Count(stdout.String(), "fairness"); n != 1 {
		t.Fatalf("table header appeared %d times, want exactly 1:\n%s", n, stdout.String())
	}
	// The matrix itself completed, so the marker must not claim an
	// incomplete sweep.
	c, cerr := experiments.NewCache(cacheDir)
	if cerr != nil {
		t.Fatal(cerr)
	}
	if note, ok := c.Interrupted(); ok {
		t.Fatalf("completed sweep left an interrupt marker: %q", note)
	}
}

// An undisturbed run through the same hook still exits 0 with one
// table — the idempotence guard must not eat the only flush.
func TestFinalFlushCleanExit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep in a subprocess")
	}
	cmd, stdout, stderr := startSweep(t, t.TempDir(), "10ms")
	go io.Copy(io.Discard, stderr)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("clean sweep failed: %v", err)
	}
	if n := strings.Count(stdout.String(), "fairness"); n != 1 {
		t.Fatalf("table header appeared %d times, want exactly 1:\n%s", n, stdout.String())
	}
}
