package main

import (
	"fmt"
	"os"

	"soemt/internal/sim"
	"soemt/internal/stats"
)

// dumpSamples prints the Δ-window sampling series (quota evolution),
// used with -samples for debugging the enforcement loop.
func dumpSamples(res *sim.Result) {
	t := stats.NewTable("cycle", "estST0", "winIPC0", "quota0", "estST1", "winIPC1", "quota1")
	for _, s := range res.Samples {
		t.AddRow(fmt.Sprintf("%d", s.Cycle),
			fmt.Sprintf("%.3f", s.Threads[0].EstIPCST),
			fmt.Sprintf("%.3f", s.Threads[0].WindowIPC),
			fmt.Sprintf("%.0f", s.Threads[0].Quota),
			fmt.Sprintf("%.3f", s.Threads[1].EstIPCST),
			fmt.Sprintf("%.3f", s.Threads[1].WindowIPC),
			fmt.Sprintf("%.0f", s.Threads[1].Quota))
	}
	t.WriteTo(os.Stdout)
}
