package main

import (
	"encoding/json"
	"os"

	"soemt/internal/core"
	"soemt/internal/sim"
)

// jsonResult is the machine-readable form of a run (-json flag).
type jsonResult struct {
	Policy     string             `json:"policy"`
	WallCycles uint64             `json:"wall_cycles"`
	IPCTotal   float64            `json:"ipc_total"`
	Truncated  bool               `json:"truncated,omitempty"`
	Threads    []jsonThread       `json:"threads"`
	Switches   jsonSwitches       `json:"switches"`
	Fairness   *jsonFairnessBlock `json:"fairness,omitempty"`
}

type jsonThread struct {
	Name     string  `json:"name"`
	Instrs   uint64  `json:"instrs"`
	Cycles   uint64  `json:"run_cycles"`
	Misses   uint64  `json:"misses"`
	IPC      float64 `json:"ipc"`
	IPM      float64 `json:"ipm"`
	CPM      float64 `json:"cpm"`
	EstIPCST float64 `json:"est_ipc_st"`
	Visits   uint64  `json:"visits"`
	AvgVisit float64 `json:"avg_instrs_per_visit"`
}

type jsonSwitches struct {
	Miss        uint64  `json:"miss"`
	Quota       uint64  `json:"quota"`
	MaxQuota    uint64  `json:"max_quota"`
	Pause       uint64  `json:"pause"`
	L1Miss      uint64  `json:"l1_miss"`
	ForcedPer1k float64 `json:"forced_per_1k_cycles"`
}

type jsonFairnessBlock struct {
	IPCST           []float64 `json:"ipc_st"`
	Speedups        []float64 `json:"speedups"`
	Fairness        float64   `json:"fairness"`
	WeightedSpeedup float64   `json:"weighted_speedup"`
	HarmonicMean    float64   `json:"harmonic_mean"`
}

// emitJSON writes the run result (and optional reference block) as
// indented JSON to stdout.
func emitJSON(policy string, res *sim.Result, ipcST, speedups []float64) error {
	out := jsonResult{
		Policy:     policy,
		WallCycles: res.WallCycles,
		IPCTotal:   res.IPCTotal,
		Truncated:  res.Truncated,
		Switches: jsonSwitches{
			Miss:        res.Switches.Miss,
			Quota:       res.Switches.Quota,
			MaxQuota:    res.Switches.MaxQuota,
			Pause:       res.Switches.Pause,
			L1Miss:      res.Switches.L1Miss,
			ForcedPer1k: res.ForcedPer1k(),
		},
	}
	for _, tr := range res.Threads {
		out.Threads = append(out.Threads, jsonThread{
			Name:     tr.Name,
			Instrs:   tr.Counters.Instrs,
			Cycles:   tr.Counters.Cycles,
			Misses:   tr.Counters.Misses,
			IPC:      tr.IPC,
			IPM:      tr.IPM,
			CPM:      tr.CPM,
			EstIPCST: tr.EstIPCST,
			Visits:   tr.Visits,
			AvgVisit: tr.AvgVisit,
		})
	}
	if len(ipcST) > 0 {
		out.Fairness = &jsonFairnessBlock{
			IPCST:           ipcST,
			Speedups:        speedups,
			Fairness:        core.FairnessMetric(speedups),
			WeightedSpeedup: core.WeightedSpeedup(speedups),
			HarmonicMean:    core.HarmonicFairness(speedups),
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
