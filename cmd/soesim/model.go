package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"soemt/internal/experiments"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/stats"
)

// loadOrProfileCalibration resolves the analytical model's parameter
// table: a fitted file when -calibration is given, otherwise the
// profile-derived fallback (wide error bars, no simulation behind it).
func loadOrProfileCalibration(path string) (*model.Calibration, error) {
	if path != "" {
		return model.LoadCalibration(path)
	}
	return experiments.ProfileCalibration(sim.DefaultMachine())
}

// runModel is the -model escape hatch: answer from the calibrated
// analytical model in microseconds instead of simulating. Honors
// -threads, -F, -timeshare and -json; reports the calibration's error
// bars alongside every prediction.
func runModel(threadsArg string, f, timeshare float64, calPath string, jsonOut bool) error {
	if threadsArg == "" {
		return fmt.Errorf("-model needs -threads (profile names; traces carry no fitted parameters)")
	}
	names := strings.Split(threadsArg, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	cal, err := loadOrProfileCalibration(calPath)
	if err != nil {
		return err
	}
	sys, err := cal.System(names...)
	if err != nil {
		return err
	}
	p, err := sys.Predict(f)
	if err != nil {
		return err
	}
	var tsFair float64
	var tsSp []float64
	if timeshare > 0 {
		if tsFair, tsSp, err = sys.TimeShareFairness(timeshare); err != nil {
			return err
		}
	}

	if jsonOut {
		out := map[string]any{
			"fidelity":     "analytical",
			"calibration":  cal.Source,
			"f":            f,
			"ipc_total":    p.Total,
			"fairness":     p.Fairness,
			"err_ipc_pc":   cal.ErrIPCPc,
			"err_fairness": cal.ErrFairness,
		}
		var threads []map[string]any
		for i, n := range names {
			threads = append(threads, map[string]any{
				"name": n, "ipc": p.IPCSOE[i], "ipc_st": p.IPCST[i], "speedup": p.Speedup[i],
			})
		}
		out["threads"] = threads
		if timeshare > 0 {
			out["timeshare_fairness"] = tsFair
			out["timeshare_speedups"] = tsSp
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("analytical model (calibration: %s, bars: ±%.1f%% IPC, ±%.2f fairness)\n",
		cal.Source, cal.ErrIPCPc, cal.ErrFairness)
	t := stats.NewTable("thread", "IPM", "IPC_nomiss", "IPC_ST", "IPC_SOE", "speedup")
	for i, th := range sys.Threads {
		t.AddRow(th.Name,
			fmt.Sprintf("%.0f", th.IPM),
			fmt.Sprintf("%.3f", th.IPCNoMiss),
			fmt.Sprintf("%.3f", p.IPCST[i]),
			fmt.Sprintf("%.3f", p.IPCSOE[i]),
			fmt.Sprintf("%.3f", p.Speedup[i]))
	}
	t.WriteTo(os.Stdout)
	fmt.Printf("F=%g: total IPC %.3f ± %.1f%%   fairness %.3f ± %.2f\n",
		f, p.Total, cal.ErrIPCPc, p.Fairness, cal.ErrFairness)
	if timeshare > 0 {
		fmt.Printf("time share (%.0f-cycle quota): speedups %s, fairness %.3f\n",
			timeshare, fmtFloats(tsSp), tsFair)
	}
	return nil
}

// runCalibrate fits a calibration table against the cycle-accurate
// engine (-calibrate out.json): single-thread references invert Eq. 1
// per profile, Switch_lat is grid-searched, and the residual error bars
// are measured by replaying the chosen pairs. With -threads a,b only
// that pair is replayed; without it the full 16-pair matrix runs.
func runCalibrate(out, threadsArg, scaleArg string) error {
	scale, err := parseScale(scaleArg)
	if err != nil {
		return err
	}
	var pairs []experiments.Pair
	if threadsArg != "" {
		names := strings.Split(threadsArg, ",")
		if len(names) != 2 {
			return fmt.Errorf("-calibrate with -threads needs exactly two profiles, got %d", len(names))
		}
		pairs = []experiments.Pair{{A: strings.TrimSpace(names[0]), B: strings.TrimSpace(names[1])}}
	}
	r := experiments.NewRunner(experiments.Options{
		Machine:    sim.DefaultMachine(),
		Scale:      scale,
		SameOffset: 100_000,
	})
	r.Progress = func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "soesim: "+format+"\n", args...)
	}
	cal, err := experiments.Calibrate(context.Background(), r, pairs)
	if err != nil {
		return err
	}
	if err := cal.Save(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"soesim: wrote %s (%d threads, %d residual points, SwitchLat=%.0f, bars ±%.1f%% IPC / ±%.2f fairness)\n",
		out, len(cal.Threads), len(cal.Pairs), cal.SwitchLat, cal.ErrIPCPc, cal.ErrFairness)
	return nil
}

func fmtFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = fmt.Sprintf("%.3f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
