// Command soesim runs a single SOE simulation: one or more workloads
// on the simulated machine under a chosen switch policy, reporting
// per-thread performance, fairness, and switch statistics.
//
// Examples:
//
//	soesim -threads gcc,eon                      # SOE without fairness
//	soesim -threads gcc,eon -F 0.5               # enforce fairness 1/2
//	soesim -threads gcc,eon -timeshare 400       # §6 time-share baseline
//	soesim -threads swim                         # single-thread reference
//	soesim -threads gcc,eon -F 1 -ref            # also run ST references,
//	                                             # report speedups/fairness
//	soesim -trace t1.lit,t2.lit -F 0.25          # run from trace files
//	soesim -threads gcc,eon -F 1 -ref -json      # machine-readable output
//	soesim -threads gcc,eon -l1-switch -prefetch 4   # §6/ablation features
//	soesim -threads gcc,eon -trace-events t.json -obs-metrics
//	                                             # cycle-level event trace
//	                                             # (chrome://tracing) + registry dump
//	soesim -threads gcc,eon -F 1 -model          # calibrated analytical answer
//	                                             # (microseconds, error bars, no sim)
//	soesim -threads gcc,eon -calibrate cal.json  # fit + persist a calibration
//	soesim -threads gcc,eon -model -calibration cal.json -json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"soemt/internal/cli"
	"soemt/internal/core"
	"soemt/internal/experiments"
	"soemt/internal/obs"
	"soemt/internal/perf"
	"soemt/internal/pipeline"
	"soemt/internal/sim"
	"soemt/internal/stats"
	"soemt/internal/trace"
)

func main() {
	var (
		threadsArg = flag.String("threads", "", "workload profile names, colon- or comma-separated (e.g. gcc:mcf:swim:eon)")
		traceArg   = flag.String("trace", "", "comma-separated trace files (alternative to -threads)")
		fArg       = flag.Float64("F", 0, "target fairness (0 disables enforcement)")
		timeshare  = flag.Float64("timeshare", 0, "time-share cycle quota (baseline policy)")
		policyArg  = flag.String("policy", "", "switch policy by name: "+strings.Join(core.PolicyNames(), ", ")+" (overrides -F/-timeshare selection)")
		weightsArg = flag.String("weights", "", "comma-separated per-thread grant weights for -policy wfq")
		cpmSplit   = flag.Float64("cpm-split", 0, "grouped-fairness CPM classification boundary (0 = adaptive midpoint)")
		missyWt    = flag.Float64("missy-weight", 0, "grouped-fairness missy-group grant weight (0 = default 2)")
		friendWt   = flag.Float64("friendly-weight", 0, "grouped-fairness friendly-group grant weight (0 = default 1)")
		minAggFrac = flag.Float64("min-agg-frac", 0, "malthusian demotion threshold as a fraction of peak aggregate IPC (0 = default 0.9)")
		probeEvery = flag.Int("probe-every", 0, "malthusian reactivation probe period in Δ windows (0 = default 8)")
		scaleArg   = flag.String("scale", "quick", "tiny, quick or paper")
		ref        = flag.Bool("ref", false, "also run single-thread references and report fairness")
		pauseSw    = flag.Bool("pause-switch", false, "switch threads on retired PAUSE hints")
		measured   = flag.Bool("measured-misslat", false, "estimate Miss_lat from observed stalls")
		samples    = flag.Bool("samples", false, "dump the Δ-window sampling series")
		smooth     = flag.Float64("smooth", 0, "EWMA alpha for IPM/CPM estimates (0 = paper behaviour)")
		countAll   = flag.Bool("countall", false, "count all demand misses instead of switch-causing ones")
		l1switch   = flag.Bool("l1-switch", false, "also switch on unresolved L1 misses (§6 extension)")
		prefetch   = flag.Int("prefetch", 0, "next-line L2 prefetch degree (0 = off)")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON")
		cacheDir   = flag.String("cache-dir", "", "persistent result cache directory (content-addressed; see DESIGN.md)")
		metricsOut = flag.Bool("metrics", false, "print run/cache metrics to stderr on exit")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per simulation, e.g. 90s (0 = unlimited); an exceeded run fails with a deadline error")
		stallCap   = flag.Uint64("stall-cycles", 0, "abort a run making no forward progress for this many cycles (0 = default watchdog)")
		cycleRef   = flag.Bool("cycle-by-cycle", false, "disable the idle fast-forward and execute every cycle (reference engine)")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the simulation to this file")
		benchDir   = flag.String("bench-json", "", "record run wall-time, cycles/sec and allocations to BENCH_<n>.json in this directory (bypass -cache-dir when benchmarking)")
		traceOut   = flag.String("trace-events", "", "write a Chrome trace_event JSON of the run to this file (open in chrome://tracing or Perfetto); forces a fresh simulation, bypassing the result cache")
		traceCSV   = flag.String("trace-csv", "", "write the raw controller event stream as CSV to this file; forces a fresh simulation, bypassing the result cache")
		obsMetrics = flag.Bool("obs-metrics", false, "dump the observability metrics registry (switch causes, skip cycles, pipeline and cache counters) to stderr on exit")
		modelOut   = flag.Bool("model", false, "answer from the calibrated analytical model instead of simulating (honors -threads, -F, -timeshare, -json)")
		calFile    = flag.String("calibration", "", "calibration table for -model (default: profile-derived fit with wide error bars)")
		calOut     = flag.String("calibrate", "", "fit a calibration table against the engine and write it to this file (uses -threads a,b as the replay pair, or the full matrix)")
	)
	flag.Parse()

	if *calOut != "" {
		if err := runCalibrate(*calOut, *threadsArg, *scaleArg); err != nil {
			fatal(err)
		}
		return
	}
	if *modelOut {
		if err := runModel(*threadsArg, *fArg, *timeshare, *calFile, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}

	scale, err := parseScale(*scaleArg)
	if err != nil {
		fatal(err)
	}
	machine := sim.DefaultMachine()
	switch {
	case *policyArg != "":
		p, err := core.PolicyByName(*policyArg, core.PolicyParams{
			F: *fArg, QuotaCycles: *timeshare,
			Weights:  parseWeights(*weightsArg),
			CPMSplit: *cpmSplit, MissyWeight: *missyWt, FriendWt: *friendWt,
			MinAggFrac: *minAggFrac, ProbeEvery: *probeEvery,
		})
		if err != nil {
			fatal(err)
		}
		machine.Controller.Policy = p
	case *timeshare > 0:
		machine.Controller.Policy = core.TimeShare{QuotaCycles: *timeshare}
	case *fArg > 0:
		machine.Controller.Policy = core.Fairness{F: *fArg}
	default:
		machine.Controller.Policy = core.EventOnly{}
	}
	machine.Controller.SwitchOnPause = *pauseSw
	machine.Controller.MeasureMissLat = *measured
	machine.Controller.SmoothAlpha = *smooth
	machine.Controller.CountAllMisses = *countAll
	machine.Controller.SwitchOnL1Miss = *l1switch
	machine.Memory.PrefetchDegree = *prefetch

	specs, err := buildThreads(*threadsArg, *traceArg)
	if err != nil {
		fatal(err)
	}
	if len(specs) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cache, err := experiments.NewCache(*cacheDir)
	if err != nil {
		fatal(err)
	}
	cache.Logf = func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "soesim: "+format+"\n", args...)
	}
	if *metricsOut {
		defer func() { fmt.Fprintf(os.Stderr, "soesim: metrics: %s\n", cache.Metrics()) }()
	}
	if *obsMetrics {
		defer func() {
			fmt.Fprintln(os.Stderr, "soesim: observability registry:")
			cache.Observability().WriteTo(os.Stderr)
		}()
	}

	// A live tracer requires an actual simulation: cache hits skip the
	// run and record nothing, so tracing runs go straight to the engine.
	tracing := *traceOut != "" || *traceCSV != ""
	var tracer *obs.Tracer
	if tracing {
		tracer = obs.NewTracer(0)
	}

	// SIGINT/SIGTERM cancel the run between execution slices; finished
	// simulations stay in the cache, and the cache dir is marked so a
	// rerun knows it is resuming. A second signal kills immediately.
	ctx, stop := cli.SignalContext()
	defer stop()
	cli.NoteResume("soesim", cache)
	defer cli.ClearInterrupted("soesim", cache) // skipped by os.Exit on failure paths
	exitErr := func(err error) {
		if cli.Interrupted(ctx, err) {
			cli.MarkInterrupted("soesim", cache, "interrupted by signal")
			fmt.Fprintln(os.Stderr, "soesim: interrupted; completed simulations are cached — rerun with the same -cache-dir to resume")
			os.Exit(cli.ExitInterrupted)
		}
		fatal(err)
	}
	watchdog := sim.Watchdog{Timeout: *timeout, StallCycles: *stallCap}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	spec := sim.Spec{
		Machine: machine, Threads: specs, Scale: scale,
		Watchdog: watchdog, CycleByCycle: *cycleRef,
	}
	if tracing {
		spec.Obs = &obs.Observer{Trace: tracer, Metrics: cache.Observability()}
	}
	var res *sim.Result
	run := func() (uint64, uint64, error) {
		var r *sim.Result
		var err error
		if tracing {
			r, err = sim.RunContext(ctx, spec)
		} else {
			r, err = cache.RunSpecContext(ctx, spec)
		}
		if err != nil {
			return 0, 0, err
		}
		res = r
		var instrs uint64
		for _, th := range r.Threads {
			instrs += th.Counters.Instrs
		}
		return r.WallCycles, instrs, nil
	}
	if *benchDir != "" {
		engine := "fast-forward"
		if *cycleRef {
			engine = "cycle-by-cycle"
		}
		report := perf.NewReport(*scaleArg)
		entry, err := perf.Measure(*threadsArg, engine, run)
		if err != nil {
			exitErr(err)
		}
		report.Add(entry)
		path, err := report.WriteNumbered(*benchDir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "soesim: wrote %s (%.3fs, %.0f cycles/s)\n", path, entry.Seconds, entry.CyclesPerSec)
	} else if _, _, err := run(); err != nil {
		exitErr(err)
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "soesim: WARNING: run truncated at MaxCycles=%d before reaching Measure=%d; IPC is approximate\n",
			scale.MaxCycles, scale.Measure)
	}
	if tracing {
		if err := writeTraces(tracer, specs, *traceOut, *traceCSV); err != nil {
			fatal(err)
		}
	}

	refIPC := func() (ipcST, speedups []float64) {
		var ipcSOE []float64
		for i, ts := range specs {
			refMachine := sim.DefaultMachine()
			refMachine.Controller.Policy = core.EventOnly{}
			stRes, err := cache.RunSpecContext(ctx, sim.Spec{
				Machine:  refMachine,
				Threads:  []sim.ThreadSpec{{Profile: ts.Profile, Slot: ts.Slot, StartSeq: ts.StartSeq}},
				Scale:    scale,
				Watchdog: watchdog,
			})
			if err != nil {
				exitErr(err)
			}
			ipcSOE = append(ipcSOE, res.Threads[i].IPC)
			ipcST = append(ipcST, stRes.Threads[0].IPC)
		}
		return ipcST, core.Speedups(ipcSOE, ipcST)
	}

	if *jsonOut {
		var ipcST, sp []float64
		if *ref && len(specs) > 1 {
			ipcST, sp = refIPC()
		}
		if err := emitJSON(machine.Controller.Policy.Name(), res, ipcST, sp); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("policy: %s   cycles: %d   total IPC: %.3f\n",
		machine.Controller.Policy.Name(), res.WallCycles, res.IPCTotal)
	t := stats.NewTable("thread", "instrs", "run cycles", "misses", "IPC", "IPM", "est IPC_ST", "visits", "instr/visit")
	for _, tr := range res.Threads {
		t.AddRow(tr.Name,
			fmt.Sprintf("%d", tr.Counters.Instrs),
			fmt.Sprintf("%d", tr.Counters.Cycles),
			fmt.Sprintf("%d", tr.Counters.Misses),
			fmt.Sprintf("%.3f", tr.IPC),
			fmt.Sprintf("%.0f", tr.IPM),
			fmt.Sprintf("%.3f", tr.EstIPCST),
			fmt.Sprintf("%d", tr.Visits),
			fmt.Sprintf("%.0f", tr.AvgVisit))
	}
	t.WriteTo(os.Stdout)
	sw := res.Switches
	fmt.Printf("switches: miss=%d quota=%d maxq=%d pause=%d (forced/1k cycles: %.2f)\n",
		sw.Miss, sw.Quota, sw.MaxQuota, sw.Pause, res.ForcedPer1k())
	if *samples {
		dumpSamples(res)
	}

	if *ref && len(specs) > 1 {
		ipcST, sp := refIPC()
		fmt.Println()
		for i, ts := range specs {
			fmt.Printf("%-10s IPC_ST=%.3f speedup=%.3f\n", ts.Profile.Name, ipcST[i], sp[i])
		}
		fmt.Printf("fairness (Eq. 4): %.3f   weighted speedup: %.3f   harmonic: %.3f\n",
			core.FairnessMetric(sp), core.WeightedSpeedup(sp), core.HarmonicFairness(sp))
	}
}

func parseScale(s string) (sim.Scale, error) {
	switch s {
	case "tiny":
		return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}, nil
	case "quick":
		return sim.QuickScale(), nil
	case "paper":
		return sim.PaperScale(), nil
	}
	return sim.Scale{}, fmt.Errorf("unknown scale %q", s)
}

// parseWeights parses a comma-separated weight list; empty means nil
// (WFQGrant defaults every thread to weight 1).
func parseWeights(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad weight %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func buildThreads(threadsArg, traceArg string) ([]sim.ThreadSpec, error) {
	var specs []sim.ThreadSpec
	if threadsArg != "" {
		// Colon or comma lists; repeated benchmarks get the paper's
		// 100k-instruction start offset per extra copy.
		var err error
		if specs, err = experiments.ParseMix(threadsArg); err != nil {
			return nil, err
		}
	}
	if traceArg != "" {
		for _, path := range strings.Split(traceArg, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				return nil, err
			}
			tr, err := trace.Decode(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			events := make([]pipeline.InjectedStall, len(tr.Events))
			for j, e := range tr.Events {
				events[j] = pipeline.InjectedStall{AtInstr: e.AtInstr, StallCycles: uint64(e.StallCycles)}
			}
			specs = append(specs, sim.ThreadSpec{
				Profile:  tr.Profile,
				Slot:     int(tr.Checkpoint.Slot),
				StartSeq: tr.Checkpoint.StartSeq,
				Events:   events,
			})
		}
	}
	return specs, nil
}

// writeTraces exports the recorded event stream. The ring buffer keeps
// the most recent events; if earlier ones were evicted the export is a
// suffix of the run — the drop count is embedded in the files
// themselves (Chrome otherData / CSV comment) and warned about on
// stderr, so a truncated trace can never pass for a complete one.
func writeTraces(tracer *obs.Tracer, specs []sim.ThreadSpec, jsonPath, csvPath string) error {
	if d := tracer.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "soesim: WARNING: trace ring dropped %d oldest events (capacity %d); the export is the most recent window of the run, not a complete trace\n",
			d, tracer.Len())
	}
	events := tracer.Events()
	names := make([]string, len(specs))
	for i, ts := range specs {
		names[i] = ts.Profile.Name
	}
	meta := obs.MetaFor(tracer, names)
	write := func(path string, enc func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := enc(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "soesim: wrote %d events to %s\n", len(events), path)
		return nil
	}
	if jsonPath != "" {
		if err := write(jsonPath, func(f *os.File) error {
			return obs.WriteChromeTraceMeta(f, events, meta)
		}); err != nil {
			return err
		}
	}
	if csvPath != "" {
		if err := write(csvPath, func(f *os.File) error {
			return obs.WriteCSVMeta(f, events, meta)
		}); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "soesim:", err)
	os.Exit(1)
}
