// Command soefig regenerates the paper's tables and figures.
//
// Usage:
//
//	soefig -exp table2|table3|fig3|fig5|fig6|fig7|fig8|example1|timeshare|all
//	       [-scale tiny|quick|paper] [-v] [-html out.html]
//	       [-cache-dir dir] [-metrics] [-workers n]
//
// Analytical experiments (table2, fig3) are instant; simulation
// experiments run the two-thread SOE matrix and take seconds (tiny),
// minutes (quick) or tens of minutes (paper) depending on -scale.
// With -html the full reproduction is rendered as a standalone HTML
// document with SVG charts instead of text output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"soemt/internal/cli"
	"soemt/internal/experiments"
	"soemt/internal/sim"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run (table2, table3, fig3, fig5, fig6, fig7, fig8, example1, timeshare, all)")
		scale   = flag.String("scale", "quick", "simulation scale: tiny, quick, paper")
		verbose = flag.Bool("v", false, "print per-run progress")
		html    = flag.String("html", "", "write a standalone HTML report with SVG charts to this file")
		csvPath = flag.String("csv", "", "write the full evaluation matrix as tidy CSV to this file")
		cache   = flag.String("cache-dir", "", "persistent result cache directory (content-addressed; see DESIGN.md)")
		metrics = flag.Bool("metrics", false, "print run/cache metrics to stderr on exit")
		workers = flag.Int("workers", 0, "concurrent simulations for matrix experiments (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "wall-clock budget per simulation, e.g. 90s (0 = unlimited); an exceeded run fails with a deadline error")
		beat    = flag.Duration("heartbeat", 0, "print a metrics heartbeat line to stderr at this interval during long runs, e.g. 30s (0 = off)")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	switch *scale {
	case "tiny":
		opts.Scale = sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}
		opts.SameOffset = 50_000
	case "quick":
		// defaults
	case "paper":
		opts = experiments.PaperOptions()
	default:
		fmt.Fprintf(os.Stderr, "soefig: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	opts.Watchdog.Timeout = *timeout

	r := experiments.NewRunner(opts)
	r.Workers = *workers
	if *verbose {
		r.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *cache != "" {
		if err := r.SetCacheDir(*cache); err != nil {
			fmt.Fprintf(os.Stderr, "soefig: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics {
		defer func() { fmt.Fprintf(os.Stderr, "soefig: metrics: %s\n", r.Metrics()) }()
	}

	// SIGINT/SIGTERM cancel the matrix between execution slices. Pairs
	// already simulated stay in the cache (and are flushed as partial
	// output where the format allows it); a rerun over the same
	// -cache-dir resumes from them. A second signal kills immediately.
	ctx, stop := cli.SignalContext()
	defer stop()
	stopBeat := cli.StartHeartbeat(ctx, "soefig", *beat, func() string {
		return r.Metrics().String()
	})
	defer stopBeat()
	cli.NoteResume("soefig", r.Cache())
	defer func() { cli.ClearInterrupted("soefig", r.Cache()) }() // skipped by os.Exit on failure paths
	exitErr := func(err error) {
		if cli.Interrupted(ctx, err) {
			cli.MarkInterrupted("soefig", r.Cache(), "interrupted by signal")
			fmt.Fprintln(os.Stderr, "soefig: interrupted; completed simulations are cached — rerun with the same -cache-dir to resume")
			os.Exit(cli.ExitInterrupted)
		}
		fmt.Fprintf(os.Stderr, "soefig: %v\n", err)
		os.Exit(1)
	}

	if *html != "" {
		if err := writeHTMLReport(ctx, *html, opts, r); err != nil {
			if cli.Interrupted(ctx, err) {
				exitErr(err)
			}
			fmt.Fprintf(os.Stderr, "soefig: html report: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *html)
		return
	}
	if *csvPath != "" {
		runs, err := r.RunAllContext(ctx)
		if err != nil && !cli.Interrupted(ctx, err) {
			fmt.Fprintf(os.Stderr, "soefig: %v\n", err)
			os.Exit(1)
		}
		interrupted := err != nil
		done := runs[:0:0]
		for _, pr := range runs {
			if pr != nil {
				done = append(done, pr)
			}
		}
		if interrupted && len(done) == 0 {
			exitErr(err)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soefig: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteCSV(f, done); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "soefig: %v\n", err)
			os.Exit(1)
		}
		if interrupted {
			fmt.Fprintf(f, "# interrupted: %d of %d pairs completed; rerun with the same -cache-dir to finish\n",
				len(done), len(runs))
		}
		f.Close()
		if interrupted {
			fmt.Fprintf(os.Stderr, "soefig: interrupted; wrote partial matrix (%d/%d pairs) to %s\n",
				len(done), len(runs), *csvPath)
			cli.MarkInterrupted("soefig", r.Cache(), "interrupted by signal (partial CSV flushed)")
			os.Exit(cli.ExitInterrupted)
		}
		fmt.Printf("wrote %s\n", *csvPath)
		return
	}

	w := os.Stdout
	run := func(name string) error {
		switch name {
		case "table2":
			return experiments.ExpTable2(w)
		case "table3":
			return experiments.ExpTable3(w, opts)
		case "fig3":
			return experiments.ExpFig3(w)
		case "example1":
			return experiments.ExpExample1Context(ctx, w, r)
		case "fig5":
			_, err := experiments.ExpFig5Context(ctx, w, r)
			return err
		case "fig6":
			runs, err := r.RunAllContext(ctx)
			if err != nil {
				return err
			}
			_, err = experiments.ExpFig6(w, runs)
			return err
		case "fig7":
			runs, err := r.RunAllContext(ctx)
			if err != nil {
				return err
			}
			_, err = experiments.ExpFig7(w, runs)
			return err
		case "fig8":
			runs, err := r.RunAllContext(ctx)
			if err != nil {
				return err
			}
			_, err = experiments.ExpFig8(w, runs)
			return err
		case "timeshare":
			_, err := experiments.ExpTimeShareContext(ctx, w, r)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table3", "table2", "fig3", "example1", "fig5",
			"fig6", "fig7", "fig8", "timeshare"}
	}
	for i, n := range names {
		if i > 0 {
			fmt.Fprintln(w, "\n"+strings.Repeat("=", 78)+"\n")
		}
		if err := run(n); err != nil {
			if cli.Interrupted(ctx, err) {
				exitErr(err)
			}
			fmt.Fprintf(os.Stderr, "soefig: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}
