package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"soemt/internal/experiments"
	"soemt/internal/model"
	"soemt/internal/report"
	"soemt/internal/sim"
	"soemt/internal/stats"
)

// writeHTMLReport runs the full reproduction and renders a standalone
// HTML document with SVG charts (soefig -html out.html).
func writeHTMLReport(ctx context.Context, path string, opts experiments.Options, r *experiments.Runner) error {
	h := &report.HTML{Title: "Fairness and Throughput in Switch on Event Multithreading — reproduction"}

	// Table 3.
	h.Heading("Table 3: machine configuration")
	h.Table(sim.Table3(opts.Machine))

	// Table 2 (analytical).
	h.Heading("Table 2: Example 2, analytical model")
	rows, err := model.Table2()
	if err != nil {
		return err
	}
	t2 := stats.NewTable("F", "IPSw1", "IPSw2", "slowdown1", "slowdown2", "fairness", "IPC")
	for _, row := range rows {
		t2.AddRow(fmt.Sprintf("%.2f", row.F),
			fmt.Sprintf("%.0f", row.IPSw[0]), fmt.Sprintf("%.0f", row.IPSw[1]),
			fmt.Sprintf("%.2f", row.Slowdown[0]), fmt.Sprintf("%.2f", row.Slowdown[1]),
			fmt.Sprintf("%.2f", row.Fairness), fmt.Sprintf("%.3f", row.Total))
	}
	h.Table(t2)

	// Figure 3 (analytical sweep).
	h.Heading("Figure 3: throughput effect of enforcement (analytical)")
	cases, err := model.Figure3(21)
	if err != nil {
		return err
	}
	f3 := &report.Chart{Title: "throughput delta vs F=0", XLabel: "F", YLabel: "delta [%]"}
	for _, c := range cases {
		if err := f3.Add(c.Label, c.F, c.DeltaPc); err != nil {
			return err
		}
	}
	h.Chart(f3)

	// Figure 5 (time series).
	h.Heading("Figure 5: detailed gcc:eon examination (F=1/4)")
	d5, err := experiments.ExpFig5Context(ctx, io.Discard, r)
	if err != nil {
		return err
	}
	top := &report.Chart{Title: "estimated IPC_ST while running in SOE", XLabel: "cycle", YLabel: "IPC"}
	top.Add("gcc est", d5.Cycles, d5.EstST[0])
	top.Add("eon est", d5.Cycles, d5.EstST[1])
	top.Add("gcc real", d5.Cycles, constSeries(d5.RealST[0], len(d5.Cycles)))
	top.Add("eon real", d5.Cycles, constSeries(d5.RealST[1], len(d5.Cycles)))
	h.Chart(top)
	mid := &report.Chart{Title: "estimated speedups (F=1/4)", XLabel: "cycle", YLabel: "speedup"}
	mid.Add("gcc", d5.Cycles, d5.SpeedupsF[0])
	mid.Add("eon", d5.Cycles, d5.SpeedupsF[1])
	h.Chart(mid)
	bot := &report.Chart{Title: "achieved fairness per window", XLabel: "cycle", YLabel: "fairness"}
	bot.Add("F=1/4", d5.Cycles, d5.FairF)
	bot.Add("F=0", d5.Cycles, d5.Fair0)
	h.Chart(bot)

	// Matrix figures.
	runs, err := r.RunAllContext(ctx)
	if err != nil {
		return err
	}
	groups := make([]string, len(runs))
	for i, pr := range runs {
		groups[i] = pr.Pair.Name()
	}

	h.Heading("Figure 6: throughput of thread combinations")
	f6 := &report.BarChart{Title: "IPC_SOE by enforcement level", YLabel: "IPC", Groups: groups}
	for _, f := range experiments.FLevels {
		y := make([]float64, len(runs))
		for i, pr := range runs {
			y[i] = pr.ByF[f].IPCTotal
		}
		if err := f6.Add(fmt.Sprintf("F=%v", f), y); err != nil {
			return err
		}
	}
	stRef := make([]float64, len(runs))
	for i, pr := range runs {
		stRef[i] = (pr.ST[0] + pr.ST[1]) / 2
	}
	f6.Add("mean IPC_ST", stRef)
	h.Bars(f6)
	sum6, err := experiments.ExpFig6(io.Discard, runs)
	if err != nil {
		return err
	}
	h.Text("average SOE speedup over single thread: F=0 %+.1f%%, F=1/4 %+.1f%%, F=1/2 %+.1f%%, F=1 %+.1f%% (paper: 24, 21, 19, 15)",
		(sum6.AvgSpeedupByF[0]-1)*100, (sum6.AvgSpeedupByF[0.25]-1)*100,
		(sum6.AvgSpeedupByF[0.5]-1)*100, (sum6.AvgSpeedupByF[1]-1)*100)

	h.Heading("Figure 7: throughput degradation and forced switches")
	f7 := &report.BarChart{Title: "normalized throughput vs F=0", YLabel: "normalized IPC", Groups: groups}
	for _, f := range experiments.FLevels[1:] {
		y := make([]float64, len(runs))
		for i, pr := range runs {
			y[i] = pr.NormalizedThroughput(f)
		}
		f7.Add(fmt.Sprintf("F=%v", f), y)
	}
	h.Bars(f7)
	f7b := &report.BarChart{Title: "forced switches per 1000 cycles", YLabel: "forced/1k", Groups: groups}
	for _, f := range experiments.FLevels[1:] {
		y := make([]float64, len(runs))
		for i, pr := range runs {
			y[i] = pr.ByF[f].ForcedPer1k()
		}
		f7b.Add(fmt.Sprintf("F=%v", f), y)
	}
	h.Bars(f7b)
	sum7, err := experiments.ExpFig7(io.Discard, runs)
	if err != nil {
		return err
	}
	h.Text("average degradation: F=1/4 %.1f%%, F=1/2 %.1f%%, F=1 %.1f%% (paper: 2.2, 3.7, 7.2); forced-switch correlation %.2f",
		sum7.AvgDegradationByF[0.25]*100, sum7.AvgDegradationByF[0.5]*100,
		sum7.AvgDegradationByF[1]*100, sum7.Correlation)

	h.Heading("Figure 8: achieved fairness")
	f8 := &report.BarChart{Title: "achieved fairness by enforcement level", YLabel: "fairness", Groups: groups}
	for _, f := range experiments.FLevels {
		y := make([]float64, len(runs))
		for i, pr := range runs {
			y[i] = pr.Fairness(f)
		}
		f8.Add(fmt.Sprintf("F=%v", f), y)
	}
	h.Bars(f8)
	sum8, err := experiments.ExpFig8(io.Discard, runs)
	if err != nil {
		return err
	}
	h.Text("average of min(F, achieved): F=1/4 %.3f±%.3f, F=1/2 %.3f±%.3f, F=1 %.3f±%.3f; %.0f%% of F=0 runs starve a thread 10-100x (paper: over a third)",
		sum8.AvgTruncatedByF[0.25], sum8.StdTruncatedByF[0.25],
		sum8.AvgTruncatedByF[0.5], sum8.StdTruncatedByF[0.5],
		sum8.AvgTruncatedByF[1], sum8.StdTruncatedByF[1],
		sum8.StarvedShareF0*100)

	h.Heading("§6: time sharing vs the mechanism (gcc:eon)")
	ts, err := experiments.ExpTimeShareContext(ctx, io.Discard, r)
	if err != nil {
		return err
	}
	tst := stats.NewTable("policy", "fairness", "IPC", "switches/1k")
	for _, row := range ts.SimRows {
		tst.AddRow(fmt.Sprintf("time share %.0f cyc", row.QuotaCycles),
			fmt.Sprintf("%.3f", row.Fairness), fmt.Sprintf("%.3f", row.IPC),
			fmt.Sprintf("%.2f", row.SwitchesPer1k))
	}
	tst.AddRow("mechanism F=1", fmt.Sprintf("%.3f", ts.SimMechanismFairness),
		fmt.Sprintf("%.3f", ts.SimMechanismIPC), "")
	h.Table(tst)
	h.Text("analytical Example 2: time sharing 400 cyc gives fairness %.2f; the mechanism at F=1 gives %.2f",
		ts.ModelTimeShareFairness, ts.ModelMechanismFairness)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return h.Render(f)
}

func constSeries(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
