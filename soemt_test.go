package soemt_test

import (
	"math"
	"testing"

	"soemt"
)

func TestFacadeProfiles(t *testing.T) {
	names := soemt.Profiles()
	if len(names) < 12 {
		t.Fatalf("expected >=12 profiles, got %d", len(names))
	}
	p, ok := soemt.ProfileByName("gcc")
	if !ok || p.Name != "gcc" {
		t.Fatal("ProfileByName failed")
	}
	if soemt.MustProfile("eon").Name != "eon" {
		t.Fatal("MustProfile failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustProfile must panic on unknown name")
		}
	}()
	soemt.MustProfile("nope")
}

func TestFacadeMetrics(t *testing.T) {
	sp := soemt.Speedups([]float64{1.0, 0.5}, []float64{2.0, 1.0})
	if sp[0] != 0.5 || sp[1] != 0.5 {
		t.Fatal("Speedups wrong")
	}
	if soemt.FairnessMetric(sp) != 1 {
		t.Fatal("FairnessMetric wrong")
	}
	if soemt.WeightedSpeedup(sp) != 1 {
		t.Fatal("WeightedSpeedup wrong")
	}
	if math.Abs(soemt.HarmonicFairness(sp)-0.5) > 1e-12 {
		t.Fatal("HarmonicFairness wrong")
	}
}

func TestFacadeModel(t *testing.T) {
	sys := soemt.Example2()
	p, err := sys.Predict(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Fairness-1) > 1e-9 {
		t.Fatalf("Example 2 at F=1 fairness = %v", p.Fairness)
	}
}

func TestFacadeScales(t *testing.T) {
	if soemt.PaperScale().Measure != 6_000_000 {
		t.Fatal("paper scale wrong")
	}
	if soemt.QuickScale().Measure == 0 {
		t.Fatal("quick scale empty")
	}
	if soemt.DefaultMachine().Memory.MemLatency != 300 {
		t.Fatal("default machine memory latency must be 300")
	}
}

// TestFacadeQuickstart runs the documented quickstart flow end to end
// at a very small scale.
func TestFacadeQuickstart(t *testing.T) {
	scale := soemt.Scale{CacheWarm: 30_000, Warm: 30_000, Measure: 100_000, MaxCycles: 20_000_000}
	machine := soemt.DefaultMachine()
	machine.Controller.Policy = soemt.Fairness{F: 0.5}
	res, err := soemt.Run(soemt.Spec{
		Machine: machine,
		Threads: []soemt.ThreadSpec{
			{Profile: soemt.MustProfile("gcc"), Slot: 0},
			{Profile: soemt.MustProfile("eon"), Slot: 1},
		},
		Scale: scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPCTotal <= 0 || len(res.Threads) != 2 {
		t.Fatal("quickstart run produced no results")
	}
	if res.Switches.Quota == 0 {
		t.Fatal("fairness policy inactive in quickstart")
	}
	single, err := soemt.RunSingle(soemt.DefaultMachine(),
		soemt.ThreadSpec{Profile: soemt.MustProfile("gcc"), Slot: 0}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if single.Threads[0].IPC <= 0 {
		t.Fatal("single run produced no IPC")
	}
}
