package experiments

// Native Go fuzzing for the fingerprint: the cache's entire safety
// argument rests on Fingerprint being total (no panics on weird
// specs), deterministic, shaped like a sha256 hex digest, and
// sensitive to every field that changes a result.

import (
	"strings"
	"testing"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

func FuzzFingerprint(f *testing.F) {
	f.Add(300.0, uint64(700_000), 0.5, uint64(0), 0, uint8(0))
	f.Add(0.0, uint64(1), 0.0, uint64(1_000_000), 1, uint8(3))
	f.Add(-5.0, uint64(0), -1.5, ^uint64(0), -2, uint8(200))

	names := workload.Names()
	f.Fuzz(func(t *testing.T, missLat float64, measure uint64, fl float64, startSeq uint64, slot int, nameIdx uint8) {
		prof := workload.MustByName(names[int(nameIdx)%len(names)])
		m := sim.DefaultMachine()
		m.Controller.MissLat = missLat
		if fl > 0 {
			m.Controller.Policy = core.Fairness{F: fl}
		} else {
			m.Controller.Policy = core.EventOnly{}
		}
		spec := sim.Spec{
			Machine: m,
			Threads: []sim.ThreadSpec{{Profile: prof, Slot: slot, StartSeq: startSeq}},
			Scale:   sim.Scale{Measure: measure},
		}

		// Total and deterministic, even on specs Validate would reject.
		k1, err := Fingerprint(spec)
		if err != nil {
			t.Fatalf("Fingerprint error on marshalable spec: %v", err)
		}
		k2, err := Fingerprint(spec)
		if err != nil || k1 != k2 {
			t.Fatalf("Fingerprint not deterministic: %q vs %q (%v)", k1, k2, err)
		}
		if len(k1) != 64 || strings.Trim(k1, "0123456789abcdef") != "" {
			t.Fatalf("fingerprint %q is not a sha256 hex digest", k1)
		}

		// Sensitive to the measurement target (a representative field:
		// two specs differing only here must not share an entry).
		bumped := spec
		bumped.Scale.Measure++
		kb, err := Fingerprint(bumped)
		if err != nil {
			t.Fatal(err)
		}
		if kb == k1 {
			t.Fatal("fingerprint insensitive to Scale.Measure")
		}

		// The watchdog is execution policy: it must never reach the key.
		guarded := spec
		guarded.Watchdog = sim.Watchdog{Timeout: 1, StallCycles: 1}
		kg, err := Fingerprint(guarded)
		if err != nil {
			t.Fatal(err)
		}
		if kg != k1 {
			t.Fatal("watchdog settings leaked into the fingerprint")
		}
	})
}
