package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"soemt/internal/sim"
)

// The remote peer cache tier (DESIGN.md §13).
//
// A cluster of soeserve nodes shares completed results by pulling
// them from the ring owner on local miss: memory → disk → PEER →
// simulate. The tier is strictly best-effort and trust-nothing: a
// peer response is accepted only after the same sha256 content
// checksum that guards the disk layer verifies, and any failure —
// network, timeout, 5xx, corruption, schema drift — silently degrades
// to local execution. The worst case is re-simulation on this node;
// a wrong result is impossible, mirroring the corrupt-cache invariant
// the disk layer has carried since PR 2.

// ErrNoPeer reports that the peer tier had no answer without anything
// going wrong: no peer is configured for the key (this node owns it),
// or the owning node does not have the entry. Peer-fill functions
// return it (possibly wrapped) to distinguish a clean miss from a
// degraded fetch in the cluster.peer_fill_* metrics.
var ErrNoPeer = errors.New("experiments: no peer result")

// SetPeerFill installs the remote peer tier consulted on local cache
// miss (nil removes it). fn must return a VERIFIED result —
// DecodeVerifiedEntry is the intended decoder — or ErrNoPeer for a
// clean miss; any other error counts as a degraded fetch. Install it
// before the cache serves traffic, alongside SetRunFunc.
func (c *Cache) SetPeerFill(fn func(ctx context.Context, key string) (*sim.Result, error)) {
	c.peerFill = fn
}

// fetchPeer consults the peer tier for key, counting the outcome.
// Any error degrades to a nil return — the caller falls through to
// local execution, never fails the run.
func (c *Cache) fetchPeer(ctx context.Context, key string) *sim.Result {
	fn := c.peerFill
	if fn == nil {
		return nil
	}
	res, err := fn(ctx, key)
	switch {
	case err == nil && res != nil:
		c.m.peerHits.Add(1)
		return res
	case errors.Is(err, ErrNoPeer):
		c.m.peerMisses.Add(1)
	default:
		c.m.peerErrors.Add(1)
		c.logf("WARN cache: peer fill %.12s…: %v (degrading to local run)", key, err)
	}
	return nil
}

// EncodeEntry renders the wire/disk envelope for a result: schema
// version, key, sha256 content checksum, result. It is what
// GET /v1/cache/{fingerprint} serves, byte-compatible with the disk
// store's format so either side of the fetch can also be a file.
func EncodeEntry(key string, res *sim.Result) ([]byte, error) {
	sum, err := resultSum(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(diskEntry{Schema: SchemaVersion, Key: key, Sum: sum, Result: res})
}

// DecodeVerifiedEntry parses an entry envelope fetched from a peer
// and verifies it end to end: schema version, key match, and the
// sha256 checksum recomputed over the decoded result. Unlike the disk
// reader — which accepts pre-checksum legacy entries — a peer entry
// without a checksum is rejected: remote bytes crossed a network and
// get no benefit of the doubt. Every verification failure is an
// error; the peer tier turns it into a local re-simulation, never a
// wrong result.
func DecodeVerifiedEntry(data []byte, key string) (*sim.Result, error) {
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("experiments: peer entry %.12s…: %w", key, err)
	}
	if e.Schema != SchemaVersion {
		return nil, fmt.Errorf("experiments: peer entry %.12s…: schema %q, want %q", key, e.Schema, SchemaVersion)
	}
	if e.Key != key {
		return nil, fmt.Errorf("experiments: peer entry key mismatch: got %.12s…, want %.12s…", e.Key, key)
	}
	if e.Result == nil {
		return nil, fmt.Errorf("experiments: peer entry %.12s…: missing result", key)
	}
	if e.Sum == "" {
		return nil, fmt.Errorf("experiments: peer entry %.12s…: missing content checksum", key)
	}
	sum, err := resultSum(e.Result)
	if err != nil {
		return nil, fmt.Errorf("experiments: peer entry %.12s…: %w", key, err)
	}
	if sum != e.Sum {
		return nil, fmt.Errorf("experiments: peer entry %.12s…: checksum mismatch", key)
	}
	return e.Result, nil
}
