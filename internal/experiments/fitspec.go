package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"soemt/internal/core"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/trace"
	"soemt/internal/workload"
	"soemt/internal/workload/spec"
)

// Trace-to-spec calibration: given a recorded LIT-like trace of an
// unknown workload, fit a synthetic workload.Profile whose observable
// marginals — IPM (instructions/miss), no-miss IPC and CPM
// (cycles/miss) — match the trace's, and a spec.Arrival process whose
// first two inter-arrival moments match the trace's event gaps. The
// result round-trips: generating traffic from the fitted spec
// reproduces the source workload's behaviour within the documented
// tolerances below, without shipping the source profile anywhere.
//
// The profile fit is a short fixed-point iteration on the two knobs
// that dominate the marginals:
//
//	PCold     -> miss rate     (IPM ~ 1/(FracLoad·PCold))
//	ChainFrac -> ILP           (IPC ~ peak/(1 + k·ChainFrac))
//
// Each iteration runs the candidate single-thread through the runner's
// content-addressed cache (so re-fitting the same trace is free) and
// applies a multiplicative correction derived from inverting the two
// heuristics. Convergence is typically 2-4 iterations; the loop is
// capped at fitMaxIters.

// Fit tolerances: the fitted profile must reproduce the source
// marginals this closely (relative error) for Report.Within to hold.
// IPM is the best-conditioned knob; CPM compounds the errors of the
// other two, so it gets the widest band.
const (
	TolIPM       = 0.20
	TolIPCNoMiss = 0.10
	TolCPM       = 0.25
)

// fitMaxIters caps the fixed-point iteration; each iteration is one
// cached single-thread simulation.
const fitMaxIters = 6

// Marginals are the paper's per-thread workload descriptors measured
// from a single-thread run (§2: Eq. 1 terms).
type Marginals struct {
	IPM       float64 // instructions per L2 miss
	IPCNoMiss float64 // IPC with misses factored out
	CPM       float64 // compute cycles per miss (IPM / IPCNoMiss)
	IPC       float64 // raw single-thread IPC (for reporting)
}

// FitMetric is one marginal's target-vs-fitted comparison.
type FitMetric struct {
	Name      string
	Target    float64
	Fitted    float64
	RelErr    float64
	Tolerance float64
}

// Ok reports whether the metric landed inside its tolerance.
func (m FitMetric) Ok() bool { return m.RelErr <= m.Tolerance }

// FitReport is the statistical summary of a calibration.
type FitReport struct {
	Metrics []FitMetric
	Iters   int // simulations spent on the profile fit
	// Arrival moments measured from the trace events (instruction
	// units); zero EventCount means the defaults were assumed.
	EventCount int
	GapMean    float64
	GapCV      float64
}

// Within reports whether every marginal landed inside its tolerance.
func (r FitReport) Within() bool {
	for _, m := range r.Metrics {
		if !m.Ok() {
			return false
		}
	}
	return true
}

// String renders the report as a small fixed-width table.
func (r FitReport) String() string {
	out := fmt.Sprintf("fit: %d iterations, %d trace events (gap mean %.0f, cv %.2f)\n",
		r.Iters, r.EventCount, r.GapMean, r.GapCV)
	for _, m := range r.Metrics {
		status := "ok"
		if !m.Ok() {
			status = "MISS"
		}
		out += fmt.Sprintf("  %-10s target %8.3f fitted %8.3f relerr %5.1f%% (tol %4.0f%%) %s\n",
			m.Name, m.Target, m.Fitted, 100*m.RelErr, 100*m.Tolerance, status)
	}
	return out
}

// TraceFit is the outcome of fitting a synthetic spec to a trace.
type TraceFit struct {
	Source  Marginals        // marginals measured from the trace's own profile
	Fitted  workload.Profile // synthetic profile reproducing them
	Arrival spec.Arrival     // process matching the event gap moments
	Report  FitReport
}

// Spec packages the fit as a runnable workload spec: one client
// replaying the fitted profile as a single-thread bench at the given
// request rate, with the fitted arrival process. The profile travels
// inline, so the spec is self-contained (matrix expansion only — see
// Spec.Replayable).
func (tf *TraceFit) Spec(name string, rate float64, duration time.Duration) *spec.Spec {
	p := tf.Fitted
	p.Name = "" // the map key names it
	return &spec.Spec{
		Name:     name,
		Seed:     tf.Fitted.Seed,
		Scale:    "quick",
		Duration: duration,
		Profiles: map[string]workload.Profile{"fitted": p},
		Clients: []spec.Client{{
			Name:      "replay",
			Count:     1,
			Rate:      rate,
			Arrival:   tf.Arrival,
			Workloads: []spec.Entry{{Bench: "fitted", Weight: 1}},
		}},
	}
}

// measureProfile runs prof single-threaded through the cache and
// extracts its marginals by inverting Eq. 1 on the counters.
func measureProfile(ctx context.Context, r *Runner, prof workload.Profile) (Marginals, error) {
	machine := r.Opts.Machine
	machine.Controller.Policy = core.EventOnly{}
	res, err := r.cache.RunSpecContext(ctx, sim.Spec{
		Machine:  machine,
		Threads:  []sim.ThreadSpec{{Profile: prof, Slot: 0}},
		Scale:    r.Opts.Scale,
		Watchdog: r.Opts.Watchdog,
	})
	if err != nil {
		return Marginals{}, err
	}
	c := res.Threads[0].Counters
	tp, err := model.FitThread(prof.Name, c.Instrs, c.Cycles, c.Misses, r.Opts.Machine.Controller.MissLat)
	if err != nil {
		return Marginals{}, err
	}
	return Marginals{
		IPM:       tp.IPM,
		IPCNoMiss: tp.IPCNoMiss,
		CPM:       tp.IPM / tp.IPCNoMiss,
		IPC:       res.Threads[0].IPC,
	}, nil
}

// fitTemplate is the synthetic starting profile. Only PCold and
// ChainFrac are iterated; everything else is a representative mix with
// enough loads that PCold has authority over the miss rate.
func fitTemplate(seed uint64) workload.Profile {
	return workload.Profile{
		Name: "fitted", Seed: seed,
		FracLoad: 0.30, FracStore: 0.10, FracBranch: 0.15,
		ChainFrac: 0.3, DepWindow: 8,
		HotBytes: 16 << 10, WarmBytes: 128 << 10, ColdBytes: 64 << 20,
		PWarm: 0.10, PCold: 0.05,
		StrideFrac: 0.5, LoopLen: 4096,
		TakenBias: 0.6, NoiseFrac: 0.02,
	}
}

// ilpPeak/ilpSlope parameterize the IPC heuristic
// IPC ~ ilpPeak/(1 + ilpSlope·ChainFrac) used to seed and steer the
// ChainFrac iteration (same constants as the profile-only model tier).
const (
	ilpPeak  = 2.6
	ilpSlope = 2.2
)

func clampRange(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }

// FitTrace fits a synthetic profile and arrival process to the trace.
// All simulations go through r's cache; the trace's own profile is run
// once to establish the target marginals, then the candidate is
// iterated until every marginal is inside tolerance or fitMaxIters is
// spent. The returned fit carries a report either way — callers decide
// whether a miss is fatal via Report.Within.
func FitTrace(ctx context.Context, r *Runner, t *trace.Trace) (*TraceFit, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: fit: %w", err)
	}
	target, err := measureProfile(ctx, r, t.Profile)
	if err != nil {
		return nil, fmt.Errorf("experiments: fit: measuring source trace: %w", err)
	}

	// Seed the iteration by inverting the heuristics at the target.
	cand := fitTemplate(t.Profile.Seed ^ 0xF17)
	cand.PCold = clampRange(1/(target.IPM*cand.FracLoad), 1e-5, 1-cand.PWarm)
	cand.ChainFrac = clampRange((ilpPeak/target.IPCNoMiss-1)/ilpSlope, 0, 1)

	var got Marginals
	iters := 0
	for ; iters < fitMaxIters; iters++ {
		got, err = measureProfile(ctx, r, cand)
		if err != nil {
			return nil, fmt.Errorf("experiments: fit: iteration %d: %w", iters, err)
		}
		if relErr(got.IPM, target.IPM) <= TolIPM*0.5 &&
			relErr(got.IPCNoMiss, target.IPCNoMiss) <= TolIPCNoMiss*0.5 &&
			relErr(got.CPM, target.CPM) <= TolCPM*0.5 {
			iters++
			break
		}
		// Multiplicative corrections from the two heuristics: misses
		// scale with PCold (so IPM scales with 1/PCold), and
		// 1 + slope·ChainFrac scales with 1/IPC.
		cand.PCold = clampRange(cand.PCold*(got.IPM/target.IPM), 1e-5, 1-cand.PWarm)
		newChain := (1 + ilpSlope*cand.ChainFrac) * got.IPCNoMiss / target.IPCNoMiss
		cand.ChainFrac = clampRange((newChain-1)/ilpSlope, 0, 1)
	}

	arrival, count, mean, cv := fitArrival(t.Events)
	report := FitReport{
		Metrics: []FitMetric{
			{Name: "ipm", Target: target.IPM, Fitted: got.IPM, RelErr: relErr(got.IPM, target.IPM), Tolerance: TolIPM},
			{Name: "ipc_nomiss", Target: target.IPCNoMiss, Fitted: got.IPCNoMiss, RelErr: relErr(got.IPCNoMiss, target.IPCNoMiss), Tolerance: TolIPCNoMiss},
			{Name: "cpm", Target: target.CPM, Fitted: got.CPM, RelErr: relErr(got.CPM, target.CPM), Tolerance: TolCPM},
		},
		Iters:      iters,
		EventCount: count,
		GapMean:    mean,
		GapCV:      cv,
	}
	return &TraceFit{Source: target, Fitted: cand, Arrival: arrival, Report: report}, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// fitArrival picks the arrival process matching the trace's event-gap
// moments by method of moments on the coefficient of variation:
//
//	CV ≈ 1            poisson (memoryless)
//	CV > 1            weibull, shape solved from CV (heavy-tailed)
//	CV < 1            gamma, shape = 1/CV² (smoothed)
//
// Fewer than 3 events cannot support a second moment; the poisson
// default is returned with EventCount recording how little evidence
// backed it.
func fitArrival(events []trace.Event) (a spec.Arrival, count int, mean, cv float64) {
	var gaps []float64
	prev := uint64(0)
	for i, e := range events {
		if i == 0 {
			prev = e.AtInstr
			continue
		}
		gaps = append(gaps, float64(e.AtInstr-prev))
		prev = e.AtInstr
	}
	count = len(events)
	if len(gaps) < 2 {
		return spec.Arrival{Process: spec.ProcPoisson}, count, 0, 0
	}
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	if mean <= 0 {
		return spec.Arrival{Process: spec.ProcPoisson}, count, mean, 0
	}
	var ss float64
	for _, g := range gaps {
		d := g - mean
		ss += d * d
	}
	cv = math.Sqrt(ss/float64(len(gaps)-1)) / mean

	const band = 0.15 // CV within 1±band is indistinguishable from poisson
	switch {
	case math.Abs(cv-1) <= band:
		a = spec.Arrival{Process: spec.ProcPoisson}
	case cv > 1:
		a = spec.Arrival{Process: spec.ProcWeibull, Shape: weibullShapeFromCV(cv)}
	default:
		a = spec.Arrival{Process: spec.ProcGamma, Shape: 1 / (cv * cv)}
	}
	return a, count, mean, cv
}

// weibullShapeFromCV inverts the Weibull CV — strictly decreasing in
// the shape — by bisection over the heavy-tailed range.
func weibullShapeFromCV(cv float64) float64 {
	lo, hi := 0.15, 1.0 // CV(0.15) ≈ 41, CV(1) = 1: brackets any cv > 1
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if (spec.Arrival{Process: spec.ProcWeibull, Shape: mid}).CV() > cv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
