package experiments

import (
	"fmt"
	"math"
	"strings"
)

// plotSeries is one curve of an ASCII plot.
type plotSeries struct {
	Label  string
	Marker byte
	Y      []float64
}

// asciiPlot renders one or more series over a shared X axis as a
// fixed-height character grid — enough to eyeball the shapes the
// paper's figures show without any plotting dependency.
func asciiPlot(title string, xs []float64, series []plotSeries, height, width int) string {
	if height < 4 {
		height = 12
	}
	if width < 16 {
		width = 72
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			yMin = math.Min(yMin, v)
			yMax = math.Max(yMax, v)
		}
	}
	if math.IsInf(yMin, 1) {
		return title + " (no data)\n"
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	xMin, xMax := xs[0], xs[len(xs)-1]
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(width-1))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int((yMax - y) / (yMax - yMin) * float64(height-1))
		return clampInt(r, 0, height-1)
	}
	for _, s := range series {
		for i, v := range s.Y {
			if i >= len(xs) || math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			grid[row(v)][col(xs[i])] = s.Marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%8.3g", yMax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", yMin)
		case height / 2:
			label = fmt.Sprintf("%8.3g", (yMax+yMin)/2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-10.3g%*s\n", "", xMin, width-10, fmt.Sprintf("%.3g", xMax))
	for _, s := range series {
		fmt.Fprintf(&b, "%10s%c = %s\n", "", s.Marker, s.Label)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
