// Package experiments reproduces every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	Example 1 / Figure 1 — starvation demonstration
//	Table 2 / Example 2  — analytical two-thread case
//	Figure 3             — analytical throughput-vs-F sweep
//	Figure 5             — gcc:eon time series (estimation, speedups, fairness)
//	Figure 6             — throughput of all pairs at F = 0, 1/4, 1/2, 1
//	Figure 7             — throughput degradation + forced switch rate
//	Figure 8             — achieved fairness per run and truncated averages
//	Table 3              — machine configuration
//	§6 time sharing      — quota-based time sharing vs the mechanism
package experiments

import "soemt/internal/workload"

// Pair is one two-thread benchmark combination.
type Pair struct {
	A, B string
}

// Name returns the paper-style "a:b" label.
func (p Pair) Name() string { return p.A + ":" + p.B }

// Same reports whether both threads run the same benchmark.
func (p Pair) Same() bool { return p.A == p.B }

// Pairs returns the 16 benchmark combinations used throughout the
// evaluation — 8 same-benchmark pairs and 8 mixed pairs, mirroring the
// paper's §4.1 setup (which names gcc:eon, galgel:gcc, apsi:swim,
// lucas:applu, bzip2:bzip2, gcc:gcc and mgrid:mgrid among its 16).
func Pairs() []Pair {
	return []Pair{
		// Same-benchmark pairs (offset by 1M instructions at paper scale).
		{"gcc", "gcc"},
		{"eon", "eon"},
		{"bzip2", "bzip2"},
		{"mgrid", "mgrid"},
		{"swim", "swim"},
		{"mcf", "mcf"},
		{"gzip", "gzip"},
		{"twolf", "twolf"},
		// Mixed pairs. The first four are named in the paper; the rest
		// pair memory-bound with compute-bound profiles so the F=0
		// starvation spectrum matches the paper's ("over a third" of
		// runs leave one thread 10-100x slower).
		{"gcc", "eon"},
		{"galgel", "gcc"},
		{"apsi", "swim"},
		{"lucas", "applu"},
		{"mcf", "galgel"},
		{"art", "gzip"},
		{"swim", "gzip"},
		{"equake", "eon"},
	}
}

// validatePairs is called from tests: every pair must reference a
// built-in profile.
func validatePairs() error {
	for _, p := range Pairs() {
		for _, n := range []string{p.A, p.B} {
			if _, ok := workload.ByName(n); !ok {
				return &unknownProfileError{name: n}
			}
		}
	}
	return nil
}

type unknownProfileError struct{ name string }

func (e *unknownProfileError) Error() string {
	return "experiments: unknown profile " + e.name
}
