package experiments

import (
	"context"
	"math"
	"testing"

	"soemt/internal/core"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// oldTimeShareSpeedups replicates the pre-fix TimeShareFairness
// formulation (round = n·(quota+Switch_lat); ceil-based miss bound) so
// the regression test below can show what the bug predicted. Kept as
// test-only code: it exists to document the failure, not to serve.
func oldTimeShareSpeedups(s *model.System, quota float64) []float64 {
	n := float64(len(s.Threads))
	round := n * (quota + s.SwitchLat)
	out := make([]float64, len(s.Threads))
	for i, t := range s.Threads {
		ipcSOE := quota * t.IPCNoMiss / round
		if maxIPC := t.IPM / round * math.Ceil(quota/t.CPM()); quota > t.CPM() && ipcSOE > maxIPC {
			ipcSOE = maxIPC
		}
		out[i] = ipcSOE / t.IPCST(s.MissLat)
	}
	return out
}

// TestTimeShareModelTracksEngine is the regression test for the
// TimeShareFairness miss-bound bug: with a quota larger than the missy
// thread's CPM, the old formula credited that thread with several miss
// periods per residency and predicted speedups far above what the
// cycle-accurate engine delivers. The corrected model must track the
// engine; the old formulation must not (that is what made this test
// fail before the fix).
func TestTimeShareModelTracksEngine(t *testing.T) {
	r := NewRunner(testOptions())
	ctx := context.Background()

	cal, err := Calibrate(ctx, r, []Pair{{"gcc", "eon"}})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cal.System("gcc", "eon")
	if err != nil {
		t.Fatal(err)
	}
	cpmG, cpmE := sys.Threads[0].CPM(), sys.Threads[1].CPM()
	t.Logf("fitted: gcc{IPCnm=%.3f IPM=%.0f CPM=%.0f} eon{IPCnm=%.3f IPM=%.0f CPM=%.0f} SwitchLat=%.0f",
		sys.Threads[0].IPCNoMiss, sys.Threads[0].IPM, cpmG,
		sys.Threads[1].IPCNoMiss, sys.Threads[1].IPM, cpmE, sys.SwitchLat)

	// A quota several miss periods past gcc's CPM but still below
	// eon's: gcc switches on its miss long before the quota expires,
	// which is exactly the regime the old bound got wrong.
	quota := 6 * cpmG
	if quota >= cpmE {
		t.Fatalf("quota %.0f not below eon CPM %.0f; fitted parameters moved, repick the quota rule", quota, cpmE)
	}

	pr, err := r.RunPairContext(ctx, Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	m := r.Opts.Machine
	m.Controller.Policy = core.TimeShare{QuotaCycles: quota}
	res, err := sim.RunContext(ctx, sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: workload.MustByName("gcc"), Slot: 0},
			{Profile: workload.MustByName("eon"), Slot: 1},
		},
		Scale:    r.Opts.Scale,
		Watchdog: r.Opts.Watchdog,
	})
	if err != nil {
		t.Fatal(err)
	}
	simSp := core.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, pr.ST[:])

	_, newSp, err := sys.TimeShareFairness(quota)
	if err != nil {
		t.Fatal(err)
	}
	oldSp := oldTimeShareSpeedups(sys, quota)

	t.Logf("quota=%.0f  speedups: sim=[%.3f %.3f]  model=[%.3f %.3f]  old-formula=[%.3f %.3f]",
		quota, simSp[0], simSp[1], newSp[0], newSp[1], oldSp[0], oldSp[1])

	const tol = 0.15 // absolute speedup error the model must stay within
	for i, name := range []string{"gcc", "eon"} {
		newErr := math.Abs(newSp[i] - simSp[i])
		oldErr := math.Abs(oldSp[i] - simSp[i])
		t.Logf("%s: |model-sim|=%.3f |old-sim|=%.3f", name, newErr, oldErr)
		if newErr > tol {
			t.Errorf("%s: corrected model off by %.3f (> %.2f) from engine", name, newErr, tol)
		}
	}
	// The old bound must overestimate the missy thread well past the
	// tolerance — otherwise this test has lost the power to catch a
	// reintroduction of the bug.
	if oldErr := math.Abs(oldSp[0] - simSp[0]); oldErr <= tol {
		t.Errorf("old formula within tolerance (err %.3f); regression test has no power", oldErr)
	}
}

// TestCalibrationSelfConsistency: every residual recorded in the table
// must sit inside the table's own error bars — the bars are defined as
// the worst observed residual (floored), so a violation means the bar
// computation and the residuals disagree. Also pins table metadata and
// a save/load round trip through the prediction path.
func TestCalibrationSelfConsistency(t *testing.T) {
	r := NewRunner(testOptions())
	ctx := context.Background()
	pairs := []Pair{{"gcc", "eon"}, {"swim", "mcf"}}

	cal, err := Calibrate(ctx, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Source != model.SourceSimulation {
		t.Errorf("source = %q, want %q", cal.Source, model.SourceSimulation)
	}
	if cal.Scale != "custom" {
		t.Errorf("scale = %q, want custom (testOptions scale)", cal.Scale)
	}
	if got := len(cal.Pairs); got != len(pairs)*len(FLevels) {
		t.Errorf("recorded %d residual points, want %d", got, len(pairs)*len(FLevels))
	}
	t.Logf("calibration: SwitchLat=%.0f ErrIPCPc=%.2f ErrFairness=%.3f over %d points",
		cal.SwitchLat, cal.ErrIPCPc, cal.ErrFairness, len(cal.Pairs))

	for _, pt := range cal.Pairs {
		t.Logf("  %-10s F=%-5v model IPC %.3f sim %.3f (%.1f%%)  model fair %.3f sim %.3f (Δ%.3f)",
			pt.Pair, pt.F, pt.ModelIPC, pt.SimIPC, pt.IPCErrPc(), pt.ModelFairness, pt.SimFairness, pt.FairnessErr())
		if pt.IPCErrPc() > cal.ErrIPCPc {
			t.Errorf("%s F=%v: IPC residual %.2f%% outside own bar %.2f%%", pt.Pair, pt.F, pt.IPCErrPc(), cal.ErrIPCPc)
		}
		if pt.FairnessErr() > cal.ErrFairness {
			t.Errorf("%s F=%v: fairness residual %.3f outside own bar %.3f", pt.Pair, pt.F, pt.FairnessErr(), cal.ErrFairness)
		}
	}

	// The bars must stay honest: never below the floors, and bounded
	// above so a fit regression is caught. The ceilings are set by the
	// two known worst cases at this test scale — swim:mcf saturates
	// the memory system (the model assumes stalls are always hidden,
	// overestimating IPC by ~58%), and at F=1 the enforcement
	// mechanism needs more cycles than the tiny test scale provides,
	// so achieved fairness lags the model's target (Δ≈0.64).
	if cal.ErrIPCPc < 2.0 || cal.ErrIPCPc > 80 {
		t.Errorf("ErrIPCPc = %.2f, want within [2, 80]", cal.ErrIPCPc)
	}
	if cal.ErrFairness < 0.02 || cal.ErrFairness > 0.75 {
		t.Errorf("ErrFairness = %.3f, want within [0.02, 0.75]", cal.ErrFairness)
	}

	// Round trip through disk and re-predict one golden point.
	path := t.TempDir() + "/cal.json"
	if err := cal.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	sysA, _ := cal.System("gcc", "eon")
	sysB, err := loaded.System("gcc", "eon")
	if err != nil {
		t.Fatal(err)
	}
	pa, err1 := sysA.Predict(1)
	pb, err2 := sysB.Predict(1)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if pa.Total != pb.Total || pa.Fairness != pb.Fairness {
		t.Errorf("reloaded calibration predicts (%v, %v), original (%v, %v)",
			pb.Total, pb.Fairness, pa.Total, pa.Fairness)
	}
}

// TestProfileCalibrationSanity: the no-simulation fallback covers every
// built-in workload with finite parameters and honest wide bars.
func TestProfileCalibrationSanity(t *testing.T) {
	cal, err := ProfileCalibration(sim.DefaultMachine())
	if err != nil {
		t.Fatal(err)
	}
	if cal.Source != model.SourceProfile {
		t.Errorf("source = %q, want %q", cal.Source, model.SourceProfile)
	}
	if got, want := len(cal.Threads), len(workload.Names()); got != want {
		t.Errorf("calibrated %d threads, want %d", got, want)
	}
	if cal.ErrIPCPc < 25 || cal.ErrFairness < 0.25 {
		t.Errorf("profile bars (%.0f%%, %.2f) suspiciously tight for an unfitted table", cal.ErrIPCPc, cal.ErrFairness)
	}
	sys, err := cal.System("gcc", "eon")
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Predict(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p.Total) || p.Total <= 0 {
		t.Errorf("profile-calibrated prediction degenerate: total %v", p.Total)
	}
}
