package experiments

// Fault-injection regression suite: every fault the engine claims to
// tolerate — corrupt or truncated disk entries, an unusable or
// read-only cache store, worker panics and delays — must degrade to a
// cache miss, a warning, or a clean error. Never to a wrong or
// silently short result.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"soemt/internal/faultinject"
	"soemt/internal/sim"
)

// stubCache returns a persistent cache over dir whose simulations are
// stubbed with fakeResult, plus the fingerprint key of spec.
func stubCache(t *testing.T, dir string, spec sim.Spec) (*Cache, string) {
	t.Helper()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.run = func(context.Context, sim.Spec) (*sim.Result, error) {
		return fakeResult(1.25), nil
	}
	key, err := Fingerprint(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c, key
}

// Corruption anywhere in a disk entry must degrade to a miss (schema,
// key, or checksum verification fails, or the JSON no longer parses) —
// or, if the seeded garbage happens to rewrite bytes to their original
// values, to the original result. A corrupted entry must never be
// served with different contents.
func TestCorruptedEntryDegradesToMissNeverWrongResult(t *testing.T) {
	spec := testSpec(testOptions())
	srcDir := t.TempDir()
	c, key := stubCache(t, srcDir, spec)
	want, err := c.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	entry, err := os.ReadFile(c.path(key))
	if err != nil {
		t.Fatal(err)
	}

	misses, served := 0, 0
	for seed := uint64(0); seed < 32; seed++ {
		dir := t.TempDir()
		path := filepath.Join(dir, key+".json")
		if err := os.WriteFile(path, entry, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.CorruptFile(path, seed); err != nil {
			t.Fatal(err)
		}
		c2, _ := NewCache(dir)
		res, ok := c2.Get(key)
		if !ok {
			misses++
			continue
		}
		served++
		got, _ := json.Marshal(res)
		if string(got) != string(wantJSON) {
			t.Fatalf("seed %d: corrupted entry served with WRONG contents", seed)
		}
	}
	if misses == 0 {
		t.Error("no corruption seed produced a miss; corruption detection untested")
	}
	t.Logf("corruption: %d misses, %d byte-identical serves over 32 seeds", misses, served)
}

// A truncated entry (partial write that lost its tail) must be a miss,
// and a subsequent RunSpec must re-simulate and return a full result.
func TestTruncatedEntryIsMissAndResimulates(t *testing.T) {
	spec := testSpec(testOptions())
	dir := t.TempDir()
	c, key := stubCache(t, dir, spec)
	want, err := c.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := faultinject.TruncateFile(c.path(key), 0.6); err != nil {
		t.Fatal(err)
	}

	c2, key2 := stubCache(t, dir, spec)
	if key2 != key {
		t.Fatal("fingerprint changed between caches")
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("truncated entry must be a miss")
	}
	res, err := c2.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want)
	b, _ := json.Marshal(res)
	if string(a) != string(b) {
		t.Fatal("re-simulated result differs from original")
	}
	if m := c2.Metrics(); m.RunsStarted != 1 {
		t.Fatalf("expected exactly one re-simulation, metrics = %+v", m)
	}
}

// A cache directory that cannot be created (here: the path runs
// through a regular file, which fails even for root) must degrade to a
// memory-only cache with a warning — construction and runs both
// succeed.
func TestUncreatableCacheDirDegradesToMemoryOnly(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(filepath.Join(blocker, "cache"))
	if err != nil {
		t.Fatalf("NewCache must not fail on an uncreatable dir: %v", err)
	}
	if c.Degraded() == nil {
		t.Fatal("cache must record its degradation")
	}
	if c.Dir() != "" {
		t.Fatalf("degraded cache still claims dir %q", c.Dir())
	}
	var warnings atomic.Int32
	c.Logf = func(format string, args ...interface{}) {
		if strings.Contains(fmt.Sprintf(format, args...), "memory-only") {
			warnings.Add(1)
		}
	}
	c.run = func(context.Context, sim.Spec) (*sim.Result, error) {
		return fakeResult(1), nil
	}
	spec := testSpec(testOptions())
	if _, err := c.RunSpec(spec); err != nil {
		t.Fatalf("degraded cache must still run: %v", err)
	}
	if _, err := c.RunSpec(spec); err != nil {
		t.Fatal(err)
	}
	if n := warnings.Load(); n != 1 {
		t.Errorf("degradation warned %d times, want exactly 1", n)
	}
	if m := c.Metrics(); m.MemHits != 1 {
		t.Errorf("memory layer inactive after degradation: %+v", m)
	}
}

// When every disk write fails (injected at the cache.write site,
// simulating a store that turned read-only mid-run), the cache must
// keep serving correct results from memory and stop attempting writes
// after maxWriteFails consecutive failures.
func TestWriteFailuresDisableDiskWrites(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c.run = func(_ context.Context, spec sim.Spec) (*sim.Result, error) {
		return fakeResult(float64(spec.Scale.Measure)), nil
	}
	c.Faults = faultinject.New(1).Arm("cache.write", faultinject.Plan{Every: 1})
	var disabled atomic.Int32
	c.Logf = func(format string, args ...interface{}) {
		if strings.Contains(fmt.Sprintf(format, args...), "disabling disk writes") {
			disabled.Add(1)
		}
	}

	for i := 0; i < maxWriteFails+2; i++ {
		spec := testSpec(testOptions())
		spec.Scale.Measure += uint64(i) // distinct fingerprints
		res, err := c.RunSpec(spec)
		if err != nil {
			t.Fatalf("run %d: injected write failure leaked into the run: %v", i, err)
		}
		if res.Threads[0].IPC != float64(spec.Scale.Measure) {
			t.Fatalf("run %d: wrong result under write faults", i)
		}
	}
	if disabled.Load() != 1 {
		t.Errorf("disable warning emitted %d times, want 1", disabled.Load())
	}
	// Once disabled, writeDisk short-circuits before the fault site.
	if n := c.Faults.Calls("cache.write"); n != maxWriteFails {
		t.Errorf("fault site consulted %d times, want %d (writes must stop)", n, maxWriteFails)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("failed writes left %d entries on disk", len(entries))
	}
}

// An injected worker panic in RunAll must surface as a clean error
// naming the panic, never kill the process or hang the pool.
func TestInjectedWorkerPanicSurfacesAsError(t *testing.T) {
	r := stubRunner(t, func(sim.Spec) (*sim.Result, error) {
		return fakeResult(1), nil
	})
	r.Workers = 2
	r.Faults = faultinject.New(3).Arm("worker.panic", faultinject.Plan{Every: 4})
	out, err := r.RunAll()
	if err == nil {
		t.Fatal("injected worker panic must surface as an error")
	}
	if !strings.Contains(err.Error(), "worker panic") || !strings.Contains(err.Error(), "injected panic at worker.panic") {
		t.Fatalf("panic not identified in error: %v", err)
	}
	if out == nil {
		t.Fatal("RunAll must return the partial results alongside the error")
	}
}

// Injected worker delays must not change any result — only slow the
// matrix down.
func TestInjectedWorkerDelaysAreHarmless(t *testing.T) {
	run := func(faults *faultinject.Injector) []*PairRun {
		r := stubRunner(t, func(spec sim.Spec) (*sim.Result, error) {
			return fakeResult(float64(len(spec.Threads))), nil
		})
		r.Workers = 4
		r.Faults = faults
		out, err := r.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain := run(nil)
	delayed := run(faultinject.New(9).Arm("worker.delay", faultinject.Plan{Prob: 0.5, Delay: 2 * time.Millisecond}))
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(delayed)
	if string(a) != string(b) {
		t.Fatal("injected delays changed the matrix results")
	}
}

// A mid-matrix failure must still hand back the pairs that completed
// before the stop, so an interrupted invocation can flush partial
// results.
func TestRunAllReturnsPartialResultsOnFailure(t *testing.T) {
	ps := Pairs()
	failAt := ps[3].Name()
	boom := errors.New("injected mid-matrix failure")
	r := stubRunner(t, func(spec sim.Spec) (*sim.Result, error) {
		if len(spec.Threads) == 2 &&
			spec.Threads[0].Profile.Name+":"+spec.Threads[1].Profile.Name == failAt {
			return nil, boom
		}
		return fakeResult(1), nil
	})
	r.Workers = 1
	out, err := r.RunAllContext(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if len(out) != len(ps) {
		t.Fatalf("partial slice has %d slots, want %d", len(out), len(ps))
	}
	done := 0
	for i, pr := range out {
		if pr != nil {
			done++
			if pr.Pair != ps[i] {
				t.Fatalf("slot %d holds pair %v, want %v", i, pr.Pair, ps[i])
			}
		}
	}
	if done != 3 {
		t.Errorf("completed %d pairs before the failure, want 3 (Workers=1, failure at index 3)", done)
	}
}

// SetCacheDir after the first run must refuse: in-memory results from
// the old cache would shadow the new store.
func TestSetCacheDirAfterUseErrors(t *testing.T) {
	r := stubRunner(t, func(sim.Spec) (*sim.Result, error) {
		return fakeResult(1), nil
	})
	if _, err := r.STRef("gcc"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetCacheDir(t.TempDir()); err == nil {
		t.Fatal("SetCacheDir after a run must error")
	}
}

func TestInterruptMarkerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Interrupted(); ok {
		t.Fatal("fresh cache claims interruption")
	}
	if err := c.MarkInterrupted("SIGINT during RunAll"); err != nil {
		t.Fatal(err)
	}
	c2, _ := NewCache(dir)
	note, ok := c2.Interrupted()
	if !ok || !strings.Contains(note, "SIGINT") {
		t.Fatalf("marker not visible to a fresh cache: (%q, %v)", note, ok)
	}
	if err := c2.ClearInterrupted(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Interrupted(); ok {
		t.Fatal("marker survived ClearInterrupted")
	}
	if err := c2.ClearInterrupted(); err != nil {
		t.Fatalf("clearing an absent marker must be a no-op: %v", err)
	}

	// Memory-only caches have nowhere to persist a marker: all three
	// are inert no-ops.
	m := NewMemCache()
	if err := m.MarkInterrupted("x"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Interrupted(); ok {
		t.Fatal("memory-only cache claims interruption")
	}
}
