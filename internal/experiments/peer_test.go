package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"soemt/internal/faultinject"
	"soemt/internal/sim"
)

// peerStubResult builds a deterministic result distinct enough to tell
// a peer-served answer from a locally simulated one.
func peerStubResult(tag uint64) *sim.Result {
	return &sim.Result{WallCycles: 1000 + tag, IPCTotal: float64(tag)}
}

func TestPeerFillServesVerifiedEntryWithoutSimulating(t *testing.T) {
	c := NewMemCache()
	var runs int
	c.SetRunFunc(func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
		runs++
		return peerStubResult(999), nil
	})

	want := peerStubResult(7)
	c.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
		data, err := EncodeEntry(key, want)
		if err != nil {
			return nil, err
		}
		return DecodeVerifiedEntry(data, key)
	})

	res, cached, err := c.Do("peerkey", func() (*sim.Result, error) {
		runs++
		return peerStubResult(999), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("peer-served result not reported as cached")
	}
	if res.WallCycles != want.WallCycles {
		t.Fatalf("WallCycles = %d, want %d (peer result)", res.WallCycles, want.WallCycles)
	}
	if runs != 0 {
		t.Fatalf("local run fired %d times behind a peer hit, want 0", runs)
	}
	if got := c.Observability().Counter("cluster.peer_fill_hits").Load(); got != 1 {
		t.Fatalf("cluster.peer_fill_hits = %d, want 1", got)
	}

	// The fill populated the memory layer: a second call is a mem hit
	// and does not consult the peer again.
	c.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
		t.Fatal("peer consulted on a warm key")
		return nil, nil
	})
	if _, cached, err := c.Do("peerkey", nil); err != nil || !cached {
		t.Fatalf("warm re-read: cached=%v err=%v", cached, err)
	}
}

func TestPeerFillPersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := peerStubResult(3)
	c.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
		return want, nil
	})
	if _, _, err := c.Do("diskkey", nil); err != nil {
		t.Fatal(err)
	}

	// A fresh cache over the same directory serves from disk — the peer
	// fetch was persisted, so a restart costs no network round trip.
	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
		t.Fatal("peer consulted for an entry already on disk")
		return nil, nil
	})
	res, ok := c2.Get("diskkey")
	if !ok || res.WallCycles != want.WallCycles {
		t.Fatalf("disk re-read: ok=%v res=%+v", ok, res)
	}
}

func TestPeerFillMissAndErrorDegradeToLocalRun(t *testing.T) {
	cases := []struct {
		name    string
		peerErr error
		counter string
	}{
		{"clean miss", ErrNoPeer, "cluster.peer_fill_misses"},
		{"wrapped miss", fmt.Errorf("owner %s: %w", "http://n2", ErrNoPeer), "cluster.peer_fill_misses"},
		{"network error", errors.New("dial tcp: connection refused"), "cluster.peer_fill_errors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewMemCache()
			c.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
				return nil, tc.peerErr
			})
			want := peerStubResult(11)
			res, cached, err := c.Do("k", func() (*sim.Result, error) { return want, nil })
			if err != nil {
				t.Fatal(err)
			}
			if cached {
				t.Fatal("degraded peer fetch reported as cached")
			}
			if res.WallCycles != want.WallCycles {
				t.Fatalf("degraded path returned %d, want local result %d", res.WallCycles, want.WallCycles)
			}
			if got := c.Observability().Counter(tc.counter).Load(); got != 1 {
				t.Fatalf("%s = %d, want 1", tc.counter, got)
			}
		})
	}
}

func TestDecodeVerifiedEntryRejectsBadEnvelopes(t *testing.T) {
	res := peerStubResult(5)
	good, err := EncodeEntry("key1", res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeVerifiedEntry(good, "key1"); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}

	if _, err := DecodeVerifiedEntry(good, "otherkey"); err == nil {
		t.Fatal("key mismatch accepted")
	}
	if _, err := DecodeVerifiedEntry([]byte("{not json"), "key1"); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := DecodeVerifiedEntry([]byte(`{"schema":"older-v0","key":"key1"}`), "key1"); err == nil {
		t.Fatal("wrong schema accepted")
	}
	// Unlike the disk reader, a peer entry with no checksum is rejected
	// outright: remote bytes get no legacy grace.
	noSum := fmt.Sprintf(`{"schema":%q,"key":"key1","result":{"wall_cycles":1005}}`, SchemaVersion)
	if _, err := DecodeVerifiedEntry([]byte(noSum), "key1"); err == nil {
		t.Fatal("entry without checksum accepted")
	}
}

func TestPeerFillCorruptEntryDegradesToLocalRun(t *testing.T) {
	// End-to-end corruption drill: the peer returns an entry whose bytes
	// were flipped in flight (CorruptBytes, as the fault transport does).
	// DecodeVerifiedEntry must reject it and the cache must re-simulate —
	// a corrupt peer can cost a run, never produce a wrong result.
	c := NewMemCache()
	c.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
		data, err := EncodeEntry(key, peerStubResult(8))
		if err != nil {
			return nil, err
		}
		faultinject.CorruptBytes(data, 42, 0)
		return DecodeVerifiedEntry(data, key)
	})
	want := peerStubResult(21)
	res, cached, err := c.Do("k", func() (*sim.Result, error) { return want, nil })
	if err != nil {
		t.Fatal(err)
	}
	if cached || res.WallCycles != want.WallCycles {
		t.Fatalf("corrupt peer entry: cached=%v cycles=%d, want local run %d", cached, res.WallCycles, want.WallCycles)
	}
	if got := c.Observability().Counter("cluster.peer_fill_errors").Load(); got != 1 {
		t.Fatalf("cluster.peer_fill_errors = %d, want 1", got)
	}
	if got := c.Observability().Counter("runner.runs_started").Load(); got != 0 {
		// Do() with an inline fn does not go through RunSpecContext's
		// counters; this guards against accidental double-counting.
		t.Fatalf("runner.runs_started = %d, want 0", got)
	}
}
