package experiments

import (
	"context"
	"math"
	"testing"
	"time"

	"soemt/internal/trace"
	"soemt/internal/workload"
	"soemt/internal/workload/spec"
)

// gapTrace builds a trace whose events are spaced by the given gaps
// (instruction units), starting at 1000.
func gapTrace(p workload.Profile, gaps []float64) *trace.Trace {
	t := &trace.Trace{Profile: p}
	at := uint64(1000)
	for _, g := range gaps {
		at += uint64(g)
		t.Events = append(t.Events, trace.Event{AtInstr: at, Kind: trace.EventIO, StallCycles: 100})
	}
	return t
}

// The acceptance round trip: record a trace from a known profile, fit
// a synthetic spec to it, and assert the fitted profile reproduces the
// source IPM / no-miss IPC / CPM within the documented tolerances.
func TestFitTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several engine simulations")
	}
	r := NewRunner(testOptions())
	for _, name := range []string{"gcc", "mcf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			src := workload.MustByName(name)
			tr := gapTrace(src, []float64{5000, 4000, 6000, 5500, 4500, 5000, 5200})

			fit, err := FitTrace(context.Background(), r, tr)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("\n%s", fit.Report)
			if !fit.Report.Within() {
				t.Fatalf("fit outside tolerance:\n%s", fit.Report)
			}

			// The report must reflect an independent re-measurement:
			// running the fitted profile fresh reproduces the marginals.
			check, err := measureProfile(context.Background(), r, fit.Fitted)
			if err != nil {
				t.Fatal(err)
			}
			if relErr(check.IPM, fit.Source.IPM) > TolIPM {
				t.Errorf("re-measured IPM %.1f vs source %.1f exceeds %v", check.IPM, fit.Source.IPM, TolIPM)
			}
			if relErr(check.IPCNoMiss, fit.Source.IPCNoMiss) > TolIPCNoMiss {
				t.Errorf("re-measured no-miss IPC %.3f vs source %.3f exceeds %v", check.IPCNoMiss, fit.Source.IPCNoMiss, TolIPCNoMiss)
			}
			if relErr(check.CPM, fit.Source.CPM) > TolCPM {
				t.Errorf("re-measured CPM %.1f vs source %.1f exceeds %v", check.CPM, fit.Source.CPM, TolCPM)
			}

			// The emitted spec must be valid, self-contained and encode a
			// YAML document that parses back.
			s := fit.Spec("fitted-"+name, 5, 2*time.Second)
			if err := s.Validate(); err != nil {
				t.Fatalf("fitted spec invalid: %v", err)
			}
			again, err := spec.Parse(s.Encode())
			if err != nil {
				t.Fatalf("fitted spec YAML does not re-parse: %v\n---\n%s", err, s.Encode())
			}
			if _, ok := again.Resolve("fitted"); !ok {
				t.Fatal("fitted profile lost in YAML round trip")
			}
		})
	}
}

func TestFitArrivalMethodOfMoments(t *testing.T) {
	p := workload.MustByName("gcc")

	// Near-constant gaps: CV << 1 -> smoothed gamma with large shape.
	tr := gapTrace(p, []float64{1000, 1010, 990, 1005, 995, 1000, 1002, 998})
	a, count, mean, cv := fitArrival(tr.Events)
	if a.Process != spec.ProcGamma {
		t.Fatalf("near-constant gaps fitted as %q, want gamma (cv=%.3f)", a.Process, cv)
	}
	if math.Abs(mean-1000) > 10 {
		t.Fatalf("mean gap %.1f, want ~1000", mean)
	}
	if count != 8 || a.Shape < 4 {
		t.Fatalf("count=%d shape=%v, want 8 events and a strongly smoothed shape", count, a.Shape)
	}

	// Heavy-tailed gaps: CV > 1 -> weibull whose analytical CV matches
	// the measured one (that is what method-of-moments means).
	tr = gapTrace(p, []float64{100, 80, 120, 9000, 90, 110, 7000, 100, 95})
	a, _, _, cv = fitArrival(tr.Events)
	if a.Process != spec.ProcWeibull {
		t.Fatalf("bursty gaps fitted as %q, want weibull (cv=%.3f)", a.Process, cv)
	}
	if got := a.CV(); math.Abs(got-cv)/cv > 0.01 {
		t.Fatalf("weibull shape %v has CV %.3f, want measured %.3f", a.Shape, got, cv)
	}

	// Exponential-ish spread lands in the poisson band.
	tr = gapTrace(p, []float64{200, 1500, 600, 50, 900, 2500, 300, 1100, 150, 700})
	a, _, _, cv = fitArrival(tr.Events)
	if a.Process != spec.ProcPoisson {
		t.Fatalf("cv=%.3f fitted as %q, want poisson", cv, a.Process)
	}
	if a.Shape != 0 {
		t.Fatalf("poisson fit carries shape %v", a.Shape)
	}

	// Too few events for a second moment: poisson default, evidence
	// recorded in the count.
	a, count, _, _ = fitArrival(tr.Events[:2])
	if a.Process != spec.ProcPoisson || count != 2 {
		t.Fatalf("2-event trace fitted as %q (count %d), want poisson default", a.Process, count)
	}
}

func TestWeibullShapeFromCV(t *testing.T) {
	for _, k := range []float64{0.3, 0.5, 0.8} {
		cv := (spec.Arrival{Process: spec.ProcWeibull, Shape: k}).CV()
		got := weibullShapeFromCV(cv)
		if math.Abs(got-k) > 1e-6 {
			t.Errorf("shape(CV(%v)) = %v, want %v", k, got, k)
		}
	}
}

func TestFitTraceRejectsInvalidTrace(t *testing.T) {
	r := NewRunner(testOptions())
	bad := workload.MustByName("gcc")
	bad.FracLoad = 1.2
	bad.FracStore = -0.3
	_, err := FitTrace(context.Background(), r, &trace.Trace{Profile: bad})
	if err == nil {
		t.Fatal("FitTrace accepted a trace with an invalid profile")
	}
}
