package experiments

import (
	"context"
	"math"

	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// Calibration of the analytical model against the cycle-accurate
// engine (the fast tier's observe–predict–calibrate loop):
//
//  1. ThreadParams are fitted per profile by inverting Eq. 1 on the
//     counters of its single-thread reference run.
//  2. The effective Switch_lat — pipeline drain plus refill ramp,
//     which no single counter exposes — is chosen by grid search to
//     minimize the model-vs-simulation residual over the replayed
//     pairs at every enforcement level.
//  3. The surviving worst-case residuals become the table's error
//     bars, so a fast-tier answer always carries the empirically
//     observed uncertainty of the model that produced it.

// Error-bar floors: simulation noise at small scales makes residuals
// jitter between calibration runs, so bars are never reported tighter
// than this even when the replay happened to land closer.
const (
	minErrIPCPc    = 2.0
	minErrFairness = 0.02
)

// Profile-derived fallback bars: with no simulation behind the fit,
// the heuristics below are only ballpark-accurate.
const (
	profileErrIPCPc    = 50.0
	profileErrFairness = 0.5
)

// defaultSwitchLat is the effective switch overhead assumed when no
// simulation is available to fit it: the paper's representative value
// (Example 2 uses 25 cycles — pipeline drain plus refill).
const defaultSwitchLat = 25

// Calibrate fits a model.Calibration against the engine by replaying
// the given pairs (nil = the full 16-pair matrix) through r. All
// simulations go through the runner's cache, so calibrating over pairs
// that already ran — e.g. the golden suite — costs no extra engine
// time.
func Calibrate(ctx context.Context, r *Runner, pairs []Pair) (*model.Calibration, error) {
	if len(pairs) == 0 {
		pairs = Pairs()
	}
	missLat := r.Opts.Machine.Controller.MissLat

	threads := make(map[string]model.ThreadParams)
	runs := make([]*PairRun, 0, len(pairs))
	for _, p := range pairs {
		pr, err := r.RunPairContext(ctx, p)
		if err != nil {
			return nil, err
		}
		runs = append(runs, pr)
		for i, name := range []string{p.A, p.B} {
			if _, ok := threads[name]; ok {
				continue
			}
			c := pr.STRuns[i].Threads[0].Counters
			tp, err := model.FitThread(name, c.Instrs, c.Cycles, c.Misses, missLat)
			if err != nil {
				return nil, err
			}
			threads[name] = tp
		}
	}

	// Grid-search the effective Switch_lat from the bare drain length
	// upward. The score sums relative IPC error and absolute fairness
	// error so neither dimension is fitted at the other's expense.
	drain := float64(r.Opts.Machine.Controller.DrainCycles)
	bestSL, bestScore := drain, math.Inf(1)
	for sl := drain; sl <= drain+64; sl += 2 {
		res, err := residuals(runs, threads, missLat, sl)
		if err != nil {
			return nil, err
		}
		var score float64
		for _, pt := range res {
			score += pt.IPCErrPc()/100 + pt.FairnessErr()
		}
		if score < bestScore {
			bestScore, bestSL = score, sl
		}
	}

	res, err := residuals(runs, threads, missLat, bestSL)
	if err != nil {
		return nil, err
	}
	errIPC, errFair := minErrIPCPc, minErrFairness
	for _, pt := range res {
		errIPC = math.Max(errIPC, pt.IPCErrPc())
		errFair = math.Max(errFair, pt.FairnessErr())
	}

	cal := &model.Calibration{
		SchemaVersion: model.CalibrationSchemaVersion,
		Source:        model.SourceSimulation,
		Scale:         scaleName(r.Opts.Scale),
		MissLat:       missLat,
		SwitchLat:     bestSL,
		Threads:       threads,
		Pairs:         res,
		ErrIPCPc:      errIPC,
		ErrFairness:   errFair,
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	return cal, nil
}

// residuals replays every (pair, F) point analytically and pairs the
// prediction with the engine's measurement.
func residuals(runs []*PairRun, threads map[string]model.ThreadParams, missLat, switchLat float64) ([]model.PairResidual, error) {
	var out []model.PairResidual
	for _, pr := range runs {
		sys := &model.System{
			Threads:   []model.ThreadParams{threads[pr.Pair.A], threads[pr.Pair.B]},
			MissLat:   missLat,
			SwitchLat: switchLat,
		}
		for _, f := range FLevels {
			simRes := pr.ByF[f]
			if simRes == nil {
				continue
			}
			pred, err := sys.Predict(f)
			if err != nil {
				return nil, err
			}
			out = append(out, model.PairResidual{
				Pair:          pr.Pair.Name(),
				F:             f,
				ModelIPC:      pred.Total,
				SimIPC:        simRes.IPCTotal,
				ModelFairness: pred.Fairness,
				SimFairness:   pr.Fairness(f),
			})
		}
	}
	return out, nil
}

// ProfileCalibration derives a calibration from the built-in workload
// profiles alone — no simulation. The fits use the documented profile
// heuristics (IPM ≈ 1/(FracLoad·PCold); no-miss IPC set by the
// dependence-chain fraction), so the table is ballpark-accurate with
// honest ±50% bars. It is the serving fallback when no fitted table is
// supplied: a fresh soeserve can answer fast-tier requests from its
// first millisecond.
func ProfileCalibration(m sim.MachineConfig) (*model.Calibration, error) {
	threads := make(map[string]model.ThreadParams)
	for _, name := range workload.Names() {
		p, _ := workload.ByName(name)
		threads[name] = fitProfile(p)
	}
	cal := &model.Calibration{
		SchemaVersion: model.CalibrationSchemaVersion,
		Source:        model.SourceProfile,
		MissLat:       m.Controller.MissLat,
		SwitchLat:     defaultSwitchLat,
		Threads:       threads,
		ErrIPCPc:      profileErrIPCPc,
		ErrFairness:   profileErrFairness,
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	return cal, nil
}

// fitProfile maps profile knobs to model parameters using the
// calibration notes in workload/profiles.go: cold loads drive L2
// misses (ignoring MSHR coalescing), and the dependence-chain fraction
// is the dominant ILP limiter between ~1.0 and ~2.5 IPC.
func fitProfile(p workload.Profile) model.ThreadParams {
	ipm := 1.0 / math.Max(p.FracLoad*p.PCold, 1e-9)
	ipc := 2.6 / (1 + 2.2*p.ChainFrac)
	ipc = math.Min(math.Max(ipc, 0.9), 2.5)
	return model.ThreadParams{Name: p.Name, IPCNoMiss: ipc, IPM: ipm}
}

// scaleName maps a Scale back to its protocol name for the table
// header ("custom" when it matches none).
func scaleName(sc sim.Scale) string {
	switch sc {
	case sim.PaperScale():
		return "paper"
	case sim.QuickScale():
		return "quick"
	case tinyScale():
		return "tiny"
	}
	return "custom"
}

func tinyScale() sim.Scale {
	return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}
}
