package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"soemt/internal/core"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/stats"
	"soemt/internal/workload"
)

// fLabel renders an enforcement level the way the paper writes it.
func fLabel(f float64) string {
	switch f {
	case 0:
		return "F=0"
	case 0.25:
		return "F=1/4"
	case 0.5:
		return "F=1/2"
	case 1:
		return "F=1"
	default:
		return fmt.Sprintf("F=%.2f", f)
	}
}

// ExpTable3 prints the machine configuration (paper Table 3).
func ExpTable3(w io.Writer, opts Options) error {
	fmt.Fprintln(w, "Table 3: simulated machine parameters")
	fmt.Fprintln(w)
	_, err := sim.Table3(opts.Machine).WriteTo(w)
	return err
}

// ExpTable2 prints the analytical Example 2 (paper Table 2).
func ExpTable2(w io.Writer) error {
	rows, err := model.Table2()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 2: two-thread SOE with and without fairness enforcement")
	fmt.Fprintln(w, "(IPC_no_miss=2.5, Miss_lat=300, Switch_lat=25, IPM=[15000,1000])")
	fmt.Fprintln(w)
	sys := model.Example2System()
	fmt.Fprintf(w, "IPC_ST: thread1=%.3f thread2=%.3f\n\n",
		sys.Threads[0].IPCST(sys.MissLat), sys.Threads[1].IPCST(sys.MissLat))
	t := stats.NewTable("F", "IPSw1", "IPSw2", "IPC_SOE1", "IPC_SOE2",
		"slowdown1", "slowdown2", "fairness", "IPC_SOE")
	for _, row := range rows {
		t.AddRowf(fLabel(row.F),
			fmt.Sprintf("%.0f", row.IPSw[0]), fmt.Sprintf("%.0f", row.IPSw[1]),
			row.IPCSOE[0], row.IPCSOE[1],
			fmt.Sprintf("%.2f", row.Slowdown[0]), fmt.Sprintf("%.2f", row.Slowdown[1]),
			fmt.Sprintf("%.2f", row.Fairness), row.Total)
	}
	_, err = t.WriteTo(w)
	return err
}

// ExpFig3 prints the analytical throughput-vs-F sweep (paper Figure 3).
func ExpFig3(w io.Writer) error {
	cases, err := model.Figure3(21)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3: effect of fairness enforcement on throughput (analytical model)")
	fmt.Fprintln(w)
	markers := []byte{'o', '+', 'x', '*', '#', '@'}
	var series []plotSeries
	for i, c := range cases {
		series = append(series, plotSeries{
			Label:  c.Label,
			Marker: markers[i%len(markers)],
			Y:      c.DeltaPc,
		})
	}
	fmt.Fprint(w, asciiPlot("throughput delta vs F=0 [%]", cases[0].F, series, 16, 63))
	fmt.Fprintln(w)
	t := stats.NewTable("combination", "delta@F=1/4", "delta@F=1/2", "delta@F=1")
	at := func(c model.Fig3Case, f float64) string {
		best, bd := 0.0, math.Inf(1)
		for i, x := range c.F {
			if d := math.Abs(x - f); d < bd {
				bd, best = d, c.DeltaPc[i]
			}
		}
		return fmt.Sprintf("%+.1f%%", best)
	}
	for _, c := range cases {
		t.AddRow(c.Label, at(c, 0.25), at(c, 0.5), at(c, 1))
	}
	_, err = t.WriteTo(w)
	return err
}

// ExpExample1 demonstrates the starvation problem (paper Example 1 /
// Figure 1) on the gcc:eon pair; see ExpExample1Context.
func ExpExample1(w io.Writer, r *Runner) error {
	return ExpExample1Context(context.Background(), w, r)
}

// ExpExample1Context is ExpExample1 honoring ctx cancellation.
func ExpExample1Context(ctx context.Context, w io.Writer, r *Runner) error {
	pr, err := r.RunPairContext(ctx, Pair{"gcc", "eon"})
	if err != nil {
		return err
	}
	f0 := pr.ByF[0]
	sp := pr.Speedups(0)
	fmt.Fprintln(w, "Example 1: unfair execution in SOE without enforcement (gcc:eon)")
	fmt.Fprintln(w)
	t := stats.NewTable("thread", "IPC_ST", "IPC_SOE", "speedup", "slowdown")
	for i, tr := range f0.Threads {
		t.AddRowf(tr.Name, pr.ST[i], tr.IPC, sp[i], fmt.Sprintf("%.1fx", 1/math.Max(sp[i], 1e-9)))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nachieved fairness (Eq. 4): %.3f\n", pr.Fairness(0))
	fmt.Fprintf(w, "miss-induced switches: %d, total SOE throughput %.3f vs best ST %.3f\n",
		f0.Switches.Miss, f0.IPCTotal, math.Max(pr.ST[0], pr.ST[1]))
	return nil
}

// Fig5Data carries the time series of the detailed gcc:eon run.
type Fig5Data struct {
	Cycles    []float64
	EstST     [2][]float64 // estimated IPC_ST per thread (F=1/4 run)
	RealST    [2]float64   // reference single-thread IPC
	SpeedupsF [2][]float64 // estimated speedups with enforcement (F=1/4)
	Speedups0 [2][]float64 // estimated speedups without enforcement
	FairF     []float64    // achieved per-window fairness, F=1/4
	Fair0     []float64    // achieved per-window fairness, F=0
}

// ExpFig5 reproduces the paper's detailed examination (Figure 5):
// counter-based IPC_ST estimation, per-thread speedups with and
// without enforcement, and achieved fairness over time for gcc:eon at
// F = 1/4. See ExpFig5Context.
func ExpFig5(w io.Writer, r *Runner) (*Fig5Data, error) {
	return ExpFig5Context(context.Background(), w, r)
}

// ExpFig5Context is ExpFig5 honoring ctx cancellation.
func ExpFig5Context(ctx context.Context, w io.Writer, r *Runner) (*Fig5Data, error) {
	pr, err := r.RunPairContext(ctx, Pair{"gcc", "eon"})
	if err != nil {
		return nil, err
	}
	rf := pr.ByF[0.25]
	r0 := pr.ByF[0]
	d := &Fig5Data{RealST: pr.ST}
	n := len(rf.Samples)
	if len(r0.Samples) < n {
		n = len(r0.Samples)
	}
	for i := 0; i < n; i++ {
		sf, s0 := rf.Samples[i], r0.Samples[i]
		d.Cycles = append(d.Cycles, float64(sf.Cycle))
		var spF, sp0 [2]float64
		for t := 0; t < 2; t++ {
			d.EstST[t] = append(d.EstST[t], sf.Threads[t].EstIPCST)
			spF[t] = safeDiv(sf.Threads[t].WindowIPC, sf.Threads[t].EstIPCST)
			sp0[t] = safeDiv(s0.Threads[t].WindowIPC, s0.Threads[t].EstIPCST)
			d.SpeedupsF[t] = append(d.SpeedupsF[t], spF[t])
			d.Speedups0[t] = append(d.Speedups0[t], sp0[t])
		}
		d.FairF = append(d.FairF, core.FairnessMetric(spF[:]))
		d.Fair0 = append(d.Fair0, core.FairnessMetric(sp0[:]))
	}

	fmt.Fprintln(w, "Figure 5: detailed examination of gcc:eon (F = 1/4)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "real IPC_ST: gcc=%.3f eon=%.3f\n\n", pr.ST[0], pr.ST[1])
	fmt.Fprint(w, asciiPlot("(top) estimated IPC_ST while running in SOE",
		d.Cycles, []plotSeries{
			{Label: "gcc est IPC_ST", Marker: 'g', Y: d.EstST[0]},
			{Label: "eon est IPC_ST", Marker: 'e', Y: d.EstST[1]},
		}, 12, 63))
	fmt.Fprintln(w)
	fmt.Fprint(w, asciiPlot("(middle) estimated speedups, F=1/4",
		d.Cycles, []plotSeries{
			{Label: "gcc speedup", Marker: 'g', Y: d.SpeedupsF[0]},
			{Label: "eon speedup", Marker: 'e', Y: d.SpeedupsF[1]},
		}, 12, 63))
	fmt.Fprintln(w)
	fmt.Fprint(w, asciiPlot("(bottom) achieved fairness per window",
		d.Cycles, []plotSeries{
			{Label: "F=1/4 enforced", Marker: 'f', Y: d.FairF},
			{Label: "F=0 (none)", Marker: '0', Y: d.Fair0},
		}, 12, 63))

	meanFair := stats.Mean(d.FairF)
	meanFair0 := stats.Mean(d.Fair0)
	gccShareGain := safeDiv(rf.Threads[0].IPC, r0.Threads[0].IPC)
	fmt.Fprintf(w, "\nmean window fairness: F=1/4 %.3f vs F=0 %.3f\n", meanFair, meanFair0)
	fmt.Fprintf(w, "gcc IPC with enforcement / without: %.1fx\n", gccShareGain)
	return d, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig6Summary aggregates Figure 6.
type Fig6Summary struct {
	AvgSpeedupByF map[float64]float64 // mean SOE-over-ST speedup per F level
}

// ExpFig6 reproduces Figure 6: per-pair throughput (stacked per-thread
// IPC_SOE) at every enforcement level plus single-thread references.
func ExpFig6(w io.Writer, runs []*PairRun) (*Fig6Summary, error) {
	fmt.Fprintln(w, "Figure 6: throughput (IPC) of thread combinations")
	fmt.Fprintln(w)
	t := stats.NewTable("pair", "IPC_ST(a)", "IPC_ST(b)",
		"SOE F=0 (a+b)", "F=1/4", "F=1/2", "F=1")
	stacked := func(r *sim.Result) string {
		return fmt.Sprintf("%.2f (%.2f+%.2f)", r.IPCTotal, r.Threads[0].IPC, r.Threads[1].IPC)
	}
	for _, pr := range runs {
		t.AddRow(pr.Pair.Name(),
			fmt.Sprintf("%.2f", pr.ST[0]), fmt.Sprintf("%.2f", pr.ST[1]),
			stacked(pr.ByF[0]), stacked(pr.ByF[0.25]), stacked(pr.ByF[0.5]), stacked(pr.ByF[1]))
	}
	if _, err := t.WriteTo(w); err != nil {
		return nil, err
	}

	sum := &Fig6Summary{AvgSpeedupByF: map[float64]float64{}}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "average speedup of SOE over single thread (paper: 24%, 21%, 19%, 15%):")
	for _, f := range FLevels {
		var sp []float64
		for _, pr := range runs {
			sp = append(sp, pr.SOESpeedup(f))
		}
		m := stats.Mean(sp)
		sum.AvgSpeedupByF[f] = m
		fmt.Fprintf(w, "  %-6s %+.1f%%\n", fLabel(f), (m-1)*100)
	}
	return sum, nil
}

// Fig7Summary aggregates Figure 7.
type Fig7Summary struct {
	AvgDegradationByF map[float64]float64 // mean 1 - normalized throughput
	Correlation       float64             // forced-switch rate vs degradation at F=1
}

// ExpFig7 reproduces Figure 7: throughput degradation due to fairness
// enforcement and the forced-switch rate.
func ExpFig7(w io.Writer, runs []*PairRun) (*Fig7Summary, error) {
	fmt.Fprintln(w, "Figure 7: throughput degradation and forced switches")
	fmt.Fprintln(w)
	t := stats.NewTable("pair",
		"norm F=1/4", "norm F=1/2", "norm F=1",
		"forced/1k F=1/4", "forced/1k F=1/2", "forced/1k F=1")
	for _, pr := range runs {
		t.AddRow(pr.Pair.Name(),
			fmt.Sprintf("%.3f", pr.NormalizedThroughput(0.25)),
			fmt.Sprintf("%.3f", pr.NormalizedThroughput(0.5)),
			fmt.Sprintf("%.3f", pr.NormalizedThroughput(1)),
			fmt.Sprintf("%.2f", pr.ByF[0.25].ForcedPer1k()),
			fmt.Sprintf("%.2f", pr.ByF[0.5].ForcedPer1k()),
			fmt.Sprintf("%.2f", pr.ByF[1].ForcedPer1k()))
	}
	if _, err := t.WriteTo(w); err != nil {
		return nil, err
	}

	sum := &Fig7Summary{AvgDegradationByF: map[float64]float64{}}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "average throughput degradation (paper: 2.2%, 3.7%, 7.2%):")
	for _, f := range FLevels[1:] {
		var deg []float64
		for _, pr := range runs {
			deg = append(deg, 1-pr.NormalizedThroughput(f))
		}
		m := stats.Mean(deg)
		sum.AvgDegradationByF[f] = m
		fmt.Fprintf(w, "  %-6s %.1f%%\n", fLabel(f), m*100)
	}

	// Correlation between forced-switch rate and degradation at F=1
	// (the paper notes "high correlation").
	var xs, ys []float64
	for _, pr := range runs {
		xs = append(xs, pr.ByF[1].ForcedPer1k())
		ys = append(ys, 1-pr.NormalizedThroughput(1))
	}
	sum.Correlation = pearson(xs, ys)
	fmt.Fprintf(w, "\ncorrelation(forced switches, degradation) at F=1: %.2f\n", sum.Correlation)
	return sum, nil
}

func pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Fig8Summary aggregates Figure 8.
type Fig8Summary struct {
	AchievedByF     map[float64][]float64 // per-run achieved fairness, sorted by F=0 fairness
	AvgTruncatedByF map[float64]float64   // mean of min(F, achieved)
	StdTruncatedByF map[float64]float64
	UnfairShareF0   float64 // fraction of F=0 runs with fairness < 0.1
	StarvedShareF0  float64 // fraction of F=0 runs with a thread 10-100x slower
}

// ExpFig8 reproduces Figure 8: achieved fairness with and without
// enforcement (left), and the truncated averages (right).
func ExpFig8(w io.Writer, runs []*PairRun) (*Fig8Summary, error) {
	ordered := append([]*PairRun(nil), runs...)
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].Fairness(0) < ordered[j].Fairness(0)
	})

	fmt.Fprintln(w, "Figure 8 (left): achieved fairness, runs ordered by F=0 fairness")
	fmt.Fprintln(w)
	t := stats.NewTable("pair", "F=0", "F=1/4", "F=1/2", "F=1")
	sum := &Fig8Summary{
		AchievedByF:     map[float64][]float64{},
		AvgTruncatedByF: map[float64]float64{},
		StdTruncatedByF: map[float64]float64{},
	}
	unfair, starved := 0, 0
	for _, pr := range ordered {
		row := []string{pr.Pair.Name()}
		for _, f := range FLevels {
			af := pr.Fairness(f)
			sum.AchievedByF[f] = append(sum.AchievedByF[f], af)
			row = append(row, fmt.Sprintf("%.3f", af))
		}
		if pr.Fairness(0) < 0.1 {
			unfair++
		}
		// The abstract's criterion: one thread 10-100x slower than its
		// single-thread performance (min speedup below 0.1).
		if stats.Min(pr.Speedups(0)) < 0.1 {
			starved++
		}
		t.AddRow(row...)
	}
	sum.UnfairShareF0 = float64(unfair) / float64(len(ordered))
	sum.StarvedShareF0 = float64(starved) / float64(len(ordered))
	if _, err := t.WriteTo(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "\nruns with F=0 fairness < 0.1: %d of %d\n", unfair, len(ordered))
	fmt.Fprintf(w, "runs with a thread 10-100x slower at F=0: %d of %d (paper: over a third)\n",
		starved, len(ordered))

	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 8 (right): average of min(F, achieved) ± stddev")
	t2 := stats.NewTable("target", "mean", "stddev")
	for _, f := range FLevels {
		var tr []float64
		for _, pr := range ordered {
			tr = append(tr, core.TruncatedFairness(f, pr.Fairness(f)))
		}
		sum.AvgTruncatedByF[f] = stats.Mean(tr)
		sum.StdTruncatedByF[f] = stats.StdDev(tr)
		t2.AddRow(fLabel(f), fmt.Sprintf("%.3f", sum.AvgTruncatedByF[f]),
			fmt.Sprintf("%.3f", sum.StdTruncatedByF[f]))
	}
	_, err := t2.WriteTo(w)
	return sum, err
}

// TimeShareRow is one simulated time-sharing configuration.
type TimeShareRow struct {
	QuotaCycles   float64
	Fairness      float64
	IPC           float64
	SwitchesPer1k float64
}

// TimeShareSummary aggregates the §6 comparison.
type TimeShareSummary struct {
	ModelTimeShareFairness float64
	ModelMechanismFairness float64
	SimRows                []TimeShareRow // swept quotas
	SimMechanismFairness   float64
	SimMechanismIPC        float64
}

// ExpTimeShare reproduces the §6 discussion: simple time sharing is
// ineffective for producing high fairness with small performance
// degradation — a small quota buys fairness with frequent pipeline
// flushes, a large quota keeps throughput but rarely achieves fair
// execution. The mechanism delivers fairness at high throughput. Both
// the analytical Example 2 numbers and a simulated quota sweep on
// gcc:eon are shown. See ExpTimeShareContext.
func ExpTimeShare(w io.Writer, r *Runner) (*TimeShareSummary, error) {
	return ExpTimeShareContext(context.Background(), w, r)
}

// ExpTimeShareContext is ExpTimeShare honoring ctx cancellation.
func ExpTimeShareContext(ctx context.Context, w io.Writer, r *Runner) (*TimeShareSummary, error) {
	sum := &TimeShareSummary{}

	sys := model.Example2System()
	tsFair, tsSp, err := sys.TimeShareFairness(400)
	if err != nil {
		return nil, err
	}
	mech, err := sys.Predict(1)
	if err != nil {
		return nil, err
	}
	sum.ModelTimeShareFairness = tsFair
	sum.ModelMechanismFairness = mech.Fairness
	fmt.Fprintln(w, "§6: simple time sharing vs the fairness mechanism")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "analytical (Example 2, 400-cycle quota): speedups [%.2f %.2f], fairness %.2f\n",
		tsSp[0], tsSp[1], tsFair)
	fmt.Fprintf(w, "analytical (mechanism, F=1):            speedups [%.2f %.2f], fairness %.2f\n",
		mech.Speedup[0], mech.Speedup[1], mech.Fairness)

	pr, err := r.RunPairContext(ctx, Pair{"gcc", "eon"})
	if err != nil {
		return nil, err
	}
	sum.SimMechanismFairness = pr.Fairness(1)
	sum.SimMechanismIPC = pr.ByF[1].IPCTotal

	fmt.Fprintln(w)
	fmt.Fprintln(w, "simulated gcc:eon:")
	t := stats.NewTable("policy", "fairness", "IPC", "switches/1k cycles")
	for _, q := range []float64{400, 2000, 10000, 50000} {
		m := r.Opts.Machine
		m.Controller.Policy = core.TimeShare{QuotaCycles: q}
		res, err := sim.RunContext(ctx, sim.Spec{
			Machine: m,
			Threads: []sim.ThreadSpec{
				{Profile: workload.MustByName("gcc"), Slot: 0},
				{Profile: workload.MustByName("eon"), Slot: 1},
			},
			Scale:    r.Opts.Scale,
			Watchdog: r.Opts.Watchdog,
		})
		if err != nil {
			return nil, err
		}
		sp := core.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, pr.ST[:])
		row := TimeShareRow{
			QuotaCycles:   q,
			Fairness:      core.FairnessMetric(sp),
			IPC:           res.IPCTotal,
			SwitchesPer1k: float64(res.Switches.Total()) / float64(res.WallCycles) * 1000,
		}
		sum.SimRows = append(sum.SimRows, row)
		t.AddRow(fmt.Sprintf("time share %.0f cyc", q),
			fmt.Sprintf("%.3f", row.Fairness),
			fmt.Sprintf("%.3f", row.IPC),
			fmt.Sprintf("%.2f", row.SwitchesPer1k))
	}
	mechRes := pr.ByF[1]
	t.AddRow("mechanism F=1",
		fmt.Sprintf("%.3f", sum.SimMechanismFairness),
		fmt.Sprintf("%.3f", sum.SimMechanismIPC),
		fmt.Sprintf("%.2f", float64(mechRes.Switches.Total())/float64(mechRes.WallCycles)*1000))
	t.AddRow("event-only F=0",
		fmt.Sprintf("%.3f", pr.Fairness(0)),
		fmt.Sprintf("%.3f", pr.ByF[0].IPCTotal),
		fmt.Sprintf("%.2f", float64(pr.ByF[0].Switches.Total())/float64(pr.ByF[0].WallCycles)*1000))
	if _, err := t.WriteTo(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "\nsmall quotas buy fairness with heavy switching (throughput cost);")
	fmt.Fprintln(w, "large quotas keep throughput but lose fairness; the mechanism needs")
	fmt.Fprintln(w, "far fewer switches for its fairness level.")
	return sum, nil
}
