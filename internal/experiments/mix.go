package experiments

import (
	"context"
	"fmt"
	"strings"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// ParseMix resolves a workload list ("gcc:mcf:swim:eon", commas also
// accepted) into thread specs in slot order. Repeated benchmarks get
// the paper's 100k-instruction start offset per extra copy so two
// copies never run in lockstep (§5 of DESIGN.md).
func ParseMix(arg string) ([]sim.ThreadSpec, error) {
	sep := ":"
	if strings.Contains(arg, ",") {
		sep = ","
	}
	var names []string
	for _, n := range strings.Split(arg, sep) {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return MixSpecs(names)
}

// MixSpecs builds thread specs from profile names; see ParseMix.
func MixSpecs(names []string) ([]sim.ThreadSpec, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("empty workload mix")
	}
	var specs []sim.ThreadSpec
	seen := map[string]int{}
	for i, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown profile %q (try soetrace -list)", n)
		}
		ts := sim.ThreadSpec{Profile: p, Slot: i}
		if prev := seen[n]; prev > 0 {
			ts.StartSeq = uint64(prev) * 100_000
		}
		seen[n]++
		specs = append(specs, ts)
	}
	return specs, nil
}

// RunMix runs the mix on machine m through the cache and returns the
// result plus per-thread speedups against event-only single-thread
// references (the Eq. 3 denominators). Reference runs share the cache,
// so sweeps over a policy parameter pay for them once.
func RunMix(ctx context.Context, c *Cache, wd sim.Watchdog, m sim.MachineConfig, specs []sim.ThreadSpec, sc sim.Scale) (*sim.Result, []float64, error) {
	res, err := c.RunSpecContext(ctx, sim.Spec{Machine: m, Threads: specs, Scale: sc, Watchdog: wd})
	if err != nil {
		return nil, nil, err
	}
	ipc := make([]float64, len(specs))
	st := make([]float64, len(specs))
	for i, ts := range specs {
		ipc[i] = res.Threads[i].IPC
		refMachine := sim.DefaultMachine()
		refMachine.Controller.Policy = core.EventOnly{}
		ref, err := c.RunSpecContext(ctx, sim.Spec{
			Machine:  refMachine,
			Threads:  []sim.ThreadSpec{{Profile: ts.Profile, Slot: ts.Slot, StartSeq: ts.StartSeq}},
			Scale:    sc,
			Watchdog: wd,
		})
		if err != nil {
			return nil, nil, err
		}
		st[i] = ref.Threads[0].IPC
	}
	return res, core.Speedups(ipc, st), nil
}
