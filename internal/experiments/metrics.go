package experiments

import (
	"fmt"
	"sync/atomic"
	"time"
)

// RunnerMetrics is a point-in-time snapshot of the experiment engine's
// instrumentation: how many simulations actually executed, how many
// were served from the cache layers, and the aggregate simulation
// rate. Obtain one from Runner.Metrics or Cache.Metrics.
type RunnerMetrics struct {
	RunsStarted   uint64 // simulations dispatched to sim.Run
	RunsCompleted uint64 // simulations that returned a result
	RunsFailed    uint64 // simulations that returned an error
	TruncatedRuns uint64 // completed runs with Result.Truncated set

	MemHits   uint64 // served from the in-memory layer
	DiskHits  uint64 // served from the on-disk store
	DedupHits uint64 // joined an identical in-flight run (singleflight)
	Misses    uint64 // required a fresh simulation

	SimulatedCycles uint64        // measured cycles across completed runs
	SimWall         time.Duration // wall time summed across completed runs
}

// CacheHits returns hits across all layers (memory, disk, in-flight).
func (m RunnerMetrics) CacheHits() uint64 { return m.MemHits + m.DiskHits + m.DedupHits }

// CyclesPerSec returns the aggregate simulation throughput in
// simulated cycles per wall-clock second of simulation time.
func (m RunnerMetrics) CyclesPerSec() float64 {
	if m.SimWall <= 0 {
		return 0
	}
	return float64(m.SimulatedCycles) / m.SimWall.Seconds()
}

// String renders a one-line summary suitable for Progress callbacks.
func (m RunnerMetrics) String() string {
	return fmt.Sprintf(
		"runs=%d/%d (failed=%d truncated=%d) cache hits=%d (mem=%d disk=%d dedup=%d) misses=%d sim=%.2gMcyc %.3gMcyc/s wall=%s",
		m.RunsCompleted, m.RunsStarted, m.RunsFailed, m.TruncatedRuns,
		m.CacheHits(), m.MemHits, m.DiskHits, m.DedupHits, m.Misses,
		float64(m.SimulatedCycles)/1e6, m.CyclesPerSec()/1e6,
		m.SimWall.Round(time.Millisecond))
}

// metrics is the lock-free collector behind RunnerMetrics. All fields
// are updated with atomics; snapshot() is safe to call while runs are
// in flight (it is a consistent-enough view for progress reporting).
type metrics struct {
	runsStarted   atomic.Uint64
	runsCompleted atomic.Uint64
	runsFailed    atomic.Uint64
	truncated     atomic.Uint64

	memHits   atomic.Uint64
	diskHits  atomic.Uint64
	dedupHits atomic.Uint64
	misses    atomic.Uint64

	simCycles    atomic.Uint64
	simWallNanos atomic.Int64
}

func (m *metrics) snapshot() RunnerMetrics {
	return RunnerMetrics{
		RunsStarted:     m.runsStarted.Load(),
		RunsCompleted:   m.runsCompleted.Load(),
		RunsFailed:      m.runsFailed.Load(),
		TruncatedRuns:   m.truncated.Load(),
		MemHits:         m.memHits.Load(),
		DiskHits:        m.diskHits.Load(),
		DedupHits:       m.dedupHits.Load(),
		Misses:          m.misses.Load(),
		SimulatedCycles: m.simCycles.Load(),
		SimWall:         time.Duration(m.simWallNanos.Load()),
	}
}
