package experiments

import (
	"fmt"
	"time"

	"soemt/internal/obs"
)

// RunnerMetrics is a point-in-time snapshot of the experiment engine's
// instrumentation: how many simulations actually executed, how many
// were served from the cache layers, and the aggregate simulation
// rate. Obtain one from Runner.Metrics or Cache.Metrics.
type RunnerMetrics struct {
	RunsStarted   uint64 // simulations dispatched to sim.Run
	RunsCompleted uint64 // simulations that returned a result
	RunsFailed    uint64 // simulations that returned an error
	TruncatedRuns uint64 // completed runs with Result.Truncated set

	MemHits   uint64 // served from the in-memory layer
	DiskHits  uint64 // served from the on-disk store
	DedupHits uint64 // joined an identical in-flight run (singleflight)
	Misses    uint64 // required a fresh simulation

	SimulatedCycles uint64        // measured cycles across completed runs
	SimWall         time.Duration // wall time summed across completed runs
}

// CacheHits returns hits across all layers (memory, disk, in-flight).
func (m RunnerMetrics) CacheHits() uint64 { return m.MemHits + m.DiskHits + m.DedupHits }

// CyclesPerSec returns the aggregate simulation throughput in
// simulated cycles per wall-clock second of simulation time.
func (m RunnerMetrics) CyclesPerSec() float64 {
	if m.SimWall <= 0 {
		return 0
	}
	return float64(m.SimulatedCycles) / m.SimWall.Seconds()
}

// String renders a one-line summary suitable for Progress callbacks.
func (m RunnerMetrics) String() string {
	return fmt.Sprintf(
		"runs=%d/%d (failed=%d truncated=%d) cache hits=%d (mem=%d disk=%d dedup=%d) misses=%d sim=%.2gMcyc %.3gMcyc/s wall=%s",
		m.RunsCompleted, m.RunsStarted, m.RunsFailed, m.TruncatedRuns,
		m.CacheHits(), m.MemHits, m.DiskHits, m.DedupHits, m.Misses,
		float64(m.SimulatedCycles)/1e6, m.CyclesPerSec()/1e6,
		m.SimWall.Round(time.Millisecond))
}

// metrics is the collector behind RunnerMetrics, backed by the
// observability registry's atomic counters (DESIGN.md §10) so the same
// values are visible through Cache.Observability alongside everything
// the simulations publish there. All updates are atomic adds;
// snapshot() is safe to call from any goroutine while runs are in
// flight (the previous ad-hoc atomic fields predated the registry and
// could not be aggregated with per-run metrics) — it is a
// consistent-enough view for progress reporting, not a transaction.
type metrics struct {
	reg *obs.Registry

	runsStarted   *obs.Counter
	runsCompleted *obs.Counter
	runsFailed    *obs.Counter
	truncated     *obs.Counter

	memHits   *obs.Counter
	diskHits  *obs.Counter
	dedupHits *obs.Counter
	misses    *obs.Counter

	// dedupRetries counts singleflight followers that re-elected a new
	// leader because the previous one's ctx was cancelled mid-run
	// (DESIGN.md §11); visible via the registry as cache.dedup_retries.
	dedupRetries *obs.Counter

	// Peer cache tier outcomes (DESIGN.md §13): hits are sha256-verified
	// results pulled from the ring owner, misses are clean ErrNoPeer
	// answers, errors are degraded fetches (network fault, corruption,
	// schema drift) that fell through to local execution.
	peerHits   *obs.Counter
	peerMisses *obs.Counter
	peerErrors *obs.Counter

	simCycles    *obs.Counter
	simWallNanos *obs.Counter
}

// newMetrics resolves the collector's counters in reg (a fresh
// registry when nil).
func newMetrics(reg *obs.Registry) metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return metrics{
		reg:           reg,
		runsStarted:   reg.Counter("runner.runs_started"),
		runsCompleted: reg.Counter("runner.runs_completed"),
		runsFailed:    reg.Counter("runner.runs_failed"),
		truncated:     reg.Counter("runner.runs_truncated"),
		memHits:       reg.Counter("cache.mem_hits"),
		diskHits:      reg.Counter("cache.disk_hits"),
		dedupHits:     reg.Counter("cache.dedup_hits"),
		misses:        reg.Counter("cache.misses"),
		dedupRetries:  reg.Counter("cache.dedup_retries"),
		peerHits:      reg.Counter("cluster.peer_fill_hits"),
		peerMisses:    reg.Counter("cluster.peer_fill_misses"),
		peerErrors:    reg.Counter("cluster.peer_fill_errors"),
		simCycles:     reg.Counter("runner.sim_cycles"),
		simWallNanos:  reg.Counter("runner.sim_wall_nanos"),
	}
}

func (m *metrics) snapshot() RunnerMetrics {
	return RunnerMetrics{
		RunsStarted:     m.runsStarted.Load(),
		RunsCompleted:   m.runsCompleted.Load(),
		RunsFailed:      m.runsFailed.Load(),
		TruncatedRuns:   m.truncated.Load(),
		MemHits:         m.memHits.Load(),
		DiskHits:        m.diskHits.Load(),
		DedupHits:       m.dedupHits.Load(),
		Misses:          m.misses.Load(),
		SimulatedCycles: m.simCycles.Load(),
		SimWall:         time.Duration(m.simWallNanos.Load()),
	}
}
