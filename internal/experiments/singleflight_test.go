package experiments

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"soemt/internal/sim"
)

// Regression: a singleflight follower that joined a leader whose ctx
// was then cancelled must not inherit the leader's ctx.Err(). The
// follower's own ctx is live, so it must elect itself the new leader,
// rerun, and succeed. Before the fix the follower returned
// context.Canceled for a request nobody cancelled.
//
// Runs under -race in CI (the experiments package is in the race step).
func TestSingleflightFollowerSurvivesLeaderCancel(t *testing.T) {
	c := NewMemCache()
	spec := testSpec(testOptions())

	var runs atomic.Int32
	leaderIn := make(chan struct{})
	c.run = func(ctx context.Context, _ sim.Spec) (*sim.Result, error) {
		if runs.Add(1) == 1 {
			close(leaderIn)
			<-ctx.Done() // the leader dies of its own cancellation
			return nil, ctx.Err()
		}
		return fakeResult(1.5), nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.RunSpecContext(leaderCtx, spec)
		leaderErr <- err
	}()
	<-leaderIn

	type out struct {
		res *sim.Result
		err error
	}
	followerOut := make(chan out, 1)
	go func() {
		res, err := c.RunSpecContext(context.Background(), spec)
		followerOut <- out{res, err}
	}()
	// Let the follower reach the singleflight wait before the leader is
	// cancelled; even if it arrives late it self-elects, so this only
	// affects whether the dedup_retries assertion below is meaningful.
	time.Sleep(50 * time.Millisecond)
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	fo := <-followerOut
	if fo.err != nil {
		t.Fatalf("follower with a live ctx inherited the leader's fate: %v", fo.err)
	}
	if fo.res == nil || fo.res.IPCTotal != 3.0 {
		t.Fatalf("follower result = %+v, want the rerun's result", fo.res)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want 2 (cancelled leader + re-elected follower)", got)
	}
	if got := c.Observability().Counter("cache.dedup_retries").Load(); got != 1 {
		t.Fatalf("cache.dedup_retries = %d, want 1", got)
	}

	// The cell is not poisoned: a later call is a plain memory hit.
	res, err := c.RunSpec(spec)
	if err != nil || res != fo.res {
		t.Fatalf("post-recovery lookup = (%v, %v), want the shared result", res, err)
	}
	if m := c.Metrics(); m.MemHits != 1 {
		t.Fatalf("expected a memory hit after recovery, metrics = %+v", m)
	}
}

// A follower whose OWN ctx dies while waiting must return its ctx
// error promptly instead of blocking on a leader that never finishes.
func TestSingleflightFollowerHonorsOwnCancel(t *testing.T) {
	c := NewMemCache()
	spec := testSpec(testOptions())

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	c.run = func(ctx context.Context, _ sim.Spec) (*sim.Result, error) {
		close(leaderIn)
		<-release
		return fakeResult(1.0), nil
	}
	go c.RunSpec(spec)
	<-leaderIn

	followerCtx, cancelFollower := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.RunSpecContext(followerCtx, spec)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelFollower()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error = %v, want its own context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not honor its own cancellation while waiting")
	}
	close(release)
}

// A genuine simulation failure (not a cancellation) must still
// propagate to every waiting follower — re-election is only for
// leader-ctx death, never a retry loop for deterministic errors.
func TestSingleflightRealErrorsPropagate(t *testing.T) {
	c := NewMemCache()
	spec := testSpec(testOptions())

	boom := errors.New("deterministic simulation failure")
	var runs atomic.Int32
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	c.run = func(ctx context.Context, _ sim.Spec) (*sim.Result, error) {
		if runs.Add(1) == 1 {
			close(leaderIn)
		}
		<-release
		return nil, boom
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.RunSpec(spec)
		leaderErr <- err
	}()
	<-leaderIn

	followerErr := make(chan error, 1)
	go func() {
		_, err := c.RunSpecContext(context.Background(), spec)
		followerErr <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)

	for _, ch := range []chan error{leaderErr, followerErr} {
		if err := <-ch; !errors.Is(err, boom) {
			t.Fatalf("error = %v, want the simulation failure", err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1 (no retry on deterministic errors)", got)
	}
}
