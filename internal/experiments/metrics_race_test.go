package experiments

import (
	"sync"
	"testing"
	"time"

	"soemt/internal/sim"
)

// TestMetricsReadableWhileMatrixRuns is the -race regression test for
// reading the engine's instrumentation mid-run (the soesweep/soefig
// -metrics and heartbeat paths): RunnerMetrics snapshots and registry
// dumps must be safe while the worker pool is still simulating. Before
// the metrics moved onto the observability registry's atomic counters
// there was no test pinning this down.
func TestMetricsReadableWhileMatrixRuns(t *testing.T) {
	r := stubRunner(t, func(sim.Spec) (*sim.Result, error) {
		time.Sleep(200 * time.Microsecond) // keep the pool busy while readers hammer
		return fakeResult(2), nil
	})
	r.Workers = 4

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m := r.Metrics()
				_ = m.String()
				_ = m.CacheHits()
				for _, row := range r.Observability().Snapshot() {
					_ = row
				}
				_ = r.Observability().Gauge("pool.active").Load()
			}
		}()
	}

	if _, err := r.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	close(done)
	wg.Wait()

	m := r.Metrics()
	if m.RunsCompleted == 0 || m.RunsStarted < m.RunsCompleted {
		t.Fatalf("implausible final metrics: %+v", m)
	}
	if r.Observability().Gauge("pool.workers").Load() != 4 {
		t.Fatalf("pool.workers gauge = %d, want 4", r.Observability().Gauge("pool.workers").Load())
	}
	if r.Observability().Gauge("pool.active").Load() != 0 {
		t.Fatalf("pool.active gauge must return to 0 after the run")
	}
}
