package experiments

import (
	"fmt"
	"io"

	"soemt/internal/stats"
)

// WriteCSV emits the full evaluation matrix as tidy data (one row per
// pair × enforcement level), for external plotting tools.
func WriteCSV(w io.Writer, runs []*PairRun) error {
	t := stats.NewTable(
		"pair", "same", "F",
		"ipc_st_a", "ipc_st_b",
		"ipc_soe_a", "ipc_soe_b", "ipc_total",
		"speedup_a", "speedup_b", "fairness",
		"soe_speedup", "normalized_throughput",
		"switches_miss", "switches_forced", "forced_per_1k",
		"wall_cycles",
	)
	for _, pr := range runs {
		for _, f := range FLevels {
			res := pr.ByF[f]
			sp := pr.Speedups(f)
			t.AddRow(
				pr.Pair.Name(),
				fmt.Sprintf("%t", pr.Pair.Same()),
				fmt.Sprintf("%g", f),
				fmt.Sprintf("%.4f", pr.ST[0]),
				fmt.Sprintf("%.4f", pr.ST[1]),
				fmt.Sprintf("%.4f", res.Threads[0].IPC),
				fmt.Sprintf("%.4f", res.Threads[1].IPC),
				fmt.Sprintf("%.4f", res.IPCTotal),
				fmt.Sprintf("%.4f", sp[0]),
				fmt.Sprintf("%.4f", sp[1]),
				fmt.Sprintf("%.4f", pr.Fairness(f)),
				fmt.Sprintf("%.4f", pr.SOESpeedup(f)),
				fmt.Sprintf("%.4f", pr.NormalizedThroughput(f)),
				fmt.Sprintf("%d", res.Switches.Miss),
				fmt.Sprintf("%d", res.Switches.Forced()),
				fmt.Sprintf("%.4f", res.ForcedPer1k()),
				fmt.Sprintf("%d", res.WallCycles),
			)
		}
	}
	_, err := io.WriteString(w, t.CSV())
	return err
}
