package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

func testSpec(opts Options) sim.Spec {
	m := opts.Machine
	m.Controller.Policy = core.EventOnly{}
	return sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{{Profile: workload.MustByName("gcc"), Slot: 0}},
		Scale:   opts.Scale,
	}
}

// fakeResult is a cheap stand-in for stubbed simulation runs.
func fakeResult(ipc float64) *sim.Result {
	return &sim.Result{
		WallCycles: 1000,
		Threads:    []sim.ThreadResult{{Name: "fake", IPC: ipc}, {Name: "fake2", IPC: ipc}},
		IPCTotal:   2 * ipc,
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := testSpec(testOptions())
	k0, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := Fingerprint(testSpec(testOptions())); again != k0 {
		t.Fatal("identical specs must share a fingerprint")
	}

	mutations := map[string]func(*sim.Spec){
		"machine": func(s *sim.Spec) { s.Machine.Controller.MissLat = 299 },
		"memory":  func(s *sim.Spec) { s.Machine.Memory.MemLatency = 301 },
		"scale":   func(s *sim.Spec) { s.Scale.Measure++ },
		"policy":  func(s *sim.Spec) { s.Machine.Controller.Policy = core.Fairness{F: 0.5} },
		"threads": func(s *sim.Spec) { s.Threads[0].StartSeq = 1 },
		"profile": func(s *sim.Spec) { s.Threads[0].Profile = workload.MustByName("eon") },
	}
	seen := map[string]string{k0: "base"}
	for name, mutate := range mutations {
		spec := testSpec(testOptions())
		mutate(&spec)
		k, err := Fingerprint(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[k] = name
	}
}

// Distinct policies with identical parameter shapes must not collide:
// the fingerprint includes the policy name.
func TestFingerprintDistinguishesPolicyKinds(t *testing.T) {
	a := testSpec(testOptions())
	a.Machine.Controller.Policy = core.Fairness{F: 0}
	b := testSpec(testOptions())
	b.Machine.Controller.Policy = core.EventOnly{}
	ka, _ := Fingerprint(a)
	kb, _ := Fingerprint(b)
	if ka == kb {
		t.Fatal("Fairness{0} and EventOnly must fingerprint differently")
	}
}

// Round trip: a result simulated once, persisted, and re-read from a
// fresh Cache over the same directory must be byte-identical (JSON)
// and must not trigger a second simulation.
func TestCacheRoundTripDeterminism(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(testOptions())

	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := c1.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := c1.Metrics()
	if m.RunsStarted != 1 || m.Misses != 1 || m.RunsCompleted != 1 {
		t.Fatalf("cold metrics = %+v", m)
	}

	c2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2.run = func(context.Context, sim.Spec) (*sim.Result, error) {
		t.Fatal("warm cache must not simulate")
		return nil, nil
	}
	res2, err := c2.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	m = c2.Metrics()
	if m.DiskHits != 1 || m.RunsStarted != 0 || m.CacheHits() != 1 {
		t.Fatalf("warm metrics = %+v", m)
	}

	j1, err := json.Marshal(res1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatal("disk round trip changed the result")
	}

	// Third read hits the memory layer.
	if _, err := c2.RunSpec(spec); err != nil {
		t.Fatal(err)
	}
	if m = c2.Metrics(); m.MemHits != 1 {
		t.Fatalf("expected a memory hit, metrics = %+v", m)
	}
}

// A stale schema version on disk must degrade to a miss, never be
// served.
func TestCacheRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := c.Put(key, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify the entry is served, then corrupt the schema.
	c2, _ := NewCache(dir)
	if _, ok := c2.Get(key); !ok {
		t.Fatal("valid entry must be served")
	}
	data := []byte(`{"schema":"some-other-version","key":"` + key + `","result":{}}`)
	if err := os.WriteFile(c.path(key), data, 0o644); err != nil {
		t.Fatal(err)
	}
	c3, _ := NewCache(dir)
	if _, ok := c3.Get(key); ok {
		t.Fatal("foreign schema must be a miss")
	}
}

func TestCacheSingleflightDedup(t *testing.T) {
	c := NewMemCache()
	var calls atomic.Uint64
	started := make(chan struct{})
	release := make(chan struct{})
	c.run = func(context.Context, sim.Spec) (*sim.Result, error) {
		calls.Add(1)
		close(started)
		<-release
		return fakeResult(1), nil
	}
	spec := testSpec(testOptions())

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*sim.Result, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.RunSpec(spec)
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("simulation ran %d times, want 1", n)
	}
	for i := 1; i < waiters; i++ {
		if results[i] != results[0] {
			t.Fatal("waiters must share the in-flight result")
		}
	}
	m := c.Metrics()
	if m.Misses != 1 || m.DedupHits+m.MemHits != waiters-1 {
		t.Fatalf("singleflight metrics = %+v", m)
	}
}

// stubRunner returns a Runner whose simulations are stubbed: ST
// (single-thread) specs succeed with a fake result; pair specs go
// through onPair.
func stubRunner(t *testing.T, onPair func(sim.Spec) (*sim.Result, error)) *Runner {
	t.Helper()
	r := NewRunner(testOptions())
	r.Cache().run = func(_ context.Context, spec sim.Spec) (*sim.Result, error) {
		if len(spec.Threads) == 1 {
			return fakeResult(1), nil
		}
		return onPair(spec)
	}
	return r
}

// An injected mid-matrix error must stop dispatch and return that
// error without deadlock (the old unbuffered dispatch loop kept
// simulating every remaining pair).
func TestRunAllStopsOnFirstError(t *testing.T) {
	boom := errors.New("injected simulation failure")
	var pairRuns atomic.Uint64
	r := stubRunner(t, func(sim.Spec) (*sim.Result, error) {
		pairRuns.Add(1)
		return nil, boom
	})
	r.Workers = 1
	_, err := r.RunAll()
	if !errors.Is(err, boom) {
		t.Fatalf("RunAll error = %v, want injected failure", err)
	}
	if n := pairRuns.Load(); n != 1 {
		t.Fatalf("dispatched %d pair simulations after the first error, want 1", n)
	}
}

// A worker panic must be recovered, converted to an error, and must
// not hang RunAll or concurrent waiters on the same cache key.
func TestRunAllPropagatesWorkerPanic(t *testing.T) {
	r := stubRunner(t, func(sim.Spec) (*sim.Result, error) {
		panic("boom")
	})
	r.Workers = 2
	_, err := r.RunAll()
	if err == nil {
		t.Fatal("RunAll must surface the worker panic")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not propagated in error: %v", err)
	}
}

// PairRuns assembled by hand (e.g. via RunPairAt) may lack F levels;
// the derived metrics must return 0 instead of panicking.
func TestPairRunMissingFLevelGuards(t *testing.T) {
	pr := &PairRun{
		Pair: Pair{"gcc", "eon"},
		ST:   [2]float64{1, 1},
		ByF:  map[float64]*sim.Result{0.5: fakeResult(1)},
	}
	if got := pr.NormalizedThroughput(0.25); got != 0 {
		t.Errorf("NormalizedThroughput(missing) = %v, want 0", got)
	}
	// F=0.5 present, but the F=0 baseline is missing.
	if got := pr.NormalizedThroughput(0.5); got != 0 {
		t.Errorf("NormalizedThroughput without baseline = %v, want 0", got)
	}
	if got := pr.SOESpeedup(0.25); got != 0 {
		t.Errorf("SOESpeedup(missing) = %v, want 0", got)
	}
	if sp := pr.Speedups(0.25); sp[0] != 0 || sp[1] != 0 {
		t.Errorf("Speedups(missing) = %v, want zeros", sp)
	}
	if got := pr.Fairness(0.25); got != 0 {
		t.Errorf("Fairness(missing) = %v, want 0", got)
	}
	if got := pr.SOESpeedup(0.5); got != 2 {
		t.Errorf("SOESpeedup(present) = %v, want 2", got)
	}
}

// RunSpec through a persistent runner cache and a second runner over
// the same directory must agree bit-for-bit; the runner surfaces hit
// counts through Metrics.
func TestRunnerPersistentCacheMetrics(t *testing.T) {
	dir := t.TempDir()
	var sims atomic.Uint64
	newStub := func() *Runner {
		r := NewRunner(testOptions())
		if err := r.SetCacheDir(dir); err != nil {
			t.Fatal(err)
		}
		r.Cache().run = func(_ context.Context, spec sim.Spec) (*sim.Result, error) {
			sims.Add(1)
			return fakeResult(float64(len(spec.Threads))), nil
		}
		return r
	}

	r1 := newStub()
	pr1, err := r1.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	cold := sims.Load()
	if cold == 0 {
		t.Fatal("cold runner must simulate")
	}

	r2 := newStub()
	pr2, err := r2.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	if sims.Load() != cold {
		t.Fatalf("warm runner simulated %d extra runs", sims.Load()-cold)
	}
	m := r2.Metrics()
	if m.DiskHits == 0 || m.RunsStarted != 0 {
		t.Fatalf("warm runner metrics = %+v", m)
	}
	j1, _ := json.Marshal(pr1.ByF)
	j2, _ := json.Marshal(pr2.ByF)
	if string(j1) != string(j2) {
		t.Fatal("warm matrix differs from cold matrix")
	}
}
