package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// FLevels are the enforcement levels evaluated throughout the paper.
var FLevels = []float64{0, 0.25, 0.5, 1}

// Options configures a reproduction run.
type Options struct {
	Machine sim.MachineConfig
	Scale   sim.Scale
	// SameOffset is the instruction offset between the two threads of
	// a same-benchmark pair (the paper uses 1,000,000).
	SameOffset uint64
}

// DefaultOptions returns quick-scale options (shapes hold; absolute
// values are noisier than paper scale). Use PaperOptions for the full
// §4.1 protocol.
func DefaultOptions() Options {
	return Options{
		Machine:    sim.DefaultMachine(),
		Scale:      sim.QuickScale(),
		SameOffset: 100_000,
	}
}

// PaperOptions returns the full-scale protocol of §4.1.
func PaperOptions() Options {
	return Options{
		Machine:    sim.DefaultMachine(),
		Scale:      sim.PaperScale(),
		SameOffset: 1_000_000,
	}
}

// PairRun holds the results of one pair at every enforcement level
// plus the single-thread references.
type PairRun struct {
	Pair   Pair
	ST     [2]float64              // real single-thread IPC per thread
	ByF    map[float64]*sim.Result // F level -> SOE result
	STRuns [2]*sim.Result
}

// Speedups returns per-thread speedups under F (IPC_SOE_j / IPC_ST_j).
func (pr *PairRun) Speedups(f float64) []float64 {
	r := pr.ByF[f]
	return core.Speedups([]float64{r.Threads[0].IPC, r.Threads[1].IPC}, pr.ST[:])
}

// Fairness returns the achieved fairness (Eq. 4) under F.
func (pr *PairRun) Fairness(f float64) float64 {
	return core.FairnessMetric(pr.Speedups(f))
}

// SOESpeedup returns the pair's SOE throughput gain over single
// thread: IPC_SOE_total / mean(IPC_ST), the paper's footnote-6 metric.
func (pr *PairRun) SOESpeedup(f float64) float64 {
	meanST := (pr.ST[0] + pr.ST[1]) / 2
	if meanST == 0 {
		return 0
	}
	return pr.ByF[f].IPCTotal / meanST
}

// NormalizedThroughput returns IPC_SOE(F) / IPC_SOE(0), Figure 7's
// left axis.
func (pr *PairRun) NormalizedThroughput(f float64) float64 {
	base := pr.ByF[0].IPCTotal
	if base == 0 {
		return 0
	}
	return pr.ByF[f].IPCTotal / base
}

// Runner executes and caches the evaluation's simulation matrix: 16
// single-thread reference runs plus 16 pairs × len(FLevels) SOE runs.
type Runner struct {
	Opts Options

	// Workers bounds the number of concurrent simulations in RunAll
	// (each simulation is single-threaded and deterministic); 0 means
	// GOMAXPROCS.
	Workers int

	mu    sync.Mutex
	stIPC map[string]float64
	stRes map[string]*sim.Result
	pairs map[string]*PairRun

	// Progress, if non-nil, receives one line per completed run. It
	// may be called from multiple goroutines.
	Progress func(format string, args ...interface{})
}

// NewRunner creates a Runner with empty caches.
func NewRunner(opts Options) *Runner {
	return &Runner{
		Opts:  opts,
		stIPC: make(map[string]float64),
		stRes: make(map[string]*sim.Result),
		pairs: make(map[string]*PairRun),
	}
}

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Progress != nil {
		r.Progress(format, args...)
	}
}

// STRef returns (and caches) the single-thread reference result for a
// profile. Safe for concurrent use; concurrent callers for the same
// profile may duplicate work but agree on the cached result
// (simulations are deterministic).
func (r *Runner) STRef(name string) (*sim.Result, error) {
	r.mu.Lock()
	res, ok := r.stRes[name]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	prof, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", name)
	}
	res, err := sim.RunSingle(r.Opts.Machine, sim.ThreadSpec{Profile: prof, Slot: 0}, r.Opts.Scale)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if prev, ok := r.stRes[name]; ok {
		res = prev // keep the first stored result
	} else {
		r.stRes[name] = res
		r.stIPC[name] = res.Threads[0].IPC
	}
	r.mu.Unlock()
	r.logf("ST  %-12s IPC=%.3f", name, res.Threads[0].IPC)
	return res, nil
}

// policyFor maps an F level to the controller policy.
func policyFor(f float64) core.Policy {
	if f <= 0 {
		return core.EventOnly{}
	}
	return core.Fairness{F: f}
}

// RunPairAt runs one pair at one enforcement level (no matrix cache).
func (r *Runner) RunPairAt(p Pair, f float64) (*sim.Result, error) {
	m := r.Opts.Machine
	m.Controller.Policy = policyFor(f)
	spec := sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: workload.MustByName(p.A), Slot: 0},
			{Profile: workload.MustByName(p.B), Slot: 1},
		},
		Scale: r.Opts.Scale,
	}
	if p.Same() {
		spec.Threads[1].StartSeq = r.Opts.SameOffset
	}
	res, err := sim.Run(spec)
	if err != nil {
		return nil, err
	}
	r.logf("SOE %-12s F=%-4v IPC=%.3f switches=%d forced=%d",
		p.Name(), f, res.IPCTotal, res.Switches.Total(), res.Switches.Forced())
	return res, nil
}

// RunPair runs (and caches) the full F matrix plus ST references for
// one pair. Safe for concurrent use.
func (r *Runner) RunPair(p Pair) (*PairRun, error) {
	r.mu.Lock()
	pr, ok := r.pairs[p.Name()]
	r.mu.Unlock()
	if ok {
		return pr, nil
	}
	pr = &PairRun{Pair: p, ByF: make(map[float64]*sim.Result)}
	for i, name := range []string{p.A, p.B} {
		res, err := r.STRef(name)
		if err != nil {
			return nil, err
		}
		pr.ST[i] = res.Threads[0].IPC
		pr.STRuns[i] = res
	}
	for _, f := range FLevels {
		res, err := r.RunPairAt(p, f)
		if err != nil {
			return nil, err
		}
		pr.ByF[f] = res
	}
	r.mu.Lock()
	if prev, ok := r.pairs[p.Name()]; ok {
		pr = prev
	} else {
		r.pairs[p.Name()] = pr
	}
	r.mu.Unlock()
	return pr, nil
}

// RunAll runs the full matrix over Pairs(), distributing pairs across
// Workers goroutines (simulations are independent and deterministic,
// so the results do not depend on scheduling).
func (r *Runner) RunAll() ([]*PairRun, error) {
	ps := Pairs()
	out := make([]*PairRun, len(ps))
	errs := make([]error, len(ps))

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}

	// Precompute ST references serially per unique profile to avoid
	// duplicated reference runs across workers.
	seen := map[string]bool{}
	for _, p := range ps {
		for _, name := range []string{p.A, p.B} {
			if !seen[name] {
				seen[name] = true
				if _, err := r.STRef(name); err != nil {
					return nil, err
				}
			}
		}
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = r.RunPair(ps[i])
			}
		}()
	}
	for i := range ps {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
