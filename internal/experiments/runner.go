package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"soemt/internal/core"
	"soemt/internal/faultinject"
	"soemt/internal/obs"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// FLevels are the enforcement levels evaluated throughout the paper.
var FLevels = []float64{0, 0.25, 0.5, 1}

// Options configures a reproduction run.
type Options struct {
	Machine sim.MachineConfig
	Scale   sim.Scale
	// SameOffset is the instruction offset between the two threads of
	// a same-benchmark pair (the paper uses 1,000,000).
	SameOffset uint64
	// Watchdog bounds each simulation's wall-clock time and forward
	// progress. It is execution policy, not simulation input: it is
	// excluded from fingerprints, so guarded and unguarded runs share
	// cache entries.
	Watchdog sim.Watchdog
}

// DefaultOptions returns quick-scale options (shapes hold; absolute
// values are noisier than paper scale). Use PaperOptions for the full
// §4.1 protocol.
func DefaultOptions() Options {
	return Options{
		Machine:    sim.DefaultMachine(),
		Scale:      sim.QuickScale(),
		SameOffset: 100_000,
	}
}

// PaperOptions returns the full-scale protocol of §4.1.
func PaperOptions() Options {
	return Options{
		Machine:    sim.DefaultMachine(),
		Scale:      sim.PaperScale(),
		SameOffset: 1_000_000,
	}
}

// PairRun holds the results of one pair at every enforcement level
// plus the single-thread references.
type PairRun struct {
	Pair   Pair
	ST     [2]float64              // real single-thread IPC per thread
	ByF    map[float64]*sim.Result // F level -> SOE result
	STRuns [2]*sim.Result
}

// Speedups returns per-thread speedups under F (IPC_SOE_j / IPC_ST_j),
// or zeros when the requested F level was never run.
func (pr *PairRun) Speedups(f float64) []float64 {
	r := pr.ByF[f]
	if r == nil || len(r.Threads) < 2 {
		return make([]float64, 2)
	}
	return core.Speedups([]float64{r.Threads[0].IPC, r.Threads[1].IPC}, pr.ST[:])
}

// Fairness returns the achieved fairness (Eq. 4) under F.
func (pr *PairRun) Fairness(f float64) float64 {
	return core.FairnessMetric(pr.Speedups(f))
}

// SOESpeedup returns the pair's SOE throughput gain over single
// thread: IPC_SOE_total / mean(IPC_ST), the paper's footnote-6 metric.
// It returns 0 when F was never run (e.g. a PairRun assembled by hand
// from RunPairAt results) or the references are empty.
func (pr *PairRun) SOESpeedup(f float64) float64 {
	r := pr.ByF[f]
	meanST := (pr.ST[0] + pr.ST[1]) / 2
	if r == nil || meanST == 0 {
		return 0
	}
	return r.IPCTotal / meanST
}

// NormalizedThroughput returns IPC_SOE(F) / IPC_SOE(0), Figure 7's
// left axis, or 0 when either level is missing from the run.
func (pr *PairRun) NormalizedThroughput(f float64) float64 {
	base, r := pr.ByF[0], pr.ByF[f]
	if base == nil || r == nil || base.IPCTotal == 0 {
		return 0
	}
	return r.IPCTotal / base.IPCTotal
}

// Runner executes the evaluation's simulation matrix — 16
// single-thread reference runs plus 16 pairs × len(FLevels) SOE runs —
// through a content-addressed result cache (see Cache). Identical
// concurrent runs are deduplicated in flight; with a persistent cache
// directory, repeated invocations are served from disk bit-identically.
type Runner struct {
	Opts Options

	// Workers bounds the number of concurrent simulations in RunAll
	// (each simulation is single-threaded and deterministic); 0 means
	// GOMAXPROCS.
	Workers int

	// Faults, if non-nil, deterministically injects faults into the
	// worker pool (sites "worker.delay" and "worker.panic") and is
	// propagated to the cache. Nil in production; see
	// internal/faultinject.
	Faults *faultinject.Injector

	cache *Cache

	mu    sync.Mutex
	pairs map[string]*PairRun
	used  bool // a simulation has been requested through this runner

	// Progress, if non-nil, receives one line per completed run. It
	// may be called from multiple goroutines.
	Progress func(format string, args ...interface{})
}

// NewRunner creates a Runner with an in-memory result cache.
func NewRunner(opts Options) *Runner {
	r := &Runner{
		Opts:  opts,
		pairs: make(map[string]*PairRun),
		cache: NewMemCache(),
	}
	r.cache.Logf = r.logf
	return r
}

// NewRunnerWith creates a Runner backed by an existing cache, so
// several runners — e.g. one per measurement scale in a service —
// share one content-addressed store, one singleflight layer, and one
// metrics registry. The cache's Logf is left untouched (install a
// logger on the shared cache itself); per-runner Progress output still
// works. A nil cache falls back to NewRunner.
func NewRunnerWith(opts Options, c *Cache) *Runner {
	if c == nil {
		return NewRunner(opts)
	}
	return &Runner{
		Opts:  opts,
		pairs: make(map[string]*PairRun),
		cache: c,
	}
}

// SetCacheDir switches the runner to a persistent cache rooted at dir
// (created if missing; an uncreatable dir degrades to memory-only with
// a warning rather than failing). It must be called before the first
// run: switching afterwards would let results memoized under the old
// cache shadow the new store, so it returns an error instead.
func (r *Runner) SetCacheDir(dir string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.used {
		return fmt.Errorf("experiments: SetCacheDir(%q) after the runner has executed runs; configure the cache before the first run", dir)
	}
	c, err := NewCache(dir)
	if err != nil {
		return err
	}
	c.Logf = r.logf
	c.Faults = r.Faults
	r.cache = c
	return nil
}

// Cache returns the runner's result cache.
func (r *Runner) Cache() *Cache { return r.cache }

// Metrics returns a snapshot of the engine's instrumentation (runs
// executed, cache hits per layer, simulated cycles per second).
func (r *Runner) Metrics() RunnerMetrics { return r.cache.Metrics() }

// Observability returns the engine's metrics registry: the counters
// behind Metrics plus per-run engine metrics (pipe.*, core.*, sim.*)
// published by the simulations, and the RunAll pool gauges. Safe for
// concurrent use at any time, including mid-run.
func (r *Runner) Observability() *obs.Registry { return r.cache.Observability() }

func (r *Runner) logf(format string, args ...interface{}) {
	if r.Progress != nil {
		r.Progress(format, args...)
	}
}

// markUsed freezes the runner's cache configuration (see SetCacheDir)
// and propagates the fault injector installed by tests.
func (r *Runner) markUsed() {
	r.mu.Lock()
	if !r.used {
		r.used = true
		if r.Faults != nil {
			// Propagate only an installed injector: runners sharing a
			// cache (NewRunnerWith) must not clear each other's faults.
			r.cache.Faults = r.Faults
		}
	}
	r.mu.Unlock()
}

// warnTruncated logs when a run hit Scale.MaxCycles before reaching
// its measurement target: its IPC covers fewer instructions than
// requested and should be treated as approximate.
func (r *Runner) warnTruncated(label string, res *sim.Result) {
	if res.Truncated {
		r.logf("WARN %s truncated at MaxCycles=%d before reaching Measure=%d; IPC is approximate",
			label, r.Opts.Scale.MaxCycles, r.Opts.Scale.Measure)
	}
}

// STRef returns the single-thread reference result for a profile; see
// STRefContext.
func (r *Runner) STRef(name string) (*sim.Result, error) {
	return r.STRefContext(context.Background(), name)
}

// STRefContext returns the single-thread reference result for a
// profile, honoring ctx. Safe for concurrent use; concurrent callers
// for the same profile share one in-flight simulation via the cache's
// singleflight layer.
func (r *Runner) STRefContext(ctx context.Context, name string) (*sim.Result, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown profile %q", name)
	}
	r.markUsed()
	machine := r.Opts.Machine
	machine.Controller.Policy = core.EventOnly{}
	res, err := r.cache.RunSpecContext(ctx, sim.Spec{
		Machine:  machine,
		Threads:  []sim.ThreadSpec{{Profile: prof, Slot: 0}},
		Scale:    r.Opts.Scale,
		Watchdog: r.Opts.Watchdog,
	})
	if err != nil {
		return nil, err
	}
	r.warnTruncated("ST "+name, res)
	r.logf("ST  %-12s IPC=%.3f", name, res.Threads[0].IPC)
	return res, nil
}

// policyFor maps an F level to the controller policy.
func policyFor(f float64) core.Policy {
	if f <= 0 {
		return core.EventOnly{}
	}
	return core.Fairness{F: f}
}

// RunPairAt runs one pair at one enforcement level through the cache;
// see RunPairAtContext.
func (r *Runner) RunPairAt(p Pair, f float64) (*sim.Result, error) {
	return r.RunPairAtContext(context.Background(), p, f)
}

// RunPairAtContext runs one pair at one enforcement level through the
// cache, honoring ctx.
func (r *Runner) RunPairAtContext(ctx context.Context, p Pair, f float64) (*sim.Result, error) {
	r.markUsed()
	m := r.Opts.Machine
	m.Controller.Policy = policyFor(f)
	spec := sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: workload.MustByName(p.A), Slot: 0},
			{Profile: workload.MustByName(p.B), Slot: 1},
		},
		Scale:    r.Opts.Scale,
		Watchdog: r.Opts.Watchdog,
	}
	if p.Same() {
		spec.Threads[1].StartSeq = r.Opts.SameOffset
	}
	res, err := r.cache.RunSpecContext(ctx, spec)
	if err != nil {
		return nil, err
	}
	r.warnTruncated(fmt.Sprintf("SOE %s F=%v", p.Name(), f), res)
	r.logf("SOE %-12s F=%-4v IPC=%.3f switches=%d forced=%d",
		p.Name(), f, res.IPCTotal, res.Switches.Total(), res.Switches.Forced())
	return res, nil
}

// RunPair runs the full F matrix plus ST references for one pair; see
// RunPairContext.
func (r *Runner) RunPair(p Pair) (*PairRun, error) {
	return r.RunPairContext(context.Background(), p)
}

// RunPairContext runs the full F matrix plus ST references for one
// pair and memoizes the assembled PairRun. Safe for concurrent use;
// the underlying simulations are deduplicated by the cache. A
// cancelled or failed pair is not memoized — a later call retries.
func (r *Runner) RunPairContext(ctx context.Context, p Pair) (*PairRun, error) {
	r.mu.Lock()
	pr, ok := r.pairs[p.Name()]
	r.mu.Unlock()
	if ok {
		return pr, nil
	}
	pr = &PairRun{Pair: p, ByF: make(map[float64]*sim.Result)}
	for i, name := range []string{p.A, p.B} {
		res, err := r.STRefContext(ctx, name)
		if err != nil {
			return nil, err
		}
		pr.ST[i] = res.Threads[0].IPC
		pr.STRuns[i] = res
	}
	for _, f := range FLevels {
		res, err := r.RunPairAtContext(ctx, p, f)
		if err != nil {
			return nil, err
		}
		pr.ByF[f] = res
	}
	r.mu.Lock()
	if prev, ok := r.pairs[p.Name()]; ok {
		pr = prev
	} else {
		r.pairs[p.Name()] = pr
	}
	r.mu.Unlock()
	return pr, nil
}

// RunAll runs the full matrix over Pairs(); see RunAllContext.
func (r *Runner) RunAll() ([]*PairRun, error) {
	return r.RunAllContext(context.Background())
}

// RunAllContext runs the full matrix over Pairs(), distributing pairs
// across Workers goroutines (simulations are independent and
// deterministic, so the results do not depend on scheduling). The
// first error — including a recovered worker panic, or ctx being
// cancelled — stops dispatching; already-running simulations finish
// but no new pairs start.
//
// The returned slice is indexed like Pairs() and always carries every
// pair completed before the stop (nil for pairs that never finished),
// so an interrupted invocation can still flush partial results; the
// error reports why the matrix is incomplete. On success the error is
// nil and every slot is non-nil.
func (r *Runner) RunAllContext(ctx context.Context) ([]*PairRun, error) {
	ps := Pairs()
	out := make([]*PairRun, len(ps))

	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ps) {
		workers = len(ps)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// Pool occupancy gauges: workers = configured size, active = pairs
	// being simulated right now. Visible mid-run via Observability.
	reg := r.Observability()
	reg.Gauge("pool.workers").Set(int64(workers))
	active := reg.Gauge("pool.active")

	runOne := func(ctx context.Context, p Pair) (pr *PairRun, err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("experiments: pair %s: worker panic: %v", p.Name(), rec)
			}
		}()
		active.Add(1)
		defer active.Add(-1)
		r.Faults.Sleep("worker.delay")
		r.Faults.MaybePanic("worker.panic")
		// Label the pair for CPU profiles: `soesim -pprof` samples then
		// attribute to the pair being simulated, not just the pool.
		pprof.Do(ctx, pprof.Labels("soemt_pair", p.Name()), func(ctx context.Context) {
			pr, err = r.RunPairContext(ctx, p)
		})
		return pr, err
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The worker label distinguishes pool goroutines in pprof
			// (goroutine and CPU profiles) on long matrix runs.
			pprof.Do(runCtx, pprof.Labels("soemt_worker", strconv.Itoa(w)), func(ctx context.Context) {
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without running
					}
					pr, err := runOne(ctx, ps[i])
					if err != nil {
						fail(err)
						continue
					}
					out[i] = pr
				}
			})
		}(w)
	}
dispatch:
	for i := range ps {
		select {
		case next <- i:
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	if firstErr != nil {
		return out, firstErr
	}
	if err := runCtx.Err(); err != nil {
		return out, err
	}
	r.logf("metrics: %s", r.Metrics())
	return out, nil
}
