package experiments

import (
	"crypto/sha256"
	"encoding/hex"

	"soemt/internal/sim"
)

// SchemaVersion names the on-disk result schema. It participates in
// every fingerprint, so bumping it invalidates all previously cached
// results at once — do so whenever sim.Result gains or changes fields,
// or when a simulator change alters outcomes without touching any
// Spec-visible parameter.
const SchemaVersion = "soemt-result-v1"

// Fingerprint returns the content-addressed cache key for a run: a
// hex SHA-256 over the schema version and the spec's canonical JSON
// encoding (machine, policy, threads, scale — see
// sim.Spec.FingerprintJSON). Equal keys imply bit-identical results;
// changing any input parameter changes the key.
func Fingerprint(spec sim.Spec) (string, error) {
	payload, err := spec.FingerprintJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(SchemaVersion))
	h.Write([]byte{'\n'})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil)), nil
}
