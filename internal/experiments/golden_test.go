package experiments

import (
	"fmt"
	"math"
	"testing"

	"soemt/internal/core"
	"soemt/internal/model"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// Golden-figure differential suite: every test pins a paper-shape
// invariant recorded in EXPERIMENTS.md so a regression in the model or
// the simulator shows up as a concrete figure changing, not as a
// silent drift. Analytical quantities (Table 2, Figure 3) are
// closed-form and asserted near-exactly; simulated quantities
// (Example 1) get tolerance bands wide enough for the tiny test scale
// but narrow enough to catch a broken quota formula — which
// TestGoldenDetectsQuotaPerturbation demonstrates by injecting one.

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

func within(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if math.IsNaN(got) || got < lo || got > hi {
		t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
	}
}

// TestGoldenTable2 pins the closed-form Example 2 numbers
// (EXPERIMENTS.md "Table 2"): the paper's Table 2 to the precision it
// prints, exactly reproducible because Eqs. 1-10 have no simulation
// noise.
func TestGoldenTable2(t *testing.T) {
	sys := model.Example2System()
	near(t, "IPC_ST thread1", sys.Threads[0].IPCST(sys.MissLat), 2.381, 0.001)
	near(t, "IPC_ST thread2", sys.Threads[1].IPCST(sys.MissLat), 1.429, 0.001)

	rows, err := model.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table2 rows = %d, want 3 (F=0, 1/2, 1)", len(rows))
	}
	byF := map[float64]model.Table2Row{}
	for _, r := range rows {
		byF[r.F] = r
	}

	f0 := byF[0]
	near(t, "slowdown1@F=0", f0.Slowdown[0], 1.02, 0.005)
	near(t, "slowdown2@F=0", f0.Slowdown[1], 9.21, 0.01)
	near(t, "fairness@F=0", f0.Fairness, 0.11, 0.005)
	// Without enforcement the quota is the miss distance itself.
	near(t, "IPSw1@F=0", f0.IPSw[0], 15000, 0.5)
	near(t, "IPSw2@F=0", f0.IPSw[1], 1000, 0.5)

	fh := byF[0.5]
	near(t, "slowdown ratio@F=1/2", fh.Slowdown[1]/fh.Slowdown[0], 2.0, 0.005)

	f1 := byF[1]
	near(t, "IPSw1@F=1", f1.IPSw[0], 1667, 1)
	near(t, "slowdown1@F=1", f1.Slowdown[0], 1.60, 0.01)
	near(t, "slowdown2@F=1", f1.Slowdown[1], 1.60, 0.01)
	near(t, "fairness@F=1", f1.Fairness, 1.0, 0.001)

	// Enforcement trades aggregate throughput for fairness: total IPC
	// must fall monotonically in F for this (unfair) pair.
	if !(f0.Total > fh.Total && fh.Total > f1.Total) {
		t.Errorf("total IPC not monotone in F: %v, %v, %v", f0.Total, fh.Total, f1.Total)
	}
}

// TestGoldenFigure3 pins the analytical throughput-vs-F shapes
// (EXPERIMENTS.md "Figure 3"): equal-IPC_no_miss pairs degrade only a
// few percent, a missy fast thread improves throughput up to ~+10%, a
// missy slow thread degrades it up to ~-13%, and every curve is 0 at
// F=0 by construction.
func TestGoldenFigure3(t *testing.T) {
	cases, err := model.Figure3(21)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 6 {
		t.Fatalf("Figure3 cases = %d, want 6", len(cases))
	}
	bestF1, worstF1 := math.Inf(-1), math.Inf(1)
	equalWorst := 0.0
	deltaF1 := map[string]float64{}
	for _, c := range cases {
		last := len(c.DeltaPc) - 1
		if c.F[0] != 0 || c.F[last] != 1 {
			t.Fatalf("%s: F sweep must span [0, 1], got [%v, %v]", c.Label, c.F[0], c.F[last])
		}
		near(t, c.Label+" delta@F=0", c.DeltaPc[0], 0, 1e-9)
		d1 := c.DeltaPc[last]
		deltaF1[c.Label] = d1
		bestF1 = math.Max(bestF1, d1)
		worstF1 = math.Min(worstF1, d1)
		if c.System.Threads[0].IPCNoMiss == c.System.Threads[1].IPCNoMiss {
			for i, d := range c.DeltaPc {
				if d > 1e-9 {
					t.Errorf("%s: equal-IPC pair improves (%+.2f%% at F=%.2f); must only degrade",
						c.Label, d, c.F[i])
					break
				}
			}
			equalWorst = math.Min(equalWorst, d1)
		}
	}
	// The Example 2 combination is the paper's headline equal-IPC curve
	// (EXPERIMENTS.md records -3.7% worst at F=1); the stretched
	// IPM=[50000,500] combo degrades somewhat more.
	near(t, "Example2 combo delta@F=1 [%]", deltaF1["IPCnm=[2.5,2.5] IPM=[15000,1000]"], -3.7, 0.3)
	within(t, "equal-IPC worst delta@F=1 [%]", equalWorst, -8, -2)
	within(t, "best delta@F=1 [%] (fast thread missy)", bestF1, 8, 12)
	within(t, "worst delta@F=1 [%] (slow thread missy)", worstF1, -15, -11)
}

// starvationInvariants checks the Example 1 / Figure 1 shape on a
// gcc:eon pair run (EXPERIMENTS.md "Example 1"): without enforcement
// the missy thread (gcc) is starved many times below its single-thread
// pace while the co-thread is hardly affected, and enforcement at F=1
// recovers a decisively fairer split. Returns the violations instead
// of failing directly so the perturbation test below can assert the
// suite WOULD fail on a broken quota formula.
func starvationInvariants(pr *PairRun) []string {
	var bad []string
	sp := pr.Speedups(0)
	if !(sp[0] < 0.35) {
		bad = append(bad, fmt.Sprintf("gcc speedup at F=0 = %.3f, want < 0.35 (starved)", sp[0]))
	}
	if !(sp[1] > 0.6) {
		bad = append(bad, fmt.Sprintf("eon speedup at F=0 = %.3f, want > 0.6 (hardly affected)", sp[1]))
	}
	if f0 := pr.Fairness(0); !(f0 < 0.4) {
		bad = append(bad, fmt.Sprintf("fairness at F=0 = %.3f, want < 0.4", f0))
	}
	bad = append(bad, enforcementInvariant(pr.Fairness(0), pr.Fairness(1))...)
	return bad
}

// enforcementInvariant is the part of the Example 1 shape the quota
// formula is responsible for: F=1 enforcement must improve fairness
// decisively, not marginally, over event-only SOE.
func enforcementInvariant(fair0, fair1 float64) []string {
	if !(fair1 > 1.5*fair0) {
		return []string{fmt.Sprintf(
			"fairness at F=1 = %.3f, want > 1.5x the F=0 value %.3f (enforcement must help)",
			fair1, fair0)}
	}
	return nil
}

// TestGoldenExample1 runs the starvation demonstration at test scale
// and asserts the paper shape.
func TestGoldenExample1(t *testing.T) {
	r := NewRunner(testOptions())
	pr, err := r.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	sp := pr.Speedups(0)
	t.Logf("golden example1: speedups@F=0 = [%.3f %.3f], fairness@F=0 = %.3f, fairness@F=1 = %.3f",
		sp[0], sp[1], pr.Fairness(0), pr.Fairness(1))
	for _, v := range starvationInvariants(pr) {
		t.Error(v)
	}
}

// perturbedPolicy injects a deliberate bug into a quota policy: every
// Eq. 9 quota is scaled by Scale, emulating a broken constant in the
// formula. Scale >> 1 weakens enforcement toward event-only behaviour.
// Exported fields so the fingerprint serializes the perturbation and
// the cache cannot conflate it with the genuine policy.
type perturbedPolicy struct {
	Inner core.Policy
	Scale float64
}

func (p perturbedPolicy) Name() string { return "perturbed-" + p.Inner.Name() }

func (p perturbedPolicy) Quotas(samples []core.ThreadSample, missLat float64) []float64 {
	q := p.Inner.Quotas(samples, missLat)
	for i := range q {
		q[i] *= p.Scale
	}
	return q
}

// TestGoldenDetectsQuotaPerturbation is the suite's negative control:
// with the Eq. 9 quotas scaled 16x up (forced switches ~16x rarer),
// the F=1 run must degrade toward event-only fairness and the
// enforcement invariant must flag it. If this test ever fails, the
// golden suite has lost its power to detect a broken quota formula.
func TestGoldenDetectsQuotaPerturbation(t *testing.T) {
	r := NewRunner(testOptions())
	pr, err := r.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}

	m := r.Opts.Machine
	m.Controller.Policy = perturbedPolicy{Inner: core.Fairness{F: 1}, Scale: 16}
	res, err := sim.Run(sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: workload.MustByName("gcc"), Slot: 0},
			{Profile: workload.MustByName("eon"), Slot: 1},
		},
		Scale:    r.Opts.Scale,
		Watchdog: r.Opts.Watchdog,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := core.Speedups([]float64{res.Threads[0].IPC, res.Threads[1].IPC}, pr.ST[:])
	perturbedFair := core.FairnessMetric(sp)
	t.Logf("perturbed F=1 fairness = %.3f (genuine %.3f, F=0 %.3f)",
		perturbedFair, pr.Fairness(1), pr.Fairness(0))

	// The genuine run passes the invariant...
	if bad := enforcementInvariant(pr.Fairness(0), pr.Fairness(1)); len(bad) != 0 {
		t.Fatalf("genuine F=1 run unexpectedly fails the invariant: %v", bad)
	}
	// ...and the perturbed run must fail it — otherwise the band is
	// too loose to catch a quota-formula regression.
	if bad := enforcementInvariant(pr.Fairness(0), perturbedFair); len(bad) == 0 {
		t.Fatalf("perturbed quota formula (16x) passed the enforcement invariant: fairness %.3f vs F=0 %.3f",
			perturbedFair, pr.Fairness(0))
	}
	// Weakened enforcement must also show up as fewer forced switches
	// than the genuine F=1 run.
	if res.Switches.Quota >= pr.ByF[1].Switches.Quota {
		t.Errorf("perturbed run forced %d switches, genuine %d; expected fewer",
			res.Switches.Quota, pr.ByF[1].Switches.Quota)
	}
}

// quadMix is the 4-thread starvation workload: one missy thread (gcc,
// the Example 1 victim) against three compute-bound hogs. Under
// event-only SOE the hogs almost never yield, so gcc starves harder
// than in the pair case.
func quadMix() []string { return []string{"gcc", "eon", "gzip", "crafty"} }

// runQuad runs the quad mix under policy and returns the achieved
// min-over-pairs fairness plus the per-thread speedups.
func runQuad(t *testing.T, policy core.Policy) (float64, []float64, *sim.Result) {
	t.Helper()
	opts := testOptions()
	m := opts.Machine
	m.Controller.Policy = policy
	var threads []sim.ThreadSpec
	for i, n := range quadMix() {
		threads = append(threads, sim.ThreadSpec{Profile: workload.MustByName(n), Slot: i})
	}
	res, err := sim.Run(sim.Spec{Machine: m, Threads: threads, Scale: opts.Scale, Watchdog: opts.Watchdog})
	if err != nil {
		t.Fatalf("quad run (%s): %v", policy.Name(), err)
	}
	ipc := make([]float64, len(threads))
	st := make([]float64, len(threads))
	for i, ts := range threads {
		ipc[i] = res.Threads[i].IPC
		ref, err := sim.RunSingle(opts.Machine, ts, opts.Scale)
		if err != nil {
			t.Fatalf("single-thread reference %s: %v", ts.Profile.Name, err)
		}
		st[i] = ref.Threads[0].IPC
	}
	sp := core.Speedups(ipc, st)
	return core.FairnessMetric(sp), sp, res
}

// TestGoldenQuadStarvation extends the Example 1 invariant to N = 4
// (this PR's golden-suite satellite): event-only SOE starves the missy
// thread among three hogs, and both the generalized Fairness policy
// and GroupedFairness recover a min-over-pairs fairness decisively
// above the event-only floor — the N-thread analogue of the Table 2
// fairness floor at F=0 (0.11).
func TestGoldenQuadStarvation(t *testing.T) {
	fair0, sp0, _ := runQuad(t, core.EventOnly{})
	t.Logf("quad event-only: speedups = %.3f, fairness = %.3f", sp0, fair0)
	// gcc must be the starved minimum by a wide margin. With 4-way
	// sharing even the hogs sit well below their single-thread pace
	// (each gets at most ~1/4 of the core), so the invariant is
	// relative: every co-runner beats the missy thread at least 2x.
	if !(sp0[0] < 0.1) {
		t.Errorf("gcc speedup at F=0 = %.3f, want < 0.1 (starved among 3 hogs)", sp0[0])
	}
	for i, s := range sp0[1:] {
		if !(s > 2*sp0[0]) {
			t.Errorf("hog %s speedup at F=0 = %.3f, want > 2x the missy thread's %.3f", quadMix()[i+1], s, sp0[0])
		}
	}
	if !(fair0 < 0.11) {
		t.Errorf("quad fairness at F=0 = %.3f, want < 0.11 (below the Table 2 pair floor)", fair0)
	}

	fairF, spF, resF := runQuad(t, core.Fairness{F: 1})
	t.Logf("quad fairness F=1: speedups = %.3f, fairness = %.3f, forced = %d",
		spF, fairF, resF.Switches.Forced())
	for _, v := range quadInvariant(fair0, fairF) {
		t.Errorf("fairness policy: %s", v)
	}

	fairG, spG, resG := runQuad(t, core.GroupedFairness{F: 1, MissyWeight: 2, FriendlyWeight: 1})
	t.Logf("quad grouped F=1: speedups = %.3f, fairness = %.3f, forced = %d",
		spG, fairG, resG.Switches.Forced())
	for _, v := range quadInvariant(fair0, fairG) {
		t.Errorf("grouped-fairness policy: %s", v)
	}
}

// visitShare returns thread i's fraction of all completed dispatches.
func visitShare(res *sim.Result, i int) float64 {
	var total uint64
	for _, tr := range res.Threads {
		total += tr.Visits
	}
	if total == 0 {
		return 0
	}
	return float64(res.Threads[i].Visits) / float64(total)
}

// quadInvariant is the N = 4 starvation bound from the issue: an
// enforcing policy must lift min-over-pairs fairness decisively above
// the event-only value AND above the Table 2 F=0 floor (0.11).
func quadInvariant(fair0, fair float64) []string {
	var bad []string
	bad = append(bad, enforcementInvariant(fair0, fair)...)
	if !(fair > 0.11) {
		bad = append(bad, fmt.Sprintf("quad fairness = %.3f, want > 0.11 (the Table 2 F=0 floor)", fair))
	}
	return bad
}

// TestGoldenQuadDetectsMisgrouping is the negative control demanded by
// the issue: a deliberately mis-grouped GroupedFairness must fail the
// 4-thread starvation invariant that the correctly grouped policy
// passes. Invert swaps each thread's group at lookup time, which flips
// BOTH halves of the policy: the hogs inherit the missy floor (tight
// quotas, over-enforcement) and — decisively — the grant boost meant
// for the missy thread. The weight ratio is chosen above the quad
// mix's visit-length asymmetry (hog visits run ~20-30x longer than
// gcc's ~1k-cycle miss distance, so WFQ credit ordering alone shields
// gcc up to roughly that ratio): at 64:1 the inverted weights overcome
// it, the hogs win nearly every grant, and gcc re-starves. If this
// test fails, the quad golden has lost its power to detect a broken
// grouping. CPMSplit is pinned between gcc (CPM ~1k) and the
// friendliest hog (gzip, ~5k) so both arms compare the same
// classification.
func TestGoldenQuadDetectsMisgrouping(t *testing.T) {
	base := core.GroupedFairness{F: 1, CPMSplit: 3000, MissyWeight: 64, FriendlyWeight: 1}
	inv := base
	inv.Invert = true

	fair0, _, _ := runQuad(t, core.EventOnly{})
	fairOK, spOK, resOK := runQuad(t, base)
	fairInv, spInv, resInv := runQuad(t, inv)
	t.Logf("quad grouped: correct fairness = %.3f %.3f (forced %d), inverted = %.3f %.3f (forced %d), event-only %.3f",
		fairOK, spOK, resOK.Switches.Forced(), fairInv, spInv, resInv.Switches.Forced(), fair0)

	// The correctly grouped run passes the starvation invariant...
	if bad := quadInvariant(fair0, fairOK); len(bad) != 0 {
		t.Fatalf("correctly grouped run unexpectedly fails the invariant: %v", bad)
	}
	// ...and the mis-grouped run must fail it decisively.
	if bad := quadInvariant(fair0, fairInv); len(bad) == 0 {
		t.Fatalf("mis-grouped GroupedFairness passed the quad invariant (fairness %.3f vs F=0 %.3f, correct %.3f); negative control inert",
			fairInv, fair0, fairOK)
	}
	if !(fairInv < fairOK/2) {
		t.Errorf("inverted fairness %.3f not decisively below correct %.3f", fairInv, fairOK)
	}
	// Mechanism signatures. Grants: the inverted weights strip the
	// missy thread's grant preference. Absolute visit counts are
	// confounded by the inverted run's much higher total switch volume
	// (over-enforced hogs force-switch constantly), so compare gcc's
	// SHARE of completed dispatches instead.
	okShare := visitShare(resOK, 0)
	invShare := visitShare(resInv, 0)
	if !(invShare < okShare/2) {
		t.Errorf("missy visit share: inverted %.3f vs correct %.3f; mis-grouping must throttle its grants",
			invShare, okShare)
	}
	// Quotas: the hogs inherit the missy floor, so the inverted run
	// over-enforces — floor mis-grouping costs throughput (forced
	// switch churn) on top of the fairness loss.
	if resInv.Switches.Forced() <= resOK.Switches.Forced() {
		t.Errorf("forced switches: inverted %d vs correct %d; inverted floors must over-enforce the hogs",
			resInv.Switches.Forced(), resOK.Switches.Forced())
	}
}
