package experiments

import (
	"math"
	"strings"
	"testing"

	"soemt/internal/sim"
)

// testOptions shrinks runs so the experiment drivers stay fast in unit
// tests; shape assertions at realistic scale live in the bench harness.
func testOptions() Options {
	return Options{
		Machine:    sim.DefaultMachine(),
		Scale:      sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 200_000, MaxCycles: 40_000_000},
		SameOffset: 50_000,
	}
}

func TestPairsValid(t *testing.T) {
	if err := validatePairs(); err != nil {
		t.Fatal(err)
	}
	ps := Pairs()
	if len(ps) != 16 {
		t.Fatalf("paper uses 16 combinations, got %d", len(ps))
	}
	same := 0
	for _, p := range ps {
		if p.Same() {
			same++
		}
	}
	if same != 8 {
		t.Fatalf("paper uses 8 same-benchmark pairs, got %d", same)
	}
	if (Pair{"a", "b"}).Name() != "a:b" {
		t.Fatal("pair name format")
	}
}

func TestUnknownProfileError(t *testing.T) {
	e := &unknownProfileError{name: "nope"}
	if !strings.Contains(e.Error(), "nope") {
		t.Fatal("error message")
	}
}

func TestExpTable2Output(t *testing.T) {
	var b strings.Builder
	if err := ExpTable2(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"F=0", "F=1/2", "F=1", "1667", "9.21", "0.11"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 output missing %q", want)
		}
	}
}

func TestExpFig3Output(t *testing.T) {
	var b strings.Builder
	if err := ExpFig3(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "throughput delta") {
		t.Error("missing plot title")
	}
	if !strings.Contains(out, "delta@F=1") {
		t.Error("missing summary table")
	}
}

func TestExpTable3Output(t *testing.T) {
	var b strings.Builder
	if err := ExpTable3(&b, testOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "300 cycles") {
		t.Error("missing memory latency row")
	}
}

func TestRunnerCachesReferences(t *testing.T) {
	r := NewRunner(testOptions())
	a, err := r.STRef("eon")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.STRef("eon")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("STRef not cached")
	}
	if _, err := r.STRef("not-a-benchmark"); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestRunPairCachesAndComputes(t *testing.T) {
	r := NewRunner(testOptions())
	pr, err := r.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	pr2, err := r.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	if pr != pr2 {
		t.Fatal("RunPair not cached")
	}
	for _, f := range FLevels {
		if pr.ByF[f] == nil {
			t.Fatalf("missing result for F=%v", f)
		}
		fv := pr.Fairness(f)
		if fv < 0 || fv > 1 {
			t.Fatalf("fairness out of range at F=%v: %v", f, fv)
		}
	}
	if pr.ST[0] <= 0 || pr.ST[1] <= 0 {
		t.Fatal("missing ST references")
	}
	// Enforcement must help the pair's fairness overall.
	if pr.Fairness(1) <= pr.Fairness(0) {
		t.Errorf("F=1 fairness %.3f not above F=0 %.3f", pr.Fairness(1), pr.Fairness(0))
	}
	if pr.NormalizedThroughput(0) != 1 {
		t.Error("normalized throughput at F=0 must be 1")
	}
}

func TestExperimentDriversOnSubset(t *testing.T) {
	r := NewRunner(testOptions())
	// Build a small matrix: two contrasting pairs.
	var runs []*PairRun
	for _, p := range []Pair{{"gcc", "eon"}, {"swim", "swim"}} {
		pr, err := r.RunPair(p)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, pr)
	}

	var b strings.Builder
	sum6, err := ExpFig6(&b, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum6.AvgSpeedupByF) != len(FLevels) {
		t.Fatal("fig6 summary incomplete")
	}
	if !strings.Contains(b.String(), "gcc:eon") {
		t.Error("fig6 table missing pair")
	}

	b.Reset()
	sum7, err := ExpFig7(&b, runs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range FLevels[1:] {
		if _, ok := sum7.AvgDegradationByF[f]; !ok {
			t.Fatalf("fig7 missing degradation for F=%v", f)
		}
	}

	b.Reset()
	sum8, err := ExpFig8(&b, runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum8.AchievedByF[0]) != len(runs) {
		t.Fatal("fig8 row count")
	}
	for _, f := range FLevels {
		if sum8.AvgTruncatedByF[f] < 0 || sum8.AvgTruncatedByF[f] > 1 {
			t.Fatalf("fig8 truncated mean out of range at F=%v", f)
		}
		if f > 0 && sum8.AvgTruncatedByF[f] > f+1e-9 {
			t.Fatalf("truncated mean %v exceeds target %v", sum8.AvgTruncatedByF[f], f)
		}
	}

	b.Reset()
	if err := ExpExample1(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "achieved fairness") {
		t.Error("example1 missing fairness line")
	}

	b.Reset()
	d5, err := ExpFig5(&b, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(d5.Cycles) == 0 {
		t.Fatal("fig5 produced no windows")
	}
	if d5.RealST[0] <= 0 || d5.RealST[1] <= 0 {
		t.Fatal("fig5 missing ST references")
	}
	for _, v := range d5.FairF {
		if v < 0 || v > 1 {
			t.Fatal("fig5 window fairness out of range")
		}
	}

	b.Reset()
	ts, err := ExpTimeShare(&b, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ts.ModelTimeShareFairness-0.6) > 0.08 {
		t.Errorf("analytical time-share fairness %.3f, paper says ~0.6", ts.ModelTimeShareFairness)
	}
	if ts.ModelMechanismFairness < 0.99 {
		t.Errorf("analytical mechanism fairness %.3f, want 1", ts.ModelMechanismFairness)
	}
	if len(ts.SimRows) != 4 {
		t.Fatalf("expected 4 time-share rows, got %d", len(ts.SimRows))
	}
	small, large := ts.SimRows[0], ts.SimRows[len(ts.SimRows)-1]
	// §6: small quotas switch heavily (throughput cost), large quotas
	// lose fairness.
	if small.SwitchesPer1k <= large.SwitchesPer1k {
		t.Errorf("small quota should switch more: %.2f vs %.2f/1k",
			small.SwitchesPer1k, large.SwitchesPer1k)
	}
	if small.IPC >= large.IPC {
		t.Errorf("small quota should cost throughput: %.3f vs %.3f IPC", small.IPC, large.IPC)
	}
	if large.Fairness >= small.Fairness {
		t.Errorf("large quota should lose fairness: %.3f vs %.3f", large.Fairness, small.Fairness)
	}
	// The mechanism achieves its fairness with far fewer switches than
	// the small-quota time share.
	if ts.SimMechanismIPC <= small.IPC {
		t.Errorf("mechanism IPC %.3f should beat 400-cycle time share %.3f",
			ts.SimMechanismIPC, small.IPC)
	}
}

func TestFLabels(t *testing.T) {
	cases := map[float64]string{0: "F=0", 0.25: "F=1/4", 0.5: "F=1/2", 1: "F=1", 0.3: "F=0.30"}
	for f, want := range cases {
		if got := fLabel(f); got != want {
			t.Errorf("fLabel(%v) = %q, want %q", f, got, want)
		}
	}
}

func TestPearson(t *testing.T) {
	if p := pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(p-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", p)
	}
	if p := pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(p+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", p)
	}
	if pearson([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Error("zero-variance input must give 0")
	}
	if pearson([]float64{1}, []float64{2}) != 0 {
		t.Error("short input must give 0")
	}
}

func TestAsciiPlot(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	out := asciiPlot("title", xs, []plotSeries{
		{Label: "up", Marker: 'u', Y: []float64{0, 1, 2, 3}},
		{Label: "down", Marker: 'd', Y: []float64{3, 2, 1, 0}},
	}, 8, 40)
	if !strings.Contains(out, "title") || !strings.Contains(out, "u = up") {
		t.Fatalf("plot output malformed:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Fatal("plot too short")
	}
	// Extremes must land on first and last grid rows.
	if !strings.ContainsRune(lines[1], 'd') && !strings.ContainsRune(lines[1], 'u') {
		t.Error("no marker on the top row")
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	out := asciiPlot("flat", []float64{0, 1}, []plotSeries{
		{Label: "c", Marker: 'c', Y: []float64{5, 5}},
	}, 6, 20)
	if !strings.Contains(out, "c = c") {
		t.Fatal("flat series must still render")
	}
	out = asciiPlot("empty", []float64{0, 1}, []plotSeries{
		{Label: "nan", Marker: 'n', Y: []float64{math.NaN(), math.Inf(1)}},
	}, 6, 20)
	if !strings.Contains(out, "no data") {
		t.Fatal("all-invalid series must report no data")
	}
}

func TestDefaultAndPaperOptions(t *testing.T) {
	d := DefaultOptions()
	if d.Scale.Measure == 0 || d.SameOffset == 0 {
		t.Fatal("default options incomplete")
	}
	p := PaperOptions()
	if p.Scale.Measure != 6_000_000 || p.SameOffset != 1_000_000 {
		t.Fatal("paper options must match §4.1")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRunner(testOptions())
	pr, err := r.RunPair(Pair{"gcc", "eon"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, []*PairRun{pr}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+len(FLevels) {
		t.Fatalf("csv rows = %d, want header + %d", len(lines), len(FLevels))
	}
	if !strings.HasPrefix(lines[0], "pair,same,F,") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "gcc:eon,false,0,") {
		t.Errorf("csv row = %q", lines[1])
	}
}
