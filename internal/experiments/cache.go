// Result cache for the experiment engine.
//
// Every figure and table re-simulates the same deterministic matrix;
// the cache makes repeated invocations near-free. Results are
// content-addressed by Fingerprint (machine + policy + threads + scale
// + schema version), so a cache entry can never be served for a run it
// does not exactly describe, and bumping SchemaVersion invalidates the
// whole store without touching the files.
//
// Three layers:
//
//  1. in-memory map — hits share the same *sim.Result pointer (results
//     are treated as immutable once published);
//  2. on-disk JSON store under Dir() — survives process restarts; reads
//     verify the schema version and key before trusting a file;
//  3. in-flight dedup — concurrent requests for the same key run one
//     simulation and share its outcome (singleflight), replacing the
//     duplicate-work race the Runner previously documented.
package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"soemt/internal/sim"
)

// Cache is a content-addressed store of simulation results. The zero
// value is not usable; construct with NewCache or NewMemCache. All
// methods are safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only
	run func(sim.Spec) (*sim.Result, error)

	// Logf, if non-nil, receives warnings about best-effort disk
	// operations (a failed write never fails the run that produced the
	// result). May be called from multiple goroutines.
	Logf func(format string, args ...interface{})

	mu       sync.Mutex
	mem      map[string]*sim.Result
	inflight map[string]*inflightRun

	m metrics
}

// inflightRun is a singleflight cell: the first requester runs the
// simulation, later requesters block on done and share the outcome.
type inflightRun struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewCache returns a cache persisting to dir (created if missing).
// An empty dir yields a memory-only cache.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:      dir,
		run:      sim.Run,
		mem:      make(map[string]*sim.Result),
		inflight: make(map[string]*inflightRun),
	}, nil
}

// NewMemCache returns an in-memory (non-persistent) cache.
func NewMemCache() *Cache {
	c, _ := NewCache("")
	return c
}

// Dir returns the on-disk store directory ("" for memory-only caches).
func (c *Cache) Dir() string { return c.dir }

// Metrics returns a snapshot of the cache's instrumentation.
func (c *Cache) Metrics() RunnerMetrics { return c.m.snapshot() }

func (c *Cache) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// RunSpec executes spec through the cache: fingerprint, layered
// lookup, singleflight simulation on miss, store. Returned results are
// shared and must not be mutated.
func (c *Cache) RunSpec(spec sim.Spec) (*sim.Result, error) {
	key, err := Fingerprint(spec)
	if err != nil {
		return nil, err
	}
	res, _, err := c.Do(key, func() (*sim.Result, error) {
		c.m.runsStarted.Add(1)
		start := time.Now()
		r, err := c.run(spec)
		if err != nil {
			c.m.runsFailed.Add(1)
			return nil, err
		}
		c.m.runsCompleted.Add(1)
		c.m.simWallNanos.Add(int64(time.Since(start)))
		c.m.simCycles.Add(r.WallCycles)
		if r.Truncated {
			c.m.truncated.Add(1)
		}
		return r, nil
	})
	return res, err
}

// Do returns the cached result for key, or runs fn exactly once across
// all concurrent callers to produce it. The boolean reports whether
// the result was served without invoking fn in this call (memory,
// disk, or a concurrent caller's run). Errors are not cached: a later
// call retries.
func (c *Cache) Do(key string, fn func() (*sim.Result, error)) (*sim.Result, bool, error) {
	c.mu.Lock()
	if res, ok := c.mem[key]; ok {
		c.mu.Unlock()
		c.m.memHits.Add(1)
		return res, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		c.m.dedupHits.Add(1)
		return f.res, true, nil
	}
	f := &inflightRun{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	finished := false
	finish := func(res *sim.Result, err error) {
		finished = true
		f.res, f.err = res, err
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil && res != nil {
			c.mem[key] = res
		}
		c.mu.Unlock()
		close(f.done)
	}
	// A panic inside fn must not leave concurrent waiters blocked on
	// f.done forever: resolve the cell with an error, then re-panic so
	// the caller's own recovery (e.g. RunAll's worker) still fires.
	defer func() {
		if rec := recover(); rec != nil {
			if !finished {
				finish(nil, fmt.Errorf("experiments: cache: run for %.12s… panicked: %v", key, rec))
			}
			panic(rec)
		}
	}()

	if res := c.readDisk(key); res != nil {
		c.m.diskHits.Add(1)
		finish(res, nil)
		return res, true, nil
	}

	c.m.misses.Add(1)
	res, err := fn()
	if err == nil && res != nil {
		if werr := c.writeDisk(key, res); werr != nil {
			c.logf("WARN cache: persist %.12s…: %v", key, werr)
		}
	}
	finish(res, err)
	return res, false, err
}

// Get returns the result stored under key, checking the memory then
// the disk layer. It never triggers a simulation.
func (c *Cache) Get(key string) (*sim.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		return res, true
	}
	if res := c.readDisk(key); res != nil {
		c.mu.Lock()
		c.mem[key] = res
		c.mu.Unlock()
		return res, true
	}
	return nil, false
}

// Put stores res under key in both layers. The disk write is atomic
// (temp file + rename); its error is returned but the memory layer is
// always updated.
func (c *Cache) Put(key string, res *sim.Result) error {
	c.mu.Lock()
	c.mem[key] = res
	c.mu.Unlock()
	return c.writeDisk(key, res)
}

// diskEntry is the on-disk envelope. Schema and Key are verified on
// read so a stale or foreign file degrades to a cache miss, never to a
// wrong result.
type diskEntry struct {
	Schema string      `json:"schema"`
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// readDisk returns the stored result for key, or nil when the disk
// layer is disabled, the file is absent, or the entry fails schema or
// key verification (corrupt and stale entries are misses, not errors).
func (c *Cache) readDisk(key string) *sim.Result {
	if c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		c.logf("WARN cache: corrupt entry %.12s…: %v", key, err)
		return nil
	}
	if e.Schema != SchemaVersion || e.Key != key || e.Result == nil {
		return nil
	}
	c.mu.Lock()
	if prev, ok := c.mem[key]; ok {
		// Keep the pointer already published to other callers.
		c.mu.Unlock()
		return prev
	}
	c.mem[key] = e.Result
	c.mu.Unlock()
	return e.Result
}

func (c *Cache) writeDisk(key string, res *sim.Result) error {
	if c.dir == "" {
		return nil
	}
	data, err := json.Marshal(diskEntry{Schema: SchemaVersion, Key: key, Result: res})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
