// Result cache for the experiment engine.
//
// Every figure and table re-simulates the same deterministic matrix;
// the cache makes repeated invocations near-free. Results are
// content-addressed by Fingerprint (machine + policy + threads + scale
// + schema version), so a cache entry can never be served for a run it
// does not exactly describe, and bumping SchemaVersion invalidates the
// whole store without touching the files.
//
// Three layers:
//
//  1. in-memory map — hits share the same *sim.Result pointer (results
//     are treated as immutable once published);
//  2. on-disk JSON store under Dir() — survives process restarts; reads
//     verify the schema version, key, and a content checksum before
//     trusting a file;
//  3. in-flight dedup — concurrent requests for the same key run one
//     simulation and share its outcome (singleflight), replacing the
//     duplicate-work race the Runner previously documented.
//
// The disk layer is strictly best-effort: a directory that cannot be
// created degrades the cache to memory-only at construction, and a
// store that turns read-only mid-run (every write failing) disables
// further writes after a few consecutive failures. Neither ever fails
// or corrupts a run — the worst case is re-simulation.
package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"soemt/internal/faultinject"
	"soemt/internal/obs"
	"soemt/internal/sim"
)

// maxWriteFails is how many consecutive disk-write failures the cache
// tolerates before concluding the store is unusable (disk full, turned
// read-only) and going memory-only for writes.
const maxWriteFails = 3

// interruptMarkerFile marks a cache directory whose producing run was
// interrupted: the entries are individually valid but the matrix they
// belong to is incomplete. See MarkInterrupted.
const interruptMarkerFile = "INTERRUPTED"

// Cache is a content-addressed store of simulation results. The zero
// value is not usable; construct with NewCache or NewMemCache. All
// methods are safe for concurrent use.
type Cache struct {
	dir string // "" = memory-only
	run func(context.Context, sim.Spec) (*sim.Result, error)

	// peerFill, if non-nil, is the remote peer cache tier consulted
	// after a disk miss and before simulating (see SetPeerFill). It is
	// strictly best-effort: any error degrades to local execution.
	peerFill func(context.Context, string) (*sim.Result, error)

	// Logf, if non-nil, receives warnings about best-effort disk
	// operations (a failed write never fails the run that produced the
	// result). May be called from multiple goroutines.
	Logf func(format string, args ...interface{})

	// Faults, if non-nil, deterministically injects faults at the
	// cache's named sites (currently "cache.write"). Nil in production;
	// see internal/faultinject.
	Faults *faultinject.Injector

	mu        sync.Mutex
	mem       map[string]*sim.Result
	inflight  map[string]*inflightRun
	degraded  error // mkdir failure that demoted the cache to memory-only
	warned    bool  // degradation warning emitted
	failRun   int   // consecutive disk-write failures
	writesOff bool  // disk writes disabled after maxWriteFails in a row

	m metrics
}

// inflightRun is a singleflight cell: the first requester runs the
// simulation, later requesters block on done and share the outcome.
type inflightRun struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewCache returns a cache persisting to dir (created if missing).
// An empty dir yields a memory-only cache. A directory that cannot be
// created does not fail construction: the cache degrades to
// memory-only, records the cause (see Degraded), and warns through
// Logf on first use — an unwritable scratch disk costs re-simulation,
// never the run.
func NewCache(dir string) (*Cache, error) {
	c := &Cache{
		dir:      dir,
		run:      sim.RunContext,
		mem:      make(map[string]*sim.Result),
		inflight: make(map[string]*inflightRun),
		m:        newMetrics(obs.NewRegistry()),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			c.dir = ""
			c.degraded = fmt.Errorf("experiments: cache dir %s: %w", dir, err)
		}
	}
	return c, nil
}

// NewMemCache returns an in-memory (non-persistent) cache.
func NewMemCache() *Cache {
	c, _ := NewCache("")
	return c
}

// SetRunFunc replaces the simulation backend invoked on cache misses
// (sim.RunContext by default; nil restores it). It lets services and
// tests interpose on execution — stubbing or instrumenting the
// simulation while keeping the real fingerprint, layering, and
// singleflight behavior. Call it before the cache serves requests;
// swapping backends mid-flight would let results from the old backend
// satisfy keys produced for the new one.
func (c *Cache) SetRunFunc(fn func(context.Context, sim.Spec) (*sim.Result, error)) {
	if fn == nil {
		fn = sim.RunContext
	}
	c.run = fn
}

// Dir returns the on-disk store directory ("" for memory-only caches,
// including caches degraded to memory-only at construction).
func (c *Cache) Dir() string { return c.dir }

// Degraded returns the error that demoted this cache to memory-only at
// construction, or nil when the disk layer came up normally.
func (c *Cache) Degraded() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// Metrics returns a snapshot of the cache's instrumentation.
func (c *Cache) Metrics() RunnerMetrics { return c.m.snapshot() }

// Observability returns the cache's metrics registry. It carries the
// counters behind Metrics plus everything simulations publish when the
// registry is attached to their specs (see Runner). Safe for
// concurrent use.
func (c *Cache) Observability() *obs.Registry { return c.m.reg }

func (c *Cache) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// warnDegraded emits the construction-time degradation warning once.
// It runs lazily because Logf is typically installed after NewCache.
func (c *Cache) warnDegraded() {
	c.mu.Lock()
	d, warned := c.degraded, c.warned
	c.warned = true
	c.mu.Unlock()
	if d != nil && !warned {
		c.logf("WARN cache: persistent store unavailable, running memory-only: %v", d)
	}
}

// RunSpec executes spec through the cache without external
// cancellation; see RunSpecContext.
func (c *Cache) RunSpec(spec sim.Spec) (*sim.Result, error) {
	return c.RunSpecContext(context.Background(), spec)
}

// RunSpecContext executes spec through the cache: fingerprint, layered
// lookup, singleflight simulation on miss, store. The simulation runs
// under ctx (cancellation, plus the spec's own watchdog). Returned
// results are shared and must not be mutated.
//
// When concurrent callers collapse onto one in-flight simulation, the
// first caller's ctx governs it. A cancellation there does NOT poison
// the waiters: a follower whose own ctx is still live elects itself
// the new leader and reruns under its own ctx (see DoContext), so one
// cancelled client can never fail an identical request from a live
// one.
func (c *Cache) RunSpecContext(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
	key, err := Fingerprint(spec)
	if err != nil {
		return nil, err
	}
	// Fresh simulations publish their engine metrics (pipe.*, core.*,
	// sim.*) into the cache's registry unless the caller attached its
	// own observer. Fingerprints exclude Obs, so this never forks cache
	// keys.
	if spec.Obs == nil {
		spec.Obs = &obs.Observer{Metrics: c.m.reg}
	}
	res, _, err := c.DoContext(ctx, key, func() (*sim.Result, error) {
		c.m.runsStarted.Add(1)
		start := time.Now()
		r, err := c.run(ctx, spec)
		if err != nil {
			c.m.runsFailed.Add(1)
			return nil, err
		}
		c.m.runsCompleted.Add(1)
		c.m.simWallNanos.Add(uint64(time.Since(start)))
		c.m.simCycles.Add(r.WallCycles)
		if r.Truncated {
			c.m.truncated.Add(1)
		}
		return r, nil
	})
	return res, err
}

// RunSpecFresh executes spec directly through the configured run
// function, bypassing every cache layer — no lookup, no singleflight,
// no store. It exists for traced runs: a cache hit skips the
// simulation and records nothing (§10 contract), so a live tracer
// requires an actual run regardless of cache state. soesim's
// -trace-events path and soeserve's "trace": true jobs use it.
// Run-lifecycle metrics (runs_started/completed/failed, sim cycles
// and wall time) are still counted.
func (c *Cache) RunSpecFresh(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
	if spec.Obs == nil {
		spec.Obs = &obs.Observer{Metrics: c.m.reg}
	}
	c.m.runsStarted.Add(1)
	start := time.Now()
	r, err := c.run(ctx, spec)
	if err != nil {
		c.m.runsFailed.Add(1)
		return nil, err
	}
	c.m.runsCompleted.Add(1)
	c.m.simWallNanos.Add(uint64(time.Since(start)))
	c.m.simCycles.Add(r.WallCycles)
	if r.Truncated {
		c.m.truncated.Add(1)
	}
	return r, nil
}

// Do returns the cached result for key, or runs fn exactly once across
// all concurrent callers to produce it. The boolean reports whether
// the result was served without invoking fn in this call (memory,
// disk, or a concurrent caller's run). Errors are not cached: a later
// call retries.
func (c *Cache) Do(key string, fn func() (*sim.Result, error)) (*sim.Result, bool, error) {
	return c.DoContext(context.Background(), key, fn)
}

// cancellation reports whether err is (or wraps) a context
// cancellation or deadline expiry — the leader's ctx dying, not a
// property of the simulation itself. Watchdog aborts (StallError,
// DeadlineError) are typed errors that do not wrap the context
// sentinels, so a run that would genuinely fail again is never
// retried.
func cancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// DoContext is Do honoring the caller's ctx while waiting on another
// caller's in-flight run.
//
// Singleflight followers join the leader's cell, but the leader runs
// under its own ctx: if that ctx is cancelled mid-run, the outcome is
// a cancellation that says nothing about the simulation. A follower
// whose ctx is still live must not inherit it — it loops, finds the
// cell gone (finish always deletes it), and elects itself the new
// leader, rerunning fn under its own ctx. Followers whose own ctx died
// while waiting return their ctx.Err(). Genuine simulation errors
// propagate to all waiters unchanged (and are not cached, so a later
// call retries).
func (c *Cache) DoContext(ctx context.Context, key string, fn func() (*sim.Result, error)) (*sim.Result, bool, error) {
	c.warnDegraded()
	var f *inflightRun
	for {
		c.mu.Lock()
		if res, ok := c.mem[key]; ok {
			c.mu.Unlock()
			c.m.memHits.Add(1)
			return res, true, nil
		}
		w, ok := c.inflight[key]
		if !ok {
			// No live leader: become it (still holding the lock).
			break
		}
		c.mu.Unlock()
		select {
		case <-w.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if w.err == nil {
			c.m.dedupHits.Add(1)
			return w.res, true, nil
		}
		if cancellation(w.err) && ctx.Err() == nil {
			// The leader's ctx died, ours is live: re-elect. The failed
			// cell was already removed by finish, so the next iteration
			// either joins a newer leader or takes over.
			c.m.dedupRetries.Add(1)
			continue
		}
		return nil, false, w.err
	}
	f = &inflightRun{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	finished := false
	finish := func(res *sim.Result, err error) {
		finished = true
		f.res, f.err = res, err
		c.mu.Lock()
		delete(c.inflight, key)
		if err == nil && res != nil {
			c.mem[key] = res
		}
		c.mu.Unlock()
		close(f.done)
	}
	// A panic inside fn must not leave concurrent waiters blocked on
	// f.done forever: resolve the cell with an error, then re-panic so
	// the caller's own recovery (e.g. RunAll's worker) still fires.
	defer func() {
		if rec := recover(); rec != nil {
			if !finished {
				finish(nil, fmt.Errorf("experiments: cache: run for %.12s… panicked: %v", key, rec))
			}
			panic(rec)
		}
	}()

	if res := c.readDisk(key); res != nil {
		c.m.diskHits.Add(1)
		finish(res, nil)
		return res, true, nil
	}

	// Local layers missed: try the remote peer tier before paying for a
	// simulation. A verified peer result is persisted locally so the
	// next restart hits disk instead of the network; any peer failure
	// falls through to fn — degraded, never wrong.
	if res := c.fetchPeer(ctx, key); res != nil {
		if werr := c.writeDisk(key, res); werr != nil {
			c.logf("WARN cache: persist peer fill %.12s…: %v", key, werr)
		}
		finish(res, nil)
		return res, true, nil
	}

	c.m.misses.Add(1)
	res, err := fn()
	if err == nil && res != nil {
		if werr := c.writeDisk(key, res); werr != nil {
			c.logf("WARN cache: persist %.12s…: %v", key, werr)
		}
	}
	finish(res, err)
	return res, false, err
}

// Get returns the result stored under key, checking the memory then
// the disk layer. It never triggers a simulation.
func (c *Cache) Get(key string) (*sim.Result, bool) {
	c.mu.Lock()
	res, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		return res, true
	}
	if res := c.readDisk(key); res != nil {
		c.mu.Lock()
		c.mem[key] = res
		c.mu.Unlock()
		return res, true
	}
	return nil, false
}

// Put stores res under key in both layers. The disk write is atomic
// (temp file + rename); its error is returned but the memory layer is
// always updated.
func (c *Cache) Put(key string, res *sim.Result) error {
	c.mu.Lock()
	c.mem[key] = res
	c.mu.Unlock()
	return c.writeDisk(key, res)
}

// MarkInterrupted writes the interrupt marker into the cache
// directory, recording that the run producing this store was cut short
// (note explains why, e.g. "SIGINT"). Individual entries stay valid —
// a rerun over the same directory warm-resumes from them — but
// consumers of the whole matrix can see it is incomplete. No-op for
// memory-only caches.
func (c *Cache) MarkInterrupted(note string) error {
	if c.dir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(c.dir, interruptMarkerFile), []byte(note+"\n"), 0o644)
}

// ClearInterrupted removes the interrupt marker (a completed run over
// the directory supersedes any earlier interruption).
func (c *Cache) ClearInterrupted() error {
	if c.dir == "" {
		return nil
	}
	err := os.Remove(filepath.Join(c.dir, interruptMarkerFile))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Interrupted reports whether the cache directory carries an interrupt
// marker from an earlier run, and returns the recorded note.
func (c *Cache) Interrupted() (string, bool) {
	if c.dir == "" {
		return "", false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, interruptMarkerFile))
	if err != nil {
		return "", false
	}
	return string(data), true
}

// diskEntry is the on-disk envelope. Schema, Key, and Sum are verified
// on read so a stale, foreign, or corrupted file degrades to a cache
// miss, never to a wrong result.
type diskEntry struct {
	Schema string      `json:"schema"`
	Key    string      `json:"key"`
	Sum    string      `json:"sum,omitempty"` // sha256 of the marshaled Result
	Result *sim.Result `json:"result"`
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// resultSum is the integrity checksum stored in diskEntry.Sum. It is
// computed over json.Marshal(res); Go's float64 encoding is
// shortest-round-trip, so marshal∘unmarshal∘marshal is a fixed point
// and the read side can recompute the sum from the decoded result.
func resultSum(res *sim.Result) (string, error) {
	data, err := json.Marshal(res)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// readDisk returns the stored result for key, or nil when the disk
// layer is disabled, the file is absent, or the entry fails schema,
// key, or checksum verification (corrupt and stale entries are misses,
// not errors — and never wrong results: flipped bytes that still parse
// as JSON are caught by the checksum). Entries written before the
// checksum existed (empty Sum) are accepted for compatibility.
func (c *Cache) readDisk(key string) *sim.Result {
	if c.dir == "" {
		return nil
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		c.logf("WARN cache: corrupt entry %.12s…: %v", key, err)
		return nil
	}
	if e.Schema != SchemaVersion || e.Key != key || e.Result == nil {
		return nil
	}
	if e.Sum != "" {
		sum, err := resultSum(e.Result)
		if err != nil || sum != e.Sum {
			c.logf("WARN cache: checksum mismatch on entry %.12s…, treating as miss", key)
			return nil
		}
	}
	c.mu.Lock()
	if prev, ok := c.mem[key]; ok {
		// Keep the pointer already published to other callers.
		c.mu.Unlock()
		return prev
	}
	c.mem[key] = e.Result
	c.mu.Unlock()
	return e.Result
}

// writesDisabled reports whether the write side of the disk layer has
// been turned off by consecutive failures.
func (c *Cache) writesDisabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writesOff
}

// noteWrite tracks consecutive write failures; after maxWriteFails in
// a row the store is presumed unusable (read-only remount, disk full)
// and further writes are skipped. Reads stay enabled — existing
// entries remain trustworthy.
func (c *Cache) noteWrite(err error) {
	c.mu.Lock()
	if err == nil {
		c.failRun = 0
		c.mu.Unlock()
		return
	}
	c.failRun++
	turnOff := !c.writesOff && c.failRun >= maxWriteFails
	if turnOff {
		c.writesOff = true
	}
	c.mu.Unlock()
	if turnOff {
		c.logf("WARN cache: %d consecutive write failures; disabling disk writes (results stay in memory, reruns will re-simulate)", maxWriteFails)
	}
}

func (c *Cache) writeDisk(key string, res *sim.Result) error {
	if c.dir == "" || c.writesDisabled() {
		return nil
	}
	if err := c.Faults.Fail("cache.write"); err != nil {
		c.noteWrite(err)
		return err
	}
	err := c.writeDiskFile(key, res)
	c.noteWrite(err)
	return err
}

func (c *Cache) writeDiskFile(key string, res *sim.Result) error {
	sum, err := resultSum(res)
	if err != nil {
		return err
	}
	data, err := json.Marshal(diskEntry{Schema: SchemaVersion, Key: key, Sum: sum, Result: res})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}
