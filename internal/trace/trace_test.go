package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"soemt/internal/workload"
)

func sampleTrace() *Trace {
	p := workload.MustByName("gcc")
	return &Trace{
		Profile:    p,
		Checkpoint: Checkpoint{StartSeq: 1_000_000, Slot: 1},
		Events: []Event{
			{AtInstr: 10_000, Kind: EventInterrupt, StallCycles: 2000},
			{AtInstr: 50_000, Kind: EventDMA, StallCycles: 400},
			{AtInstr: 90_000, Kind: EventIO, StallCycles: 1500},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("round trip mismatch:\norig: %+v\ngot:  %+v", orig, got)
	}
}

func TestRoundTripNoEventsNoPhases(t *testing.T) {
	p := workload.MustByName("swim")
	p.Phases = nil
	orig := &Trace{Profile: p}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Events) != 0 || len(got.Profile.Phases) != 0 {
		t.Fatal("empty slices must stay empty")
	}
	if got.Profile.Name != "swim" {
		t.Fatalf("name = %q", got.Profile.Name)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	_, err := Decode(strings.NewReader("NOTATRACE-AT-ALL"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[8] = 0xFF // corrupt version
	_, err := Decode(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at several points; every prefix must fail cleanly.
	for _, n := range []int{0, 4, 8, 12, 30, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d bytes not detected", n)
		}
	}
}

func TestEncodeRejectsInvalidProfile(t *testing.T) {
	tr := sampleTrace()
	tr.Profile.DepWindow = 0
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestValidateRejectsUnsortedEvents(t *testing.T) {
	tr := sampleTrace()
	tr.Events[0].AtInstr = 1 << 40
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("expected sort error, got %v", err)
	}
}

func TestValidateRejectsBadEventKind(t *testing.T) {
	tr := sampleTrace()
	tr.Events[1].Kind = EventKind(99)
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("expected kind error, got %v", err)
	}
}

func TestEventKindString(t *testing.T) {
	if EventInterrupt.String() != "interrupt" || EventDMA.String() != "dma" {
		t.Fatal("event kind names wrong")
	}
	if !strings.Contains(EventKind(7).String(), "7") {
		t.Fatal("unknown kind string wrong")
	}
}

func TestNewStreamStartsAtCheckpoint(t *testing.T) {
	tr := sampleTrace()
	s := tr.NewStream()
	if s.Pos() != tr.Checkpoint.StartSeq {
		t.Fatalf("stream pos = %d, want %d", s.Pos(), tr.Checkpoint.StartSeq)
	}
	u := s.Next()
	if u.Seq != tr.Checkpoint.StartSeq {
		t.Fatalf("first uop seq = %d", u.Seq)
	}
	// Slot must shift the address space: compare against slot 0.
	tr0 := sampleTrace()
	tr0.Checkpoint.Slot = 0
	s0 := tr0.NewStream()
	// Find a mem op in each and compare bases (top bits differ).
	var a1, a0 uint64
	for i := 0; i < 10000 && (a1 == 0 || a0 == 0); i++ {
		if u := s.Next(); u.Kind.IsMem() && a1 == 0 {
			a1 = u.Addr
		}
		if u := s0.Next(); u.Kind.IsMem() && a0 == 0 {
			a0 = u.Addr
		}
	}
	if a1>>40 == a0>>40 {
		t.Fatal("slots do not separate address spaces")
	}
}

func TestRoundTripAllBuiltinProfiles(t *testing.T) {
	for _, name := range workload.Names() {
		tr := &Trace{Profile: workload.MustByName(name)}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestRoundTripFracPause(t *testing.T) {
	p := workload.MustByName("gcc")
	p.FracPause = 0.03
	orig := &Trace{Profile: p}
	var buf bytes.Buffer
	if err := orig.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Profile.FracPause != 0.03 {
		t.Fatalf("FracPause lost in round trip: %v", got.Profile.FracPause)
	}
}
