// Package trace implements a LIT-like container for simulator
// workloads.
//
// The paper's methodology uses LITs (Long Instruction Traces): not
// actual instruction traces but an architectural checkpoint (state
// snapshot) plus injectable external events (interrupts, IO, DMA),
// from which the simulator re-executes the program. This package
// mirrors that structure for synthetic workloads: a Trace carries the
// workload profile (the "memory image" equivalent — everything needed
// to regenerate the instruction stream), a checkpoint of the
// architectural position, and a list of injectable external events
// that perturb timing during simulation.
//
// The binary format is versioned and self-describing; see Encode.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"soemt/internal/workload"
)

// Magic identifies trace files ("SOELIT~1").
const Magic = "SOELIT~1"

// Version is the current format version. Version 3 added FracPause to
// the profile block.
const Version uint32 = 3

// EventKind classifies injectable external events.
type EventKind uint8

// Injectable event kinds, mirroring the LIT methodology.
const (
	EventInterrupt EventKind = iota // asynchronous interrupt
	EventIO                         // programmed IO stall
	EventDMA                        // DMA-induced bus activity
)

var eventKindNames = [...]string{"interrupt", "io", "dma"}

// String returns the event kind name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Valid reports whether k is a defined kind.
func (k EventKind) Valid() bool { return int(k) < len(eventKindNames) }

// Event is one injectable external event: when the thread's
// architectural instruction counter reaches AtInstr, the front end
// stalls for StallCycles (interrupt/IO handling time that is not the
// program's own work).
type Event struct {
	AtInstr     uint64
	Kind        EventKind
	StallCycles uint32
}

// Checkpoint is the architectural state snapshot: where in the
// instruction stream execution resumes, and which address-space slot
// the thread occupies.
type Checkpoint struct {
	StartSeq uint64 // first instruction to execute
	Slot     uint32 // address-space slot (see workload.NewOffset)
}

// Trace is a complete LIT-like workload container.
type Trace struct {
	Profile    workload.Profile
	Checkpoint Checkpoint
	Events     []Event
}

// Validate checks internal consistency.
func (t *Trace) Validate() error {
	if err := t.Profile.Validate(); err != nil {
		return err
	}
	var prev uint64
	for i, e := range t.Events {
		if !e.Kind.Valid() {
			return fmt.Errorf("trace: event %d has invalid kind %d", i, e.Kind)
		}
		if i > 0 && e.AtInstr < prev {
			return fmt.Errorf("trace: events not sorted at index %d", i)
		}
		prev = e.AtInstr
	}
	return nil
}

// NewStream builds the workload stream the trace describes, positioned
// at the checkpoint.
func (t *Trace) NewStream() *workload.Stream {
	g := workload.NewOffset(t.Profile, int(t.Checkpoint.Slot))
	return workload.NewStream(g, t.Checkpoint.StartSeq)
}

// --- binary format -------------------------------------------------------

// The format is little-endian:
//
//	magic[8] version:u32
//	profile block (fixed scalars, then phases)
//	checkpoint block
//	eventCount:u32 events...
//
// Strings are u16 length-prefixed.

type writer struct {
	w   io.Writer
	err error
}

func (e *writer) u8(v uint8)   { e.bin(v) }
func (e *writer) u16(v uint16) { e.bin(v) }
func (e *writer) u32(v uint32) { e.bin(v) }
func (e *writer) u64(v uint64) { e.bin(v) }
func (e *writer) f64(v float64) {
	e.bin(math.Float64bits(v))
}
func (e *writer) bin(v interface{}) {
	if e.err == nil {
		e.err = binary.Write(e.w, binary.LittleEndian, v)
	}
}
func (e *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		if e.err == nil {
			e.err = errors.New("trace: string too long")
		}
		return
	}
	e.u16(uint16(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.w, s)
	}
}

type reader struct {
	r   io.Reader
	err error
}

func (d *reader) u8() (v uint8)   { d.bin(&v); return }
func (d *reader) u16() (v uint16) { d.bin(&v); return }
func (d *reader) u32() (v uint32) { d.bin(&v); return }
func (d *reader) u64() (v uint64) { d.bin(&v); return }
func (d *reader) f64() float64    { return math.Float64frombits(d.u64()) }
func (d *reader) bin(v interface{}) {
	if d.err == nil {
		d.err = binary.Read(d.r, binary.LittleEndian, v)
	}
}
func (d *reader) str() string {
	n := d.u16()
	if d.err != nil {
		return ""
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(d.r, buf)
	if err != nil {
		d.err = err
		return ""
	}
	return string(buf)
}

// Encode writes the trace to w in the binary format.
func (t *Trace) Encode(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	e := &writer{w: w}
	if _, err := io.WriteString(w, Magic); err != nil {
		return err
	}
	e.u32(Version)

	p := &t.Profile
	e.str(p.Name)
	e.u64(p.Seed)
	for _, f := range []float64{
		p.FracLoad, p.FracStore, p.FracBranch, p.FracMul, p.FracDiv,
		p.FracFAdd, p.FracFMul, p.FracFDiv, p.FracPause,
		p.ChainFrac, p.PWarm, p.PCold, p.StrideFrac, p.TakenBias, p.NoiseFrac,
	} {
		e.f64(f)
	}
	e.u32(uint32(p.DepWindow))
	e.u64(p.HotBytes)
	e.u64(p.WarmBytes)
	e.u64(p.ColdBytes)
	e.u64(p.LoopLen)
	e.u32(uint32(len(p.Phases)))
	for _, ph := range p.Phases {
		e.u64(ph.Len)
		e.f64(ph.ColdScale)
		e.f64(ph.IlpScale)
	}

	e.u64(t.Checkpoint.StartSeq)
	e.u32(t.Checkpoint.Slot)

	e.u32(uint32(len(t.Events)))
	for _, ev := range t.Events {
		e.u64(ev.AtInstr)
		e.u8(uint8(ev.Kind))
		e.u32(ev.StallCycles)
	}
	return e.err
}

// Decode reads a trace from r.
func Decode(r io.Reader) (*Trace, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	d := &reader{r: r}
	if v := d.u32(); d.err == nil && v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", v, Version)
	}

	var t Trace
	p := &t.Profile
	p.Name = d.str()
	p.Seed = d.u64()
	for _, dst := range []*float64{
		&p.FracLoad, &p.FracStore, &p.FracBranch, &p.FracMul, &p.FracDiv,
		&p.FracFAdd, &p.FracFMul, &p.FracFDiv, &p.FracPause,
		&p.ChainFrac, &p.PWarm, &p.PCold, &p.StrideFrac, &p.TakenBias, &p.NoiseFrac,
	} {
		*dst = d.f64()
	}
	p.DepWindow = int(d.u32())
	p.HotBytes = d.u64()
	p.WarmBytes = d.u64()
	p.ColdBytes = d.u64()
	p.LoopLen = d.u64()
	nPhases := d.u32()
	if d.err != nil {
		return nil, fmt.Errorf("trace: decoding profile: %w", d.err)
	}
	if nPhases > 1<<16 {
		return nil, fmt.Errorf("trace: implausible phase count %d", nPhases)
	}
	for i := uint32(0); i < nPhases; i++ {
		t.Profile.Phases = append(t.Profile.Phases, workload.Phase{
			Len:       d.u64(),
			ColdScale: d.f64(),
			IlpScale:  d.f64(),
		})
	}

	t.Checkpoint.StartSeq = d.u64()
	t.Checkpoint.Slot = d.u32()

	nEvents := d.u32()
	if d.err != nil {
		return nil, fmt.Errorf("trace: decoding checkpoint: %w", d.err)
	}
	if nEvents > 1<<24 {
		return nil, fmt.Errorf("trace: implausible event count %d", nEvents)
	}
	for i := uint32(0); i < nEvents; i++ {
		t.Events = append(t.Events, Event{
			AtInstr:     d.u64(),
			Kind:        EventKind(d.u8()),
			StallCycles: d.u32(),
		})
	}
	if d.err != nil {
		return nil, fmt.Errorf("trace: decoding events: %w", d.err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
