package report

import (
	"fmt"
	"io"
	"strings"

	"soemt/internal/stats"
)

// HTML accumulates sections (text, tables, charts) and renders a
// standalone report document.
type HTML struct {
	Title    string
	sections []string
}

// Heading starts a new section.
func (h *HTML) Heading(title string) {
	h.sections = append(h.sections, "<h2>"+esc(title)+"</h2>")
}

// Text adds a paragraph.
func (h *HTML) Text(format string, args ...interface{}) {
	h.sections = append(h.sections, "<p>"+esc(fmt.Sprintf(format, args...))+"</p>")
}

// Pre adds preformatted text (e.g. an ASCII table as-is).
func (h *HTML) Pre(s string) {
	h.sections = append(h.sections, "<pre>"+esc(s)+"</pre>")
}

// Chart embeds a line chart.
func (h *HTML) Chart(c *Chart) {
	h.sections = append(h.sections, c.SVG())
}

// Bars embeds a grouped bar chart.
func (h *HTML) Bars(bc *BarChart) {
	h.sections = append(h.sections, bc.SVG())
}

// Table embeds a stats.Table as an HTML table.
func (h *HTML) Table(t *stats.Table) {
	var b strings.Builder
	b.WriteString("<table>")
	for i, line := range strings.Split(strings.TrimRight(t.CSV(), "\n"), "\n") {
		cells := splitCSV(line)
		tag := "td"
		if i == 0 {
			tag = "th"
		}
		b.WriteString("<tr>")
		for _, c := range cells {
			fmt.Fprintf(&b, "<%s>%s</%s>", tag, esc(c), tag)
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
	h.sections = append(h.sections, b.String())
}

// splitCSV parses one line of the Table.CSV output (quotes per RFC
// 4180 as emitted by stats.Table).
func splitCSV(line string) []string {
	var out []string
	var cur strings.Builder
	inQ := false
	for i := 0; i < len(line); i++ {
		ch := line[i]
		switch {
		case inQ && ch == '"' && i+1 < len(line) && line[i+1] == '"':
			cur.WriteByte('"')
			i++
		case ch == '"':
			inQ = !inQ
		case ch == ',' && !inQ:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(ch)
		}
	}
	out = append(out, cur.String())
	return out
}

// Render writes the complete document.
func (h *HTML) Render(w io.Writer) error {
	header := `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>` + esc(h.Title) + `</title>
<style>
body { font-family: sans-serif; max-width: 960px; margin: 24px auto; color: #222; }
table { border-collapse: collapse; margin: 12px 0; font-size: 13px; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
pre { background: #f6f6f6; padding: 8px; overflow-x: auto; font-size: 12px; }
svg { margin: 8px 0; }
</style></head><body>
<h1>` + esc(h.Title) + `</h1>
`
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	for _, s := range h.sections {
		if _, err := io.WriteString(w, s+"\n"); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</body></html>\n")
	return err
}
