package report

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"soemt/internal/stats"
)

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg[:min(len(svg), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestChartSVG(t *testing.T) {
	c := &Chart{Title: "fairness vs F", XLabel: "F", YLabel: "fairness"}
	if err := c.Add("gcc:eon", []float64{0, 0.5, 1}, []float64{0.1, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("mcf:galgel", []float64{0, 0.5, 1}, []float64{0.03, 0.36, 0.7}); err != nil {
		t.Fatal(err)
	}
	svg := c.SVG()
	wellFormed(t, svg)
	for _, want := range []string{"fairness vs F", "gcc:eon", "polyline", "svg"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if c.NumSeries() != 2 {
		t.Error("series count")
	}
}

func TestChartRejectsLengthMismatch(t *testing.T) {
	c := &Chart{}
	if err := c.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestChartHandlesNaN(t *testing.T) {
	c := &Chart{Title: "nan"}
	c.Add("s", []float64{0, 1, 2}, []float64{1, math.NaN(), 3})
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG")
	}
}

func TestChartEmptySeries(t *testing.T) {
	c := &Chart{Title: "empty"}
	wellFormed(t, c.SVG()) // no series: still a valid frame
	c.Add("allbad", []float64{0}, []float64{math.Inf(1)})
	wellFormed(t, c.SVG())
}

func TestChartEscapesTitles(t *testing.T) {
	c := &Chart{Title: `a<b & "c"`}
	svg := c.SVG()
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b") {
		t.Fatal("title not escaped")
	}
}

func TestBarChartSVG(t *testing.T) {
	bc := &BarChart{
		Title:  "throughput",
		YLabel: "IPC",
		Groups: []string{"gcc:eon", "swim:swim"},
	}
	if err := bc.Add("F=0", []float64{1.8, 1.3}); err != nil {
		t.Fatal(err)
	}
	if err := bc.Add("F=1", []float64{1.6, 1.25}); err != nil {
		t.Fatal(err)
	}
	svg := bc.SVG()
	wellFormed(t, svg)
	if !strings.Contains(svg, "rect") || !strings.Contains(svg, "swim:swim") {
		t.Error("bar chart incomplete")
	}
	if bc.NumSeries() != 2 {
		t.Error("series count")
	}
}

func TestBarChartRejectsWrongGroupCount(t *testing.T) {
	bc := &BarChart{Groups: []string{"a", "b"}}
	if err := bc.Add("s", []float64{1}); err == nil {
		t.Fatal("wrong group count must error")
	}
}

func TestBarChartZeroMax(t *testing.T) {
	bc := &BarChart{Groups: []string{"a"}}
	bc.Add("s", []float64{0})
	wellFormed(t, bc.SVG())
}

func TestHTMLRender(t *testing.T) {
	h := &HTML{Title: "SOE report"}
	h.Heading("Figure 6")
	h.Text("measured at %s scale", "quick")
	h.Pre("raw | table")
	c := &Chart{Title: "c"}
	c.Add("s", []float64{0, 1}, []float64{1, 2})
	h.Chart(c)
	bc := &BarChart{Title: "b", Groups: []string{"g"}}
	bc.Add("s", []float64{1})
	h.Bars(bc)
	tbl := stats.NewTable("pair", "IPC")
	tbl.AddRow("gcc:eon", "1.72")
	h.Table(tbl)

	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "SOE report", "<h2>Figure 6</h2>",
		"quick", "<svg", "<table>", "gcc:eon", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestHTMLTableEscaping(t *testing.T) {
	h := &HTML{Title: "t"}
	tbl := stats.NewTable("a")
	tbl.AddRow(`x<y & "z", comma`)
	h.Table(tbl)
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "x<y") {
		t.Fatal("cell not escaped")
	}
	if !strings.Contains(out, `x&lt;y &amp; &quot;z&quot;, comma`) {
		t.Fatalf("quoted CSV cell not reassembled: %s", out)
	}
}

func TestSplitCSV(t *testing.T) {
	cases := map[string][]string{
		"a,b,c":           {"a", "b", "c"},
		`"a,b",c`:         {"a,b", "c"},
		`"say ""hi""",x`:  {`say "hi"`, "x"},
		"single":          {"single"},
		`"trailing,",end`: {"trailing,", "end"},
	}
	for in, want := range cases {
		got := splitCSV(in)
		if len(got) != len(want) {
			t.Errorf("splitCSV(%q) = %v", in, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitCSV(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestTicker(t *testing.T) {
	cases := map[float64]string{
		2_500_000: "2.5M",
		50_000:    "50k",
		42:        "42",
		0.25:      "0.25",
	}
	for v, want := range cases {
		if got := ticker(v); got != want {
			t.Errorf("ticker(%v) = %q, want %q", v, got, want)
		}
	}
}
