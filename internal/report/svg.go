// Package report renders experiment results as standalone HTML with
// inline SVG charts — line charts for the time-series and sweep
// figures, grouped bar charts for the per-pair figures — using only
// the standard library. cmd/soefig uses it for its -html mode.
package report

import (
	"fmt"
	"math"
	"strings"
)

// palette is a colorblind-friendly cycle for series.
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
}

// Series is one line of a Chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is an XY line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	W, H   int // pixel dimensions (defaults 640x360)

	series []Series
}

// Add appends a series; X and Y must have equal length.
func (c *Chart) Add(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("report: series %q: %d x values vs %d y values", name, len(x), len(y))
	}
	c.series = append(c.series, Series{Name: name, X: x, Y: y})
	return nil
}

// NumSeries returns the number of series added.
func (c *Chart) NumSeries() int { return len(c.series) }

const (
	marginL = 60
	marginR = 16
	marginT = 34
	marginB = 46
)

func (c *Chart) dims() (int, int) {
	w, h := c.W, c.H
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 360
	}
	return w, h
}

// bounds computes the data extents over all series, ignoring NaN/Inf.
func (c *Chart) bounds() (xMin, xMax, yMin, yMax float64, ok bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.X {
			if bad(s.X[i]) || bad(s.Y[i]) {
				continue
			}
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
			ok = true
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	return xMin, xMax, yMin, yMax, ok
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// SVG renders the chart as a standalone <svg> element.
func (c *Chart) SVG() string {
	w, h := c.dims()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="14">%s</text>`, w/2, esc(c.Title))

	xMin, xMax, yMin, yMax, ok := c.bounds()
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB
	px := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*float64(plotW) }
	py := func(y float64) float64 { return marginT + (yMax-y)/(yMax-yMin)*float64(plotH) }

	// Frame and gridlines with tick labels.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#999"/>`,
		marginL, marginT, plotW, plotH)
	if ok {
		for i := 0; i <= 4; i++ {
			fy := yMin + (yMax-yMin)*float64(i)/4
			y := py(fy)
			fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`,
				marginL, y, marginL+plotW, y)
			fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`,
				marginL-6, y+4, ticker(fy))
			fx := xMin + (xMax-xMin)*float64(i)/4
			x := px(fx)
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`,
				x, marginT+plotH+16, ticker(fx))
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`,
		marginL+plotW/2, h-8, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))

	// Series polylines + legend.
	for si, s := range c.series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if bad(s.X[i]) || bad(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`,
				strings.Join(pts, " "), color)
		}
		lx := marginL + 8
		ly := marginT + 14 + si*14
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, ly-4, lx+18, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, lx+24, ly, esc(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// BarSeries is one series of a grouped bar chart.
type BarSeries struct {
	Name string
	Y    []float64 // one value per group
}

// BarChart is a grouped bar chart (e.g. per-pair values at several F
// levels).
type BarChart struct {
	Title  string
	YLabel string
	Groups []string // group labels (x axis)
	W, H   int

	series []BarSeries
}

// Add appends a series; Y must have one value per group.
func (bc *BarChart) Add(name string, y []float64) error {
	if len(y) != len(bc.Groups) {
		return fmt.Errorf("report: bar series %q: %d values for %d groups", name, len(y), len(bc.Groups))
	}
	bc.series = append(bc.series, BarSeries{Name: name, Y: y})
	return nil
}

// NumSeries returns the number of series added.
func (bc *BarChart) NumSeries() int { return len(bc.series) }

// SVG renders the grouped bar chart.
func (bc *BarChart) SVG() string {
	w, h := bc.W, bc.H
	if w <= 0 {
		w = 900
	}
	if h <= 0 {
		h = 380
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="14">%s</text>`, w/2, esc(bc.Title))

	yMax := 0.0
	for _, s := range bc.series {
		for _, v := range s.Y {
			if !bad(v) && v > yMax {
				yMax = v
			}
		}
	}
	if yMax == 0 {
		yMax = 1
	}
	plotW := w - marginL - marginR
	plotH := h - marginT - marginB - 10
	py := func(y float64) float64 { return marginT + (yMax-y)/yMax*float64(plotH) }

	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	for i := 0; i <= 4; i++ {
		fy := yMax * float64(i) / 4
		y := py(fy)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`,
			marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`, marginL-6, y+4, ticker(fy))
	}
	fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, esc(bc.YLabel))

	nG, nS := len(bc.Groups), len(bc.series)
	if nG > 0 && nS > 0 {
		groupW := float64(plotW) / float64(nG)
		barW := groupW * 0.8 / float64(nS)
		for gi, g := range bc.Groups {
			gx := float64(marginL) + groupW*float64(gi)
			for si, s := range bc.series {
				v := s.Y[gi]
				if bad(v) {
					continue
				}
				x := gx + groupW*0.1 + barW*float64(si)
				y := py(v)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
					x, y, barW, float64(marginT+plotH)-y, palette[si%len(palette)])
			}
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`,
				gx+groupW/2, marginT+plotH+14, gx+groupW/2, marginT+plotH+14, esc(g))
		}
	}
	for si, s := range bc.series {
		lx := marginL + 8 + si*120
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			lx, marginT+2, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`, lx+14, marginT+11, esc(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// ticker formats an axis tick compactly.
func ticker(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
