// Package branch implements the branch-prediction structures of the
// simulated core: two-bit bimodal tables, a gshare predictor, a
// tournament combination, a branch target buffer, and a return address
// stack.
//
// As in the paper's machine (Section 4.1), predictor state is shared
// between SOE threads and is NOT flushed on a thread switch — sharing
// is required to maintain performance after switches, and it is one of
// the resource-sharing effects that make the estimated single-thread
// IPC slightly lower than the real one (Section 5.1.1).
package branch

// Direction predictors ----------------------------------------------------

// Predictor predicts conditional branch directions and learns from
// resolved outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the architectural outcome.
	Update(pc uint64, taken bool)
}

// counter2 is a saturating 2-bit counter: 0,1 predict not-taken; 2,3
// predict taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) train(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal creates a bimodal predictor with the given number of
// entries (rounded up to a power of two, minimum 16). Counters start
// weakly taken, which converges fastest for loop-heavy code.
func NewBimodal(entries int) *Bimodal {
	n := pow2(entries)
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].train(taken)
}

// Gshare XORs a global history register with the PC to index its
// counter table, capturing correlated branches.
type Gshare struct {
	table   []counter2
	mask    uint64
	history uint64
	histLen uint
}

// NewGshare creates a gshare predictor with the given number of table
// entries (rounded up to a power of two, minimum 16) and history
// length in bits (clamped to the table index width).
func NewGshare(entries int, historyBits uint) *Gshare {
	n := pow2(entries)
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	if historyBits > bits {
		historyBits = bits
	}
	t := make([]counter2, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: uint64(n - 1), histLen: historyBits}
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. It trains the indexed counter with the
// pre-update history, then shifts the outcome into the history.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].train(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Tournament selects between a bimodal and a gshare component with a
// table of 2-bit chooser counters (Alpha 21264 style).
type Tournament struct {
	local   *Bimodal
	global  *Gshare
	chooser []counter2 // taken() == true means "use global"
	mask    uint64
}

// NewTournament creates a tournament predictor; entries sizes all three
// tables.
func NewTournament(entries int, historyBits uint) *Tournament {
	n := pow2(entries)
	ch := make([]counter2, n)
	for i := range ch {
		ch[i] = 2
	}
	return &Tournament{
		local:   NewBimodal(n),
		global:  NewGshare(n, historyBits),
		chooser: ch,
		mask:    uint64(n - 1),
	}
}

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser[(pc>>2)&t.mask].taken() {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update implements Predictor: the chooser trains toward whichever
// component was correct (when they disagree), then both components
// train.
func (t *Tournament) Update(pc uint64, taken bool) {
	lp := t.local.Predict(pc)
	gp := t.global.Predict(pc)
	if lp != gp {
		i := (pc >> 2) & t.mask
		t.chooser[i] = t.chooser[i].train(gp == taken)
	}
	t.local.Update(pc, taken)
	t.global.Update(pc, taken)
}

// Target prediction -------------------------------------------------------

// BTB is a direct-mapped branch target buffer with partial tags.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64
}

// NewBTB creates a BTB with the given number of entries (rounded up to
// a power of two, minimum 16).
func NewBTB(entries int) *BTB {
	n := pow2(entries)
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		valid:   make([]bool, n),
		mask:    uint64(n - 1),
	}
}

func (b *BTB) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Lookup returns the predicted target for pc and whether the BTB hit.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := b.index(pc)
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Insert records (or replaces) the target for pc.
func (b *BTB) Insert(pc, target uint64) {
	i := b.index(pc)
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}

// RAS is a circular return-address stack.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS creates a return-address stack with the given capacity
// (minimum 1).
func NewRAS(capacity int) *RAS {
	if capacity < 1 {
		capacity = 1
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return address (on a return). ok is false when the
// stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Unit bundles the direction predictor, BTB and RAS into the front-end
// branch unit used by the pipeline, and tracks accuracy statistics.
type Unit struct {
	Dir Predictor
	BTB *BTB
	RAS *RAS

	Lookups     uint64 // conditional-branch predictions made
	Mispredicts uint64 // direction mispredictions
}

// NewUnit builds the default branch unit: a tournament direction
// predictor, BTB and RAS sized per DESIGN.md.
func NewUnit(entries, btbEntries, rasDepth int, historyBits uint) *Unit {
	return &Unit{
		Dir: NewTournament(entries, historyBits),
		BTB: NewBTB(btbEntries),
		RAS: NewRAS(rasDepth),
	}
}

// PredictDirection predicts the branch at pc and counts the lookup.
func (u *Unit) PredictDirection(pc uint64) bool {
	u.Lookups++
	return u.Dir.Predict(pc)
}

// Resolve trains the unit with an architectural outcome and counts
// mispredictions against the direction prediction made at fetch.
func (u *Unit) Resolve(pc uint64, predicted, taken bool, target uint64) {
	if predicted != taken {
		u.Mispredicts++
	}
	u.Dir.Update(pc, taken)
	if taken {
		u.BTB.Insert(pc, target)
	}
}

// MispredictRate returns the fraction of direction predictions that
// were wrong.
func (u *Unit) MispredictRate() float64 {
	if u.Lookups == 0 {
		return 0
	}
	return float64(u.Mispredicts) / float64(u.Lookups)
}

// pow2 rounds n up to a power of two with a floor of 16.
func pow2(n int) int {
	if n < 16 {
		n = 16
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
