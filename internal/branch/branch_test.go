package branch

import (
	"testing"
	"testing/quick"

	"soemt/internal/rng"
)

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	c = c.train(false)
	if c != 0 {
		t.Error("counter must saturate at 0")
	}
	for i := 0; i < 10; i++ {
		c = c.train(true)
	}
	if c != 3 {
		t.Errorf("counter must saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Error("3 must predict taken")
	}
	c = c.train(false)
	c = c.train(false)
	if c.taken() {
		t.Error("1 must predict not-taken")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x400)
	for i := 0; i < 8; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
	for i := 0; i < 8; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to learn always-taken")
	}
}

func TestBimodalHighAccuracyOnBiasedStream(t *testing.T) {
	b := NewBimodal(4096)
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(0x1000 + (i%32)*4)
		taken := (i % 32) < 24 // per-PC constant direction
		if b.Predict(pc) != taken {
			wrong++
		}
		b.Update(pc, taken)
	}
	if rate := float64(wrong) / n; rate > 0.01 {
		t.Errorf("bimodal mispredict rate %.3f on trivially biased stream", rate)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// A period-2 alternating branch is unpredictable for bimodal but
	// trivial for gshare once history warms up.
	g := NewGshare(4096, 12)
	pc := uint64(0x2000)
	wrong := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if i >= 200 && g.Predict(pc) != taken {
			wrong++
		}
		g.Update(pc, taken)
	}
	if wrong > 20 {
		t.Errorf("gshare failed to learn alternating pattern: %d wrong", wrong)
	}
}

func TestGshareHistoryMasked(t *testing.T) {
	g := NewGshare(64, 60) // history longer than index must be clamped
	for i := 0; i < 1000; i++ {
		g.Update(uint64(i*4), i%3 == 0)
	}
	if g.history >= 1<<g.histLen {
		t.Error("history exceeded its mask")
	}
}

func TestTournamentBeatsWorstComponent(t *testing.T) {
	// Mix of per-PC biased branches (bimodal-friendly) and one
	// alternating branch (gshare-friendly); tournament should handle
	// both once trained.
	tp := NewTournament(4096, 12)
	wrong := 0
	const n = 30000
	for i := 0; i < n; i++ {
		var pc uint64
		var taken bool
		if i%4 == 0 {
			pc = 0x9000
			taken = (i/4)%2 == 0 // alternating
		} else {
			pc = uint64(0x100 + (i%8)*4)
			taken = true // biased
		}
		if i > n/10 && tp.Predict(pc) != taken {
			wrong++
		}
		tp.Update(pc, taken)
	}
	if rate := float64(wrong) / float64(n); rate > 0.05 {
		t.Errorf("tournament mispredict rate %.3f", rate)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(256)
	if _, ok := b.Lookup(0x400); ok {
		t.Error("empty BTB must miss")
	}
	b.Insert(0x400, 0x800)
	if tgt, ok := b.Lookup(0x400); !ok || tgt != 0x800 {
		t.Errorf("BTB lookup = %#x, %v", tgt, ok)
	}
	// Conflicting PC mapping to same set with different tag must miss.
	conflict := 0x400 + uint64(256*4)
	if _, ok := b.Lookup(conflict); ok {
		t.Error("tag mismatch must miss")
	}
	b.Insert(conflict, 0xc00)
	if _, ok := b.Lookup(0x400); ok {
		t.Error("replaced entry must miss")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS must not pop")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if v, ok := r.Pop(); !ok || v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS deeper than capacity")
	}
}

func TestUnitAccuracyTracking(t *testing.T) {
	u := NewUnit(1024, 256, 8, 10)
	pc := uint64(0x500)
	pred := u.PredictDirection(pc)
	u.Resolve(pc, !pred, pred, 0x600) // predicted wrong, actual outcome = pred
	if u.Lookups != 1 || u.Mispredicts != 1 {
		t.Fatalf("lookups=%d mispredicts=%d", u.Lookups, u.Mispredicts)
	}
	if u.MispredictRate() != 1 {
		t.Fatal("rate should be 1")
	}
	if tgt, ok := u.BTB.Lookup(pc); !ok || tgt != 0x600 {
		t.Error("Resolve must insert taken targets into BTB")
	}
	var empty Unit
	if empty.MispredictRate() != 0 {
		t.Error("zero lookups rate should be 0")
	}
}

func TestPredictorsNeverPanicOnArbitraryPC(t *testing.T) {
	b := NewBimodal(128)
	g := NewGshare(128, 8)
	tp := NewTournament(128, 8)
	f := func(pc uint64, taken bool) bool {
		b.Predict(pc)
		b.Update(pc, taken)
		g.Predict(pc)
		g.Update(pc, taken)
		tp.Predict(pc)
		tp.Update(pc, taken)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPow2(t *testing.T) {
	cases := map[int]int{0: 16, 15: 16, 16: 16, 17: 32, 1000: 1024}
	for in, want := range cases {
		if got := pow2(in); got != want {
			t.Errorf("pow2(%d) = %d, want %d", in, got, want)
		}
	}
}

// A randomized stream should yield ~50% accuracy — sanity ceiling check
// that the predictor is not accidentally cheating via state leakage.
func TestGshareRandomStreamNearChance(t *testing.T) {
	g := NewGshare(4096, 12)
	s := rng.NewStream(11)
	wrong := 0
	const n = 50000
	for i := 0; i < n; i++ {
		pc := uint64(0x100 + s.Intn(64)*4)
		taken := s.Float64() < 0.5
		if g.Predict(pc) != taken {
			wrong++
		}
		g.Update(pc, taken)
	}
	rate := float64(wrong) / n
	if rate < 0.40 || rate > 0.60 {
		t.Errorf("random-stream mispredict rate %.3f, want ~0.5", rate)
	}
}
