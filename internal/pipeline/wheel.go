package pipeline

// Discrete-event engine support (DESIGN.md §16).
//
// The event wheel generalizes IdleScan's ad-hoc next-event computation
// into a persistent priority queue over the machine's pending state
// changes. Each pipeline stage is an event *source* with at most one
// pending event — the earliest future cycle at which that stage could
// act:
//
//	retire: max(head-of-ROB doneAt, injected-event-stall expiry)
//	issue:  the cached reservation-station wake bound
//	rename: the fetch-queue head's decode-ready cycle
//	fetch:  the fetch-stall expiry
//
// WheelScan refreshes each source from machine state (every refresh is
// O(1); unchanged times are deduplicated and cost no heap traffic),
// then pops the earliest valid event as the skip horizon. The idleness
// certification — the set of conditions under which skipping is
// disallowed outright — is exactly IdleScan's; only horizon ownership
// moves into the wheel. Safety does not depend on wheel precision:
// stale entries are lazily discarded, and any horizon that is at most
// the true next-event time merely ends a skip early, which the
// equivalence contract tolerates (the controller re-certifies at every
// resume point).

// Wheel event sources.
const (
	srcRetire uint8 = iota
	srcIssue
	srcRename
	srcFetch

	numWheelSrcs
)

type wheelEvent struct {
	at  uint64
	src uint8
}

// EventWheel is a lazy binary min-heap of per-source events. Each
// source has one authoritative scheduled time (cur); heap entries
// whose time no longer matches their source's are stale and are
// dropped on pop. Schedule with an unchanged time is a no-op, so
// steady stall states generate no heap churn.
type EventWheel struct {
	heap []wheelEvent
	cur  [numWheelSrcs]uint64 // 0 = source unscheduled
}

// Schedule sets src's pending event to cycle at (at > 0). Rescheduling
// with the same time is free; a changed time supersedes the old entry
// lazily.
func (w *EventWheel) Schedule(src uint8, at uint64) {
	if w.cur[src] == at {
		return
	}
	w.cur[src] = at
	w.heap = append(w.heap, wheelEvent{at: at, src: src})
	// Sift up.
	i := len(w.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if w.heap[parent].at <= w.heap[i].at {
			break
		}
		w.heap[parent], w.heap[i] = w.heap[i], w.heap[parent]
		i = parent
	}
}

// Cancel clears src's pending event. Its heap entry, if any, becomes
// stale and is dropped lazily.
func (w *EventWheel) Cancel(src uint8) { w.cur[src] = 0 }

// Min returns the earliest valid pending event without removing it
// (stale entries are discarded on the way). ok=false means no source
// has a pending event.
func (w *EventWheel) Min() (at uint64, src uint8, ok bool) {
	for len(w.heap) > 0 {
		top := w.heap[0]
		if w.cur[top.src] == top.at {
			return top.at, top.src, true
		}
		w.popTop()
	}
	return 0, 0, false
}

// Pop removes and returns the earliest valid pending event, clearing
// its source.
func (w *EventWheel) Pop() (at uint64, src uint8, ok bool) {
	at, src, ok = w.Min()
	if ok {
		w.cur[src] = 0
		w.popTop()
	}
	return at, src, ok
}

// Len returns the number of heap entries, including stale ones
// (exported for tests and introspection).
func (w *EventWheel) Len() int { return len(w.heap) }

// Reset empties the wheel.
func (w *EventWheel) Reset() {
	w.heap = w.heap[:0]
	for i := range w.cur {
		w.cur[i] = 0
	}
}

func (w *EventWheel) popTop() {
	last := len(w.heap) - 1
	w.heap[0] = w.heap[last]
	w.heap = w.heap[:last]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(w.heap) && w.heap[l].at < w.heap[min].at {
			min = l
		}
		if r < len(w.heap) && w.heap[r].at < w.heap[min].at {
			min = r
		}
		if min == i {
			return
		}
		w.heap[i], w.heap[min] = w.heap[min], w.heap[i]
		i = min
	}
}

// WheelScan is the discrete-event engine's idle certification: it
// refreshes the event wheel from machine state and reports whether the
// pipeline is idle at cycle now, with the wheel's earliest event as
// the skip horizon. Semantics match IdleScan exactly (same
// certification conditions, same report, bit-identical downstream
// results); the horizon is owned by the wheel.
func (p *Pipeline) WheelScan(now uint64) (horizon uint64, report IdleReport, idle bool) {
	if p.sbHead != len(p.sbAddr) {
		return 0, report, false // store dispatch progresses every cycle
	}
	w := &p.wheel

	// Retirement / injected-event firing.
	if p.headID < p.nextID {
		s := p.headID & p.robMask
		if p.robFlags[s]&rfDone != 0 {
			doneAt := p.robDoneAt[s]
			t := doneAt
			if p.eventStall > t {
				t = p.eventStall
			}
			if t <= now {
				return 0, report, false // head retires (or fires an event) now
			}
			w.Schedule(srcRetire, t)
			if p.robFlags[s]&(rfMiss|rfL1) != 0 {
				report = IdleReport{
					Miss:      p.robFlags[s]&rfMiss != 0,
					L1:        p.robFlags[s]&rfL1 != 0,
					Seq:       p.robUop[s].Seq,
					ResolveAt: doneAt,
					From:      now,
					Until:     doneAt,
				}
				if p.eventStall > report.From {
					report.From = p.eventStall
				}
			}
		} else {
			// Head not executed yet: it reaches retirement only after an
			// issue event, which the issue source bounds.
			w.Cancel(srcRetire)
		}
	} else {
		w.Cancel(srcRetire)
	}

	// Issue: the cached wake bound is authoritative when set (see
	// IdleScan); unset or stale means "not provably idle".
	if p.rsCount > 0 {
		t := p.issueWakeAt
		if t <= now {
			return 0, report, false
		}
		w.Schedule(srcIssue, t)
	} else {
		w.Cancel(srcIssue)
	}

	// Rename.
	if p.fqCount > 0 && !p.renameBlocked(p.fqUop[p.fqHead].Kind) {
		t := p.fqReadyAt[p.fqHead]
		if t <= now {
			return 0, report, false
		}
		w.Schedule(srcRename, t)
	} else {
		// Blocked heads unblock only via retire/issue events already on
		// the wheel.
		w.Cancel(srcRename)
	}

	// Fetch.
	if p.stream != nil && !p.brBlocked && p.fqCount < len(p.fqUop) {
		if p.fetchStall <= now {
			return 0, report, false
		}
		w.Schedule(srcFetch, p.fetchStall)
	} else {
		w.Cancel(srcFetch)
	}

	at, _, ok := w.Min()
	if !ok || at <= now+1 {
		return 0, report, false // nothing worth skipping (or no known event)
	}
	if report.Until > at {
		report.Until = at
	}
	return at, report, true
}
