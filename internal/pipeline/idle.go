package pipeline

// Idle-cycle fast-forward support (DESIGN.md §9).
//
// Cycle() spends one host iteration per simulated cycle even while the
// machine is provably stalled — e.g. the 300-cycle Miss_lat wait with
// the ROB head blocked, the fetch queue full and every reservation
// station waiting on the missing load. IdleScan computes the machine's
// next-event horizon: the earliest future cycle at which ANY stage
// could change state. When that horizon is beyond now+1, every Cycle()
// call in between is a strict no-op apart from (a) the per-cycle
// metric integrals and (b) re-emitting the same head-of-ROB pending
// report; AdvanceIdle applies (a) in bulk and IdleReport describes (b)
// so the SOE controller can replicate its per-cycle reaction exactly.
// Results are bit-identical to cycle-by-cycle execution (verified by
// the equivalence matrix in internal/sim).
//
// WheelScan (wheel.go) is the discrete-event generalization: the same
// idleness certification, with the horizon owned by a persistent event
// wheel instead of recomputed ad hoc. DESIGN.md §16 has the contract.

// IdleReport describes the head-of-ROB pending report that retire()
// would emit on every cycle of an idle window: the next-to-retire
// micro-op is flagged with an unresolved miss. The report repeats with
// identical contents on each cycle t with From <= t < Until; outside
// that range (e.g. while an injected event stall gates retirement) no
// report is emitted.
type IdleReport struct {
	Miss      bool   // HeadMissPending (L2/walk miss)
	L1        bool   // HeadL1Pending (L1 miss that hit in L2)
	Seq       uint64 // architectural seq of the pending micro-op
	ResolveAt uint64 // cycle its miss resolves
	From      uint64 // first cycle the report is emitted
	Until     uint64 // first cycle it is no longer emitted (exclusive)
}

// IdleScan reports whether the pipeline is idle at cycle now: no stage
// can make progress at any cycle t with now <= t < horizon, so every
// Cycle(t) in that window would only bump the per-cycle metric
// integrals (see AdvanceIdle) and re-emit the report. idle=false means
// some stage can act at now itself (or nothing about the next event is
// known cheaply) and the caller must execute a real cycle.
//
// The horizon is the earliest of:
//   - head-of-ROB retirement or injected-event firing:
//     max(head doneAt, event-stall expiry);
//   - the earliest possible reservation-station issue: operand
//     producers complete on fixed doneAt schedules and ports free on
//     fixed busy-until schedules (entries whose producers have not
//     issued cannot overtake the bound — see issueHorizon);
//   - rename of the fetch-queue head once its group is decoded
//     (readyAt), unless blocked on a full backend (which only a
//     retire/issue event, already in the horizon, can clear);
//   - fetch resuming at fetchStall expiry, unless blocked on a
//     mispredicted branch (cleared by its issue) or a full fetch
//     queue (cleared by rename).
//
// Store dispatch performs a cache access every cycle the buffer is
// non-empty, so a non-empty store buffer is never idle. Cycles in an
// idle window touch no cache, TLB, MSHR, bus or predictor state.

func (p *Pipeline) IdleScan(now uint64) (horizon uint64, report IdleReport, idle bool) {
	if p.sbHead != len(p.sbAddr) {
		return 0, report, false // store dispatch progresses every cycle
	}
	clip := func(t uint64) {
		if horizon == 0 || t < horizon {
			horizon = t
		}
	}

	// Retirement / injected-event firing.
	if p.headID < p.nextID {
		s := p.headID & p.robMask
		if p.robFlags[s]&rfDone != 0 {
			doneAt := p.robDoneAt[s]
			t := doneAt
			if p.eventStall > t {
				t = p.eventStall
			}
			if t <= now {
				return 0, report, false // head retires (or fires an event) now
			}
			clip(t)
			if p.robFlags[s]&(rfMiss|rfL1) != 0 {
				report = IdleReport{
					Miss:      p.robFlags[s]&rfMiss != 0,
					L1:        p.robFlags[s]&rfL1 != 0,
					Seq:       p.robUop[s].Seq,
					ResolveAt: doneAt,
					From:      now,
					Until:     doneAt,
				}
				if p.eventStall > report.From {
					report.From = p.eventStall
				}
			}
		}
		// Head not executed yet: it reaches retirement only after an
		// issue event, which the issue horizon below already bounds.
	}

	// Issue. The cached wake bound (maintained by issue() and rename)
	// is authoritative when set: no waiting entry can issue before it.
	// An unset or stale cache (0, or <= now) just means "not provably
	// idle": the caller executes a real cycle, whose issue() scan
	// installs a fresh bound if the RS turns out to be all-waiting —
	// so a genuine stall costs at most one extra executed cycle before
	// skipping engages, and IdleScan itself never walks the RS.
	if p.rsCount > 0 {
		t := p.issueWakeAt
		if t <= now {
			return 0, report, false // an entry may be ready now
		}
		clip(t)
	}

	// Rename.
	if p.fqCount > 0 {
		h := p.fqHead
		if !p.renameBlocked(p.fqUop[h].Kind) {
			if p.fqReadyAt[h] <= now {
				return 0, report, false // head renames now
			}
			clip(p.fqReadyAt[h])
		}
		// Blocked heads accrue RenameStalls ticks (AdvanceIdle) and
		// unblock only via retire/issue events already in the horizon.
	}

	// Fetch. Every cycle fetch runs it accesses the icache/iTLB, so a
	// fetchable front end is never idle.
	if p.stream != nil && !p.brBlocked && p.fqCount < len(p.fqUop) {
		if p.fetchStall <= now {
			return 0, report, false
		}
		clip(p.fetchStall)
	}

	if horizon <= now+1 {
		return 0, report, false // nothing worth skipping (or no known event)
	}
	if report.Until > horizon {
		report.Until = horizon
	}
	return horizon, report, true
}

// AdvanceIdle bulk-applies the per-cycle metric updates for an idle
// window [now, now+n) certified by IdleScan: the cycle count, the
// ROB/RS occupancy integrals (occupancy is constant while idle), and
// the RenameStalls ticks a blocked, decoded fetch-queue head accrues.
// Callers must only pass windows IdleScan approved; the pipeline's
// next Cycle must then be at now+n.
func (p *Pipeline) AdvanceIdle(now, n uint64) {
	p.Metrics.Cycles += n
	p.Metrics.ROBOccupancy += n * uint64(p.ROBOccupancy())
	p.Metrics.RSOccupancy += n * uint64(p.rsCount)
	if p.fqCount > 0 {
		h := p.fqHead
		if p.renameBlocked(p.fqUop[h].Kind) {
			from := now
			if p.fqReadyAt[h] > from {
				from = p.fqReadyAt[h]
			}
			if end := now + n; from < end {
				p.Metrics.RenameStalls += end - from
			}
		}
	}
}
