package pipeline

import (
	"testing"

	"soemt/internal/workload"
)

// TestWheelScanMatchesIdleScanLockstep is the brute-force cross-check
// of the discrete-event engine's certification: at EVERY cycle of a
// real workload drive, WheelScan (persistent event wheel) must return
// exactly what IdleScan (ad-hoc per-call scan) returns — same idle
// verdict, same horizon, same head-of-ROB report. The drive follows
// the controller's skip behavior when both agree, so the wheel is
// exercised across skip resumes, lazy staleness drops, and injected
// event stalls, not just on fresh state.
func TestWheelScanMatchesIdleScanLockstep(t *testing.T) {
	profiles := []workload.Profile{aluProfile(), missyProfile()}
	for _, prof := range profiles {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			p := testMachine()
			p.SetStream(0, workload.NewStream(workload.New(prof), 0), 0)
			p.SetEvents([]InjectedStall{
				{AtInstr: 5_000, StallCycles: 2_000},
				{AtInstr: 20_000, StallCycles: 700},
			})
			var idleSeen, busySeen int
			now := uint64(0)
			for now < 120_000 {
				ih, irep, iidle := p.IdleScan(now)
				wh, wrep, widle := p.WheelScan(now)
				if iidle != widle || ih != wh || irep != wrep {
					t.Fatalf("cycle %d: scans diverge\nIdleScan:  h=%d idle=%v rep=%+v\nWheelScan: h=%d idle=%v rep=%+v",
						now, ih, iidle, irep, wh, widle, wrep)
				}
				if iidle {
					idleSeen++
					p.AdvanceIdle(now, ih-now)
					now = ih
				} else {
					busySeen++
					p.Cycle(now)
					now++
				}
			}
			// Non-vacuity: the drive must exercise both verdicts.
			if idleSeen == 0 {
				t.Fatalf("no idle window certified in %d steps; lockstep check is vacuous", busySeen)
			}
			if busySeen == 0 {
				t.Fatal("no busy cycle executed; lockstep check is vacuous")
			}
		})
	}
}

// FuzzEventWheel fuzzes the wheel's core invariant: an arbitrary
// interleaving of Schedule/Cancel/Pop calls must always pop the
// minimum currently-valid event, exactly once per scheduled source,
// with stale superseded entries never surfacing.
func FuzzEventWheel(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0x10, 0xff, 0x02, 0x20})
	f.Add([]byte{0x00, 0x00, 0x00, 0xff, 0xff, 0xff})
	f.Add([]byte{0x81, 0x01, 0x81, 0x02, 0x81, 0x03, 0xff})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var w EventWheel
		// model[src] mirrors what cur should be (0 = unscheduled).
		var model [numWheelSrcs]uint64
		for i := 0; i < len(ops); i++ {
			op := ops[i]
			src := uint8(op) % numWheelSrcs
			switch {
			case op&0x80 != 0 && op != 0xff:
				// Schedule at a small positive time derived from the
				// next byte (collisions and equal times on purpose).
				at := uint64(1)
				if i+1 < len(ops) {
					at += uint64(ops[i+1]) % 97
					i++
				}
				w.Schedule(src, at)
				model[src] = at
			case op == 0xff:
				// Pop and verify against the model minimum.
				wantAt, wantOK := uint64(0), false
				for _, at := range model {
					if at != 0 && (!wantOK || at < wantAt) {
						wantAt, wantOK = at, true
					}
				}
				at, popped, ok := w.Pop()
				if ok != wantOK {
					t.Fatalf("Pop ok=%v, model says %v (model=%v)", ok, wantOK, model)
				}
				if !ok {
					continue
				}
				if at != wantAt {
					t.Fatalf("Pop returned at=%d, model min is %d (model=%v)", at, wantAt, model)
				}
				if model[popped] != at {
					t.Fatalf("Pop returned src=%d at=%d, but model[%d]=%d", popped, at, popped, model[popped])
				}
				model[popped] = 0
			default:
				w.Cancel(src)
				model[src] = 0
			}
			// Min must always agree with the model without consuming.
			wantAt, wantOK := uint64(0), false
			for _, at := range model {
				if at != 0 && (!wantOK || at < wantAt) {
					wantAt, wantOK = at, true
				}
			}
			at, src2, ok := w.Min()
			if ok != wantOK || (ok && (at != wantAt || model[src2] != at)) {
				t.Fatalf("Min (at=%d src=%d ok=%v) disagrees with model %v", at, src2, ok, model)
			}
		}
		// Drain: pops must come out in nondecreasing time order and
		// leave the wheel empty.
		prev := uint64(0)
		for {
			at, src, ok := w.Pop()
			if !ok {
				break
			}
			if at < prev {
				t.Fatalf("drain pops out of order: %d after %d", at, prev)
			}
			if model[src] != at {
				t.Fatalf("drain popped src=%d at=%d, model=%v", src, at, model)
			}
			model[src] = 0
			prev = at
		}
		for src, at := range model {
			if at != 0 {
				t.Fatalf("wheel lost scheduled event src=%d at=%d", src, at)
			}
		}
	})
}
