package pipeline

import (
	"fmt"
	"math/bits"

	"soemt/internal/arena"
	"soemt/internal/branch"
	"soemt/internal/isa"
	"soemt/internal/mem"
	"soemt/internal/workload"
)

// The core's per-entry state lives in struct-of-arrays layout: the hot
// loops (retire, issue candidate scan, wake-bound computation) each
// touch one or two fields of many entries, so parallel arrays keep
// those scans inside a few cache lines instead of striding over full
// structs. ROB per-entry booleans are packed into one flags byte.
const (
	rfDone   uint8 = 1 << iota // result timing known (doneAt valid)
	rfIssued                   // left the reservation station
	rfMiss                     // execution involved an unresolved L2/walk miss
	rfL1                       // L1 miss that hit in L2 (§6 extension)
	rfPred                     // fetch-time predicted direction (branches)
)

// RS per-entry operand-presence bits (rsHas).
const (
	rsHas1 uint8 = 1 << iota
	rsHas2
)

// InjectedStall is a LIT-style external event: when the architectural
// instruction counter reaches AtInstr, retirement stalls for
// StallCycles (interrupt/IO/DMA handling time).
type InjectedStall struct {
	AtInstr     uint64
	StallCycles uint64
}

// Metrics counts pipeline events since construction (or ResetMetrics).
type Metrics struct {
	Fetched      uint64
	Retired      uint64
	Squashed     uint64
	MissFlagged  uint64 // micro-ops flagged with an L2/walk miss at execute
	DemandMisses uint64 // non-coalesced flagged misses (first of each overlapped group)
	FwdLoads     uint64 // loads satisfied by store-buffer forwarding
	RenameStalls uint64 // cycles rename was blocked by a full backend

	Cycles       uint64 // cycles simulated
	ROBOccupancy uint64 // sum of per-cycle ROB occupancy (avg = /Cycles)
	RSOccupancy  uint64 // sum of per-cycle RS occupancy
}

// Each visits every metric as a (stable name, value) pair, in
// declaration order. It is the bridge into the observability layer's
// metrics registry (internal/obs) without making the pipeline depend
// on it: sim publishes these under a "pipe." prefix at the end of each
// run.
func (m Metrics) Each(fn func(name string, v uint64)) {
	fn("fetched", m.Fetched)
	fn("retired", m.Retired)
	fn("squashed", m.Squashed)
	fn("miss_flagged", m.MissFlagged)
	fn("demand_misses", m.DemandMisses)
	fn("fwd_loads", m.FwdLoads)
	fn("rename_stalls", m.RenameStalls)
	fn("cycles", m.Cycles)
	fn("rob_occupancy", m.ROBOccupancy)
	fn("rs_occupancy", m.RSOccupancy)
}

// AvgROBOccupancy returns mean in-flight ROB entries per cycle.
func (m Metrics) AvgROBOccupancy() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.ROBOccupancy) / float64(m.Cycles)
}

// AvgRSOccupancy returns mean occupied reservation stations per cycle.
func (m Metrics) AvgRSOccupancy() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.RSOccupancy) / float64(m.Cycles)
}

// CycleResult reports what one cycle produced, for the SOE controller.
type CycleResult struct {
	Retired int // micro-ops retired this cycle

	// HeadMissPending is the paper's switch trigger: the next-to-retire
	// micro-op is flagged as handling a miss that has not resolved.
	HeadMissPending bool
	HeadMissSeq     uint64 // architectural seq of the pending micro-op
	HeadResolveAt   uint64 // cycle at which its miss resolves

	// HeadL1Pending reports an unresolved L1 miss (L2 hit) at the
	// head — the §6 extension's optional switch trigger.
	HeadL1Pending bool

	PauseRetired bool // a PAUSE hint retired this cycle (§6 extension)
}

type renameEntry struct {
	id    uint64
	valid bool
}

// Packed hot-path words. Both the wake heap and the issue-selection
// keys pack their fields into one uint64 so heap sifts and selection
// scans move single words with no pointer-chased side lookups:
//
//	wake event:    at<<16 | slot
//	selection key: seq<<24 | ports<<16 | slot
//
// Slots fit 16 bits (RSSize is validated ≤ 64 k) and the seq/at high
// fields keep full ordering for any realistic run length (2^40+
// renames / 2^48 cycles). Key comparison orders by seq first; the low
// bits never matter because seqs are unique.
const (
	wakeSlotBits = 16
	keySlotBits  = 16
	keyPortShift = keySlotBits
	keySeqShift  = keySlotBits + 8
)

// Pipeline is the out-of-order core. It executes one thread at a time
// (SOE); the controller switches threads with Squash + SetStream.
type Pipeline struct {
	cfg  Config
	hier *mem.Hierarchy
	bu   *branch.Unit

	// Thread context.
	tid    int
	stream *workload.Stream

	// ROB ring buffer, struct-of-arrays. The backing arrays are sized
	// to the next power of two above ROBSize so the per-lookup ring
	// index is a mask, not a division; capacity checks still use
	// cfg.ROBSize, and live ids always span < ROBSize entries, so the
	// wider ring never aliases.
	robUop    []isa.Uop
	robDoneAt []uint64
	robFlags  []uint8
	robMask   uint64
	headID    uint64
	nextID    uint64

	// Reservation stations, struct-of-arrays. rsValid is a bitmask
	// (64 slots per word): scans iterate set bits only, and the rename
	// free-slot search is a find-first-zero instead of a slot walk.
	// rsKey packs each entry's age and port mask into one selection key
	// (seq<<24 | ports<<16 | slot) so the issue stage's oldest-first
	// scan compares single words.
	rsValid []uint64
	rsRob   []uint64
	rsSrc1  []uint64
	rsSrc2  []uint64
	rsKey   []uint64
	rsHas   []uint8
	rsCount int
	lbCount int

	// Dataflow wakeup: the issue stage is event-driven, not scan-driven.
	// rsReady marks entries whose operands are known ready (every
	// producer's completion time known and reached) — the candidate scan
	// iterates only these. An entry with unready operands is either
	//
	//   timed   — every producer has executed, so its wake time
	//             (max producer doneAt) is known: it sits in wakeHeap
	//             and is popped into rsReady when its time arrives; or
	//   waiting — rsWaitCnt producers have not executed yet: the entry
	//             is linked into each such producer's waiter list
	//             (robWaiters, threaded through rsNext1/rsNext2), and
	//             the producer's execute() resolves it toward timed.
	//
	// The transition times reproduce the producerDone predicate exactly,
	// so issue order and timing are bit-identical to a full per-cycle
	// scan (pinned by TestIssueWakeCacheTransparent and the §9 matrix).
	rsReady    []uint64
	rsWaitCnt  []uint8
	rsWakeAt   []uint64
	rsNext1    []int32
	rsNext2    []int32
	robWaiters []int32  // per ROB slot: head of waiter list (encoded slot<<1|src), -1 empty
	wakeHeap   []uint64 // min-heap of packed at<<16|slot wake events

	// Register rename: logical register -> producing ROB id.
	renameMap [isa.NumRegs]renameEntry

	// Front end (struct-of-arrays ring).
	fqUop        []isa.Uop
	fqReadyAt    []uint64
	fqPred       []bool
	fqHead       int
	fqCount      int
	fetchStall   uint64 // no fetch before this cycle
	brBlocked    bool   // fetch blocked on an unresolved mispredict
	brBlockSeq   uint64 // seq of the blocking branch
	rsSeqCounter uint64

	// Execution ports.
	portBusy [isa.NumPorts]uint64

	// issueWakeAt caches the earliest cycle any waiting reservation
	// station could possibly issue, so the oldest-first selection scan
	// is skipped while provably fruitless. 0 means unknown (must scan).
	// Set by every scan; maintained (min-updated) across rename inserts
	// and cleared on squash. Retirement never needs to clear it: a
	// producer must already satisfy doneAt <= now to retire, so
	// retiring cannot make a consumer ready earlier than its cached
	// wake time.
	issueWakeAt uint64

	// issueCands is per-cycle scratch for the issue stage's single-pass
	// candidate collection (packed selection keys; picked entries are
	// overwritten with ^0, which compares older-than-nothing).
	issueCands []uint64

	// Store buffer (survives squash), struct-of-arrays. Live entries
	// are indices [sbHead:]; dispatch advances sbHead in O(1) and the
	// dead prefix is compacted away periodically, so store-heavy
	// workloads do not pay a per-dispatch O(n) drain.
	sbAddr []uint64
	sbTid  []int32
	sbHead int

	// Architectural position: seq of the next micro-op to retire.
	nextArchSeq uint64

	// Injected external events (sorted by AtInstr) and cursor.
	events     []InjectedStall
	eventIdx   int
	eventStall uint64 // retirement stalled until this cycle

	// wheel is the discrete-event engine's view of the machine's next
	// state changes (see wheel.go); nil horizon sources are refreshed
	// by WheelScan.
	wheel EventWheel

	Metrics Metrics
}

// New builds a pipeline. Invalid configuration is returned as an
// error, not panicked.
func New(cfg Config, hier *mem.Hierarchy, bu *branch.Unit) (*Pipeline, error) {
	return NewIn(nil, cfg, hier, bu)
}

// NewIn builds a pipeline whose backing arrays are carved from a (nil =
// plain heap allocation). With a recycled arena the construction does
// no steady-state allocations beyond the Pipeline header itself.
func NewIn(a *arena.Arena, cfg Config, hier *mem.Hierarchy, bu *branch.Unit) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	robLen := 1
	for robLen < cfg.ROBSize {
		robLen <<= 1
	}
	p := &Pipeline{
		cfg:        cfg,
		hier:       hier,
		bu:         bu,
		robUop:     arena.Slice[isa.Uop](a, robLen),
		robDoneAt:  arena.Slice[uint64](a, robLen),
		robFlags:   arena.Slice[uint8](a, robLen),
		robMask:    uint64(robLen - 1),
		rsValid:    arena.Slice[uint64](a, (cfg.RSSize+63)/64),
		rsRob:      arena.Slice[uint64](a, cfg.RSSize),
		rsSrc1:     arena.Slice[uint64](a, cfg.RSSize),
		rsSrc2:     arena.Slice[uint64](a, cfg.RSSize),
		rsKey:      arena.Slice[uint64](a, cfg.RSSize),
		rsHas:      arena.Slice[uint8](a, cfg.RSSize),
		rsReady:    arena.Slice[uint64](a, (cfg.RSSize+63)/64),
		rsWaitCnt:  arena.Slice[uint8](a, cfg.RSSize),
		rsWakeAt:   arena.Slice[uint64](a, cfg.RSSize),
		rsNext1:    arena.Slice[int32](a, cfg.RSSize),
		rsNext2:    arena.Slice[int32](a, cfg.RSSize),
		robWaiters: arena.Slice[int32](a, robLen),
		fqUop:      arena.Slice[isa.Uop](a, cfg.FetchQSize),
		fqReadyAt:  arena.Slice[uint64](a, cfg.FetchQSize),
		fqPred:     arena.Slice[bool](a, cfg.FetchQSize),
	}
	for i := range p.robWaiters {
		p.robWaiters[i] = -1
	}
	p.issueCands = arena.Slice[uint64](a, cfg.RSSize)[:0]
	p.wakeHeap = arena.Slice[uint64](a, cfg.RSSize)[:0]
	return p, nil
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Hierarchy returns the attached memory hierarchy.
func (p *Pipeline) Hierarchy() *mem.Hierarchy { return p.hier }

// BranchUnit returns the attached branch unit.
func (p *Pipeline) BranchUnit() *branch.Unit { return p.bu }

// Tid returns the current thread id.
func (p *Pipeline) Tid() int { return p.tid }

// NextArchSeq returns the architectural position: the sequence number
// of the next micro-op to retire.
func (p *Pipeline) NextArchSeq() uint64 { return p.nextArchSeq }

// SetEvents installs the injected external-event schedule for the
// current thread, skipping events before the current architectural
// position. Events must be sorted by AtInstr.
func (p *Pipeline) SetEvents(events []InjectedStall) {
	idx := 0
	for idx < len(events) && events[idx].AtInstr < p.nextArchSeq {
		idx++
	}
	p.SetEventsFrom(events, idx)
}

// SetEventsFrom installs an event schedule with an explicit cursor.
// The SOE controller uses this to persist each thread's fired-event
// position across switches (an event applies its stall once; the
// remainder of a stall interrupted by a switch is dropped).
func (p *Pipeline) SetEventsFrom(events []InjectedStall, idx int) {
	p.events = events
	p.eventIdx = idx
	p.eventStall = 0
}

// EventIndex returns the current event cursor (events before it have
// fired).
func (p *Pipeline) EventIndex() int { return p.eventIdx }

// SetStream installs a thread context. startAt is the earliest cycle
// the front end may fetch (the controller passes switch-in time after
// the drain). The stream must already be positioned at the thread's
// resume point.
func (p *Pipeline) SetStream(tid int, s *workload.Stream, startAt uint64) {
	p.tid = tid
	p.stream = s
	p.nextArchSeq = s.Pos()
	p.fetchStall = startAt
	p.brBlocked = false
	p.events = nil
	p.eventIdx = 0
	p.eventStall = 0
}

// Squash drains all in-flight state (thread switch). It returns the
// architectural sequence number at which the thread must resume; the
// controller seeks the thread's stream there before switching back in.
// The store buffer is retained (its entries are architecturally
// retired).
//
// Per-slot ROB/RS payloads are NOT cleared: a slot's contents are only
// ever read while it is live (rsValid bit set, or id in [headID,
// nextID)), and allocation rewrites every field it later reads.
func (p *Pipeline) Squash() uint64 {
	p.Metrics.Squashed += p.nextID - p.headID + uint64(p.fqCount)
	p.headID = 0
	p.nextID = 0
	for i := range p.rsValid {
		p.rsValid[i] = 0
	}
	for i := range p.rsReady {
		p.rsReady[i] = 0
	}
	for i := range p.robWaiters {
		p.robWaiters[i] = -1
	}
	p.wakeHeap = p.wakeHeap[:0]
	p.rsCount = 0
	p.issueWakeAt = 0
	p.lbCount = 0
	p.fqHead = 0
	p.fqCount = 0
	p.brBlocked = false
	for i := range p.renameMap {
		p.renameMap[i].valid = false
	}
	for i := range p.portBusy {
		p.portBusy[i] = 0
	}
	return p.nextArchSeq
}

// Drained reports whether no in-flight micro-ops remain (ROB and fetch
// queue empty). The store buffer is allowed to be non-empty.
func (p *Pipeline) Drained() bool {
	return p.headID == p.nextID && p.fqCount == 0
}

// ROBOccupancy returns the number of in-flight ROB entries.
func (p *Pipeline) ROBOccupancy() int { return int(p.nextID - p.headID) }

// StoreBufLen returns the store-buffer occupancy.
func (p *Pipeline) StoreBufLen() int { return len(p.sbAddr) - p.sbHead }

// ResetMetrics clears the metric counters.
func (p *Pipeline) ResetMetrics() { p.Metrics = Metrics{} }

// producerDone reports whether the producer with ROB id has produced
// its result by cycle `now` (retired producers count as done).
func (p *Pipeline) producerDone(id uint64, now uint64) bool {
	if id < p.headID {
		return true // retired
	}
	s := id & p.robMask
	return p.robFlags[s]&rfDone != 0 && p.robDoneAt[s] <= now
}

// Cycle advances the machine by one cycle at global time `now`. Calls
// must use strictly increasing `now` values.
func (p *Pipeline) Cycle(now uint64) CycleResult {
	var res CycleResult
	p.Metrics.Cycles++
	p.Metrics.ROBOccupancy += p.nextID - p.headID
	p.Metrics.RSOccupancy += uint64(p.rsCount)
	p.retire(now, &res)
	p.dispatchStores(now)
	p.issue(now)
	p.rename(now)
	p.fetch(now)
	return res
}

// retire retires completed micro-ops in order, detecting the SOE
// switch trigger and applying injected event stalls.
func (p *Pipeline) retire(now uint64, res *CycleResult) {
	if now < p.eventStall {
		return
	}
	for retired := 0; retired < p.cfg.RetireWidth && p.headID < p.nextID; retired++ {
		s := p.headID & p.robMask
		flags := p.robFlags[s]
		doneAt := p.robDoneAt[s]
		u := &p.robUop[s]
		if flags&rfDone == 0 || doneAt > now {
			if flags&rfMiss != 0 && doneAt > now {
				res.HeadMissPending = true
				res.HeadMissSeq = u.Seq
				res.HeadResolveAt = doneAt
			} else if flags&rfL1 != 0 && doneAt > now {
				res.HeadL1Pending = true
				res.HeadMissSeq = u.Seq
				res.HeadResolveAt = doneAt
			}
			return
		}
		// Injected external events fire when their instruction reaches
		// retirement.
		if p.eventIdx < len(p.events) && u.Seq >= p.events[p.eventIdx].AtInstr {
			p.eventStall = now + p.events[p.eventIdx].StallCycles
			p.eventIdx++
			return
		}
		if u.Kind == isa.Store {
			if p.StoreBufLen() >= p.cfg.StoreBufSize {
				return // store buffer full: retirement blocks
			}
			p.sbAddr = append(p.sbAddr, u.Addr)
			p.sbTid = append(p.sbTid, int32(p.tid))
		}
		if u.Kind == isa.Load {
			p.lbCount--
		}
		if u.Kind == isa.Pause {
			res.PauseRetired = true
		}
		// Architectural register release.
		if u.Dst.Valid() {
			rm := &p.renameMap[u.Dst]
			if rm.valid && rm.id == p.headID {
				rm.valid = false
			}
		}
		p.headID++
		p.nextArchSeq = u.Seq + 1
		p.Metrics.Retired++
		res.Retired++
	}
}

// dispatchStores sends one retired store per cycle to the data cache.
func (p *Pipeline) dispatchStores(now uint64) {
	if p.sbHead == len(p.sbAddr) {
		return
	}
	p.hier.AccessData(now, p.sbAddr[p.sbHead], true)
	p.sbHead++
	// Reclaim the dead prefix: free immediately when drained, compact
	// once the prefix dominates the backing array. Amortized O(1).
	if p.sbHead == len(p.sbAddr) {
		p.sbAddr = p.sbAddr[:0]
		p.sbTid = p.sbTid[:0]
		p.sbHead = 0
	} else if p.sbHead >= 64 && p.sbHead*2 >= len(p.sbAddr) {
		n := copy(p.sbAddr, p.sbAddr[p.sbHead:])
		copy(p.sbTid, p.sbTid[p.sbHead:])
		p.sbAddr = p.sbAddr[:n]
		p.sbTid = p.sbTid[:n]
		p.sbHead = 0
	}
}

// portFreeMask returns the set of ports free at cycle now as a bitmask.
func (p *Pipeline) portFreeMask(now uint64) uint8 {
	var free uint8
	for i := range p.portBusy {
		if p.portBusy[i] <= now {
			free |= 1 << uint(i)
		}
	}
	return free
}

// issue selects ready reservation-station entries, oldest first, and
// begins execution on free ports. Readiness is event-driven: timed
// entries surface from the wake heap when their cycle arrives, so the
// per-cycle cost scales with the ready set, not the RS occupancy.
func (p *Pipeline) issue(now uint64) {
	if p.rsCount == 0 {
		return
	}
	if p.issueWakeAt > now {
		// No waiting entry can have become ready: producers complete on
		// fixed doneAt schedules and ports free on fixed busy-until
		// schedules, both accounted for in the cached wake time. The
		// wake heap keeps its due entries; they are popped when the
		// bound (which is <= the heap minimum) is reached.
		return
	}
	// Promote timed entries whose wake cycle has arrived. The wake time
	// is exactly the cycle every operand producer satisfies
	// producerDone, so this reproduces a full readiness scan.
	for len(p.wakeHeap) > 0 && p.wakeHeap[0]>>wakeSlotBits <= now {
		slot := p.wakeHeap[0] & (1<<wakeSlotBits - 1)
		p.heapPop()
		p.rsReady[slot>>6] |= 1 << (slot & 63)
	}
	// Candidates: ready entries whose port group has a free port now.
	// Port availability cannot improve within the cycle (busy-until
	// times only grow), so the collected set stays valid across picks;
	// only the per-pick free mask must be refreshed.
	free := p.portFreeMask(now)
	cands := p.issueCands[:0]
	for w, word := range p.rsReady {
		base := w * 64
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			key := p.rsKey[i]
			if uint8(key>>keyPortShift)&free == 0 {
				continue
			}
			cands = append(cands, key)
		}
	}
	if len(cands) == 0 {
		// Nothing can issue now: cache the earliest future issue bound
		// so the cycles until then skip this stage entirely.
		p.issueWakeAt = p.issueBound()
		return
	}
	// Oldest-first picks, exactly as a per-slot selection scan would
	// make them: the oldest candidate with a free port goes first; a
	// port-blocked older candidate yields to a younger one whose port
	// is free. RS is small (tens of entries), so repeated selection
	// over the candidate list is fine — the keys are packed words, so
	// each rescan is a branchy min over one cache line or two. Picked
	// candidates are overwritten with ^0 (older-than-nothing) in place;
	// the free mask is maintained by clearing the claimed port's bit
	// (the claim always busies it past now).
	remaining := len(cands)
	for remaining > 0 && free != 0 {
		best := -1
		bestKey := ^uint64(0)
		for ci, key := range cands {
			if key >= bestKey {
				continue
			}
			if uint8(key>>keyPortShift)&free == 0 {
				continue
			}
			best, bestKey = ci, key
		}
		if best == -1 {
			break
		}
		slot := bestKey & (1<<keySlotBits - 1)
		cands[best] = ^uint64(0)
		remaining--
		port := p.execute(now, p.rsRob[slot])
		free &^= 1 << uint(port)
		p.rsValid[slot>>6] &^= 1 << (slot & 63)
		p.rsReady[slot>>6] &^= 1 << (slot & 63)
		p.rsCount--
		if p.rsCount == 0 {
			return
		}
	}
	// Productive cycle with leftovers: leave the wake cache where it is
	// (<= now, since we got past the bail above). The next cycle's scan
	// is cheap, and if it proves unproductive it installs a fresh bound
	// computed from the post-issue port schedule then.
}

// issueBound returns the earliest cycle at which any waiting
// reservation-station entry could issue: the earliest timed wake
// (heap minimum) or, for ready-but-port-blocked entries, the earliest
// cycle one of their ports frees. Waiting entries (producers not yet
// executed) have no bound of their own, but they cannot overtake the
// returned bound either — their producer chain bottoms out in an entry
// that IS covered (timed or ready), and a dependent can only issue
// strictly after its producer. Returns 0 (scan every cycle) in the
// defensive case where no entry has a computable bound.
func (p *Pipeline) issueBound() uint64 {
	var bound uint64
	found := false
	if len(p.wakeHeap) > 0 {
		bound, found = p.wakeHeap[0]>>wakeSlotBits, true
	}
	for w, word := range p.rsReady {
		base := w * 64
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			free := ^uint64(0)
			for m := uint8(p.rsKey[i] >> keyPortShift); m != 0; m &= m - 1 {
				if b := p.portBusy[bits.TrailingZeros8(m)]; b < free {
					free = b
				}
			}
			// A bound of 0 is a real value, not the unset sentinel —
			// track foundness separately.
			if !found || free < bound {
				bound, found = free, true
			}
		}
	}
	return bound
}

// heapPush inserts a timed wake (packed at<<16|slot) into the
// min-heap. Packed comparison orders by wake time; the slot tiebreak
// is invisible because all due entries are drained together before
// any selection happens.
func (p *Pipeline) heapPush(at uint64, slot uint64) {
	h := append(p.wakeHeap, at<<wakeSlotBits|slot)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] <= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	p.wakeHeap = h
}

// heapPop removes the minimum timed wake.
func (p *Pipeline) heapPop() {
	h := p.wakeHeap
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l] < h[min] {
			min = l
		}
		if r < len(h) && h[r] < h[min] {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	p.wakeHeap = h
}

// producerReadyAt returns the cycle from which producerDone(id, t)
// holds, or known=false if the producer has not issued yet.
func (p *Pipeline) producerReadyAt(id uint64) (at uint64, known bool) {
	if id < p.headID {
		return 0, true // retired
	}
	s := id & p.robMask
	if p.robFlags[s]&rfDone == 0 {
		return 0, false
	}
	return p.robDoneAt[s], true
}

// claimPort occupies the first free port of kind's group until
// `until` and returns its number (until is always > now, so the port
// is busy for the rest of this cycle).
func (p *Pipeline) claimPort(kind isa.Kind, now, until uint64) int {
	for m := isa.PortMask[kind]; m != 0; m &= m - 1 {
		port := bits.TrailingZeros8(m)
		if p.portBusy[port] <= now {
			p.portBusy[port] = until
			return port
		}
	}
	panic("pipeline: claimPort called with no free port")
}

// execute starts execution of the ROB entry with the given id at
// cycle now, returning the issue port it claimed.
func (p *Pipeline) execute(now uint64, id uint64) (port int) {
	s := id & p.robMask
	u := &p.robUop[s]
	flags := p.robFlags[s] | rfIssued
	kind := u.Kind
	switch kind {
	case isa.Load:
		// Forwarding from the store buffer (same thread, same address).
		if p.forwardable(u.Addr) {
			p.robDoneAt[s] = now + 1
			p.Metrics.FwdLoads++
		} else {
			walk := p.hier.TranslateData(now, u.Addr)
			acc := p.hier.AccessData(walk.DoneAt, u.Addr, false)
			p.robDoneAt[s] = acc.DoneAt
			if acc.L2Miss || walk.L2Miss {
				flags |= rfMiss
				p.Metrics.MissFlagged++
				if (acc.L2Miss && !acc.Coalesced) || walk.L2Miss {
					p.Metrics.DemandMisses++
				}
			} else if acc.L1Miss {
				flags |= rfL1
			}
		}
		port = p.claimPort(kind, now, now+1)
	case isa.Store:
		// Address generation + translation; data is written at
		// post-retire dispatch.
		walk := p.hier.TranslateData(now, u.Addr)
		doneAt := walk.DoneAt
		if doneAt <= now {
			doneAt = now + 1
		}
		p.robDoneAt[s] = doneAt
		if walk.L2Miss {
			flags |= rfMiss
			p.Metrics.MissFlagged++
			p.Metrics.DemandMisses++
		}
		port = p.claimPort(kind, now, now+1)
	case isa.Branch:
		doneAt := now + uint64(isa.Latency[kind])
		p.robDoneAt[s] = doneAt
		p.bu.Resolve(u.PC, flags&rfPred != 0, u.Taken, u.Target)
		if p.brBlocked && p.brBlockSeq == u.Seq {
			// Mispredict resolved: redirect the front end.
			p.brBlocked = false
			resume := doneAt + uint64(p.cfg.RedirectPenalty)
			if resume > p.fetchStall {
				p.fetchStall = resume
			}
		}
		port = p.claimPort(kind, now, now+1)
	default:
		lat := uint64(isa.Latency[kind])
		p.robDoneAt[s] = now + lat
		until := now + 1
		if !isa.Pipelined(kind) {
			until = now + lat
		}
		port = p.claimPort(kind, now, until)
	}
	p.robFlags[s] = flags | rfDone // result timing carried by doneAt

	// Wake dependents: the completion time is now known, so every
	// consumer waiting on this producer moves one step toward timed.
	// doneAt is always > now (execution takes at least a cycle), so a
	// fully resolved consumer enters the wake heap, never rsReady
	// directly.
	if node := p.robWaiters[s]; node >= 0 {
		p.robWaiters[s] = -1
		doneAt := p.robDoneAt[s]
		for node >= 0 {
			slot := node >> 1
			if node&1 == 0 {
				node = p.rsNext1[slot]
			} else {
				node = p.rsNext2[slot]
			}
			if doneAt > p.rsWakeAt[slot] {
				p.rsWakeAt[slot] = doneAt
			}
			if p.rsWaitCnt[slot]--; p.rsWaitCnt[slot] == 0 {
				p.heapPush(p.rsWakeAt[slot], uint64(slot))
			}
		}
	}
	return port
}

// forwardable reports whether a load can forward from the store
// buffer.
func (p *Pipeline) forwardable(addr uint64) bool {
	tid := int32(p.tid)
	for i := p.sbHead; i < len(p.sbAddr); i++ {
		if p.sbTid[i] == tid && p.sbAddr[i] == addr {
			return true
		}
	}
	return false
}

// needsRS reports whether kind occupies a reservation station (NOP and
// PAUSE complete at rename).
func needsRS(kind isa.Kind) bool { return kind != isa.Nop && kind != isa.Pause }

// renameBlocked reports whether a micro-op of the given kind cannot
// rename because a backend resource (ROB, RS, load buffer) is full.
// Each cycle this holds for the fetch-queue head with its group decoded
// (readyAt reached) costs one RenameStalls tick.
func (p *Pipeline) renameBlocked(kind isa.Kind) bool {
	if int(p.nextID-p.headID) >= p.cfg.ROBSize {
		return true
	}
	if needsRS(kind) && p.rsCount >= p.cfg.RSSize {
		return true
	}
	return kind == isa.Load && p.lbCount >= p.cfg.LoadBufSize
}

// freeRSSlot returns the lowest-index free reservation-station slot.
// Callers ensure occupancy < RSSize, so a free slot exists.
func (p *Pipeline) freeRSSlot() int32 {
	for w, word := range p.rsValid {
		if inv := ^word; inv != 0 {
			i := int32(w*64 + bits.TrailingZeros64(inv))
			if int(i) < p.cfg.RSSize {
				return i
			}
		}
	}
	panic("pipeline: no free reservation station")
}

// rename moves micro-ops from the fetch queue into the ROB/RS.
func (p *Pipeline) rename(now uint64) {
	for n := 0; n < p.cfg.RenameWidth; n++ {
		if p.fqCount == 0 {
			return
		}
		h := p.fqHead
		if p.fqReadyAt[h] > now {
			return
		}
		u := &p.fqUop[h]
		if p.renameBlocked(u.Kind) {
			p.Metrics.RenameStalls++
			return
		}
		needRS := needsRS(u.Kind)

		id := p.nextID
		p.nextID++
		s := id & p.robMask
		p.robUop[s] = *u
		var flags uint8
		if p.fqPred[h] {
			flags = rfPred
		}

		if needRS {
			slot := p.freeRSSlot()
			p.rsValid[slot>>6] |= 1 << uint(slot&63)
			p.rsRob[slot] = id
			p.rsKey[slot] = p.rsSeqCounter<<keySeqShift |
				uint64(isa.PortMask[u.Kind])<<keyPortShift | uint64(slot)
			p.rsSeqCounter++
			var has uint8
			waitCnt := uint8(0)
			var wakeAt uint64
			if u.Src1.Valid() {
				if rm := &p.renameMap[u.Src1]; rm.valid {
					p.rsSrc1[slot] = rm.id
					has |= rsHas1
					if t, known := p.producerReadyAt(rm.id); known {
						if t > wakeAt {
							wakeAt = t
						}
					} else {
						ps := rm.id & p.robMask
						p.rsNext1[slot] = p.robWaiters[ps]
						p.robWaiters[ps] = slot << 1
						waitCnt++
					}
				}
			}
			if u.Src2.Valid() {
				if rm := &p.renameMap[u.Src2]; rm.valid {
					p.rsSrc2[slot] = rm.id
					has |= rsHas2
					if t, known := p.producerReadyAt(rm.id); known {
						if t > wakeAt {
							wakeAt = t
						}
					} else {
						ps := rm.id & p.robMask
						p.rsNext2[slot] = p.robWaiters[ps]
						p.robWaiters[ps] = slot<<1 | 1
						waitCnt++
					}
				}
			}
			p.rsHas[slot] = has
			p.rsWaitCnt[slot] = waitCnt
			p.rsWakeAt[slot] = wakeAt
			if waitCnt == 0 {
				if wakeAt <= now {
					p.rsReady[slot>>6] |= 1 << uint(slot&63)
				} else {
					p.heapPush(wakeAt, uint64(slot))
				}
			}
			p.rsCount++
			if p.issueWakeAt != 0 && waitCnt == 0 && wakeAt < p.issueWakeAt {
				// The cached wake bound survives the insert: a resolved
				// entry joins the min (conservatively ignoring its port
				// schedule; a bound of 0 falls back to scan-every-cycle
				// mode). A still-waiting entry cannot undercut the bound —
				// its unexecuted producer is itself covered by the cache,
				// and a dependent only becomes ready at its producer's
				// doneAt, strictly after the producer issues.
				p.issueWakeAt = wakeAt
			}
			if u.Kind == isa.Load {
				p.lbCount++
			}
		} else {
			// NOP/PAUSE complete at rename.
			flags |= rfDone
			p.robDoneAt[s] = now + 1
		}
		p.robFlags[s] = flags

		if u.Dst.Valid() {
			p.renameMap[u.Dst] = renameEntry{id: id, valid: true}
		}

		p.fqHead++
		if p.fqHead == len(p.fqUop) {
			p.fqHead = 0
		}
		p.fqCount--
	}
}

// fetch pulls micro-ops from the workload stream through the
// instruction cache and branch prediction into the fetch queue.
func (p *Pipeline) fetch(now uint64) {
	if p.stream == nil || p.brBlocked || now < p.fetchStall {
		return
	}
	if p.fqCount >= len(p.fqUop) {
		return
	}
	// One icache+iTLB access covers this cycle's fetch group. Peek
	// memoizes the generated micro-op, so the first Next below does not
	// regenerate it.
	first := p.stream.Peek()
	walk := p.hier.TranslateFetch(now, first.PC)
	acc := p.hier.AccessFetch(walk.DoneAt, first.PC)
	groupReady := acc.DoneAt + uint64(p.cfg.DecodeCycles)
	if acc.L1Miss || walk.Walked {
		// Fetch blocks until the instruction bytes arrive.
		p.fetchStall = acc.DoneAt
	}

	for n := 0; n < p.cfg.FetchWidth && p.fqCount < len(p.fqUop); n++ {
		u := p.stream.Next()
		p.Metrics.Fetched++
		if u.Kind == isa.Branch {
			pred := p.bu.PredictDirection(u.PC)
			if pred != u.Taken {
				// Mispredict: block fetch until this branch resolves
				// (flush-younger approximation; see package comment).
				p.brBlocked = true
				p.brBlockSeq = u.Seq
				p.push(u, groupReady, pred)
				return
			}
			if pred {
				if _, hit := p.bu.BTB.Lookup(u.PC); !hit {
					// Correctly predicted taken but target unknown
					// until decode: small fetch bubble.
					p.fetchStall = now + 1 + uint64(p.cfg.BTBMissPenalty)
					p.push(u, groupReady, pred)
					return
				}
				// Redirect: taken branches end the fetch group.
				p.push(u, groupReady, pred)
				return
			}
			p.push(u, groupReady, pred)
			continue
		}
		p.push(u, groupReady, false)
	}
}

func (p *Pipeline) push(u isa.Uop, readyAt uint64, pred bool) {
	tail := p.fqHead + p.fqCount
	if tail >= len(p.fqUop) {
		tail -= len(p.fqUop)
	}
	p.fqUop[tail] = u
	p.fqReadyAt[tail] = readyAt
	p.fqPred[tail] = pred
	p.fqCount++
}

// String summarizes occupancy for debugging.
func (p *Pipeline) String() string {
	return fmt.Sprintf("pipeline{tid=%d rob=%d/%d rs=%d/%d lb=%d sb=%d fq=%d arch=%d}",
		p.tid, p.ROBOccupancy(), p.cfg.ROBSize, p.rsCount, p.cfg.RSSize,
		p.lbCount, p.StoreBufLen(), p.fqCount, p.nextArchSeq)
}
