package pipeline

import (
	"fmt"

	"soemt/internal/branch"
	"soemt/internal/isa"
	"soemt/internal/mem"
	"soemt/internal/workload"
)

// robEntry is one re-order buffer slot.
type robEntry struct {
	uop       isa.Uop
	id        uint64 // monotonic ROB id; slot = id & robMask
	done      bool
	issued    bool
	doneAt    uint64
	missFlag  bool // execution involved an unresolved L2 miss / walk miss
	l1Flag    bool // L1 miss that hit in L2 (§6 L1-switching extension)
	predTaken bool // fetch-time direction prediction (branches)
}

// rsEntry is one reservation-station slot.
type rsEntry struct {
	valid  bool
	robID  uint64
	src1   uint64 // producer ROB ids
	src2   uint64
	has1   bool
	has2   bool
	seqNum uint64 // allocation order for oldest-first scheduling
}

// fetchedUop is a front-end queue slot.
type fetchedUop struct {
	uop       isa.Uop
	readyAt   uint64 // earliest rename cycle (icache + decode depth)
	predTaken bool
}

// storeBufEntry is a retired store awaiting cache dispatch. Entries
// survive thread switches (the paper: "the store buffer keeps
// dispatching retired stores even after a flush").
type storeBufEntry struct {
	addr uint64
	tid  int
}

// InjectedStall is a LIT-style external event: when the architectural
// instruction counter reaches AtInstr, retirement stalls for
// StallCycles (interrupt/IO/DMA handling time).
type InjectedStall struct {
	AtInstr     uint64
	StallCycles uint64
}

// Metrics counts pipeline events since construction (or ResetMetrics).
type Metrics struct {
	Fetched      uint64
	Retired      uint64
	Squashed     uint64
	MissFlagged  uint64 // micro-ops flagged with an L2/walk miss at execute
	DemandMisses uint64 // non-coalesced flagged misses (first of each overlapped group)
	FwdLoads     uint64 // loads satisfied by store-buffer forwarding
	RenameStalls uint64 // cycles rename was blocked by a full backend

	Cycles       uint64 // cycles simulated
	ROBOccupancy uint64 // sum of per-cycle ROB occupancy (avg = /Cycles)
	RSOccupancy  uint64 // sum of per-cycle RS occupancy
}

// Each visits every metric as a (stable name, value) pair, in
// declaration order. It is the bridge into the observability layer's
// metrics registry (internal/obs) without making the pipeline depend
// on it: sim publishes these under a "pipe." prefix at the end of each
// run.
func (m Metrics) Each(fn func(name string, v uint64)) {
	fn("fetched", m.Fetched)
	fn("retired", m.Retired)
	fn("squashed", m.Squashed)
	fn("miss_flagged", m.MissFlagged)
	fn("demand_misses", m.DemandMisses)
	fn("fwd_loads", m.FwdLoads)
	fn("rename_stalls", m.RenameStalls)
	fn("cycles", m.Cycles)
	fn("rob_occupancy", m.ROBOccupancy)
	fn("rs_occupancy", m.RSOccupancy)
}

// AvgROBOccupancy returns mean in-flight ROB entries per cycle.
func (m Metrics) AvgROBOccupancy() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.ROBOccupancy) / float64(m.Cycles)
}

// AvgRSOccupancy returns mean occupied reservation stations per cycle.
func (m Metrics) AvgRSOccupancy() float64 {
	if m.Cycles == 0 {
		return 0
	}
	return float64(m.RSOccupancy) / float64(m.Cycles)
}

// CycleResult reports what one cycle produced, for the SOE controller.
type CycleResult struct {
	Retired int // micro-ops retired this cycle

	// HeadMissPending is the paper's switch trigger: the next-to-retire
	// micro-op is flagged as handling a miss that has not resolved.
	HeadMissPending bool
	HeadMissSeq     uint64 // architectural seq of the pending micro-op
	HeadResolveAt   uint64 // cycle at which its miss resolves

	// HeadL1Pending reports an unresolved L1 miss (L2 hit) at the
	// head — the §6 extension's optional switch trigger.
	HeadL1Pending bool

	PauseRetired bool // a PAUSE hint retired this cycle (§6 extension)
}

// Pipeline is the out-of-order core. It executes one thread at a time
// (SOE); the controller switches threads with Squash + SetStream.
type Pipeline struct {
	cfg  Config
	hier *mem.Hierarchy
	bu   *branch.Unit

	// Thread context.
	tid    int
	stream *workload.Stream

	// ROB ring buffer. The backing array is sized to the next power of
	// two above ROBSize so the per-lookup ring index is a mask, not a
	// division; capacity checks still use cfg.ROBSize, and live ids
	// always span < ROBSize entries, so the wider ring never aliases.
	rob     []robEntry
	robMask uint64
	headID  uint64
	nextID  uint64

	// Reservation stations and load-buffer occupancy.
	rs      []rsEntry
	rsCount int
	lbCount int

	// Register rename: logical register -> producing ROB id.
	renameMap [isa.NumRegs]struct {
		id    uint64
		valid bool
	}

	// Front end.
	fetchQ       []fetchedUop
	fqHead       int
	fqCount      int
	fetchStall   uint64 // no fetch before this cycle
	brBlocked    bool   // fetch blocked on an unresolved mispredict
	brBlockSeq   uint64 // seq of the blocking branch
	rsSeqCounter uint64

	// Execution ports.
	portBusy [isa.NumPorts]uint64

	// issueWakeAt caches the earliest cycle any waiting reservation
	// station could possibly issue, so the oldest-first selection scan
	// is skipped while provably fruitless. 0 means unknown (must scan).
	// Set by every scan; maintained (min-updated) across rename inserts
	// and cleared on squash. Retirement never needs to clear it: a
	// producer must already satisfy doneAt <= now to retire, so
	// retiring cannot make a consumer ready earlier than its cached
	// wake time.
	issueWakeAt uint64

	// issueCands is per-cycle scratch for the issue stage's single-pass
	// candidate collection (indices into rs).
	issueCands []int

	// Store buffer (survives squash). Live entries are
	// storeBuf[sbHead:]; dispatch advances sbHead in O(1) and the dead
	// prefix is compacted away periodically, so store-heavy workloads
	// do not pay a per-dispatch O(n) drain.
	storeBuf []storeBufEntry
	sbHead   int

	// Architectural position: seq of the next micro-op to retire.
	nextArchSeq uint64

	// Injected external events (sorted by AtInstr) and cursor.
	events     []InjectedStall
	eventIdx   int
	eventStall uint64 // retirement stalled until this cycle

	// Scratch to avoid per-cycle allocation.
	retireScratch []isa.Uop

	Metrics Metrics
}

// New builds a pipeline. Invalid configuration is returned as an
// error, not panicked.
func New(cfg Config, hier *mem.Hierarchy, bu *branch.Unit) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	robLen := 1
	for robLen < cfg.ROBSize {
		robLen <<= 1
	}
	return &Pipeline{
		cfg:        cfg,
		hier:       hier,
		bu:         bu,
		rob:        make([]robEntry, robLen),
		robMask:    uint64(robLen - 1),
		rs:         make([]rsEntry, cfg.RSSize),
		fetchQ:     make([]fetchedUop, cfg.FetchQSize),
		issueCands: make([]int, 0, cfg.RSSize),
	}, nil
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Hierarchy returns the attached memory hierarchy.
func (p *Pipeline) Hierarchy() *mem.Hierarchy { return p.hier }

// BranchUnit returns the attached branch unit.
func (p *Pipeline) BranchUnit() *branch.Unit { return p.bu }

// Tid returns the current thread id.
func (p *Pipeline) Tid() int { return p.tid }

// NextArchSeq returns the architectural position: the sequence number
// of the next micro-op to retire.
func (p *Pipeline) NextArchSeq() uint64 { return p.nextArchSeq }

// SetEvents installs the injected external-event schedule for the
// current thread, skipping events before the current architectural
// position. Events must be sorted by AtInstr.
func (p *Pipeline) SetEvents(events []InjectedStall) {
	idx := 0
	for idx < len(events) && events[idx].AtInstr < p.nextArchSeq {
		idx++
	}
	p.SetEventsFrom(events, idx)
}

// SetEventsFrom installs an event schedule with an explicit cursor.
// The SOE controller uses this to persist each thread's fired-event
// position across switches (an event applies its stall once; the
// remainder of a stall interrupted by a switch is dropped).
func (p *Pipeline) SetEventsFrom(events []InjectedStall, idx int) {
	p.events = events
	p.eventIdx = idx
	p.eventStall = 0
}

// EventIndex returns the current event cursor (events before it have
// fired).
func (p *Pipeline) EventIndex() int { return p.eventIdx }

// SetStream installs a thread context. startAt is the earliest cycle
// the front end may fetch (the controller passes switch-in time after
// the drain). The stream must already be positioned at the thread's
// resume point.
func (p *Pipeline) SetStream(tid int, s *workload.Stream, startAt uint64) {
	p.tid = tid
	p.stream = s
	p.nextArchSeq = s.Pos()
	p.fetchStall = startAt
	p.brBlocked = false
	p.events = nil
	p.eventIdx = 0
	p.eventStall = 0
}

// Squash drains all in-flight state (thread switch). It returns the
// architectural sequence number at which the thread must resume; the
// controller seeks the thread's stream there before switching back in.
// The store buffer is retained (its entries are architecturally
// retired).
func (p *Pipeline) Squash() uint64 {
	p.Metrics.Squashed += p.nextID - p.headID + uint64(p.fqCount)
	p.headID = 0
	p.nextID = 0
	for i := range p.rob {
		p.rob[i] = robEntry{}
	}
	for i := range p.rs {
		p.rs[i] = rsEntry{}
	}
	p.rsCount = 0
	p.issueWakeAt = 0
	p.lbCount = 0
	p.fqHead = 0
	p.fqCount = 0
	p.brBlocked = false
	for i := range p.renameMap {
		p.renameMap[i].valid = false
	}
	for i := range p.portBusy {
		p.portBusy[i] = 0
	}
	return p.nextArchSeq
}

// Drained reports whether no in-flight micro-ops remain (ROB and fetch
// queue empty). The store buffer is allowed to be non-empty.
func (p *Pipeline) Drained() bool {
	return p.headID == p.nextID && p.fqCount == 0
}

// ROBOccupancy returns the number of in-flight ROB entries.
func (p *Pipeline) ROBOccupancy() int { return int(p.nextID - p.headID) }

// StoreBufLen returns the store-buffer occupancy.
func (p *Pipeline) StoreBufLen() int { return len(p.storeBuf) - p.sbHead }

// ResetMetrics clears the metric counters.
func (p *Pipeline) ResetMetrics() { p.Metrics = Metrics{} }

func (p *Pipeline) entry(id uint64) *robEntry {
	return &p.rob[id&p.robMask]
}

// producerDone reports whether the producer with ROB id has produced
// its result by cycle `now` (retired producers count as done).
func (p *Pipeline) producerDone(id uint64, now uint64) bool {
	if id < p.headID {
		return true // retired
	}
	e := p.entry(id)
	return e.done && e.doneAt <= now
}

// Cycle advances the machine by one cycle at global time `now`. Calls
// must use strictly increasing `now` values.
func (p *Pipeline) Cycle(now uint64) CycleResult {
	var res CycleResult
	p.Metrics.Cycles++
	p.Metrics.ROBOccupancy += uint64(p.ROBOccupancy())
	p.Metrics.RSOccupancy += uint64(p.rsCount)
	p.retire(now, &res)
	p.dispatchStores(now)
	p.issue(now)
	p.rename(now)
	p.fetch(now)
	return res
}

// retire retires completed micro-ops in order, detecting the SOE
// switch trigger and applying injected event stalls.
func (p *Pipeline) retire(now uint64, res *CycleResult) {
	if now < p.eventStall {
		return
	}
	for retired := 0; retired < p.cfg.RetireWidth && p.headID < p.nextID; retired++ {
		e := p.entry(p.headID)
		if !e.done || e.doneAt > now {
			if e.missFlag && e.doneAt > now {
				res.HeadMissPending = true
				res.HeadMissSeq = e.uop.Seq
				res.HeadResolveAt = e.doneAt
			} else if e.l1Flag && e.doneAt > now {
				res.HeadL1Pending = true
				res.HeadMissSeq = e.uop.Seq
				res.HeadResolveAt = e.doneAt
			}
			return
		}
		// Injected external events fire when their instruction reaches
		// retirement.
		if p.eventIdx < len(p.events) && e.uop.Seq >= p.events[p.eventIdx].AtInstr {
			p.eventStall = now + p.events[p.eventIdx].StallCycles
			p.eventIdx++
			return
		}
		if e.uop.Kind == isa.Store {
			if p.StoreBufLen() >= p.cfg.StoreBufSize {
				return // store buffer full: retirement blocks
			}
			p.storeBuf = append(p.storeBuf, storeBufEntry{addr: e.uop.Addr, tid: p.tid})
		}
		if e.uop.Kind == isa.Load {
			p.lbCount--
		}
		if e.uop.Kind == isa.Pause {
			res.PauseRetired = true
		}
		// Architectural register release.
		if e.uop.HasDst() {
			rm := &p.renameMap[e.uop.Dst]
			if rm.valid && rm.id == e.id {
				rm.valid = false
			}
		}
		p.headID++
		p.nextArchSeq = e.uop.Seq + 1
		p.Metrics.Retired++
		res.Retired++
	}
}

// dispatchStores sends one retired store per cycle to the data cache.
func (p *Pipeline) dispatchStores(now uint64) {
	if p.sbHead == len(p.storeBuf) {
		return
	}
	sb := p.storeBuf[p.sbHead]
	p.hier.AccessData(now, sb.addr, true)
	p.sbHead++
	// Reclaim the dead prefix: free immediately when drained, compact
	// once the prefix dominates the backing array. Amortized O(1).
	if p.sbHead == len(p.storeBuf) {
		p.storeBuf = p.storeBuf[:0]
		p.sbHead = 0
	} else if p.sbHead >= 64 && p.sbHead*2 >= len(p.storeBuf) {
		n := copy(p.storeBuf, p.storeBuf[p.sbHead:])
		p.storeBuf = p.storeBuf[:n]
		p.sbHead = 0
	}
}

// issue selects ready reservation-station entries, oldest first, and
// begins execution on free ports.
func (p *Pipeline) issue(now uint64) {
	if p.rsCount == 0 {
		return
	}
	if p.issueWakeAt > now {
		// No waiting entry can have become ready: producers complete on
		// fixed doneAt schedules and ports free on fixed busy-until
		// schedules, both accounted for in the cached wake time.
		return
	}
	// Single cheap pass: collect the candidates — entries whose operand
	// producers are done and whose port group has a free port now. The
	// readiness checks short-circuit on the first unmet condition, so a
	// waiting-heavy RS costs one producer lookup per entry, not a full
	// wake-bound computation. Producer completion times cannot change
	// within the cycle (an op issued now finishes strictly later), so
	// candidacy computed here stays valid across picks — only port
	// availability must be re-checked as picks occupy ports. A
	// port-blocked entry cannot join later in the cycle either: port
	// busy-until times only grow within a cycle.
	cands := p.issueCands[:0]
	for i := range p.rs {
		e := &p.rs[i]
		if !e.valid {
			continue
		}
		if e.has1 && !p.producerDone(e.src1, now) {
			continue
		}
		if e.has2 && !p.producerDone(e.src2, now) {
			continue
		}
		if !p.portFree(p.entry(e.robID).uop.Kind, now) {
			continue
		}
		cands = append(cands, i)
	}
	if len(cands) == 0 {
		// Unproductive scan: pay the full wake-bound pass once and cache
		// the result, so the cycles until then skip the scan entirely.
		p.issueWakeAt = p.issueHorizon()
		return
	}
	// Oldest-first picks, exactly as a per-slot selection scan would
	// make them: the oldest candidate with a free port goes first; a
	// port-blocked older candidate yields to a younger one whose port
	// is free. RS is small (tens of entries), so repeated selection
	// over the candidate list is fine.
	for len(cands) > 0 {
		best := -1
		var bestSeq uint64
		for ci, idx := range cands {
			e := &p.rs[idx]
			if best != -1 && e.seqNum >= bestSeq {
				continue
			}
			if !p.portFree(p.entry(e.robID).uop.Kind, now) {
				continue
			}
			best, bestSeq = ci, e.seqNum
		}
		if best == -1 {
			break
		}
		e := &p.rs[cands[best]]
		p.execute(now, p.entry(e.robID))
		*e = rsEntry{}
		p.rsCount--
		cands = append(cands[:best], cands[best+1:]...)
		if p.rsCount == 0 {
			return
		}
	}
	// Productive cycle with leftovers: leave the wake cache where it is
	// (<= now, since we got past the bail above). The next cycle's scan
	// is cheap, and if it proves unproductive it installs a fresh bound
	// computed from the post-issue port schedule then.
}

// issueHorizon returns the earliest cycle at which any waiting
// reservation-station entry could issue: every operand producer done
// and an execution port free. Entries whose producers have not
// themselves issued yet have no bound of their own, but they cannot
// overtake the returned horizon either — their producer chain bottoms
// out in an entry whose bound IS included, and a dependent can only
// issue strictly after its producer. Returns 0 (scan every cycle) in
// the defensive case where no entry has a computable bound.
func (p *Pipeline) issueHorizon() uint64 {
	var horizon uint64
	found := false
	for i := range p.rs {
		e := &p.rs[i]
		if !e.valid {
			continue
		}
		at, ok := p.entryWakeAt(e)
		if ok && (!found || at < horizon) {
			// A bound of 0 ("ready since cycle 0") is a real value, not
			// the unset sentinel — track foundness separately or a later
			// entry's larger bound would overwrite it.
			horizon, found = at, true
		}
	}
	return horizon
}

// entryWakeAt returns the earliest cycle e could issue, or ok=false
// when that is not yet computable (an operand producer has not issued,
// so its completion time is unknown).
func (p *Pipeline) entryWakeAt(e *rsEntry) (at uint64, ok bool) {
	if e.has1 {
		t, known := p.producerReadyAt(e.src1)
		if !known {
			return 0, false
		}
		if t > at {
			at = t
		}
	}
	if e.has2 {
		t, known := p.producerReadyAt(e.src2)
		if !known {
			return 0, false
		}
		if t > at {
			at = t
		}
	}
	if ports := isa.PortsFor(p.entry(e.robID).uop.Kind); len(ports) > 0 {
		free := p.portBusy[ports[0]]
		for _, port := range ports[1:] {
			if p.portBusy[port] < free {
				free = p.portBusy[port]
			}
		}
		if free > at {
			at = free
		}
	}
	return at, true
}

// producerReadyAt returns the cycle from which producerDone(id, t)
// holds, or known=false if the producer has not issued yet.
func (p *Pipeline) producerReadyAt(id uint64) (at uint64, known bool) {
	if id < p.headID {
		return 0, true // retired
	}
	e := p.entry(id)
	if !e.done {
		return 0, false
	}
	return e.doneAt, true
}

func (p *Pipeline) portFree(kind isa.Kind, now uint64) bool {
	ports := isa.PortsFor(kind)
	if len(ports) == 0 {
		return true
	}
	for _, port := range ports {
		if p.portBusy[port] <= now {
			return true
		}
	}
	return false
}

func (p *Pipeline) claimPort(kind isa.Kind, now, until uint64) {
	for _, port := range isa.PortsFor(kind) {
		if p.portBusy[port] <= now {
			p.portBusy[port] = until
			return
		}
	}
	panic("pipeline: claimPort called with no free port")
}

// execute starts execution of a ROB entry at cycle now.
func (p *Pipeline) execute(now uint64, e *robEntry) {
	e.issued = true
	kind := e.uop.Kind
	switch kind {
	case isa.Load:
		// Forwarding from the store buffer (same thread, same address).
		if p.forwardable(e.uop.Addr) {
			e.doneAt = now + 1
			p.Metrics.FwdLoads++
		} else {
			walk := p.hier.TranslateData(now, e.uop.Addr)
			acc := p.hier.AccessData(walk.DoneAt, e.uop.Addr, false)
			e.doneAt = acc.DoneAt
			e.missFlag = acc.L2Miss || walk.L2Miss
			e.l1Flag = acc.L1Miss && !e.missFlag
			if e.missFlag {
				p.Metrics.MissFlagged++
				if (acc.L2Miss && !acc.Coalesced) || walk.L2Miss {
					p.Metrics.DemandMisses++
				}
			}
		}
		p.claimPort(kind, now, now+1)
	case isa.Store:
		// Address generation + translation; data is written at
		// post-retire dispatch.
		walk := p.hier.TranslateData(now, e.uop.Addr)
		e.doneAt = walk.DoneAt
		if walk.DoneAt <= now {
			e.doneAt = now + 1
		}
		e.missFlag = walk.L2Miss
		if e.missFlag {
			p.Metrics.MissFlagged++
			p.Metrics.DemandMisses++
		}
		p.claimPort(kind, now, now+1)
	case isa.Branch:
		e.doneAt = now + uint64(isa.Latency[kind])
		p.bu.Resolve(e.uop.PC, e.predTaken, e.uop.Taken, e.uop.Target)
		if p.brBlocked && p.brBlockSeq == e.uop.Seq {
			// Mispredict resolved: redirect the front end.
			p.brBlocked = false
			resume := e.doneAt + uint64(p.cfg.RedirectPenalty)
			if resume > p.fetchStall {
				p.fetchStall = resume
			}
		}
		p.claimPort(kind, now, now+1)
	default:
		lat := uint64(isa.Latency[kind])
		e.doneAt = now + lat
		until := now + 1
		if !isa.Pipelined(kind) {
			until = e.doneAt
		}
		p.claimPort(kind, now, until)
	}
	e.done = true // result timing carried by doneAt
}

// forwardable reports whether a load can forward from the store
// buffer.
func (p *Pipeline) forwardable(addr uint64) bool {
	for _, sb := range p.storeBuf[p.sbHead:] {
		if sb.tid == p.tid && sb.addr == addr {
			return true
		}
	}
	return false
}

// needsRS reports whether kind occupies a reservation station (NOP and
// PAUSE complete at rename).
func needsRS(kind isa.Kind) bool { return kind != isa.Nop && kind != isa.Pause }

// renameBlocked reports whether a micro-op of the given kind cannot
// rename because a backend resource (ROB, RS, load buffer) is full.
// Each cycle this holds for the fetch-queue head with its group decoded
// (readyAt reached) costs one RenameStalls tick.
func (p *Pipeline) renameBlocked(kind isa.Kind) bool {
	if int(p.nextID-p.headID) >= p.cfg.ROBSize {
		return true
	}
	if needsRS(kind) && p.rsCount >= p.cfg.RSSize {
		return true
	}
	return kind == isa.Load && p.lbCount >= p.cfg.LoadBufSize
}

// rename moves micro-ops from the fetch queue into the ROB/RS.
func (p *Pipeline) rename(now uint64) {
	for n := 0; n < p.cfg.RenameWidth; n++ {
		if p.fqCount == 0 {
			return
		}
		f := &p.fetchQ[p.fqHead]
		if f.readyAt > now {
			return
		}
		if p.renameBlocked(f.uop.Kind) {
			p.Metrics.RenameStalls++
			return
		}
		needRS := needsRS(f.uop.Kind)

		id := p.nextID
		p.nextID++
		e := p.entry(id)
		*e = robEntry{uop: f.uop, id: id, predTaken: f.predTaken}

		if needRS {
			var rse rsEntry
			rse.valid = true
			rse.robID = id
			rse.seqNum = p.rsSeqCounter
			p.rsSeqCounter++
			if f.uop.Src1.Valid() {
				if rm := p.renameMap[f.uop.Src1]; rm.valid {
					rse.src1, rse.has1 = rm.id, true
				}
			}
			if f.uop.Src2.Valid() {
				if rm := p.renameMap[f.uop.Src2]; rm.valid {
					rse.src2, rse.has2 = rm.id, true
				}
			}
			for i := range p.rs {
				if !p.rs[i].valid {
					p.rs[i] = rse
					break
				}
			}
			p.rsCount++
			if p.issueWakeAt != 0 {
				// The cached wake bound survives the insert. If the new
				// entry's bound is computable it joins the min; if one of
				// its producers has not issued yet, that producer is
				// itself still in the RS and already covered by the
				// cache, and a dependent can only become ready at its
				// producer's doneAt, after the producer issues — so it
				// cannot undercut the cached bound either. A resulting
				// bound of 0 falls back to scan-every-cycle mode.
				if at, ok := p.entryWakeAt(&rse); ok && at < p.issueWakeAt {
					p.issueWakeAt = at
				}
			}
			if f.uop.Kind == isa.Load {
				p.lbCount++
			}
		} else {
			// NOP/PAUSE complete at rename.
			e.done = true
			e.doneAt = now + 1
		}

		if f.uop.HasDst() {
			p.renameMap[f.uop.Dst] = struct {
				id    uint64
				valid bool
			}{id: id, valid: true}
		}

		p.fqHead = (p.fqHead + 1) % len(p.fetchQ)
		p.fqCount--
	}
}

// fetch pulls micro-ops from the workload stream through the
// instruction cache and branch prediction into the fetch queue.
func (p *Pipeline) fetch(now uint64) {
	if p.stream == nil || p.brBlocked || now < p.fetchStall {
		return
	}
	if p.fqCount >= len(p.fetchQ) {
		return
	}
	// One icache+iTLB access covers this cycle's fetch group.
	first := p.stream.Generator().At(p.stream.Pos())
	walk := p.hier.TranslateFetch(now, first.PC)
	acc := p.hier.AccessFetch(walk.DoneAt, first.PC)
	groupReady := acc.DoneAt + uint64(p.cfg.DecodeCycles)
	if acc.L1Miss || walk.Walked {
		// Fetch blocks until the instruction bytes arrive.
		p.fetchStall = acc.DoneAt
	}

	for n := 0; n < p.cfg.FetchWidth && p.fqCount < len(p.fetchQ); n++ {
		u := p.stream.Next()
		p.Metrics.Fetched++
		f := fetchedUop{uop: u, readyAt: groupReady}
		if u.Kind == isa.Branch {
			f.predTaken = p.bu.PredictDirection(u.PC)
			if f.predTaken != u.Taken {
				// Mispredict: block fetch until this branch resolves
				// (flush-younger approximation; see package comment).
				p.brBlocked = true
				p.brBlockSeq = u.Seq
				p.push(f)
				return
			}
			if f.predTaken {
				if _, hit := p.bu.BTB.Lookup(u.PC); !hit {
					// Correctly predicted taken but target unknown
					// until decode: small fetch bubble.
					p.fetchStall = now + 1 + uint64(p.cfg.BTBMissPenalty)
					p.push(f)
					return
				}
				// Redirect: taken branches end the fetch group.
				p.push(f)
				return
			}
		}
		p.push(f)
	}
}

func (p *Pipeline) push(f fetchedUop) {
	tail := (p.fqHead + p.fqCount) % len(p.fetchQ)
	p.fetchQ[tail] = f
	p.fqCount++
}

// String summarizes occupancy for debugging.
func (p *Pipeline) String() string {
	return fmt.Sprintf("pipeline{tid=%d rob=%d/%d rs=%d/%d lb=%d sb=%d fq=%d arch=%d}",
		p.tid, p.ROBOccupancy(), p.cfg.ROBSize, p.rsCount, p.cfg.RSSize,
		p.lbCount, p.StoreBufLen(), p.fqCount, p.nextArchSeq)
}
