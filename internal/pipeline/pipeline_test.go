package pipeline

import (
	"testing"

	"soemt/internal/branch"
	"soemt/internal/isa"
	"soemt/internal/mem"
	"soemt/internal/workload"
)

// testMachine builds a pipeline with a small memory hierarchy.
func testMachine() *Pipeline {
	hcfg := mem.DefaultConfig()
	h := mem.MustNewHierarchy(hcfg)
	cfg := DefaultConfig()
	bu := branch.NewUnit(cfg.BranchEntries, cfg.BTBEntries, cfg.RASDepth, cfg.HistoryBits)
	p, err := New(cfg, h, bu)
	if err != nil {
		panic(err)
	}
	return p
}

// aluProfile is pure single-cycle ALU work with high ILP: the machine
// should sustain IPC well above 1.
func aluProfile() workload.Profile {
	return workload.Profile{
		Name: "alu", Seed: 1,
		ChainFrac: 0.05, DepWindow: 24,
		HotBytes: 16 << 10, WarmBytes: 64 << 10, ColdBytes: 1 << 20,
		LoopLen: 256, TakenBias: 0.9, NoiseFrac: 0,
	}
}

// missyProfile generates frequent cold loads (guaranteed L2 misses).
func missyProfile() workload.Profile {
	return workload.Profile{
		Name: "missy", Seed: 2,
		FracLoad:  0.3,
		ChainFrac: 0.2, DepWindow: 8,
		HotBytes: 16 << 10, WarmBytes: 64 << 10, ColdBytes: 256 << 20,
		PWarm: 0, PCold: 0.05, StrideFrac: 0,
		LoopLen: 256, TakenBias: 0.9, NoiseFrac: 0,
	}
}

// run cycles the pipeline until `instrs` micro-ops retire, returning
// the cycle count.
func run(t *testing.T, p *Pipeline, prof workload.Profile, instrs uint64) uint64 {
	t.Helper()
	g := workload.New(prof)
	p.SetStream(0, workload.NewStream(g, 0), 0)
	var retired uint64
	now := uint64(0)
	limit := instrs * 2000
	for retired < instrs {
		r := p.Cycle(now)
		retired += uint64(r.Retired)
		now++
		if now > limit {
			t.Fatalf("pipeline made no progress: %d/%d retired in %d cycles (%s)",
				retired, instrs, now, p)
		}
	}
	return now
}

func TestRetiresInOrderAndMakesProgress(t *testing.T) {
	p := testMachine()
	cycles := run(t, p, aluProfile(), 50000)
	if cycles == 0 {
		t.Fatal("no cycles")
	}
	if p.Metrics.Retired < 50000 {
		t.Fatalf("retired = %d", p.Metrics.Retired)
	}
	if p.NextArchSeq() < 50000 {
		t.Fatalf("arch seq = %d", p.NextArchSeq())
	}
}

func TestHighILPWorkloadSustainsIPC(t *testing.T) {
	p := testMachine()
	const n = 200000
	cycles := run(t, p, aluProfile(), n)
	ipc := float64(n) / float64(cycles)
	if ipc < 1.5 {
		t.Errorf("ALU workload IPC = %.2f, expected > 1.5 on a 4-wide core", ipc)
	}
	if ipc > 4.0 {
		t.Errorf("IPC = %.2f exceeds machine width", ipc)
	}
}

func TestSerialChainLimitsIPC(t *testing.T) {
	serial := aluProfile()
	serial.Name = "serial"
	serial.ChainFrac = 1.0
	serial.DepWindow = 1
	p1 := testMachine()
	c1 := run(t, p1, serial, 100000)
	p2 := testMachine()
	c2 := run(t, p2, aluProfile(), 100000)
	if c1 <= c2 {
		t.Errorf("serial chain (%d cycles) should be slower than parallel (%d)", c1, c2)
	}
	ipcSerial := 100000.0 / float64(c1)
	if ipcSerial > 1.3 {
		t.Errorf("fully serial IPC = %.2f, expected near 1", ipcSerial)
	}
}

func TestColdLoadsCauseMissFlags(t *testing.T) {
	p := testMachine()
	run(t, p, missyProfile(), 100000)
	if p.Metrics.MissFlagged == 0 {
		t.Fatal("missy workload produced no flagged misses")
	}
	// Roughly FracLoad*PCold = 1.5% of instructions are cold loads;
	// coalescing reduces the flagged count, but it must be substantial.
	if p.Metrics.MissFlagged < 300 {
		t.Errorf("flagged misses = %d, suspiciously few", p.Metrics.MissFlagged)
	}
}

func TestMissyWorkloadMuchSlowerThanALU(t *testing.T) {
	pm := testMachine()
	cm := run(t, pm, missyProfile(), 100000)
	pa := testMachine()
	ca := run(t, pa, aluProfile(), 100000)
	if cm < ca*2 {
		t.Errorf("missy (%d cycles) should be >2x slower than ALU (%d): memory stalls missing", cm, ca)
	}
}

func TestHeadMissPendingReported(t *testing.T) {
	p := testMachine()
	g := workload.New(missyProfile())
	p.SetStream(0, workload.NewStream(g, 0), 0)
	sawPending := false
	var pendingSpan uint64
	var firstSeq uint64
	for now := uint64(0); now < 200000; now++ {
		r := p.Cycle(now)
		if r.HeadMissPending {
			if !sawPending {
				firstSeq = r.HeadMissSeq
			}
			sawPending = true
			pendingSpan++
			if r.HeadResolveAt <= now {
				t.Fatal("pending miss with resolve time in the past")
			}
		}
	}
	if !sawPending {
		t.Fatal("no head-miss-pending ever reported for missy workload")
	}
	// A head miss should block for a large fraction of the ~300-cycle
	// memory latency at least once.
	if pendingSpan < 100 {
		t.Errorf("total pending span = %d cycles, expected memory-scale stalls", pendingSpan)
	}
	_ = firstSeq
}

func TestSquashRewindsToArchPoint(t *testing.T) {
	p := testMachine()
	g := workload.New(aluProfile())
	s := workload.NewStream(g, 0)
	p.SetStream(0, s, 0)
	var retired uint64
	now := uint64(0)
	for retired < 1000 {
		retired += uint64(p.Cycle(now).Retired)
		now++
	}
	resume := p.Squash()
	if resume != p.NextArchSeq() {
		t.Fatalf("resume %d != arch seq %d", resume, p.NextArchSeq())
	}
	if !p.Drained() {
		t.Fatal("not drained after squash")
	}
	// Resume and check the next retired instruction is exactly resume.
	s.Seek(resume)
	p.SetStream(0, s, now)
	for {
		r := p.Cycle(now)
		if r.Retired > 0 {
			if got := p.NextArchSeq() - uint64(r.Retired); got != resume {
				t.Fatalf("first retired after resume = %d, want %d", got, resume)
			}
			break
		}
		now++
		if now > 1e6 {
			t.Fatal("no progress after resume")
		}
	}
}

func TestSquashPreservesStoreBuffer(t *testing.T) {
	p := testMachine()
	prof := aluProfile()
	prof.FracStore = 0.5
	g := workload.New(prof)
	p.SetStream(0, workload.NewStream(g, 0), 0)
	now := uint64(0)
	for p.StoreBufLen() == 0 && now < 100000 {
		p.Cycle(now)
		now++
	}
	if p.StoreBufLen() == 0 {
		t.Skip("no store buffered in window")
	}
	before := p.StoreBufLen()
	p.Squash()
	if p.StoreBufLen() != before {
		t.Fatal("squash dropped retired stores")
	}
}

func TestInstructionCountMatchesStream(t *testing.T) {
	// In-order retirement must retire exactly seq 0..n-1 with no gaps,
	// even across a squash/rewind.
	p := testMachine()
	g := workload.New(aluProfile())
	s := workload.NewStream(g, 0)
	p.SetStream(0, s, 0)
	now := uint64(0)
	var retired uint64
	for retired < 5000 {
		r := p.Cycle(now)
		retired += uint64(r.Retired)
		now++
	}
	if p.NextArchSeq() != retired {
		t.Fatalf("arch seq %d != retired %d (gap or replay)", p.NextArchSeq(), retired)
	}
	resume := p.Squash()
	s.Seek(resume)
	p.SetStream(0, s, now)
	for retired < 10000 {
		r := p.Cycle(now)
		retired += uint64(r.Retired)
		now++
	}
	if p.NextArchSeq() != retired {
		t.Fatalf("after squash: arch seq %d != retired %d", p.NextArchSeq(), retired)
	}
}

func TestBranchMispredictsHurtPerformance(t *testing.T) {
	noisy := aluProfile()
	noisy.Name = "noisy"
	noisy.FracBranch = 0.2
	noisy.NoiseFrac = 0.5
	clean := aluProfile()
	clean.Name = "clean"
	clean.FracBranch = 0.2
	clean.NoiseFrac = 0
	pn := testMachine()
	cn := run(t, pn, noisy, 100000)
	pc := testMachine()
	cc := run(t, pc, clean, 100000)
	if cn <= cc {
		t.Errorf("noisy branches (%d cycles) should be slower than clean (%d)", cn, cc)
	}
	if pn.BranchUnit().MispredictRate() < 0.1 {
		t.Errorf("noisy mispredict rate = %.3f, expected >= 0.1", pn.BranchUnit().MispredictRate())
	}
	if pc.BranchUnit().MispredictRate() > 0.05 {
		t.Errorf("clean mispredict rate = %.3f, expected small", pc.BranchUnit().MispredictRate())
	}
}

func TestStoreForwarding(t *testing.T) {
	p := testMachine()
	prof := aluProfile()
	prof.FracStore = 0.25
	prof.FracLoad = 0.25
	// All accesses in a tiny hot region: forwarding hits are likely.
	prof.HotBytes = 64
	run(t, p, prof, 50000)
	if p.Metrics.FwdLoads == 0 {
		t.Error("no store-to-load forwarding in a 64-byte working set")
	}
}

func TestInjectedEventStallsRetirement(t *testing.T) {
	base := aluProfile()
	p1 := testMachine()
	c1 := run(t, p1, base, 20000)

	p2 := testMachine()
	g := workload.New(base)
	p2.SetStream(0, workload.NewStream(g, 0), 0)
	p2.SetEvents([]InjectedStall{{AtInstr: 5000, StallCycles: 10000}})
	var retired uint64
	now := uint64(0)
	for retired < 20000 {
		retired += uint64(p2.Cycle(now).Retired)
		now++
		if now > 1e7 {
			t.Fatal("no progress with injected event")
		}
	}
	if now < c1+9000 {
		t.Errorf("event stall not applied: %d vs baseline %d", now, c1)
	}
}

func TestEventsBeforeCheckpointSkipped(t *testing.T) {
	p := testMachine()
	g := workload.New(aluProfile())
	p.SetStream(0, workload.NewStream(g, 1000), 0)
	p.SetEvents([]InjectedStall{{AtInstr: 10, StallCycles: 1 << 40}})
	now := uint64(0)
	var retired uint64
	for retired < 1000 && now < 100000 {
		retired += uint64(p.Cycle(now).Retired)
		now++
	}
	if retired < 1000 {
		t.Fatal("stale event applied: pipeline stalled")
	}
}

func TestPauseRetiredReported(t *testing.T) {
	// Hand-drive a stream containing PAUSE via a profile trick: use a
	// custom generator wrapper is overkill — instead check that NOP/PAUSE
	// complete without RS. We inject a pause-heavy mix by constructing
	// uops directly through a tiny custom stream.
	p := testMachine()
	prof := aluProfile()
	g := workload.New(prof)
	p.SetStream(0, workload.NewStream(g, 0), 0)
	// No pause in builtin mixes; just verify the flag stays false.
	for now := uint64(0); now < 10000; now++ {
		if p.Cycle(now).PauseRetired {
			t.Fatal("phantom PAUSE retirement")
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p1 := testMachine()
	c1 := run(t, p1, missyProfile(), 50000)
	p2 := testMachine()
	c2 := run(t, p2, missyProfile(), 50000)
	if c1 != c2 {
		t.Fatalf("non-deterministic: %d vs %d cycles", c1, c2)
	}
	if p1.Metrics != p2.Metrics {
		t.Fatalf("metrics diverged: %+v vs %+v", p1.Metrics, p2.Metrics)
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.ROBSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for ROBSize=0")
	}
	bad = good
	bad.RedirectPenalty = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("expected error for negative penalty")
	}
	if p, err := New(bad, nil, nil); err == nil || p != nil {
		t.Fatalf("New must reject invalid config, got (%v, %v)", p, err)
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	p := testMachine()
	g := workload.New(missyProfile())
	p.SetStream(0, workload.NewStream(g, 0), 0)
	for now := uint64(0); now < 100000; now++ {
		p.Cycle(now)
		if occ := p.ROBOccupancy(); occ > p.Config().ROBSize {
			t.Fatalf("ROB occupancy %d exceeds %d", occ, p.Config().ROBSize)
		}
	}
}

func TestStringHasOccupancy(t *testing.T) {
	p := testMachine()
	s := p.String()
	if s == "" {
		t.Fatal("empty string")
	}
}

func TestUnpipelinedDivThrottles(t *testing.T) {
	divy := aluProfile()
	divy.Name = "divy"
	divy.FracDiv = 0.3
	pd := testMachine()
	cd := run(t, pd, divy, 30000)
	pa := testMachine()
	ca := run(t, pa, aluProfile(), 30000)
	// 30% divides at 20 cycles unpipelined: must be several times slower.
	if cd < ca*3 {
		t.Errorf("div workload %d cycles vs alu %d: unpipelined divide not modelled", cd, ca)
	}
}

func TestMemOpsTranslateThroughDTLB(t *testing.T) {
	p := testMachine()
	run(t, p, missyProfile(), 20000)
	if p.Hierarchy().DTLB.Stats.Accesses == 0 {
		t.Fatal("no DTLB activity for memory workload")
	}
	if p.Hierarchy().ITLB.Stats.Accesses == 0 {
		t.Fatal("no ITLB activity")
	}
}

func TestNopProfileCompletesWithoutRS(t *testing.T) {
	// NOPs bypass the RS; a NOP-heavy stream must still retire in order.
	p := testMachine()
	prof := aluProfile()
	// Can't express NOPs via Profile mix (by design the remainder is
	// ALU), so this exercises rename/retire paths with plain ALU ops
	// plus manual verification that kind NOP would be accepted: feed
	// one directly through the fetch queue.
	g := workload.New(prof)
	p.SetStream(0, workload.NewStream(g, 0), 0)
	p.push(isa.Uop{Seq: 0, Kind: isa.Nop}, 0, false)
	r := CycleResult{}
	for now := uint64(1); now < 100 && r.Retired == 0; now++ {
		r = p.Cycle(now)
	}
	if r.Retired == 0 {
		t.Fatal("NOP did not retire")
	}
}

func TestOccupancyMetrics(t *testing.T) {
	p := testMachine()
	run(t, p, aluProfile(), 50000)
	if p.Metrics.Cycles == 0 {
		t.Fatal("no cycles counted")
	}
	avgROB := p.Metrics.AvgROBOccupancy()
	if avgROB <= 0 || avgROB > float64(p.Config().ROBSize) {
		t.Fatalf("avg ROB occupancy %.1f out of range", avgROB)
	}
	avgRS := p.Metrics.AvgRSOccupancy()
	if avgRS < 0 || avgRS > float64(p.Config().RSSize) {
		t.Fatalf("avg RS occupancy %.1f out of range", avgRS)
	}
	var zero Metrics
	if zero.AvgROBOccupancy() != 0 || zero.AvgRSOccupancy() != 0 {
		t.Fatal("zero metrics must report zero occupancy")
	}
}

// A memory-bound thread's ROB should fill while the head blocks on a
// miss; the occupancy statistic must reflect that pressure relative to
// an ILP-bound thread.
func TestOccupancyHigherWhenMemoryBound(t *testing.T) {
	pm := testMachine()
	run(t, pm, missyProfile(), 60000)
	pa := testMachine()
	run(t, pa, aluProfile(), 60000)
	if pm.Metrics.AvgROBOccupancy() <= pa.Metrics.AvgROBOccupancy() {
		t.Errorf("missy ROB occupancy %.1f not above ALU %.1f",
			pm.Metrics.AvgROBOccupancy(), pa.Metrics.AvgROBOccupancy())
	}
}

func TestFetchQueueWraparound(t *testing.T) {
	// Exercise the circular fetch queue across many refills by running
	// long enough to wrap the queue index many times.
	p := testMachine()
	g := workload.New(aluProfile())
	p.SetStream(0, workload.NewStream(g, 0), 0)
	var retired uint64
	for now := uint64(0); retired < 30000; now++ {
		retired += uint64(p.Cycle(now).Retired)
		if now > 1e6 {
			t.Fatal("no progress")
		}
	}
	// In-order retirement across wraparound is already asserted by the
	// arch-seq invariant.
	if p.NextArchSeq() != retired {
		t.Fatalf("arch seq %d != retired %d after queue wraparound", p.NextArchSeq(), retired)
	}
}
