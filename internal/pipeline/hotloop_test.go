package pipeline

import (
	"fmt"
	"testing"

	"soemt/internal/isa"
	"soemt/internal/workload"
)

// TestStoreBufferRing exercises the head-index ring that replaced the
// O(n) copy-per-dispatch drain: FIFO dispatch order, occupancy
// accounting, compaction invariants, and forwarding across a live
// [sbHead:] window.
func TestStoreBufferRing(t *testing.T) {
	p := testMachine()
	// Fill well past the compaction threshold through interleaved
	// append/dispatch so sbHead walks deep into the backing array.
	next := uint64(0x1000)
	var expect []uint64
	for round := 0; round < 300; round++ {
		p.sbAddr = append(p.sbAddr, next)
		p.sbTid = append(p.sbTid, 0)
		expect = append(expect, next)
		next += 64
		if round%2 == 1 {
			p.dispatchStores(uint64(round))
			expect = expect[1:]
		}
		if p.StoreBufLen() != len(expect) {
			t.Fatalf("round %d: StoreBufLen = %d, want %d", round, p.StoreBufLen(), len(expect))
		}
		if p.sbHead > len(p.sbAddr) {
			t.Fatalf("round %d: sbHead %d past buffer end %d", round, p.sbHead, len(p.sbAddr))
		}
		// The compaction policy bounds the dead prefix: it is reclaimed
		// once it reaches 64 entries AND half the backing array.
		if p.sbHead >= 64 && p.sbHead*2 >= len(p.sbAddr)+2 {
			t.Fatalf("round %d: dead prefix %d/%d survived compaction", round, p.sbHead, len(p.sbAddr))
		}
		// Live window must match FIFO expectation.
		for i, addr := range p.sbAddr[p.sbHead:] {
			if addr != expect[i] {
				t.Fatalf("round %d: live[%d] = %#x, want %#x", round, i, addr, expect[i])
			}
		}
		// Forwarding must see exactly the live entries.
		if len(expect) > 0 && !p.forwardable(expect[0]) {
			t.Fatalf("round %d: oldest live store not forwardable", round)
		}
		if round > 0 && p.sbHead > 0 && !p.forwardable(expect[len(expect)-1]) {
			t.Fatalf("round %d: newest live store not forwardable", round)
		}
	}
	// Drain fully: the backing array must be released.
	for p.StoreBufLen() > 0 {
		p.dispatchStores(1 << 20)
	}
	if len(p.sbAddr) != 0 || p.sbHead != 0 {
		t.Fatalf("drained buffer not reset: len=%d head=%d", len(p.sbAddr), p.sbHead)
	}
}

// plantROB installs a bare, unissued ALU micro-op at ROB id (test
// scaffolding for scheduler tests that bypass rename).
func (p *Pipeline) plantROB(id uint64, u isa.Uop) {
	s := id & p.robMask
	p.robUop[s] = u
	p.robDoneAt[s] = 0
	p.robFlags[s] = 0
}

// plantRS installs a ready (operand-free) RS entry in the given slot.
func (p *Pipeline) plantRS(slot int, robID, seqNum uint64, kind isa.Kind) {
	p.rsValid[slot>>6] |= 1 << uint(slot&63)
	p.rsReady[slot>>6] |= 1 << uint(slot&63)
	p.rsRob[slot] = robID
	p.rsKey[slot] = seqNum<<keySeqShift | uint64(isa.PortMask[kind])<<keyPortShift | uint64(slot)
	p.rsHas[slot] = 0
	p.rsWaitCnt[slot] = 0
	p.rsWakeAt[slot] = 0
	p.rsCount++
}

// TestIssueOldestFirst pins the scheduler's oldest-first selection: with
// more ready entries than free ports, the issued subset must be exactly
// the lowest seqNums, regardless of RS slot order.
func TestIssueOldestFirst(t *testing.T) {
	p := testMachine()
	// Three ready ALU entries placed in reverse age order across RS
	// slots. ALU has two ports, so one issue() pass takes exactly two —
	// and they must be the two oldest.
	ids := []uint64{0, 1, 2}
	seqs := []uint64{30, 10, 20} // slot order deliberately != age order
	p.nextID = 3
	for i, id := range ids {
		p.plantROB(id, isa.Uop{Seq: id, Kind: isa.ALU, Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone})
		p.plantRS(i, id, seqs[i], isa.ALU)
	}
	p.issue(100)
	issuedSeqs := map[uint64]bool{}
	for _, id := range ids {
		if p.robFlags[id&p.robMask]&rfIssued != 0 {
			issuedSeqs[seqByID(seqs, ids, id)] = true
		}
	}
	if len(issuedSeqs) != 2 || !issuedSeqs[10] || !issuedSeqs[20] {
		t.Fatalf("issued seqNums %v, want exactly the two oldest {10, 20}", issuedSeqs)
	}
	if p.rsCount != 1 {
		t.Fatalf("rsCount = %d after issuing two of three", p.rsCount)
	}
}

func seqByID(seqs, ids []uint64, id uint64) uint64 {
	for i, x := range ids {
		if x == id {
			return seqs[i]
		}
	}
	panic("unknown id")
}

// TestIssueWakeCacheTransparent runs the same workloads on a normal
// pipeline and on one whose issue-wake cache is defeated before every
// cycle (forcing the pre-optimization always-scan behavior), asserting
// identical cycle-by-cycle state. This is the regression guard that the
// early-bail + wake-cache optimization never changes issue order or
// timing.
func TestIssueWakeCacheTransparent(t *testing.T) {
	for _, prof := range []workload.Profile{aluProfile(), missyProfile()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			t.Parallel()
			a := testMachine()
			b := testMachine()
			ga := workload.New(prof)
			gb := workload.New(prof)
			a.SetStream(0, workload.NewStream(ga, 0), 0)
			b.SetStream(0, workload.NewStream(gb, 0), 0)
			for now := uint64(0); now < 60_000; now++ {
				ra := a.Cycle(now)
				b.issueWakeAt = 0 // defeat the cache: always scan
				rb := b.Cycle(now)
				if ra != rb {
					t.Fatalf("cycle %d: results diverge: %+v vs %+v", now, ra, rb)
				}
				sa, sb := stateKey(a), stateKey(b)
				if sa != sb {
					t.Fatalf("cycle %d: state diverges\ncached:      %s\nalways-scan: %s", now, sa, sb)
				}
			}
		})
	}
}

// stateKey captures occupancy, metrics and scheduler-visible state
// (excluding the wake memo itself).
func stateKey(p *Pipeline) string {
	return fmt.Sprintf("%s m=%+v ports=%v head=%d next=%d arch=%d",
		p.String(), p.Metrics, p.portBusy, p.headID, p.nextID, p.nextArchSeq)
}
