// Package pipeline implements the simulated out-of-order core: a
// P6-derived machine with in-order fetch/decode/rename, a reservation-
// station scheduler issuing to typed execution ports, a re-order
// buffer, load and store buffers, and in-order retirement.
//
// SOE hooks: micro-ops whose execution involves an L2 miss (demand,
// coalesced, or a dTLB page-walk miss) are flagged in the ROB; every
// cycle the pipeline reports whether the next-to-retire micro-op is
// flagged with an unresolved miss — the paper's thread-switch trigger
// (§4.1). Squash drains the machine for a thread switch and returns
// the architectural position at which the thread must later resume
// (the workload generator regenerates the squashed micro-ops).
//
// Documented approximations (DESIGN.md §2): branch mispredictions
// stall the front end from fetch until the branch resolves (equivalent
// to flushing younger micro-ops, without modelling wrong-path
// execution), and store-to-load forwarding consults the post-retire
// store buffer only.
package pipeline

// Config sizes the core. DefaultConfig matches Table 3 of DESIGN.md.
type Config struct {
	FetchWidth  int // micro-ops fetched per cycle
	RenameWidth int // micro-ops renamed/allocated per cycle
	RetireWidth int // micro-ops retired per cycle

	ROBSize      int // re-order buffer entries
	RSSize       int // reservation station entries
	LoadBufSize  int // in-flight loads
	StoreBufSize int // retired stores awaiting cache dispatch
	FetchQSize   int // fetched micro-ops awaiting rename

	DecodeCycles    int // fixed decode depth after instruction fetch
	RedirectPenalty int // extra cycles to redirect fetch after a resolved mispredict
	BTBMissPenalty  int // fetch bubble when a predicted-taken branch misses the BTB

	BranchEntries int  // direction predictor table entries
	BTBEntries    int  // branch target buffer entries
	RASDepth      int  // return address stack depth
	HistoryBits   uint // gshare history length
}

// DefaultConfig returns the P6-derived configuration used throughout
// the experiments (sizes per DESIGN.md: Intel-disclosed structures,
// slightly increased per the paper's description).
func DefaultConfig() Config {
	return Config{
		FetchWidth:      4,
		RenameWidth:     4,
		RetireWidth:     4,
		ROBSize:         96,
		RSSize:          36,
		LoadBufSize:     32,
		StoreBufSize:    20,
		FetchQSize:      16,
		DecodeCycles:    4,
		RedirectPenalty: 2,
		BTBMissPenalty:  2,
		BranchEntries:   16384,
		BTBEntries:      4096,
		RASDepth:        16,
		HistoryBits:     12,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{
		{"FetchWidth", c.FetchWidth},
		{"RenameWidth", c.RenameWidth},
		{"RetireWidth", c.RetireWidth},
		{"ROBSize", c.ROBSize},
		{"RSSize", c.RSSize},
		{"LoadBufSize", c.LoadBufSize},
		{"StoreBufSize", c.StoreBufSize},
		{"FetchQSize", c.FetchQSize},
	} {
		if v.val <= 0 {
			return &ConfigError{Field: v.name}
		}
	}
	if c.DecodeCycles < 0 || c.RedirectPenalty < 0 || c.BTBMissPenalty < 0 {
		return &ConfigError{Field: "penalties"}
	}
	// The issue scheduler packs RS slot indices into 16-bit key fields.
	if c.RSSize > 1<<16 {
		return &ConfigError{Field: "RSSize"}
	}
	return nil
}

// ConfigError reports an invalid Config field.
type ConfigError struct{ Field string }

func (e *ConfigError) Error() string {
	return "pipeline: invalid config field " + e.Field
}
