package core

import (
	"testing"

	"soemt/internal/workload"
)

// Regression tests for mechanism bugs found during bring-up. Each of
// these corresponds to a subtle misreading of the paper that produced
// wrong shapes in the evaluation.

// A thread whose Eq. 9 value saturates at its own IPM needs NO forced
// switches: misses alone produce that average. Enforcing IPM with a
// deficit counter instead fires in every shorter-than-average miss
// gap and taxes naturally fair memory-bound pairs (mcf:mcf lost ~30%
// throughput before the fix).
func TestNoForcedSwitchesForMissBoundPairs(t *testing.T) {
	pipe := newMachine()
	a := victimProfile()
	b := victimProfile()
	b.Seed = 999
	threads := []*Thread{newThread(a, 0), newThread(b, 1)}
	c := mustController(pipe, testConfig(Fairness{F: 0.25}), threads)
	c.RunCycles(400_000)
	sw := c.Switches()
	if sw.Miss == 0 {
		t.Fatal("no miss switches")
	}
	if float64(sw.Quota) > 0.05*float64(sw.Miss) {
		t.Errorf("symmetric missy pair got %d quota switches vs %d miss switches: "+
			"Eq. 9 saturation must disable forced switching", sw.Quota, sw.Miss)
	}
}

// When all co-scheduled threads are miss-bound, a thread can return
// before its own miss resolves; the stall re-triggers a switch but is
// the SAME architectural miss and must not be re-counted (it inflated
// measured miss density ~7x before the fix, poisoning IPC_ST
// estimates).
func TestPingPongMissesNotRecounted(t *testing.T) {
	// Single-thread reference miss density.
	pipeST := newMachine()
	thST := newThread(victimProfile(), 0)
	cST := mustController(pipeST, testConfig(EventOnly{}), []*Thread{thST})
	cST.RunCycles(400_000)
	stIPM := thST.Counters().IPM()

	// Two missy threads ping-ponging.
	pipe := newMachine()
	a := victimProfile()
	b := victimProfile()
	b.Seed = 999
	threads := []*Thread{newThread(a, 0), newThread(b, 1)}
	c := mustController(pipe, testConfig(EventOnly{}), threads)
	c.RunCycles(800_000)
	soeIPM := threads[0].Counters().IPM()

	// Counted miss density under SOE must stay within ~2x of the
	// single-thread density (interference adds some real misses, but
	// nothing like the former 7x re-count inflation).
	if soeIPM < stIPM/2 {
		t.Errorf("SOE IPM %.0f vs ST IPM %.0f: pending misses are being re-counted",
			soeIPM, stIPM)
	}
	// The switches themselves still happen — re-encountered stalls
	// must keep switching even though they are not re-counted.
	var misses uint64
	for _, th := range threads {
		misses += th.Counters().Misses
	}
	if c.Switches().Miss <= misses {
		t.Log("note: miss switches equal counted misses (no ping-pong in this window)")
	}
}

// The visit-length accounting behind the deficit mechanism: with a
// binding quota and a rarely-missing thread, realized instructions per
// visit must track the quota within tolerance.
func TestDeficitMaintainsQuotaAverage(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	cfg := testConfig(Fairness{F: 1})
	c := mustController(pipe, cfg, threads)
	c.RunCycles(800_000)
	hog := threads[0]
	// Quotas are resampled every Δ; compare the realized visit length
	// against the mean sampled quota.
	var qSum float64
	var qN int
	for _, s := range c.Samples() {
		if q := s.Threads[0].Quota; q > 0 {
			qSum += q
			qN++
		}
	}
	if qN == 0 {
		t.Skip("hog never had an active quota")
	}
	meanQ := qSum / float64(qN)
	avg := hog.AvgVisitInstrs()
	// The deficit mechanism targets the quota on average over
	// quota-regulated visits. The raw per-visit mean also includes
	// near-zero "ping-pong" visits where the hog returned while its
	// own 300-cycle miss was still outstanding, so allow a wide band;
	// before the deficit fixes the average drifted far beyond it.
	if avg > 2.5*meanQ || avg < meanQ/4 {
		t.Errorf("hog avg instructions/visit %.0f vs mean quota %.0f: deficit accounting broken",
			avg, meanQ)
	}
}

// Fairness targets must produce monotonically increasing achieved
// fairness on an asymmetric pair (this held before the fixes only
// loosely; it is the paper's Figure 8 left panel).
func TestAchievedFairnessMonotoneInTarget(t *testing.T) {
	const cycles = 700_000
	ipcHog := runSingle(t, hogProfile(), 0, cycles)
	ipcVic := runSingle(t, victimProfile(), 1, cycles)
	achieved := func(policy Policy) float64 {
		c := runPair(t, policy, cycles)
		ths := c.Threads()
		sp := []float64{
			float64(ths[0].Counters().Instrs) / float64(c.Now()) / ipcHog,
			float64(ths[1].Counters().Instrs) / float64(c.Now()) / ipcVic,
		}
		return FairnessMetric(sp)
	}
	f0 := achieved(EventOnly{})
	f14 := achieved(Fairness{F: 0.25})
	f12 := achieved(Fairness{F: 0.5})
	f1 := achieved(Fairness{F: 1})
	if !(f0 < f14 && f14 < f12 && f12 < f1) {
		t.Errorf("achieved fairness not monotone: %.3f %.3f %.3f %.3f", f0, f14, f12, f1)
	}
}

// Pause-free profiles must never produce PAUSE micro-ops (guards the
// FracPause mix extension).
func TestBuiltinsHaveNoPause(t *testing.T) {
	for _, name := range workload.Names() {
		if workload.MustByName(name).FracPause != 0 {
			t.Errorf("builtin %q has nonzero FracPause", name)
		}
	}
}
