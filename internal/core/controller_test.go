package core

import (
	"testing"

	"soemt/internal/branch"
	"soemt/internal/mem"
	"soemt/internal/pipeline"
	"soemt/internal/stats"
	"soemt/internal/workload"
)

// Profiles engineered for fast, decisive tests: "hog" almost never
// misses; "victim" misses constantly. Under F=0 SOE the victim should
// starve; with fairness enforcement it must recover.
func hogProfile() workload.Profile {
	return workload.Profile{
		Name: "hog", Seed: 11,
		FracLoad: 0.25, FracBranch: 0.1,
		ChainFrac: 0.1, DepWindow: 16,
		HotBytes: 16 << 10, WarmBytes: 64 << 10, ColdBytes: 64 << 20,
		PWarm: 0, PCold: 0.00002, StrideFrac: 0,
		LoopLen: 256, TakenBias: 0.9, NoiseFrac: 0,
	}
}

func victimProfile() workload.Profile {
	return workload.Profile{
		Name: "victim", Seed: 12,
		FracLoad: 0.3, FracBranch: 0.1,
		ChainFrac: 0.2, DepWindow: 8,
		HotBytes: 16 << 10, WarmBytes: 64 << 10, ColdBytes: 256 << 20,
		PWarm: 0, PCold: 0.01, StrideFrac: 0,
		LoopLen: 256, TakenBias: 0.9, NoiseFrac: 0,
	}
}

func newMachine() *pipeline.Pipeline {
	pcfg := pipeline.DefaultConfig()
	bu := branch.NewUnit(pcfg.BranchEntries, pcfg.BTBEntries, pcfg.RASDepth, pcfg.HistoryBits)
	pipe, err := pipeline.New(pcfg, mem.MustNewHierarchy(mem.DefaultConfig()), bu)
	if err != nil {
		panic(err)
	}
	return pipe
}

// mustController wraps NewController for configurations the tests know
// to be valid.
func mustController(pipe *pipeline.Pipeline, cfg Config, threads []*Thread) *Controller {
	c, err := NewController(pipe, cfg, threads)
	if err != nil {
		panic(err)
	}
	return c
}

func newThread(prof workload.Profile, slot int) *Thread {
	g := workload.NewOffset(prof, slot)
	return &Thread{Name: prof.Name, Stream: workload.NewStream(g, 0)}
}

// testConfig shrinks Δ and the max quota so short runs sample often.
func testConfig(policy Policy) Config {
	cfg := DefaultConfig()
	cfg.Delta = 20_000
	cfg.MaxCyclesQuota = 5_000
	cfg.Policy = policy
	return cfg
}

// runPair runs hog+victim under the given policy for a fixed cycle
// count and returns the controller.
func runPair(t *testing.T, policy Policy, cycles uint64) *Controller {
	t.Helper()
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	c := mustController(pipe, testConfig(policy), threads)
	c.RunCycles(cycles)
	return c
}

// runSingle runs one profile alone and returns its IPC.
func runSingle(t *testing.T, prof workload.Profile, slot int, cycles uint64) float64 {
	t.Helper()
	pipe := newMachine()
	th := newThread(prof, slot)
	c := mustController(pipe, testConfig(EventOnly{}), []*Thread{th})
	c.RunCycles(cycles)
	cnt := th.Counters()
	return float64(cnt.Instrs) / float64(cnt.Cycles)
}

func TestSingleThreadNeverSwitches(t *testing.T) {
	pipe := newMachine()
	th := newThread(victimProfile(), 0)
	c := mustController(pipe, testConfig(EventOnly{}), []*Thread{th})
	c.RunCycles(100_000)
	if c.Switches().Total() != 0 {
		t.Fatalf("single-thread run switched: %+v", c.Switches())
	}
	if th.Counters().Misses == 0 {
		t.Fatal("victim profile produced no counted misses")
	}
	if th.Counters().Instrs == 0 {
		t.Fatal("no instructions retired")
	}
}

func TestSOESwitchesOnMisses(t *testing.T) {
	c := runPair(t, EventOnly{}, 200_000)
	if c.Switches().Miss == 0 {
		t.Fatal("no miss-induced switches in SOE")
	}
	if c.Switches().Quota != 0 {
		t.Fatal("event-only policy must not force quota switches")
	}
	both := c.Threads()
	if both[0].Retired() == 0 || both[1].Retired() == 0 {
		t.Fatalf("a thread never ran: %d / %d", both[0].Retired(), both[1].Retired())
	}
}

func TestSOEImprovesThroughputOverSingleThread(t *testing.T) {
	const cycles = 400_000
	ipcHogST := runSingle(t, hogProfile(), 0, cycles)
	ipcVicST := runSingle(t, victimProfile(), 1, cycles)

	c := runPair(t, EventOnly{}, cycles)
	var ipcSOE float64
	for _, th := range c.Threads() {
		ipcSOE += float64(th.Counters().Instrs) / float64(cycles)
	}
	// SOE throughput must beat the victim alone and at least approach
	// the better single thread (the hog hides the victim's misses).
	if ipcSOE <= ipcVicST {
		t.Errorf("SOE IPC %.3f not above victim-alone %.3f", ipcSOE, ipcVicST)
	}
	if ipcSOE < ipcHogST*0.8 {
		t.Errorf("SOE IPC %.3f unexpectedly below 80%% of hog-alone %.3f", ipcSOE, ipcHogST)
	}
}

func TestUnfairnessWithoutEnforcement(t *testing.T) {
	const cycles = 400_000
	ipcHogST := runSingle(t, hogProfile(), 0, cycles)
	ipcVicST := runSingle(t, victimProfile(), 1, cycles)
	c := runPair(t, EventOnly{}, cycles)
	ths := c.Threads()
	spHog := float64(ths[0].Counters().Instrs) / float64(cycles) / ipcHogST
	spVic := float64(ths[1].Counters().Instrs) / float64(cycles) / ipcVicST
	f := FairnessMetric([]float64{spHog, spVic})
	if f > 0.5 {
		t.Errorf("expected strong unfairness at F=0, got fairness %.3f (hog %.3f vic %.3f)",
			f, spHog, spVic)
	}
	if spHog < spVic {
		t.Errorf("hog should outrun victim: %.3f vs %.3f", spHog, spVic)
	}
}

func TestFairnessEnforcementRescuesVictim(t *testing.T) {
	const cycles = 600_000
	ipcHogST := runSingle(t, hogProfile(), 0, cycles)
	ipcVicST := runSingle(t, victimProfile(), 1, cycles)

	fairness := func(c *Controller) float64 {
		ths := c.Threads()
		spHog := float64(ths[0].Counters().Instrs) / float64(c.Now()) / ipcHogST
		spVic := float64(ths[1].Counters().Instrs) / float64(c.Now()) / ipcVicST
		return FairnessMetric([]float64{spHog, spVic})
	}

	c0 := runPair(t, EventOnly{}, cycles)
	f0 := fairness(c0)
	c1 := runPair(t, Fairness{F: 1}, cycles)
	f1 := fairness(c1)

	if c1.Switches().Quota == 0 {
		t.Fatal("fairness policy induced no forced switches")
	}
	if f1 <= f0 {
		t.Fatalf("enforcement did not improve fairness: F=0 gives %.3f, F=1 gives %.3f", f0, f1)
	}
	if f1 < 0.5 {
		t.Errorf("achieved fairness %.3f at F=1, expected > 0.5", f1)
	}
}

func TestFairnessLevelsMonotone(t *testing.T) {
	// Stricter F must not decrease victim share.
	const cycles = 500_000
	share := func(policy Policy) float64 {
		c := runPair(t, policy, cycles)
		ths := c.Threads()
		return float64(ths[1].Counters().Instrs) /
			float64(ths[0].Counters().Instrs+ths[1].Counters().Instrs)
	}
	s0 := share(EventOnly{})
	sq := share(Fairness{F: 0.25})
	s1 := share(Fairness{F: 1})
	if !(s0 < sq && sq < s1) {
		t.Errorf("victim share not monotone in F: F0=%.4f F1/4=%.4f F1=%.4f", s0, sq, s1)
	}
}

func TestMaxCyclesQuotaGuaranteesRotation(t *testing.T) {
	// Two hogs: almost no misses, event-only policy. Only the
	// max-cycles quota can rotate them.
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(hogProfile(), 1)}
	cfg := testConfig(EventOnly{})
	c := mustController(pipe, cfg, threads)
	c.RunCycles(100_000)
	if c.Switches().MaxQuota == 0 {
		t.Fatal("max-cycles quota never fired for two no-miss threads")
	}
	if threads[0].Retired() == 0 || threads[1].Retired() == 0 {
		t.Fatal("a hog never ran despite the max-cycles quota")
	}
}

func TestSamplesRecorded(t *testing.T) {
	c := runPair(t, Fairness{F: 0.5}, 100_000)
	if len(c.Samples()) != 4 { // Δ=20k over 100k cycles, first at 20k
		t.Fatalf("samples = %d, want 4", len(c.Samples()))
	}
	for _, s := range c.Samples() {
		if len(s.Threads) != 2 {
			t.Fatal("sample missing threads")
		}
		for _, ts := range s.Threads {
			if ts.EstIPCST < 0 || ts.WindowIPC < 0 {
				t.Fatal("negative sample values")
			}
		}
	}
}

func TestResetStatsClearsMeasurementKeepsState(t *testing.T) {
	c := runPair(t, Fairness{F: 1}, 100_000)
	c.ResetStats()
	if c.Switches().Total() != 0 || len(c.Samples()) != 0 {
		t.Fatal("reset left switch stats or samples")
	}
	for _, th := range c.Threads() {
		if th.Retired() != 0 || th.Counters() != (stats.Counters{}) {
			t.Fatal("reset left thread counters")
		}
	}
	// Reset recomputes quotas from the warmup window so measurement
	// starts with fresh IPSw values: the hog must still carry one.
	if c.Threads()[0].Quota() <= 0 {
		t.Fatal("reset must leave the mechanism armed (hog quota > 0)")
	}
	if c.CyclesSinceReset() != 0 {
		t.Fatal("CyclesSinceReset not zeroed")
	}
	// The machine continues to run correctly after a reset.
	c.RunCycles(50_000)
	if c.Threads()[0].Retired()+c.Threads()[1].Retired() == 0 {
		t.Fatal("no progress after reset")
	}
}

func TestRunTargetStopsWhenBothComplete(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	c := mustController(pipe, testConfig(Fairness{F: 1}), threads)
	cycles := c.Run(5_000, 0)
	if cycles == 0 {
		t.Fatal("Run did nothing")
	}
	for i, th := range threads {
		if th.Retired() < 5_000 {
			t.Fatalf("thread %d retired only %d", i, th.Retired())
		}
	}
	// With a max-cycle cap, Run must stop early.
	pipe2 := newMachine()
	threads2 := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	c2 := mustController(pipe2, testConfig(EventOnly{}), threads2)
	got := c2.Run(1<<40, 10_000)
	if got != 10_000 {
		t.Fatalf("maxCycles cap returned %d", got)
	}
}

func TestTimeSharePolicyForcesSwitches(t *testing.T) {
	c := runPair(t, TimeShare{QuotaCycles: 400}, 300_000)
	if c.Switches().Quota == 0 {
		t.Fatal("time-share policy never forced a switch")
	}
	// Both threads get CPU time.
	if c.Threads()[1].Counters().Cycles == 0 {
		t.Fatal("victim got no cycles under time sharing")
	}
}

func TestNaiveDeficitSwitchesAtLeastAsOften(t *testing.T) {
	const cycles = 400_000
	run := func(naive bool) uint64 {
		pipe := newMachine()
		threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
		cfg := testConfig(Fairness{F: 1})
		cfg.NaiveDeficit = naive
		c := mustController(pipe, cfg, threads)
		c.RunCycles(cycles)
		return c.Switches().Quota
	}
	deficit := run(false)
	naive := run(true)
	if deficit == 0 || naive == 0 {
		t.Fatal("no forced switches in ablation comparison")
	}
	// The two accounting schemes must actually behave differently;
	// their relative order depends on overshoot vs carried leftover
	// (see BenchmarkAblationDeficit for the quantitative comparison).
	if naive == deficit {
		t.Errorf("naive and deficit produced identical switch counts (%d): flag has no effect", naive)
	}
}

func TestMeasuredMissLatApproximatesMemoryLatency(t *testing.T) {
	pipe := newMachine()
	th := newThread(victimProfile(), 0)
	cfg := testConfig(EventOnly{})
	cfg.MeasureMissLat = true
	c := mustController(pipe, cfg, []*Thread{th})
	c.RunCycles(300_000)
	got := c.MeasuredMissLat()
	// Head-observed residual latency: detection happens after the
	// access started (shortening it) but bus queueing of clustered
	// misses can push individual stalls past the raw 300 cycles.
	if got < 100 || got > 600 {
		t.Errorf("measured miss latency = %.1f, want O(300)", got)
	}
	// Measurement off -> constant.
	cfg.MeasureMissLat = false
	c2 := mustController(newMachine(), cfg, []*Thread{newThread(victimProfile(), 0)})
	if c2.MeasuredMissLat() != cfg.MissLat {
		t.Error("constant miss latency not returned when measurement off")
	}
}

func TestCountersExcludeSwitchOverhead(t *testing.T) {
	c := runPair(t, EventOnly{}, 300_000)
	var running uint64
	for _, th := range c.Threads() {
		running += th.Counters().Cycles
	}
	// Total attributed running cycles must be strictly less than wall
	// cycles (switch overhead excluded) but a dominant fraction.
	if running >= c.Now() {
		t.Fatalf("running cycles %d >= wall %d: overhead not excluded", running, c.Now())
	}
	if float64(running) < 0.5*float64(c.Now()) {
		t.Errorf("running cycles %d below half of wall %d: attribution broken", running, c.Now())
	}
}

func TestControllerErrorsOnBadConstruction(t *testing.T) {
	pipe := newMachine()
	badDrain := testConfig(EventOnly{})
	badDrain.DrainCycles = 0
	badAlpha := testConfig(EventOnly{})
	badAlpha.SmoothAlpha = 1.5
	badMissLat := testConfig(EventOnly{})
	badMissLat.MissLat = -1
	for i, build := range []func() (*Controller, error){
		func() (*Controller, error) { return NewController(pipe, testConfig(EventOnly{}), nil) },
		func() (*Controller, error) {
			return NewController(nil, testConfig(EventOnly{}), []*Thread{newThread(hogProfile(), 0)})
		},
		func() (*Controller, error) {
			return NewController(pipe, testConfig(nil), []*Thread{newThread(hogProfile(), 0)})
		},
		func() (*Controller, error) {
			return NewController(pipe, badDrain, []*Thread{newThread(hogProfile(), 0)})
		},
		func() (*Controller, error) {
			return NewController(pipe, badAlpha, []*Thread{newThread(hogProfile(), 0)})
		},
		func() (*Controller, error) {
			return NewController(pipe, badMissLat, []*Thread{newThread(hogProfile(), 0)})
		},
		func() (*Controller, error) {
			return NewController(pipe, testConfig(EventOnly{}), []*Thread{{Name: "nostream"}})
		},
	} {
		c, err := build()
		if err == nil || c != nil {
			t.Errorf("case %d: expected construction error, got (%v, %v)", i, c, err)
		}
	}
}

func TestDeterministicController(t *testing.T) {
	c1 := runPair(t, Fairness{F: 0.5}, 200_000)
	c2 := runPair(t, Fairness{F: 0.5}, 200_000)
	if c1.Switches() != c2.Switches() {
		t.Fatalf("switch stats diverged: %+v vs %+v", c1.Switches(), c2.Switches())
	}
	for i := range c1.Threads() {
		if c1.Threads()[i].Counters() != c2.Threads()[i].Counters() {
			t.Fatalf("thread %d counters diverged", i)
		}
	}
}

func TestEstimatedIPCSTTracksReality(t *testing.T) {
	// §5.1.1: the counter-based estimate must track the real
	// single-thread IPC (it is usually slightly lower).
	const cycles = 600_000
	realVic := runSingle(t, victimProfile(), 1, cycles)
	c := runPair(t, Fairness{F: 0.25}, cycles)
	samples := c.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	var est float64
	var n int
	for _, s := range samples[len(samples)/2:] { // skip mechanism warmup
		if s.Threads[1].Window.Cycles > 0 {
			est += s.Threads[1].EstIPCST
			n++
		}
	}
	est /= float64(n)
	if est < realVic*0.5 || est > realVic*1.5 {
		t.Errorf("estimated IPC_ST %.3f vs real %.3f: tracking broken", est, realVic)
	}
}

// Regression: the flush sample emitted for a partial Δ window must
// divide retired instructions by the cycles actually elapsed since the
// previous sample, not by the full Δ (which underestimates WindowIPC).
func TestSamplePartialWindowIPC(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	cfg := testConfig(EventOnly{})
	c := mustController(pipe, cfg, threads)

	// One full window plus half of the next.
	c.RunCycles(cfg.Delta + cfg.Delta/2)
	full := c.Samples()
	if len(full) != 1 {
		t.Fatalf("expected 1 boundary sample, got %d", len(full))
	}
	for i, st := range full[0].Threads {
		want := float64(st.Window.Instrs) / float64(cfg.Delta)
		if st.WindowIPC != want {
			t.Errorf("full-window thread %d WindowIPC = %v, want %v", i, st.WindowIPC, want)
		}
	}

	// Flush the partial half-window.
	c.sample()
	recs := c.Samples()
	if len(recs) != 2 {
		t.Fatalf("expected 2 samples, got %d", len(recs))
	}
	partial := recs[1]
	elapsed := cfg.Delta / 2
	var checked bool
	for i, st := range partial.Threads {
		want := float64(st.Window.Instrs) / float64(elapsed)
		if st.WindowIPC != want {
			t.Errorf("partial-window thread %d WindowIPC = %v, want %v (instrs=%d elapsed=%d)",
				i, st.WindowIPC, want, st.Window.Instrs, elapsed)
		}
		if st.Window.Instrs > 0 {
			checked = true
			// The old code divided by the full Δ, halving the value.
			wrong := float64(st.Window.Instrs) / float64(cfg.Delta)
			if st.WindowIPC <= wrong {
				t.Errorf("partial-window thread %d WindowIPC %v not above full-Δ value %v", i, st.WindowIPC, wrong)
			}
		}
	}
	if !checked {
		t.Fatal("no thread retired instructions in the partial window")
	}
}

// Regression: Run must flag when it stops at the maxCycles cap before
// every thread reaches its target, and ResetStats must clear the flag.
func TestRunTruncatedFlag(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	c := mustController(pipe, testConfig(EventOnly{}), threads)
	if c.Run(1<<40, 10_000) != 10_000 {
		t.Fatal("cap did not bind")
	}
	if !c.Truncated() {
		t.Fatal("capped Run must report truncation")
	}
	c.ResetStats()
	if c.Truncated() {
		t.Fatal("ResetStats must clear the truncation flag")
	}
	if c.Run(1_000, 0) == 0 {
		t.Fatal("Run did nothing")
	}
	if c.Truncated() {
		t.Fatal("completed Run must not report truncation")
	}
}
