package core

import (
	"math"
	"testing"
)

// Tests for the N-thread quota generalization and the policy zoo
// (GroupedFairness, WFQGrant, Malthusian) — unit tests for the quota
// and classification math, controller-level tests for the Granter/
// Culler mechanism paths, and property tests shared by every policy.

// TestFairnessQuotasThreeSampleNAware is the regression test for the
// silent pair assumption in Fairness.Quotas (satellite fix in this
// PR's issue): with three samples the Eq. 9 wait term must be
// 2·CPM_min + Miss_lat, not the two-thread CPM_min + Miss_lat the
// seed implementation used for every N. Before the fix this test
// failed with q1 ≈ 1666.7 (the pair value).
func TestFairnessQuotasThreeSampleNAware(t *testing.T) {
	p := Fairness{F: 1}
	s1 := mkSample(150_000, 60_000, 10, 300) // IPM 15000, CPM 6000
	s2 := mkSample(10_000, 4_000, 10, 300)   // IPM 1000, CPM 400 (floor)
	s3 := mkSample(12_000, 6_000, 10, 300)   // IPM 1200, CPM 600
	qs := p.Quotas([]ThreadSample{s1, s2, s3}, 300)

	// wait = (3-1)·400 + 300 = 1100; q1 = 15000/6300 · 1100 = 2619.0.
	estST1 := 15_000.0 / 6_300.0
	want := estST1 * (2*400 + 300)
	if !almost(qs[0], want, 1.0) {
		t.Errorf("3-thread q1 = %.1f, want %.1f ((N-1)·CPM_min wait term)", qs[0], want)
	}
	// The pair formula would have produced 15000/6300·700 = 1666.7 —
	// make the distinction explicit so a reintroduced pair assumption
	// cannot sneak past the tolerance.
	if pairQ := estST1 * (400 + 300); math.Abs(qs[0]-pairQ) < 100 {
		t.Errorf("q1 = %.1f matches the pair wait term %.1f: Quotas regressed to the 2-thread formula", qs[0], pairQ)
	}
	// Miss-bound threads still saturate at IPM (encoded as quota 0).
	if qs[1] != 0 || qs[2] != 0 {
		t.Errorf("miss-bound quotas = %v, %v; want 0, 0", qs[1], qs[2])
	}

	// At N = 2 the factor is 1: bit-identical to IPSwQuota, which is the
	// paper's literal pair formula.
	pairQs := p.Quotas([]ThreadSample{s1, s2}, 300)
	ref := IPSwQuota(s1.IPM, s1.EstST, 400, 300, 1)
	if pairQs[0] != ref {
		t.Errorf("2-thread quota %v != paper pair formula %v; N generalization must be exact at N=2", pairQs[0], ref)
	}
}

// Four-thread fixture for GroupedFairness: two missy threads (CPM 400
// and 1500 — a short miss distance means frequent misses) and two
// cache-friendly ones (CPM 6000 and 24000), split at 3000.
func groupedSamples() []ThreadSample {
	return []ThreadSample{
		mkSample(10_000, 4_000, 10, 300),      // m1: CPM 400 (missy floor)
		mkSample(150_000, 15_000, 10, 300),    // m2: CPM 1500, quota binds
		mkSample(150_000, 60_000, 10, 300),    // f1: CPM 6000 (friendly floor)
		mkSample(1_200_000, 240_000, 10, 300), // f2: CPM 24000, quota binds
	}
}

func TestGroupedFairnessQuotasUseGroupFloor(t *testing.T) {
	samples := groupedSamples()
	grouped := GroupedFairness{F: 1, CPMSplit: 3000}.Quotas(samples, 300)
	plain := Fairness{F: 1}.Quotas(samples, 300)

	// Missy members are budgeted from the missy floor (400), which is
	// also the global floor: identical to plain Fairness.
	if grouped[1] != plain[1] || grouped[1] <= 0 {
		t.Errorf("missy quota = %v, plain = %v; must be equal and binding", grouped[1], plain[1])
	}
	// The friendly member's wait term uses its own group's floor
	// (6000), not the global 400: quota 120000/24300·(3·6000+300) ≈
	// 90370 versus plain ≈ 7407 — an order of magnitude looser, fewer
	// forced switches on the hog.
	wantFriendly := 120_000.0 / 24_300.0 * (3*6_000 + 300)
	if !almost(grouped[3], wantFriendly, 1.0) {
		t.Errorf("friendly quota = %.1f, want %.1f (group floor 6000)", grouped[3], wantFriendly)
	}
	if grouped[3] <= plain[3] {
		t.Errorf("friendly quota %v must exceed (be looser than) plain Fairness %v", grouped[3], plain[3])
	}
	// Threads at their group floor saturate at IPM exactly like plain
	// Fairness.
	if grouped[0] != 0 || grouped[2] != 0 {
		t.Errorf("floor threads' quotas = %v, %v; want 0, 0 (saturated)", grouped[0], grouped[2])
	}
}

func TestGroupedFairnessAdaptiveSplit(t *testing.T) {
	samples := groupedSamples()
	// Midpoint of [400, 24000] is 12200: CPM 6000 lands missy (below
	// the midpoint), so the adaptive split groups {m1, m2, f1} vs {f2}.
	adaptive := GroupedFairness{F: 1}
	missy := adaptive.classify(samples)
	want := []bool{true, true, true, false}
	for i := range want {
		if missy[i] != want[i] {
			t.Errorf("adaptive classify[%d] = %v, want %v", i, missy[i], want[i])
		}
	}
	// Empty windows contribute no CPM evidence and stay friendly.
	missy = adaptive.classify([]ThreadSample{{}, {}})
	if missy[0] || missy[1] {
		t.Error("empty-window threads must not classify missy")
	}
}

func TestGroupedFairnessInvertNegativeControl(t *testing.T) {
	samples := groupedSamples()
	inv := GroupedFairness{F: 1, CPMSplit: 3000, Invert: true}.Quotas(samples, 300)
	// The mis-grouped missy thread inherits the friendly floor (6000):
	// its Eq. 9 value saturates past IPM and its quota stops binding —
	// the policy no longer enforces anything on the group the paper says
	// needs headroom.
	if inv[1] != 0 {
		t.Errorf("inverted missy quota = %v, want 0 (saturated by the friendly floor)", inv[1])
	}
	// The friendly hog gets the missy floor (400): a drastically tighter
	// quota than its group entitles it to.
	wantTight := 120_000.0 / 24_300.0 * (3*400 + 300)
	if !almost(inv[3], wantTight, 1.0) {
		t.Errorf("inverted friendly quota = %.1f, want %.1f", inv[3], wantTight)
	}
	// Grant weights swap too: normally the missy pair gets the boost.
	g := GroupedFairness{F: 1, CPMSplit: 3000, MissyWeight: 4, FriendlyWeight: 1}
	w := g.GrantWeights(samples)
	if w[0] != 4 || w[1] != 4 || w[2] != 1 || w[3] != 1 {
		t.Errorf("grant weights = %v, want [4 4 1 1]", w)
	}
	g.Invert = true
	w = g.GrantWeights(samples)
	if w[0] != 1 || w[1] != 1 || w[2] != 4 || w[3] != 4 {
		t.Errorf("inverted grant weights = %v, want [1 1 4 4]", w)
	}
}

func TestWFQGrantWeights(t *testing.T) {
	samples := groupedSamples()
	// Quotas: never any forced switch points.
	for i, q := range (WFQGrant{Weights: []float64{2, 1}}).Quotas(samples, 300) {
		if q != 0 {
			t.Errorf("wfq quota[%d] = %v, want 0", i, q)
		}
	}
	// Weights: configured prefix, missing and degenerate entries
	// default to 1.
	p := WFQGrant{Weights: []float64{2, 0, math.NaN()}}
	w := p.GrantWeights(samples)
	if len(w) != 4 {
		t.Fatalf("weights length = %d, want 4", len(w))
	}
	if w[0] != 2 || w[1] != 1 || w[2] != 1 || w[3] != 1 {
		t.Errorf("weights = %v, want [2 1 1 1]", w)
	}
}

func TestMalthusianCull(t *testing.T) {
	samples := []ThreadSample{
		mkSample(50_000, 20_000, 10, 300),
		mkSample(1_000, 20_000, 10, 300), // least window progress
		mkSample(30_000, 20_000, 10, 300),
	}
	p := Malthusian{MinAggFrac: 0.9, ProbeEvery: 4}
	active := []bool{true, true, true}

	// Healthy window: nothing demoted.
	p.Cull(&CullState{Samples: samples, Active: active, Window: 1, AggIPC: 1.0, PeakIPC: 1.0})
	if !active[0] || !active[1] || !active[2] {
		t.Fatalf("healthy window demoted a thread: %v", active)
	}
	// Collapsed window: the worst-progress thread is demoted.
	p.Cull(&CullState{Samples: samples, Active: active, Window: 2, AggIPC: 0.5, PeakIPC: 1.0})
	if active[1] || !active[0] || !active[2] {
		t.Fatalf("collapse must demote thread 1 only: %v", active)
	}
	// Still collapsed: demote the next worst; but never the last one.
	p.Cull(&CullState{Samples: samples, Active: active, Window: 3, AggIPC: 0.5, PeakIPC: 1.0})
	if active[2] || !active[0] {
		t.Fatalf("second collapse must demote thread 2: %v", active)
	}
	p.Cull(&CullState{Samples: samples, Active: active, Window: 5, AggIPC: 0.1, PeakIPC: 1.0})
	if !active[0] {
		t.Fatalf("the last active thread must never be demoted: %v", active)
	}
	// Probe window: everyone comes back.
	p.Cull(&CullState{Samples: samples, Active: active, Window: 8, AggIPC: 0.1, PeakIPC: 1.0})
	if !active[0] || !active[1] || !active[2] {
		t.Fatalf("probe window must reactivate all threads: %v", active)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name, PolicyParams{})
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("PolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if p, err := PolicyByName("", PolicyParams{}); err != nil || p.Name() != "event-only" {
		t.Errorf("empty name = (%v, %v), want event-only", p, err)
	}
	if _, err := PolicyByName("round-robin", PolicyParams{}); err == nil {
		t.Error("unknown policy name must error")
	}
	// Defaults: fairness-family policies fall back to F = 1/2,
	// time-share to 50k cycles.
	if p, _ := PolicyByName("fairness", PolicyParams{}); p.(Fairness).F != 0.5 {
		t.Errorf("fairness default F = %v, want 0.5", p.(Fairness).F)
	}
	if p, _ := PolicyByName("grouped-fairness", PolicyParams{}); p.(GroupedFairness).F != 0.5 {
		t.Errorf("grouped-fairness default F = %v, want 0.5", p.(GroupedFairness).F)
	}
	if g := mustGrouped(t); g.MissyWeight != 2 || g.FriendlyWeight != 1 {
		t.Errorf("grouped-fairness default weights = %v:%v, want 2:1", g.MissyWeight, g.FriendlyWeight)
	}
	if p, _ := PolicyByName("time-share", PolicyParams{}); p.(TimeShare).QuotaCycles != 50_000 {
		t.Errorf("time-share default quota = %v, want 50000", p.(TimeShare).QuotaCycles)
	}
	if p, _ := PolicyByName("fairness", PolicyParams{F: 0.25}); p.(Fairness).F != 0.25 {
		t.Error("explicit F must pass through")
	}
}

func mustGrouped(t *testing.T) GroupedFairness {
	t.Helper()
	p, err := PolicyByName("grouped-fairness", PolicyParams{})
	if err != nil {
		t.Fatal(err)
	}
	return p.(GroupedFairness)
}

// zooPolicies returns one configured instance of every policy for the
// shared property tests.
func zooPolicies() []Policy {
	return []Policy{
		EventOnly{},
		Fairness{F: 1}, Fairness{F: 0.25}, Fairness{F: 0},
		TimeShare{QuotaCycles: 20_000}, TimeShare{},
		GroupedFairness{F: 1, CPMSplit: 3000},
		GroupedFairness{F: 0.5},
		GroupedFairness{F: 0.5, Invert: true},
		WFQGrant{}, WFQGrant{Weights: []float64{2, 1, 1}},
		Malthusian{}, Malthusian{MinAggFrac: 0.8, ProbeEvery: 4},
	}
}

// propertySampleSets is the degenerate-input corpus from the issue:
// F = 0 is covered by the policy list above; the sample shapes cover
// all-zero CPM windows, the single-thread degenerate, and a 64-thread
// slice.
func propertySampleSets() [][]ThreadSample {
	sets := [][]ThreadSample{
		nil,
		{},
		{mkSample(1_000, 400, 1, 300)}, // single-thread degenerate
		{mkSample(0, 0, 0, 300), mkSample(0, 0, 0, 300)},               // all-empty
		{mkSample(1_000, 400, 0, 300), mkSample(900, 500, 0, 300)},     // zero misses
		{mkSample(0, 100_000, 50, 300), mkSample(0, 100_000, 50, 300)}, // all-zero IPM/IPC
		groupedSamples(),
		{ // hand-poisoned rates: NaN/Inf must not propagate
			{Window: mkSample(1, 1, 1, 300).Window, IPM: math.NaN(), CPM: math.Inf(1), EstST: math.NaN()},
			{Window: mkSample(1, 1, 1, 300).Window, IPM: math.Inf(1), CPM: 0, EstST: math.Inf(1)},
		},
	}
	wide := make([]ThreadSample, 64)
	for i := range wide {
		wide[i] = mkSample(uint64(1_000*(i+1)), uint64(400*(i+1)), uint64(i%7), 300)
	}
	return append(sets, wide)
}

// TestPolicyQuotaProperties pins the invariants every policy (seed and
// zoo) must satisfy for arbitrary ThreadSample slices: the quota slice
// has the input length, and every quota is finite and non-negative.
func TestPolicyQuotaProperties(t *testing.T) {
	for _, p := range zooPolicies() {
		for si, samples := range propertySampleSets() {
			qs := p.Quotas(samples, 300)
			if len(qs) != len(samples) {
				t.Fatalf("%s set %d: len(quotas) = %d, want %d", p.Name(), si, len(qs), len(samples))
			}
			for i, q := range qs {
				if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
					t.Errorf("%s set %d: quota[%d] = %v; must be finite and non-negative", p.Name(), si, i, q)
				}
			}
			if g, ok := p.(Granter); ok {
				w := g.GrantWeights(samples)
				for i, v := range w {
					if i < len(samples) && (math.IsNaN(v) || math.IsInf(v, 0) || v <= 0) {
						t.Errorf("%s set %d: weight[%d] = %v; must be finite positive", p.Name(), si, i, v)
					}
				}
			}
		}
	}
}

// FuzzPolicyQuotas feeds arbitrary three-thread counter windows (plus
// a fairness target) through every policy and asserts the same
// invariants as TestPolicyQuotaProperties. Wired alongside the
// Fingerprint/Validate fuzzers in ci (go test -fuzz is opt-in; the
// seed corpus always runs).
func FuzzPolicyQuotas(f *testing.F) {
	f.Add(1.0, uint64(150_000), uint64(60_000), uint64(10),
		uint64(10_000), uint64(4_000), uint64(10),
		uint64(0), uint64(0), uint64(0))
	f.Add(0.0, uint64(0), uint64(100_000), uint64(50),
		uint64(1), uint64(1), uint64(1),
		uint64(1<<40), uint64(1), uint64(1<<40))
	f.Add(0.25, uint64(1_000), uint64(400), uint64(0),
		uint64(900), uint64(500), uint64(0),
		uint64(12_000), uint64(6_000), uint64(10))
	f.Fuzz(func(t *testing.T, fTarget float64,
		i1, c1, m1, i2, c2, m2, i3, c3, m3 uint64) {
		samples := []ThreadSample{
			mkSample(i1, c1, m1, 300),
			mkSample(i2, c2, m2, 300),
			mkSample(i3, c3, m3, 300),
		}
		policies := []Policy{
			Fairness{F: fTarget},
			GroupedFairness{F: fTarget},
			GroupedFairness{F: fTarget, CPMSplit: 3000, Invert: true},
			TimeShare{QuotaCycles: fTarget * 1000},
			WFQGrant{Weights: []float64{fTarget, 1}},
			Malthusian{MinAggFrac: fTarget},
		}
		for _, p := range policies {
			qs := p.Quotas(samples, 300)
			if len(qs) != len(samples) {
				t.Fatalf("%s: len(quotas) = %d, want %d", p.Name(), len(qs), len(samples))
			}
			for i, q := range qs {
				if math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
					t.Fatalf("%s: quota[%d] = %v for samples %+v", p.Name(), i, q, samples)
				}
			}
		}
	})
}

// testCullOne is a test-only Culler that permanently demotes every
// thread but index 0 — the degenerate mask that exercises switch
// suppression and the single-thread fast-forward fallback.
type testCullOne struct{ EventOnly }

func (testCullOne) Name() string { return "test-cull-one" }
func (testCullOne) Cull(st *CullState) {
	for i := range st.Active {
		st.Active[i] = i == 0
	}
}

// TestCullerSuppressesSwitches runs a pair under a Culler that demotes
// the victim at the first Δ sample: from then on the machine must
// behave like a single-thread run (no switches, no livelock) while the
// demoted thread keeps its architectural state.
func TestCullerSuppressesSwitches(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	c := mustController(pipe, testConfig(testCullOne{}), threads)
	c.RunCycles(200_000)

	act := c.Active()
	if !act[0] || act[1] {
		t.Fatalf("active mask = %v, want [true false]", act)
	}
	// Switches can only have happened before the first sample (cycle
	// 20k); afterwards every switch cause is suppressed.
	preSample := c.Switches().Total()
	before0 := threads[0].Retired()
	c.RunCycles(200_000)
	if got := c.Switches().Total(); got != preSample {
		t.Errorf("switches grew from %d to %d after the cull; must be suppressed", preSample, got)
	}
	if threads[0].Retired() == before0 {
		t.Error("sole active thread stopped retiring: suppression livelocked the machine")
	}
	if c.Current() != 0 {
		t.Errorf("running thread = %d, want 0", c.Current())
	}
}

// TestZooFastForwardLockstep extends the engine-equivalence guarantee
// to the zoo mechanism paths: WFQ grant ordering (Granter) and switch
// suppression under a culled mask (Culler) must be bit-identical
// between the fast-forward and cycle-by-cycle engines at every slice
// boundary.
func TestZooFastForwardLockstep(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
	}{
		{"wfq", WFQGrant{Weights: []float64{2, 1, 1}}},
		{"grouped", GroupedFairness{F: 0.5, CPMSplit: 3000, MissyWeight: 2, FriendlyWeight: 1}},
		{"malthusian", Malthusian{MinAggFrac: 0.95, ProbeEvery: 3}},
		{"cull-one", testCullOne{}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mk := func() *Controller {
				pipe := newMachine()
				threads := []*Thread{
					newThread(hogProfile(), 0),
					newThread(victimProfile(), 1),
					newThread(victimProfile2(), 2),
				}
				return mustController(pipe, testConfig(tc.policy), threads)
			}
			ff := mk()
			ff.SetFastForward(true)
			ref := mk()
			const total = 300_000
			for _, slice := range []uint64{977, 1 << 62} {
				for ff.now < total {
					ff.Advance(1<<62, total, 0, slice)
					ref.Advance(1<<62, total, 0, slice)
					sa, sb := observableState(ff), observableState(ref)
					if sa != sb {
						t.Fatalf("engines diverged near cycle %d\nfast-forward: %s\nreference:    %s", ff.now, sa, sb)
					}
				}
			}
			if ff.Switches().Total() == 0 {
				t.Fatal("zoo policy produced no switches; lockstep test lost its subject")
			}
		})
	}
}

// TestWFQGrantOrderFollowsCredits pins the Granter dispatch rule on
// the controller: with strongly asymmetric weights the heavy thread
// must accumulate residency roughly in proportion, and grant credits
// must stay finite and monotone.
func TestWFQGrantOrderFollowsCredits(t *testing.T) {
	pipe := newMachine()
	// Three copies of the same missy profile so miss behaviour is
	// symmetric and only the weights differentiate residency.
	threads := []*Thread{
		newThread(victimProfile(), 0),
		newThread(victimProfile(), 1),
		newThread(victimProfile(), 2),
	}
	c := mustController(pipe, testConfig(WFQGrant{Weights: []float64{4, 1, 1}}), threads)
	c.RunCycles(600_000)

	if c.Switches().Total() == 0 {
		t.Fatal("no switches")
	}
	cyc := make([]float64, 3)
	for i, th := range threads {
		cnt := th.Counters()
		if cnt.Instrs == 0 {
			t.Fatalf("thread %d starved outright under WFQ", i)
		}
		cyc[i] = float64(cnt.Cycles)
	}
	// Weight 4 vs 1: the heavy thread must get visibly more residency
	// than either light thread (strict ordering, not the exact 4:1 —
	// miss stalls and the max-cycles quota blur the ratio).
	if cyc[0] <= cyc[1] || cyc[0] <= cyc[2] {
		t.Errorf("weighted thread residency %v not dominant; WFQ grant ordering inert", cyc)
	}
	// And the light threads must be near-symmetric.
	if r := cyc[1] / cyc[2]; r < 0.5 || r > 2 {
		t.Errorf("equal-weight threads diverged: %v", cyc)
	}
	for i, cr := range c.grantCredit {
		if math.IsNaN(cr) || math.IsInf(cr, 0) || cr < 0 {
			t.Errorf("grant credit[%d] = %v; must be finite non-negative", i, cr)
		}
	}
}

// TestMalthusianControllerInvariants runs an overcommitted 4-thread
// missy mix under Malthusian and asserts the mechanism-level
// guarantees: the mask never empties, probes keep every thread making
// some progress, and the run terminates.
func TestMalthusianControllerInvariants(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{
		newThread(victimProfile(), 0),
		newThread(victimProfile(), 1),
		newThread(victimProfile2(), 2),
		newThread(hogProfile(), 3),
	}
	c := mustController(pipe, testConfig(Malthusian{MinAggFrac: 0.99, ProbeEvery: 3}), threads)
	c.RunCycles(600_000)

	anyActive := false
	for _, on := range c.Active() {
		anyActive = anyActive || on
	}
	if !anyActive {
		t.Fatal("active mask emptied; the controller floor failed")
	}
	for i, th := range threads {
		if th.Retired() == 0 {
			t.Errorf("thread %d retired nothing; reactivation probes must keep demoted threads alive", i)
		}
	}
	if c.Switches().Total() == 0 {
		t.Fatal("no switches at all")
	}
}

// TestGroupedFairnessName exercises the remaining Name() surfaces so
// the policy list in PolicyNames stays honest.
func TestZooPolicyNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{GroupedFairness{}, WFQGrant{}, Malthusian{}} {
		n := p.Name()
		if n == "" || names[n] {
			t.Errorf("policy name %q empty or duplicated", n)
		}
		names[n] = true
	}
	found := 0
	for _, n := range PolicyNames() {
		if names[n] {
			found++
		}
	}
	if found != 3 {
		t.Errorf("PolicyNames() missing zoo entries: %v", PolicyNames())
	}
}
