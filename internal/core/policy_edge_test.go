package core

import (
	"fmt"
	"math"
	"testing"

	"soemt/internal/stats"
)

// Edge-case tests for the quota/deficit mechanism: behaviours at the
// boundaries of the paper's formulas (Δ sampling edges, F -> 0) and
// the fast-forward engine under the TimeShare baseline.

// TestDeficitCarriesAcrossDeltaBoundary pins the §3.2 deficit-counter
// semantics at a sampling edge: the Δ sample recomputes the quota but
// must NOT clobber the running thread's deficit — the deficit only
// decays with retirement and is only recharged at switch-in. A
// regression that reset deficits on every sample would let a hog run a
// fresh full quota after each Δ regardless of how much credit it had
// already burned.
func TestDeficitCarriesAcrossDeltaBoundary(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
	c := mustController(pipe, testConfig(Fairness{F: 1}), threads)

	checked := 0
	for boundary := uint64(1); boundary <= 30 && checked < 3; boundary++ {
		for c.now < boundary*c.cfg.Delta {
			c.Step()
		}
		cur := c.threads[c.cur]
		if cur.quota <= 0 || cur.deficit <= 0 {
			continue // no binding quota at this edge; try the next one
		}
		before := cur.deficit
		retiredBefore := cur.retired
		curIdx := c.cur
		c.Step() // this Step runs sample() before executing the cycle
		if len(c.Samples()) != int(boundary) {
			t.Fatalf("expected sample %d to fire at cycle %d", boundary, c.now-1)
		}
		if c.cur != curIdx {
			continue // boundary cycle also switched; deficit was recharged
		}
		wantDeficit := before - float64(cur.retired-retiredBefore)
		if math.Abs(cur.deficit-wantDeficit) > 1e-9 {
			t.Fatalf("Δ boundary %d: deficit %.4f, want %.4f (carry %.4f minus %d retired); sampling must not reset deficits",
				boundary, cur.deficit, wantDeficit, before, cur.retired-retiredBefore)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("never observed a binding quota at a Δ boundary; test lost its subject")
	}
}

// TestQuotasAtZeroAndTinyF pins the F -> 0 limit of Eq. 9 for both
// policies: at F=0 enforcement is off, so every quota must be exactly
// zero (zero disables forced switches — the "unbounded IPSw" of the
// paper) and nothing may divide by zero; at tiny positive F the raw
// Eq. 9 value explodes past IPM, which saturates the quota to
// "disabled" rather than overflowing to Inf/NaN.
func TestQuotasAtZeroAndTinyF(t *testing.T) {
	if q := IPSwQuota(15000, 2.381, 400, 300, 0); q != 0 {
		t.Errorf("IPSwQuota at F=0 = %v, want 0 (disabled)", q)
	}
	if q := IPSwQuota(15000, 2.381, 400, 300, 1e-300); math.IsInf(q, 0) || math.IsNaN(q) || q > 15000 {
		t.Errorf("IPSwQuota at tiny F = %v, want saturated at IPM", q)
	}

	samples := []ThreadSample{
		{Window: stats.Counters{Instrs: 50_000, Cycles: 100_000, Misses: 10}, IPM: 5000, CPM: 10_000, EstST: 0.485},
		{Window: stats.Counters{Instrs: 20_000, Cycles: 100_000, Misses: 200}, IPM: 100, CPM: 500, EstST: 0.125},
	}
	for _, f := range []float64{0, -1} {
		for i, q := range (Fairness{F: f}).Quotas(samples, 300) {
			if q != 0 {
				t.Errorf("Fairness{F=%v} quota[%d] = %v, want 0", f, i, q)
			}
		}
	}
	for _, f := range []float64{1e-12, 1e-300} {
		for i, q := range (Fairness{F: f}).Quotas(samples, 300) {
			if math.IsInf(q, 0) || math.IsNaN(q) {
				t.Errorf("Fairness{F=%v} quota[%d] = %v; must stay finite", f, i, q)
			}
			// Eq. 9 saturates at IPM, and the implementation encodes
			// "saturated" as 0 = no forced switches.
			if q != 0 {
				t.Errorf("Fairness{F=%v} quota[%d] = %v, want 0 (saturated at IPM)", f, i, q)
			}
		}
	}

	// TimeShare's degenerate configurations must be equally safe: a
	// non-positive cycle quota disables enforcement, and an empty
	// window (IPC 0) falls back to a finite conversion rate.
	for i, q := range (TimeShare{QuotaCycles: 0}).Quotas(samples, 300) {
		if q != 0 {
			t.Errorf("TimeShare{0} quota[%d] = %v, want 0", i, q)
		}
	}
	empty := []ThreadSample{{}, {}}
	for i, q := range (TimeShare{QuotaCycles: 400}).Quotas(empty, 300) {
		if math.IsInf(q, 0) || math.IsNaN(q) || q <= 0 {
			t.Errorf("TimeShare on empty window quota[%d] = %v, want finite positive", i, q)
		}
	}
}

// TestFairnessZeroFNeverForcesSwitches runs the full controller with
// Fairness{F: 0} (as distinct from EventOnly) and asserts the
// mechanism stays inert: no quota-induced switches, every deficit and
// quota finite, behaviour indistinguishable from event-only SOE.
func TestFairnessZeroFNeverForcesSwitches(t *testing.T) {
	c := runPair(t, Fairness{F: 0}, 300_000)
	if sw := c.Switches(); sw.Quota != 0 {
		t.Errorf("F=0 produced %d quota switches, want 0", sw.Quota)
	}
	if len(c.Samples()) == 0 {
		t.Fatal("no Δ samples recorded")
	}
	for i, th := range c.Threads() {
		if th.quota != 0 {
			t.Errorf("thread %d quota = %v at F=0, want 0", i, th.quota)
		}
		if math.IsInf(th.deficit, 0) || math.IsNaN(th.deficit) {
			t.Errorf("thread %d deficit = %v, must stay finite", i, th.deficit)
		}
	}

	ref := runPair(t, EventOnly{}, 300_000)
	if got, want := c.Switches(), ref.Switches(); got != want {
		t.Errorf("Fairness{F:0} switch stats %+v differ from EventOnly %+v", got, want)
	}
}

// TestFastForwardLockstepTimeShare is the TimeShare variant of
// TestFastForwardLockstep: the §6 baseline converts a cycle quota into
// an instruction quota each Δ, exercising deficit edges the Fairness
// policy never produces (quotas bind on BOTH threads, including the
// missy one), so the skip-clipping logic is compared state-for-state
// against the reference engine here too.
func TestFastForwardLockstepTimeShare(t *testing.T) {
	for _, slice := range []uint64{64, 1021} {
		slice := slice
		t.Run(fmt.Sprintf("slice-%d", slice), func(t *testing.T) {
			t.Parallel()
			mk := func() *Controller {
				pipe := newMachine()
				threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
				return mustController(pipe, testConfig(TimeShare{QuotaCycles: 5_000}), threads)
			}
			ff := mk()
			ff.SetFastForward(true)
			ref := mk()
			const total = 400_000
			for ff.now < total {
				ff.Advance(1<<62, 0, 0, slice)
				ref.Advance(1<<62, 0, 0, slice)
				sa, sb := observableState(ff), observableState(ref)
				if sa != sb {
					t.Fatalf("diverged near cycle %d\nfast-forward: %s\nreference:    %s", ff.now, sa, sb)
				}
			}
		})
	}
}
