// Package core implements the paper's primary contribution: the
// Switch-on-Event multithreading controller with runtime fairness
// enforcement.
//
// The controller owns the pipeline and N thread contexts. It switches
// the active thread on last-level-cache miss events (the ROB-head
// trigger from §4.1) and, when a fairness policy is active, on forced
// switch points maintained by per-thread deficit counters (§3.2). A
// sampling loop reads the per-thread hardware counters every Δ cycles,
// estimates each thread's single-thread IPC (Eqs. 11–13), and
// recomputes the per-thread instructions-per-switch quota IPSw from
// Eq. 9.
package core

import (
	"math"

	"soemt/internal/stats"
)

// IPSwQuota evaluates Eq. 9 for one thread:
//
//	IPSw_j = min(IPM_j, IPC_ST_j/F · (CPM_min + Miss_lat))
//
// F is the target fairness in (0, 1]. A non-positive return means the
// thread needs no forced switches (it switches on misses at least as
// often as the quota would demand).
func IPSwQuota(ipmJ, ipcSTJ, cpmMin, missLat, f float64) float64 {
	if f <= 0 {
		return 0
	}
	q := ipcSTJ / f * (cpmMin + missLat)
	if ipmJ < q {
		return ipmJ
	}
	return q
}

// ThreadSample is the per-thread view a Policy receives each sampling
// period: the windowed hardware counters plus derived rates.
type ThreadSample struct {
	Window stats.Counters // Δ-window deltas of Instrs/Cycles/Misses
	IPM    float64        // Eq. 11
	CPM    float64        // Eq. 12
	EstST  float64        // Eq. 13: estimated single-thread IPC
}

// Policy computes per-thread instruction quotas (IPSw) from sampled
// counters. A quota q[i] <= 0 disables forced switches for thread i.
type Policy interface {
	Name() string
	Quotas(samples []ThreadSample, missLat float64) []float64
}

// EventOnly is the baseline SOE policy (F = 0): threads switch only on
// last-level cache misses; no fairness enforcement.
type EventOnly struct{}

// Name implements Policy.
func (EventOnly) Name() string { return "event-only" }

// Quotas implements Policy: no forced switches.
func (EventOnly) Quotas(samples []ThreadSample, missLat float64) []float64 {
	return make([]float64, len(samples))
}

// Fairness enforces the paper's mechanism with target fairness F
// (0 < F <= 1). Every sampling period it recomputes IPSw_j per Eq. 9
// from the counter-estimated IPM, CPM and IPC_ST. The quota math is
// N-thread aware: the Eq. 9 wait term scales with the number of
// co-runners (see Quotas).
type Fairness struct {
	F float64
}

// Name implements Policy.
func (p Fairness) Name() string { return "fairness" }

// Quotas implements Policy. The paper states Eq. 9 for two threads:
//
//	IPSw_j = min(IPM_j, IPC_ST_j/F · (CPM_min + Miss_lat))
//
// where (CPM_min + Miss_lat) bounds the cycles thread j spends
// switched out between two of its visits: its single co-runner
// executes for at least CPM_min cycles before its own miss, whose
// resolution costs at most Miss_lat more. With N threads, j waits for
// N-1 co-runner visits per round, so the wait term generalizes to
//
//	(N-1)·CPM_min + Miss_lat
//
// (the co-runners' miss latencies overlap each other's execution; only
// the last unoverlapped resolution is charged). For N = 2 the factor
// is 1 and the formula reduces exactly to the paper's — the N = 2
// differential suite in internal/sim pins this bit-identically against
// the seed pair engine. Before this generalization the implementation
// silently used the two-thread wait term for every N, under-budgeting
// the quota by up to (N-1)× and over-forcing switches on N ≥ 3 runs
// (see TestFairnessQuotasThreeSampleNAware).
func (p Fairness) Quotas(samples []ThreadSample, missLat float64) []float64 {
	q := make([]float64, len(samples))
	if len(samples) < 2 || p.F <= 0 {
		return q
	}
	// Threads with an empty window (never ran this Δ — prevented by
	// the max-cycles quota, but guarded anyway) contribute no CPM and
	// receive no quota.
	cpmMin := math.Inf(1)
	for _, s := range samples {
		if s.Window.Cycles > 0 && s.CPM < cpmMin {
			cpmMin = s.CPM
		}
	}
	if math.IsInf(cpmMin, 1) {
		return q
	}
	wait := float64(len(samples)-1)*cpmMin + missLat
	for i, s := range samples {
		if s.Window.Cycles == 0 {
			continue
		}
		// Eq. 9: IPSw_j = min(IPM_j, IPC_ST_j/F · wait).
		// When the formula reaches IPM_j, miss-induced switches alone
		// already produce that average ("there is no way to increase
		// IPSw_j to a value greater than IPM_j"), so no forced switch
		// points are needed — enforcing IPM_j with a deficit counter
		// would instead fire in every shorter-than-average miss gap
		// and penalize naturally fair pairs.
		raw := s.EstST / p.F * wait
		if raw < s.IPM {
			q[i] = raw
		}
	}
	return q
}

// TimeShare is the §6 baseline: OS-style time sharing that aims for a
// fixed number of cycles between switches, regardless of thread
// characteristics. The cycle quota is converted to an instruction
// quota using each thread's observed multithreaded IPC over the
// sampling window.
type TimeShare struct {
	QuotaCycles float64
}

// Name implements Policy.
func (p TimeShare) Name() string { return "time-share" }

// Quotas implements Policy. QuotaCycles is a per-visit residency
// target, so it is deliberately independent of the thread count: with
// N threads each visit is still capped at QuotaCycles, and a thread
// simply waits through N-1 such visits per round. The conversion to an
// instruction quota is per-thread (each thread's own windowed IPC), so
// the policy is N-aware without any pair-specific term.
func (p TimeShare) Quotas(samples []ThreadSample, missLat float64) []float64 {
	q := make([]float64, len(samples))
	if len(samples) < 2 || p.QuotaCycles <= 0 {
		return q
	}
	for i, s := range samples {
		ipc := s.Window.IPC()
		if ipc <= 0 {
			ipc = 1
		}
		q[i] = p.QuotaCycles * ipc
	}
	return q
}

// NaiveFairness is the ablation variant of Fairness whose deficit
// counters are reset on every switch instead of carrying the
// miss-truncated leftover (DESIGN.md §5: deficit counting vs naive
// fixed quota). It is selected via Config.NaiveDeficit; the quota math
// is identical.
type NaiveFairness = Fairness
