package core

import (
	"fmt"
	"math"
	"sort"
)

// This file is the policy zoo beyond the paper (ROADMAP item 3 /
// DESIGN.md §15). The paper's controller fixes two mechanism choices:
// the next thread is always the round-robin successor, and every
// thread stays dispatch-eligible forever. The zoo policies relax
// exactly those two choices through optional interfaces:
//
//   - Granter: the policy chooses the next thread by weighted fair
//     queueing over switch grants (WFQGrant, GroupedFairness);
//   - Culler: the policy may demote threads to a passive cold set and
//     periodically probe them back (Malthusian).
//
// A policy that implements neither runs on the exact seed code path —
// the N = 2 differential suite in internal/sim pins EventOnly,
// Fairness and TimeShare bit-identically against the pre-zoo engine.

// Granter is an optional Policy extension: a policy that orders switch
// grants by weighted fair queueing instead of round-robin rotation.
// The controller keeps a per-thread virtual-time credit; a completed
// visit of thread i charges credit_i += visit_cycles / weight_i, and
// every switch dispatches the eligible thread with the least credit
// (ties broken by lowest index, so grant order is deterministic).
//
// GrantWeights returns per-thread weights for the coming Δ window,
// recomputed at every sample from the window counters. Non-positive,
// non-finite or missing weights default to 1; before the first sample
// every weight is 1.
type Granter interface {
	GrantWeights(samples []ThreadSample) []float64
}

// CullState is the view a Culler receives at every Δ sample.
type CullState struct {
	// Samples are the window's per-thread counter estimates, indexed
	// like the controller's thread slice.
	Samples []ThreadSample
	// Active is the dispatch-eligibility mask, mutated in place. The
	// controller re-activates the running thread if a cull empties the
	// mask, so at least one thread always remains dispatchable.
	Active []bool
	// Window is the 1-based Δ-sample ordinal since machine start.
	Window int
	// AggIPC is this window's aggregate IPC (all threads' retired
	// instructions over the window's wall cycles).
	AggIPC float64
	// PeakIPC is the best AggIPC observed so far.
	PeakIPC float64
}

// Culler is an optional Policy extension: a policy that demotes
// threads to a passive cold set when multithreading itself is
// destroying throughput (Malthusian Locks' culling insight applied to
// SOE thread contexts). Demoted threads receive no switch grants until
// reactivated; their architectural state is untouched.
type Culler interface {
	Cull(st *CullState)
}

// GroupedFairness is the LFOC-style policy: threads are classified by
// their windowed CPM into a cache-friendly and a "missy" group, Eq. 9
// quotas are computed with each group's own CPM floor, and switch
// grants are weighted fair-queued across the groups.
//
// Rationale: plain Fairness ties every thread's Eq. 9 wait term to the
// global CPM minimum — the missiest thread's miss distance — which
// makes the cache-friendly hogs' forced-switch quotas maximally tight.
// Grouping relaxes the friendly group's budget to its own (larger) CPM
// floor, removing forced switches, and compensates for the looser
// quota pressure by weighting switch grants toward the missy group —
// whose short pre-miss visits the WFQ credit already favors. The
// hypothesis experiment for this policy quantifies the trade: fewer
// forced switches and at-least-held fairness versus plain Fairness at
// the same F.
type GroupedFairness struct {
	// F is the target fairness in (0, 1], as in Fairness.
	F float64
	// CPMSplit is the cycles-per-miss boundary: threads with window
	// CPM < CPMSplit are missy (a short miss distance means frequent
	// misses), the rest cache-friendly. A non-positive split uses the
	// midpoint of the window's observed CPM range (threads then
	// regroup adaptively as phases change).
	CPMSplit float64
	// MissyWeight and FriendlyWeight are the WFQ grant weights applied
	// to the members of each group (non-positive values default to 1).
	MissyWeight, FriendlyWeight float64
	// Invert deliberately mis-groups every thread at lookup time: a
	// cache-friendly thread is budgeted and grant-weighted as if it
	// were missy (inheriting the missy group's large CPM floor, which
	// saturates Eq. 9 and disables its forced switches) and vice versa.
	// It exists as the golden suite's negative control — a mis-grouped
	// policy must fail the 4-thread starvation invariant — and is never
	// useful outside tests.
	Invert bool
}

// Name implements Policy.
func (p GroupedFairness) Name() string { return "grouped-fairness" }

// classify returns the missy mask for samples (true = missy). Threads
// with empty windows are left in the friendly group; they contribute
// no CPM evidence either way.
func (p GroupedFairness) classify(samples []ThreadSample) []bool {
	split := p.CPMSplit
	if split <= 0 || math.IsNaN(split) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			if s.Window.Cycles == 0 || !finiteNonNeg(s.CPM) {
				continue
			}
			lo = math.Min(lo, s.CPM)
			hi = math.Max(hi, s.CPM)
		}
		if math.IsInf(lo, 1) {
			return make([]bool, len(samples))
		}
		split = (lo + hi) / 2
	}
	missy := make([]bool, len(samples))
	for i, s := range samples {
		missy[i] = s.Window.Cycles > 0 && s.CPM < split
	}
	return missy
}

// Quotas implements Policy: Eq. 9 with the wait term built from the
// thread's own group's CPM floor (the co-runner count stays global —
// a thread waits for every other thread's visit regardless of group).
func (p GroupedFairness) Quotas(samples []ThreadSample, missLat float64) []float64 {
	q := make([]float64, len(samples))
	if len(samples) < 2 || p.F <= 0 {
		return q
	}
	missy := p.classify(samples)
	cpmMin := [2]float64{math.Inf(1), math.Inf(1)} // [friendly, missy]
	for i, s := range samples {
		g := groupIdx(missy[i])
		if s.Window.Cycles > 0 && finiteNonNeg(s.CPM) && s.CPM < cpmMin[g] {
			cpmMin[g] = s.CPM
		}
	}
	others := float64(len(samples) - 1)
	for i, s := range samples {
		if s.Window.Cycles == 0 {
			continue
		}
		// Invert (the negative control) swaps the floor lookup, not the
		// group contents: each thread is budgeted with the OTHER
		// group's CPM floor.
		floor := cpmMin[groupIdx(missy[i] != p.Invert)]
		if math.IsInf(floor, 1) {
			continue
		}
		raw := s.EstST / p.F * (others*floor + missLat)
		if finiteNonNeg(raw) && raw < s.IPM {
			q[i] = raw
		}
	}
	return q
}

// GrantWeights implements Granter: group-level weights, so grant
// bandwidth is split across the groups in MissyWeight:FriendlyWeight
// proportion independently of how many threads each group holds.
func (p GroupedFairness) GrantWeights(samples []ThreadSample) []float64 {
	missy := p.classify(samples)
	w := make([]float64, len(samples))
	mw, fw := p.MissyWeight, p.FriendlyWeight
	if !finitePos(mw) {
		mw = 1
	}
	if !finitePos(fw) {
		fw = 1
	}
	for i := range w {
		if missy[i] != p.Invert {
			w[i] = mw
		} else {
			w[i] = fw
		}
	}
	return w
}

func groupIdx(missy bool) int {
	if missy {
		return 1
	}
	return 0
}

// WFQGrant is the NoC-style weighted-fair-queueing policy: switch
// grants (not cycle quotas) are scheduled by per-thread deficit
// credits, so over time each thread's share of core residency
// converges to its weight share even when miss behaviour is wildly
// asymmetric. Switches themselves remain event-driven (miss and
// max-cycles); the policy issues no Eq. 9 forced-switch quotas.
type WFQGrant struct {
	// Weights[i] is thread i's grant weight. Missing or non-positive
	// entries default to 1; an empty slice is plain fair queueing.
	Weights []float64
}

// Name implements Policy.
func (p WFQGrant) Name() string { return "wfq" }

// Quotas implements Policy: no forced switch points.
func (p WFQGrant) Quotas(samples []ThreadSample, missLat float64) []float64 {
	return make([]float64, len(samples))
}

// GrantWeights implements Granter.
func (p WFQGrant) GrantWeights(samples []ThreadSample) []float64 {
	w := make([]float64, len(samples))
	for i := range w {
		if i < len(p.Weights) && finitePos(p.Weights[i]) {
			w[i] = p.Weights[i]
		} else {
			w[i] = 1
		}
	}
	return w
}

// Malthusian demotes the worst-throughput thread to a passive cold set
// whenever the aggregate window IPC collapses below a fraction of the
// best aggregate seen, and periodically reactivates the cold set to
// probe whether conditions changed (Malthusian Locks: culling excess
// threads under scalability collapse beats fair sharing of a thrashing
// resource — here the shared cache hierarchy, not a lock).
type Malthusian struct {
	// MinAggFrac in (0, 1]: a window whose aggregate IPC falls below
	// MinAggFrac × peak demotes one thread. Non-positive defaults to
	// 0.9.
	MinAggFrac float64
	// ProbeEvery reactivates every demoted thread on each
	// ProbeEvery-th Δ window for one probe window. Non-positive
	// defaults to 8.
	ProbeEvery int
}

// Name implements Policy.
func (p Malthusian) Name() string { return "malthusian" }

// Quotas implements Policy: no forced switch points — culling, not
// quota enforcement, is the mechanism.
func (p Malthusian) Quotas(samples []ThreadSample, missLat float64) []float64 {
	return make([]float64, len(samples))
}

// Cull implements Culler.
func (p Malthusian) Cull(st *CullState) {
	probeEvery := p.ProbeEvery
	if probeEvery <= 0 {
		probeEvery = 8
	}
	if st.Window%probeEvery == 0 {
		// Reactivation probe: run everyone for one window and let the
		// next windows re-demote if the collapse persists.
		for i := range st.Active {
			st.Active[i] = true
		}
		return
	}
	frac := p.MinAggFrac
	if !finitePos(frac) {
		frac = 0.9
	}
	if st.AggIPC >= frac*st.PeakIPC {
		return
	}
	// Demote the active thread with the least window progress; ties go
	// to the highest index (the "excess" thread joined last).
	nActive, worst := 0, -1
	for i, on := range st.Active {
		if !on {
			continue
		}
		nActive++
		if worst < 0 || st.Samples[i].Window.Instrs <= st.Samples[worst].Window.Instrs {
			worst = i
		}
	}
	if nActive > 1 && worst >= 0 {
		st.Active[worst] = false
	}
}

func finiteNonNeg(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0
}

func finitePos(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x > 0
}

// PolicyParams carries the CLI-surfaced knobs consumed by
// PolicyByName; zero values select each policy's documented default.
type PolicyParams struct {
	F           float64   // fairness target (fairness, grouped-fairness)
	QuotaCycles float64   // time-share per-visit cycle quota
	Weights     []float64 // wfq per-thread weights
	CPMSplit    float64   // grouped-fairness classification boundary
	MissyWeight float64   // grouped-fairness missy-group grant weight
	FriendWt    float64   // grouped-fairness friendly-group grant weight
	MinAggFrac  float64   // malthusian collapse threshold
	ProbeEvery  int       // malthusian reactivation period (Δ windows)
}

// PolicyNames lists every policy PolicyByName accepts, sorted.
func PolicyNames() []string {
	names := []string{
		EventOnly{}.Name(),
		Fairness{}.Name(),
		TimeShare{}.Name(),
		GroupedFairness{}.Name(),
		WFQGrant{}.Name(),
		Malthusian{}.Name(),
	}
	sort.Strings(names)
	return names
}

// PolicyByName constructs a zoo policy from its CLI name. Defaults:
// fairness and grouped-fairness fall back to F = 1/2, time-share to a
// 50,000-cycle quota.
func PolicyByName(name string, p PolicyParams) (Policy, error) {
	switch name {
	case "", "event-only":
		return EventOnly{}, nil
	case "fairness":
		if p.F <= 0 {
			p.F = 0.5
		}
		return Fairness{F: p.F}, nil
	case "time-share":
		if p.QuotaCycles <= 0 {
			p.QuotaCycles = 50_000
		}
		return TimeShare{QuotaCycles: p.QuotaCycles}, nil
	case "grouped-fairness":
		if p.F <= 0 {
			p.F = 0.5
		}
		if p.MissyWeight <= 0 {
			p.MissyWeight = 2
		}
		if p.FriendWt <= 0 {
			p.FriendWt = 1
		}
		return GroupedFairness{
			F: p.F, CPMSplit: p.CPMSplit,
			MissyWeight: p.MissyWeight, FriendlyWeight: p.FriendWt,
		}, nil
	case "wfq":
		return WFQGrant{Weights: p.Weights}, nil
	case "malthusian":
		return Malthusian{MinAggFrac: p.MinAggFrac, ProbeEvery: p.ProbeEvery}, nil
	}
	return nil, fmt.Errorf("core: unknown policy %q (have %v)", name, PolicyNames())
}
