package core

import (
	"math"

	"soemt/internal/stats"
)

// FairnessMetric implements the paper's metric (Eq. 4) for any thread
// count: the minimum over all thread pairs of the ratio of speedups,
// which equals min(speedup)/max(speedup). Speedup_j = IPC_SOE_j /
// IPC_ST_j. It returns 1 for fewer than two threads and 0 if any
// speedup is non-positive or non-finite (a completely starved or
// degenerate thread). stats.MinPairRatio is the canonical
// implementation, shared with the analytical model so the simulator
// and internal/model can never disagree about achieved fairness.
func FairnessMetric(speedups []float64) float64 {
	return stats.MinPairRatio(speedups)
}

// WeightedSpeedup is Snavely et al.'s metric: the sum of the
// individual threads' speedups (§1.1, §6).
func WeightedSpeedup(speedups []float64) float64 {
	var sum float64
	for _, s := range speedups {
		sum += s
	}
	return sum
}

// HarmonicFairness is Luo et al.'s metric: the harmonic mean of the
// individual threads' speedups (§6). The paper's Eq. 4 metric is
// strictly more conservative: enforcing it improves this metric but
// not vice versa.
func HarmonicFairness(speedups []float64) float64 {
	return stats.HarmonicMean(speedups)
}

// Speedups divides per-thread multithreaded IPC by single-thread IPC.
// Threads with non-positive IPC_ST yield speedup 0.
func Speedups(ipcSOE, ipcST []float64) []float64 {
	if len(ipcSOE) != len(ipcST) {
		panic("core: Speedups length mismatch")
	}
	out := make([]float64, len(ipcSOE))
	for i := range ipcSOE {
		if ipcST[i] > 0 {
			out[i] = ipcSOE[i] / ipcST[i]
		}
	}
	return out
}

// TruncatedFairness returns min(target, achieved), the quantity
// averaged in the paper's Figure 8 (right): truncation removes the
// bias of runs that are fair even without enforcement. A target of 0
// means no truncation (the F = 0 column).
func TruncatedFairness(target, achieved float64) float64 {
	if target <= 0 {
		return achieved
	}
	return math.Min(target, achieved)
}
