package core

import (
	"fmt"
	"testing"
)

// observableState summarizes every architecturally observable piece of
// controller + pipeline state. The issue-wake memo and other pure
// memoization caches are deliberately excluded: the fast-forward engine
// scans at a subset of the reference engine's cycles, so the caches may
// hold different (equally valid) bounds without any observable effect.
func observableState(c *Controller) string {
	s := fmt.Sprintf("now=%d cur=%d sw=%+v samples=%d pipe=%s",
		c.now, c.cur, c.switches, len(c.samples), c.pipe.String())
	for i, t := range c.threads {
		s += fmt.Sprintf(" t%d={cnt=%v ret=%d def=%.4f q=%.4f frs=%v sia=%d}",
			i, t.counters.Totals, t.retired, t.deficit, t.quota, t.firstRetireSeen, t.switchInAt)
	}
	return s
}

// TestFastForwardLockstep drives a fast-forward controller and a
// cycle-by-cycle reference over the same miss-heavy pair in small
// slices, comparing full observable state at every slice boundary.
// Unlike the end-to-end equivalence matrix in internal/sim, a failure
// here pinpoints the first divergent cycle window. The odd slice sizes
// exercise different skip clippings (the slice budget clips every
// jump).
func TestFastForwardLockstep(t *testing.T) {
	for _, slice := range []uint64{7, 64, 1021} {
		slice := slice
		t.Run(fmt.Sprintf("slice-%d", slice), func(t *testing.T) {
			t.Parallel()
			mk := func() *Controller {
				pipe := newMachine()
				threads := []*Thread{newThread(hogProfile(), 0), newThread(victimProfile(), 1)}
				return mustController(pipe, testConfig(Fairness{F: 1}), threads)
			}
			ff := mk()
			ff.SetFastForward(true)
			ref := mk()
			const total = 400_000
			for ff.now < total {
				ff.Advance(1<<62, 0, 0, slice)
				ref.Advance(1<<62, 0, 0, slice)
				sa, sb := observableState(ff), observableState(ref)
				if sa != sb {
					t.Fatalf("diverged near cycle %d\nfast-forward: %s\nreference:    %s", ff.now, sa, sb)
				}
			}
		})
	}
}

// TestFastForwardActuallySkips asserts the fast path engages: on a
// miss-bound single thread most wall cycles are idle, so the
// fast-forward run must reach the same cycle count with far fewer
// Step invocations. Step count is observed via a budget-1 probe being
// unnecessary — instead we check skipIdle directly.
func TestFastForwardActuallySkips(t *testing.T) {
	pipe := newMachine()
	th := newThread(victimProfile(), 0)
	c := mustController(pipe, testConfig(EventOnly{}), []*Thread{th})
	c.SetFastForward(true)
	var skipped uint64
	for c.now < 200_000 {
		if n := c.skipIdle(c.now + 100_000); n > 0 {
			skipped += n
		} else {
			c.Step()
		}
	}
	if frac := float64(skipped) / float64(c.now); frac < 0.25 {
		t.Fatalf("fast-forward skipped only %.1f%% of cycles on a miss-bound thread", frac*100)
	}
}
