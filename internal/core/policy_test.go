package core

import (
	"math"
	"testing"

	"soemt/internal/stats"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Example 2 of the paper: IPC_no_miss = 2.5 on both threads,
// Miss_lat = 300, Switch_lat = 25, IPM = [15000, 1000],
// CPM = [6000, 400]. With F = 1 the first thread must be forced to
// switch every ~1667 instructions.
func TestIPSwQuotaPaperExample2(t *testing.T) {
	ipcST1 := 15000.0 / (6000 + 300) // 2.381
	cpmMin := 400.0
	q := IPSwQuota(15000, ipcST1, cpmMin, 300, 1.0)
	if !almost(q, 1666.7, 1.0) {
		t.Errorf("IPSw_1 at F=1 = %.1f, paper says 1667", q)
	}
	// Thread 2's quota saturates at its IPM: it misses at least as
	// often as any quota would force.
	ipcST2 := 1000.0 / (400 + 300) // 1.429
	q2 := IPSwQuota(1000, ipcST2, cpmMin, 300, 1.0)
	if !almost(q2, 1000, 1e-9) {
		t.Errorf("IPSw_2 at F=1 = %.1f, want 1000 (= IPM)", q2)
	}
	// F = 1/2 doubles the allowed quota for thread 1.
	qh := IPSwQuota(15000, ipcST1, cpmMin, 300, 0.5)
	if !almost(qh, 2*q, 1.0) {
		t.Errorf("IPSw_1 at F=1/2 = %.1f, want %.1f", qh, 2*q)
	}
	// F = 0 disables quotas.
	if IPSwQuota(15000, ipcST1, cpmMin, 300, 0) != 0 {
		t.Error("F=0 must produce no quota")
	}
}

func mkSample(instrs, cycles, misses uint64, missLat float64) ThreadSample {
	w := stats.Counters{Instrs: instrs, Cycles: cycles, Misses: misses}
	return ThreadSample{Window: w, IPM: w.IPM(), CPM: w.CPM(), EstST: w.EstIPCST(missLat)}
}

func TestEventOnlyNoQuotas(t *testing.T) {
	p := EventOnly{}
	qs := p.Quotas([]ThreadSample{mkSample(1000, 400, 1, 300), mkSample(15000, 6000, 1, 300)}, 300)
	for i, q := range qs {
		if q != 0 {
			t.Errorf("thread %d quota = %v, want 0", i, q)
		}
	}
	if p.Name() == "" {
		t.Error("empty policy name")
	}
}

func TestFairnessQuotasMatchExample2(t *testing.T) {
	p := Fairness{F: 1}
	// Thread 1: 15000 instrs per miss over 6000 cycles; thread 2: 1000
	// per miss over 400 cycles. Feed windows with 10 misses each.
	s1 := mkSample(150000, 60000, 10, 300)
	s2 := mkSample(10000, 4000, 10, 300)
	qs := p.Quotas([]ThreadSample{s1, s2}, 300)
	if !almost(qs[0], 1666.7, 1.0) {
		t.Errorf("q1 = %.1f, want 1667", qs[0])
	}
	// Thread 2's Eq. 9 value saturates at its IPM: miss switches alone
	// achieve that average, so no forced switches are scheduled.
	if qs[1] != 0 {
		t.Errorf("q2 = %.1f, want 0 (miss-bound thread needs no quota)", qs[1])
	}
}

func TestFairnessQuotasSingleThread(t *testing.T) {
	p := Fairness{F: 1}
	qs := p.Quotas([]ThreadSample{mkSample(1000, 400, 1, 300)}, 300)
	if qs[0] != 0 {
		t.Error("single-thread runs need no quotas")
	}
}

func TestFairnessQuotasEmptyWindowGuard(t *testing.T) {
	p := Fairness{F: 1}
	s1 := mkSample(150000, 60000, 10, 300)
	s2 := mkSample(0, 0, 0, 300) // starved thread: never ran this window
	qs := p.Quotas([]ThreadSample{s1, s2}, 300)
	if qs[1] != 0 {
		t.Error("empty-window thread must get no quota")
	}
	// cpmMin comes from the live thread itself, so its Eq. 9 value
	// equals its own IPM: miss switching suffices, quota off.
	if qs[0] != 0 {
		t.Errorf("sole live thread quota = %v, want 0 (its own CPM is the minimum)", qs[0])
	}
	// All windows empty -> all zero.
	qs = p.Quotas([]ThreadSample{mkSample(0, 0, 0, 300), mkSample(0, 0, 0, 300)}, 300)
	if qs[0] != 0 || qs[1] != 0 {
		t.Error("all-empty windows must yield no quotas")
	}
}

func TestTimeShareQuotas(t *testing.T) {
	p := TimeShare{QuotaCycles: 400}
	// Thread with window IPC 2.5 gets 1000 instructions per 400 cycles.
	s1 := mkSample(25000, 10000, 10, 300)
	s2 := mkSample(5000, 10000, 10, 300) // IPC 0.5 -> 200
	qs := p.Quotas([]ThreadSample{s1, s2}, 300)
	if !almost(qs[0], 1000, 1e-6) {
		t.Errorf("q1 = %v, want 1000", qs[0])
	}
	if !almost(qs[1], 200, 1e-6) {
		t.Errorf("q2 = %v, want 200", qs[1])
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
	// Zero quota disables.
	qs = TimeShare{}.Quotas([]ThreadSample{s1, s2}, 300)
	if qs[0] != 0 {
		t.Error("zero QuotaCycles must disable")
	}
}

func TestFairnessMetric(t *testing.T) {
	if FairnessMetric([]float64{0.63, 0.63}) != 1 {
		t.Error("equal speedups must be perfectly fair")
	}
	got := FairnessMetric([]float64{0.98, 0.109})
	if !almost(got, 0.109/0.98, 1e-9) {
		t.Errorf("fairness = %v", got)
	}
	if FairnessMetric([]float64{1.0}) != 1 {
		t.Error("single thread is trivially fair")
	}
	if FairnessMetric([]float64{0.5, 0}) != 0 {
		t.Error("starved thread must give fairness 0")
	}
	// Symmetric in order.
	if FairnessMetric([]float64{0.2, 0.8}) != FairnessMetric([]float64{0.8, 0.2}) {
		t.Error("metric must not depend on thread order")
	}
}

func TestFairnessMetricRange(t *testing.T) {
	cases := [][]float64{{0.1, 0.9}, {1, 1}, {2, 0.5, 1}, {0.3, 0.3, 0.3}}
	for _, c := range cases {
		f := FairnessMetric(c)
		if f < 0 || f > 1 {
			t.Errorf("fairness(%v) = %v out of [0,1]", c, f)
		}
	}
}

func TestWeightedSpeedupAndHarmonic(t *testing.T) {
	sp := []float64{0.5, 0.8}
	if !almost(WeightedSpeedup(sp), 1.3, 1e-9) {
		t.Error("weighted speedup wrong")
	}
	// Harmonic mean of {0.5, 0.8} = 2/(2+1.25) = 0.6154.
	if !almost(HarmonicFairness(sp), 2/(1/0.5+1/0.8), 1e-9) {
		t.Error("harmonic fairness wrong")
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{2.326, 0.155}, []float64{2.381, 1.429})
	if !almost(got[0], 0.977, 0.001) || !almost(got[1], 0.108, 0.001) {
		t.Errorf("speedups = %v", got)
	}
	// Zero ST IPC yields zero speedup, not a division crash.
	got = Speedups([]float64{1}, []float64{0})
	if got[0] != 0 {
		t.Error("zero IPC_ST must give speedup 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch must panic")
		}
	}()
	Speedups([]float64{1}, []float64{1, 2})
}

func TestTruncatedFairness(t *testing.T) {
	if TruncatedFairness(0.5, 0.9) != 0.5 {
		t.Error("achieved above target must truncate to target")
	}
	if TruncatedFairness(0.5, 0.3) != 0.3 {
		t.Error("achieved below target must pass through")
	}
	if TruncatedFairness(0, 0.9) != 0.9 {
		t.Error("F=0 must not truncate")
	}
}

// Eq. 5 consistency: with no enforcement, the fairness the model
// predicts is the CPM ratio; verify IPSwQuota reproduces Eq. 9's
// saturation boundary where IPM_j == quota.
func TestIPSwQuotaSaturationBoundary(t *testing.T) {
	// If IPC_ST_j/F*(CPMmin+missLat) == IPM_j exactly, both branches
	// agree.
	ipm := 1000.0
	ipcST := ipm / (400 + 300)
	f := ipcST * (400 + 300) / ipm // == 1
	q := IPSwQuota(ipm, ipcST, 400, 300, f)
	if !almost(q, ipm, 1e-9) {
		t.Errorf("boundary quota = %v, want %v", q, ipm)
	}
}
