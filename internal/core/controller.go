package core

import (
	"fmt"
	"math"

	"soemt/internal/obs"
	"soemt/internal/pipeline"
	"soemt/internal/stats"
	"soemt/internal/workload"
)

// Config parameterises the SOE controller. Defaults follow §4.1 of the
// paper: Δ = 250,000 cycles, max-cycles quota 50,000, a 6-cycle drain,
// and a constant 300-cycle miss latency for the IPC_ST estimator.
type Config struct {
	Delta          uint64  // counter sampling period (cycles)
	MaxCyclesQuota uint64  // per-dispatch cycle limit (< Delta/N)
	DrainCycles    uint64  // pipeline drain length on a switch
	MissLat        float64 // assumed average memory latency (Eq. 13)
	Policy         Policy  // quota policy (EventOnly, Fairness, TimeShare)

	// Extensions and ablations (DESIGN.md §5):
	NaiveDeficit   bool // reset deficit on switch-in instead of carrying leftover
	CountAllMisses bool // count every flagged miss, not only switch-causing ones
	MeasureMissLat bool // estimate Miss_lat from observed stalls (§6 extension)
	SwitchOnPause  bool // treat retired PAUSE as a switch event (§6 extension)
	SwitchOnL1Miss bool // switch on unresolved L1 misses too (§6 extension)

	// SmoothAlpha, when in (0, 1), applies exponential smoothing to
	// the per-window IPM and CPM estimates before Eq. 9:
	// est = alpha*window + (1-alpha)*previous. The paper uses raw
	// windows (alpha = 0 or 1 here); smoothing damps the estimate
	// oscillation that strict enforcement (F = 1) induces when forced
	// switches hide misses from the trigger-based counter.
	SmoothAlpha float64
}

// DefaultConfig returns the paper's controller parameters.
func DefaultConfig() Config {
	return Config{
		Delta:          250_000,
		MaxCyclesQuota: 50_000,
		DrainCycles:    6,
		MissLat:        300,
		Policy:         EventOnly{},
	}
}

// ConfigError reports an invalid controller configuration value.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return "core: invalid config: " + e.Field + ": " + e.Reason
}

// Validate reports controller configuration errors: a missing policy,
// a zero drain (the switch mechanism needs a positive pipeline-drain
// cost), a negative assumed miss latency, or a smoothing factor
// outside [0, 1].
func (c Config) Validate() error {
	if c.Policy == nil {
		return &ConfigError{"Policy", "must be set (EventOnly, Fairness, TimeShare)"}
	}
	if c.DrainCycles == 0 {
		return &ConfigError{"DrainCycles", "must be positive"}
	}
	if c.MissLat < 0 {
		return &ConfigError{"MissLat", "must be non-negative"}
	}
	if c.SmoothAlpha < 0 || c.SmoothAlpha > 1 {
		return &ConfigError{"SmoothAlpha", "must be in [0, 1]"}
	}
	return nil
}

// Thread is one hardware thread context under SOE control.
type Thread struct {
	Name   string
	Stream *workload.Stream
	Events []pipeline.InjectedStall

	counters stats.Window // the three per-thread hardware counters
	retired  uint64       // instructions retired since the last stats reset
	deficit  float64      // §3.2 deficit counter
	quota    float64      // current IPSw_j (0 = no forced switches)

	firstRetireSeen bool   // running-cycle attribution starts at first retire
	switchInAt      uint64 // cycle the thread was last switched in
	lastMissSeq     uint64 // dedupes miss counting while the head stalls
	hasLastMiss     bool
	eventIdx        int // persisted injected-event cursor

	visits      uint64 // completed dispatches (switch-outs)
	visitInstrs uint64 // instructions retired across completed visits
	visitMark   uint64 // retired count at the last switch-in

	smIPM, smCPM float64 // exponentially smoothed estimates (SmoothAlpha)
	smValid      bool
}

// Visits returns the number of completed dispatches since the last
// stats reset.
func (t *Thread) Visits() uint64 { return t.visits }

// AvgVisitInstrs returns the mean instructions retired per completed
// dispatch — the realized instructions-per-switch the deficit
// mechanism regulates toward IPSw.
func (t *Thread) AvgVisitInstrs() float64 {
	if t.visits == 0 {
		return 0
	}
	return float64(t.visitInstrs) / float64(t.visits)
}

// Counters returns the thread's accumulated hardware counters since
// the last stats reset.
func (t *Thread) Counters() stats.Counters { return t.counters.Totals }

// Retired returns instructions retired since the last stats reset.
func (t *Thread) Retired() uint64 { return t.retired }

// Quota returns the thread's current IPSw quota (0 = none).
func (t *Thread) Quota() float64 { return t.quota }

// SwitchStats counts thread switches by cause.
type SwitchStats struct {
	Miss     uint64 // last-level cache miss at the ROB head
	Quota    uint64 // deficit counter reached zero (fairness enforcement)
	MaxQuota uint64 // max-cycles safety quota
	Pause    uint64 // PAUSE hint (§6 extension)
	L1Miss   uint64 // unresolved L1 miss at the head (§6 extension)
}

// bump counts one switch under the cause chosen by Step. The cause
// vocabulary is obs.Cause so the tracer and the aggregate stats can
// never disagree about why a switch happened.
func (s *SwitchStats) bump(cause obs.Cause) {
	switch cause {
	case obs.CauseMiss:
		s.Miss++
	case obs.CauseQuota:
		s.Quota++
	case obs.CauseMaxCycles:
		s.MaxQuota++
	case obs.CausePause:
		s.Pause++
	case obs.CauseL1Miss:
		s.L1Miss++
	}
}

// Forced returns switches induced by the mechanism rather than by
// misses (the quantity plotted in Figure 7).
func (s SwitchStats) Forced() uint64 { return s.Quota + s.MaxQuota + s.Pause }

// Total returns all switches.
func (s SwitchStats) Total() uint64 { return s.Miss + s.L1Miss + s.Forced() }

// SampleThread is the per-thread slice of one Δ sample, kept for the
// Figure 5 time series.
type SampleThread struct {
	EstIPCST  float64 // Eq. 13 estimate from the window counters
	WindowIPC float64 // instructions retired this window / window cycles (IPC_SOE_j)
	Quota     float64 // IPSw_j chosen for the next window
	Window    stats.Counters
}

// Sample is one Δ-cycle sampling record.
type Sample struct {
	Cycle   uint64
	Threads []SampleThread
}

// Controller drives the pipeline through SOE multithreading.
type Controller struct {
	pipe    *pipeline.Pipeline
	cfg     Config
	threads []*Thread

	now          uint64
	resetAt      uint64 // cycle of the last stats reset
	sampleAt     uint64 // cycle of the last Δ sample (or stats reset)
	nextSampleAt uint64 // next Δ boundary (resetAt + k·Delta, k ≥ 1); 0 when Delta == 0
	truncated    bool   // the last Run hit its maxCycles cap
	cur          int
	switches     SwitchStats
	samples      []Sample
	missLatSum   float64
	missLatN     uint64
	engine       Engine  // idle-stretch engine used by Advance
	obs          *ctlObs // nil = observability detached (the common case)

	// Policy-zoo mechanism state (DESIGN.md §15). For policies that
	// implement neither Granter nor Culler, granter and culler stay nil,
	// active stays all-true, and every path below reduces exactly to the
	// seed pair engine — the N = 2 differential suite pins this.
	active      []bool    // dispatch-eligibility mask (Culler policies)
	granter     Granter   // non-nil: WFQ grant ordering replaces round-robin
	culler      Culler    // non-nil: policy may demote threads at samples
	grantCredit []float64 // WFQ virtual time per thread (granter only)
	grantW      []float64 // per-thread grant weights from the last sample
	sampleOrd   int       // 1-based Δ-sample ordinal (Culler probe windows)
	peakAggIPC  float64   // best aggregate window IPC seen (Culler)
}

// ctlObs holds the controller's observability hooks: the event tracer
// plus registry counters pre-resolved at SetObserver time so event
// sites pay one atomic add, never a map lookup. A nil *ctlObs disables
// everything at the cost of one pointer check per event site (switch,
// sample, skip — never per cycle), which is how the ≤2% disabled
// overhead budget is met.
type ctlObs struct {
	tr *obs.Tracer

	swMiss, swQuota, swMaxQ, swPause, swL1 *obs.Counter
	skipWindows, skipCycles, samples       *obs.Counter
	cullDemote, cullReact                  *obs.Counter
}

// SetObserver attaches (or, with nil, detaches) an observability sink.
// Observability is strictly read-only: attaching an observer never
// changes the controller's produced results — the fast-forward
// equivalence matrix in internal/sim enforces this bit-identically.
func (c *Controller) SetObserver(o *obs.Observer) {
	if o == nil || (o.Trace == nil && o.Metrics == nil) {
		c.obs = nil
		return
	}
	reg := o.Metrics // nil-safe: a nil registry hands out nil counters
	c.obs = &ctlObs{
		tr:          o.Trace,
		swMiss:      reg.Counter("core.switch.miss"),
		swQuota:     reg.Counter("core.switch.quota"),
		swMaxQ:      reg.Counter("core.switch.max_cycles"),
		swPause:     reg.Counter("core.switch.pause"),
		swL1:        reg.Counter("core.switch.l1_miss"),
		skipWindows: reg.Counter("core.skip.windows"),
		skipCycles:  reg.Counter("core.skip.cycles"),
		samples:     reg.Counter("core.samples"),
		cullDemote:  reg.Counter("core.cull.demotions"),
		cullReact:   reg.Counter("core.cull.reactivations"),
	}
}

// countSwitch mirrors one switch into the registry.
func (h *ctlObs) countSwitch(cause obs.Cause) {
	switch cause {
	case obs.CauseMiss:
		h.swMiss.Inc()
	case obs.CauseQuota:
		h.swQuota.Inc()
	case obs.CauseMaxCycles:
		h.swMaxQ.Inc()
	case obs.CausePause:
		h.swPause.Inc()
	case obs.CauseL1Miss:
		h.swL1.Inc()
	}
}

// NewController builds a controller over pipe and thread contexts.
// The first thread is switched in immediately. Configuration errors
// (empty thread list, nil pipeline, invalid Config) are returned, not
// panicked, so bad CLI flags and sweep values surface cleanly.
func NewController(pipe *pipeline.Pipeline, cfg Config, threads []*Thread) (*Controller, error) {
	if pipe == nil {
		return nil, &ConfigError{"pipeline", "must be non-nil"}
	}
	if len(threads) == 0 {
		return nil, &ConfigError{"threads", "at least one thread is required"}
	}
	for i, t := range threads {
		if t == nil || t.Stream == nil {
			return nil, &ConfigError{"threads", fmt.Sprintf("thread %d has no instruction stream", i)}
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{pipe: pipe, cfg: cfg, threads: threads}
	if cfg.Delta > 0 {
		c.nextSampleAt = cfg.Delta
	}
	c.active = make([]bool, len(threads))
	for i := range c.active {
		c.active[i] = true
	}
	if g, ok := cfg.Policy.(Granter); ok {
		c.granter = g
		c.grantCredit = make([]float64, len(threads))
		c.grantW = make([]float64, len(threads))
		for i := range c.grantW {
			c.grantW[i] = 1
		}
	}
	if cu, ok := cfg.Policy.(Culler); ok {
		c.culler = cu
	}
	pipe.SetStream(0, threads[0].Stream, 0)
	pipe.SetEvents(threads[0].Events)
	threads[0].eventIdx = pipe.EventIndex()
	return c, nil
}

// Now returns the global cycle count.
func (c *Controller) Now() uint64 { return c.now }

// CyclesSinceReset returns cycles elapsed since the last stats reset.
func (c *Controller) CyclesSinceReset() uint64 { return c.now - c.resetAt }

// Threads returns the thread contexts.
func (c *Controller) Threads() []*Thread { return c.threads }

// Switches returns switch counts since the last stats reset.
func (c *Controller) Switches() SwitchStats { return c.switches }

// Samples returns the Δ sampling records since the last stats reset.
func (c *Controller) Samples() []Sample { return c.samples }

// Truncated reports whether the most recent Run stopped at its
// maxCycles cap before every thread reached its retirement target.
// Cleared by ResetStats.
func (c *Controller) Truncated() bool { return c.truncated }

// Current returns the index of the running thread.
func (c *Controller) Current() int { return c.cur }

// Active returns a copy of the dispatch-eligibility mask. All-true
// unless the policy implements Culler and has demoted threads.
func (c *Controller) Active() []bool {
	return append([]bool(nil), c.active...)
}

// hasOtherActive reports whether any thread besides the running one is
// dispatch-eligible — the precondition for any thread switch. Always
// true for multi-thread runs under non-Culler policies.
func (c *Controller) hasOtherActive() bool {
	for i, on := range c.active {
		if on && i != c.cur {
			return true
		}
	}
	return false
}

// pickNext chooses the thread a switch dispatches to. Under a Granter
// policy it is the eligible thread with the least WFQ grant credit
// (ties to the lowest index); otherwise the next eligible thread in
// round-robin order, which for an all-active mask is exactly the seed
// engine's (cur+1) mod N rotation. Returns cur when no other thread is
// eligible; Step suppresses the switch in that case.
func (c *Controller) pickNext() int {
	n := len(c.threads)
	if c.granter != nil {
		best := -1
		for i := 0; i < n; i++ {
			if i == c.cur || !c.active[i] {
				continue
			}
			if best < 0 || c.grantCredit[i] < c.grantCredit[best] {
				best = i
			}
		}
		if best >= 0 {
			return best
		}
		return c.cur
	}
	for off := 1; off < n; off++ {
		if j := (c.cur + off) % n; c.active[j] {
			return j
		}
	}
	return c.cur
}

// Engine selects how Advance crosses provably idle cycle stretches.
// All engines produce bit-identical results — the equivalence matrix
// in internal/sim enforces this — they differ only in cost:
//
//   - EngineCycleByCycle is the reference: every cycle is a real Step.
//   - EngineFastForward certifies idleness with IdleScan, which
//     recomputes the next-event horizon from scratch at every resume
//     point.
//   - EngineEventWheel certifies with WheelScan, which owns the horizon
//     in a persistent per-stage event heap (DESIGN.md §16) and is the
//     default production engine.
type Engine uint8

const (
	EngineCycleByCycle Engine = iota
	EngineFastForward
	EngineEventWheel
)

// String returns the spec-level engine name.
func (e Engine) String() string {
	switch e {
	case EngineFastForward:
		return "fast-forward"
	case EngineEventWheel:
		return "event-wheel"
	default:
		return "cycle-by-cycle"
	}
}

// SetEngine selects the idle-stretch engine used by Advance. Stretches
// where the pipeline provably cannot make progress are jumped in bulk
// instead of stepped cycle by cycle (except under the cycle-by-cycle
// reference engine). Results are bit-identical across engines — the
// jump is clipped to every boundary a real Step reacts to (Δ-sample
// edges, the max-cycles quota edge, the head-miss switch trigger,
// slice budgets and the MaxCycles cap) and the per-cycle counter
// updates are applied in bulk (see skipIdle). Defaults to
// EngineCycleByCycle; sim.RunContext selects per Spec.Engine.
func (c *Controller) SetEngine(e Engine) { c.engine = e }

// Engine returns the selected idle-stretch engine.
func (c *Controller) Engine() Engine { return c.engine }

// SetFastForward enables (or disables) idle-stretch skipping,
// retained for call sites predating SetEngine: on selects
// EngineFastForward, off the cycle-by-cycle reference.
func (c *Controller) SetFastForward(on bool) {
	if on {
		c.engine = EngineFastForward
	} else {
		c.engine = EngineCycleByCycle
	}
}

// FastForward reports whether idle-stretch skipping is enabled under
// any engine.
func (c *Controller) FastForward() bool { return c.engine != EngineCycleByCycle }

// MeasuredMissLat returns the mean observed head-stall latency, or the
// configured constant when measurement is off or empty.
func (c *Controller) MeasuredMissLat() float64 {
	if !c.cfg.MeasureMissLat || c.missLatN == 0 {
		return c.cfg.MissLat
	}
	return c.missLatSum / float64(c.missLatN)
}

// ResetStats zeroes all measurement state (counters, switch stats,
// samples, per-thread retired counts) while preserving machine and
// mechanism state (quotas, deficits, caches). Call at the end of the
// warmup phase, mirroring the paper's exclusion of the first 1M
// instructions.
//
// Quotas are recomputed from the warmup window first, so measurement
// starts with fresh IPSw values even when the warmup was shorter than
// one full Δ period.
func (c *Controller) ResetStats() {
	if c.cfg.Delta > 0 && c.now > c.resetAt {
		c.sample()
	}
	for _, t := range c.threads {
		t.counters = stats.Window{}
		t.retired = 0
		t.visits, t.visitInstrs, t.visitMark = 0, 0, 0
	}
	c.switches = SwitchStats{}
	c.samples = nil
	c.missLatSum, c.missLatN = 0, 0
	c.truncated = false
	c.resetAt = c.now
	c.sampleAt = c.now
	if c.cfg.Delta > 0 {
		c.nextSampleAt = c.now + c.cfg.Delta
	}
	c.pipe.ResetMetrics()
	c.pipe.Hierarchy().ResetStats()
}

// Run advances the machine until every thread has retired at least
// target instructions since the last stats reset, or maxCycles have
// elapsed (0 = no limit). It returns the number of cycles executed.
func (c *Controller) Run(target uint64, maxCycles uint64) uint64 {
	start := c.now
	c.truncated = false
	for !c.Advance(target, maxCycles, start, 1<<20) {
	}
	return c.now - start
}

// Advance runs at most budget cycles of the measurement that began at
// absolute cycle start, and reports whether the run is complete:
// either every thread reached its retirement target, or maxCycles
// elapsed since start (0 = no limit), which also marks the run
// truncated. Callers that need cancellation or watchdog checks loop
// over Advance with a small budget (see sim.RunContext); Run is the
// uninterruptible wrapper.
func (c *Controller) Advance(target, maxCycles, start, budget uint64) bool {
	for spent := uint64(0); ; {
		done := true
		for _, t := range c.threads {
			if t.retired < target {
				done = false
				break
			}
		}
		if done {
			return true
		}
		if maxCycles > 0 && c.now-start >= maxCycles {
			c.truncated = true
			return true
		}
		if spent >= budget {
			return false
		}
		if c.engine != EngineCycleByCycle {
			// Clip the jump to the slice budget and the MaxCycles cap so
			// slice boundaries and truncation points match the
			// cycle-by-cycle engine exactly.
			limit := c.now + (budget - spent)
			if maxCycles > 0 {
				if cap := start + maxCycles; cap < limit {
					limit = cap
				}
			}
			if n := c.skipIdle(limit); n > 0 {
				spent += n
				continue
			}
		}
		c.Step()
		spent++
	}
}

// skipIdle fast-forwards across a stretch of cycles in which the
// machine provably makes no progress, advancing now to the next-event
// horizon (clipped to limit and to every controller boundary a real
// Step reacts to) and applying the per-cycle accounting in bulk. It
// returns the number of cycles skipped; 0 means the coming cycle may
// do real work (or trigger a sample or switch) and the caller must
// Step normally.

func (c *Controller) skipIdle(limit uint64) uint64 {
	cur := c.threads[c.cur]
	// With no other dispatch-eligible thread (single-thread run, or a
	// Culler demoted every co-runner) Step suppresses all switches, so
	// the skip must use the single-thread accounting rules. The mask
	// only changes at Δ samples and skips stop at Δ boundaries, so the
	// decision is stable across the whole window.
	multi := len(c.threads) > 1 && c.hasOtherActive()

	// A Step at now itself would sample or force a switch: no skip.
	if c.cfg.Delta > 0 && c.now == c.nextSampleAt {
		return 0
	}
	if multi && cur.quota > 0 && cur.deficit <= 0 && cur.firstRetireSeen {
		return 0
	}
	if multi && c.cfg.MaxCyclesQuota > 0 &&
		c.now >= cur.switchInAt && c.now-cur.switchInAt >= c.cfg.MaxCyclesQuota {
		return 0
	}

	var (
		end  uint64
		rep  pipeline.IdleReport
		idle bool
	)
	if c.engine == EngineEventWheel {
		end, rep, idle = c.pipe.WheelScan(c.now)
	} else {
		end, rep, idle = c.pipe.IdleScan(c.now)
	}
	if !idle {
		return 0
	}
	if limit < end {
		end = limit
	}
	// Stop at the next Δ boundary so the Step there samples.
	if c.cfg.Delta > 0 && c.nextSampleAt < end {
		end = c.nextSampleAt
	}
	if multi && c.cfg.MaxCyclesQuota > 0 {
		// Stop at the max-cycles quota edge so the Step there switches.
		if edge := cur.switchInAt + c.cfg.MaxCyclesQuota; edge < end {
			end = edge
		}
	}

	// Replicate the controller's per-cycle reaction to the repeated
	// head-pending report retire() would emit during the window.
	if rep.Miss || rep.L1 {
		until := rep.Until
		if until > end {
			until = end
		}
		if rep.From < until {
			if multi && (rep.Miss || (rep.L1 && c.cfg.SwitchOnL1Miss)) {
				// The first report forces a thread switch: stop the skip
				// there and let the real Step count it and switch.
				if rep.From <= c.now {
					return 0
				}
				end = rep.From
			} else if rep.Miss {
				// Single-thread run: the report repeats every cycle but
				// only the first sighting of a given architectural miss
				// counts (the lastMissSeq dedup in Step).
				if !cur.hasLastMiss || cur.lastMissSeq != rep.Seq {
					cur.hasLastMiss = true
					cur.lastMissSeq = rep.Seq
					if !c.cfg.CountAllMisses {
						cur.counters.Totals.Misses++
					}
					if c.cfg.MeasureMissLat && rep.ResolveAt > rep.From {
						c.missLatSum += float64(rep.ResolveAt - rep.From)
						c.missLatN++
					}
				}
			}
		}
	}

	if end <= c.now+1 {
		return 0
	}
	n := end - c.now
	c.pipe.AdvanceIdle(c.now, n)
	if cur.firstRetireSeen {
		cur.counters.Totals.Cycles += n
	}
	if h := c.obs; h != nil {
		h.skipWindows.Inc()
		h.skipCycles.Add(n)
		if h.tr != nil {
			h.tr.Record(obs.Event{
				Cycle: c.now, Kind: obs.KindSkip, Thread: int32(c.cur), N: n,
			})
		}
	}
	c.now = end
	return n
}

// TotalRetired sums instructions retired across all threads since the
// last stats reset. It is the forward-progress signal watched by the
// stall detector in sim.RunContext.
func (c *Controller) TotalRetired() uint64 {
	var sum uint64
	for _, t := range c.threads {
		sum += t.retired
	}
	return sum
}

// RunCycles advances the machine by exactly n cycles.
func (c *Controller) RunCycles(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.Step()
	}
}

// Step advances the machine by one cycle.
func (c *Controller) Step() {
	// nextSampleAt is the maintained form of the Δ-boundary predicate
	// (now > resetAt && (now-resetAt)%Delta == 0): cheaper than two
	// 64-bit divisions per cycle, and exact because now never jumps a
	// boundary (skipIdle clips to it).
	if c.now == c.nextSampleAt && c.cfg.Delta > 0 {
		c.sample()
		c.nextSampleAt += c.cfg.Delta
	}

	demandBefore := c.pipe.Metrics.DemandMisses
	r := c.pipe.Cycle(c.now)
	cur := c.threads[c.cur]

	if r.Retired > 0 {
		cur.firstRetireSeen = true
	}
	if cur.firstRetireSeen {
		cur.counters.Totals.Cycles++
	}
	cur.counters.Totals.Instrs += uint64(r.Retired)
	cur.retired += uint64(r.Retired)
	cur.deficit -= float64(r.Retired)
	if c.cfg.CountAllMisses {
		cur.counters.Totals.Misses += c.pipe.Metrics.DemandMisses - demandBefore
	}

	multi := len(c.threads) > 1
	cause := obs.CauseNone

	if r.HeadMissPending {
		if !cur.hasLastMiss || cur.lastMissSeq != r.HeadMissSeq {
			cur.hasLastMiss = true
			cur.lastMissSeq = r.HeadMissSeq
			if !c.cfg.CountAllMisses {
				cur.counters.Totals.Misses++
			}
			if c.cfg.MeasureMissLat && r.HeadResolveAt > c.now {
				c.missLatSum += float64(r.HeadResolveAt - c.now)
				c.missLatN++
			}
		}
		if multi {
			cause = obs.CauseMiss
		}
	}
	if cause == obs.CauseNone && multi && c.cfg.SwitchOnL1Miss && r.HeadL1Pending {
		cause = obs.CauseL1Miss
	}
	if cause == obs.CauseNone && multi && c.cfg.SwitchOnPause && r.PauseRetired {
		cause = obs.CausePause
	}
	if cause == obs.CauseNone && multi && cur.quota > 0 && cur.deficit <= 0 && cur.firstRetireSeen {
		cause = obs.CauseQuota
	}
	if cause == obs.CauseNone && multi && c.cfg.MaxCyclesQuota > 0 &&
		c.now >= cur.switchInAt && c.now-cur.switchInAt >= c.cfg.MaxCyclesQuota {
		cause = obs.CauseMaxCycles
	}

	if cause != obs.CauseNone {
		// A switch with nowhere to go (every co-runner culled) is
		// suppressed entirely: no squash, no stats — the thread simply
		// keeps running, as in a single-thread machine.
		if next := c.pickNext(); next != c.cur {
			c.switches.bump(cause)
			c.switchThread(next, cause)
		}
	}
	c.now++
}

// switchThread squashes the pipeline and dispatches thread next (as
// chosen by pickNext; next != cur). cause records why the switch fired
// (miss-induced vs forced) for the event tracer and registry; the
// mechanism itself does not depend on it.
func (c *Controller) switchThread(nextIdx int, cause obs.Cause) {
	cur := c.threads[c.cur]
	if c.granter != nil {
		// Charge the completed visit to the outgoing thread's WFQ
		// credit: credit += visit_cycles / weight. The minimum 1-cycle
		// charge keeps zero-progress visits from monopolizing grants.
		visit := uint64(1)
		if c.now > cur.switchInAt {
			visit = c.now - cur.switchInAt
		}
		c.grantCredit[c.cur] += float64(visit) / c.grantW[c.cur]
	}
	cur.visits++
	cur.visitInstrs += cur.retired - cur.visitMark
	cur.eventIdx = c.pipe.EventIndex()
	resume := c.pipe.Squash()
	cur.Stream.Seek(resume)
	cur.firstRetireSeen = false
	// lastMissSeq deliberately persists across the switch: if the
	// thread returns before its miss resolves (possible when all other
	// threads are also miss-bound), the re-encountered stall triggers
	// another switch but is the SAME architectural miss and must not
	// inflate the Misses counter.

	prev := c.cur
	c.cur = nextIdx
	next := c.threads[c.cur]
	startAt := c.now + c.cfg.DrainCycles
	if next.quota > 0 {
		if c.cfg.NaiveDeficit {
			next.deficit = next.quota
		} else {
			// Carry the miss-truncated leftover (§3.2), saturating at
			// twice the quota so stale credit from a phase change
			// cannot disable enforcement indefinitely.
			next.deficit = math.Min(next.deficit+next.quota, 2*next.quota)
		}
	} else {
		next.deficit = 0
	}
	next.switchInAt = startAt
	next.visitMark = next.retired
	c.pipe.SetStream(c.cur, next.Stream, startAt)
	c.pipe.SetEventsFrom(next.Events, next.eventIdx)

	if h := c.obs; h != nil {
		h.countSwitch(cause)
		if h.tr != nil {
			h.tr.Record(obs.Event{
				Cycle: c.now, Kind: obs.KindSwitch, Cause: cause,
				Thread: int32(prev), A: cur.deficit, N: uint64(c.cur),
			})
			h.tr.Record(obs.Event{
				Cycle: c.now, Kind: obs.KindDeficit,
				Thread: int32(c.cur), A: next.deficit, B: next.quota,
			})
		}
	}
}

// sample reads the Δ-window counters, records the time series, and
// recomputes quotas through the policy (Eqs. 9, 11–13).
func (c *Controller) sample() {
	missLat := c.MeasuredMissLat()
	// The window normally spans a full Δ, but the flush sample emitted
	// by ResetStats covers only the cycles since the previous sample;
	// WindowIPC must divide by the cycles actually elapsed, not Δ.
	elapsed := c.now - c.sampleAt
	if elapsed == 0 {
		elapsed = c.cfg.Delta
	}
	samples := make([]ThreadSample, len(c.threads))
	rec := Sample{Cycle: c.now, Threads: make([]SampleThread, len(c.threads))}
	for i, t := range c.threads {
		win := t.counters.Sample()
		ts := ThreadSample{Window: win, IPM: win.IPM(), CPM: win.CPM()}
		if a := c.cfg.SmoothAlpha; a > 0 && a < 1 && win.Cycles > 0 {
			if t.smValid {
				t.smIPM = a*ts.IPM + (1-a)*t.smIPM
				t.smCPM = a*ts.CPM + (1-a)*t.smCPM
			} else {
				t.smIPM, t.smCPM, t.smValid = ts.IPM, ts.CPM, true
			}
			ts.IPM, ts.CPM = t.smIPM, t.smCPM
		}
		if den := ts.CPM + missLat; den > 0 {
			ts.EstST = ts.IPM / den
		}
		samples[i] = ts
		rec.Threads[i] = SampleThread{
			EstIPCST:  ts.EstST,
			WindowIPC: float64(win.Instrs) / float64(elapsed),
			Window:    win,
		}
	}
	quotas := c.cfg.Policy.Quotas(samples, missLat)
	for i, t := range c.threads {
		t.quota = quotas[i]
		rec.Threads[i].Quota = quotas[i]
	}
	c.samples = append(c.samples, rec)
	c.sampleAt = c.now
	c.sampleOrd++

	if c.culler != nil {
		var winInstrs uint64
		for i := range rec.Threads {
			winInstrs += rec.Threads[i].Window.Instrs
		}
		agg := float64(winInstrs) / float64(elapsed)
		if agg > c.peakAggIPC {
			c.peakAggIPC = agg
		}
		var wasActive []bool
		if c.granter != nil || c.obs != nil {
			wasActive = append([]bool(nil), c.active...)
		}
		c.culler.Cull(&CullState{
			Samples: samples, Active: c.active,
			Window: c.sampleOrd, AggIPC: agg, PeakIPC: c.peakAggIPC,
		})
		// The machine must always have somewhere to dispatch: an
		// over-eager cull that empties the mask re-activates the
		// running thread.
		any := false
		for _, on := range c.active {
			any = any || on
		}
		if !any {
			c.active[c.cur] = true
		}
		if c.obs != nil {
			// Mirror effective mask transitions (post empty-mask fixup)
			// into the registry so tests and dashboards can prove a
			// Culler policy actually demoted/reactivated mid-run.
			for i, was := range wasActive {
				if was && !c.active[i] {
					c.obs.cullDemote.Inc()
				} else if !was && c.active[i] {
					c.obs.cullReact.Inc()
				}
			}
		}
		if c.granter != nil {
			// Start-time-fair-queueing catch-up: a reactivated thread
			// rejoins at the active credit floor instead of replaying
			// its accumulated absence and monopolizing grants.
			floor := math.Inf(1)
			for i, on := range wasActive {
				if on && c.active[i] && c.grantCredit[i] < floor {
					floor = c.grantCredit[i]
				}
			}
			if !math.IsInf(floor, 1) {
				for i, on := range c.active {
					if on && !wasActive[i] && c.grantCredit[i] < floor {
						c.grantCredit[i] = floor
					}
				}
			}
		}
	}
	if c.granter != nil {
		w := c.granter.GrantWeights(samples)
		for i := range c.grantW {
			c.grantW[i] = 1
			if i < len(w) && finitePos(w[i]) {
				c.grantW[i] = w[i]
			}
		}
	}

	if h := c.obs; h != nil {
		h.samples.Inc()
		if h.tr != nil {
			for i, st := range rec.Threads {
				h.tr.Record(obs.Event{
					Cycle: c.now, Kind: obs.KindSample, Thread: int32(i),
					A: st.EstIPCST, B: st.WindowIPC, N: st.Window.Instrs,
				})
				h.tr.Record(obs.Event{
					Cycle: c.now, Kind: obs.KindQuota, Thread: int32(i),
					A: st.Quota,
				})
			}
		}
	}
}

// String summarizes controller state for debugging.
func (c *Controller) String() string {
	return fmt.Sprintf("soe{now=%d cur=%d threads=%d switches=%+v}",
		c.now, c.cur, len(c.threads), c.switches)
}
