package core

import (
	"testing"

	"soemt/internal/workload"
)

// pauseProfile emits PAUSE hints (§6 extension: explicit instructions
// that can trigger thread switches, like x86 pause in busy-wait loops).
func pauseProfile() workload.Profile {
	p := hogProfile()
	p.Name = "pausey"
	p.Seed = 77
	p.FracPause = 0.02
	return p
}

func TestSwitchOnPauseExtension(t *testing.T) {
	run := func(enabled bool) *Controller {
		pipe := newMachine()
		threads := []*Thread{newThread(pauseProfile(), 0), newThread(hogProfile(), 1)}
		cfg := testConfig(EventOnly{})
		cfg.SwitchOnPause = enabled
		c := mustController(pipe, cfg, threads)
		c.RunCycles(100_000)
		return c
	}
	off := run(false)
	if off.Switches().Pause != 0 {
		t.Fatal("pause switches counted with the extension disabled")
	}
	on := run(true)
	if on.Switches().Pause == 0 {
		t.Fatal("no pause switches with the extension enabled")
	}
	// Pause-hint switching lets the other thread run far more often
	// than the max-cycles quota alone would.
	if on.Switches().Pause < 10 {
		t.Errorf("only %d pause switches; hints not effective", on.Switches().Pause)
	}
}

// The controller must handle more than two threads: Eickemeyer et al.
// observed SOE reaching maximum throughput around three threads; at
// minimum, all threads must make progress and fairness must remain
// enforceable.
func TestThreeThreadSOE(t *testing.T) {
	pipe := newMachine()
	threads := []*Thread{
		newThread(victimProfile(), 0),
		newThread(hogProfile(), 1),
		newThread(victimProfile2(), 2),
	}
	c := mustController(pipe, testConfig(Fairness{F: 0.5}), threads)
	c.RunCycles(600_000)
	for i, th := range threads {
		if th.Retired() == 0 {
			t.Fatalf("thread %d never ran", i)
		}
	}
	if c.Switches().Total() == 0 {
		t.Fatal("no switches in 3-thread SOE")
	}
	// Rotation is round-robin over all three: visit counts must be
	// within one of each other.
	v0, v1, v2 := threads[0].Visits(), threads[1].Visits(), threads[2].Visits()
	max, min := v0, v0
	for _, v := range []uint64{v1, v2} {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	if max-min > 1 {
		t.Errorf("visit counts unbalanced: %d %d %d", v0, v1, v2)
	}
}

func victimProfile2() workload.Profile {
	p := victimProfile()
	p.Name = "victim2"
	p.Seed = 13
	return p
}

// Throughput should not collapse as threads are added: with one
// memory-bound profile replicated, SOE hides more and more of the
// miss latency (the paper's core premise).
func TestThroughputScalesWithThreads(t *testing.T) {
	const cycles = 500_000
	ipcFor := func(n int) float64 {
		pipe := newMachine()
		var threads []*Thread
		for i := 0; i < n; i++ {
			p := victimProfile()
			p.Seed += uint64(i) // distinct streams
			threads = append(threads, newThread(p, i))
		}
		c := mustController(pipe, testConfig(EventOnly{}), threads)
		c.RunCycles(cycles)
		var instrs uint64
		for _, th := range threads {
			instrs += th.Counters().Instrs
		}
		return float64(instrs) / float64(cycles)
	}
	one := ipcFor(1)
	two := ipcFor(2)
	three := ipcFor(3)
	if two <= one {
		t.Errorf("2-thread SOE (%.3f) must beat single thread (%.3f) for a memory-bound workload", two, one)
	}
	if three < two*0.95 {
		t.Errorf("3-thread SOE (%.3f) collapsed vs 2-thread (%.3f)", three, two)
	}
}

// §6 extension: L1 misses (hitting L2) as additional switch events. On
// this machine the ~25-cycle switch cost exceeds the ~15-cycle L2 hit
// latency, so enabling it increases switching sharply; the test checks
// the mechanism works and the switch accounting is correct.
func TestSwitchOnL1MissExtension(t *testing.T) {
	warmHeavy := func(seed uint64) workload.Profile {
		p := hogProfile()
		p.Name = "warmy"
		p.Seed = seed
		p.PWarm = 0.5 // half the accesses L1-miss into the L2
		p.WarmBytes = 512 << 10
		return p
	}
	run := func(enabled bool) *Controller {
		pipe := newMachine()
		threads := []*Thread{newThread(warmHeavy(21), 0), newThread(warmHeavy(22), 1)}
		cfg := testConfig(EventOnly{})
		cfg.SwitchOnL1Miss = enabled
		c := mustController(pipe, cfg, threads)
		c.RunCycles(200_000)
		return c
	}
	off := run(false)
	if off.Switches().L1Miss != 0 {
		t.Fatal("L1 switches counted with the extension disabled")
	}
	on := run(true)
	if on.Switches().L1Miss == 0 {
		t.Fatal("no L1-miss switches with the extension enabled")
	}
	// Each L1 switch costs more than the latency it hides here, so
	// throughput must not improve.
	offIPC := float64(off.Threads()[0].Retired()+off.Threads()[1].Retired()) / float64(off.Now())
	onIPC := float64(on.Threads()[0].Retired()+on.Threads()[1].Retired()) / float64(on.Now())
	if onIPC > offIPC*1.02 {
		t.Errorf("L1 switching unexpectedly improved IPC: %.3f vs %.3f", onIPC, offIPC)
	}
}
