// Package proxy implements soeproxy, the thin cluster gateway: it
// routes submissions to soeserve nodes by content-addressed
// fingerprint (so identical specs land on — and coalesce at — one
// node), retries idempotent submissions on the next ring candidate
// when a node or its breaker fails, hedges synchronous tier=fast
// requests after a latency percentile, and sheds load with
// deterministic 429/503 + Retry-After instead of queueing.
//
// The gateway holds no state a restart could lose: routing is pure
// ring arithmetic, job ids are node-scoped (serve.Config.NodeName) so
// lookups fan out, and results live in the nodes' content-addressed
// caches. Retrying a submission elsewhere is safe for the same reason
// routing works at all — a spec's fingerprint names its result, so
// the worst case of a duplicate submission is a cache hit, never a
// conflicting answer (DESIGN.md §13).
package proxy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"soemt/internal/cluster"
	"soemt/internal/obs"
	"soemt/internal/serve"
)

// Config parameterizes a Proxy. Cluster is required.
type Config struct {
	// Cluster is the node set to route over (Self is "" — the gateway
	// is a pure client and never routes to itself).
	Cluster *cluster.Cluster
	// MaxAttempts bounds how many ring candidates one submission may
	// try (first attempt included). 0 means every routable candidate.
	MaxAttempts int
	// HedgeAfter, when > 0, is the fixed latency after which a
	// tier=fast request is duplicated to the next candidate. 0 derives
	// the trigger adaptively from the observed p95 of recent fast
	// requests.
	HedgeAfter time.Duration
	// MaxBodyBytes bounds a submission body (413 beyond). Default 1 MiB
	// — must not exceed the nodes' own serve.Config.MaxBodyBytes or the
	// gateway would accept bodies its backends reject.
	MaxBodyBytes int64
	// Registry receives proxy.* metrics (nil allocates a private one).
	Registry *obs.Registry
	// Logf, if non-nil, receives gateway log lines.
	Logf func(format string, args ...interface{})
}

// hedge tuning: the adaptive trigger needs a few observations before
// p95 means anything; until then (and whenever clamping) these bounds
// apply.
const (
	hedgeMinSamples   = 8
	hedgeDefaultDelay = 75 * time.Millisecond
	hedgeMinDelay     = 5 * time.Millisecond
	hedgeMaxDelay     = 2 * time.Second
)

// Proxy is the gateway engine. Construct with New; all methods are
// safe for concurrent use.
type Proxy struct {
	cfg Config
	cl  *cluster.Cluster
	reg *obs.Registry

	lat latWindow // recent tier=fast latencies, feeds the hedge trigger

	requestsC  *obs.Counter
	forwardedC *obs.Counter
	retriesC   *obs.Counter
	hedgesC    *obs.Counter
	hedgeWinsC *obs.Counter
	shedC      *obs.Counter
}

// New builds a Proxy over cfg.Cluster.
func New(cfg Config) (*Proxy, error) {
	if cfg.Cluster == nil {
		return nil, errors.New("proxy: Cluster is required")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Proxy{
		cfg: cfg,
		cl:  cfg.Cluster,
		reg: reg,

		requestsC:  reg.Counter("proxy.requests"),
		forwardedC: reg.Counter("proxy.forwarded"),
		retriesC:   reg.Counter("proxy.retries"),
		hedgesC:    reg.Counter("proxy.hedges"),
		hedgeWinsC: reg.Counter("proxy.hedge_wins"),
		shedC:      reg.Counter("proxy.shed"),
	}, nil
}

// Observability returns the registry behind /metrics.
func (p *Proxy) Observability() *obs.Registry { return p.reg }

func (p *Proxy) logf(format string, args ...interface{}) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Handler returns the gateway mux. It mirrors the soeserve surface
// (run/sweep/jobs/cache) plus the gateway's own status endpoints.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) { p.handleSubmit(w, r, "run") })
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) { p.handleSubmit(w, r, "sweep") })
	mux.HandleFunc("GET /v1/jobs/{id}", p.handleFanout)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", p.handleFanout)
	mux.HandleFunc("GET /v1/cache/{fp}", p.handleCache)
	mux.HandleFunc("GET /status", p.handleStatus)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed rejects a request the cluster cannot take right now, with a
// deterministic Retry-After derived from breaker state (floor 1s) —
// the gateway's promise to a saturated fleet mirrors the nodes' own
// 429 contract.
func (p *Proxy) shed(w http.ResponseWriter, status int, retryAfter time.Duration, format string, args ...interface{}) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	p.shedC.Inc()
	writeError(w, status, format, args...)
}

// relay copies a backend response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// discard drains and closes a response the gateway is not relaying,
// keeping the backend connection reusable.
func discard(resp *http.Response) {
	if resp == nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// retryable reports whether an outcome should move on to the next
// ring candidate: transport/breaker errors and 5xx (including a
// draining node's 503 on the data path, which RoundTrip maps to a
// breaker failure). 429 is NOT retryable — a full queue on the keyed
// node means the spec's job already coalesces there, and submitting
// it elsewhere would re-simulate what that node will compute anyway.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	return resp.StatusCode >= 500
}

func (p *Proxy) handleSubmit(w http.ResponseWriter, r *http.Request, kind string) {
	p.requestsC.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}

	var key, tier string
	switch kind {
	case "run":
		var rq serve.RunRequest
		if err := json.Unmarshal(body, &rq); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if key, err = rq.RouteKey(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		tier = rq.Tier
	default:
		var rq serve.SweepRequest
		if err := json.Unmarshal(body, &rq); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if key, err = rq.RouteKey(); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		tier = rq.Tier
	}

	hdr := http.Header{"Content-Type": []string{"application/json"}}
	path := "/v1/" + kind
	if tier == serve.TierFast {
		// Synchronous, no job, no simulation: safe to duplicate, so the
		// latency tail is worth cutting with a hedge.
		resp, err := p.hedgedForward(r, key, path, body, hdr)
		p.finishForward(w, resp, err, key)
		return
	}
	resp, err := p.forward(r, key, path, body, hdr)
	p.finishForward(w, resp, err, key)
}

// finishForward renders a forward outcome: relay on success, 503 +
// Retry-After when the fleet had no answer.
func (p *Proxy) finishForward(w http.ResponseWriter, resp *http.Response, err error, key string) {
	if err != nil {
		var open *cluster.ErrBreakerOpen
		retry := time.Second
		if errors.As(err, &open) && open.RetryAfter > retry {
			retry = open.RetryAfter
		}
		p.shed(w, http.StatusServiceUnavailable, retry, "no node could take %.12s…: %v", key, err)
		return
	}
	p.forwardedC.Inc()
	relay(w, resp)
}

// forward walks key's candidate list: the ring owner first, then its
// deterministic successors, skipping dead nodes, stopping at the
// first conclusive answer. Each additional attempt counts as a retry.
// The returned error is the last attempt's (an *ErrBreakerOpen when
// every candidate was breaker-refused, so the caller can surface the
// soonest retry hint).
func (p *Proxy) forward(r *http.Request, key, path string, body []byte, hdr http.Header) (*http.Response, error) {
	cands := p.cl.Candidates(key)
	if len(cands) == 0 {
		return nil, cluster.ErrNoCandidates
	}
	if p.cfg.MaxAttempts > 0 && len(cands) > p.cfg.MaxAttempts {
		cands = cands[:p.cfg.MaxAttempts]
	}
	var lastResp *http.Response
	var lastErr error
	for i, node := range cands {
		if i > 0 {
			p.retriesC.Inc()
			p.logf("proxy: retrying %.12s… on %s", key, node)
		}
		resp, err := p.cl.RoundTrip(r.Context(), node, r.Method, path, body, hdr)
		if !retryable(resp, err) {
			return resp, nil
		}
		discard(lastResp)
		lastResp, lastErr = resp, err
	}
	if lastResp != nil {
		// Every candidate answered 5xx: relay the last one rather than
		// synthesizing — it carries the most useful error body.
		return lastResp, nil
	}
	return nil, lastErr
}

// hedgedForward is forward for tier=fast: launch on the owner, and if
// no answer lands within the hedge delay, duplicate to the next
// candidate and take whichever conclusive answer arrives first.
func (p *Proxy) hedgedForward(r *http.Request, key, path string, body []byte, hdr http.Header) (*http.Response, error) {
	cands := p.cl.Candidates(key)
	if len(cands) == 0 {
		return nil, cluster.ErrNoCandidates
	}
	if len(cands) == 1 {
		start := time.Now()
		resp, err := p.cl.RoundTrip(r.Context(), cands[0], r.Method, path, body, hdr)
		if err == nil && resp.StatusCode < 500 {
			p.lat.add(time.Since(start))
		}
		return resp, err
	}

	type outcome struct {
		idx  int
		resp *http.Response
		err  error
	}
	ch := make(chan outcome, 2)
	launched := 0
	launch := func(idx int) {
		launched++
		go func() {
			resp, err := p.cl.RoundTrip(r.Context(), cands[idx], r.Method, path, body, hdr)
			ch <- outcome{idx, resp, err}
		}()
	}
	// drainLater disposes outcomes still in flight after a winner.
	drainLater := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				discard((<-ch).resp)
			}
		}()
	}

	start := time.Now()
	launch(0)
	timer := time.NewTimer(p.hedgeDelay())
	defer timer.Stop()
	done := 0
	var lastErr error
	for {
		select {
		case o := <-ch:
			done++
			if !retryable(o.resp, o.err) {
				p.lat.add(time.Since(start))
				if o.idx > 0 {
					p.hedgeWinsC.Inc()
				}
				drainLater(launched - done)
				return o.resp, nil
			}
			discard(o.resp)
			if o.resp != nil {
				lastErr = fmt.Errorf("proxy: %s answered %s", cands[o.idx], o.resp.Status)
			} else {
				lastErr = o.err
			}
			if launched < 2 {
				// The primary failed outright: this is a failover retry,
				// not a latency hedge.
				p.retriesC.Inc()
				launch(1)
			} else if done == launched {
				return nil, lastErr
			}
		case <-timer.C:
			if launched < 2 {
				p.hedgesC.Inc()
				launch(1)
			}
		}
	}
}

// hedgeDelay returns the current tier=fast hedge trigger.
func (p *Proxy) hedgeDelay() time.Duration {
	if p.cfg.HedgeAfter > 0 {
		return p.cfg.HedgeAfter
	}
	d := p.lat.p95()
	if d <= 0 {
		return hedgeDefaultDelay
	}
	if d < hedgeMinDelay {
		return hedgeMinDelay
	}
	if d > hedgeMaxDelay {
		return hedgeMaxDelay
	}
	return d
}

// handleFanout answers job-scoped GETs by asking every routable node:
// ids are node-scoped, so exactly one node answers non-404 (a 410
// from the issuing node is an answer — the job existed and was
// evicted). Dead nodes are skipped; nodes that error are treated as
// 404 so one sick node cannot mask the owner's answer.
func (p *Proxy) handleFanout(w http.ResponseWriter, r *http.Request) {
	p.requestsC.Inc()
	for _, node := range p.cl.Candidates(r.URL.Path) {
		resp, err := p.cl.RoundTrip(r.Context(), node, http.MethodGet, r.URL.Path, nil, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound || resp.StatusCode >= 500 {
			discard(resp)
			continue
		}
		p.forwardedC.Inc()
		relay(w, resp)
		return
	}
	writeError(w, http.StatusNotFound, "no node knows %s", r.URL.Path)
}

// handleCache routes a cache read to the fingerprint's owner, like
// the nodes' own peer fills do.
func (p *Proxy) handleCache(w http.ResponseWriter, r *http.Request) {
	p.requestsC.Inc()
	resp, err := p.forward(r, r.PathValue("fp"), r.URL.Path, nil, nil)
	p.finishForward(w, resp, err, r.PathValue("fp"))
}

func (p *Proxy) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, p.Status())
}

// Status is the machine-readable gateway state behind GET /status and
// `soeproxy -status`.
func (p *Proxy) Status() map[string]any {
	counters := map[string]uint64{}
	for _, name := range []string{
		"proxy.requests", "proxy.forwarded", "proxy.retries",
		"proxy.hedges", "proxy.hedge_wins", "proxy.shed",
	} {
		counters[name] = p.reg.Counter(name).Load()
	}
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return map[string]any{
		"nodes":          p.cl.Snapshot(),
		"proxy":          counters,
		"hedge_after_ms": p.hedgeDelay().Milliseconds(),
	}
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.cl.Snapshot() // refresh cluster.* gauges before the dump
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := p.reg.WriteTo(w); err != nil {
		p.logf("metrics dump: %v", err)
	}
}

// latWindow is a fixed ring of recent latencies with a lock cheap
// enough for the request path.
type latWindow struct {
	mu  sync.Mutex
	buf [64]time.Duration
	n   int // total observations (buf index = n % len)
}

func (l *latWindow) add(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%len(l.buf)] = d
	l.n++
	l.mu.Unlock()
}

// p95 returns the window's 95th percentile, or 0 with fewer than
// hedgeMinSamples observations (not enough signal to hedge on).
func (l *latWindow) p95() time.Duration {
	l.mu.Lock()
	size := l.n
	if size > len(l.buf) {
		size = len(l.buf)
	}
	samples := make([]time.Duration, size)
	copy(samples, l.buf[:size])
	l.mu.Unlock()
	if size < hedgeMinSamples {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[(size*95)/100]
}
