package proxy

// The cluster chaos suite (tentpole (d)): seeded network faults
// injected between the gateway (or a filling node) and the fleet,
// proving two properties under every fault:
//
//  1. correctness — every request that completes carries a correct
//     result (sha256-verified peer fill or local recomputation);
//  2. the dedup invariant — with pre-forward faults (drop, 5xx, node
//     death) the cluster-wide count of started simulations equals the
//     number of distinct specs, because a request that never reached
//     a node cannot have been executed there.
//
// Post-forward faults (corrupt, latency past the peer timeout) are
// caught by verification/timeout and degrade to a local run — those
// tests assert correctness and degradation, not the exact count.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"soemt/internal/cluster"
	"soemt/internal/faultinject"
	"soemt/internal/obs"
	"soemt/internal/serve"
	"soemt/internal/sim"
)

// testNode is one live soeserve member.
type testNode struct {
	s  *serve.Server
	ts *httptest.Server
	cl *cluster.Cluster
}

func (n *testNode) url() string { return n.ts.URL }

// startNodes boots n soeserve instances with stubbed simulations and
// joins them into one cluster (peer fill on, no probe loops — health
// stays Healthy and breakers carry the failure handling, keeping the
// tests timing-independent).
func startNodes(t *testing.T, n int) []*testNode {
	t.Helper()
	return startNodesWith(t, n,
		func(i int) serve.Config {
			return serve.Config{NodeName: fmt.Sprintf("n%d", i+1), Workers: 2}
		},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return chaosResult(spec), nil
		})
}

// startNodesWith is startNodes with per-node config and a custom
// simulation stub.
func startNodesWith(t *testing.T, n int, mkCfg func(i int) serve.Config, stub func(context.Context, sim.Spec) (*sim.Result, error)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		s, err := serve.NewServer(mkCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		s.Cache().SetRunFunc(stub)
		nodes[i] = &testNode{s: s, ts: httptest.NewServer(s.Handler())}
	}
	urls := nodeURLs(nodes)
	for _, nd := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self:     nd.url(),
			Nodes:    urls,
			Registry: nd.s.Observability(),
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.cl = cl
		nd.s.SetPeers(cl, 500*time.Millisecond)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.cl.StopProbes()
			nd.ts.Close()
			dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			nd.s.Drain(dctx)
			cancel()
		}
	})
	return nodes
}

func nodeURLs(nodes []*testNode) []string {
	urls := make([]string, len(nodes))
	for i, nd := range nodes {
		urls[i] = nd.url()
	}
	return urls
}

// startProxy builds a gateway over urls, with inj (may be nil)
// injected into the proxy→fleet transport.
func startProxy(t *testing.T, urls []string, inj *faultinject.Injector, cfg Config) (*Proxy, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	cl, err := cluster.New(cluster.Config{
		Nodes:     urls,
		Transport: faultinject.RoundTripper(nil, inj),
		Registry:  reg,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cluster = cl
	cfg.Registry = reg
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(func() {
		cl.StopProbes()
		ts.Close()
	})
	return p, ts
}

func chaosResult(spec sim.Spec) *sim.Result {
	res := &sim.Result{WallCycles: 1_000, IPCTotal: float64(len(spec.Threads))}
	for _, th := range spec.Threads {
		res.Threads = append(res.Threads, sim.ThreadResult{Name: th.Profile.Name, IPC: 1})
	}
	return res
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response from %s: %v", url, err)
	}
	return resp.StatusCode, m, resp.Header
}

// distinctSpecs builds n distinct exact-tier run requests.
func distinctSpecs(n int) []serve.RunRequest {
	out := make([]serve.RunRequest, n)
	for i := range out {
		out[i] = serve.RunRequest{
			Pair:  "gcc:eon",
			F:     0.05 + 0.05*float64(i),
			Scale: "tiny",
			Tier:  serve.TierExact,
		}
	}
	return out
}

func waitIdle(nodes []*testNode) {
	for _, nd := range nodes {
		nd.s.WaitIdle()
	}
}

// runsStarted sums the cluster-wide count of actually started
// simulations — the left side of the dedup invariant.
func runsStarted(nodes []*testNode) uint64 {
	var sum uint64
	for _, nd := range nodes {
		sum += nd.s.Observability().Counter("runner.runs_started").Load()
	}
	return sum
}

// TestClusterDedupInvariantFaultFree is the baseline: a 100-request
// burst of 10 distinct specs through the gateway costs the 3-node
// cluster exactly 10 simulations.
func TestClusterDedupInvariantFaultFree(t *testing.T) {
	nodes := startNodes(t, 3)
	_, pts := startProxy(t, nodeURLs(nodes), nil, Config{})

	specs := distinctSpecs(10)
	var wg sync.WaitGroup
	errs := make(chan error, 10*len(specs))
	for rep := 0; rep < 10; rep++ {
		for _, rq := range specs {
			wg.Add(1)
			go func(rq serve.RunRequest) {
				defer wg.Done()
				code, _, _ := postJSON(t, pts.URL+"/v1/run", rq)
				if code != http.StatusAccepted && code != http.StatusTooManyRequests {
					errs <- fmt.Errorf("status %d, want 202 or 429", code)
				}
			}(rq)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	waitIdle(nodes)

	if got := runsStarted(nodes); got != 10 {
		t.Fatalf("cluster ran %d simulations for 10 distinct specs, want exactly 10", got)
	}
}

// TestClusterDedupInvariantUnderPerHostDrop cuts the gateway's link
// to one node entirely (peer.drop@host fires before forwarding, so
// the node never sees a byte). Every request must still complete and
// the invariant stays exact: the dropped node ran nothing, its keys'
// successors ran each spec once.
func TestClusterDedupInvariantUnderPerHostDrop(t *testing.T) {
	nodes := startNodes(t, 3)
	victim := strings.TrimPrefix(nodes[0].url(), "http://")
	inj := faultinject.New(31).Arm(faultinject.SitePeerDrop+"@"+victim, faultinject.Plan{Every: 1})
	_, pts := startProxy(t, nodeURLs(nodes), inj, Config{})

	specs := distinctSpecs(10)
	for _, rq := range specs {
		for rep := 0; rep < 3; rep++ {
			code, _, _ := postJSON(t, pts.URL+"/v1/run", rq)
			if code != http.StatusAccepted {
				t.Fatalf("spec f=%.2f rep %d: status %d, want 202", rq.F, rep, code)
			}
		}
	}
	waitIdle(nodes)

	if got := nodes[0].s.Observability().Counter("runner.runs_started").Load(); got != 0 {
		t.Fatalf("unreachable node ran %d simulations, want 0 (drop fires pre-forward)", got)
	}
	if got := runsStarted(nodes); got != 10 {
		t.Fatalf("cluster ran %d simulations for 10 distinct specs, want exactly 10", got)
	}
}

// TestClusterDedupInvariantUnder5xx replaces one node's answers with
// injected 500s (synthesized before forwarding). The gateway must
// fail over; the sick node processes nothing; invariant exact.
func TestClusterDedupInvariantUnder5xx(t *testing.T) {
	nodes := startNodes(t, 3)
	victim := strings.TrimPrefix(nodes[1].url(), "http://")
	inj := faultinject.New(32).Arm(faultinject.SitePeer5xx+"@"+victim, faultinject.Plan{Every: 1})
	_, pts := startProxy(t, nodeURLs(nodes), inj, Config{})

	specs := distinctSpecs(8)
	for _, rq := range specs {
		code, _, _ := postJSON(t, pts.URL+"/v1/run", rq)
		if code != http.StatusAccepted {
			t.Fatalf("spec f=%.2f: status %d, want 202", rq.F, code)
		}
	}
	waitIdle(nodes)

	if got := nodes[1].s.Observability().Counter("runner.runs_started").Load(); got != 0 {
		t.Fatalf("5xx-shadowed node ran %d simulations, want 0", got)
	}
	if got := runsStarted(nodes); got != 8 {
		t.Fatalf("cluster ran %d simulations for 8 distinct specs, want exactly 8", got)
	}
}

// TestClusterSurvivesNodeDeathMidBurst kills a node between bursts:
// its keys fail over to deterministic successors, every request
// completes, and re-submitting the full spec set costs only the dead
// node's keys (already-owned keys are cache hits on the survivors).
func TestClusterSurvivesNodeDeathMidBurst(t *testing.T) {
	nodes := startNodes(t, 3)
	_, pts := startProxy(t, nodeURLs(nodes), nil, Config{})

	specs := distinctSpecs(10)
	for _, rq := range specs {
		if code, _, _ := postJSON(t, pts.URL+"/v1/run", rq); code != http.StatusAccepted {
			t.Fatalf("pre-kill: status %d, want 202", code)
		}
	}
	waitIdle(nodes)
	if got := runsStarted(nodes); got != 10 {
		t.Fatalf("pre-kill: %d simulations, want 10", got)
	}

	nodes[2].ts.Close() // kill one node: connections now refuse

	for _, rq := range specs {
		if code, _, _ := postJSON(t, pts.URL+"/v1/run", rq); code != http.StatusAccepted {
			t.Fatalf("post-kill: status %d, want 202", code)
		}
	}
	waitIdle(nodes[:2])

	// Survivors re-ran only what the dead node owned: total started
	// across ALL nodes is 10 + (dead node's keys), strictly < 20 unless
	// it owned everything, and the survivors hold a correct result for
	// every spec.
	total := runsStarted(nodes)
	dead := nodes[2].s.Observability().Counter("runner.runs_started").Load()
	if want := 10 + dead; total != want {
		t.Fatalf("post-kill: %d total simulations, want %d (10 + the dead node's %d)", total, want, dead)
	}
	for _, rq := range specs {
		key, err := rq.RouteKey()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, nd := range nodes[:2] {
			if res, ok := nd.s.Cache().Get(key); ok && res.WallCycles == 1000 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("spec f=%.2f has no correct result on any survivor", rq.F)
		}
	}
}

// TestPeerFillCorruptionDegradesToLocalRun injects response-body
// corruption into one node's peer-fill transport. Verification must
// reject every corrupted entry and the node must recompute locally —
// correct result, degradation counted, no error surfaced.
func TestPeerFillCorruptionDegradesToLocalRun(t *testing.T) {
	nodes := startNodes(t, 2)
	rq := serve.RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: serve.TierExact}
	key, err := rq.RouteKey()
	if err != nil {
		t.Fatal(err)
	}
	owner, filler := nodes[0], nodes[1]
	if nodes[0].cl.Owner(key) == nodes[1].url() {
		owner, filler = nodes[1], nodes[0]
	}

	// Rewire the filler's cluster with a corrupting transport.
	inj := faultinject.New(77).Arm(faultinject.SitePeerCorrupt, faultinject.Plan{Every: 1})
	cl, err := cluster.New(cluster.Config{
		Self:      filler.url(),
		Nodes:     nodeURLs(nodes),
		Transport: faultinject.RoundTripper(nil, inj),
		Registry:  filler.s.Observability(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.StopProbes)
	filler.s.SetPeers(cl, 500*time.Millisecond)

	// Warm the owner directly, then submit to the filler directly.
	if code, _, _ := postJSON(t, owner.url()+"/v1/run", rq); code != http.StatusAccepted {
		t.Fatal("owner warmup failed")
	}
	owner.s.WaitIdle()
	code, body, _ := postJSON(t, filler.url()+"/v1/run", rq)
	if code != http.StatusAccepted {
		t.Fatalf("filler submission status %d", code)
	}
	filler.s.WaitIdle()

	if got := filler.s.Observability().Counter("cluster.peer_fill_errors").Load(); got < 1 {
		t.Fatalf("cluster.peer_fill_errors = %d, want >= 1 (corruption must be caught)", got)
	}
	if got := filler.s.Observability().Counter("runner.runs_started").Load(); got != 1 {
		t.Fatalf("filler ran %d simulations, want 1 (local recompute)", got)
	}
	code, job := getJSON(t, filler.url()+"/v1/jobs/"+body["id"].(string))
	if code != http.StatusOK || job["state"] != serve.StateDone {
		t.Fatalf("filler job: %d %v, want done", code, job["state"])
	}
	res, ok := filler.s.Cache().Get(key)
	if !ok || res.WallCycles != 1000 {
		t.Fatalf("filler result wrong after corrupt peer: ok=%v res=%+v", ok, res)
	}
}

// TestPeerFillSlowPeerDegradesToLocalRun injects latency beyond the
// peer timeout into the fill path: the fetch must time out and the
// node must simulate locally instead of stalling the job.
func TestPeerFillSlowPeerDegradesToLocalRun(t *testing.T) {
	nodes := startNodes(t, 2)
	rq := serve.RunRequest{Pair: "gcc:eon", F: 0.35, Scale: "tiny", Tier: serve.TierExact}
	key, err := rq.RouteKey()
	if err != nil {
		t.Fatal(err)
	}
	owner, filler := nodes[0], nodes[1]
	if nodes[0].cl.Owner(key) == nodes[1].url() {
		owner, filler = nodes[1], nodes[0]
	}

	inj := faultinject.New(78).Arm(faultinject.SitePeerLatency,
		faultinject.Plan{Every: 1, Delay: 300 * time.Millisecond})
	cl, err := cluster.New(cluster.Config{
		Self:      filler.url(),
		Nodes:     nodeURLs(nodes),
		Transport: faultinject.RoundTripper(nil, inj),
		Registry:  filler.s.Observability(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.StopProbes)
	filler.s.SetPeers(cl, 50*time.Millisecond) // peer budget far under the injected delay

	if code, _, _ := postJSON(t, owner.url()+"/v1/run", rq); code != http.StatusAccepted {
		t.Fatal("owner warmup failed")
	}
	owner.s.WaitIdle()
	start := time.Now()
	code, _, _ := postJSON(t, filler.url()+"/v1/run", rq)
	if code != http.StatusAccepted {
		t.Fatalf("filler submission status %d", code)
	}
	filler.s.WaitIdle()

	if got := filler.s.Observability().Counter("cluster.peer_fill_errors").Load(); got < 1 {
		t.Fatalf("cluster.peer_fill_errors = %d, want >= 1 (timeout must be caught)", got)
	}
	if got := filler.s.Observability().Counter("runner.runs_started").Load(); got != 1 {
		t.Fatalf("filler ran %d simulations, want 1 (local recompute)", got)
	}
	if res, ok := filler.s.Cache().Get(key); !ok || res.WallCycles != 1000 {
		t.Fatalf("filler result wrong after slow peer: ok=%v", ok)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow peer stalled the job for %s", elapsed)
	}
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response from %s: %v", url, err)
	}
	return resp.StatusCode, m
}
