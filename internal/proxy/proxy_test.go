package proxy

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"soemt/internal/cluster"
	"soemt/internal/faultinject"
	"soemt/internal/serve"
	"soemt/internal/sim"
)

func TestProxyHedgesFastTierAfterLatency(t *testing.T) {
	nodes := startNodes(t, 2)
	urls := nodeURLs(nodes)
	rq := serve.RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: serve.TierFast}
	key, err := rq.RouteKey()
	if err != nil {
		t.Fatal(err)
	}
	ownerHost := strings.TrimPrefix(cluster.NewRing(urls, 0).Owner(key), "http://")

	// Only the owner is slow: the hedge must fire and the successor's
	// answer must win.
	inj := faultinject.New(55).Arm(faultinject.SitePeerLatency+"@"+ownerHost,
		faultinject.Plan{Every: 1, Delay: 400 * time.Millisecond})
	p, pts := startProxy(t, urls, inj, Config{HedgeAfter: 20 * time.Millisecond})

	start := time.Now()
	code, body, _ := postJSON(t, pts.URL+"/v1/run", rq)
	if code != http.StatusOK {
		t.Fatalf("fast run via proxy: status %d (%v), want 200", code, body)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not cut the latency tail: %s", elapsed)
	}
	if got := p.Observability().Counter("proxy.hedges").Load(); got != 1 {
		t.Fatalf("proxy.hedges = %d, want 1", got)
	}
	if got := p.Observability().Counter("proxy.hedge_wins").Load(); got != 1 {
		t.Fatalf("proxy.hedge_wins = %d, want 1", got)
	}
}

func TestProxyShedsWithRetryAfterWhenFleetUnreachable(t *testing.T) {
	nodes := startNodes(t, 1)
	p, pts := startProxy(t, nodeURLs(nodes), nil, Config{})
	nodes[0].ts.Close() // the whole fleet refuses connections

	rq := serve.RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: serve.TierExact}
	var sawBreakerShed bool
	for i := 0; i < 5; i++ {
		code, body, hdr := postJSON(t, pts.URL+"/v1/run", rq)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d (%v), want 503", i, code, body)
		}
		ra, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("request %d: Retry-After %q, want integer >= 1", i, hdr.Get("Retry-After"))
		}
		if strings.Contains(body["error"].(string), "breaker open") {
			sawBreakerShed = true
		}
	}
	// TripAfter=3 connection failures open the breaker, so the later
	// rejections must come from the breaker without dialing.
	if !sawBreakerShed {
		t.Fatal("breaker never tripped across 5 failed submissions")
	}
	if got := p.Observability().Counter("proxy.shed").Load(); got != 5 {
		t.Fatalf("proxy.shed = %d, want 5", got)
	}
}

func TestProxyFansJobLookupAcrossNodes(t *testing.T) {
	nodes := startNodes(t, 3)
	_, pts := startProxy(t, nodeURLs(nodes), nil, Config{})

	rq := serve.RunRequest{Pair: "gcc:eon", F: 0.25, Scale: "tiny", Tier: serve.TierExact}
	code, body, _ := postJSON(t, pts.URL+"/v1/run", rq)
	if code != http.StatusAccepted {
		t.Fatalf("submission status %d", code)
	}
	id := body["id"].(string)
	if !strings.Contains(id, "-job-") {
		t.Fatalf("job id %q is not node-scoped", id)
	}
	waitIdle(nodes)

	code, job := getJSON(t, pts.URL+"/v1/jobs/"+id)
	if code != http.StatusOK || job["state"] != serve.StateDone {
		t.Fatalf("fanned-out lookup: %d %v, want 200 done", code, job["state"])
	}
	if code, _ := getJSON(t, pts.URL+"/v1/jobs/n9-job-000042"); code != http.StatusNotFound {
		t.Fatalf("unknown id lookup = %d, want 404", code)
	}
}

func TestProxyPropagates429WithRetryAfter(t *testing.T) {
	// One saturated node: queue depth 1, one worker, slow simulations.
	nodes := startNodesWith(t, 1,
		func(i int) serve.Config {
			return serve.Config{NodeName: "n1", QueueDepth: 1, Workers: 1}
		},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			select {
			case <-time.After(500 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return chaosResult(spec), nil
		})
	_, pts := startProxy(t, nodeURLs(nodes), nil, Config{})

	first := serve.RunRequest{Pair: "gcc:eon", F: 0.1, Scale: "tiny", Tier: serve.TierExact}
	second := serve.RunRequest{Pair: "gcc:eon", F: 0.2, Scale: "tiny", Tier: serve.TierExact}
	if code, _, _ := postJSON(t, pts.URL+"/v1/run", first); code != http.StatusAccepted {
		t.Fatalf("first submission status %d", code)
	}
	code, _, hdr := postJSON(t, pts.URL+"/v1/run", second)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submission status %d, want 429 (queue full)", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	waitIdle(nodes)
}

func TestProxyStatusExportsNodesAndCounters(t *testing.T) {
	nodes := startNodes(t, 2)
	_, pts := startProxy(t, nodeURLs(nodes), nil, Config{})

	if code, _, _ := postJSON(t, pts.URL+"/v1/run",
		serve.RunRequest{Pair: "gcc:eon", F: 0.4, Scale: "tiny", Tier: serve.TierExact}); code != http.StatusAccepted {
		t.Fatal("seed submission failed")
	}
	waitIdle(nodes)

	code, st := getJSON(t, pts.URL+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status = %d", code)
	}
	if got := len(st["nodes"].([]any)); got != 2 {
		t.Fatalf("/status lists %d nodes, want 2", got)
	}
	counters := st["proxy"].(map[string]any)
	for _, name := range []string{"proxy.requests", "proxy.forwarded", "proxy.retries", "proxy.hedges", "proxy.shed"} {
		if _, ok := counters[name]; !ok {
			t.Fatalf("/status missing counter %s (have %v)", name, counters)
		}
	}
	if counters["proxy.forwarded"].(float64) < 1 {
		t.Fatalf("proxy.forwarded = %v, want >= 1", counters["proxy.forwarded"])
	}

	// /metrics carries the same registry in text form.
	resp, err := http.Get(pts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	text := string(buf[:n])
	for _, name := range []string{"proxy.forwarded", "cluster.breaker_open"} {
		if !strings.Contains(text, name) {
			t.Fatalf("/metrics missing %s:\n%s", name, text)
		}
	}
}

func TestProxyRejectsOversizedAndMalformedBodies(t *testing.T) {
	nodes := startNodes(t, 1)
	_, pts := startProxy(t, nodeURLs(nodes), nil, Config{MaxBodyBytes: 512})

	big := `{"pair":"` + strings.Repeat("x", 2048) + `"}`
	resp, err := http.Post(pts.URL+"/v1/run", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}

	resp, err = http.Post(pts.URL+"/v1/run", "application/json", strings.NewReader(`{"pair":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d, want 400 from the gateway (no candidate walk)", resp.StatusCode)
	}
}
