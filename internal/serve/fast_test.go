package serve

import (
	"context"
	"math"
	"net/http"
	"testing"
	"time"

	"soemt/internal/model"
	"soemt/internal/sim"
)

// failingStub is a backend that must never run: the fast tier's whole
// point is answering without the cycle-accurate engine.
func failingStub(t *testing.T) func(context.Context, sim.Spec) (*sim.Result, error) {
	return func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
		t.Error("fast tier invoked the simulation backend")
		return stubResult(spec), nil
	}
}

// TestFastTierAnswersWithoutSimulation: tier=fast is synchronous (200,
// not 202), carries the analytical fidelity marker and error bars, and
// leaves every engine counter untouched.
func TestFastTierAnswersWithoutSimulation(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1}, failingStub(t))

	rq := RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: TierFast}
	for i := 0; i < 5; i++ {
		code, body, _ := post(t, ts.URL+"/v1/run", rq)
		if code != http.StatusOK {
			t.Fatalf("fast run %d: status %d (%v), want 200", i, code, body)
		}
		if body["fidelity"] != FidelityAnalytical {
			t.Fatalf("fast run fidelity = %v, want analytical", body["fidelity"])
		}
		if ipc, _ := body["ipc_total"].(float64); ipc <= 0 || math.IsNaN(ipc) {
			t.Fatalf("fast run ipc_total = %v", body["ipc_total"])
		}
		if bar, _ := body["err_ipc_pc"].(float64); bar <= 0 {
			t.Fatalf("fast answer carries no IPC error bar: %v", body)
		}
	}

	// A single-thread reference answer.
	code, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Bench: "swim", Scale: "tiny", Tier: TierFast})
	if code != http.StatusOK || body["fidelity"] != FidelityAnalytical {
		t.Fatalf("fast bench = %d %v", code, body)
	}

	// And an analytical sweep matrix.
	code, body, _ = post(t, ts.URL+"/v1/sweep", SweepRequest{Pairs: []string{"gcc:eon", "swim:mcf"}, Tier: TierFast})
	if code != http.StatusOK {
		t.Fatalf("fast sweep: status %d (%v), want 200", code, body)
	}
	rows := body["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("fast sweep rows = %d, want 2", len(rows))
	}
	if byF := rows[0].(map[string]any)["by_f"].(map[string]any); len(byF) != 4 {
		t.Fatalf("fast sweep row carries %d F levels, want 4", len(byF))
	}

	// No simulation, no job: the engine-side counters must be zero.
	for _, name := range []string{"runner.runs_started", "serve.jobs_accepted", "serve.jobs_completed"} {
		if got := counter(s, name); got != 0 {
			t.Errorf("%s = %d after fast-only traffic, want 0", name, got)
		}
	}
	if got := counter(s, "serve.fast.answers"); got != 7 {
		t.Errorf("serve.fast.answers = %d, want 7", got)
	}
	if got := counter(s, "serve.fast.cache_hits"); got < 4 {
		t.Errorf("serve.fast.cache_hits = %d, want >= 4 for repeated identical runs", got)
	}

	// Tier interactions that must fail fast.
	if code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", Tier: "warp"}); code != http.StatusBadRequest {
		t.Errorf("unknown tier: status %d, want 400", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", Tier: TierFast, Trace: true}); code != http.StatusBadRequest {
		t.Errorf("fast+trace: status %d, want 400", code)
	}
}

// TestAutoTierRefinesInPlace: tier=auto returns the analytical answer
// in the 202 body, the job serves it while the simulation runs, and
// GET /v1/jobs/{id} flips to fidelity=exact with the simulated result
// once the engine finishes — the observe–predict–refine contract.
func TestAutoTierRefinesInPlace(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			select {
			case <-release:
				return stubResult(spec), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})

	code, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: TierAuto})
	if code != http.StatusAccepted {
		t.Fatalf("auto run: status %d, want 202", code)
	}
	if body["fidelity"] != FidelityAnalytical || body["result"] == nil {
		t.Fatalf("202 body lacks the fast answer: %v", body)
	}
	id := body["id"].(string)

	// While the exact simulation is wedged, the job already serves the
	// analytical answer.
	code, jb := get(t, ts.URL+"/v1/jobs/"+id)
	if code != http.StatusOK || jb["fidelity"] != FidelityAnalytical {
		t.Fatalf("in-flight auto job = %d fidelity %v, want analytical", code, jb["fidelity"])
	}
	res := jb["result"].(map[string]any)
	if res["fidelity"] != FidelityAnalytical {
		t.Fatalf("in-flight result payload fidelity = %v", res["fidelity"])
	}

	close(release)
	s.WaitIdle()

	_, jb = get(t, ts.URL+"/v1/jobs/"+id)
	if jb["state"] != StateDone || jb["fidelity"] != FidelityExact {
		t.Fatalf("refined auto job = state %v fidelity %v, want done/exact", jb["state"], jb["fidelity"])
	}
	res = jb["result"].(map[string]any)
	if _, isFast := res["err_ipc_pc"]; isFast {
		t.Fatalf("refined result still carries analytical error bars: %v", res)
	}
	if res["fingerprint"] == "" {
		t.Fatalf("refined result is not the simulated payload: %v", res)
	}
	if got := counter(s, "runner.runs_started"); got != 1 {
		t.Errorf("runs_started = %d, want 1", got)
	}
	if got := counter(s, "serve.fast.answers"); got != 1 {
		t.Errorf("serve.fast.answers = %d, want 1", got)
	}
}

// TestTerminalJobEviction is the regression test for the unbounded job
// map: under a burst of distinct jobs, retained terminal jobs must stay
// within MaxTerminalJobs, and an evicted id must answer 410 Gone (a
// never-issued id stays 404).
func TestTerminalJobEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 64, Workers: 2, MaxTerminalJobs: 4, JobRetention: time.Hour},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return stubResult(spec), nil
		})

	const burst = 20
	ids := make([]string, burst)
	for i := 0; i < burst; i++ {
		// Distinct enforcement levels: no coalescing, 20 real jobs.
		code, body, _ := post(t, ts.URL+"/v1/run",
			RunRequest{Pair: "gcc:eon", F: float64(i) / (2 * burst), Scale: "tiny", Tier: TierExact})
		if code != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, code)
		}
		ids[i] = body["id"].(string)
	}
	s.WaitIdle()
	// Trigger eviction of the final stragglers (finish evicts as jobs
	// land, submit-side eviction handles quiet periods).
	code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{Bench: "gcc", Scale: "tiny", Tier: TierExact})
	if code != http.StatusAccepted {
		t.Fatalf("trailing submission: status %d", code)
	}
	s.WaitIdle()

	s.mu.Lock()
	retained := len(s.jobs)
	s.mu.Unlock()
	if retained > s.cfg.MaxTerminalJobs {
		t.Fatalf("job map retains %d jobs, bound is %d", retained, s.cfg.MaxTerminalJobs)
	}
	if got := counter(s, "serve.jobs_evicted"); got < burst-4 {
		t.Errorf("serve.jobs_evicted = %d, want >= %d", got, burst-4)
	}

	// The oldest job of the burst is long evicted: deterministic 410.
	if code, body := get(t, ts.URL+"/v1/jobs/"+ids[0]); code != http.StatusGone {
		t.Fatalf("evicted job: status %d (%v), want 410", code, body)
	}
	// Ids never issued stay 404.
	if code, _ := get(t, ts.URL+"/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("unissued job id: status %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/banana"); code != http.StatusNotFound {
		t.Fatalf("malformed job id: status %d, want 404", code)
	}
}

// TestJobRetentionTTL: terminal jobs past the retention window are
// evicted on the next admission even when the size bound is far away.
func TestJobRetentionTTL(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, Workers: 1, JobRetention: time.Millisecond},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return stubResult(spec), nil
		})
	code, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Bench: "gcc", Scale: "tiny", Tier: TierExact})
	if code != http.StatusAccepted {
		t.Fatalf("submission: status %d", code)
	}
	id := body["id"].(string)
	s.WaitIdle()
	time.Sleep(5 * time.Millisecond)

	// A bare GET must sweep too — submit/finish never fire under a
	// fast-tier-only workload, so read-side eviction is what makes the
	// TTL observable (pre-fix this returned 200 forever).
	if code, _ := get(t, ts.URL+"/v1/jobs/"+id); code != http.StatusGone {
		t.Fatalf("expired job on GET: status %d, want 410", code)
	}

	// Submission-side eviction keeps sweeping as traffic arrives.
	code, body, _ = post(t, ts.URL+"/v1/run", RunRequest{Bench: "eon", Scale: "tiny", Tier: TierExact})
	if code != http.StatusAccepted {
		t.Fatalf("second submission: status %d", code)
	}
	id2 := body["id"].(string)
	s.WaitIdle()
	time.Sleep(5 * time.Millisecond)
	if code, _ := get(t, ts.URL+"/v1/jobs/"+id2); code != http.StatusGone {
		t.Fatalf("second expired job: status %d, want 410", code)
	}
	s.WaitIdle()
}

// TestRetryAfterDerivedFromDrainRate is the regression test for the
// hard-coded Retry-After: with an observed per-job execution time and a
// backlog, the 429 header must reflect backlog/workers · exec-time
// (capped at 60), not a constant.
func TestRetryAfterDerivedFromDrainRate(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, BatchSize: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			select {
			case <-release:
				return stubResult(spec), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
	defer close(release)

	// Simulate a history of slow jobs: 120s smoothed execution time.
	s.mu.Lock()
	s.execEWMA = 120
	s.mu.Unlock()

	for _, bench := range []string{"gcc", "eon"} {
		if code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{Bench: bench, Scale: "tiny", Tier: TierExact}); code != http.StatusAccepted {
			t.Fatalf("fill submission: status %d", code)
		}
	}
	_, _, hdr := post(t, ts.URL+"/v1/run", RunRequest{Bench: "swim", Scale: "tiny", Tier: TierExact})
	// 2 pending / 1 worker · 120s, capped at 60.
	if got := hdr.Get("Retry-After"); got != "60" {
		t.Fatalf("Retry-After = %q with 120s EWMA and 2-deep backlog, want capped 60", got)
	}

	// Fast history: the floor holds.
	s.mu.Lock()
	s.execEWMA = 0.01
	s.mu.Unlock()
	_, _, hdr = post(t, ts.URL+"/v1/run", RunRequest{Bench: "mcf", Scale: "tiny", Tier: TierExact})
	if got := hdr.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q with 10ms EWMA, want the 1s floor", got)
	}
}

// TestFastTierNonFiniteRejected: a calibration that would produce a
// non-finite prediction is refused with 422 — nothing non-finite
// reaches the response or the fast cache. The auto tier degrades to
// exact-only instead of failing.
func TestFastTierNonFiniteRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return stubResult(spec), nil
		})
	// Corrupt the table in place (fields are public; Validate would
	// refuse this at load time — the guard under test is the serving
	// boundary).
	s.calibration = &model.Calibration{
		SchemaVersion: model.CalibrationSchemaVersion,
		Source:        model.SourceProfile,
		MissLat:       300,
		SwitchLat:     25,
		Threads: map[string]model.ThreadParams{
			"gcc": {Name: "gcc", IPCNoMiss: math.NaN(), IPM: math.Inf(1)},
			"eon": {Name: "eon", IPCNoMiss: 1.7, IPM: 66000},
		},
		ErrIPCPc:    50,
		ErrFairness: 0.5,
	}

	code, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: TierFast})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("fast run with NaN calibration: status %d (%v), want 422", code, body)
	}
	if got := counter(s, "serve.fast.unavailable"); got != 1 {
		t.Errorf("serve.fast.unavailable = %d, want 1", got)
	}
	s.mu.Lock()
	cached := len(s.fastCache)
	s.mu.Unlock()
	if cached != 0 {
		t.Errorf("non-finite prediction reached the fast cache (%d entries)", cached)
	}

	// auto degrades: accepted, refined exact, no analytical payload.
	code, body, _ = post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny", Tier: TierAuto})
	if code != http.StatusAccepted {
		t.Fatalf("auto run with NaN calibration: status %d, want 202", code)
	}
	if body["fidelity"] != nil {
		t.Fatalf("degraded auto 202 claims fidelity %v", body["fidelity"])
	}
	id := body["id"].(string)
	s.WaitIdle()
	_, jb := get(t, ts.URL+"/v1/jobs/"+id)
	if jb["state"] != StateDone || jb["fidelity"] != FidelityExact {
		t.Fatalf("degraded auto job = state %v fidelity %v, want done/exact", jb["state"], jb["fidelity"])
	}
}
