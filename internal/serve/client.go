package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is a minimal soeserve/soeproxy submission client for
// open-loop traffic replay (cmd/soegen). It speaks the deterministic
// admission contract: 202 (or 200 for tier=fast) accepts, 429 and 503
// carry a server-computed Retry-After that the client honors before
// retrying, bounded by MaxRetries. Everything else is returned to the
// caller unretried — replay drivers classify statuses, they don't
// hide them.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// MaxRetries bounds how many 429/503 bounces a single submission
	// absorbs before giving up and reporting the last status.
	MaxRetries int
	// Backoff is the wait used when the server sends no usable
	// Retry-After; zero means defaultBackoff.
	Backoff time.Duration
}

const defaultBackoff = 100 * time.Millisecond

// SubmitOutcome reports how one submission ended. Status is the final
// HTTP status: 202/200 on acceptance, 429/503 when retries ran out,
// or whatever the server said for non-retryable answers.
type SubmitOutcome struct {
	Status    int
	JobID     string
	Coalesced bool
	Retries   int    // 429/503 bounces absorbed before the final answer
	Body      string // error body text for non-2xx finals
}

// Accepted reports whether the submission landed (2xx).
func (o SubmitOutcome) Accepted() bool { return o.Status >= 200 && o.Status < 300 }

// SubmitRun submits one RunRequest, honoring Retry-After on 429/503
// up to MaxRetries. Transport failures and context cancellation
// return an error; HTTP-level refusals are reported in the outcome.
func (c *Client) SubmitRun(ctx context.Context, rq RunRequest) (SubmitOutcome, error) {
	payload, err := json.Marshal(rq)
	if err != nil {
		return SubmitOutcome{}, fmt.Errorf("serve client: encode: %w", err)
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var out SubmitOutcome
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.BaseURL+"/v1/run", bytes.NewReader(payload))
		if err != nil {
			return out, fmt.Errorf("serve client: %w", err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(req)
		if err != nil {
			return out, fmt.Errorf("serve client: %w", err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
		out.Status = resp.StatusCode

		switch {
		case resp.StatusCode == http.StatusAccepted:
			var acc struct {
				ID        string `json:"id"`
				Coalesced bool   `json:"coalesced"`
			}
			if err := json.Unmarshal(body, &acc); err != nil {
				return out, fmt.Errorf("serve client: bad 202 body: %w", err)
			}
			out.JobID, out.Coalesced = acc.ID, acc.Coalesced
			return out, nil
		case resp.StatusCode == http.StatusOK:
			// tier=fast answers inline; there is no job handle.
			return out, nil
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			if attempt >= c.MaxRetries {
				out.Body = string(body)
				return out, nil
			}
			out.Retries++
			if err := c.wait(ctx, resp.Header.Get("Retry-After")); err != nil {
				return out, err
			}
		default:
			out.Body = string(body)
			return out, nil
		}
	}
}

// wait sleeps for the server's Retry-After (whole seconds per the
// admission contract), or the client backoff when absent or
// unparsable, returning early if ctx ends.
func (c *Client) wait(ctx context.Context, retryAfter string) error {
	d := c.Backoff
	if d <= 0 {
		d = defaultBackoff
	}
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
