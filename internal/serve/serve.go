// Package serve implements soeserve, the batching simulation service:
// the experiment engine behind a bounded job queue with backpressure,
// a request coalescer layered on the content-addressed result cache,
// and a micro-batcher feeding a simulation worker pool.
//
// Request flow (DESIGN.md §11):
//
//	POST /v1/run ───┐
//	POST /v1/sweep ─┴▶ coalescer ▶ bounded queue ▶ micro-batcher ▶ worker pool ▶ cache/singleflight ▶ sim
//
// Admission is bounded by QueueDepth accepted-but-unfinished jobs;
// beyond that, submissions get 429 + Retry-After instead of unbounded
// memory. Identical concurrent requests coalesce onto one job before
// the queue, and whatever slips past the coalescer (e.g. a request
// arriving after its twin started running) is still deduplicated by
// the cache's singleflight layer — so N identical submissions cost one
// simulation regardless of timing.
//
// Drain (SIGTERM) stops admission, finishes every accepted job, and —
// past the drain deadline — cancels in-flight work; interrupted sweeps
// checkpoint their completed rows and mark the result cache through
// the internal/cli interrupt path, so a restart resumes from every
// simulation that finished.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"soemt/internal/cli"
	"soemt/internal/cluster"
	"soemt/internal/experiments"
	"soemt/internal/model"
	"soemt/internal/obs"
	"soemt/internal/sim"
)

// Config parameterizes a Server. The zero value gets sensible
// defaults from withDefaults.
type Config struct {
	// QueueDepth bounds accepted-but-unfinished jobs (queued plus
	// running); submissions beyond it are rejected with 429. Default 64.
	QueueDepth int
	// Workers bounds concurrent simulations. Default GOMAXPROCS.
	Workers int
	// BatchSize is the largest group of queued jobs the micro-batcher
	// dispatches to the pool at once. Default 8.
	BatchSize int
	// BatchDelay is how long the batcher waits to fill a batch after
	// the first job arrives. Default 2ms.
	BatchDelay time.Duration
	// CacheDir roots the persistent result cache ("" = memory-only).
	CacheDir string
	// TraceCap is the tracer ring capacity for trace-requesting jobs.
	// Default 65536 events.
	TraceCap int
	// DefaultTier applies when a request leaves tier unset: "fast",
	// "exact" or "auto". Default "auto".
	DefaultTier string
	// Calibration backs the fast tier. Nil falls back to the
	// profile-derived table (wide error bars, no simulation needed).
	Calibration *model.Calibration
	// JobRetention is how long terminal jobs stay queryable on
	// /v1/jobs/{id}; older ones are evicted (410 Gone). Negative
	// disables the TTL (the MaxTerminalJobs bound still applies).
	// Default 1h.
	JobRetention time.Duration
	// MaxTerminalJobs bounds retained terminal jobs regardless of age,
	// so the job map cannot grow linearly with traffic. Default 1024.
	MaxTerminalJobs int
	// NodeName, when set, prefixes job ids ("n1-job-000001") so ids
	// minted by different cluster nodes never collide and a gateway can
	// fan a job lookup across the fleet unambiguously. Default "" (bare
	// "job-%06d", the pre-cluster format).
	NodeName string
	// MaxBodyBytes bounds a request body; larger submissions get a
	// deterministic 413. Default 1 MiB.
	MaxBodyBytes int64
	// Logf, if non-nil, receives server log lines.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 1 << 16
	}
	if c.DefaultTier == "" {
		c.DefaultTier = TierAuto
	}
	if c.JobRetention == 0 {
		c.JobRetention = time.Hour
	}
	if c.MaxTerminalJobs <= 0 {
		c.MaxTerminalJobs = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

var (
	errQueueFull = errors.New("serve: queue full")
	errDraining  = errors.New("serve: draining")
)

// Server is the soeserve engine. Construct with NewServer; all methods
// are safe for concurrent use.
type Server struct {
	cfg   Config
	cache *experiments.Cache
	reg   *obs.Registry

	queue chan *job
	sem   chan struct{} // worker-pool slots

	calibration *model.Calibration // immutable after NewServer

	mu        sync.Mutex
	peers     *cluster.Cluster // joined via SetPeers; nil standalone
	jobs      map[string]*job
	active    map[string]*job // coalescing key -> non-terminal job
	runners   map[string]*experiments.Runner
	fastCache map[string]any // fingerprint+"|fast" -> analytical answer
	terminal  []terminalRef  // eviction order: oldest finished first
	execEWMA  float64        // smoothed exact-job execution seconds
	pending   int            // accepted, not yet terminal
	draining  bool
	seq       int

	jobWG sync.WaitGroup // accepted jobs
	wg    sync.WaitGroup // dispatcher

	baseCtx    context.Context // governs job execution (not tied to any request)
	cancelJobs context.CancelFunc

	coalescedC *obs.Counter
	acceptedC  *obs.Counter
	rejectedC  *obs.Counter
	completedC *obs.Counter
	failedC    *obs.Counter
	batchesC   *obs.Counter
	qWaitTotal *obs.Counter
	qDepth     *obs.Gauge
	qCap       *obs.Gauge
	qWaitLast  *obs.Gauge
	batchLast  *obs.Gauge
	pendingG   *obs.Gauge

	fastC          *obs.Counter
	fastCacheHitsC *obs.Counter
	fastUnavailC   *obs.Counter
	fastLatencyC   *obs.Counter
	evictedC       *obs.Counter
}

// terminalRef remembers when a job went terminal, for TTL/LRU eviction.
type terminalRef struct {
	id string
	at time.Time
}

// NewServer builds the server, its shared result cache, and starts
// the batch dispatcher. Stop it with Drain.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, err := tierFor("", cfg.DefaultTier); err != nil {
		return nil, err
	}
	cal := cfg.Calibration
	if cal == nil {
		var err error
		if cal, err = defaultCalibration(); err != nil {
			return nil, err
		}
	} else if err := cal.Validate(); err != nil {
		return nil, err
	}
	cache, err := experiments.NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	reg := cache.Observability()
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		cache:       cache,
		reg:         reg,
		calibration: cal,
		queue:       make(chan *job, cfg.QueueDepth),
		sem:         make(chan struct{}, cfg.Workers),
		jobs:        make(map[string]*job),
		active:      make(map[string]*job),
		runners:     make(map[string]*experiments.Runner),
		fastCache:   make(map[string]any),
		baseCtx:     baseCtx,
		cancelJobs:  cancel,

		coalescedC: reg.Counter("serve.coalesced"),
		acceptedC:  reg.Counter("serve.jobs_accepted"),
		rejectedC:  reg.Counter("serve.jobs_rejected"),
		completedC: reg.Counter("serve.jobs_completed"),
		failedC:    reg.Counter("serve.jobs_failed"),
		batchesC:   reg.Counter("serve.batches"),
		qWaitTotal: reg.Counter("serve.queue.wait_us_total"),
		qDepth:     reg.Gauge("serve.queue.depth"),
		qCap:       reg.Gauge("serve.queue.capacity"),
		qWaitLast:  reg.Gauge("serve.queue.wait_last_us"),
		batchLast:  reg.Gauge("serve.batch.last_size"),
		pendingG:   reg.Gauge("serve.jobs.pending"),

		fastC:          reg.Counter("serve.fast.answers"),
		fastCacheHitsC: reg.Counter("serve.fast.cache_hits"),
		fastUnavailC:   reg.Counter("serve.fast.unavailable"),
		fastLatencyC:   reg.Counter("serve.fast.latency_us_total"),
		evictedC:       reg.Counter("serve.jobs_evicted"),
	}
	cache.Logf = s.logf
	s.qCap.Set(int64(cfg.QueueDepth))
	s.publishCalibrationMetrics()
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Cache exposes the server's shared result cache (resume notes,
// test stubbing via SetRunFunc).
func (s *Server) Cache() *experiments.Cache { return s.cache }

// Observability returns the registry behind /metrics.
func (s *Server) Observability() *obs.Registry { return s.reg }

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// submit runs admission control under one lock acquisition: reject
// while draining, coalesce onto a live identical job, enforce the
// pending bound, otherwise register and enqueue. The channel send
// cannot block: pending ≤ QueueDepth bounds the jobs that can be in
// the channel, which has exactly that capacity. On rejection, retry is
// the derived Retry-After in seconds.
func (s *Server) submit(j *job) (acc *job, coalesced bool, retry int, err error) {
	s.mu.Lock()
	s.evictLocked(time.Now())
	if s.draining {
		retry = s.retryAfterLocked()
		s.mu.Unlock()
		return nil, false, retry, errDraining
	}
	if prev, ok := s.active[j.key]; ok {
		prev.mu.Lock()
		prev.coalesced++
		prev.mu.Unlock()
		s.mu.Unlock()
		s.coalescedC.Inc()
		return prev, true, 0, nil
	}
	if s.pending >= s.cfg.QueueDepth {
		retry = s.retryAfterLocked()
		s.mu.Unlock()
		s.rejectedC.Inc()
		return nil, false, retry, errQueueFull
	}
	s.seq++
	j.id = s.jobID(s.seq)
	j.state = StateQueued
	j.created = time.Now()
	s.jobs[j.id] = j
	s.active[j.key] = j
	s.pending++
	s.jobWG.Add(1)
	s.queue <- j
	pending := s.pending
	s.mu.Unlock()

	s.acceptedC.Inc()
	s.pendingG.Set(int64(pending))
	s.qDepth.Set(int64(len(s.queue)))
	return j, false, 0, nil
}

// retryAfterLocked derives a Retry-After from observed service time:
// the backlog divided across the worker pool at the smoothed
// per-job execution time, plus one batching delay. Before any job has
// finished (no observation yet) it falls back to the 1-second floor,
// which also keeps TestQueueFullReturns429 deterministic. Caller holds
// s.mu.
func (s *Server) retryAfterLocked() int {
	if s.execEWMA <= 0 {
		return 1
	}
	secs := float64(s.pending)/float64(s.cfg.Workers)*s.execEWMA + s.cfg.BatchDelay.Seconds()
	n := int(math.Ceil(secs))
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return n
}

// evictLocked drops terminal jobs that are over the retention TTL or
// past the size bound, oldest first. Caller holds s.mu. Evicted ids
// stay 410-recognizable through s.seq (ids are never reused).
func (s *Server) evictLocked(now time.Time) {
	for len(s.terminal) > 0 {
		ref := s.terminal[0]
		expired := s.cfg.JobRetention >= 0 && now.Sub(ref.at) > s.cfg.JobRetention
		if !expired && len(s.terminal) <= s.cfg.MaxTerminalJobs {
			return
		}
		s.terminal = s.terminal[1:]
		delete(s.jobs, ref.id)
		s.evictedC.Inc()
	}
}

// dispatch is the micro-batcher: it collects up to BatchSize queued
// jobs (waiting at most BatchDelay after the first) and hands the
// batch to the worker pool. Grouping lets a burst of identical or
// related specs reach the cache's singleflight layer together instead
// of trickling in one scheduler wakeup at a time.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*job{first}
		timer := time.NewTimer(s.cfg.BatchDelay)
	fill:
		for len(batch) < s.cfg.BatchSize {
			select {
			case j, ok := <-s.queue:
				if !ok {
					break fill
				}
				batch = append(batch, j)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		s.batchesC.Inc()
		s.batchLast.Set(int64(len(batch)))
		s.qDepth.Set(int64(len(s.queue)))
		for _, j := range batch {
			j := j
			go func() {
				s.sem <- struct{}{}
				defer func() { <-s.sem }()
				s.execute(j)
			}()
		}
	}
}

func (s *Server) execute(j *job) {
	j.mu.Lock()
	wait := time.Since(j.created)
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.qWaitLast.Set(wait.Microseconds())
	s.qWaitTotal.Add(uint64(wait.Microseconds()))

	var result any
	var err error
	switch j.kind {
	case "run":
		result, err = s.executeRun(j)
	case "sweep":
		result, err = s.executeSweep(j)
	default:
		err = fmt.Errorf("serve: unknown job kind %q", j.kind)
	}
	s.finish(j, result, err)
}

// finish moves j to its terminal state and releases its admission
// slot. Interrupted jobs (drain deadline cancelled them) keep any
// partial result attached.
func (s *Server) finish(j *job, result any, err error) {
	state := StateDone
	var msg string
	if err != nil {
		msg = err.Error()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state = StateInterrupted
		} else {
			state = StateFailed
		}
	}
	now := time.Now()
	j.mu.Lock()
	j.state = state
	j.errMsg = msg
	if result != nil {
		// A nil result (failed run) must not clobber an analytical
		// answer attached by the auto tier — a stale fast prediction
		// beats no answer, and the error field reports the failure.
		j.result = result
		j.fidelity = FidelityExact
	}
	j.finished = now
	execSecs := now.Sub(j.started).Seconds()
	j.mu.Unlock()

	s.mu.Lock()
	if s.active[j.key] == j {
		delete(s.active, j.key)
	}
	s.pending--
	pending := s.pending
	// Exponential smoothing of observed per-job execution time feeds
	// the derived Retry-After.
	if execSecs > 0 {
		if s.execEWMA <= 0 {
			s.execEWMA = execSecs
		} else {
			s.execEWMA = 0.7*s.execEWMA + 0.3*execSecs
		}
	}
	s.terminal = append(s.terminal, terminalRef{id: j.id, at: now})
	s.evictLocked(now)
	s.mu.Unlock()
	s.pendingG.Set(int64(pending))
	if state == StateDone {
		s.completedC.Inc()
	} else {
		s.failedC.Inc()
		s.logf("job %s %s: %s", j.id, state, msg)
	}
	s.jobWG.Done()
}

func (s *Server) executeRun(j *job) (any, error) {
	spec := j.spec
	var res *sim.Result
	var err error
	if j.tracer != nil {
		// A live tracer requires an actual simulation — a cache hit
		// would skip it and record nothing — so traced jobs bypass the
		// cache entirely, mirroring soesim -trace-events (DESIGN.md
		// §10 "cache hits record nothing").
		spec.Obs = &obs.Observer{Trace: j.tracer, Metrics: s.reg}
		res, err = s.cache.RunSpecFresh(s.baseCtx, spec)
	} else {
		res, err = s.cache.RunSpecContext(s.baseCtx, spec)
	}
	if err != nil {
		return nil, err
	}
	return runResultFrom(j.fingerprint, res), nil
}

func (s *Server) executeSweep(j *job) (any, error) {
	r, err := s.runnerFor(j.sweep.Scale)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{}
	if len(j.sweep.Pairs) == 0 {
		// Full matrix: the pooled RunAll path distributes the 16 pairs
		// across the runner's workers.
		prs, err := r.RunAllContext(s.baseCtx)
		for _, pr := range prs {
			if pr != nil {
				out.Rows = append(out.Rows, rowFrom(pr))
			}
		}
		if err != nil {
			return s.checkpointSweep(j, out, err)
		}
		// A completed full matrix supersedes any interrupt marker left
		// by an earlier cut-short sweep over this cache directory.
		cli.ClearInterrupted("soeserve", s.cache)
		return out, nil
	}
	for _, name := range j.sweep.Pairs {
		a, b, err := splitPair(name)
		if err != nil {
			return out, err
		}
		pr, err := r.RunPairContext(s.baseCtx, experiments.Pair{A: a.Name, B: b.Name})
		if err != nil {
			return s.checkpointSweep(j, out, err)
		}
		out.Rows = append(out.Rows, rowFrom(pr))
	}
	return out, nil
}

// checkpointSweep finalizes an interrupted or failed sweep: the rows
// completed so far stay attached to the job, and a drain cancellation
// additionally marks the result cache through the cli interrupt path,
// so the next process over the same cache directory resumes from
// every simulation that finished.
func (s *Server) checkpointSweep(j *job, out *SweepResult, err error) (any, error) {
	out.Incomplete = true
	out.Note = err.Error()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		cli.MarkInterrupted("soeserve", s.cache, "drain cancelled "+j.id)
	}
	return out, err
}

// runnerFor returns the per-scale runner, creating it over the shared
// cache on first use.
func (s *Server) runnerFor(scaleName string) (*experiments.Runner, error) {
	key := scaleName
	if key == "" {
		key = "quick"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[key]; ok {
		return r, nil
	}
	sc, err := scaleByName(key)
	if err != nil {
		return nil, err
	}
	r := experiments.NewRunnerWith(experiments.Options{
		Machine:    sim.DefaultMachine(),
		Scale:      sc,
		SameOffset: sameOffset(sc),
	}, s.cache)
	r.Workers = s.cfg.Workers
	s.runners[key] = r
	return r, nil
}

// job looks a job up by id.
func (s *Server) job(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Sweep on read too: submit/finish only fire on exact-tier traffic,
	// so without this a fast-tier-only workload would keep expired jobs
	// queryable past -job-retention.
	s.evictLocked(time.Now())
	j, ok := s.jobs[id]
	return j, ok
}

// isDraining reports whether admission has been closed.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// WaitIdle blocks until every accepted job has reached a terminal
// state. Drain uses it; tests use it to settle the pipeline without
// polling.
func (s *Server) WaitIdle() { s.jobWG.Wait() }

// Drain stops accepting new jobs and waits for every accepted job to
// reach a terminal state: zero accepted-but-lost work. If ctx expires
// first, in-flight execution is cancelled — running jobs finish in
// state "interrupted", sweeps checkpoint completed rows and mark the
// cache — and Drain still waits for them to settle. It returns nil on
// a clean drain and ctx.Err() when the deadline forced cancellation.
// Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelJobs()
		<-idle
	}
	if !already {
		// No submitter can be mid-send: sends happen under mu after the
		// draining check, and draining has been set.
		close(s.queue)
	}
	s.wg.Wait()
	return err
}

// ---- HTTP layer ----

// Handler returns the service mux:
//
//	POST /v1/run             submit one simulation
//	POST /v1/sweep           submit a pair × F-level matrix
//	GET  /v1/jobs/{id}       job status + result
//	GET  /v1/jobs/{id}/trace Chrome-format event trace (when recorded)
//	GET  /v1/cache/{fp}      verified cache entry (peer fill, §13)
//	GET  /healthz            liveness + drain state
//	GET  /metrics            text dump of the obs registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/cache/{fp}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decode parses a JSON request body bounded by Config.MaxBodyBytes.
// An over-limit body is a deterministic 413 (not a parse-dependent
// 400): MaxBytesReader stops reading at the bound, so a client
// streaming an oversized sweep cannot hold memory or mask the real
// cause in a JSON syntax error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// accept submits j and renders the admission outcome: 202 with the
// job handle (shared with earlier identical requests when coalesced),
// 429 + Retry-After on a full queue, 503 while draining. Retry-After
// is derived from the observed drain rate (retryAfterLocked). A
// non-nil fast answer (tier=auto) rides along in the 202 body so the
// caller has a usable number before the exact simulation lands.
func (s *Server) accept(w http.ResponseWriter, j *job, fast any) {
	acc, coalesced, retry, err := s.submit(j)
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"queue full (%d jobs pending); retry later", s.cfg.QueueDepth)
	default:
		body := map[string]any{
			"id":        acc.id,
			"state":     acc.snapshotState(),
			"coalesced": coalesced,
			"url":       "/v1/jobs/" + acc.id,
		}
		if fast != nil {
			body["fidelity"] = FidelityAnalytical
			body["result"] = fast
		}
		writeJSON(w, http.StatusAccepted, body)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var rq RunRequest
	if !s.decode(w, r, &rq) {
		return
	}
	tier, err := tierFor(rq.Tier, s.cfg.DefaultTier)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if rq.Trace && tier == TierFast {
		writeError(w, http.StatusBadRequest,
			"tier=fast cannot trace: the analytical model runs no simulation")
		return
	}
	spec, names, err := rq.buildSpec()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp, err := experiments.Fingerprint(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "fingerprint: %v", err)
		return
	}

	var fast *FastRunResult
	if tier == TierFast || (tier == TierAuto && !rq.Trace) {
		fast, err = s.fastRunAnswer(rq, fp)
		if err != nil {
			s.fastUnavailC.Inc()
			if tier == TierFast {
				writeError(w, http.StatusUnprocessableEntity, "fast tier cannot answer: %v", err)
				return
			}
			// auto degrades to exact-only rather than failing the job.
			s.logf("fast answer unavailable for %s: %v", fp, err)
			fast = nil
		} else {
			s.fastC.Inc()
		}
		if tier == TierFast {
			writeJSON(w, http.StatusOK, fast)
			return
		}
	}

	j := &job{
		kind:        "run",
		key:         fp,
		fingerprint: fp,
		threadNames: names,
		run:         rq,
		spec:        spec,
	}
	if rq.Trace {
		// Traced and untraced twins must not coalesce: the untraced job
		// would record nothing.
		j.key = fp + "|trace"
		j.tracer = obs.NewTracer(s.cfg.TraceCap)
	}
	if fast != nil {
		j.attachFast(fast)
	}
	s.accept(w, j, anyOrNil(fast))
}

// anyOrNil keeps a typed-nil *FastRunResult from becoming a non-nil
// interface in the 202 body.
func anyOrNil(fast *FastRunResult) any {
	if fast == nil {
		return nil
	}
	return fast
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var rq SweepRequest
	if !s.decode(w, r, &rq) {
		return
	}
	tier, err := tierFor(rq.Tier, s.cfg.DefaultTier)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := rq.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var fast *FastSweepResult
	if tier == TierFast || tier == TierAuto {
		fast, err = s.fastSweepAnswer(rq)
		if err != nil {
			s.fastUnavailC.Inc()
			if tier == TierFast {
				writeError(w, http.StatusUnprocessableEntity, "fast tier cannot answer: %v", err)
				return
			}
			s.logf("fast sweep unavailable: %v", err)
			fast = nil
		} else {
			s.fastC.Inc()
		}
		if tier == TierFast {
			writeJSON(w, http.StatusOK, fast)
			return
		}
	}

	j := &job{kind: "sweep", key: rq.sweepKey(), sweep: rq}
	if fast != nil {
		j.attachFast(fast)
		s.accept(w, j, fast)
		return
	}
	s.accept(w, j, nil)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.job(id)
	if !ok {
		if s.wasEvicted(id) {
			writeError(w, http.StatusGone, "job %q evicted after retention; results remain in the content-addressed cache", id)
			return
		}
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// jobID renders a job id: dense sequence numbers, prefixed with the
// node name in cluster deployments so ids are fleet-unique.
func (s *Server) jobID(n int) string {
	if s.cfg.NodeName == "" {
		return fmt.Sprintf("job-%06d", n)
	}
	return fmt.Sprintf("%s-job-%06d", s.cfg.NodeName, n)
}

// wasEvicted reports whether id names a job this process once issued
// but no longer retains: ids are dense (jobID up to seq), so any
// parseable id at or below the sequence counter that is absent from
// the map must have been evicted. An id carrying another node's name
// (or none, on a named node) was never ours and stays a plain 404.
func (s *Server) wasEvicted(id string) bool {
	if s.cfg.NodeName != "" {
		rest, ok := strings.CutPrefix(id, s.cfg.NodeName+"-")
		if !ok {
			return false
		}
		id = rest
	}
	var n int
	if _, err := fmt.Sscanf(id, "job-%06d", &n); err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return n >= 1 && n <= s.seq
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	tr := j.traceReady()
	if tr == nil {
		writeError(w, http.StatusNotFound,
			"no trace for job %s: request it with \"trace\": true and note that cache hits skip the simulation and record nothing", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTraceMeta(w, tr.Events(), obs.MetaFor(tr, j.threadNames)); err != nil {
		s.logf("trace export for %s: %v", j.id, err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "draining": false})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.qDepth.Set(int64(len(s.queue)))
	if cl := s.Peers(); cl != nil {
		cl.Snapshot() // refresh cluster.breaker_open / cluster.nodes_* gauges
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if _, err := s.reg.WriteTo(w); err != nil {
		s.logf("metrics dump: %v", err)
	}
}
