package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"soemt/internal/cluster"
	"soemt/internal/experiments"
	"soemt/internal/sim"
)

// Cluster wiring: the peer cache tier and its serving endpoint
// (DESIGN.md §13).
//
// Each node exports its local cache over GET /v1/cache/{fingerprint}
// and, on local miss, pulls from the ring owner before simulating.
// Both directions are strictly best-effort — a peer can cost this node
// a re-simulation, never a wrong result (entries are sha256-verified
// by experiments.DecodeVerifiedEntry) and never an error surfaced to
// a client.

// maxPeerEntry bounds a peer cache entry read into memory. Real
// entries are a few KiB; anything larger is a sick or hostile peer.
const maxPeerEntry = 8 << 20

// defaultPeerTimeout bounds one peer cache fetch when SetPeers is
// given no explicit timeout. It is deliberately much smaller than a
// simulation: a slow peer must lose to re-simulating locally.
const defaultPeerTimeout = 2 * time.Second

// SetPeers joins this server to a cluster: on a local cache miss it
// will try GET /v1/cache/{fingerprint} from the key's ring owner
// (breaker-gated, bounded by timeout — <= 0 selects the 2s default)
// before paying for a simulation. A nil cl detaches. Call before the
// server starts taking traffic.
func (s *Server) SetPeers(cl *cluster.Cluster, timeout time.Duration) {
	s.mu.Lock()
	s.peers = cl
	s.mu.Unlock()
	if cl == nil {
		s.cache.SetPeerFill(nil)
		return
	}
	if timeout <= 0 {
		timeout = defaultPeerTimeout
	}
	s.cache.SetPeerFill(func(ctx context.Context, key string) (*sim.Result, error) {
		return s.peerFetch(ctx, cl, key, timeout)
	})
}

// Peers returns the cluster this server joined via SetPeers (nil when
// standalone).
func (s *Server) Peers() *cluster.Cluster {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peers
}

// peerFetch pulls one verified cache entry from key's ring owner.
// Owning the key ourselves is a clean miss (ErrNoPeer): the local
// layers already missed and no other node is a better authority.
func (s *Server) peerFetch(ctx context.Context, cl *cluster.Cluster, key string, timeout time.Duration) (*sim.Result, error) {
	owner := cl.Owner(key)
	if owner == "" || owner == cl.Self() {
		return nil, experiments.ErrNoPeer
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := cl.RoundTrip(ctx, owner, http.MethodGet, "/v1/cache/"+key, nil, nil)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("owner %s has no entry: %w", owner, experiments.ErrNoPeer)
	case resp.StatusCode != http.StatusOK:
		return nil, fmt.Errorf("serve: peer %s: %s", owner, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntry+1))
	if err != nil {
		return nil, fmt.Errorf("serve: peer %s: %w", owner, err)
	}
	if len(data) > maxPeerEntry {
		return nil, fmt.Errorf("serve: peer %s: entry exceeds %d bytes", owner, maxPeerEntry)
	}
	return experiments.DecodeVerifiedEntry(data, key)
}

// handleCacheGet serves GET /v1/cache/{fp}: the local cache layers
// only (memory, then disk) — never a simulation and never a peer
// fetch of its own, which is what makes cluster-wide fill loops
// impossible by construction.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("fp")
	if !validFingerprint(key) {
		writeError(w, http.StatusBadRequest, "malformed fingerprint %q", key)
		return
	}
	res, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %s", key)
		return
	}
	data, err := experiments.EncodeEntry(key, res)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode entry: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// validFingerprint accepts exactly the shape Fingerprint emits: 64
// lowercase hex characters. Everything else is rejected before it can
// reach the cache's disk layer as a path component.
func validFingerprint(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
