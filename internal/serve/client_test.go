package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClientRetriesOn429ThenAccepts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1","state":"queued","coalesced":true,"url":"/v1/jobs/j1"}`))
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 5, Backoff: time.Millisecond}
	out, err := c.SubmitRun(context.Background(), RunRequest{Pair: "gcc:mcf", F: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted() || out.Status != http.StatusAccepted {
		t.Fatalf("outcome %+v, want accepted 202", out)
	}
	if out.JobID != "j1" || !out.Coalesced {
		t.Fatalf("job handle not parsed: %+v", out)
	}
	if out.Retries != 2 {
		t.Fatalf("retries = %d, want 2", out.Retries)
	}
}

func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 2, Backoff: time.Millisecond}
	out, err := c.SubmitRun(context.Background(), RunRequest{Bench: "art"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted() || out.Status != http.StatusTooManyRequests {
		t.Fatalf("outcome %+v, want final 429", out)
	}
	if out.Retries != 2 {
		t.Fatalf("retries = %d, want 2 (MaxRetries)", out.Retries)
	}
}

func TestClientDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown profile"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, MaxRetries: 5, Backoff: time.Millisecond}
	out, err := c.SubmitRun(context.Background(), RunRequest{Bench: "nosuch"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != http.StatusBadRequest || out.Retries != 0 {
		t.Fatalf("outcome %+v, want unretried 400", out)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried %d times", calls.Load()-1)
	}
	if out.Body == "" {
		t.Fatal("error body not captured")
	}
}

func TestClientFastTier200(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"ipc_total": 1.2}`))
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL}
	out, err := c.SubmitRun(context.Background(), RunRequest{Pair: "gcc:mcf", Tier: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted() || out.Status != http.StatusOK || out.JobID != "" {
		t.Fatalf("outcome %+v, want inline 200", out)
	}
}

func TestClientHonorsContextDuringRetryWait(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := &Client{BaseURL: ts.URL, MaxRetries: 3}
	start := time.Now()
	_, err := c.SubmitRun(ctx, RunRequest{Bench: "art"})
	if err == nil {
		t.Fatal("want context error when Retry-After outlives the context")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("client slept through a 30s Retry-After despite cancellation")
	}
}
