package serve

import (
	"sync"
	"time"

	"soemt/internal/obs"
	"soemt/internal/sim"
)

// Job states. A job is terminal in StateDone, StateFailed or
// StateInterrupted; interrupted jobs were cut short by the drain
// deadline and may still carry a partial result (sweeps checkpoint
// their completed rows).
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// job is one accepted unit of work. Identity fields (id, kind, key,
// spec, tracer, …) are written once at submit time and read-only
// afterwards; the mutable lifecycle fields are guarded by mu.
type job struct {
	id          string
	kind        string // "run" | "sweep"
	key         string // coalescing key (spec fingerprint or sweep digest)
	fingerprint string // run jobs: content-addressed cache key
	threadNames []string
	tracer      *obs.Tracer

	run   RunRequest
	sweep SweepRequest
	spec  sim.Spec

	mu        sync.Mutex
	state     string
	coalesced uint64 // additional requests this job absorbed
	created   time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    any
	fidelity  string // "" | FidelityAnalytical | FidelityExact
}

// attachFast seeds the job with an analytical fast-tier answer
// (tier=auto). The seed never overwrites a result that is already
// attached — by the time a coalesced request computes its fast answer,
// the shared job may already carry the exact one.
func (j *job) attachFast(fast any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		j.result = fast
		j.fidelity = FidelityAnalytical
	}
}

// JobView is the wire representation of a job (GET /v1/jobs/{id}).
type JobView struct {
	ID                 string `json:"id"`
	Kind               string `json:"kind"`
	State              string `json:"state"`
	CoalescedRequests  uint64 `json:"coalesced_requests,omitempty"`
	Created            string `json:"created"`
	Started            string `json:"started,omitempty"`
	Finished           string `json:"finished,omitempty"`
	QueueWaitMicros    int64  `json:"queue_wait_us,omitempty"`
	Error              string `json:"error,omitempty"`
	Fidelity           string `json:"fidelity,omitempty"`
	Result             any    `json:"result,omitempty"`
	Trace              string `json:"trace,omitempty"`
	TraceDroppedEvents uint64 `json:"trace_dropped_events,omitempty"`
}

// terminal reports whether state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateInterrupted
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:                j.id,
		Kind:              j.kind,
		State:             j.state,
		CoalescedRequests: j.coalesced,
		Created:           j.created.Format(time.RFC3339Nano),
		Error:             j.errMsg,
		Fidelity:          j.fidelity,
		Result:            j.result,
	}
	if !j.started.IsZero() {
		v.Started = j.started.Format(time.RFC3339Nano)
		v.QueueWaitMicros = j.started.Sub(j.created).Microseconds()
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.Format(time.RFC3339Nano)
	}
	if j.tracer != nil && terminal(j.state) && j.tracer.Len() > 0 {
		v.Trace = "/v1/jobs/" + j.id + "/trace"
		v.TraceDroppedEvents = j.tracer.Dropped()
	}
	return v
}

// snapshotState returns the current lifecycle state.
func (j *job) snapshotState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// traceReady returns the tracer if the job finished with recorded
// events, nil otherwise.
func (j *job) traceReady() *obs.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.tracer == nil || !terminal(j.state) || j.tracer.Len() == 0 {
		return nil
	}
	return j.tracer
}
