package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"soemt/internal/obs"
	"soemt/internal/sim"
)

// stubResult fabricates a deterministic result shaped like the spec
// (one ThreadResult per requested thread).
func stubResult(spec sim.Spec) *sim.Result {
	res := &sim.Result{WallCycles: 1_000, IPCTotal: float64(len(spec.Threads))}
	for _, th := range spec.Threads {
		res.Threads = append(res.Threads, sim.ThreadResult{Name: th.Profile.Name, IPC: 1})
	}
	return res
}

// newTestServer builds a server with a stubbed simulation backend
// behind the real cache/coalescer/queue, plus an httptest frontend.
func newTestServer(t *testing.T, cfg Config, stub func(context.Context, sim.Spec) (*sim.Result, error)) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stub != nil {
		s.Cache().SetRunFunc(stub)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(dctx)
	})
	return s, ts
}

func post(t *testing.T, url string, body any) (int, map[string]any, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, m, resp.Header
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, m
}

func counter(s *Server, name string) uint64 { return s.Observability().Counter(name).Load() }

// The headline invariant: 50 concurrent identical submissions cost
// exactly one simulation. Every request either coalesced onto a live
// job before the queue or became a job whose execution was served by a
// cache layer — the split between the two is timing-dependent, the sum
// is not.
func TestCoalescerDedupsIdenticalRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 64, Workers: 4},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			select {
			case <-time.After(30 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResult(spec), nil
		})

	const n = 50
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := post(t, ts.URL+"/v1/run",
				RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"})
			if code != http.StatusAccepted {
				t.Errorf("request %d: status %d, want 202", i, code)
				return
			}
			ids[i] = body["id"].(string)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s.WaitIdle()

	if got := counter(s, "runner.runs_started"); got != 1 {
		t.Fatalf("runs_started = %d, want exactly 1 simulation for %d identical requests", got, n)
	}
	dedup := counter(s, "serve.coalesced") +
		counter(s, "cache.mem_hits") + counter(s, "cache.dedup_hits") + counter(s, "cache.disk_hits")
	if dedup != n-1 {
		t.Fatalf("coalesced+cache hits = %d, want %d (one per duplicate request)", dedup, n-1)
	}
	for i, id := range ids {
		code, body := get(t, ts.URL+"/v1/jobs/"+id)
		if code != http.StatusOK || body["state"] != StateDone {
			t.Fatalf("request %d: job %s = %d %v, want done", i, id, code, body["state"])
		}
		if body["result"] == nil {
			t.Fatalf("job %s finished without a result", id)
		}
	}
}

func TestDistinctSpecsDoNotCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, Workers: 2},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return stubResult(spec), nil
		})
	for _, rq := range []RunRequest{
		{Bench: "gcc", Scale: "tiny"},
		{Bench: "eon", Scale: "tiny"},
	} {
		if code, _, _ := post(t, ts.URL+"/v1/run", rq); code != http.StatusAccepted {
			t.Fatalf("submit %+v: status %d", rq, code)
		}
	}
	s.WaitIdle()
	if got := counter(s, "runner.runs_started"); got != 2 {
		t.Fatalf("runs_started = %d, want 2 for two distinct specs", got)
	}
	if got := counter(s, "serve.coalesced"); got != 0 {
		t.Fatalf("serve.coalesced = %d, want 0", got)
	}
}

// Admission is bounded by pending jobs, not channel occupancy, so the
// 429 is deterministic: with QueueDepth=2 and a backend that cannot
// finish, the third submission must bounce no matter how fast the
// dispatcher drains the channel.
func TestQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{QueueDepth: 2, Workers: 1, BatchSize: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			select {
			case <-release:
				return stubResult(spec), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})

	for i, bench := range []string{"gcc", "eon"} {
		if code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{Bench: bench, Scale: "tiny"}); code != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, code)
		}
	}
	code, body, hdr := post(t, ts.URL+"/v1/run", RunRequest{Bench: "swim", Scale: "tiny"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d (%v), want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if got := counter(s, "serve.jobs_rejected"); got != 1 {
		t.Fatalf("serve.jobs_rejected = %d, want 1", got)
	}

	close(release)
	s.WaitIdle()
	// The slots freed: a new submission is admitted again.
	if code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{Bench: "mcf", Scale: "tiny"}); code != http.StatusAccepted {
		t.Fatalf("post-release submission: status %d, want 202", code)
	}
	s.WaitIdle()
}

// Drain under in-flight load: every accepted job — running or still
// queued — reaches "done"; nothing is lost, and new submissions are
// refused with 503 while the drain runs.
func TestDrainLosesNoAcceptedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 64, Workers: 2},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			select {
			case <-time.After(15 * time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResult(spec), nil
		})

	var ids []string
	for i := 0; i < 20; i++ {
		rq := RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"} // 10 shared...
		if i%2 == 0 {
			rq.F = float64(i) / 40 // ...and 10 distinct enforcement levels
		}
		code, body, _ := post(t, ts.URL+"/v1/run", rq)
		if code != http.StatusAccepted {
			t.Fatalf("submission %d: status %d, want 202", i, code)
		}
		ids = append(ids, body["id"].(string))
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		j, ok := s.job(id)
		if !ok {
			t.Fatalf("accepted job %s vanished", id)
		}
		if st := j.snapshotState(); st != StateDone {
			t.Fatalf("accepted job %s drained into %q, want done", id, st)
		}
	}
	if got := counter(s, "serve.jobs_failed"); got != 0 {
		t.Fatalf("serve.jobs_failed = %d after clean drain", got)
	}

	code, _, hdr := post(t, ts.URL+"/v1/run", RunRequest{Bench: "gcc", Scale: "tiny"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After header")
	}
}

// A drain whose deadline already passed cancels in-flight work: jobs
// settle in "interrupted" (not lost, not stuck), and an interrupted
// sweep checkpoints the persistent cache through the cli interrupt
// marker so the next process resumes from completed simulations.
func TestDrainDeadlineInterruptsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{QueueDepth: 8, Workers: 1, CacheDir: dir},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			<-ctx.Done() // wedge until the drain cancels execution
			return nil, ctx.Err()
		})

	code, body, _ := post(t, ts.URL+"/v1/sweep", SweepRequest{Pairs: []string{"gcc:eon"}, Scale: "tiny"})
	if code != http.StatusAccepted {
		t.Fatalf("sweep submission: status %d, want 202", code)
	}
	id := body["id"].(string)

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(expired); err == nil {
		t.Fatal("drain with an expired deadline reported a clean drain")
	}
	j, ok := s.job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	if st := j.snapshotState(); st != StateInterrupted {
		t.Fatalf("job state = %q, want interrupted", st)
	}
	if note, ok := s.Cache().Interrupted(); !ok {
		t.Fatal("interrupted sweep left no cache checkpoint marker")
	} else if want := "drain cancelled " + id; !bytes.Contains([]byte(note), []byte(want)) {
		t.Fatalf("marker note %q does not mention %q", note, want)
	}
}

func TestSweepJobProducesMatrix(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, Workers: 2},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return stubResult(spec), nil
		})
	code, body, _ := post(t, ts.URL+"/v1/sweep", SweepRequest{Pairs: []string{"gcc:eon"}, Scale: "tiny"})
	if code != http.StatusAccepted {
		t.Fatalf("sweep submission: status %d, want 202", code)
	}
	s.WaitIdle()

	code, jb := get(t, ts.URL+"/v1/jobs/"+body["id"].(string))
	if code != http.StatusOK || jb["state"] != StateDone {
		t.Fatalf("sweep job = %d %v, want done", code, jb["state"])
	}
	res := jb["result"].(map[string]any)
	rows := res["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("sweep produced %d rows, want 1", len(rows))
	}
	byF := rows[0].(map[string]any)["by_f"].(map[string]any)
	if len(byF) != 4 {
		t.Fatalf("row carries %d F levels, want 4 (got %v)", len(byF), byF)
	}
	// 2 ST references + 4 enforcement levels, all distinct specs.
	if got := counter(s, "runner.runs_started"); got != 6 {
		t.Fatalf("runs_started = %d, want 6", got)
	}
}

func TestTraceDownload(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, Workers: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			if tr := spec.Obs.Tracer(); tr != nil {
				tr.Record(obs.Event{Cycle: 10, Kind: obs.KindSwitch, Cause: obs.CauseMiss, Thread: 0})
				tr.Record(obs.Event{Cycle: 20, Kind: obs.KindSwitch, Cause: obs.CauseQuota, Thread: 1})
			}
			return stubResult(spec), nil
		})
	code, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", F: 1, Scale: "tiny", Trace: true})
	if code != http.StatusAccepted {
		t.Fatalf("submission: status %d, want 202", code)
	}
	id := body["id"].(string)
	s.WaitIdle()

	_, jb := get(t, ts.URL+"/v1/jobs/"+id)
	traceURL, _ := jb["trace"].(string)
	if traceURL == "" {
		t.Fatalf("finished traced job advertises no trace URL: %v", jb)
	}
	resp, err := http.Get(ts.URL + traceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d", resp.StatusCode)
	}
	events, meta, err := obs.ReadChromeTraceMeta(resp.Body)
	if err != nil {
		t.Fatalf("parsing downloaded trace: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("trace carries %d events, want 2", len(events))
	}
	if len(meta.ThreadNames) != 2 || meta.ThreadNames[0] != "gcc" || meta.ThreadNames[1] != "eon" {
		t.Fatalf("trace thread names = %v, want [gcc eon]", meta.ThreadNames)
	}

	// An untraced job must 404 on the trace route.
	code, _, _ = post(t, ts.URL+"/v1/run", RunRequest{Bench: "gcc", Scale: "tiny"})
	if code != http.StatusAccepted {
		t.Fatalf("untraced submission: status %d", code)
	}
	s.WaitIdle()
	resp2, err := http.Get(ts.URL + "/v1/jobs/job-000002/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of untraced job: status %d, want 404", resp2.StatusCode)
	}
}

// TestTracedRunBypassesWarmCache is the regression test for the
// silent-no-trace bug: a "trace": true submission whose spec is
// already cached must still run a fresh simulation (cache hits record
// nothing), not return the cached result with an empty tracer and a
// 404 trace route.
func TestTracedRunBypassesWarmCache(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 8, Workers: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			if tr := spec.Obs.Tracer(); tr != nil {
				tr.Record(obs.Event{Cycle: 5, Kind: obs.KindSwitch, Cause: obs.CauseMiss, Thread: 0})
			}
			return stubResult(spec), nil
		})

	// Warm the cache with the untraced twin.
	req := RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"}
	code, _, _ := post(t, ts.URL+"/v1/run", req)
	if code != http.StatusAccepted {
		t.Fatalf("untraced submission: status %d, want 202", code)
	}
	s.WaitIdle()

	// The traced twin must simulate again and carry a trace.
	req.Trace = true
	code, body, _ := post(t, ts.URL+"/v1/run", req)
	if code != http.StatusAccepted {
		t.Fatalf("traced submission: status %d, want 202", code)
	}
	id := body["id"].(string)
	s.WaitIdle()

	if got := counter(s, "runner.runs_started"); got != 2 {
		t.Fatalf("runs_started = %d, want 2 (traced run must not be served from cache)", got)
	}
	_, jb := get(t, ts.URL+"/v1/jobs/"+id)
	if st := jb["state"]; st != StateDone {
		t.Fatalf("traced job state = %v, want done", st)
	}
	traceURL, _ := jb["trace"].(string)
	if traceURL == "" {
		t.Fatalf("traced job against a warm cache advertises no trace URL: %v", jb)
	}
	resp, err := http.Get(ts.URL + traceURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d, want 200", resp.StatusCode)
	}
	events, _, err := obs.ReadChromeTraceMeta(resp.Body)
	if err != nil {
		t.Fatalf("parsing downloaded trace: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("trace carries %d events, want 1", len(events))
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 1},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			return stubResult(spec), nil
		})
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("healthz = %d %v", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	dump, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve.queue.capacity", "serve.queue.depth"} {
		if !bytes.Contains(dump, []byte(want)) {
			t.Fatalf("metrics dump lacks %s:\n%s", want, dump)
		}
	}

	if code, _, _ := post(t, ts.URL+"/v1/run", map[string]any{"nope": 1}); code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", code)
	}
	if code, _, _ := post(t, ts.URL+"/v1/run", RunRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty request: status %d, want 400", code)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", code)
	}
}

// The service end-to-end against the real simulator (no stub): one
// tiny pair run, served twice — the second submission after completion
// must be a pure cache hit.
func TestRealSimulationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	s, ts := newTestServer(t, Config{QueueDepth: 4, Workers: 2}, nil)
	rq := RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"}
	code, body, _ := post(t, ts.URL+"/v1/run", rq)
	if code != http.StatusAccepted {
		t.Fatalf("submission: status %d", code)
	}
	s.WaitIdle()
	_, jb := get(t, ts.URL+"/v1/jobs/"+body["id"].(string))
	if jb["state"] != StateDone {
		t.Fatalf("job = %v (%v)", jb["state"], jb["error"])
	}
	res := jb["result"].(map[string]any)
	if ipc, _ := res["ipc_total"].(float64); ipc <= 0 {
		t.Fatalf("ipc_total = %v, want > 0", res["ipc_total"])
	}

	code, _, _ = post(t, ts.URL+"/v1/run", rq)
	if code != http.StatusAccepted {
		t.Fatalf("resubmission: status %d", code)
	}
	s.WaitIdle()
	if got := counter(s, "runner.runs_started"); got != 1 {
		t.Fatalf("runs_started = %d after resubmission, want 1 (cache hit)", got)
	}
	if fmt.Sprint(counter(s, "cache.mem_hits")) == "0" {
		t.Fatal("resubmission did not hit the memory cache")
	}
}
