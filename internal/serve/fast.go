package serve

import (
	"fmt"
	"math"
	"time"

	"soemt/internal/experiments"
	"soemt/internal/model"
	"soemt/internal/sim"
)

// Fidelity tiers (DESIGN.md §12). The fast tier answers synchronously
// from the calibrated analytical model — microseconds, no engine. The
// exact tier is the pre-existing queued cycle-accurate path. Auto is
// the observe–predict–calibrate composition: the fast answer returns
// immediately and the exact simulation refines the job in place.
const (
	TierFast  = "fast"
	TierExact = "exact"
	TierAuto  = "auto"
)

// Fidelity markers on results and job views.
const (
	FidelityAnalytical = "analytical"
	FidelityExact      = "exact"
)

// fastCacheCap bounds the in-memory fast-answer cache. Entries are
// tiny (a few floats); the cap only guards against unbounded distinct
// specs. When full, answers are still served — just recomputed.
const fastCacheCap = 4096

// tierFor validates a request's tier, falling back to the server
// default for an empty field.
func tierFor(requested, dflt string) (string, error) {
	t := requested
	if t == "" {
		t = dflt
	}
	switch t {
	case TierFast, TierExact, TierAuto:
		return t, nil
	}
	return "", fmt.Errorf("unknown tier %q (want fast, exact or auto)", t)
}

// FastRunResult is the synchronous analytical answer to /v1/run for
// tier=fast, and the provisional payload of a tier=auto job before the
// exact simulation lands. Error bars come from the calibration table
// that produced the prediction.
type FastRunResult struct {
	Fingerprint string          `json:"fingerprint"`
	Fidelity    string          `json:"fidelity"` // always "analytical"
	Calibration string          `json:"calibration"`
	IPCTotal    float64         `json:"ipc_total"`
	Fairness    float64         `json:"fairness"`
	Threads     []FastThreadIPC `json:"threads"`
	ErrIPCPc    float64         `json:"err_ipc_pc"`
	ErrFairness float64         `json:"err_fairness"`
}

// FastThreadIPC is one thread's analytical prediction.
type FastThreadIPC struct {
	Name    string  `json:"name"`
	IPC     float64 `json:"ipc"`
	Speedup float64 `json:"speedup,omitempty"`
}

// FastSweepResult is the analytical pair × F matrix for tier=fast
// sweeps.
type FastSweepResult struct {
	Fidelity    string         `json:"fidelity"` // always "analytical"
	Calibration string         `json:"calibration"`
	ErrIPCPc    float64        `json:"err_ipc_pc"`
	ErrFairness float64        `json:"err_fairness"`
	Rows        []FastSweepRow `json:"rows"`
}

// FastSweepRow is one pair's slice of the analytical matrix.
type FastSweepRow struct {
	Pair  string                   `json:"pair"`
	IPCST [2]float64               `json:"ipc_st"`
	ByF   map[string]FastSweepCell `json:"by_f"`
}

// FastSweepCell is one analytical (pair, F) cell.
type FastSweepCell struct {
	IPC      float64 `json:"ipc"`
	Fairness float64 `json:"fairness"`
}

// fastRunAnswer predicts one run request from the calibration table.
// The returned payload is guaranteed fully finite: a degenerate
// prediction is an error here, never a NaN in a JSON response or the
// fast cache.
func (s *Server) fastRunAnswer(rq RunRequest, fp string) (*FastRunResult, error) {
	key := fp + "|fast"
	s.mu.Lock()
	cached, ok := s.fastCache[key]
	s.mu.Unlock()
	if ok {
		s.fastCacheHitsC.Inc()
		res, _ := cached.(*FastRunResult)
		if res != nil {
			return res, nil
		}
	}

	start := time.Now()
	cal := s.calibration
	out := &FastRunResult{
		Fingerprint: fp,
		Fidelity:    FidelityAnalytical,
		Calibration: cal.Source,
		ErrIPCPc:    cal.ErrIPCPc,
		ErrFairness: cal.ErrFairness,
	}
	if rq.Bench != "" {
		sys, err := cal.System(rq.Bench)
		if err != nil {
			return nil, err
		}
		ipc := sys.Threads[0].IPCST(cal.MissLat)
		out.IPCTotal = ipc
		out.Fairness = 1
		out.Threads = []FastThreadIPC{{Name: rq.Bench, IPC: ipc, Speedup: 1}}
	} else {
		a, b, err := splitPair(rq.Pair)
		if err != nil {
			return nil, err
		}
		sys, err := cal.System(a.Name, b.Name)
		if err != nil {
			return nil, err
		}
		p, err := sys.Predict(rq.F)
		if err != nil {
			return nil, err
		}
		out.IPCTotal = p.Total
		out.Fairness = p.Fairness
		for i, name := range []string{a.Name, b.Name} {
			out.Threads = append(out.Threads, FastThreadIPC{
				Name: name, IPC: p.IPCSOE[i], Speedup: p.Speedup[i],
			})
		}
	}
	if err := out.checkFinite(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	if len(s.fastCache) < fastCacheCap {
		s.fastCache[key] = out
	}
	s.mu.Unlock()
	s.fastLatencyC.Add(uint64(time.Since(start).Microseconds()))
	return out, nil
}

// fastSweepAnswer predicts a whole pair × F matrix analytically. Empty
// Pairs means the paper's full 16-pair matrix, mirroring the exact
// path.
func (s *Server) fastSweepAnswer(rq SweepRequest) (*FastSweepResult, error) {
	start := time.Now()
	names := rq.Pairs
	if len(names) == 0 {
		for _, p := range experiments.Pairs() {
			names = append(names, p.Name())
		}
	}
	cal := s.calibration
	out := &FastSweepResult{
		Fidelity:    FidelityAnalytical,
		Calibration: cal.Source,
		ErrIPCPc:    cal.ErrIPCPc,
		ErrFairness: cal.ErrFairness,
	}
	for _, name := range names {
		a, b, err := splitPair(name)
		if err != nil {
			return nil, err
		}
		sys, err := cal.System(a.Name, b.Name)
		if err != nil {
			return nil, err
		}
		row := FastSweepRow{
			Pair: name,
			ByF:  make(map[string]FastSweepCell, len(experiments.FLevels)),
		}
		for i := range sys.Threads {
			row.IPCST[i] = sys.Threads[i].IPCST(cal.MissLat)
		}
		for _, f := range experiments.FLevels {
			p, err := sys.Predict(f)
			if err != nil {
				return nil, err
			}
			if !isFinite(p.Total) || !isFinite(p.Fairness) {
				return nil, fmt.Errorf("serve: non-finite prediction for %s F=%v", name, f)
			}
			row.ByF[fKey(f)] = FastSweepCell{IPC: p.Total, Fairness: p.Fairness}
		}
		out.Rows = append(out.Rows, row)
	}
	s.fastLatencyC.Add(uint64(time.Since(start).Microseconds()))
	return out, nil
}

// checkFinite is the model→JSON boundary guard: nothing non-finite
// leaves the fast path.
func (r *FastRunResult) checkFinite() error {
	vals := []float64{r.IPCTotal, r.Fairness, r.ErrIPCPc, r.ErrFairness}
	for _, t := range r.Threads {
		vals = append(vals, t.IPC, t.Speedup)
	}
	for _, v := range vals {
		if !isFinite(v) {
			return fmt.Errorf("serve: non-finite value %v in analytical answer", v)
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// defaultCalibration is the serving fallback when no fitted table is
// configured: profile-derived parameters with honest wide bars.
func defaultCalibration() (*model.Calibration, error) {
	return experiments.ProfileCalibration(sim.DefaultMachine())
}

// publishCalibrationMetrics exposes the loaded table on /metrics.
func (s *Server) publishCalibrationMetrics() {
	cal := s.calibration
	s.reg.Gauge("model.calibration.threads").Set(int64(len(cal.Threads)))
	s.reg.Gauge("model.calibration.pairs").Set(int64(len(cal.Pairs)))
	s.reg.Gauge("model.calibration.err_ipc_pc_milli").Set(int64(cal.ErrIPCPc * 1000))
	s.reg.Gauge("model.calibration.err_fairness_milli").Set(int64(cal.ErrFairness * 1000))
	var fromSim int64
	if cal.Source == model.SourceSimulation {
		fromSim = 1
	}
	s.reg.Gauge("model.calibration.from_simulation").Set(fromSim)
}
