package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soemt/internal/cluster"
	"soemt/internal/experiments"
	"soemt/internal/sim"
)

func quickStub(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
	return stubResult(spec), nil
}

func TestOversizedBodyGets413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024}, quickStub)

	// A syntactically fine JSON prefix that exceeds the bound mid-token:
	// the failure must surface as a deterministic 413, not whatever JSON
	// error the truncation happens to produce.
	big := `{"pair":"` + strings.Repeat("a", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "1024") {
		t.Fatalf("413 body does not state the limit: %s", body)
	}

	// An in-bounds malformed body stays a plain 400.
	resp, err = http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestCacheEndpointServesVerifiedEntries(t *testing.T) {
	s, ts := newTestServer(t, Config{}, quickStub)

	rq := RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"}
	spec, _, err := rq.buildSpec()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := experiments.Fingerprint(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Nothing cached yet: a well-formed key misses with 404, a malformed
	// one is rejected before touching the cache.
	if code, _ := get(t, ts.URL+"/v1/cache/"+fp); code != http.StatusNotFound {
		t.Fatalf("cold cache GET = %d, want 404", code)
	}
	for _, bad := range []string{"deadbeef", strings.Repeat("g", 64), strings.Repeat("A", 64)} {
		if code, _ := get(t, ts.URL+"/v1/cache/"+bad); code != http.StatusBadRequest {
			t.Fatalf("malformed key %q = %d, want 400", bad, code)
		}
	}

	if code, _, _ := post(t, ts.URL+"/v1/run", rq); code != http.StatusAccepted {
		t.Fatalf("run submission status %d", code)
	}
	s.WaitIdle()

	resp, err := http.Get(ts.URL + "/v1/cache/" + fp)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm cache GET = %d, want 200 (body %s)", resp.StatusCode, data)
	}
	res, err := experiments.DecodeVerifiedEntry(data, fp)
	if err != nil {
		t.Fatalf("served entry fails verification: %v", err)
	}
	if res.WallCycles != 1000 {
		t.Fatalf("served entry WallCycles = %d, want the stub's 1000", res.WallCycles)
	}
}

func TestNodeNameScopesJobIDs(t *testing.T) {
	s, ts := newTestServer(t, Config{
		NodeName:        "n1",
		JobRetention:    time.Nanosecond,
		MaxTerminalJobs: 1,
	}, quickStub)

	code, body, _ := post(t, ts.URL+"/v1/run", RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"})
	if code != http.StatusAccepted {
		t.Fatalf("submission status %d", code)
	}
	id := body["id"].(string)
	if !strings.HasPrefix(id, "n1-job-") {
		t.Fatalf("job id %q lacks the node-name prefix", id)
	}
	s.WaitIdle()

	// Past the 1ns retention, our own id is recognizably evicted…
	if code, _ := get(t, ts.URL+"/v1/jobs/"+id); code != http.StatusGone {
		t.Fatalf("evicted own id = %d, want 410", code)
	}
	// …while ids from other nodes (or the bare pre-cluster format) were
	// never ours and stay 404, so a gateway fanning a lookup across the
	// fleet gets exactly one non-404 answer.
	for _, foreign := range []string{"n2-job-000001", "job-000001"} {
		if code, _ := get(t, ts.URL+"/v1/jobs/"+foreign); code != http.StatusNotFound {
			t.Fatalf("foreign id %q = %d, want 404", foreign, code)
		}
	}
}

// TestPeerCacheFillAcrossNodes is the tentpole's (b) end to end: two
// live servers, one cluster; the non-owner pulls the owner's verified
// entry instead of simulating.
func TestPeerCacheFillAcrossNodes(t *testing.T) {
	var runsA, runsB atomic.Int64
	sA, tsA := newTestServer(t, Config{NodeName: "a"},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			runsA.Add(1)
			return stubResult(spec), nil
		})
	sB, tsB := newTestServer(t, Config{NodeName: "b"},
		func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
			runsB.Add(1)
			return stubResult(spec), nil
		})
	nodes := []string{tsA.URL, tsB.URL}

	rq := RunRequest{Pair: "gcc:eon", F: 0.5, Scale: "tiny"}
	spec, _, err := rq.buildSpec()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := experiments.Fingerprint(spec)
	if err != nil {
		t.Fatal(err)
	}

	// The ring decides which server owns the key; the other one fills.
	owner, fillS, fillTS, fillRuns := sA, sB, tsB, &runsB
	ownerTS := tsA
	if cluster.NewRing(nodes, 0).Owner(fp) == tsB.URL {
		owner, ownerTS, fillS, fillTS, fillRuns = sB, tsB, sA, tsA, &runsA
	}

	cl, err := cluster.New(cluster.Config{
		Self:     fillTS.URL,
		Nodes:    nodes,
		Registry: fillS.Observability(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.StopProbes)
	fillS.SetPeers(cl, 0)

	// Warm the owner, then submit the identical spec to the filler.
	if code, _, _ := post(t, ownerTS.URL+"/v1/run", rq); code != http.StatusAccepted {
		t.Fatalf("owner submission status %d", code)
	}
	owner.WaitIdle()
	fillRunsBefore := fillRuns.Load()

	code, body, _ := post(t, fillTS.URL+"/v1/run", rq)
	if code != http.StatusAccepted {
		t.Fatalf("filler submission status %d", code)
	}
	fillS.WaitIdle()

	if got := fillRuns.Load() - fillRunsBefore; got != 0 {
		t.Fatalf("filler simulated %d times behind a peer-fillable key, want 0", got)
	}
	if got := counter(fillS, "cluster.peer_fill_hits"); got != 1 {
		t.Fatalf("cluster.peer_fill_hits on filler = %d, want 1", got)
	}
	code, job := get(t, fillTS.URL+"/v1/jobs/"+body["id"].(string))
	if code != http.StatusOK || job["state"] != string(StateDone) {
		t.Fatalf("filler job = %d %v, want done", code, job["state"])
	}
}

// TestEvictionRacesInFlightWaiters hammers the PR 6 TTL/LRU eviction
// path (-job-retention, 410 Gone) from concurrent pollers while
// coalesced duplicates ride in-flight jobs — the scenario is only
// meaningful under -race. Every id the server handed out must resolve
// to 200 or 410, never 404 and never a torn read.
func TestEvictionRacesInFlightWaiters(t *testing.T) {
	s, ts := newTestServer(t, Config{
		QueueDepth:      64,
		Workers:         4,
		JobRetention:    time.Nanosecond, // evict terminal jobs immediately
		MaxTerminalJobs: 1,
	}, func(ctx context.Context, spec sim.Spec) (*sim.Result, error) {
		time.Sleep(2 * time.Millisecond) // keep jobs in flight while pollers run
		return stubResult(spec), nil
	})

	const specs = 8
	var wg sync.WaitGroup
	errs := make(chan error, specs*2)
	for i := 0; i < specs; i++ {
		f := 0.1 + 0.1*float64(i)
		for dup := 0; dup < 2; dup++ { // identical twins exercise coalescing
			wg.Add(1)
			go func() {
				defer wg.Done()
				code, body, _ := post(t, ts.URL+"/v1/run",
					RunRequest{Pair: "gcc:eon", F: f, Scale: "tiny"})
				if code != http.StatusAccepted {
					errs <- fmt.Errorf("submission status %d", code)
					return
				}
				id := body["id"].(string)
				deadline := time.Now().Add(5 * time.Second)
				for {
					code, _ := get(t, ts.URL+"/v1/jobs/"+id)
					switch code {
					case http.StatusOK:
						// Still retained; keep racing the evictor.
					case http.StatusGone:
						return // evicted after terminal: the expected end state
					default:
						errs <- fmt.Errorf("job %s: status %d, want 200 or 410", id, code)
						return
					}
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("job %s never evicted", id)
						return
					}
					time.Sleep(500 * time.Microsecond)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s.WaitIdle()
	if got := counter(s, "serve.jobs_evicted"); got < 1 {
		t.Fatalf("serve.jobs_evicted = %d, want >= 1", got)
	}
}
