package serve

import (
	"fmt"
	"strconv"
	"strings"

	"soemt/internal/core"
	"soemt/internal/experiments"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// RunRequest is the body of POST /v1/run: one simulation, either a
// two-thread SOE pair at an enforcement level or a single-thread
// reference run.
type RunRequest struct {
	// Pair names a two-thread combination "a:b" (e.g. "gcc:eon").
	// Same-benchmark pairs are offset like the sweep tools: 1M
	// instructions at paper scale, 100k otherwise.
	Pair string `json:"pair,omitempty"`
	// Bench names a single-thread (event-only) reference run instead of
	// a pair. Exactly one of Pair or Bench must be set.
	Bench string `json:"bench,omitempty"`
	// F is the fairness enforcement level for pair runs; 0 selects the
	// event-only policy.
	F float64 `json:"f,omitempty"`
	// Scale selects the measurement protocol: "tiny", "quick" (default)
	// or "paper".
	Scale string `json:"scale,omitempty"`
	// Trace attaches an event tracer to the run; the recorded window is
	// downloadable from /v1/jobs/{id}/trace once the job is done. A
	// request served entirely from the result cache skips the simulation
	// and records no events. Incompatible with tier=fast (no simulation,
	// nothing to trace).
	Trace bool `json:"trace,omitempty"`
	// Tier selects serving fidelity: "fast" (synchronous calibrated
	// model, error bars, no simulation), "exact" (queued cycle-accurate
	// job), or "auto" (fast answer now, exact refinement in place).
	// Empty uses the server default (DESIGN.md §12).
	Tier string `json:"tier,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep: the pair × F-level
// matrix. Every listed pair runs at all canonical enforcement levels
// (experiments.FLevels) plus its two single-thread references.
type SweepRequest struct {
	// Pairs restricts the sweep to the named "a:b" combinations. Empty
	// means the paper's full 16-pair matrix, executed through the pooled
	// experiments.RunAll path.
	Pairs []string `json:"pairs,omitempty"`
	// Scale selects the measurement protocol (as in RunRequest).
	Scale string `json:"scale,omitempty"`
	// Tier selects serving fidelity, as in RunRequest.
	Tier string `json:"tier,omitempty"`
}

// RunResult is the terminal payload of a run job.
type RunResult struct {
	Fingerprint string      `json:"fingerprint"`
	IPCTotal    float64     `json:"ipc_total"`
	WallCycles  uint64      `json:"wall_cycles"`
	Threads     []ThreadIPC `json:"threads"`
	Switches    uint64      `json:"switches"`
	ForcedPer1k float64     `json:"forced_per_1k"`
	Truncated   bool        `json:"truncated,omitempty"`
}

// ThreadIPC is one thread's throughput in a RunResult.
type ThreadIPC struct {
	Name string  `json:"name"`
	IPC  float64 `json:"ipc"`
}

// SweepResult is the terminal payload of a sweep job. An interrupted
// sweep (server drain hit its deadline) still carries every row that
// completed, with Incomplete set.
type SweepResult struct {
	Rows       []SweepRow `json:"rows"`
	Incomplete bool       `json:"incomplete,omitempty"`
	Note       string     `json:"note,omitempty"`
}

// SweepRow is one pair's slice of the matrix.
type SweepRow struct {
	Pair  string               `json:"pair"`
	IPCST [2]float64           `json:"ipc_st"`
	ByF   map[string]SweepCell `json:"by_f"`
}

// SweepCell is one (pair, F) cell.
type SweepCell struct {
	IPC         float64 `json:"ipc"`
	Fairness    float64 `json:"fairness"`
	ForcedPer1k float64 `json:"forced_per_1k"`
}

// fKey renders an enforcement level as a stable JSON map key.
func fKey(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func scaleByName(name string) (sim.Scale, error) {
	switch name {
	case "tiny":
		return sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000}, nil
	case "", "quick":
		return sim.QuickScale(), nil
	case "paper":
		return sim.PaperScale(), nil
	}
	return sim.Scale{}, fmt.Errorf("unknown scale %q (want tiny, quick or paper)", name)
}

func policyFor(f float64) core.Policy {
	if f <= 0 {
		return core.EventOnly{}
	}
	return core.Fairness{F: f}
}

// sameOffset mirrors the sweep tools: paper-scale same-benchmark pairs
// start 1M instructions apart, smaller scales 100k.
func sameOffset(sc sim.Scale) uint64 {
	if sc == sim.PaperScale() {
		return 1_000_000
	}
	return 100_000
}

func splitPair(pair string) (workload.Profile, workload.Profile, error) {
	parts := strings.SplitN(pair, ":", 2)
	if len(parts) != 2 {
		return workload.Profile{}, workload.Profile{}, fmt.Errorf("pair must be a:b, got %q", pair)
	}
	a, ok := workload.ByName(parts[0])
	if !ok {
		return workload.Profile{}, workload.Profile{}, fmt.Errorf("unknown profile %q", parts[0])
	}
	b, ok := workload.ByName(parts[1])
	if !ok {
		return workload.Profile{}, workload.Profile{}, fmt.Errorf("unknown profile %q", parts[1])
	}
	return a, b, nil
}

// buildSpec validates the request and lowers it to a sim.Spec plus the
// thread names used for trace export.
func (rq RunRequest) buildSpec() (sim.Spec, []string, error) {
	if (rq.Pair == "") == (rq.Bench == "") {
		return sim.Spec{}, nil, fmt.Errorf("exactly one of pair or bench must be set")
	}
	if rq.F < 0 || rq.F > 1 {
		return sim.Spec{}, nil, fmt.Errorf("f must be in [0, 1], got %v", rq.F)
	}
	sc, err := scaleByName(rq.Scale)
	if err != nil {
		return sim.Spec{}, nil, err
	}
	m := sim.DefaultMachine()
	if rq.Bench != "" {
		p, ok := workload.ByName(rq.Bench)
		if !ok {
			return sim.Spec{}, nil, fmt.Errorf("unknown profile %q", rq.Bench)
		}
		m.Controller.Policy = core.EventOnly{}
		spec := sim.Spec{
			Machine: m,
			Threads: []sim.ThreadSpec{{Profile: p, Slot: 0}},
			Scale:   sc,
		}
		return spec, []string{p.Name}, nil
	}
	a, b, err := splitPair(rq.Pair)
	if err != nil {
		return sim.Spec{}, nil, err
	}
	m.Controller.Policy = policyFor(rq.F)
	spec := sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: a, Slot: 0},
			{Profile: b, Slot: 1},
		},
		Scale: sc,
	}
	if a.Name == b.Name {
		spec.Threads[1].StartSeq = sameOffset(sc)
	}
	return spec, []string{a.Name, b.Name}, nil
}

// RouteKey returns the content-addressed key a gateway routes this
// request by: the spec fingerprint, identical to the server-side
// coalescing key (minus the |trace suffix — traced and untraced twins
// should land on the same node). An invalid request fails here the
// same way it would fail at submit time, so the gateway rejects it
// with 400 instead of burning a candidate walk.
func (rq RunRequest) RouteKey() (string, error) {
	spec, _, err := rq.buildSpec()
	if err != nil {
		return "", err
	}
	return experiments.Fingerprint(spec)
}

// RouteKey returns the routing key for a sweep: the coalescing key,
// so identical matrices land on (and coalesce at) one node.
func (rq SweepRequest) RouteKey() (string, error) {
	if err := rq.validate(); err != nil {
		return "", err
	}
	return rq.sweepKey(), nil
}

// sweepKey is the coalescing key for a sweep request: identical
// matrices share one job.
func (rq SweepRequest) sweepKey() string {
	scale := rq.Scale
	if scale == "" {
		scale = "quick"
	}
	return "sweep|" + scale + "|" + strings.Join(rq.Pairs, ",")
}

// validate resolves the request's pairs and scale without running
// anything, so bad requests fail at submit time with 400, not inside a
// job.
func (rq SweepRequest) validate() error {
	if _, err := scaleByName(rq.Scale); err != nil {
		return err
	}
	for _, p := range rq.Pairs {
		if _, _, err := splitPair(p); err != nil {
			return err
		}
	}
	return nil
}

// rowFrom flattens one PairRun into a wire row.
func rowFrom(pr *experiments.PairRun) SweepRow {
	row := SweepRow{
		Pair:  pr.Pair.Name(),
		IPCST: pr.ST,
		ByF:   make(map[string]SweepCell, len(experiments.FLevels)),
	}
	for _, f := range experiments.FLevels {
		res := pr.ByF[f]
		if res == nil {
			continue
		}
		row.ByF[fKey(f)] = SweepCell{
			IPC:         res.IPCTotal,
			Fairness:    pr.Fairness(f),
			ForcedPer1k: res.ForcedPer1k(),
		}
	}
	return row
}

// runResultFrom flattens a sim.Result into the wire payload.
func runResultFrom(fingerprint string, res *sim.Result) RunResult {
	out := RunResult{
		Fingerprint: fingerprint,
		IPCTotal:    res.IPCTotal,
		WallCycles:  res.WallCycles,
		Switches:    res.Switches.Total(),
		ForcedPer1k: res.ForcedPer1k(),
		Truncated:   res.Truncated,
	}
	for _, tr := range res.Threads {
		out.Threads = append(out.Threads, ThreadIPC{Name: tr.Name, IPC: tr.IPC})
	}
	return out
}
