package spec

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"soemt/internal/rng"
	"soemt/internal/workload"
)

// Request is one scheduled submission: a workload entry resolved for
// one client member at one instant.
type Request struct {
	At     time.Duration // offset from the start of the replay window
	Client string        // "group/member", e.g. "batch/3"
	Pair   string
	Bench  string
	F      float64
	Tier   string
	Scale  string
}

// Key returns the distinct-spec identity of the request: every field
// that changes the simulation soeserve would run. Two requests with
// equal keys coalesce server-side into one engine run — the dedup
// invariant counts distinct keys.
func (r Request) Key() string {
	target := r.Pair
	if target == "" {
		target = "bench:" + r.Bench
	}
	return fmt.Sprintf("%s|f=%g|%s", target, r.F, r.Scale)
}

// Line renders the request as one stable CSV line; the byte-identical
// replay guarantee is asserted over these lines.
func (r Request) Line() string {
	return fmt.Sprintf("%d,%s,%s,%s,%g,%s,%s",
		r.At.Microseconds(), r.Client, r.Pair, r.Bench, r.F, r.Tier, r.Scale)
}

// Schedule expands the spec into its deterministic timed request
// sequence, sorted by arrival time. It is a pure function of the spec
// (including Seed): identical specs yield byte-identical schedules.
func (s *Spec) Schedule() ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	scale := s.ScaleOrDefault()
	var out []Request
	for _, c := range s.Clients {
		shares := c.memberShares()
		arrivalRoot := rng.Sub(s.Seed, "arrival|"+c.Name)
		pickRoot := rng.Sub(s.Seed, "pick|"+c.Name)
		weightTotal := 0.0
		for _, e := range c.Workloads {
			weightTotal += e.Weight
		}
		for m := 0; m < c.Count; m++ {
			rate := c.Rate * shares[m]
			if rate <= 0 {
				continue
			}
			arrivalSeed := rng.Uint64At(arrivalRoot, uint64(m))
			pickSeed := rng.Uint64At(pickRoot, uint64(m))
			t := 0.0
			for i := uint64(0); ; i++ {
				t += c.Arrival.interArrival(arrivalSeed, i) / rate
				at := time.Duration(t * float64(time.Second))
				if at >= s.Duration {
					break
				}
				e := pickEntry(c.Workloads, weightTotal, rng.Float64At(pickSeed, i))
				out = append(out, Request{
					At:     at,
					Client: fmt.Sprintf("%s/%d", c.Name, m),
					Pair:   e.Pair,
					Bench:  e.Bench,
					F:      e.F,
					Tier:   e.Tier,
					Scale:  scale,
				})
				if len(out) > maxRequests {
					return nil, fmt.Errorf("spec %s: expansion exceeded %d requests; lower the rates or shorten the duration", s.Name, maxRequests)
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Client < out[j].Client
	})
	return out, nil
}

// pickEntry draws a weighted workload entry with u in [0, 1).
func pickEntry(entries []Entry, total, u float64) Entry {
	target := u * total
	acc := 0.0
	for _, e := range entries {
		acc += e.Weight
		if target < acc {
			return e
		}
	}
	return entries[len(entries)-1]
}

// EncodeSchedule renders a schedule in the stable CSV form used by
// soegen -schedule and the byte-identical replay tests.
func EncodeSchedule(reqs []Request) []byte {
	var b strings.Builder
	b.WriteString("at_us,client,pair,bench,f,tier,scale\n")
	for _, r := range reqs {
		b.WriteString(r.Line())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// Cell is one distinct simulation in a spec's expansion, with the
// request volume the schedule assigns to it.
type Cell struct {
	Pair     string
	Bench    string
	F        float64
	Scale    string
	Requests int     // scheduled submissions mapping to this cell
	Share    float64 // fraction of all scheduled requests
	// Overlaid is true when at least one generating entry carries a
	// phase overlay or references an inline profile — the cell is
	// expandable locally but not replayable over the wire.
	Overlaid bool
}

// Matrix aggregates the schedule into its distinct simulation cells,
// sorted by request volume (descending) then name — the pair/sweep
// matrix a spec multiplies out to.
func (s *Spec) Matrix() ([]Cell, error) {
	reqs, err := s.Schedule()
	if err != nil {
		return nil, err
	}
	overlaid := s.overlaidTargets()
	byKey := map[string]*Cell{}
	for _, r := range reqs {
		c, ok := byKey[r.Key()]
		if !ok {
			c = &Cell{Pair: r.Pair, Bench: r.Bench, F: r.F, Scale: r.Scale}
			c.Overlaid = overlaid[targetOf(r.Pair, r.Bench)]
			byKey[r.Key()] = c
		}
		c.Requests++
	}
	out := make([]Cell, 0, len(byKey))
	for _, c := range byKey {
		c.Share = float64(c.Requests) / float64(len(reqs))
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		ki := out[i].Pair + out[i].Bench
		kj := out[j].Pair + out[j].Bench
		if ki != kj {
			return ki < kj
		}
		return out[i].F < out[j].F
	})
	return out, nil
}

func targetOf(pair, bench string) string {
	if pair != "" {
		return pair
	}
	return "bench:" + bench
}

// overlaidTargets maps pair/bench targets that any entry decorates
// with a phase overlay or an inline profile.
func (s *Spec) overlaidTargets() map[string]bool {
	out := map[string]bool{}
	for _, c := range s.Clients {
		for _, e := range c.Workloads {
			mark := len(e.Phases) > 0
			for _, n := range e.names() {
				if _, inline := s.Profiles[n]; inline {
					mark = true
				}
			}
			if mark {
				out[targetOf(e.Pair, e.Bench)] = true
			}
		}
	}
	return out
}

// SweepPairs returns the distinct replayable pair names of the matrix,
// ready to drop into a soeserve /v1/sweep body. Bench-only and
// overlaid cells are skipped (count returned for the caller to
// report).
func (s *Spec) SweepPairs() (pairs []string, skipped int, err error) {
	cells, err := s.Matrix()
	if err != nil {
		return nil, 0, err
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Pair == "" || c.Overlaid {
			skipped++
			continue
		}
		if !seen[c.Pair] {
			seen[c.Pair] = true
			pairs = append(pairs, c.Pair)
		}
	}
	sort.Strings(pairs)
	return pairs, skipped, nil
}

// CellProfiles resolves the workload profiles behind a matrix cell,
// with any phase overlays applied — the local-execution bridge for
// cells that cannot travel over the wire. The overlay is looked up
// from the first entry matching the cell's target.
func (s *Spec) CellProfiles(c Cell) ([]workload.Profile, error) {
	target := targetOf(c.Pair, c.Bench)
	for _, cl := range s.Clients {
		for _, e := range cl.Workloads {
			if targetOf(e.Pair, e.Bench) != target {
				continue
			}
			var out []workload.Profile
			for _, n := range e.names() {
				p, err := s.overlaid(n, e.Phases)
				if err != nil {
					return nil, err
				}
				out = append(out, p)
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("spec %s: no entry generates cell %s", s.Name, target)
}
