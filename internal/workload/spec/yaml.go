package spec

// A minimal YAML-subset reader/writer for workload specs. The
// container image deliberately carries no third-party modules, so this
// implements exactly the subset the schema needs — block mappings,
// block sequences of mappings or scalars, scalars, quotes and
// comments — with strict unknown-key errors that name the field path.
// Flow syntax ({...}, [...]), anchors, multi-line scalars and tabs are
// rejected with actionable messages.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"soemt/internal/workload"
)

// node is the parsed generic tree: map[string]node, []node, or a
// scalar string.
type node any

type yline struct {
	no     int // 1-based source line
	indent int
	text   string
}

// Parse decodes a YAML workload spec document.
func Parse(data []byte) (*Spec, error) {
	root, err := parseTree(data)
	if err != nil {
		return nil, err
	}
	m, ok := root.(map[string]node)
	if !ok {
		return nil, fmt.Errorf("spec: document root must be a mapping (name:, seed:, clients:, ...)")
	}
	d := &decoder{}
	s := d.spec(m)
	if d.err != nil {
		return nil, d.err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- generic tree parser -------------------------------------------------

func parseTree(data []byte) (node, error) {
	var lines []yline
	for i, raw := range strings.Split(string(data), "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimLeft(text, " ")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("spec: line %d: tabs are not allowed in indentation", i+1)
		}
		lines = append(lines, yline{no: i + 1, indent: len(text) - len(trimmed), text: strings.TrimSpace(trimmed)})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("spec: empty document")
	}
	pos := 0
	n, err := parseBlock(lines, &pos, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("spec: line %d: unexpected de-indent to column %d", lines[pos].no, lines[pos].indent)
	}
	return n, nil
}

// stripComment removes a trailing comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i, r := range s {
		switch r {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '#':
			if !inS && !inD && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

func parseBlock(lines []yline, pos *int, indent int) (node, error) {
	if strings.HasPrefix(lines[*pos].text, "- ") || lines[*pos].text == "-" {
		return parseSeq(lines, pos, indent)
	}
	return parseMap(lines, pos, indent)
}

func parseMap(lines []yline, pos *int, indent int) (node, error) {
	m := map[string]node{}
	for *pos < len(lines) {
		ln := lines[*pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, fmt.Errorf("spec: line %d: unexpected indent (column %d, expected %d)", ln.no, ln.indent, indent)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, fmt.Errorf("spec: line %d: sequence item in a mapping block", ln.no)
		}
		key, val, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("spec: line %d: duplicate key %q", ln.no, key)
		}
		*pos++
		if val != "" {
			m[key] = val
			continue
		}
		// Nested block: everything more-indented (or a sequence at the
		// same indent, which YAML permits for "key:\n- item").
		if *pos >= len(lines) || lines[*pos].indent < indent ||
			(lines[*pos].indent == indent && !seqStart(lines[*pos].text)) {
			return nil, fmt.Errorf("spec: line %d: key %q has no value (empty blocks are not supported)", ln.no, key)
		}
		child, err := parseBlock(lines, pos, lines[*pos].indent)
		if err != nil {
			return nil, err
		}
		m[key] = child
	}
	return m, nil
}

func seqStart(text string) bool { return strings.HasPrefix(text, "- ") || text == "-" }

func parseSeq(lines []yline, pos *int, indent int) (node, error) {
	var seq []node
	for *pos < len(lines) {
		ln := lines[*pos]
		if ln.indent != indent || !seqStart(ln.text) {
			if ln.indent > indent {
				return nil, fmt.Errorf("spec: line %d: unexpected indent inside sequence", ln.no)
			}
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			return nil, fmt.Errorf("spec: line %d: empty sequence items are not supported", ln.no)
		}
		if !strings.Contains(rest, ": ") && !strings.HasSuffix(rest, ":") {
			// Scalar item.
			seq = append(seq, unquote(rest))
			*pos++
			continue
		}
		// Inline mapping start: re-parse the remainder as the first key
		// of a mapping indented two columns past the dash.
		itemIndent := indent + 2
		rewritten := yline{no: ln.no, indent: itemIndent, text: rest}
		sub := append([]yline{rewritten}, collectItem(lines, *pos+1, itemIndent)...)
		subPos := 0
		item, err := parseMap(sub, &subPos, itemIndent)
		if err != nil {
			return nil, err
		}
		if subPos != len(sub) {
			return nil, fmt.Errorf("spec: line %d: malformed sequence item", sub[subPos].no)
		}
		seq = append(seq, item)
		*pos += 1 + len(sub) - 1
	}
	return seq, nil
}

// collectItem gathers the continuation lines of a sequence item: all
// lines indented at least to the item's body column.
func collectItem(lines []yline, from, itemIndent int) []yline {
	var out []yline
	for i := from; i < len(lines); i++ {
		if lines[i].indent < itemIndent {
			break
		}
		out = append(out, lines[i])
	}
	return out
}

func splitKey(ln yline) (key, val string, err error) {
	idx := strings.Index(ln.text, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("spec: line %d: expected \"key: value\", got %q", ln.no, ln.text)
	}
	key = strings.TrimSpace(ln.text[:idx])
	val = strings.TrimSpace(ln.text[idx+1:])
	if strings.HasPrefix(val, "{") || strings.HasPrefix(val, "[") {
		return "", "", fmt.Errorf("spec: line %d: flow syntax ({...}/[...]) is not supported; use block style", ln.no)
	}
	return key, unquote(val), nil
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// --- typed decoding ------------------------------------------------------

type decoder struct{ err error }

func (d *decoder) fail(path, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("spec: %s: %s", path, fmt.Sprintf(format, args...))
	}
}

// checkKeys rejects unknown keys with the allowed set in the message.
func (d *decoder) checkKeys(m map[string]node, path string, allowed ...string) {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	var bad []string
	for k := range m {
		if !ok[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		sort.Strings(allowed)
		d.fail(path, "unknown key(s) %s (allowed: %s)", strings.Join(bad, ", "), strings.Join(allowed, ", "))
	}
}

func (d *decoder) scalar(m map[string]node, path, key string) (string, bool) {
	v, ok := m[key]
	if !ok || d.err != nil {
		return "", false
	}
	s, isScalar := v.(string)
	if !isScalar {
		d.fail(path+"."+key, "expected a scalar value")
		return "", false
	}
	return s, true
}

func (d *decoder) str(m map[string]node, path, key string) string {
	s, _ := d.scalar(m, path, key)
	return s
}

func (d *decoder) uint(m map[string]node, path, key string, def uint64) uint64 {
	s, ok := d.scalar(m, path, key)
	if !ok {
		return def
	}
	v, err := strconv.ParseUint(strings.ReplaceAll(s, "_", ""), 0, 64)
	if err != nil {
		d.fail(path+"."+key, "%q is not an unsigned integer", s)
		return def
	}
	return v
}

func (d *decoder) int(m map[string]node, path, key string, def int) int {
	s, ok := d.scalar(m, path, key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(strings.ReplaceAll(s, "_", ""))
	if err != nil {
		d.fail(path+"."+key, "%q is not an integer", s)
		return def
	}
	return v
}

func (d *decoder) float(m map[string]node, path, key string, def float64) float64 {
	s, ok := d.scalar(m, path, key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail(path+"."+key, "%q is not a number", s)
		return def
	}
	return v
}

func (d *decoder) duration(m map[string]node, path, key string) time.Duration {
	s, ok := d.scalar(m, path, key)
	if !ok {
		return 0
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.fail(path+"."+key, "%q is not a duration (want e.g. 30s, 2m)", s)
		return 0
	}
	return v
}

func (d *decoder) mapAt(m map[string]node, path, key string) (map[string]node, bool) {
	v, ok := m[key]
	if !ok || d.err != nil {
		return nil, false
	}
	mm, isMap := v.(map[string]node)
	if !isMap {
		d.fail(path+"."+key, "expected a nested mapping")
		return nil, false
	}
	return mm, true
}

func (d *decoder) listAt(m map[string]node, path, key string) ([]node, bool) {
	v, ok := m[key]
	if !ok || d.err != nil {
		return nil, false
	}
	l, isList := v.([]node)
	if !isList {
		d.fail(path+"."+key, "expected a sequence (- item)")
		return nil, false
	}
	return l, true
}

func (d *decoder) spec(m map[string]node) *Spec {
	const path = "(top level)"
	d.checkKeys(m, path, "name", "seed", "scale", "duration", "profiles", "clients")
	s := &Spec{
		Name:     d.str(m, path, "name"),
		Seed:     d.uint(m, path, "seed", 0),
		Scale:    d.str(m, path, "scale"),
		Duration: d.duration(m, path, "duration"),
	}
	if pm, ok := d.mapAt(m, path, "profiles"); ok {
		s.Profiles = map[string]workload.Profile{}
		for name, v := range pm {
			ppath := "profiles." + name
			prof, isMap := v.(map[string]node)
			if !isMap {
				d.fail(ppath, "expected a mapping of profile fields")
				continue
			}
			s.Profiles[name] = d.profile(prof, ppath, name, s.Seed)
		}
	}
	if cl, ok := d.listAt(m, path, "clients"); ok {
		for i, v := range cl {
			cpath := fmt.Sprintf("clients[%d]", i)
			cm, isMap := v.(map[string]node)
			if !isMap {
				d.fail(cpath, "expected a mapping (name:, rate:, ...)")
				continue
			}
			s.Clients = append(s.Clients, d.client(cm, cpath))
		}
	}
	return s
}

func (d *decoder) client(m map[string]node, path string) Client {
	d.checkKeys(m, path, "name", "count", "rate", "skew", "zipf_s", "arrival", "workloads")
	c := Client{
		Name:  d.str(m, path, "name"),
		Count: d.int(m, path, "count", 1),
		Rate:  d.float(m, path, "rate", 0),
		Skew:  Skew(d.str(m, path, "skew")),
		ZipfS: d.float(m, path, "zipf_s", 0),
	}
	if am, ok := d.mapAt(m, path, "arrival"); ok {
		d.checkKeys(am, path+".arrival", "process", "shape")
		c.Arrival = Arrival{
			Process: d.str(am, path+".arrival", "process"),
			Shape:   d.float(am, path+".arrival", "shape", 0),
		}
	} else if d.err == nil {
		d.fail(path, "arrival block is required (process: poisson|gamma|weibull)")
	}
	if wl, ok := d.listAt(m, path, "workloads"); ok {
		for j, v := range wl {
			wpath := fmt.Sprintf("%s.workloads[%d]", path, j)
			wm, isMap := v.(map[string]node)
			if !isMap {
				d.fail(wpath, "expected a mapping (pair:/bench:, weight:, ...)")
				continue
			}
			c.Workloads = append(c.Workloads, d.entry(wm, wpath))
		}
	}
	return c
}

func (d *decoder) entry(m map[string]node, path string) Entry {
	d.checkKeys(m, path, "pair", "bench", "f", "tier", "weight", "phases")
	e := Entry{
		Pair:   d.str(m, path, "pair"),
		Bench:  d.str(m, path, "bench"),
		F:      d.float(m, path, "f", 0),
		Tier:   d.str(m, path, "tier"),
		Weight: d.float(m, path, "weight", 1),
	}
	e.Phases = d.phases(m, path)
	return e
}

func (d *decoder) phases(m map[string]node, path string) []workload.Phase {
	pl, ok := d.listAt(m, path, "phases")
	if !ok {
		return nil
	}
	var out []workload.Phase
	for k, v := range pl {
		ppath := fmt.Sprintf("%s.phases[%d]", path, k)
		pm, isMap := v.(map[string]node)
		if !isMap {
			d.fail(ppath, "expected a mapping (len:, cold_scale:, ilp_scale:)")
			continue
		}
		d.checkKeys(pm, ppath, "len", "cold_scale", "ilp_scale")
		out = append(out, workload.Phase{
			Len:       d.uint(pm, ppath, "len", 0),
			ColdScale: d.float(pm, ppath, "cold_scale", 1),
			IlpScale:  d.float(pm, ppath, "ilp_scale", 1),
		})
	}
	return out
}

func (d *decoder) profile(m map[string]node, path, name string, specSeed uint64) workload.Profile {
	d.checkKeys(m, path,
		"seed", "frac_load", "frac_store", "frac_branch", "frac_mul", "frac_div",
		"frac_fadd", "frac_fmul", "frac_fdiv", "frac_pause",
		"chain_frac", "dep_window", "hot_bytes", "warm_bytes", "cold_bytes",
		"p_warm", "p_cold", "stride_frac", "loop_len", "taken_bias", "noise_frac", "phases")
	p := workload.Profile{
		Name:       name,
		Seed:       d.uint(m, path, "seed", specSeed^0x5EED),
		FracLoad:   d.float(m, path, "frac_load", 0),
		FracStore:  d.float(m, path, "frac_store", 0),
		FracBranch: d.float(m, path, "frac_branch", 0),
		FracMul:    d.float(m, path, "frac_mul", 0),
		FracDiv:    d.float(m, path, "frac_div", 0),
		FracFAdd:   d.float(m, path, "frac_fadd", 0),
		FracFMul:   d.float(m, path, "frac_fmul", 0),
		FracFDiv:   d.float(m, path, "frac_fdiv", 0),
		FracPause:  d.float(m, path, "frac_pause", 0),
		ChainFrac:  d.float(m, path, "chain_frac", 0),
		DepWindow:  d.int(m, path, "dep_window", 8),
		HotBytes:   d.uint(m, path, "hot_bytes", 16<<10),
		WarmBytes:  d.uint(m, path, "warm_bytes", 128<<10),
		ColdBytes:  d.uint(m, path, "cold_bytes", 64<<20),
		PWarm:      d.float(m, path, "p_warm", 0),
		PCold:      d.float(m, path, "p_cold", 0),
		StrideFrac: d.float(m, path, "stride_frac", 0),
		LoopLen:    d.uint(m, path, "loop_len", 1024),
		TakenBias:  d.float(m, path, "taken_bias", 0.6),
		NoiseFrac:  d.float(m, path, "noise_frac", 0.02),
	}
	p.Phases = d.phases(m, path)
	return p
}

// --- encoding ------------------------------------------------------------

// Encode renders the spec as a YAML document Parse round-trips. Fitted
// specs from the calibration harness are written with it.
func (s *Spec) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "name: %s\n", s.Name)
	fmt.Fprintf(&b, "seed: %d\n", s.Seed)
	if s.Scale != "" {
		fmt.Fprintf(&b, "scale: %s\n", s.Scale)
	}
	fmt.Fprintf(&b, "duration: %s\n", s.Duration)
	if len(s.Profiles) > 0 {
		b.WriteString("profiles:\n")
		for _, name := range s.profileNames() {
			p := s.Profiles[name]
			fmt.Fprintf(&b, "  %s:\n", name)
			fmt.Fprintf(&b, "    seed: %d\n", p.Seed)
			for _, f := range []struct {
				key string
				v   float64
			}{
				{"frac_load", p.FracLoad}, {"frac_store", p.FracStore},
				{"frac_branch", p.FracBranch}, {"frac_mul", p.FracMul},
				{"frac_div", p.FracDiv}, {"frac_fadd", p.FracFAdd},
				{"frac_fmul", p.FracFMul}, {"frac_fdiv", p.FracFDiv},
				{"frac_pause", p.FracPause}, {"chain_frac", p.ChainFrac},
				{"p_warm", p.PWarm}, {"p_cold", p.PCold},
				{"stride_frac", p.StrideFrac}, {"taken_bias", p.TakenBias},
				{"noise_frac", p.NoiseFrac},
			} {
				if f.v != 0 {
					fmt.Fprintf(&b, "    %s: %g\n", f.key, f.v)
				}
			}
			fmt.Fprintf(&b, "    dep_window: %d\n", p.DepWindow)
			fmt.Fprintf(&b, "    hot_bytes: %d\n", p.HotBytes)
			fmt.Fprintf(&b, "    warm_bytes: %d\n", p.WarmBytes)
			fmt.Fprintf(&b, "    cold_bytes: %d\n", p.ColdBytes)
			fmt.Fprintf(&b, "    loop_len: %d\n", p.LoopLen)
			encodePhases(&b, "    ", p.Phases)
		}
	}
	b.WriteString("clients:\n")
	for _, c := range s.Clients {
		fmt.Fprintf(&b, "  - name: %s\n", c.Name)
		fmt.Fprintf(&b, "    count: %d\n", c.Count)
		fmt.Fprintf(&b, "    rate: %g\n", c.Rate)
		if c.Skew != "" && c.Skew != SkewUniform {
			fmt.Fprintf(&b, "    skew: %s\n", c.Skew)
			if c.ZipfS != 0 {
				fmt.Fprintf(&b, "    zipf_s: %g\n", c.ZipfS)
			}
		}
		b.WriteString("    arrival:\n")
		fmt.Fprintf(&b, "      process: %s\n", c.Arrival.Process)
		if c.Arrival.Shape != 0 {
			fmt.Fprintf(&b, "      shape: %g\n", c.Arrival.Shape)
		}
		b.WriteString("    workloads:\n")
		for _, e := range c.Workloads {
			if e.Pair != "" {
				fmt.Fprintf(&b, "      - pair: %s\n", e.Pair)
			} else {
				fmt.Fprintf(&b, "      - bench: %s\n", e.Bench)
			}
			if e.F != 0 {
				fmt.Fprintf(&b, "        f: %g\n", e.F)
			}
			if e.Tier != "" {
				fmt.Fprintf(&b, "        tier: %s\n", e.Tier)
			}
			fmt.Fprintf(&b, "        weight: %g\n", e.Weight)
			encodePhases(&b, "        ", e.Phases)
		}
	}
	return []byte(b.String())
}

func encodePhases(b *strings.Builder, indent string, phases []workload.Phase) {
	if len(phases) == 0 {
		return
	}
	fmt.Fprintf(b, "%sphases:\n", indent)
	for _, ph := range phases {
		fmt.Fprintf(b, "%s  - len: %d\n", indent, ph.Len)
		fmt.Fprintf(b, "%s    cold_scale: %g\n", indent, ph.ColdScale)
		fmt.Fprintf(b, "%s    ilp_scale: %g\n", indent, ph.IlpScale)
	}
}
