package spec

import (
	"strings"
	"testing"
	"time"

	"soemt/internal/workload"
)

func validSpec() *Spec {
	return &Spec{
		Name:     "t",
		Seed:     1,
		Duration: time.Second,
		Clients: []Client{{
			Name:    "c",
			Count:   1,
			Rate:    10,
			Arrival: Arrival{Process: ProcPoisson},
			Workloads: []Entry{
				{Pair: "gcc:mcf", F: 0.5, Weight: 1},
			},
		}},
	}
}

func wantErr(t *testing.T, s *Spec, frag string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("Validate accepted invalid spec, wanted error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestValidateAcceptsGoodSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateActionableErrors(t *testing.T) {
	s := validSpec()
	s.Name = ""
	wantErr(t, s, "name is required")

	s = validSpec()
	s.Duration = 0
	wantErr(t, s, "duration must be positive")

	s = validSpec()
	s.Scale = "huge"
	wantErr(t, s, `scale "huge" unknown`)

	s = validSpec()
	s.Clients = nil
	wantErr(t, s, "at least one client group")

	s = validSpec()
	s.Clients[0].Count = 0
	wantErr(t, s, "count must be >= 1")

	s = validSpec()
	s.Clients[0].Rate = -1
	wantErr(t, s, "rate must be a positive")

	s = validSpec()
	s.Clients[0].Skew = "pareto"
	wantErr(t, s, `skew "pareto" unknown`)

	s = validSpec()
	s.Clients[0].Arrival = Arrival{Process: "lognormal"}
	wantErr(t, s, `process "lognormal" unknown`)

	s = validSpec()
	s.Clients[0].Arrival = Arrival{Process: ProcGamma}
	wantErr(t, s, "gamma requires a positive shape")

	s = validSpec()
	s.Clients[0].Arrival = Arrival{Process: ProcPoisson, Shape: 2}
	wantErr(t, s, "meaningless for poisson")

	s = validSpec()
	s.Clients[0].Workloads[0].Pair = "gcc"
	wantErr(t, s, `pair must be "a:b"`)

	s = validSpec()
	s.Clients[0].Workloads[0] = Entry{Pair: "gcc:mcf", Bench: "art", Weight: 1}
	wantErr(t, s, "exactly one of pair or bench")

	s = validSpec()
	s.Clients[0].Workloads[0] = Entry{Pair: "gcc:nosuch", Weight: 1}
	wantErr(t, s, `unknown profile "nosuch"`)

	s = validSpec()
	s.Clients[0].Workloads[0].F = 1.5
	wantErr(t, s, "f must be in [0, 1]")

	s = validSpec()
	s.Clients[0].Workloads[0].Tier = "turbo"
	wantErr(t, s, `tier "turbo" unknown`)

	s = validSpec()
	s.Clients[0].Workloads[0].Weight = 0
	wantErr(t, s, "weight must be positive")

	s = validSpec()
	s.Clients = append(s.Clients, s.Clients[0])
	wantErr(t, s, "duplicate client name")

	s = validSpec()
	s.Clients[0].Rate = 1e9
	wantErr(t, s, "lower the rates")
}

// A phase overlay that would push the scaled PCold past 1 must be
// rejected at spec load with the profile's own validation message —
// this is the satellite-2 check surfacing through the spec layer.
func TestValidateRejectsBadPhaseOverlay(t *testing.T) {
	s := validSpec()
	s.Clients[0].Workloads[0].Phases = []workload.Phase{
		{Len: 1000, ColdScale: 1e6, IlpScale: 1},
	}
	wantErr(t, s, "phase overlay")
}

func TestValidateInlineProfile(t *testing.T) {
	s := validSpec()
	p, _ := workload.ByName("gcc")
	p.Name = ""
	s.Profiles = map[string]workload.Profile{"custom": p}
	s.Clients[0].Workloads = append(s.Clients[0].Workloads, Entry{Bench: "custom", Weight: 1})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// Inline profiles must themselves validate.
	bad := p
	bad.FracLoad = 1.2
	bad.FracStore = -0.3
	s.Profiles["custom"] = bad
	wantErr(t, s, "profiles[custom]")
}

func TestMatrixAggregatesCells(t *testing.T) {
	s := replaySpec(42)
	cells, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3 (gcc:mcf, art bench, swim:crafty)", len(cells))
	}
	totalShare, totalReqs := 0.0, 0
	for _, c := range cells {
		totalShare += c.Share
		totalReqs += c.Requests
		if c.Overlaid {
			t.Errorf("cell %s/%s marked overlaid without overlays", c.Pair, c.Bench)
		}
		if c.Scale != "tiny" {
			t.Errorf("cell scale %q, want tiny", c.Scale)
		}
	}
	if totalShare < 0.999 || totalShare > 1.001 {
		t.Fatalf("cell shares sum to %v, want 1", totalShare)
	}
	reqs, _ := s.Schedule()
	if totalReqs != len(reqs) {
		t.Fatalf("cells cover %d requests, schedule has %d", totalReqs, len(reqs))
	}
	// gcc:mcf carries weight 3 of 4 in the dominant group: it must lead.
	if cells[0].Pair != "gcc:mcf" {
		t.Fatalf("dominant cell is %q/%q, want gcc:mcf", cells[0].Pair, cells[0].Bench)
	}
}

func TestSweepPairsSkipsBenchAndOverlays(t *testing.T) {
	s := replaySpec(42)
	pairs, skipped, err := s.SweepPairs()
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || pairs[0] != "gcc:mcf" || pairs[1] != "swim:crafty" {
		t.Fatalf("pairs = %v, want [gcc:mcf swim:crafty]", pairs)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the art bench cell)", skipped)
	}
}

func TestReplayable(t *testing.T) {
	if err := replaySpec(1).Replayable(); err != nil {
		t.Fatal(err)
	}
	s := replaySpec(1)
	s.Clients[0].Workloads[0].Phases = []workload.Phase{{Len: 10, ColdScale: 1, IlpScale: 1}}
	err := s.Replayable()
	if err == nil || !strings.Contains(err.Error(), "-expand") {
		t.Fatalf("overlay spec should not be replayable; got %v", err)
	}

	s = replaySpec(1)
	p, _ := workload.ByName("gcc")
	s.Profiles = map[string]workload.Profile{"inline": p}
	s.Clients[0].Workloads[0] = Entry{Bench: "inline", Weight: 1}
	err = s.Replayable()
	if err == nil || !strings.Contains(err.Error(), "inline") {
		t.Fatalf("inline-profile spec should not be replayable; got %v", err)
	}
}

func TestCellProfilesAppliesOverlay(t *testing.T) {
	s := replaySpec(1)
	overlay := []workload.Phase{{Len: 5000, ColdScale: 0.5, IlpScale: 1.2}}
	s.Clients[0].Workloads[0].Phases = overlay
	cells, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	var target Cell
	for _, c := range cells {
		if c.Pair == "gcc:mcf" {
			target = c
		}
	}
	if !target.Overlaid {
		t.Fatal("gcc:mcf cell should be marked overlaid")
	}
	profs, err := s.CellProfiles(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatalf("got %d profiles, want 2", len(profs))
	}
	base, _ := workload.ByName("gcc")
	if len(profs[0].Phases) != len(base.Phases)+1 {
		t.Fatalf("overlay not appended: %d phases, want %d", len(profs[0].Phases), len(base.Phases)+1)
	}
	last := profs[0].Phases[len(profs[0].Phases)-1]
	if last != overlay[0] {
		t.Fatalf("appended phase %+v, want %+v", last, overlay[0])
	}
}
