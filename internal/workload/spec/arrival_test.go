package spec

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// sampleGaps draws n inter-arrival gaps from the process.
func sampleGaps(a Arrival, seed uint64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a.interArrival(seed, uint64(i))
	}
	return out
}

func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs)-1)) / mean
}

// Every process is normalized to unit mean, so a member at rate r sees
// mean gap 1/r. 20k samples put the standard error of the mean at
// CV/sqrt(20000) ≤ ~1.6% even for the burstiest process tested here;
// 5% is a comfortable, non-flaky bound.
func TestArrivalMeanRate(t *testing.T) {
	cases := []Arrival{
		{Process: ProcPoisson},
		{Process: ProcGamma, Shape: 4},
		{Process: ProcGamma, Shape: 0.5},
		{Process: ProcWeibull, Shape: 0.6},
		{Process: ProcWeibull, Shape: 2},
	}
	const n = 20000
	for _, a := range cases {
		gaps := sampleGaps(a, 0xA1B2, n)
		mean, _ := meanCV(gaps)
		if math.Abs(mean-1) > 0.05 {
			t.Errorf("%s(shape=%g): mean gap %.4f, want 1 ± 0.05", a.Process, a.Shape, mean)
		}
		for i, g := range gaps {
			if !(g > 0) || math.IsInf(g, 0) {
				t.Fatalf("%s(shape=%g): gap[%d] = %v, want positive finite", a.Process, a.Shape, i, g)
			}
		}
	}
}

// Burstiness ordering: a heavy-tailed Weibull (shape < 1) must be
// burstier than Poisson, which must be burstier than a smoothed
// Gamma (shape > 1). The empirical CVs must also track the analytical
// Arrival.CV values.
func TestArrivalBurstinessOrdering(t *testing.T) {
	const n = 20000
	weibull := Arrival{Process: ProcWeibull, Shape: 0.5}
	poisson := Arrival{Process: ProcPoisson}
	gamma := Arrival{Process: ProcGamma, Shape: 4}

	_, cvW := meanCV(sampleGaps(weibull, 7, n))
	_, cvP := meanCV(sampleGaps(poisson, 7, n))
	_, cvG := meanCV(sampleGaps(gamma, 7, n))

	if !(cvW > cvP && cvP > cvG) {
		t.Fatalf("burstiness ordering violated: weibull(0.5) CV=%.3f, poisson CV=%.3f, gamma(4) CV=%.3f", cvW, cvP, cvG)
	}
	// Analytical targets: weibull(0.5) CV = sqrt(Γ(5)/Γ(3)^2 - 1) ≈ 2.24,
	// poisson CV = 1, gamma(4) CV = 0.5. Heavy-tailed CV estimators
	// converge slowly, so weibull gets a looser relative band.
	if math.Abs(cvP-1) > 0.05 {
		t.Errorf("poisson CV = %.3f, want 1 ± 0.05", cvP)
	}
	if math.Abs(cvG-gamma.CV()) > 0.05 {
		t.Errorf("gamma(4) CV = %.3f, want %.3f ± 0.05", cvG, gamma.CV())
	}
	if math.Abs(cvW-weibull.CV())/weibull.CV() > 0.15 {
		t.Errorf("weibull(0.5) CV = %.3f, want %.3f ± 15%%", cvW, weibull.CV())
	}
}

func TestGammaShapeBelowOne(t *testing.T) {
	// The k < 1 branch uses the Gamma(k+1)·U^(1/k) boost; check the
	// distribution, not just the mean: Gamma(0.5, 2) is chi-square with
	// 1 dof, whose median is ~0.455/0.5 = 0.91 of the mean... simply
	// assert mean and the analytical CV = 1/sqrt(0.5) ≈ 1.414.
	a := Arrival{Process: ProcGamma, Shape: 0.5}
	mean, cv := meanCV(sampleGaps(a, 99, 40000))
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("gamma(0.5) mean = %.4f, want 1 ± 0.05", mean)
	}
	if math.Abs(cv-a.CV())/a.CV() > 0.1 {
		t.Errorf("gamma(0.5) CV = %.3f, want %.3f ± 10%%", cv, a.CV())
	}
}

// Counter-mode purity: the i-th gap must not depend on which other
// indices were sampled, or in what order.
func TestArrivalDrawsArePure(t *testing.T) {
	for _, a := range []Arrival{
		{Process: ProcPoisson},
		{Process: ProcGamma, Shape: 0.7},
		{Process: ProcWeibull, Shape: 0.5},
	} {
		forward := sampleGaps(a, 42, 64)
		for i := 63; i >= 0; i-- {
			if got := a.interArrival(42, uint64(i)); got != forward[i] {
				t.Fatalf("%s: gap[%d] changed on out-of-order access: %v != %v", a.Process, i, got, forward[i])
			}
		}
	}
}

func replaySpec(seed uint64) *Spec {
	return &Spec{
		Name:     "replay",
		Seed:     seed,
		Scale:    "tiny",
		Duration: 2 * time.Second,
		Clients: []Client{
			{
				Name:    "interactive",
				Count:   4,
				Rate:    40,
				Skew:    SkewZipf,
				ZipfS:   1.1,
				Arrival: Arrival{Process: ProcWeibull, Shape: 0.6},
				Workloads: []Entry{
					{Pair: "gcc:mcf", F: 0.5, Weight: 3},
					{Bench: "art", Weight: 1},
				},
			},
			{
				Name:    "batch",
				Count:   2,
				Rate:    15,
				Arrival: Arrival{Process: ProcGamma, Shape: 2},
				Workloads: []Entry{
					{Pair: "swim:crafty", F: 1, Tier: "exact", Weight: 1},
				},
			},
		},
	}
}

// Satellite: identical (spec, seed) replays are byte-identical;
// changing the seed changes the schedule.
func TestScheduleReplayByteIdentical(t *testing.T) {
	s1, err := replaySpec(1234).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := replaySpec(1234).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := EncodeSchedule(s1), EncodeSchedule(s2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same (spec, seed) produced different schedules")
	}
	if len(s1) == 0 {
		t.Fatalf("schedule is empty; spec should generate ~130 requests")
	}
	s3, err := replaySpec(1235).Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, EncodeSchedule(s3)) {
		t.Fatalf("different seeds produced identical schedules")
	}
}

// The schedule must realize the configured aggregate rate: total
// requests ≈ sum(rate_g) × duration. Low-CV processes are used here so
// the ±8%% band is far from the counting noise (a heavy-tailed
// Weibull member can legitimately drift >10%% over a few hundred
// draws; TestArrivalMeanRate covers its unbiasedness with 20k
// samples instead).
func TestScheduleAggregateRate(t *testing.T) {
	spec := &Spec{
		Name:     "rate",
		Seed:     77,
		Scale:    "tiny",
		Duration: 20 * time.Second,
		Clients: []Client{
			{
				Name: "steady", Count: 4, Rate: 40,
				Arrival:   Arrival{Process: ProcPoisson},
				Workloads: []Entry{{Pair: "gcc:mcf", F: 0.5, Weight: 1}},
			},
			{
				Name: "smooth", Count: 2, Rate: 15,
				Arrival:   Arrival{Process: ProcGamma, Shape: 4},
				Workloads: []Entry{{Bench: "art", Weight: 1}},
			},
		},
	}
	reqs, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	want := (40.0 + 15.0) * spec.Duration.Seconds()
	got := float64(len(reqs))
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("scheduled %v requests, want ~%v (±8%%)", got, want)
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].At < reqs[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, reqs[i].At, reqs[i-1].At)
		}
	}
}

// Zipf skew: the head member must carry more traffic than the tail.
func TestZipfSkewConcentratesRate(t *testing.T) {
	c := Client{Count: 8, Skew: SkewZipf, ZipfS: 1.2}
	shares := c.memberShares()
	total := 0.0
	for i, sh := range shares {
		total += sh
		if i > 0 && sh >= shares[i-1] {
			t.Fatalf("zipf shares not decreasing: shares[%d]=%v >= shares[%d]=%v", i, sh, i-1, shares[i-1])
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", total)
	}
	if shares[0] < 3*shares[7] {
		t.Fatalf("zipf 1.2 head share %v should dominate tail %v", shares[0], shares[7])
	}
}
