package spec

import (
	"math"

	"soemt/internal/rng"
)

// Counter-mode sampling of the arrival processes. Every draw is a
// pure function of (seed, index): even the rejection loop inside the
// gamma sampler runs on a per-index substream, so draw i never
// consumes values belonging to draw i+1 and the whole schedule can be
// regenerated from any position.

// uniformAt returns a uniform in the open interval (0, 1): both
// endpoints are excluded so log() and inverse-CDF transforms below
// never see 0 or 1.
func uniformAt(seed, index uint64) float64 {
	u := rng.Float64At(seed, index)
	if u <= 0 {
		return 0.5 / (1 << 53)
	}
	return u
}

// expAt draws a unit-mean exponential.
func expAt(seed, index uint64) float64 {
	return -math.Log(1 - uniformAt(seed, index))
}

// weibullAt draws a unit-mean Weibull with shape k via the inverse
// CDF; the 1/Gamma(1+1/k) factor normalizes the mean.
func weibullAt(seed, index uint64, k float64) float64 {
	return math.Pow(-math.Log(1-uniformAt(seed, index)), 1/k) / math.Gamma(1+1/k)
}

// normalAt draws a standard normal by Box–Muller from the j-th pair of
// the per-index substream.
func normalAt(sub, j uint64) float64 {
	u1 := uniformAt(sub, 2*j)
	u2 := uniformAt(sub, 2*j+1)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// gammaAt draws a unit-mean Gamma(shape, 1/shape) using
// Marsaglia–Tsang squeeze-rejection. The rejection loop consumes
// values from a substream derived from (seed, index), keeping the
// draw pure.
func gammaAt(seed, index uint64, shape float64) float64 {
	sub := rng.Uint64At(seed, index)
	k, boost := shape, 1.0
	if k < 1 {
		// Gamma(k) = Gamma(k+1) · U^(1/k).
		boost = math.Pow(uniformAt(sub, 1<<62), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / (3 * math.Sqrt(d))
	for j := uint64(0); ; j++ {
		x := normalAt(sub, j)
		u := uniformAt(sub, (1<<61)+j)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		if math.Log(u) < 0.5*x*x+d-d*v+d*math.Log(v) {
			// boost · d·v ~ Gamma(shape, 1); dividing by shape sets the
			// mean to exactly 1 for every shape.
			return boost * d * v / shape
		}
	}
}

// interArrival returns the i-th unit-mean inter-arrival gap of the
// process on the stream identified by seed.
func (a Arrival) interArrival(seed, i uint64) float64 {
	switch a.Process {
	case ProcGamma:
		return gammaAt(seed, i, a.Shape)
	case ProcWeibull:
		return weibullAt(seed, i, a.Shape)
	default: // poisson
		return expAt(seed, i)
	}
}
