package spec

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"soemt/internal/workload"
)

const sampleDoc = `# mixed interactive + batch population
name: mixed
seed: 42
scale: tiny
duration: 2s
clients:
  - name: interactive
    count: 4
    rate: 40
    skew: zipf
    zipf_s: 1.1
    arrival:
      process: weibull
      shape: 0.6
    workloads:
      - pair: gcc:mcf   # the paper's fairness-critical pairing
        f: 0.5
        weight: 3
      - bench: art
        weight: 1
  - name: batch
    count: 2
    rate: 15
    arrival:
      process: gamma
      shape: 2
    workloads:
      - pair: swim:crafty
        f: 1
        tier: exact
        weight: 1
`

func TestParseSampleDoc(t *testing.T) {
	s, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	want := replaySpec(42)
	want.Name = "mixed"
	if s.Name != "mixed" || s.Seed != 42 || s.Scale != "tiny" || s.Duration != 2*time.Second {
		t.Fatalf("header mismatch: %+v", s)
	}
	if len(s.Clients) != 2 {
		t.Fatalf("got %d clients, want 2", len(s.Clients))
	}
	c := s.Clients[0]
	if c.Name != "interactive" || c.Count != 4 || c.Rate != 40 || c.Skew != SkewZipf || c.ZipfS != 1.1 {
		t.Fatalf("client[0] mismatch: %+v", c)
	}
	if c.Arrival != (Arrival{Process: ProcWeibull, Shape: 0.6}) {
		t.Fatalf("client[0] arrival mismatch: %+v", c.Arrival)
	}
	if len(c.Workloads) != 2 || c.Workloads[0].Pair != "gcc:mcf" || c.Workloads[0].Weight != 3 ||
		c.Workloads[1].Bench != "art" {
		t.Fatalf("client[0] workloads mismatch: %+v", c.Workloads)
	}
	if s.Clients[1].Workloads[0].Tier != "exact" {
		t.Fatalf("tier not parsed: %+v", s.Clients[1].Workloads[0])
	}

	// The parsed doc is the same population replaySpec builds in Go —
	// their schedules must agree byte-for-byte.
	got, err := s.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	exp, err := want.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(EncodeSchedule(got), EncodeSchedule(exp)) {
		t.Fatal("YAML spec and equivalent Go spec produced different schedules")
	}
}

func parseErr(t *testing.T, doc, frag string) {
	t.Helper()
	_, err := Parse([]byte(doc))
	if err == nil {
		t.Fatalf("Parse accepted bad doc, wanted error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, "", "empty document")
	parseErr(t, "name: x\nbogus_key: 1\nduration: 1s\nclients:\n  - name: c\n", "unknown key(s) bogus_key")
	parseErr(t, "name: x\n\tseed: 1\n", "tabs are not allowed")
	parseErr(t, "name: x\nseed: {a: 1}\n", "flow syntax")
	parseErr(t, "name: x\nname: y\n", `duplicate key "name"`)
	parseErr(t, "name: x\nclients:\n", `key "clients" has no value`)
	parseErr(t, "name: x\nseed: twelve\n", "not an unsigned integer")
	parseErr(t, "name: x\nduration: fast\n", "not a duration")
	// Unknown keys inside nested blocks carry their path.
	parseErr(t, `name: x
duration: 1s
clients:
  - name: c
    count: 1
    rate: 1
    arrival:
      process: poisson
      burst: 3
    workloads:
      - pair: gcc:mcf
`, "clients[0].arrival: unknown key(s) burst")
	// A doc that parses but fails semantic validation reports the
	// validation error.
	parseErr(t, `name: x
duration: 1s
clients:
  - name: c
    count: 1
    rate: 1
    arrival:
      process: gamma
    workloads:
      - pair: gcc:mcf
`, "gamma requires a positive shape")
	// Missing arrival block is caught at decode with a hint.
	parseErr(t, `name: x
duration: 1s
clients:
  - name: c
    count: 1
    rate: 1
    workloads:
      - pair: gcc:mcf
`, "arrival block is required")
}

func TestParseInlineProfile(t *testing.T) {
	doc := `name: fitted
seed: 7
duration: 1s
profiles:
  fit-src:
    frac_load: 0.3
    frac_store: 0.1
    frac_branch: 0.15
    chain_frac: 0.4
    p_warm: 0.2
    p_cold: 0.05
    phases:
      - len: 200000
        cold_scale: 2
        ilp_scale: 0.8
clients:
  - name: replay
    count: 1
    rate: 5
    arrival:
      process: poisson
    workloads:
      - bench: fit-src
`
	s, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := s.Resolve("fit-src")
	if !ok {
		t.Fatal("inline profile not resolvable")
	}
	if p.FracLoad != 0.3 || p.PCold != 0.05 || p.ChainFrac != 0.4 {
		t.Fatalf("profile fields mismatch: %+v", p)
	}
	if len(p.Phases) != 1 || p.Phases[0].Len != 200000 || p.Phases[0].ColdScale != 2 {
		t.Fatalf("profile phases mismatch: %+v", p.Phases)
	}
	// Defaults fill the unset structural knobs.
	if p.DepWindow != 8 || p.LoopLen != 1024 || p.TakenBias != 0.6 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

// Encode must round-trip through Parse to an equivalent spec —
// the calibration harness depends on this to emit fitted specs.
func TestEncodeRoundTrip(t *testing.T) {
	orig, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Parse(orig.Encode())
	if err != nil {
		t.Fatalf("Encode output does not re-parse: %v\n---\n%s", err, orig.Encode())
	}
	s1, _ := orig.Schedule()
	s2, _ := again.Schedule()
	if !bytes.Equal(EncodeSchedule(s1), EncodeSchedule(s2)) {
		t.Fatal("round-tripped spec produced a different schedule")
	}
}

func TestEncodeRoundTripInlineProfile(t *testing.T) {
	s := validSpec()
	prof, ok := workload.ByName("gcc")
	if !ok {
		t.Fatal("built-in gcc missing")
	}
	prof.Name = ""
	prof.Phases = []workload.Phase{{Len: 1000, ColdScale: 1.5, IlpScale: 0.9}}
	s.Profiles = map[string]workload.Profile{"fit": prof}
	s.Clients[0].Workloads = []Entry{{Bench: "fit", Weight: 1}}
	again, err := Parse(s.Encode())
	if err != nil {
		t.Fatalf("inline-profile Encode does not re-parse: %v\n---\n%s", err, s.Encode())
	}
	p, ok := again.Resolve("fit")
	if !ok {
		t.Fatal("inline profile lost in round trip")
	}
	want := s.Profiles["fit"]
	want.Name = "fit"
	if p.FracLoad != want.FracLoad || p.PCold != want.PCold || len(p.Phases) != 1 {
		t.Fatalf("round-tripped profile mismatch:\ngot  %+v\nwant %+v", p, want)
	}
}
