// Package spec implements ServeGen-style declarative workload
// specifications: YAML documents describing heterogeneous client
// populations (per-client profile mixtures, skewed request rates),
// bursty arrival processes (Poisson, Gamma, Weibull) and program-phase
// overlays, expanded deterministically into either timed open-loop
// traffic for a live soeserve/soeproxy endpoint or static pair/sweep
// matrices for offline experiment drivers.
//
// Everything is a pure function of (spec, seed): arrivals and workload
// picks are drawn from internal/rng counter-mode streams, so the same
// spec generates byte-identical schedules on every machine and every
// run — replay is exact by construction, and a schedule can be
// regenerated from any position without state.
package spec

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"soemt/internal/workload"
)

// Skew selects how a client group's aggregate rate is shared across
// its members.
type Skew string

// Supported rate skews. Zipf gives member m weight 1/(m+1)^s — the
// heavy-tailed per-user rates of production traffic, where fairness
// enforcement matters most.
const (
	SkewUniform Skew = "uniform"
	SkewZipf    Skew = "zipf"
)

// Arrival processes.
const (
	ProcPoisson = "poisson"
	ProcGamma   = "gamma"
	ProcWeibull = "weibull"
)

// Arrival describes a client's inter-arrival process. All processes
// are normalized to unit mean and scaled by the member's rate, so
// Process/Shape control only burstiness:
//
//	poisson          CV = 1 (memoryless baseline)
//	gamma  shape k   CV = 1/sqrt(k): k > 1 smooths, k < 1 bursts
//	weibull shape k  CV > 1 for k < 1 (heavy-tailed bursts)
type Arrival struct {
	Process string
	Shape   float64 // gamma/weibull only
}

// CV returns the theoretical coefficient of variation of the process,
// or NaN for an invalid one.
func (a Arrival) CV() float64 {
	switch a.Process {
	case ProcPoisson:
		return 1
	case ProcGamma:
		if a.Shape <= 0 {
			return math.NaN()
		}
		return 1 / math.Sqrt(a.Shape)
	case ProcWeibull:
		if a.Shape <= 0 {
			return math.NaN()
		}
		g1 := math.Gamma(1 + 1/a.Shape)
		g2 := math.Gamma(1 + 2/a.Shape)
		return math.Sqrt(g2/(g1*g1) - 1)
	}
	return math.NaN()
}

// Entry is one weighted workload in a client's mixture: either a
// two-thread pair ("a:b") at an enforcement level or a single-thread
// bench, optionally with a program-phase overlay appended to the base
// profiles' own Phases (matrix expansion only — overlays cannot be
// expressed over the /v1/run wire, which names built-in profiles).
type Entry struct {
	Pair   string
	Bench  string
	F      float64
	Tier   string // "", "fast", "exact", "auto"
	Weight float64
	Phases []workload.Phase
}

// names returns the profile names the entry references.
func (e Entry) names() []string {
	if e.Bench != "" {
		return []string{e.Bench}
	}
	parts := strings.SplitN(e.Pair, ":", 2)
	if len(parts) != 2 {
		return nil
	}
	return parts
}

// Client is one homogeneous client group: Count members sharing an
// aggregate Rate (requests/second) split by Skew, each member drawing
// independent arrivals and workload picks from its own counter-mode
// streams.
type Client struct {
	Name      string
	Count     int
	Rate      float64
	Skew      Skew    // default uniform
	ZipfS     float64 // zipf exponent, default 1
	Arrival   Arrival
	Workloads []Entry
}

// Spec is a complete workload specification.
type Spec struct {
	Name     string
	Seed     uint64
	Scale    string // "tiny", "quick" (default) or "paper"
	Duration time.Duration
	// Profiles holds optional inline custom profiles (e.g. emitted by
	// the calibration harness), referenced from Workloads by name and
	// shadowing built-ins.
	Profiles map[string]workload.Profile
	Clients  []Client
}

// maxRequests bounds a single expansion; a spec above it is almost
// certainly a units mistake (rate in ms instead of seconds, say) and
// fails validation with the estimate in the error.
const maxRequests = 2_000_000

// Resolve returns the profile a workload entry name refers to:
// an inline spec profile if declared, else a built-in.
func (s *Spec) Resolve(name string) (workload.Profile, bool) {
	if p, ok := s.Profiles[name]; ok {
		return p, true
	}
	return workload.ByName(name)
}

// Validate checks the whole spec and returns the first problem as an
// actionable error naming the exact field path.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("spec: name is required (used in logs, schedules and cache keys)")
	}
	switch s.Scale {
	case "", "tiny", "quick", "paper":
	default:
		return fmt.Errorf("spec %s: scale %q unknown (want tiny, quick or paper)", s.Name, s.Scale)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("spec %s: duration must be positive, got %v", s.Name, s.Duration)
	}
	for name, p := range s.Profiles {
		if p.Name != "" && p.Name != name {
			return fmt.Errorf("spec %s: profiles[%s]: inner name %q disagrees with the key", s.Name, name, p.Name)
		}
		pp := p
		pp.Name = name
		if err := pp.Validate(); err != nil {
			return fmt.Errorf("spec %s: profiles[%s]: %w", s.Name, name, err)
		}
	}
	if len(s.Clients) == 0 {
		return fmt.Errorf("spec %s: at least one client group is required", s.Name)
	}
	seen := map[string]bool{}
	expected := 0.0
	for i, c := range s.Clients {
		at := fmt.Sprintf("spec %s: clients[%d]", s.Name, i)
		if c.Name == "" {
			return fmt.Errorf("%s: name is required", at)
		}
		if seen[c.Name] {
			return fmt.Errorf("%s: duplicate client name %q", at, c.Name)
		}
		seen[c.Name] = true
		if c.Count < 1 {
			return fmt.Errorf("%s (%s): count must be >= 1, got %d", at, c.Name, c.Count)
		}
		if !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
			return fmt.Errorf("%s (%s): rate must be a positive requests/second, got %v", at, c.Name, c.Rate)
		}
		switch c.Skew {
		case "", SkewUniform:
		case SkewZipf:
			if c.ZipfS < 0 || math.IsNaN(c.ZipfS) || math.IsInf(c.ZipfS, 0) {
				return fmt.Errorf("%s (%s): zipf_s must be >= 0, got %v", at, c.Name, c.ZipfS)
			}
		default:
			return fmt.Errorf("%s (%s): skew %q unknown (want uniform or zipf)", at, c.Name, c.Skew)
		}
		if err := validateArrival(c.Arrival); err != nil {
			return fmt.Errorf("%s (%s): arrival: %w", at, c.Name, err)
		}
		if len(c.Workloads) == 0 {
			return fmt.Errorf("%s (%s): at least one workload entry is required", at, c.Name)
		}
		for j, e := range c.Workloads {
			if err := s.validateEntry(e); err != nil {
				return fmt.Errorf("%s (%s): workloads[%d]: %w", at, c.Name, j, err)
			}
		}
		expected += c.Rate * s.Duration.Seconds()
	}
	if expected > maxRequests {
		return fmt.Errorf("spec %s: rates × duration expand to ~%.0f requests (> %d); lower the rates or shorten the duration",
			s.Name, expected, maxRequests)
	}
	return nil
}

func validateArrival(a Arrival) error {
	switch a.Process {
	case ProcPoisson:
		if a.Shape != 0 {
			return fmt.Errorf("shape %v is meaningless for poisson (drop it, or pick gamma/weibull)", a.Shape)
		}
	case ProcGamma, ProcWeibull:
		if !(a.Shape > 0) || math.IsInf(a.Shape, 0) {
			return fmt.Errorf("%s requires a positive shape, got %v", a.Process, a.Shape)
		}
	case "":
		return fmt.Errorf("process is required (poisson, gamma or weibull)")
	default:
		return fmt.Errorf("process %q unknown (want poisson, gamma or weibull)", a.Process)
	}
	return nil
}

func (s *Spec) validateEntry(e Entry) error {
	if (e.Pair == "") == (e.Bench == "") {
		return fmt.Errorf("exactly one of pair or bench must be set")
	}
	names := e.names()
	if names == nil {
		return fmt.Errorf("pair must be \"a:b\", got %q", e.Pair)
	}
	for _, n := range names {
		if _, ok := s.Resolve(n); !ok {
			return fmt.Errorf("unknown profile %q (built-ins: %s; inline: %s)",
				n, strings.Join(workload.Names(), ", "), strings.Join(s.profileNames(), ", "))
		}
	}
	if e.F < 0 || e.F > 1 || math.IsNaN(e.F) {
		return fmt.Errorf("f must be in [0, 1], got %v", e.F)
	}
	switch e.Tier {
	case "", "fast", "exact", "auto":
	default:
		return fmt.Errorf("tier %q unknown (want fast, exact or auto)", e.Tier)
	}
	if !(e.Weight > 0) || math.IsInf(e.Weight, 0) {
		return fmt.Errorf("weight must be positive, got %v", e.Weight)
	}
	if len(e.Phases) > 0 {
		// The overlay must keep every referenced profile valid; this
		// reuses Profile.Validate's phase-scale checks so a bad overlay
		// fails here, at spec load, with the profile's own message.
		for _, n := range names {
			if _, err := s.overlaid(n, e.Phases); err != nil {
				return fmt.Errorf("phase overlay on %q: %w", n, err)
			}
		}
	}
	return nil
}

// overlaid returns profile name with the overlay phases appended to
// its own phase schedule.
func (s *Spec) overlaid(name string, phases []workload.Phase) (workload.Profile, error) {
	p, ok := s.Resolve(name)
	if !ok {
		return workload.Profile{}, fmt.Errorf("unknown profile %q", name)
	}
	if len(phases) == 0 {
		return p, nil
	}
	p.Phases = append(append([]workload.Phase{}, p.Phases...), phases...)
	if err := p.Validate(); err != nil {
		return workload.Profile{}, err
	}
	return p, nil
}

func (s *Spec) profileNames() []string {
	names := make([]string, 0, len(s.Profiles))
	for n := range s.Profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Replayable reports whether the spec can be replayed over the
// /v1/run wire, which names built-in profiles only: inline profiles
// and phase overlays have no wire representation. The error says
// which entry blocks replay and what to use instead.
func (s *Spec) Replayable() error {
	for i, c := range s.Clients {
		for j, e := range c.Workloads {
			if len(e.Phases) > 0 {
				return fmt.Errorf("spec %s: clients[%d].workloads[%d]: phase overlays cannot be replayed over the wire; use matrix expansion (-expand) instead", s.Name, i, j)
			}
			for _, n := range e.names() {
				if _, inline := s.Profiles[n]; inline {
					return fmt.Errorf("spec %s: clients[%d].workloads[%d]: inline profile %q cannot be replayed over the wire (soeserve knows built-ins only); use matrix expansion (-expand) instead", s.Name, i, j, n)
				}
			}
		}
	}
	return nil
}

// ScaleOrDefault returns the spec's measurement scale name, defaulting
// to "quick".
func (s *Spec) ScaleOrDefault() string {
	if s.Scale == "" {
		return "quick"
	}
	return s.Scale
}

// memberShares returns each member's share of the group rate.
func (c *Client) memberShares() []float64 {
	shares := make([]float64, c.Count)
	if c.Skew != SkewZipf {
		for m := range shares {
			shares[m] = 1 / float64(c.Count)
		}
		return shares
	}
	sExp := c.ZipfS
	if sExp == 0 {
		sExp = 1
	}
	total := 0.0
	for m := range shares {
		shares[m] = 1 / math.Pow(float64(m+1), sExp)
		total += shares[m]
	}
	for m := range shares {
		shares[m] /= total
	}
	return shares
}
