package workload

import (
	"math"
	"testing"

	"soemt/internal/isa"
)

func basicProfile() Profile {
	return Profile{
		Name: "basic", Seed: 42,
		FracLoad: 0.25, FracStore: 0.10, FracBranch: 0.15,
		ChainFrac: 0.3, DepWindow: 8,
		HotBytes: 16 << 10, WarmBytes: 128 << 10, ColdBytes: 16 << 20,
		PWarm: 0.05, PCold: 0.002, StrideFrac: 0.3,
		LoopLen: 1024, TakenBias: 0.6, NoiseFrac: 0.05,
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := New(basicProfile())
	g2 := New(basicProfile())
	for i := uint64(0); i < 10000; i++ {
		if g1.At(i) != g2.At(i) {
			t.Fatalf("generators diverged at %d", i)
		}
	}
}

func TestGeneratorPureFunction(t *testing.T) {
	g := New(basicProfile())
	// Reading out of order and repeatedly must not change results.
	u1 := g.At(5000)
	for i := uint64(0); i < 1000; i++ {
		g.At(i)
	}
	if g.At(5000) != u1 {
		t.Fatal("At is not a pure function of seq")
	}
}

func TestInstructionMixConverges(t *testing.T) {
	p := basicProfile()
	g := New(p)
	const n = 200000
	var counts [isa.NumKinds]int
	for i := uint64(0); i < n; i++ {
		counts[g.At(i).Kind]++
	}
	check := func(kind isa.Kind, want float64) {
		got := float64(counts[kind]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%v fraction = %.4f, want %.2f", kind, got, want)
		}
	}
	check(isa.Load, p.FracLoad)
	check(isa.Store, p.FracStore)
	check(isa.Branch, p.FracBranch)
	aluWant := 1 - p.FracLoad - p.FracStore - p.FracBranch
	check(isa.ALU, aluWant)
}

func TestAddressesWithinRegions(t *testing.T) {
	g := New(basicProfile())
	p := g.Profile()
	for i := uint64(0); i < 100000; i++ {
		u := g.At(i)
		if !u.Kind.IsMem() {
			continue
		}
		a := u.Addr
		inHot := a >= g.hotBase && a < g.hotBase+p.HotBytes
		inWarm := a >= g.warmBase && a < g.warmBase+p.WarmBytes
		inCold := a >= g.coldBase && a < g.coldBase+p.ColdBytes
		if !inHot && !inWarm && !inCold {
			t.Fatalf("address %#x outside all regions", a)
		}
	}
}

func TestColdFractionApproximatesPCold(t *testing.T) {
	p := basicProfile()
	p.PCold = 0.01
	g := New(p)
	mem, cold := 0, 0
	for i := uint64(0); i < 500000; i++ {
		u := g.At(i)
		if !u.Kind.IsMem() {
			continue
		}
		mem++
		if u.Addr >= g.coldBase {
			cold++
		}
	}
	got := float64(cold) / float64(mem)
	if math.Abs(got-p.PCold) > 0.002 {
		t.Errorf("cold fraction = %.4f, want %.3f", got, p.PCold)
	}
}

func TestThreadSlotsDisjoint(t *testing.T) {
	g0 := NewOffset(basicProfile(), 0)
	g1 := NewOffset(basicProfile(), 1)
	// Regions must not overlap: compare hot bases and a sample of
	// addresses.
	if g0.hotBase == g1.hotBase {
		t.Fatal("slots share hot base")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 20000; i++ {
		if u := g0.At(i); u.Kind.IsMem() {
			seen[u.Addr] = true
		}
	}
	for i := uint64(0); i < 20000; i++ {
		if u := g1.At(i); u.Kind.IsMem() && seen[u.Addr] {
			t.Fatalf("slots share address %#x", u.Addr)
		}
	}
}

func TestPageTableTagDoesNotCollide(t *testing.T) {
	// Thread slots live below 1<<46 where the page-table tag starts
	// (even for generous slot numbers).
	g := NewOffset(basicProfile(), 32)
	for i := uint64(0); i < 50000; i++ {
		if u := g.At(i); u.Kind.IsMem() && u.Addr >= 1<<46 {
			t.Fatalf("address %#x collides with page-table space", u.Addr)
		}
	}
}

func TestBranchBackedgeAlwaysTaken(t *testing.T) {
	p := basicProfile()
	g := New(p)
	found := false
	for i := uint64(0); i < 100000; i++ {
		u := g.At(i)
		if u.Kind == isa.Branch && i%p.LoopLen == p.LoopLen-1 {
			found = true
			if !u.Taken {
				t.Fatal("backedge not taken")
			}
			if u.Target != g.codeBase {
				t.Fatalf("backedge target %#x, want loop top %#x", u.Target, g.codeBase)
			}
		}
	}
	if !found {
		t.Skip("no branch landed on the backedge slot in this window")
	}
}

func TestBranchOutcomesDeterministic(t *testing.T) {
	g := New(basicProfile())
	for i := uint64(0); i < 50000; i++ {
		u := g.At(i)
		if u.Kind == isa.Branch && g.At(i).Taken != u.Taken {
			t.Fatal("branch outcome not deterministic")
		}
	}
}

func TestBranchBiasNearConfigured(t *testing.T) {
	p := basicProfile()
	p.TakenBias = 0.8
	p.NoiseFrac = 0
	g := New(p)
	taken, total := 0, 0
	for i := uint64(0); i < 400000; i++ {
		u := g.At(i)
		if u.Kind != isa.Branch {
			continue
		}
		total++
		if u.Taken {
			taken++
		}
	}
	got := float64(taken) / float64(total)
	// Site biases are drawn per-site, so the aggregate fluctuates with
	// the number of sites; allow a loose band.
	if got < 0.6 || got > 0.95 {
		t.Errorf("taken fraction = %.3f, want near 0.8", got)
	}
}

func TestPhaseScalingChangesColdRate(t *testing.T) {
	p := basicProfile()
	p.PCold = 0.005
	p.Phases = []Phase{
		{Len: 100000, ColdScale: 1, IlpScale: 1},
		{Len: 100000, ColdScale: 10, IlpScale: 1},
	}
	g := New(p)
	coldIn := func(lo, hi uint64) float64 {
		mem, cold := 0, 0
		for i := lo; i < hi; i++ {
			u := g.At(i)
			if !u.Kind.IsMem() {
				continue
			}
			mem++
			if u.Addr >= g.coldBase {
				cold++
			}
		}
		return float64(cold) / float64(mem)
	}
	base := coldIn(0, 100000)
	hot := coldIn(100000, 200000)
	if hot < base*5 {
		t.Errorf("phase cold scaling ineffective: base=%.4f scaled=%.4f", base, hot)
	}
	// Phase schedule is cyclic.
	again := coldIn(200000, 300000)
	if math.Abs(again-base) > 0.004 {
		t.Errorf("phases not cyclic: first=%.4f repeat=%.4f", base, again)
	}
}

// Regression test for the instruction-mix validation hole: a negative
// fraction cancelling an oversized one kept the sum under 1, so a
// profile whose cdf thresholds exceeded 1 (FracLoad=1.2) passed
// Validate and silently generated a negative implicit ALU remainder.
func TestValidateRejectsBadMixFractions(t *testing.T) {
	p := basicProfile()
	p.FracLoad = 1.2
	p.FracStore = -0.3 // sum = 0.9+0.15 < 1: the old sum-only check passed
	if err := p.Validate(); err == nil {
		t.Fatal("profile with FracLoad=1.2/FracStore=-0.3 passed Validate")
	}
	p = basicProfile()
	p.FracPause = -0.01
	if err := p.Validate(); err == nil {
		t.Fatal("negative FracPause passed Validate")
	}
	p = basicProfile()
	p.FracLoad = math.NaN()
	if err := p.Validate(); err == nil {
		t.Fatal("NaN FracLoad passed Validate")
	}
	// The sum check still rejects an all-positive overfull mix.
	p = basicProfile()
	p.FracLoad, p.FracStore, p.FracBranch = 0.6, 0.4, 0.2
	if err := p.Validate(); err == nil {
		t.Fatal("mix summing to 1.2 passed Validate")
	}
	// Other probability knobs are covered by the same class of check.
	p = basicProfile()
	p.NoiseFrac = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("NoiseFrac=1.5 passed Validate")
	}
	p = basicProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

// Regression test for unvalidated phase scale factors: a negative
// ColdScale, or one pushing the scaled PCold/ChainFrac outside [0, 1],
// used to pass Validate and rely on silent mid-stream clamping.
func TestValidateRejectsBadPhaseScales(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Profile)
	}{
		{"negative ColdScale", func(p *Profile) {
			p.Phases = []Phase{{Len: 1000, ColdScale: -1, IlpScale: 1}}
		}},
		{"negative IlpScale", func(p *Profile) {
			p.Phases = []Phase{{Len: 1000, ColdScale: 1, IlpScale: -0.5}}
		}},
		{"PCold scaled past 1", func(p *Profile) {
			p.PCold = 0.5
			p.Phases = []Phase{{Len: 1000, ColdScale: 10, IlpScale: 1}}
		}},
		{"scaled PCold + PWarm past 1", func(p *Profile) {
			p.PCold = 0.3
			p.PWarm = 0.5
			p.Phases = []Phase{{Len: 1000, ColdScale: 2, IlpScale: 1}}
		}},
		{"ChainFrac scaled past 1", func(p *Profile) {
			p.ChainFrac = 0.6
			p.Phases = []Phase{{Len: 1000, ColdScale: 1, IlpScale: 2}}
		}},
		{"Inf ColdScale", func(p *Profile) {
			p.Phases = []Phase{{Len: 1000, ColdScale: math.Inf(1), IlpScale: 1}}
		}},
	}
	for _, tc := range cases {
		p := basicProfile()
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: passed Validate", tc.name)
		}
	}
	// In-range scales still pass, and generation no longer clamps:
	// phaseAt returns exactly the validated product.
	p := basicProfile()
	p.PCold = 0.05
	p.Phases = []Phase{{Len: 1000, ColdScale: 4, IlpScale: 1.5}}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid phased profile rejected: %v", err)
	}
	g := New(p)
	pc, cf := g.phaseAt(0)
	if math.Abs(pc-0.2) > 1e-12 || math.Abs(cf-p.ChainFrac*1.5) > 1e-12 {
		t.Fatalf("phaseAt = (%v, %v), want exact scaled values", pc, cf)
	}
}

// Every built-in profile must survive the tightened validation.
func TestBuiltinProfilesValidate(t *testing.T) {
	for _, n := range Names() {
		p := MustByName(n)
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s: %v", n, err)
		}
	}
}

func TestSrcRegistersEncodeDependenceDistance(t *testing.T) {
	g := New(basicProfile())
	for i := uint64(100); i < 1000; i++ {
		u := g.At(i)
		if u.Src1 == isa.RegNone {
			continue
		}
		// Src register must name a recent producer: within NumRegs.
		dist := (int(i%isa.NumRegs) - int(u.Src1) + isa.NumRegs) % isa.NumRegs
		if dist == 0 {
			dist = isa.NumRegs
		}
		if dist > isa.NumRegs {
			t.Fatalf("impossible dependence distance %d", dist)
		}
	}
}

func TestEarlyStreamNoUnderflow(t *testing.T) {
	g := New(basicProfile())
	// Sequence numbers near zero must not panic or wrap.
	for i := uint64(0); i < 64; i++ {
		u := g.At(i)
		if u.Seq != i {
			t.Fatalf("seq mismatch at %d", i)
		}
	}
}

func TestStreamSeekAndNext(t *testing.T) {
	g := New(basicProfile())
	s := NewStream(g, 0)
	var first []isa.Uop
	for i := 0; i < 100; i++ {
		first = append(first, s.Next())
	}
	if s.Pos() != 100 {
		t.Fatalf("pos = %d", s.Pos())
	}
	s.Seek(50)
	for i := 0; i < 50; i++ {
		u := s.Next()
		if u != first[50+i] {
			t.Fatalf("replay mismatch at %d", 50+i)
		}
	}
	if s.Generator() != g {
		t.Fatal("Generator accessor wrong")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.FracLoad = 0.9; p.FracStore = 0.9 },
		func(p *Profile) { p.PWarm = 0.9; p.PCold = 0.9 },
		func(p *Profile) { p.DepWindow = 0 },
		func(p *Profile) { p.LoopLen = 1 },
		func(p *Profile) { p.HotBytes = 0 },
		func(p *Profile) { p.Phases = []Phase{{Len: 0}} },
	}
	for i, mutate := range bad {
		p := basicProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	p := basicProfile()
	if err := p.Validate(); err != nil {
		t.Errorf("good profile rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := basicProfile()
	p.DepWindow = 0
	New(p)
}

func TestBuiltinProfilesValid(t *testing.T) {
	names := Names()
	if len(names) < 12 {
		t.Fatalf("expected >=12 built-in profiles, got %d", len(names))
	}
	for _, n := range names {
		p, ok := ByName(n)
		if !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
		if p.Name != n {
			t.Errorf("profile %q has Name %q", n, p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", n, err)
		}
		// Each profile must construct a usable generator.
		g := New(p)
		for i := uint64(0); i < 1000; i++ {
			g.At(i)
		}
	}
}

func TestMustByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustByName("no-such-benchmark")
}

func TestBuiltinSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, n := range Names() {
		p := MustByName(n)
		if prev, dup := seen[p.Seed]; dup {
			t.Errorf("profiles %q and %q share seed", prev, n)
		}
		seen[p.Seed] = n
	}
}

func TestStridedColdAccessesShareLines(t *testing.T) {
	p := basicProfile()
	p.PCold = 1 // all accesses cold
	p.PWarm = 0
	p.StrideFrac = 1 // all strided
	g := New(p)
	lines := map[uint64]int{}
	memRefs := 0
	for i := uint64(0); i < 10000; i++ {
		u := g.At(i)
		if u.Kind.IsMem() {
			memRefs++
			lines[u.Addr/64]++
		}
	}
	if len(lines) >= memRefs {
		t.Fatal("strided accesses never share a line")
	}
}

func TestColdWindowSlidesAcrossEpochs(t *testing.T) {
	p := basicProfile()
	p.PCold = 1 // every access cold
	p.PWarm = 0
	p.StrideFrac = 0
	p.ColdBytes = 256 << 20
	g := New(p)
	// Collect the cold-address footprint of two consecutive epochs.
	footprint := func(lo, hi uint64) (min, max uint64) {
		min, max = ^uint64(0), 0
		for i := lo; i < hi; i++ {
			u := g.At(i)
			if !u.Kind.IsMem() {
				continue
			}
			if u.Addr < min {
				min = u.Addr
			}
			if u.Addr > max {
				max = u.Addr
			}
		}
		return min, max
	}
	min1, max1 := footprint(0, 50_000)
	min2, max2 := footprint(coldEpochLen, coldEpochLen+50_000)
	// Each epoch's instantaneous footprint is bounded by the window
	// (the window may wrap the region boundary, which widens the raw
	// span; accept either a bounded span or a wrap).
	span1 := max1 - min1
	if span1 > coldWindow && span1 < p.ColdBytes/2 {
		t.Errorf("epoch-1 footprint %d exceeds window %d without wrapping", span1, coldWindow)
	}
	// Windows move between epochs.
	if min1 == min2 && max1 == max2 {
		t.Error("cold window did not slide between epochs")
	}
}

func TestColdWindowPageFootprintBounded(t *testing.T) {
	p := basicProfile()
	p.PCold = 1
	p.PWarm = 0
	p.StrideFrac = 0
	p.ColdBytes = 256 << 20
	g := New(p)
	pages := map[uint64]bool{}
	for i := uint64(0); i < 100_000; i++ { // within one epoch
		u := g.At(i)
		if u.Kind.IsMem() {
			pages[u.Addr>>12] = true
		}
	}
	// One 8 MiB window = 2048 pages (+1 for wrap edges).
	if len(pages) > 2100 {
		t.Errorf("instantaneous page footprint %d pages; real programs do not thrash page tables like this", len(pages))
	}
}

func TestPauseMixGeneratesPause(t *testing.T) {
	p := basicProfile()
	p.FracPause = 0.05
	g := New(p)
	count := 0
	for i := uint64(0); i < 100_000; i++ {
		u := g.At(i)
		if u.Kind == isa.Pause {
			count++
			if u.Dst != isa.RegNone || u.Src1 != isa.RegNone {
				t.Fatal("PAUSE must have no operands")
			}
		}
	}
	frac := float64(count) / 100_000
	if math.Abs(frac-0.05) > 0.01 {
		t.Errorf("pause fraction = %.4f, want 0.05", frac)
	}
}
