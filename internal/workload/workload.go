// Package workload generates the synthetic programs that drive the
// simulator.
//
// The paper evaluates on SPEC CPU2000 LITs (checkpointed traces of
// real applications), which are proprietary and not distributable.
// Following DESIGN.md §2, this package substitutes parameterised
// synthetic workloads: each Profile describes a program's instruction
// mix, instruction-level parallelism, memory-reference locality and
// branch behaviour, and the generator expands it into a deterministic
// micro-op stream. Profiles named after SPEC benchmarks (gcc, eon,
// swim, ...) are calibrated so that the *characteristics that matter
// to the paper* — instructions-per-miss (IPM), cycles-per-miss (CPM)
// and no-miss IPC — span the same range as the paper's benchmark
// pairs.
//
// Generation is a pure function of (profile, sequence number): the
// micro-op at position i can be regenerated at any time in O(1). The
// pipeline relies on this to rewind the front end after a thread
// switch squashes in-flight instructions.
package workload

import (
	"fmt"
	"math"
	"sort"

	"soemt/internal/isa"
	"soemt/internal/rng"
)

// Phase modifies generation parameters over a window of the
// instruction stream, modelling program phase behaviour (the paper's
// Figure 5 discussion). Phases repeat cyclically.
type Phase struct {
	Len       uint64  // phase length in instructions
	ColdScale float64 // multiplier on PCold (1 = unchanged)
	IlpScale  float64 // multiplier on ChainFrac (1 = unchanged)
}

// Profile parameterises a synthetic program.
type Profile struct {
	Name string
	Seed uint64

	// Instruction mix: fractions of the stream (the remainder is
	// single-cycle integer ALU work).
	FracLoad   float64
	FracStore  float64
	FracBranch float64
	FracMul    float64
	FracDiv    float64
	FracFAdd   float64
	FracFMul   float64
	FracFDiv   float64
	FracPause  float64 // x86 PAUSE-style switch hints (§6 extension)

	// Instruction-level parallelism. ChainFrac is the probability that
	// an op's first source is the immediately preceding op (a serial
	// dependence chain); other sources are drawn uniformly from the
	// previous DepWindow ops.
	ChainFrac float64
	DepWindow int

	// Memory locality: accesses go to a hot region (L1-resident), a
	// warm region (L2-resident) or a cold region (larger than L2, so
	// references miss). PHot = 1 - PWarm - PCold.
	HotBytes  uint64
	WarmBytes uint64
	ColdBytes uint64
	PWarm     float64
	PCold     float64
	// StrideFrac of cold accesses walk sequentially (consecutive
	// references share lines and coalesce in the MSHRs — the paper's
	// overlapped-miss case); the rest are scattered.
	StrideFrac float64

	// Branch behaviour. The code is a loop of LoopLen instructions;
	// branch sites are fixed PCs inside it. NoiseFrac of each site's
	// outcomes are random (unpredictable); the rest follow the site's
	// bias/pattern.
	LoopLen   uint64
	TakenBias float64
	NoiseFrac float64

	// Optional phase schedule (cyclic).
	Phases []Phase
}

// finiteUnit reports whether v is a finite value in [0, 1].
func finiteUnit(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 && v <= 1
}

// Validate reports configuration errors in the profile.
func (p *Profile) Validate() error {
	// Every instruction-mix fraction must individually be a valid
	// probability. Checking only the sum is not enough: a negative
	// fraction can cancel an oversized one (e.g. FracLoad=1.2,
	// FracStore=-0.3 sums to 0.9) and the generator's cumulative cdf
	// thresholds would silently exceed 1 while the implicit ALU
	// remainder goes negative.
	fracs := []struct {
		name string
		v    float64
	}{
		{"FracLoad", p.FracLoad}, {"FracStore", p.FracStore},
		{"FracBranch", p.FracBranch}, {"FracMul", p.FracMul},
		{"FracDiv", p.FracDiv}, {"FracFAdd", p.FracFAdd},
		{"FracFMul", p.FracFMul}, {"FracFDiv", p.FracFDiv},
		{"FracPause", p.FracPause},
	}
	sum := 0.0
	for _, f := range fracs {
		if !finiteUnit(f.v) {
			return fmt.Errorf("workload %q: instruction-mix fraction %s = %v must be in [0, 1]",
				p.Name, f.name, f.v)
		}
		sum += f.v
	}
	if sum > 1+1e-12 {
		return fmt.Errorf("workload %q: instruction mix sums to %.3f > 1 (the implicit ALU remainder would be negative)",
			p.Name, sum)
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"PWarm", p.PWarm}, {"PCold", p.PCold},
		{"ChainFrac", p.ChainFrac}, {"StrideFrac", p.StrideFrac},
		{"TakenBias", p.TakenBias}, {"NoiseFrac", p.NoiseFrac},
	}
	for _, f := range probs {
		if !finiteUnit(f.v) {
			return fmt.Errorf("workload %q: %s = %v must be in [0, 1]", p.Name, f.name, f.v)
		}
	}
	if p.PWarm+p.PCold > 1 {
		return fmt.Errorf("workload %q: PWarm+PCold = %.3f > 1", p.Name, p.PWarm+p.PCold)
	}
	if p.DepWindow < 1 {
		return fmt.Errorf("workload %q: DepWindow must be >= 1", p.Name)
	}
	if p.LoopLen < 4 {
		return fmt.Errorf("workload %q: LoopLen must be >= 4", p.Name)
	}
	if p.HotBytes == 0 || p.WarmBytes == 0 || p.ColdBytes == 0 {
		return fmt.Errorf("workload %q: memory regions must be non-empty", p.Name)
	}
	// Phase scale factors are applied mid-stream by phaseAt; the scaled
	// probabilities must stay in range for every phase, checked here
	// (phases are static) rather than clamped silently at generation
	// time.
	for i, ph := range p.Phases {
		if ph.Len == 0 {
			return fmt.Errorf("workload %q: phase %d has zero length", p.Name, i)
		}
		if math.IsNaN(ph.ColdScale) || math.IsInf(ph.ColdScale, 0) || ph.ColdScale < 0 {
			return fmt.Errorf("workload %q: phase %d ColdScale = %v must be finite and >= 0",
				p.Name, i, ph.ColdScale)
		}
		if math.IsNaN(ph.IlpScale) || math.IsInf(ph.IlpScale, 0) || ph.IlpScale < 0 {
			return fmt.Errorf("workload %q: phase %d IlpScale = %v must be finite and >= 0",
				p.Name, i, ph.IlpScale)
		}
		if pc := p.PCold * ph.ColdScale; pc > 1 {
			return fmt.Errorf("workload %q: phase %d scales PCold to %.3f > 1 (PCold=%v × ColdScale=%v)",
				p.Name, i, pc, p.PCold, ph.ColdScale)
		} else if pc+p.PWarm > 1 {
			return fmt.Errorf("workload %q: phase %d scaled PCold %.3f + PWarm %.3f > 1",
				p.Name, i, pc, p.PWarm)
		}
		if cf := p.ChainFrac * ph.IlpScale; cf > 1 {
			return fmt.Errorf("workload %q: phase %d scales ChainFrac to %.3f > 1 (ChainFrac=%v × IlpScale=%v)",
				p.Name, i, cf, p.ChainFrac, ph.IlpScale)
		}
	}
	return nil
}

// Generator expands a Profile into micro-ops. Safe for concurrent use
// (it is immutable after construction).
type Generator struct {
	prof Profile

	// Derived sub-seeds, one independent counter-mode stream per
	// decision dimension.
	kindSeed   uint64
	chainSeed  uint64
	depSeed    uint64
	regionSeed uint64
	addrSeed   uint64
	strideSeed uint64
	noiseSeed  uint64
	dirSeed    uint64
	siteSeed   uint64 // Sub(dirSeed, "site"), hoisted out of branchTaken

	// Cumulative mix thresholds, ordered as kindOrder.
	cdf [9]float64

	phaseTotal uint64 // sum of phase lengths (0 = no phases)

	// Address-space bases; threads get distinct bases via NewOffset.
	hotBase  uint64
	warmBase uint64
	coldBase uint64
	codeBase uint64
}

var kindOrder = [9]isa.Kind{
	isa.Load, isa.Store, isa.Branch, isa.Mul, isa.Div, isa.FAdd, isa.FMul, isa.FDiv, isa.Pause,
}

// New builds a Generator for prof with address space offset 0.
// It panics if the profile is invalid (configuration error).
func New(prof Profile) *Generator { return NewOffset(prof, 0) }

// NewOffset builds a Generator whose data and code regions are placed
// in a distinct address-space slot, so that multiple threads running
// the same profile do not share data (the paper's same-benchmark pairs
// are separate processes).
func NewOffset(prof Profile, slot int) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof:       prof,
		kindSeed:   rng.Sub(prof.Seed, "kind"),
		chainSeed:  rng.Sub(prof.Seed, "chain"),
		depSeed:    rng.Sub(prof.Seed, "dep"),
		regionSeed: rng.Sub(prof.Seed, "region"),
		addrSeed:   rng.Sub(prof.Seed, "addr"),
		strideSeed: rng.Sub(prof.Seed, "stride"),
		noiseSeed:  rng.Sub(prof.Seed, "noise"),
		dirSeed:    rng.Sub(prof.Seed, "dir"),
		siteSeed:   rng.Sub(rng.Sub(prof.Seed, "dir"), "site"),
	}
	fr := [9]float64{
		prof.FracLoad, prof.FracStore, prof.FracBranch, prof.FracMul,
		prof.FracDiv, prof.FracFAdd, prof.FracFMul, prof.FracFDiv,
		prof.FracPause,
	}
	acc := 0.0
	for i, f := range fr {
		acc += f
		g.cdf[i] = acc
	}
	for _, ph := range prof.Phases {
		g.phaseTotal += ph.Len
	}
	// 1 TiB per thread slot keeps regions disjoint without overlapping
	// the page-table tag bit (1<<46). Per-slot skews shift each
	// thread's code and data to different cache-set / predictor-index
	// alignments: the slot bit itself (1<<40) is masked out of every
	// set/table index, and without the skew co-scheduled threads would
	// alias onto exactly the same predictor entries and cache sets —
	// something unaligned real programs do not do.
	base := uint64(slot) << 40
	skew := uint64(slot) * 0x9E40 // 64-byte aligned, odd line count
	g.codeBase = base + 0x0000_1000 + uint64(slot)*0x5E6F4
	g.hotBase = base + 0x0100_0000 + skew
	g.warmBase = base + 0x1000_0000 + 3*skew
	g.coldBase = base + 0x40_0000_0000 + 7*skew
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// Regions describes the generator's address-space layout, used by the
// simulator's functional cache warmup to bring the resident working
// set (hot + warm + code and their page-table entries) to steady state
// without executing tens of millions of instructions.
type Regions struct {
	HotBase, HotBytes   uint64
	WarmBase, WarmBytes uint64
	ColdBase, ColdBytes uint64
	CodeBase, CodeBytes uint64
}

// Regions returns the generator's address-space layout.
func (g *Generator) Regions() Regions {
	return Regions{
		HotBase: g.hotBase, HotBytes: g.prof.HotBytes,
		WarmBase: g.warmBase, WarmBytes: g.prof.WarmBytes,
		ColdBase: g.coldBase, ColdBytes: g.prof.ColdBytes,
		CodeBase: g.codeBase, CodeBytes: g.prof.LoopLen * 4,
	}
}

// phaseAt returns the effective PCold and ChainFrac at seq.
func (g *Generator) phaseAt(seq uint64) (pCold, chainFrac float64) {
	pCold, chainFrac = g.prof.PCold, g.prof.ChainFrac
	if g.phaseTotal == 0 {
		return pCold, chainFrac
	}
	pos := seq % g.phaseTotal
	for _, ph := range g.prof.Phases {
		if pos < ph.Len {
			// Validate guarantees the scaled values stay in [0, 1], so no
			// clamping happens here: an out-of-range phase is a
			// configuration error, not something to hide mid-stream.
			return pCold * ph.ColdScale, chainFrac * ph.IlpScale
		}
		pos -= ph.Len
	}
	return pCold, chainFrac
}

// kindAt picks the micro-op kind for seq.
func (g *Generator) kindAt(seq uint64) isa.Kind {
	u := rng.Float64At(g.kindSeed, seq)
	for i, th := range g.cdf {
		if u < th {
			return kindOrder[i]
		}
	}
	return isa.ALU
}

// destReg assigns destination registers in a rotating pattern so that
// "the op at distance d back" is addressable as a logical register for
// any d < NumRegs.
func destReg(seq uint64) isa.Reg { return isa.Reg(seq % isa.NumRegs) }

// srcFor picks a source register representing a dependence on an op
// roughly `dist` back in the stream.
func srcFor(seq uint64, dist int) isa.Reg {
	if uint64(dist) > seq {
		dist = int(seq)
	}
	if dist == 0 {
		return isa.RegNone
	}
	return destReg(seq - uint64(dist))
}

// coldEpochLen is the instruction count after which the scattered
// cold-access window slides; coldWindow bounds the window size. Real
// memory-bound programs touch large footprints with page-level
// temporal locality; drawing scattered addresses uniformly over the
// whole cold region would instead thrash the TLB page tables
// themselves (tens of thousands of live pages), which no real program
// does.
const (
	coldEpochLen = 200_000
	coldWindow   = 8 << 20
)

// addrFor computes the data address for a load/store at seq.
func (g *Generator) addrFor(seq uint64, pCold float64) uint64 {
	u := rng.Float64At(g.regionSeed, seq)
	switch {
	case u < pCold:
		if rng.Float64At(g.strideSeed, seq) < g.prof.StrideFrac {
			// Sequential walk through the cold region: 8 bytes per
			// access so 8 consecutive cold refs share a 64B line.
			return g.coldBase + (seq*8)%g.prof.ColdBytes
		}
		// Scattered within a sliding window of the cold region: the
		// long-run footprint spans the whole region, the instantaneous
		// page working set stays bounded.
		window := g.prof.ColdBytes
		if window > coldWindow {
			window = coldWindow
		}
		epoch := seq / coldEpochLen
		windowBase := (rng.Uint64At(g.addrSeed, ^epoch) % (g.prof.ColdBytes / 64)) * 64
		off := (rng.Uint64At(g.addrSeed, seq) % (window / 64)) * 64
		return g.coldBase + (windowBase+off)%g.prof.ColdBytes
	case u < pCold+g.prof.PWarm:
		off := rng.Uint64At(g.addrSeed, seq) % (g.prof.WarmBytes / 8)
		return g.warmBase + off*8
	default:
		off := rng.Uint64At(g.addrSeed, seq) % (g.prof.HotBytes / 8)
		return g.hotBase + off*8
	}
}

// pcFor returns the synthetic PC: the code is a loop of LoopLen
// 4-byte slots.
func (g *Generator) pcFor(seq uint64) uint64 {
	return g.codeBase + (seq%g.prof.LoopLen)*4
}

// branchTaken decides the architectural outcome of the branch at seq.
// Each site (loop slot) has a fixed bias direction; NoiseFrac of
// outcomes are random. The loop backedge (last slot) is always taken.
func (g *Generator) branchTaken(seq uint64) bool {
	slot := seq % g.prof.LoopLen
	if slot == g.prof.LoopLen-1 {
		return true
	}
	if rng.Float64At(g.noiseSeed, seq) < g.prof.NoiseFrac {
		return rng.Uint64At(g.dirSeed, seq)&1 == 0
	}
	// Per-site deterministic bias direction.
	return rng.Float64At(g.siteSeed, slot) < g.prof.TakenBias
}

// At returns the micro-op at position seq. It is a pure function.
func (g *Generator) At(seq uint64) isa.Uop {
	pCold, chainFrac := g.phaseAt(seq)
	kind := g.kindAt(seq)
	u := isa.Uop{Seq: seq, PC: g.pcFor(seq), Kind: kind}

	// The dependence-distance draws are positional (pure functions of
	// seq), so evaluating them lazily per kind changes no generated
	// value — it only skips hashes whose results the kind discards.
	switch kind {
	case isa.Load:
		u.Dst = destReg(seq)
		u.Src1 = srcFor(seq, g.dist1At(seq, chainFrac)) // address base register
		u.Src2 = isa.RegNone
		u.Addr = g.addrFor(seq, pCold)
		u.Size = 8
	case isa.Store:
		u.Dst = isa.RegNone
		u.Src1 = srcFor(seq, g.dist1At(seq, chainFrac)) // data
		u.Src2 = srcFor(seq, g.dist2At(seq))            // address
		u.Addr = g.addrFor(seq, pCold)
		u.Size = 8
	case isa.Pause:
		u.Dst = isa.RegNone
		u.Src1 = isa.RegNone
		u.Src2 = isa.RegNone
	case isa.Branch:
		u.Dst = isa.RegNone
		u.Src1 = srcFor(seq, g.dist1At(seq, chainFrac)) // condition
		u.Src2 = isa.RegNone
		u.Taken = g.branchTaken(seq)
		if u.Taken {
			// Taken branches jump within the loop; the backedge
			// returns to the top.
			u.Target = g.codeBase + ((seq+1)%g.prof.LoopLen)*4
		} else {
			u.Target = u.PC + 4
		}
	default:
		u.Dst = destReg(seq)
		u.Src1 = srcFor(seq, g.dist1At(seq, chainFrac))
		u.Src2 = srcFor(seq, g.dist2At(seq))
	}
	return u
}

// dist1At draws the first-source dependence distance at seq.
func (g *Generator) dist1At(seq uint64, chainFrac float64) int {
	if rng.Float64At(g.chainSeed, seq) < chainFrac {
		return 1
	}
	return 1 + rng.IntnAt(g.depSeed, seq, g.prof.DepWindow)
}

// dist2At draws the second-source dependence distance at seq.
func (g *Generator) dist2At(seq uint64) int {
	return 1 + rng.IntnAt(g.depSeed, ^seq, g.prof.DepWindow)
}

// Stream is a positioned cursor over a Generator, used by the pipeline
// front end. Seek supports post-squash rewind.
//
// Peek memoizes the micro-op at the cursor so a Peek-then-Next pair
// generates it once: the pipeline fetch stage peeks the group head for
// the icache/iTLB access, then consumes the group, and generation is a
// non-trivial fraction of busy-path time.
type Stream struct {
	gen  *Generator
	next uint64

	memo    isa.Uop
	memoSeq uint64
	hasMemo bool
}

// NewStream returns a Stream over g starting at position start.
func NewStream(g *Generator, start uint64) *Stream {
	return &Stream{gen: g, next: start}
}

// Next returns the next micro-op and advances the cursor.
func (s *Stream) Next() isa.Uop {
	if s.hasMemo && s.memoSeq == s.next {
		s.next++
		s.hasMemo = false
		return s.memo
	}
	u := s.gen.At(s.next)
	s.next++
	return u
}

// Peek returns the micro-op the next call to Next will produce,
// without advancing the cursor.
func (s *Stream) Peek() isa.Uop {
	if !s.hasMemo || s.memoSeq != s.next {
		s.memo = s.gen.At(s.next)
		s.memoSeq = s.next
		s.hasMemo = true
	}
	return s.memo
}

// Pos returns the sequence number the next call to Next will produce.
func (s *Stream) Pos() uint64 { return s.next }

// Seek repositions the cursor.
func (s *Stream) Seek(seq uint64) { s.next = seq }

// Generator returns the underlying generator.
func (s *Stream) Generator() *Generator { return s.gen }

// Names returns the sorted list of built-in profile names.
func Names() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the built-in profile with the given name.
func ByName(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// MustByName returns the built-in profile or panics — for use in
// experiment tables where a missing name is a programming error.
func MustByName(name string) Profile {
	p, ok := profiles[name]
	if !ok {
		panic(fmt.Sprintf("workload: unknown profile %q", name))
	}
	return p
}
