package model

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// CalibrationSchemaVersion versions the persisted calibration table.
// Bump on any incompatible change to Calibration's JSON shape.
const CalibrationSchemaVersion = 1

// Calibration sources.
const (
	// SourceSimulation marks a table fitted against cycle-accurate
	// runs: ThreadParams inverted from single-thread references and
	// residual error bars measured by replaying golden pairs.
	SourceSimulation = "simulation"
	// SourceProfile marks a table derived from workload-profile
	// parameters alone (no simulation), with correspondingly wide
	// error bars.
	SourceProfile = "profile"
)

// Calibration is a persisted fit of the analytical model against a
// concrete machine: per-thread parameters, the effective latencies,
// and honest error bars measured (or assumed) for its predictions.
// It is the fast tier's entire serving state — a server answering
// from a Calibration never touches the cycle-accurate engine.
type Calibration struct {
	SchemaVersion int    `json:"schema_version"`
	Source        string `json:"source"` // SourceSimulation | SourceProfile
	Scale         string `json:"scale,omitempty"`

	MissLat   float64                 `json:"miss_lat"`
	SwitchLat float64                 `json:"switch_lat"`
	Threads   map[string]ThreadParams `json:"threads"`

	// Pairs records the model-vs-simulation residuals observed while
	// calibrating (empty for profile-derived tables).
	Pairs []PairResidual `json:"pairs,omitempty"`

	// ErrIPCPc is the half-width of the aggregate-IPC error bar as a
	// percentage: the worst relative residual seen during calibration
	// (floored), or an assumed width for profile-derived tables.
	ErrIPCPc float64 `json:"err_ipc_pc"`
	// ErrFairness is the half-width of the fairness error bar,
	// absolute on the [0, 1] fairness scale.
	ErrFairness float64 `json:"err_fairness"`
}

// PairResidual is one replayed (pair, F) point of the calibration:
// what the fitted model predicted next to what the engine measured.
type PairResidual struct {
	Pair          string  `json:"pair"`
	F             float64 `json:"f"`
	ModelIPC      float64 `json:"model_ipc"`
	SimIPC        float64 `json:"sim_ipc"`
	ModelFairness float64 `json:"model_fairness"`
	SimFairness   float64 `json:"sim_fairness"`
}

// IPCErrPc returns the relative aggregate-IPC residual in percent.
func (p PairResidual) IPCErrPc() float64 {
	if p.SimIPC <= 0 {
		return 0
	}
	return math.Abs(p.ModelIPC-p.SimIPC) / p.SimIPC * 100
}

// FairnessErr returns the absolute fairness residual.
func (p PairResidual) FairnessErr() float64 {
	return math.Abs(p.ModelFairness - p.SimFairness)
}

// Validate checks the table is usable for serving predictions.
func (c *Calibration) Validate() error {
	if c == nil {
		return fmt.Errorf("model: nil calibration")
	}
	if c.SchemaVersion != CalibrationSchemaVersion {
		return fmt.Errorf("model: calibration schema %d, want %d", c.SchemaVersion, CalibrationSchemaVersion)
	}
	if c.Source != SourceSimulation && c.Source != SourceProfile {
		return fmt.Errorf("model: unknown calibration source %q", c.Source)
	}
	if !finite(c.MissLat) || c.MissLat < 0 || !finite(c.SwitchLat) || c.SwitchLat < 0 {
		return fmt.Errorf("model: calibration latencies must be finite and non-negative")
	}
	if len(c.Threads) == 0 {
		return fmt.Errorf("model: calibration has no threads")
	}
	for name, t := range c.Threads {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("model: calibration thread %q: %w", name, err)
		}
	}
	if !finite(c.ErrIPCPc) || c.ErrIPCPc < 0 || !finite(c.ErrFairness) || c.ErrFairness < 0 {
		return fmt.Errorf("model: calibration error bars must be finite and non-negative")
	}
	return nil
}

// System assembles an analytical System for the named threads, in
// order. Unknown names are an error — the fast tier must refuse to
// answer rather than guess.
func (c *Calibration) System(names ...string) (*System, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("model: no thread names")
	}
	sys := &System{MissLat: c.MissLat, SwitchLat: c.SwitchLat}
	for _, n := range names {
		t, ok := c.Threads[n]
		if !ok {
			return nil, fmt.Errorf("model: calibration has no thread %q", n)
		}
		sys.Threads = append(sys.Threads, t)
	}
	return sys, nil
}

// ThreadNames returns the calibrated thread names, sorted.
func (c *Calibration) ThreadNames() []string {
	names := make([]string, 0, len(c.Threads))
	for n := range c.Threads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Save writes the table as indented JSON.
func (c *Calibration) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadCalibration reads and validates a table written by Save.
func LoadCalibration(path string) (*Calibration, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Calibration
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("model: parsing calibration %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("model: %s: %w", path, err)
	}
	return &c, nil
}

// FitThread inverts Eq. 1 to recover ThreadParams from the counters of
// a recorded single-thread run (a workload profile simulated alone, or
// a replayed internal/trace container): instrs retired, wall cycles
// including miss stalls, and switch-causing misses, under an assumed
// per-miss stall of missLat cycles.
//
//	IPM        = instrs / max(misses, 1)
//	IPC_ST     = instrs / cycles
//	CPM        = IPM/IPC_ST − Miss_lat   (Eq. 1 solved for CPM)
//	IPC_nomiss = IPM / CPM
//
// A run whose observed per-miss stall is shorter than missLat (memory
// parallelism, overlap) would invert to CPM ≤ 0; that is a fitting
// error, not a NaN.
func FitThread(name string, instrs, cycles, misses uint64, missLat float64) (ThreadParams, error) {
	if instrs == 0 || cycles == 0 {
		return ThreadParams{}, fmt.Errorf("model: fit %s: empty run (instrs=%d cycles=%d)", name, instrs, cycles)
	}
	if !finite(missLat) || missLat < 0 {
		return ThreadParams{}, fmt.Errorf("model: fit %s: missLat %v must be finite and non-negative", name, missLat)
	}
	m := misses
	if m == 0 {
		m = 1
	}
	ipm := float64(instrs) / float64(m)
	ipcST := float64(instrs) / float64(cycles)
	cpm := ipm/ipcST - missLat
	if cpm <= 0 {
		return ThreadParams{}, fmt.Errorf(
			"model: fit %s: assumed Miss_lat %v exceeds the observed %.1f cycles/miss; cannot invert Eq. 1",
			name, missLat, ipm/ipcST)
	}
	t := ThreadParams{Name: name, IPCNoMiss: ipm / cpm, IPM: ipm}
	if err := t.Validate(); err != nil {
		return ThreadParams{}, err
	}
	return t, nil
}
