package model

// Example2System returns the paper's Example 2 configuration (§2.4,
// Table 2): two threads with IPC_no_miss = 2.5, Miss_lat = 300,
// Switch_lat = 25; thread 1 misses every 15,000 instructions (6,000
// cycles), thread 2 every 1,000 instructions (400 cycles).
func Example2System() *System {
	return &System{
		Threads: []ThreadParams{
			{Name: "thread1", IPCNoMiss: 2.5, IPM: 15000},
			{Name: "thread2", IPCNoMiss: 2.5, IPM: 1000},
		},
		MissLat:   300,
		SwitchLat: 25,
	}
}

// Table2Row is one column group of the paper's Table 2: the two
// threads' behaviour at one enforcement level.
type Table2Row struct {
	F        float64
	IPSw     [2]float64
	IPCSOE   [2]float64
	Slowdown [2]float64
	Fairness float64
	Total    float64
}

// Table2 evaluates Example 2 at the paper's three enforcement levels
// (F = 0, 1/2, 1), reproducing Table 2.
func Table2() ([]Table2Row, error) {
	sys := Example2System()
	var rows []Table2Row
	for _, f := range []float64{0, 0.5, 1} {
		p, err := sys.Predict(f)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			F:        f,
			IPSw:     [2]float64{p.IPSw[0], p.IPSw[1]},
			IPCSOE:   [2]float64{p.IPCSOE[0], p.IPCSOE[1]},
			Slowdown: [2]float64{p.Slowdown[0], p.Slowdown[1]},
			Fairness: p.Fairness,
			Total:    p.Total,
		})
	}
	return rows, nil
}

// Fig3Case is one curve of the paper's Figure 3: a two-thread
// combination whose throughput delta is swept over F.
type Fig3Case struct {
	Label   string
	System  *System
	F       []float64 // swept enforcement levels
	DeltaPc []float64 // throughput change vs F=0, in percent
}

// Figure3 sweeps the analytical throughput effect of fairness
// enforcement for the paper's thread-pair combinations: equal and
// unequal IPC_no_miss ([2.5,2.5] and [2,3]) crossed with IPM
// combinations. Points is the number of F values per curve (>= 2).
func Figure3(points int) ([]Fig3Case, error) {
	if points < 2 {
		points = 21
	}
	type combo struct {
		label string
		ipc   [2]float64
		ipm   [2]float64
	}
	combos := []combo{
		{"IPCnm=[2.5,2.5] IPM=[15000,1000]", [2]float64{2.5, 2.5}, [2]float64{15000, 1000}},
		{"IPCnm=[2.5,2.5] IPM=[5000,1000]", [2]float64{2.5, 2.5}, [2]float64{5000, 1000}},
		{"IPCnm=[2,3] IPM=[15000,1000]", [2]float64{2, 3}, [2]float64{15000, 1000}},
		{"IPCnm=[3,2] IPM=[15000,1000]", [2]float64{3, 2}, [2]float64{15000, 1000}},
		{"IPCnm=[2,3] IPM=[1000,15000]", [2]float64{2, 3}, [2]float64{1000, 15000}},
		{"IPCnm=[2.5,2.5] IPM=[50000,500]", [2]float64{2.5, 2.5}, [2]float64{50000, 500}},
	}
	var cases []Fig3Case
	for _, cb := range combos {
		sys := &System{
			Threads: []ThreadParams{
				{Name: "t1", IPCNoMiss: cb.ipc[0], IPM: cb.ipm[0]},
				{Name: "t2", IPCNoMiss: cb.ipc[1], IPM: cb.ipm[1]},
			},
			MissLat:   300,
			SwitchLat: 25,
		}
		fc := Fig3Case{Label: cb.label, System: sys}
		for i := 0; i < points; i++ {
			f := float64(i) / float64(points-1)
			delta, err := sys.ThroughputDelta(f)
			if err != nil {
				return nil, err
			}
			fc.F = append(fc.F, f)
			fc.DeltaPc = append(fc.DeltaPc, delta*100)
		}
		cases = append(cases, fc)
	}
	return cases, nil
}
