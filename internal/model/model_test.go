package model

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// The paper's Example 2 numbers, quoted in §2.4 and Table 2 and the
// abstract: at F=0 slowdowns are 1.02 and 9.2, fairness 0.11; at F=1
// thread 1 switches every ~1667 instructions and both slowdowns are
// ~1.59 (speedups 0.63), fairness 1.0.
func TestExample2MatchesPaperF0(t *testing.T) {
	sys := Example2System()
	p, err := sys.Predict(0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.IPCST[0], 15000.0/6300, 1e-9) {
		t.Errorf("IPC_ST1 = %v", p.IPCST[0])
	}
	if !almost(p.IPCST[1], 1000.0/700, 1e-9) {
		t.Errorf("IPC_ST2 = %v", p.IPCST[1])
	}
	if !almost(p.Slowdown[0], 1.02, 0.01) {
		t.Errorf("slowdown1 = %.3f, paper says 1.02", p.Slowdown[0])
	}
	if !almost(p.Slowdown[1], 9.2, 0.1) {
		t.Errorf("slowdown2 = %.3f, paper says 9.2", p.Slowdown[1])
	}
	if !almost(p.Fairness, 0.11, 0.005) {
		t.Errorf("fairness = %.3f, paper says 0.11", p.Fairness)
	}
}

func TestExample2MatchesPaperF1(t *testing.T) {
	sys := Example2System()
	p, err := sys.Predict(1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p.IPSw[0], 1667, 1) {
		t.Errorf("IPSw1 = %.1f, paper says 1667", p.IPSw[0])
	}
	if !almost(p.IPSw[1], 1000, 1e-6) {
		t.Errorf("IPSw2 = %.1f, want 1000 (IPM-bound)", p.IPSw[1])
	}
	if !almost(p.Slowdown[0], 1.59, 0.01) || !almost(p.Slowdown[1], 1.59, 0.01) {
		t.Errorf("slowdowns = %.3f, %.3f; paper says 1.59 both", p.Slowdown[0], p.Slowdown[1])
	}
	if !almost(p.Speedup[0], 0.63, 0.01) {
		t.Errorf("speedup = %.3f, paper says 0.63", p.Speedup[0])
	}
	if !almost(p.Fairness, 1.0, 1e-6) {
		t.Errorf("fairness = %.4f, want 1.0", p.Fairness)
	}
}

func TestExample2F05AllowsFactor2(t *testing.T) {
	sys := Example2System()
	p, err := sys.Predict(0.5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := p.Slowdown[1] / p.Slowdown[0]
	if !almost(ratio, 2.0, 0.01) {
		t.Errorf("slowdown ratio = %.3f, want 2 at F=1/2", ratio)
	}
	if !almost(p.Fairness, 0.5, 0.005) {
		t.Errorf("fairness = %.3f, want 0.5", p.Fairness)
	}
}

// §6: time sharing at 400-cycle quotas on Example 2 gives speedups
// ~[0.5, 0.8] and fairness ~0.6, worse than the mechanism's 1.0.
func TestTimeShareSection6(t *testing.T) {
	sys := Example2System()
	fair, speedups, err := sys.TimeShareFairness(400)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(speedups[0], 0.5, 0.05) {
		t.Errorf("speedup1 = %.3f, paper says ~0.5", speedups[0])
	}
	if !almost(speedups[1], 0.8, 0.08) {
		t.Errorf("speedup2 = %.3f, paper says ~0.8", speedups[1])
	}
	if !almost(fair, 0.6, 0.06) {
		t.Errorf("time-share fairness = %.3f, paper says ~0.6", fair)
	}
	// The mechanism achieves strictly better fairness.
	p, _ := sys.Predict(1)
	if p.Fairness <= fair {
		t.Errorf("mechanism fairness %.3f not better than time share %.3f", p.Fairness, fair)
	}
}

func TestFairnessMonotoneInF(t *testing.T) {
	sys := Example2System()
	prev := -1.0
	for _, f := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1} {
		p, err := sys.Predict(f)
		if err != nil {
			t.Fatal(err)
		}
		if p.Fairness < prev-1e-9 {
			t.Errorf("fairness not monotone at F=%.2f: %.4f < %.4f", f, p.Fairness, prev)
		}
		prev = p.Fairness
		if f > 0 && p.Fairness < f-1e-9 {
			t.Errorf("achieved model fairness %.4f below target %.2f", p.Fairness, f)
		}
	}
}

func TestPredictTotalIsSumOfThreads(t *testing.T) {
	sys := Example2System()
	for _, f := range []float64{0, 0.3, 1} {
		p, err := sys.Predict(f)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range p.IPCSOE {
			sum += v
		}
		if !almost(sum, p.Total, 1e-12) {
			t.Errorf("Eq. 10 violated at F=%v", f)
		}
	}
}

func TestThroughputDeltaSigns(t *testing.T) {
	// Equal IPC_no_miss: enforcement costs throughput (more switches).
	equal := Example2System()
	d, err := equal.ThroughputDelta(1)
	if err != nil {
		t.Fatal(err)
	}
	if d >= 0 {
		t.Errorf("equal-IPC pair should lose throughput, delta = %.3f", d)
	}
	// Unequal IPC_no_miss with the fast thread missing often: biasing
	// execution toward the high-IPC thread can improve throughput
	// (paper: up to +10%).
	uneven := &System{
		Threads: []ThreadParams{
			{Name: "slow-clean", IPCNoMiss: 2, IPM: 15000},
			{Name: "fast-missy", IPCNoMiss: 3, IPM: 1000},
		},
		MissLat: 300, SwitchLat: 25,
	}
	d2, err := uneven.ThroughputDelta(1)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= 0 {
		t.Errorf("uneven pair should gain throughput, delta = %.3f", d2)
	}
}

func TestFigure3CurvesWithinPaperBand(t *testing.T) {
	cases, err := Figure3(21)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) < 4 {
		t.Fatalf("only %d curves", len(cases))
	}
	sawGain, sawLoss := false, false
	for _, c := range cases {
		if len(c.F) != 21 || len(c.DeltaPc) != 21 {
			t.Fatalf("curve %s wrong length", c.Label)
		}
		if c.DeltaPc[0] != 0 {
			t.Errorf("%s: delta at F=0 must be 0, got %.3f", c.Label, c.DeltaPc[0])
		}
		for _, d := range c.DeltaPc {
			// Paper's band: degradation up to ~15%, improvement up to ~10%.
			if d < -25 || d > 20 {
				t.Errorf("%s: delta %.1f%% far outside the paper's band", c.Label, d)
			}
			if d > 0.5 {
				sawGain = true
			}
			if d < -0.5 {
				sawLoss = true
			}
		}
	}
	if !sawGain || !sawLoss {
		t.Errorf("Figure 3 must show both gains and losses (gain=%v loss=%v)", sawGain, sawLoss)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("table 2 rows = %d", len(rows))
	}
	if rows[0].F != 0 || rows[1].F != 0.5 || rows[2].F != 1 {
		t.Fatal("table 2 F levels wrong")
	}
	// Throughput decreases as enforcement tightens for this pair.
	if !(rows[0].Total > rows[1].Total && rows[1].Total > rows[2].Total) {
		t.Errorf("throughput not decreasing: %v %v %v",
			rows[0].Total, rows[1].Total, rows[2].Total)
	}
}

func TestValidation(t *testing.T) {
	bad := &System{Threads: []ThreadParams{{Name: "x", IPCNoMiss: 0, IPM: 100}}, MissLat: 300}
	if _, err := bad.Predict(0); err == nil {
		t.Error("zero IPC must be rejected")
	}
	bad2 := &System{}
	if _, err := bad2.Predict(0); err == nil {
		t.Error("empty system must be rejected")
	}
	sys := Example2System()
	if _, err := sys.Predict(1.5); err == nil {
		t.Error("F > 1 must be rejected")
	}
	if _, err := sys.Predict(-0.1); err == nil {
		t.Error("F < 0 must be rejected")
	}
	if _, _, err := sys.TimeShareFairness(0); err == nil {
		t.Error("zero quota must be rejected")
	}
	neg := Example2System()
	neg.MissLat = -1
	if _, err := neg.Predict(0); err == nil {
		t.Error("negative latency must be rejected")
	}
}

func TestCPMMin(t *testing.T) {
	sys := Example2System()
	if !almost(sys.CPMMin(), 400, 1e-9) {
		t.Errorf("CPMMin = %v", sys.CPMMin())
	}
}

func TestFairnessOfEdgeCases(t *testing.T) {
	if fairnessOf([]float64{1}) != 1 {
		t.Error("single-thread fairness must be 1")
	}
	if fairnessOf([]float64{0, 1}) != 0 {
		t.Error("zero speedup must give 0")
	}
}

// Property: for any valid 2-thread system, predicted fairness at F=1
// equals 1 (Eq. 9 guarantees it by construction).
func TestEnforcedPerfectFairnessProperty(t *testing.T) {
	params := []struct{ ipc1, ipc2, ipm1, ipm2 float64 }{
		{2.5, 2.5, 15000, 1000},
		{1.0, 3.0, 500, 40000},
		{2.0, 2.0, 100, 100},
		{3.5, 0.7, 80000, 200},
	}
	for _, pr := range params {
		sys := &System{
			Threads: []ThreadParams{
				{Name: "a", IPCNoMiss: pr.ipc1, IPM: pr.ipm1},
				{Name: "b", IPCNoMiss: pr.ipc2, IPM: pr.ipm2},
			},
			MissLat: 300, SwitchLat: 25,
		}
		p, err := sys.Predict(1)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(p.Fairness, 1, 1e-9) {
			t.Errorf("%+v: fairness at F=1 = %v", pr, p.Fairness)
		}
	}
}
