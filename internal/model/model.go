// Package model implements the paper's analytical model of SOE
// fairness and throughput (Section 2, Equations 1–10).
//
// A thread is modelled as a sequence of instruction bursts delimited
// by last-level cache misses: IPM instructions and CPM cycles between
// consecutive misses, a fixed Miss_lat stall per miss when running
// alone, and a Switch_lat overhead per thread switch when running
// under SOE. The model predicts per-thread and aggregate IPC with and
// without enforced fairness, and yields the IPSw quotas (Eq. 9) that
// guarantee a target fairness F.
package model

import (
	"fmt"
	"math"

	"soemt/internal/stats"
)

// ThreadParams characterises one thread for the analytical model.
type ThreadParams struct {
	Name      string
	IPCNoMiss float64 // IPC excluding miss stalls (paper's IPC_no_miss)
	IPM       float64 // instructions per last-level cache miss
}

// Validate reports parameter errors. Non-finite values are rejected
// explicitly: NaN compares false against every bound, so without the
// finiteness check a NaN IPM would slip through and poison every
// downstream prediction.
func (t ThreadParams) Validate() error {
	if !finite(t.IPCNoMiss) || t.IPCNoMiss <= 0 {
		return fmt.Errorf("model: %s: IPCNoMiss must be positive and finite, got %v", t.Name, t.IPCNoMiss)
	}
	if !finite(t.IPM) || t.IPM <= 0 {
		return fmt.Errorf("model: %s: IPM must be positive and finite, got %v", t.Name, t.IPM)
	}
	return nil
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// CPM returns cycles per miss excluding the miss stall: IPM/IPCNoMiss.
func (t ThreadParams) CPM() float64 { return t.IPM / t.IPCNoMiss }

// IPCST returns the single-thread IPC (Eq. 1):
// IPM / (CPM + Miss_lat).
func (t ThreadParams) IPCST(missLat float64) float64 {
	return t.IPM / (t.CPM() + missLat)
}

// System is a set of threads sharing an SOE processor.
type System struct {
	Threads   []ThreadParams
	MissLat   float64 // average memory access latency (cycles)
	SwitchLat float64 // average switch overhead (cycles)
}

// Validate reports configuration errors.
func (s *System) Validate() error {
	if len(s.Threads) == 0 {
		return fmt.Errorf("model: no threads")
	}
	if !finite(s.MissLat) || !finite(s.SwitchLat) || s.MissLat < 0 || s.SwitchLat < 0 {
		return fmt.Errorf("model: latencies must be finite and non-negative (MissLat=%v SwitchLat=%v)",
			s.MissLat, s.SwitchLat)
	}
	for _, t := range s.Threads {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CPMMin returns the minimum CPM across threads.
func (s *System) CPMMin() float64 {
	m := math.Inf(1)
	for _, t := range s.Threads {
		if c := t.CPM(); c < m {
			m = c
		}
	}
	return m
}

// Prediction is the model's output for one fairness setting.
type Prediction struct {
	F        float64   // target fairness used (0 = event-only SOE)
	IPSw     []float64 // per-thread instructions per switch (Eq. 9)
	CPSw     []float64 // per-thread cycles per switch
	IPCSOE   []float64 // per-thread IPC under SOE (Eq. 6)
	IPCST    []float64 // per-thread single-thread IPC (Eq. 1)
	Speedup  []float64 // IPC_SOE_j / IPC_ST_j
	Slowdown []float64 // IPC_ST_j / IPC_SOE_j
	Total    float64   // aggregate throughput IPC_SOE (Eq. 10)
	Fairness float64   // achieved fairness (Eq. 4)
}

// Predict evaluates the model for target fairness f (f = 0 disables
// enforcement: threads switch only on misses, IPSw_j = IPM_j).
func (s *System) Predict(f float64) (*Prediction, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("model: F = %v out of [0, 1]", f)
	}
	n := len(s.Threads)
	p := &Prediction{
		F:        f,
		IPSw:     make([]float64, n),
		CPSw:     make([]float64, n),
		IPCSOE:   make([]float64, n),
		IPCST:    make([]float64, n),
		Speedup:  make([]float64, n),
		Slowdown: make([]float64, n),
	}
	cpmMin := s.CPMMin()
	for i, t := range s.Threads {
		p.IPCST[i] = t.IPCST(s.MissLat)
		if f == 0 {
			p.IPSw[i] = t.IPM
		} else {
			// Eq. 9.
			p.IPSw[i] = math.Min(t.IPM, p.IPCST[i]/f*(cpmMin+s.MissLat))
		}
		// Between switches the thread runs at IPC_no_miss (miss stalls
		// are hidden by the other threads).
		p.CPSw[i] = p.IPSw[i] / t.IPCNoMiss
	}
	// One SOE round: every thread runs CPSw_k plus a switch overhead
	// (Eq. 6 denominator).
	var round float64
	for i := range s.Threads {
		round += p.CPSw[i] + s.SwitchLat
	}
	for i := range s.Threads {
		p.IPCSOE[i] = p.IPSw[i] / round // Eq. 6
		p.Speedup[i] = p.IPCSOE[i] / p.IPCST[i]
		p.Slowdown[i] = p.IPCST[i] / p.IPCSOE[i]
		p.Total += p.IPCSOE[i] // Eq. 10
	}
	p.Fairness = fairnessOf(p.Speedup) // Eq. 4
	return p, nil
}

// fairnessOf is Eq. 4: the min over all thread pairs of speedup
// ratios, shared with the simulator via stats.MinPairRatio (see its
// doc for the degenerate-input conventions: <2 threads → 1,
// non-positive or non-finite → 0).
func fairnessOf(speedups []float64) float64 {
	return stats.MinPairRatio(speedups)
}

// ThroughputDelta returns the model-predicted relative throughput
// change of enforcing fairness f versus event-only SOE:
// (IPC_SOE(f) - IPC_SOE(0)) / IPC_SOE(0). Negative values are
// degradation. This is the quantity swept in the paper's Figure 3.
func (s *System) ThroughputDelta(f float64) (float64, error) {
	base, err := s.Predict(0)
	if err != nil {
		return 0, err
	}
	enforced, err := s.Predict(f)
	if err != nil {
		return 0, err
	}
	// Validate guarantees positive finite parameters, which makes
	// base.Total positive — but guard the division anyway so a future
	// degenerate path can never emit NaN/Inf from here.
	if !finite(base.Total) || base.Total <= 0 {
		return 0, fmt.Errorf("model: degenerate baseline throughput %v", base.Total)
	}
	return (enforced.Total - base.Total) / base.Total, nil
}

// TimeShareFairness predicts the achieved fairness of simple time
// sharing with equal per-thread cycle quotas (the §6 discussion). The
// baseline keeps the SOE switch-on-event core and merely caps how long
// a thread may stay resident, so a visit ends at whichever comes
// first: the cycle quota, or the thread's next last-level miss. Thread
// j therefore occupies the core for
//
//	visit_j = min(quotaCycles, CPM_j)
//
// cycles per round, retiring visit_j · IPC_no_miss_j instructions, and
// one round is Σ_k (visit_k + Switch_lat).
//
// The previous formulation assumed every thread used its full quota
// (round = n·(quota+Switch_lat)) and credited a missy thread with
// ceil(quota/CPM)·IPM instructions per visit — as if it could cover
// several miss periods inside one residency. A thread that switches on
// its first miss covers exactly one, so for quota > CPM the old bound
// overestimated the missy thread's throughput (by ~ceil(quota/CPM)×)
// and overcharged the clean thread with a round it never waited for.
// TestTimeShareModelTracksEngine in internal/experiments pins the
// corrected formula against the cycle-accurate engine. With
// quota ≤ CPM for all threads both formulations agree, which keeps the
// §6 Example 2 numbers (400-cycle quota) unchanged.
func (s *System) TimeShareFairness(quotaCycles float64) (fairness float64, speedups []float64, err error) {
	if err := s.Validate(); err != nil {
		return 0, nil, err
	}
	if !finite(quotaCycles) || quotaCycles <= 0 {
		return 0, nil, fmt.Errorf("model: quota must be positive")
	}
	n := len(s.Threads)
	visits := make([]float64, n)
	var round float64
	for i, t := range s.Threads {
		visits[i] = math.Min(quotaCycles, t.CPM())
		round += visits[i] + s.SwitchLat
	}
	speedups = make([]float64, n)
	for i, t := range s.Threads {
		ipcSOE := visits[i] * t.IPCNoMiss / round
		speedups[i] = ipcSOE / t.IPCST(s.MissLat)
	}
	return fairnessOf(speedups), speedups, nil
}
