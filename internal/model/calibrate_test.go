package model

import (
	"math"
	"path/filepath"
	"testing"
)

// TestFitThreadRoundTrip: counters synthesized from known parameters
// must invert back to them exactly (Eq. 1 is closed-form).
func TestFitThreadRoundTrip(t *testing.T) {
	const (
		ipcNoMiss = 2.5
		ipm       = 15000.0
		missLat   = 300.0
		misses    = 100
	)
	instrs := uint64(ipm * misses)
	// A single-thread run stalls in place on each miss: wall cycles are
	// compute (CPM per miss) plus the stall.
	cycles := uint64(misses * (ipm/ipcNoMiss + missLat))

	tp, err := FitThread("synth", instrs, cycles, misses, missLat)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(tp.IPM, ipm, 1e-6) {
		t.Errorf("IPM = %v, want %v", tp.IPM, ipm)
	}
	if !almost(tp.IPCNoMiss, ipcNoMiss, 1e-6) {
		t.Errorf("IPCNoMiss = %v, want %v", tp.IPCNoMiss, ipcNoMiss)
	}
}

// TestFitThreadDegenerate: empty runs and un-invertible latencies are
// errors, never NaN parameters.
func TestFitThreadDegenerate(t *testing.T) {
	if _, err := FitThread("x", 0, 0, 0, 300); err == nil {
		t.Error("empty run must be a fitting error")
	}
	// Observed 10 cycles/miss with an assumed 300-cycle stall: CPM
	// would invert negative.
	if _, err := FitThread("x", 1000, 1000, 100, 300); err == nil {
		t.Error("missLat exceeding observed cycles/miss must be a fitting error")
	}
	if _, err := FitThread("x", 1000, 1000, 0, math.NaN()); err == nil {
		t.Error("NaN missLat must be rejected")
	}
	// Miss-free run: IPM defaults to instrs (one nominal miss) and the
	// fit stays finite.
	tp, err := FitThread("clean", 1_000_000, 500_000, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("miss-free fit invalid: %v", err)
	}
}

func testCalibration() *Calibration {
	return &Calibration{
		SchemaVersion: CalibrationSchemaVersion,
		Source:        SourceSimulation,
		Scale:         "tiny",
		MissLat:       300,
		SwitchLat:     25,
		Threads: map[string]ThreadParams{
			"thread1": {Name: "thread1", IPCNoMiss: 2.5, IPM: 15000},
			"thread2": {Name: "thread2", IPCNoMiss: 2.5, IPM: 1000},
		},
		ErrIPCPc:    5,
		ErrFairness: 0.05,
	}
}

// TestCalibrationSaveLoadRoundTrip: a persisted table must reload to
// identical predictions.
func TestCalibrationSaveLoadRoundTrip(t *testing.T) {
	cal := testCalibration()
	path := filepath.Join(t.TempDir(), "calib.json")
	if err := cal.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	sysA, err := cal.System("thread1", "thread2")
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := got.System("thread1", "thread2")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0, 0.5, 1} {
		a, errA := sysA.Predict(f)
		b, errB := sysB.Predict(f)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if a.Total != b.Total || a.Fairness != b.Fairness {
			t.Errorf("F=%v: reloaded table predicts (%v, %v), original (%v, %v)",
				f, b.Total, b.Fairness, a.Total, a.Fairness)
		}
	}
}

// TestCalibrationValidation: corrupt tables are refused up front.
func TestCalibrationValidation(t *testing.T) {
	mut := func(f func(*Calibration)) *Calibration {
		c := testCalibration()
		f(c)
		return c
	}
	cases := []struct {
		name string
		c    *Calibration
	}{
		{"nil", nil},
		{"schema", mut(func(c *Calibration) { c.SchemaVersion = 99 })},
		{"source", mut(func(c *Calibration) { c.Source = "vibes" })},
		{"no threads", mut(func(c *Calibration) { c.Threads = nil })},
		{"NaN thread", mut(func(c *Calibration) {
			c.Threads["bad"] = ThreadParams{Name: "bad", IPCNoMiss: math.NaN(), IPM: 100}
		})},
		{"Inf IPM", mut(func(c *Calibration) {
			c.Threads["bad"] = ThreadParams{Name: "bad", IPCNoMiss: 1, IPM: math.Inf(1)}
		})},
		{"negative bar", mut(func(c *Calibration) { c.ErrIPCPc = -1 })},
		{"NaN missLat", mut(func(c *Calibration) { c.MissLat = math.NaN() })},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt table", tc.name)
		}
	}
	if err := testCalibration().Validate(); err != nil {
		t.Errorf("healthy table rejected: %v", err)
	}
	if _, err := testCalibration().System("nope"); err == nil {
		t.Error("System must refuse unknown thread names")
	}
}

// TestPredictNeverEmitsNonFinite is the table-driven degenerate-input
// guard (the internal/stats EstIPCST pattern at the model boundary):
// inputs that are structurally odd but valid must produce fully finite
// predictions, and non-finite parameters must be rejected by
// validation instead of surfacing as NaN in a result that would reach
// JSON encoding.
func TestPredictNeverEmitsNonFinite(t *testing.T) {
	finiteAll := func(t *testing.T, p *Prediction) {
		t.Helper()
		check := func(label string, vs ...float64) {
			for _, v := range vs {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("%s carries non-finite value %v", label, v)
				}
			}
		}
		check("Total/Fairness", p.Total, p.Fairness)
		check("IPSw", p.IPSw...)
		check("CPSw", p.CPSw...)
		check("IPCSOE", p.IPCSOE...)
		check("IPCST", p.IPCST...)
		check("Speedup", p.Speedup...)
		check("Slowdown", p.Slowdown...)
	}

	valid := []struct {
		name string
		sys  *System
		f    float64
	}{
		{"tiny F", Example2System(), 1e-12},
		{"switchlat zero", &System{
			Threads: []ThreadParams{
				{Name: "a", IPCNoMiss: 2.5, IPM: 15000},
				{Name: "b", IPCNoMiss: 2.5, IPM: 1000},
			},
			MissLat: 300, SwitchLat: 0,
		}, 1},
		{"single thread", &System{
			Threads: []ThreadParams{{Name: "solo", IPCNoMiss: 1.2, IPM: 900}},
			MissLat: 300, SwitchLat: 25,
		}, 0},
		{"misslat zero", &System{
			Threads: []ThreadParams{
				{Name: "a", IPCNoMiss: 1, IPM: 100},
				{Name: "b", IPCNoMiss: 1, IPM: 100},
			},
			MissLat: 0, SwitchLat: 0,
		}, 0.5},
		{"extreme IPM ratio", &System{
			Threads: []ThreadParams{
				{Name: "a", IPCNoMiss: 2.5, IPM: 1e9},
				{Name: "b", IPCNoMiss: 0.9, IPM: 10},
			},
			MissLat: 300, SwitchLat: 25,
		}, 1},
	}
	for _, tc := range valid {
		p, err := tc.sys.Predict(tc.f)
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		finiteAll(t, p)
		if d, err := tc.sys.ThroughputDelta(tc.f); err != nil {
			t.Errorf("%s: ThroughputDelta error %v", tc.name, err)
		} else if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("%s: ThroughputDelta = %v", tc.name, d)
		}
		if len(tc.sys.Threads) >= 2 {
			if fair, sp, err := tc.sys.TimeShareFairness(400); err != nil {
				t.Errorf("%s: TimeShareFairness error %v", tc.name, err)
			} else {
				finiteAll(t, &Prediction{Speedup: sp, Fairness: fair})
			}
		}
	}

	// Non-finite parameters: rejected, not propagated. Before the
	// validation hardening a NaN IPM passed (NaN <= 0 is false) and an
	// Inf IPM produced IPCST = Inf/Inf = NaN in the prediction.
	invalid := []*System{
		{Threads: []ThreadParams{
			{Name: "nan", IPCNoMiss: 2.5, IPM: math.NaN()},
			{Name: "ok", IPCNoMiss: 2.5, IPM: 1000},
		}, MissLat: 300, SwitchLat: 25},
		{Threads: []ThreadParams{
			{Name: "inf", IPCNoMiss: 2.5, IPM: math.Inf(1)},
			{Name: "ok", IPCNoMiss: 2.5, IPM: 1000},
		}, MissLat: 300, SwitchLat: 25},
		{Threads: []ThreadParams{
			{Name: "nan-ipc", IPCNoMiss: math.NaN(), IPM: 1000},
		}, MissLat: 300, SwitchLat: 25},
		{Threads: []ThreadParams{
			{Name: "ok", IPCNoMiss: 2.5, IPM: 1000},
			{Name: "ok2", IPCNoMiss: 2.5, IPM: 1000},
		}, MissLat: math.NaN(), SwitchLat: 25},
		{Threads: []ThreadParams{
			{Name: "ok", IPCNoMiss: 2.5, IPM: 1000},
			{Name: "ok2", IPCNoMiss: 2.5, IPM: 1000},
		}, MissLat: 300, SwitchLat: math.Inf(1)},
	}
	for i, sys := range invalid {
		if _, err := sys.Predict(1); err == nil {
			t.Errorf("invalid system %d: Predict accepted non-finite parameters", i)
		}
		if _, err := sys.ThroughputDelta(1); err == nil {
			t.Errorf("invalid system %d: ThroughputDelta accepted non-finite parameters", i)
		}
	}
}

// TestFairnessOfNonFinite: a non-finite speedup degrades fairness to
// 0, the same convention internal/stats uses for degenerate counters.
func TestFairnessOfNonFinite(t *testing.T) {
	if got := fairnessOf([]float64{math.NaN(), 1}); got != 0 {
		t.Errorf("fairnessOf(NaN, 1) = %v, want 0", got)
	}
	if got := fairnessOf([]float64{math.Inf(1), 1}); got != 0 {
		t.Errorf("fairnessOf(+Inf, 1) = %v, want 0", got)
	}
}
