package rng

import (
	"testing"
	"testing/quick"
)

func TestUint64AtDeterministic(t *testing.T) {
	f := func(seed, index uint64) bool {
		return Uint64At(seed, index) == Uint64At(seed, index)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64AtIndexSensitivity(t *testing.T) {
	seed := uint64(42)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		v := Uint64At(seed, i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("collision: index %d and %d both map to %#x", prev, i, v)
		}
		seen[v] = i
	}
}

func TestUint64AtSeedSensitivity(t *testing.T) {
	// Adjacent seeds must produce unrelated streams.
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if Uint64At(1, i) == Uint64At(2, i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds share %d of 1000 outputs", same)
	}
}

func TestFloat64AtRange(t *testing.T) {
	f := func(seed, index uint64) bool {
		v := Float64At(seed, index)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64AtUniformity(t *testing.T) {
	const n = 200000
	const buckets = 10
	var hist [buckets]int
	for i := uint64(0); i < n; i++ {
		hist[int(Float64At(7, i)*buckets)]++
	}
	want := n / buckets
	for b, got := range hist {
		if got < want*9/10 || got > want*11/10 {
			t.Errorf("bucket %d: got %d, want within 10%% of %d", b, got, want)
		}
	}
}

func TestIntnAtRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		v := IntnAt(3, i, 17)
		if v < 0 || v >= 17 {
			t.Fatalf("IntnAt out of range: %d", v)
		}
	}
}

func TestIntnAtPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	IntnAt(1, 1, 0)
}

func TestStreamDeterministic(t *testing.T) {
	a, b := NewStream(99), NewStream(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestStreamZeroValueUsable(t *testing.T) {
	var s Stream
	if s.Uint64() == s.Uint64() {
		t.Fatal("zero-value stream repeated a value immediately")
	}
}

func TestStreamIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=-1")
		}
	}()
	NewStream(1).Intn(-1)
}

func TestPermIsPermutation(t *testing.T) {
	s := NewStream(5)
	for _, n := range []int{0, 1, 2, 16, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSubLabelsIndependent(t *testing.T) {
	a := Sub(1, "addresses")
	b := Sub(1, "branches")
	if a == b {
		t.Fatal("different labels produced equal sub-seeds")
	}
	if Sub(1, "addresses") != a {
		t.Fatal("Sub is not deterministic")
	}
	if Sub(2, "addresses") == a {
		t.Fatal("different parent seeds produced equal sub-seeds")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity over a window; a true bijection cannot be
	// exhaustively verified but collisions in 1e5 consecutive inputs
	// would indicate a broken finalizer.
	seen := make(map[uint64]struct{}, 100000)
	for i := uint64(0); i < 100000; i++ {
		v := Mix64(i)
		if _, dup := seen[v]; dup {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[v] = struct{}{}
	}
}

func BenchmarkUint64At(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Uint64At(1, uint64(i))
	}
	_ = sink
}

// TestModuloStreamPinned pins the exact IntnAt/Intn output streams.
// Both carry a documented (negligible, < n/2^64) modulo bias; fixing
// it would consume a variable number of stream values per draw and
// silently change every generated instruction stream, breaking the
// bit-identical golden-figure and fast-forward equivalence suites.
// If this test fails, the change broke replay compatibility — either
// revert it or deliberately re-baseline every golden artifact.
func TestModuloStreamPinned(t *testing.T) {
	wantAt := []int{13, 0, 11, 10, 7, 0, 9, 11}
	for i, want := range wantAt {
		if got := IntnAt(0xDEADBEEF, uint64(i), 17); got != want {
			t.Errorf("IntnAt(0xDEADBEEF, %d, 17) = %d, want %d", i, got, want)
		}
	}
	s := NewStream(12345)
	wantSeq := []int{944, 597, 405, 450, 363, 646, 546, 68}
	for i, want := range wantSeq {
		if got := s.Intn(1000); got != want {
			t.Errorf("Stream(12345).Intn(1000) draw %d = %d, want %d", i, got, want)
		}
	}
}

// TestIntnAtBiasNegligible sanity-checks the documented bias bound:
// empirical uniformity over the small n actually used (n ≤ 2^20)
// shows no measurable skew at test sample sizes.
func TestIntnAtBiasNegligible(t *testing.T) {
	const n, draws = 17, 200000
	var counts [n]int
	for i := uint64(0); i < draws; i++ {
		counts[IntnAt(99, i, n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if dev := (float64(c) - want) / want; dev > 0.05 || dev < -0.05 {
			t.Errorf("value %d drawn %d times, want ~%.0f (dev %.3f)", v, c, want, dev)
		}
	}
}
