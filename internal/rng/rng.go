// Package rng provides small deterministic pseudo-random number
// generators used throughout the simulator.
//
// Two flavours are provided:
//
//   - Stream: a sequential SplitMix64 generator for places where a
//     classic stateful PRNG is convenient (e.g. shuffling experiment
//     orders).
//   - Hash-based, counter-mode helpers (At, Uint64At, ...): pure
//     functions of (seed, index). Workload generation uses these so a
//     thread's instruction stream can be re-read from any position in
//     O(1) — required because a thread switch squashes in-flight
//     instructions and the front end must rewind to the retirement
//     point.
//
// math/rand is deliberately avoided: its stream is not guaranteed
// stable across Go releases, and it cannot be indexed randomly.
package rng

// golden is the SplitMix64 increment (2^64 / phi).
const golden = 0x9e3779b97f4a7c15

// mix is the SplitMix64 output function: a bijective finalizer with
// good avalanche behaviour, also usable as a standalone integer hash.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Mix64 exposes the SplitMix64 finalizer as a general-purpose hash.
func Mix64(z uint64) uint64 { return mix(z) }

// Uint64At returns the index-th value of the counter-mode stream
// identified by seed. It is a pure function: the same (seed, index)
// always yields the same value.
func Uint64At(seed, index uint64) uint64 {
	return mix((seed + golden) ^ mix(index*golden+golden))
}

// Float64At returns a uniform float64 in [0, 1) drawn from the
// counter-mode stream identified by seed at the given index.
func Float64At(seed, index uint64) float64 {
	// 53 high-quality bits -> [0,1).
	return float64(Uint64At(seed, index)>>11) / (1 << 53)
}

// IntnAt returns a uniform integer in [0, n) from the counter-mode
// stream. n must be positive.
//
// Modulo-bias audit (kept deliberately): the value is Uint64At % n, so
// the 2^64 mod n smallest residues are favoured by at most n/2^64 in
// probability. Every call site in this repo uses n ≤ 2^20 (DepWindow
// picks, event-kind draws), bounding the bias below 2^-44 — orders of
// magnitude beneath anything observable even across 10^12 draws. A
// rejection-sampling fix would consume a variable number of stream
// values per draw and change every generated instruction stream,
// breaking the bit-identical golden-figure and fast-forward
// equivalence suites, so the biased-but-stable stream is the contract;
// TestModuloStreamPinned pins it.
func IntnAt(seed, index uint64, n int) int {
	if n <= 0 {
		panic("rng: IntnAt with non-positive n")
	}
	return int(Uint64At(seed, index) % uint64(n))
}

// Stream is a sequential SplitMix64 generator. The zero value is a
// valid generator seeded with 0.
type Stream struct {
	state uint64
}

// NewStream returns a Stream seeded with seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 returns the next value in the stream.
func (s *Stream) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns the next value as a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). n must be positive.
// It shares IntnAt's documented modulo bias (< n/2^64, negligible for
// the small n used here) and its stability contract: the stream is
// pinned by TestModuloStreamPinned and must not change.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Sub derives an independent child seed from a parent seed and a label.
// Used to give each workload component (opcode picks, addresses,
// branches, ...) its own counter-mode stream.
func Sub(seed uint64, label string) uint64 {
	h := seed
	for i := 0; i < len(label); i++ {
		h = mix(h ^ uint64(label[i])*golden)
	}
	return h
}
