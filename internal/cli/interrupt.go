// Package cli carries plumbing shared by the soemt command-line
// tools: signal-driven cancellation, the conventional interrupt exit
// code, and the interrupt-marker etiquette for persistent result
// caches (mark on interruption, note on resume, clear on completion).
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"soemt/internal/experiments"
)

// ExitInterrupted is the conventional exit status for a process
// terminated by SIGINT (128 + signal number 2).
const ExitInterrupted = 130

// SignalContext returns a context cancelled by the first SIGINT or
// SIGTERM.
//
// Unlike signal.NotifyContext, default signal disposition is restored
// the moment the first signal lands — not when stop is called — so a
// second signal kills the process immediately: the escape hatch if the
// graceful shutdown itself wedges. (NotifyContext keeps the handler
// registered until stop, silently swallowing every signal after the
// first; a user whose drain hung could not ^C out. See the
// second-signal regression test.)
//
// The returned stop function unregisters the handler and joins the
// watcher goroutine before returning; it is idempotent and safe for
// concurrent use. Every command defers it, so a command that returns
// before any signal arrives leaves no goroutine behind.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-ch:
			// Restore default disposition BEFORE cancelling: anything the
			// cancellation unwinds (flushes, checkpoints) runs with a
			// second signal able to kill the process immediately.
			signal.Stop(ch)
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
		}
	}()
	stop := func() {
		cancel()
		<-done
	}
	return ctx, stop
}

// Interrupted reports whether err is the cancellation produced by a
// signal arriving on ctx (as opposed to a simulation failure that
// happened while the context was still live).
func Interrupted(ctx context.Context, err error) bool {
	return errors.Is(ctx.Err(), context.Canceled) && errors.Is(err, context.Canceled)
}

// NoteResume prints a notice when the cache directory carries an
// interrupt marker from an earlier run: the rerun warm-resumes from
// every result that run completed.
func NoteResume(prog string, c *experiments.Cache) {
	if note, ok := c.Interrupted(); ok {
		fmt.Fprintf(os.Stderr, "%s: previous run over %s was interrupted (%s); resuming from its completed results\n",
			prog, c.Dir(), strings.TrimSpace(note))
	}
}

// MarkInterrupted records the interruption in the cache directory
// (best effort) so the next invocation over the same -cache-dir knows
// it is resuming an incomplete matrix.
func MarkInterrupted(prog string, c *experiments.Cache, what string) {
	if err := c.MarkInterrupted(what); err != nil {
		fmt.Fprintf(os.Stderr, "%s: write interrupt marker: %v\n", prog, err)
	}
}

// ClearInterrupted removes the marker after a run that completed
// normally (best effort).
func ClearInterrupted(prog string, c *experiments.Cache) {
	if err := c.ClearInterrupted(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: clear interrupt marker: %v\n", prog, err)
	}
}
