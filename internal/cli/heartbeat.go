package cli

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"
)

// StartHeartbeat prints "prog: heartbeat: <status()>" to stderr every
// interval until ctx is cancelled or the returned stop function is
// called. It exists for long soefig/soesweep matrix runs: the status
// callback is invoked concurrently with the worker pool, which is safe
// because the engine's metrics snapshots read atomic registry counters
// (see experiments.Runner.Metrics and the -race regression test).
// A non-positive interval disables the heartbeat; stop is then a no-op.
// stop is idempotent, safe for concurrent use (it used to flip an
// unsynchronized bool, a data race — and a double close(done) panic —
// when a command's interrupt path and its deferred cleanup raced), and
// waits for the heartbeat goroutine to exit, so no line is ever
// emitted after stop returns and a command that returns before the
// first tick leaves no goroutine behind.
func StartHeartbeat(ctx context.Context, prog string, interval time.Duration, status func() string) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(os.Stderr, "%s: heartbeat: %s\n", prog, status())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}
