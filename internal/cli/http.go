package cli

import (
	"flag"
	"net/http"
	"time"
)

// HTTPTimeouts bundles the http.Server timeouts every soemt service
// must set. A server with none of them is one slow client away from
// descriptor exhaustion (Slowloris: open a connection, trickle header
// bytes forever); the defaults here close that off while staying far
// above anything a legitimate soeserve/soeproxy client does — request
// bodies are small JSON and long work happens server-side behind 202
// + polling, never on an open request.
type HTTPTimeouts struct {
	// ReadHeader bounds reading one request's header block. Default 5s.
	ReadHeader time.Duration
	// Read bounds reading a whole request (header + body). Default 1m.
	Read time.Duration
	// Write bounds writing a response from the end of header read.
	// Default 2m (covers a large trace export on a slow link).
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests. Default 2m.
	Idle time.Duration
}

// DefaultHTTPTimeouts returns the fleet-wide defaults.
func DefaultHTTPTimeouts() HTTPTimeouts {
	return HTTPTimeouts{
		ReadHeader: 5 * time.Second,
		Read:       time.Minute,
		Write:      2 * time.Minute,
		Idle:       2 * time.Minute,
	}
}

// Flags registers the four timeouts on fs (the process flag set in
// practice), with the current values as defaults, so soeserve and
// soeproxy expose identical knobs.
func (t *HTTPTimeouts) Flags(fs *flag.FlagSet) {
	fs.DurationVar(&t.ReadHeader, "read-header-timeout", t.ReadHeader, "max time to read a request's headers (Slowloris guard; 0 disables)")
	fs.DurationVar(&t.Read, "read-timeout", t.Read, "max time to read a whole request (0 disables)")
	fs.DurationVar(&t.Write, "write-timeout", t.Write, "max time to write a response (0 disables)")
	fs.DurationVar(&t.Idle, "idle-timeout", t.Idle, "max keep-alive idle time between requests (0 disables)")
}

// Server returns an http.Server for addr/handler with the timeouts
// applied — the one constructor every soemt main should use instead
// of a bare &http.Server literal.
func (t HTTPTimeouts) Server(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}
