package cli

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMain doubles as the subprocess helper for the second-signal
// regression test: when re-executed with CLI_TEST_SIGNAL_HELPER=1, the
// binary runs signalHelperMain instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("CLI_TEST_SIGNAL_HELPER") == "1" {
		signalHelperMain()
		return
	}
	os.Exit(m.Run())
}

// signalHelperMain models a command whose graceful shutdown wedges:
// after the first signal cancels the context it "drains" for far
// longer than any test timeout. A correct SignalContext restores
// default disposition on the first signal, so the second one kills
// this process; the old NotifyContext-based implementation swallowed
// it and the process survived.
func signalHelperMain() {
	ctx, stop := SignalContext()
	defer stop()
	fmt.Println("ready")
	<-ctx.Done()
	fmt.Println("cancelled")
	time.Sleep(30 * time.Second)
	fmt.Println("survived")
}

// Regression: after the first SIGINT is handled gracefully, a second
// SIGINT must kill the process immediately (the documented escape
// hatch for a wedged shutdown). Fails on the pre-fix implementation,
// which kept the signal handler registered until stop() and therefore
// swallowed every signal after the first.
func TestSignalContextSecondSignalKills(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics")
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "CLI_TEST_SIGNAL_HELPER=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(out)
	expect := func(want string) {
		if !sc.Scan() {
			t.Fatalf("helper exited before printing %q: %v", want, sc.Err())
		}
		if got := sc.Text(); got != want {
			t.Fatalf("helper printed %q, want %q", got, want)
		}
	}
	expect("ready")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	expect("cancelled")
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("helper exited cleanly (%v); the second SIGINT was swallowed", err)
		}
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && (!ws.Signaled() || ws.Signal() != syscall.SIGINT) {
			t.Fatalf("helper died of %v, want SIGINT", ws)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("helper survived a second SIGINT for 10s; default disposition was not restored")
	}
}

// countGoroutines settles briefly so goroutines that are mid-exit are
// not counted as leaks.
func countGoroutines(base int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 50 && n > base; i++ {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// Regression: a command that returns before any signal arrives must
// not leak the watcher goroutine — stop joins it.
func TestSignalContextNoGoroutineLeak(t *testing.T) {
	// The first signal.Notify starts the runtime's global signal-loop
	// goroutine, which lives forever by design; warm it up so the
	// baseline excludes it.
	_, warm := SignalContext()
	warm()
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_, stop := SignalContext()
		stop()
	}
	if n := countGoroutines(base); n > base {
		t.Fatalf("goroutines grew from %d to %d after 50 SignalContext+stop cycles", base, n)
	}
}

// stop must be idempotent and safe from multiple goroutines (the serve
// drain path and a deferred cleanup can race to it).
func TestSignalContextStopConcurrent(t *testing.T) {
	_, stop := SignalContext()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop()
		}()
	}
	wg.Wait()
	stop() // and again after everyone is done
}

// Regression (-race): the heartbeat's stop flipped an unsynchronized
// bool, so two goroutines stopping at once raced (and could double
// close the channel). Must be clean under the race detector.
func TestHeartbeatStopConcurrent(t *testing.T) {
	stop := StartHeartbeat(context.Background(), "test", time.Hour, func() string { return "s" })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stop()
		}()
	}
	wg.Wait()
	stop()
}

// Regression: a command returning before the first tick must not leak
// the heartbeat goroutine; stop joins it even when it never fired.
func TestHeartbeatNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		stop := StartHeartbeat(context.Background(), "test", time.Hour, func() string { return "s" })
		stop()
	}
	if n := countGoroutines(base); n > base {
		t.Fatalf("goroutines grew from %d to %d after 50 heartbeat start+stop cycles", base, n)
	}
}

// A cancelled parent ctx also ends the heartbeat, and stop afterwards
// still returns promptly (no deadlock against an already-dead
// goroutine).
func TestHeartbeatCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stop := StartHeartbeat(ctx, "test", time.Hour, func() string { return "s" })
	cancel()
	done := make(chan struct{})
	go func() {
		stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop blocked after ctx cancellation")
	}
}

// A disabled heartbeat's stop is a no-op that is still safe to call
// repeatedly and concurrently.
func TestHeartbeatDisabled(t *testing.T) {
	stop := StartHeartbeat(context.Background(), "test", 0, func() string { return "s" })
	stop()
	stop()
}
