package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Exporters for the event tracer.
//
// Chrome trace_event JSON: the emitted file is the object form
// ({"traceEvents": [...]}) understood by chrome://tracing and Perfetto.
// One cycle is rendered as one microsecond (the format's ts unit), so
// the timeline reads directly in cycles. Every traced Event becomes
// one trace_event object whose args carry the full record in exact
// string form ("cycle", "cause", "a", "b", "n") — ts/tid/dur are
// presentation only, so ReadChromeTrace round-trips exactly even for
// cycles beyond float64 precision and non-finite payloads. Two kinds
// of presentation-only extras are also emitted and skipped on read:
// thread_name metadata (ph "M") and per-dispatch spans (cat
// "dispatch") synthesized between consecutive switch records so thread
// occupancy shows as solid blocks on each thread's track.
//
// CSV: one event per line, "cycle,kind,thread,cause,a,b,n", with
// floats in strconv 'g'/-1 form so WriteCSV∘ReadCSV is the identity.

// chromeEvent is the subset of the trace_event schema we read back.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
	TraceEvents     []chromeEvent     `json:"traceEvents"`
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// TraceMeta is export metadata that travels with the event stream.
// Dropped is load-bearing: the tracer ring evicts its oldest events at
// capacity, so a consumer reading an exported file with no drop count
// cannot tell a complete trace from the most-recent suffix of one.
// Both exporters embed it (Chrome otherData / a CSV comment line) and
// the Meta readers surface it, so truncation is visible in the
// artifact itself, not only in a stderr warning that scrolled away.
type TraceMeta struct {
	ThreadNames []string // per-thread track labels (index = thread id)
	Dropped     uint64   // events evicted by ring overflow before export
}

// MetaFor assembles the export metadata for a tracer's current state.
func MetaFor(t *Tracer, threadNames []string) TraceMeta {
	return TraceMeta{ThreadNames: threadNames, Dropped: t.Dropped()}
}

// droppedKey is the otherData key carrying TraceMeta.Dropped in the
// Chrome exporter.
const droppedKey = "dropped_events"

func eventArgs(ev Event) map[string]string {
	return map[string]string{
		"cycle":  strconv.FormatUint(ev.Cycle, 10),
		"kind":   ev.Kind.String(),
		"thread": strconv.FormatInt(int64(ev.Thread), 10),
		"cause":  ev.Cause.String(),
		"a":      formatFloat(ev.A),
		"b":      formatFloat(ev.B),
		"n":      strconv.FormatUint(ev.N, 10),
	}
}

// WriteChromeTrace renders events as Chrome trace_event JSON.
// threadNames, when non-empty, labels the per-thread tracks (index =
// thread id); it is presentation metadata and not needed to read the
// file back. The export carries no drop count — prefer
// WriteChromeTraceMeta when the events came from a tracer ring that
// may have overflowed.
func WriteChromeTrace(w io.Writer, events []Event, threadNames []string) error {
	return WriteChromeTraceMeta(w, events, TraceMeta{ThreadNames: threadNames})
}

// WriteChromeTraceMeta is WriteChromeTrace carrying export metadata:
// a non-zero meta.Dropped is embedded as otherData[droppedKey] so the
// file itself records that it is the most-recent window of a longer
// run, not a complete trace.
func WriteChromeTraceMeta(w io.Writer, events []Event, meta TraceMeta) error {
	threadNames := meta.ThreadNames
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"tool": "soesim", "clock": "1 cycle = 1us"},
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(threadNames)),
	}
	if meta.Dropped > 0 {
		tr.OtherData[droppedKey] = strconv.FormatUint(meta.Dropped, 10)
	}
	for i, name := range threadNames {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i,
			Args: map[string]string{"name": name},
		})
	}
	var lastSwitch *Event
	for i := range events {
		ev := events[i]
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  ev.Kind.String(),
			Ph:   "i",
			Ts:   float64(ev.Cycle),
			Tid:  int(ev.Thread),
			S:    "t",
			Args: eventArgs(ev),
		}
		if ev.Cause != CauseNone {
			ce.Name = ev.Kind.String() + ":" + ev.Cause.String()
		}
		switch ev.Kind {
		case KindSwitch:
			if lastSwitch != nil && ev.Cycle >= lastSwitch.Cycle {
				// Span for the dispatch that just ended: the thread that
				// came in at the previous switch ran until this one.
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "dispatch", Cat: "dispatch", Ph: "X",
					Ts: float64(lastSwitch.Cycle), Dur: float64(ev.Cycle - lastSwitch.Cycle),
					Tid: int(lastSwitch.N),
				})
			}
			lastSwitch = &events[i]
		case KindSkip:
			ce.Ph, ce.S = "X", ""
			ce.Dur = float64(ev.N)
			ce.Name = "fast-forward"
		case KindDeficit:
			ce.Ph, ce.S = "C", ""
			ce.Name = fmt.Sprintf("deficit.t%d", ev.Thread)
			ce.Args["deficit"] = formatFloat(ev.A)
			ce.Args["quota"] = formatFloat(ev.B)
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

func parseArgs(args map[string]string) (Event, error) {
	var ev Event
	cycle, err := strconv.ParseUint(args["cycle"], 10, 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad cycle %q: %w", args["cycle"], err)
	}
	kind, ok := KindFromString(args["kind"])
	if !ok {
		return ev, fmt.Errorf("obs: unknown kind %q", args["kind"])
	}
	thread, err := strconv.ParseInt(args["thread"], 10, 32)
	if err != nil {
		return ev, fmt.Errorf("obs: bad thread %q: %w", args["thread"], err)
	}
	cause, ok := CauseFromString(args["cause"])
	if !ok {
		return ev, fmt.Errorf("obs: unknown cause %q", args["cause"])
	}
	a, err := strconv.ParseFloat(args["a"], 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad a %q: %w", args["a"], err)
	}
	b, err := strconv.ParseFloat(args["b"], 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad b %q: %w", args["b"], err)
	}
	n, err := strconv.ParseUint(args["n"], 10, 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad n %q: %w", args["n"], err)
	}
	ev = Event{Cycle: cycle, Kind: kind, Cause: cause, Thread: int32(thread), A: a, B: b, N: n}
	return ev, nil
}

// ReadChromeTrace parses a file written by WriteChromeTrace back into
// events, skipping presentation-only records (metadata and synthesized
// dispatch spans). Malformed input returns an error, never panics.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	events, _, err := ReadChromeTraceMeta(r)
	return events, err
}

// ReadChromeTraceMeta is ReadChromeTrace that also recovers the export
// metadata: the drop count from otherData and the thread-track labels
// from the thread_name metadata records.
func ReadChromeTraceMeta(r io.Reader) ([]Event, TraceMeta, error) {
	var meta TraceMeta
	var tr chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, meta, fmt.Errorf("obs: chrome trace: %w", err)
	}
	if s, ok := tr.OtherData[droppedKey]; ok {
		d, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, meta, fmt.Errorf("obs: chrome trace: bad %s %q: %w", droppedKey, s, err)
		}
		meta.Dropped = d
	}
	var out []Event
	for _, ce := range tr.TraceEvents {
		if ce.Ph == "M" {
			if ce.Name == "thread_name" && ce.Tid >= 0 {
				for len(meta.ThreadNames) <= ce.Tid {
					meta.ThreadNames = append(meta.ThreadNames, "")
				}
				meta.ThreadNames[ce.Tid] = ce.Args["name"]
			}
			continue
		}
		if ce.Cat == "dispatch" {
			continue
		}
		if ce.Args == nil {
			return nil, meta, fmt.Errorf("obs: chrome trace: event %q has no args", ce.Name)
		}
		ev, err := parseArgs(ce.Args)
		if err != nil {
			return nil, meta, err
		}
		out = append(out, ev)
	}
	return out, meta, nil
}

// csvHeader is the column layout of the CSV exporter.
var csvHeader = []string{"cycle", "kind", "thread", "cause", "a", "b", "n"}

// WriteCSV renders events as CSV with a header row. Prefer
// WriteCSVMeta when the events came from a tracer ring that may have
// overflowed, so the drop count travels with the file.
func WriteCSV(w io.Writer, events []Event) error {
	return WriteCSVMeta(w, events, TraceMeta{})
}

// WriteCSVMeta is WriteCSV carrying export metadata: a non-zero
// meta.Dropped is recorded as a "# dropped=N" comment line before the
// header. ReadCSV skips comment lines, so meta-carrying files stay
// readable by meta-unaware consumers.
func WriteCSVMeta(w io.Writer, events []Event, meta TraceMeta) error {
	if meta.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "# dropped=%d\n", meta.Dropped); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			strconv.FormatUint(ev.Cycle, 10),
			ev.Kind.String(),
			strconv.FormatInt(int64(ev.Thread), 10),
			ev.Cause.String(),
			formatFloat(ev.A),
			formatFloat(ev.B),
			strconv.FormatUint(ev.N, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a file written by WriteCSV or WriteCSVMeta back into
// events, skipping metadata comment lines. Malformed input returns an
// error, never panics.
func ReadCSV(r io.Reader) ([]Event, error) {
	events, _, err := ReadCSVMeta(r)
	return events, err
}

// ReadCSVMeta is ReadCSV that also recovers the export metadata from
// the leading "# dropped=N" comment (zero when absent).
func ReadCSVMeta(r io.Reader) ([]Event, TraceMeta, error) {
	var meta TraceMeta
	br := bufio.NewReader(r)
	for {
		peek, err := br.Peek(1)
		if err != nil || peek[0] != '#' {
			break
		}
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			break
		}
		if rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(line, "#")), "dropped="); ok {
			d, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, meta, fmt.Errorf("obs: csv: bad dropped comment %q: %w", strings.TrimSpace(line), err)
			}
			meta.Dropped = d
		}
	}
	events, err := readCSVBody(br)
	return events, meta, err
}

func readCSVBody(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	cr.Comment = '#'
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("obs: csv: missing header")
	}
	for i, col := range csvHeader {
		if rows[0][i] != col {
			return nil, fmt.Errorf("obs: csv: header column %d is %q, want %q", i, rows[0][i], col)
		}
	}
	out := make([]Event, 0, len(rows)-1)
	for _, row := range rows[1:] {
		ev, err := parseArgs(map[string]string{
			"cycle": row[0], "kind": row[1], "thread": row[2],
			"cause": row[3], "a": row[4], "b": row[5], "n": row[6],
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}
