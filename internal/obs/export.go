package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Exporters for the event tracer.
//
// Chrome trace_event JSON: the emitted file is the object form
// ({"traceEvents": [...]}) understood by chrome://tracing and Perfetto.
// One cycle is rendered as one microsecond (the format's ts unit), so
// the timeline reads directly in cycles. Every traced Event becomes
// one trace_event object whose args carry the full record in exact
// string form ("cycle", "cause", "a", "b", "n") — ts/tid/dur are
// presentation only, so ReadChromeTrace round-trips exactly even for
// cycles beyond float64 precision and non-finite payloads. Two kinds
// of presentation-only extras are also emitted and skipped on read:
// thread_name metadata (ph "M") and per-dispatch spans (cat
// "dispatch") synthesized between consecutive switch records so thread
// occupancy shows as solid blocks on each thread's track.
//
// CSV: one event per line, "cycle,kind,thread,cause,a,b,n", with
// floats in strconv 'g'/-1 form so WriteCSV∘ReadCSV is the identity.

// chromeEvent is the subset of the trace_event schema we read back.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
	TraceEvents     []chromeEvent     `json:"traceEvents"`
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func eventArgs(ev Event) map[string]string {
	return map[string]string{
		"cycle":  strconv.FormatUint(ev.Cycle, 10),
		"kind":   ev.Kind.String(),
		"thread": strconv.FormatInt(int64(ev.Thread), 10),
		"cause":  ev.Cause.String(),
		"a":      formatFloat(ev.A),
		"b":      formatFloat(ev.B),
		"n":      strconv.FormatUint(ev.N, 10),
	}
}

// WriteChromeTrace renders events as Chrome trace_event JSON.
// threadNames, when non-empty, labels the per-thread tracks (index =
// thread id); it is presentation metadata and not needed to read the
// file back.
func WriteChromeTrace(w io.Writer, events []Event, threadNames []string) error {
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"tool": "soesim", "clock": "1 cycle = 1us"},
		TraceEvents:     make([]chromeEvent, 0, len(events)+len(threadNames)),
	}
	for i, name := range threadNames {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: i,
			Args: map[string]string{"name": name},
		})
	}
	var lastSwitch *Event
	for i := range events {
		ev := events[i]
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Cat:  ev.Kind.String(),
			Ph:   "i",
			Ts:   float64(ev.Cycle),
			Tid:  int(ev.Thread),
			S:    "t",
			Args: eventArgs(ev),
		}
		if ev.Cause != CauseNone {
			ce.Name = ev.Kind.String() + ":" + ev.Cause.String()
		}
		switch ev.Kind {
		case KindSwitch:
			if lastSwitch != nil && ev.Cycle >= lastSwitch.Cycle {
				// Span for the dispatch that just ended: the thread that
				// came in at the previous switch ran until this one.
				tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
					Name: "dispatch", Cat: "dispatch", Ph: "X",
					Ts: float64(lastSwitch.Cycle), Dur: float64(ev.Cycle - lastSwitch.Cycle),
					Tid: int(lastSwitch.N),
				})
			}
			lastSwitch = &events[i]
		case KindSkip:
			ce.Ph, ce.S = "X", ""
			ce.Dur = float64(ev.N)
			ce.Name = "fast-forward"
		case KindDeficit:
			ce.Ph, ce.S = "C", ""
			ce.Name = fmt.Sprintf("deficit.t%d", ev.Thread)
			ce.Args["deficit"] = formatFloat(ev.A)
			ce.Args["quota"] = formatFloat(ev.B)
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

func parseArgs(args map[string]string) (Event, error) {
	var ev Event
	cycle, err := strconv.ParseUint(args["cycle"], 10, 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad cycle %q: %w", args["cycle"], err)
	}
	kind, ok := KindFromString(args["kind"])
	if !ok {
		return ev, fmt.Errorf("obs: unknown kind %q", args["kind"])
	}
	thread, err := strconv.ParseInt(args["thread"], 10, 32)
	if err != nil {
		return ev, fmt.Errorf("obs: bad thread %q: %w", args["thread"], err)
	}
	cause, ok := CauseFromString(args["cause"])
	if !ok {
		return ev, fmt.Errorf("obs: unknown cause %q", args["cause"])
	}
	a, err := strconv.ParseFloat(args["a"], 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad a %q: %w", args["a"], err)
	}
	b, err := strconv.ParseFloat(args["b"], 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad b %q: %w", args["b"], err)
	}
	n, err := strconv.ParseUint(args["n"], 10, 64)
	if err != nil {
		return ev, fmt.Errorf("obs: bad n %q: %w", args["n"], err)
	}
	ev = Event{Cycle: cycle, Kind: kind, Cause: cause, Thread: int32(thread), A: a, B: b, N: n}
	return ev, nil
}

// ReadChromeTrace parses a file written by WriteChromeTrace back into
// events, skipping presentation-only records (metadata and synthesized
// dispatch spans). Malformed input returns an error, never panics.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	var tr chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("obs: chrome trace: %w", err)
	}
	var out []Event
	for _, ce := range tr.TraceEvents {
		if ce.Ph == "M" || ce.Cat == "dispatch" {
			continue
		}
		if ce.Args == nil {
			return nil, fmt.Errorf("obs: chrome trace: event %q has no args", ce.Name)
		}
		ev, err := parseArgs(ce.Args)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}

// csvHeader is the column layout of the CSV exporter.
var csvHeader = []string{"cycle", "kind", "thread", "cause", "a", "b", "n"}

// WriteCSV renders events as CSV with a header row.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			strconv.FormatUint(ev.Cycle, 10),
			ev.Kind.String(),
			strconv.FormatInt(int64(ev.Thread), 10),
			ev.Cause.String(),
			formatFloat(ev.A),
			formatFloat(ev.B),
			strconv.FormatUint(ev.N, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a file written by WriteCSV back into events.
// Malformed input returns an error, never panics.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("obs: csv: missing header")
	}
	for i, col := range csvHeader {
		if rows[0][i] != col {
			return nil, fmt.Errorf("obs: csv: header column %d is %q, want %q", i, rows[0][i], col)
		}
	}
	out := make([]Event, 0, len(rows)-1)
	for _, row := range rows[1:] {
		ev, err := parseArgs(map[string]string{
			"cycle": row[0], "kind": row[1], "thread": row[2],
			"cause": row[3], "a": row[4], "b": row[5], "n": row[6],
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}
