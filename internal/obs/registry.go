package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops), so
// instrumented code can hold counters unconditionally.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" for a nil counter).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a point-in-time signed metric (e.g. pool occupancy). All
// methods are safe for concurrent use and no-op on a nil receiver.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name ("" for a nil gauge).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Metric is one row of a registry snapshot.
type Metric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "counter" or "gauge"
	Value int64  `json:"value"`
}

// Registry is a named collection of counters and gauges. Get-or-create
// lookups take a mutex; the returned *Counter/*Gauge should be cached
// by hot paths so updates are a single atomic op. All methods are safe
// for concurrent use; a nil *Registry hands out nil (disabled)
// instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every registered metric sorted by name. Values are
// read atomically per metric; the snapshot as a whole is
// consistent-enough for progress reporting, not a transaction.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: int64(c.v.Load())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.v.Load()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTo renders the snapshot as "name value" lines, one metric per
// line, sorted by name.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, m := range r.Snapshot() {
		n, err := fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the snapshot as one line for logs.
func (r *Registry) String() string {
	var b strings.Builder
	for i, m := range r.Snapshot() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", m.Name, m.Value)
	}
	return b.String()
}
