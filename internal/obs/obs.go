// Package obs is the simulator's observability layer: a cheap
// always-on metrics registry (atomic counters and gauges, DESIGN.md
// §10) plus an opt-in structured event tracer whose ring-buffered
// records can be exported as Chrome trace_event JSON (openable in
// chrome://tracing or Perfetto) or CSV.
//
// The package is a leaf: it imports nothing from the simulator, so
// core, pipeline, sim and experiments can all depend on it. Every
// consumer follows the same contract: a nil *Tracer, *Registry,
// *Counter or *Gauge is a valid "disabled" instance whose methods
// no-op, so instrumented code needs no conditional plumbing and the
// disabled path costs one nil check per event site (never per cycle).
//
// Nothing in this package feeds back into simulation state: attaching
// or detaching an Observer never changes a produced sim.Result (the
// fast-forward equivalence matrix enforces this bit-identically).
package obs

// Observer bundles the two observability channels a simulation run can
// carry: an event tracer and a metrics registry. Either field may be
// nil independently; a nil *Observer disables both.
type Observer struct {
	Trace   *Tracer   // structured event stream (nil = tracing off)
	Metrics *Registry // counters/gauges (nil = no registry)
}

// Tracer returns the observer's tracer, nil-safe.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Registry returns the observer's metrics registry, nil-safe.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}
