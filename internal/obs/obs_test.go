package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	if c.Load() != 0 || g.Load() != 0 {
		t.Fatalf("nil instruments must read 0, got counter=%d gauge=%d", c.Load(), g.Load())
	}
	if c.Name() != "" || g.Name() != "" {
		t.Fatalf("nil instruments must have empty names")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot must be nil")
	}

	var tr *Tracer
	tr.Record(Event{Kind: KindSwitch})
	if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatalf("nil tracer must be disabled and empty")
	}
	tr.Reset()

	var o *Observer
	if o.Tracer() != nil || o.Registry() != nil {
		t.Fatalf("nil observer accessors must return nil")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("core.switch.miss")
	if again := r.Counter("core.switch.miss"); again != c {
		t.Fatalf("Counter must be get-or-create, got distinct pointers")
	}
	c.Add(41)
	c.Inc()
	g := r.Gauge("pool.active")
	g.Set(4)
	g.Add(-1)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot rows = %d, want 2", len(snap))
	}
	// Sorted by name: core.switch.miss before pool.active.
	if snap[0].Name != "core.switch.miss" || snap[0].Value != 42 || snap[0].Kind != "counter" {
		t.Fatalf("bad counter row: %+v", snap[0])
	}
	if snap[1].Name != "pool.active" || snap[1].Value != 3 || snap[1].Kind != "gauge" {
		t.Fatalf("bad gauge row: %+v", snap[1])
	}

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	want := "core.switch.miss 42\npool.active 3\n"
	if buf.String() != want {
		t.Fatalf("WriteTo = %q, want %q", buf.String(), want)
	}
	if s := r.String(); !strings.Contains(s, "core.switch.miss=42") {
		t.Fatalf("String() = %q missing counter", s)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Load(); got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
}

func TestTracerRingKeepsMostRecent(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Event{Cycle: uint64(i), Kind: KindSwitch})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(3 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest evicted first)", i, ev.Cycle, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("Reset must clear the ring")
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if got := len(tr.buf); got != DefaultTracerCap {
		t.Fatalf("default capacity = %d, want %d", got, DefaultTracerCap)
	}
}

func TestTracerRecordDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1024)
	allocs := testing.AllocsPerRun(100, func() {
		tr.Record(Event{Cycle: 1, Kind: KindSample, A: 1.5})
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v objects per call, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(100, func() {
		nilTr.Record(Event{Cycle: 1, Kind: KindSample})
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %v objects per call, want 0", allocs)
	}
}

func TestKindAndCauseNamesRoundTrip(t *testing.T) {
	for k := KindSwitch; k <= KindPhase; k++ {
		back, ok := KindFromString(k.String())
		if !ok || back != k {
			t.Fatalf("kind %d name %q does not round-trip", k, k.String())
		}
	}
	for c := CauseNone; c <= CauseMeasure; c++ {
		back, ok := CauseFromString(c.String())
		if !ok || back != c {
			t.Fatalf("cause %d name %q does not round-trip", c, c.String())
		}
	}
	if Kind(99).String() != "unknown" || Cause(99).String() != "unknown" {
		t.Fatalf("out-of-range values must render as unknown")
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatalf("unknown kind name must not parse")
	}
	if _, ok := CauseFromString("nope"); ok {
		t.Fatalf("unknown cause name must not parse")
	}
}

func sampleEvents() []Event {
	return []Event{
		{Cycle: 0, Kind: KindPhase, Cause: CauseMeasure, Thread: -1},
		{Cycle: 100, Kind: KindSwitch, Cause: CauseMiss, Thread: 0, A: 12.5, N: 1},
		{Cycle: 106, Kind: KindDeficit, Thread: 1, A: 1500, B: 1500},
		{Cycle: 900, Kind: KindSkip, Thread: 1, N: 250},
		{Cycle: 2000, Kind: KindSwitch, Cause: CauseQuota, Thread: 1, A: -1, N: 0},
		{Cycle: 250000, Kind: KindSample, Thread: 0, A: 2.38, B: 0.42, N: 105000},
		{Cycle: 250000, Kind: KindQuota, Thread: 0, A: 1666.7},
		{Cycle: 300000, Kind: KindSlice, Cause: CauseMeasure, Thread: -1, N: 1 << 20},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d != %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestCSVNonFiniteRoundTrip(t *testing.T) {
	events := []Event{{Kind: KindSample, A: math.NaN(), B: math.Inf(1)}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back[0].A) || !math.IsInf(back[0].B, 1) {
		t.Fatalf("non-finite payloads must survive CSV: %+v", back[0])
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, []string{"gcc", "eon"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d != %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestChromeTraceStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents(), []string{"gcc", "eon"}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`"traceEvents"`,    // object form, not the bare array
		`"thread_name"`,    // track labels
		`"switch:miss"`,    // miss-induced switch
		`"switch:quota"`,   // forced switch
		`"deficit.t1"`,     // deficit counter track
		`"fast-forward"`,   // skip span
		`"cat":"dispatch"`, // synthesized occupancy spans
		`"ph":"X"`, `"ph":"i"`, `"ph":"C"`, `"ph":"M"`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("chrome trace missing %s in:\n%s", want, s)
		}
	}
}

func TestReadersRejectMalformedInput(t *testing.T) {
	badCSV := []string{
		"",                            // empty: no header
		"cycle,kind\n1,switch",        // wrong column count
		"x,kind,thread,cause,a,b,n\n", // wrong header name
		"cycle,kind,thread,cause,a,b,n\nnope,switch,0,miss,0,0,0", // bad cycle
		"cycle,kind,thread,cause,a,b,n\n1,bogus,0,miss,0,0,0",     // bad kind
		"cycle,kind,thread,cause,a,b,n\n1,switch,0,bogus,0,0,0",   // bad cause
		"cycle,kind,thread,cause,a,b,n\n1,switch,zero,miss,0,0,0", // bad thread
		"cycle,kind,thread,cause,a,b,n\n1,switch,0,miss,x,0,0",    // bad float
	}
	for _, in := range badCSV {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadCSV accepted malformed input %q", in)
		}
	}
	badJSON := []string{
		"",
		"{",
		`{"traceEvents":[{"name":"switch","args":{"cycle":"x","kind":"switch","thread":"0","cause":"miss","a":"0","b":"0","n":"0"}}]}`,
		`{"traceEvents":[{"name":"switch","ph":"i"}]}`, // no args
	}
	for _, in := range badJSON {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Fatalf("ReadChromeTrace accepted malformed input %q", in)
		}
	}
}
