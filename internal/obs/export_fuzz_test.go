package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// eventsEqual compares events treating NaN payloads as equal to
// themselves (the exporters preserve NaN, but NaN != NaN).
func eventsEqual(a, b Event) bool {
	feq := func(x, y float64) bool {
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return x == y
	}
	return a.Cycle == b.Cycle && a.Kind == b.Kind && a.Cause == b.Cause &&
		a.Thread == b.Thread && a.N == b.N && feq(a.A, b.A) && feq(a.B, b.B)
}

// fuzzEvent clamps fuzz inputs onto the valid enum ranges so the
// round-trip property is tested over encodable events; out-of-range
// enums are rejected by the writers' String() -> "unknown" mapping and
// covered by the malformed-input fuzzers below.
func fuzzEvent(cycle uint64, kind, cause uint8, thread int32, a, b float64, n uint64) Event {
	return Event{
		Cycle:  cycle,
		Kind:   Kind(kind%uint8(KindPhase)) + KindSwitch,
		Cause:  Cause(cause % uint8(CauseMeasure+1)),
		Thread: thread,
		A:      a,
		B:      b,
		N:      n,
	}
}

func FuzzCSVRoundTrip(f *testing.F) {
	f.Add(uint64(100), uint8(0), uint8(1), int32(0), 1.5, -2.25, uint64(7))
	f.Add(uint64(0), uint8(3), uint8(0), int32(-1), math.NaN(), math.Inf(-1), uint64(0))
	f.Add(^uint64(0), uint8(6), uint8(7), int32(1), 1e308, 5e-324, ^uint64(0))
	f.Fuzz(func(t *testing.T, cycle uint64, kind, cause uint8, thread int32, a, b float64, n uint64) {
		want := fuzzEvent(cycle, kind, cause, thread, a, b, n)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, []Event{want}); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadCSV of our own output: %v\n%s", err, buf.String())
		}
		if len(got) != 1 || !eventsEqual(got[0], want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}

func FuzzChromeTraceRoundTrip(f *testing.F) {
	f.Add(uint64(100), uint8(0), uint8(1), int32(0), 1.5, -2.25, uint64(7))
	f.Add(uint64(0), uint8(1), uint8(2), int32(-1), math.NaN(), math.Inf(1), uint64(3))
	f.Add(^uint64(0), uint8(4), uint8(6), int32(1), 1e308, 5e-324, ^uint64(0))
	f.Fuzz(func(t *testing.T, cycle uint64, kind, cause uint8, thread int32, a, b float64, n uint64) {
		want := fuzzEvent(cycle, kind, cause, thread, a, b, n)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, []Event{want}, []string{"t0", "t1"}); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadChromeTrace of our own output: %v\n%s", err, buf.String())
		}
		if len(got) != 1 || !eventsEqual(got[0], want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}

func FuzzReadCSVMalformed(f *testing.F) {
	f.Add("cycle,kind,thread,cause,a,b,n\n1,switch,0,miss,0,0,0")
	f.Add("cycle,kind,thread,cause,a,b,n\n1,bogus,0,miss,0,0,0")
	f.Add("")
	f.Add("a,b\n1,2")
	f.Add("cycle,kind,thread,cause,a,b,n\n18446744073709551616,switch,0,miss,0,0,0")
	f.Fuzz(func(t *testing.T, in string) {
		// Must never panic; on success the decoded events must re-encode.
		events, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, events); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
	})
}

func FuzzReadChromeTraceMalformed(f *testing.F) {
	f.Add(`{"traceEvents":[]}`)
	f.Add(`{"traceEvents":[{"name":"x","ph":"M"}]}`)
	f.Add(`{"traceEvents":[{"name":"switch","args":{"cycle":"1","kind":"switch","thread":"0","cause":"miss","a":"0","b":"0","n":"0"}}]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, in string) {
		events, err := ReadChromeTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, events, nil); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
	})
}
