package obs

import (
	"bytes"
	"strings"
	"testing"
)

// Regression: an export of a tracer that overflowed must carry the
// drop count in the artifact itself. Before the fix both exporters
// emitted a truncated event stream indistinguishable from a complete
// one.
func TestChromeTraceCarriesDropCount(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	meta := TraceMeta{ThreadNames: []string{"gcc", "eon"}, Dropped: 37}
	if err := WriteChromeTraceMeta(&buf, events, meta); err != nil {
		t.Fatal(err)
	}
	back, got, err := ReadChromeTraceMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dropped != 37 {
		t.Fatalf("Dropped round-tripped as %d, want 37", got.Dropped)
	}
	if len(got.ThreadNames) != 2 || got.ThreadNames[0] != "gcc" || got.ThreadNames[1] != "eon" {
		t.Fatalf("ThreadNames round-tripped as %v", got.ThreadNames)
	}
	if len(back) != len(events) {
		t.Fatalf("events round-tripped as %d, want %d", len(back), len(events))
	}
}

func TestCSVCarriesDropCount(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteCSVMeta(&buf, events, TraceMeta{Dropped: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# dropped=5\n") {
		t.Fatalf("CSV does not lead with the drop comment:\n%s", buf.String())
	}

	back, meta, err := ReadCSVMeta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Dropped != 5 {
		t.Fatalf("Dropped round-tripped as %d, want 5", meta.Dropped)
	}
	if len(back) != len(events) {
		t.Fatalf("events round-tripped as %d, want %d", len(back), len(events))
	}

	// Meta-unaware readers still parse meta-carrying files.
	plain, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV choked on the metadata comment: %v", err)
	}
	if len(plain) != len(events) {
		t.Fatalf("ReadCSV returned %d events, want %d", len(plain), len(events))
	}
}

// A clean export (no drops) stays byte-compatible with the pre-meta
// format: no comment line, no otherData key.
func TestNoDropsMeansNoMetadata(t *testing.T) {
	events := sampleEvents()
	var csvBuf, jsonBuf bytes.Buffer
	if err := WriteCSVMeta(&csvBuf, events, TraceMeta{}); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(csvBuf.String(), "#") {
		t.Fatal("drop-free CSV export grew a comment line")
	}
	if err := WriteChromeTraceMeta(&jsonBuf, events, TraceMeta{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jsonBuf.String(), droppedKey) {
		t.Fatalf("drop-free chrome export carries %q", droppedKey)
	}
	if _, meta, err := ReadCSVMeta(bytes.NewReader(csvBuf.Bytes())); err != nil || meta.Dropped != 0 {
		t.Fatalf("clean CSV meta = (%+v, %v)", meta, err)
	}
}
