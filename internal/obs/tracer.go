package obs

// Kind identifies the type of one traced event.
type Kind uint8

const (
	// KindSwitch is a thread switch: Thread is the outgoing thread,
	// Cause says why (miss-induced vs forced), N is the incoming
	// thread index, A the outgoing thread's deficit at the switch.
	KindSwitch Kind = iota + 1
	// KindSample is one thread's slice of a Δ-cycle counter sample:
	// A = estimated single-thread IPC (Eq. 13), B = window IPC,
	// N = instructions retired in the window.
	KindSample
	// KindQuota is a per-thread IPSw recomputation (Eq. 9) at a Δ
	// boundary: A = the new quota (0 = no forced switches).
	KindQuota
	// KindDeficit is a deficit-counter update at switch-in (§3.2):
	// Thread is the incoming thread, A = the new deficit, B = its
	// quota.
	KindDeficit
	// KindSkip is one fast-forward jump over certified-idle cycles
	// (DESIGN.md §9): Cycle is the start of the window, N its length,
	// Thread the running thread.
	KindSkip
	// KindSlice marks the end of one watchdog execution slice in
	// sim.RunContext: Cause carries the phase, N the slice budget.
	KindSlice
	// KindPhase marks a measurement-protocol phase start: Cause is
	// CauseWarmup or CauseMeasure.
	KindPhase
)

var kindNames = map[Kind]string{
	KindSwitch:  "switch",
	KindSample:  "sample",
	KindQuota:   "quota",
	KindDeficit: "deficit",
	KindSkip:    "skip",
	KindSlice:   "slice",
	KindPhase:   "phase",
}

// String returns the stable wire name used by the exporters.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return k, true
		}
	}
	return 0, false
}

// Cause qualifies an event: the trigger of a thread switch, or the
// protocol phase of a slice/phase marker.
type Cause uint8

const (
	CauseNone      Cause = iota
	CauseMiss            // last-level cache miss at the ROB head
	CauseQuota           // deficit counter exhausted (forced fairness switch)
	CauseMaxCycles       // max-cycles safety quota
	CausePause           // retired PAUSE hint (§6 extension)
	CauseL1Miss          // unresolved L1 miss at the head (§6 extension)
	CauseWarmup          // phase marker: timing warmup (excluded from stats)
	CauseMeasure         // phase marker: measured run
)

var causeNames = map[Cause]string{
	CauseNone:      "",
	CauseMiss:      "miss",
	CauseQuota:     "quota",
	CauseMaxCycles: "max-cycles",
	CausePause:     "pause",
	CauseL1Miss:    "l1-miss",
	CauseWarmup:    "warmup",
	CauseMeasure:   "measure",
}

// String returns the stable wire name used by the exporters.
func (c Cause) String() string {
	if s, ok := causeNames[c]; ok {
		return s
	}
	return "unknown"
}

// CauseFromString inverts String; ok is false for unknown names.
func CauseFromString(s string) (Cause, bool) {
	for c, name := range causeNames {
		if name == s {
			return c, true
		}
	}
	return 0, false
}

// Event is one fixed-size traced record. The payload fields A, B and N
// are interpreted per Kind (see the Kind constants); Thread is -1 for
// events not attributed to a thread.
type Event struct {
	Cycle  uint64
	Kind   Kind
	Cause  Cause
	Thread int32
	A, B   float64
	N      uint64
}

// DefaultTracerCap is the default ring capacity, sized so a quick-scale
// pair run (a few thousand switches plus tens of samples) fits with
// ample slack while bounding memory to tens of MB at worst.
const DefaultTracerCap = 1 << 20

// Tracer is a fixed-capacity flight recorder of Events. The ring keeps
// the most recent events; overflow evicts the oldest and counts into
// Dropped. Record appends with no allocation — the buffer is
// preallocated — and a nil *Tracer is a valid disabled tracer whose
// Record is a single nil check, so instrumented hot paths stay within
// the ≤2% disabled-overhead budget.
//
// A Tracer is NOT safe for concurrent use: it belongs to one
// simulation run, which is single-goroutine by construction. Exporters
// take the Events() copy, which is safe to hand elsewhere.
type Tracer struct {
	buf     []Event
	head    int // next write position
	n       int // events currently stored (<= cap)
	dropped uint64
}

// NewTracer returns a tracer holding up to capacity events
// (DefaultTracerCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Record appends ev, evicting the oldest event when full. No-op on a
// nil tracer.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.buf[t.head] = ev
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events were evicted by ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the buffered events in record order (oldest first) as
// a fresh slice.
func (t *Tracer) Events() []Event {
	if t == nil || t.n == 0 {
		return nil
	}
	out := make([]Event, t.n)
	start := t.head - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// Reset drops all buffered events and the drop count, keeping the
// allocated buffer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.head, t.n, t.dropped = 0, 0, 0
}
