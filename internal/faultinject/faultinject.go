// Package faultinject provides deterministic, seeded fault injection
// for the experiment engine's robustness tests.
//
// The engine's resilience claims — corrupt cache entries degrade to
// misses, failed writes degrade to warnings, worker panics degrade to
// errors, and none of them ever degrade to a WRONG result — are only
// trustworthy if the faults that exercise them are reproducible. Every
// decision here is a pure function of (seed, site, call index) via the
// counter-mode generators in internal/rng, so a failing fault-injection
// test replays bit-identically from its seed.
//
// An Injector is a set of named sites ("cache.write", "worker.panic",
// ...), each with an arming Plan. Production code calls the
// nil-receiver-safe hooks (Fail, Sleep, MaybePanic) unconditionally;
// with a nil or unarmed Injector they cost one predictable branch.
package faultinject

import (
	"fmt"
	"os"
	"sync"
	"time"

	"soemt/internal/rng"
)

// Plan arms one site. Exactly one of Every/Prob selects the firing
// pattern: Every fires deterministically on every Nth call (1 = every
// call); otherwise Prob fires pseudo-randomly with the given
// per-call probability, deterministic in (seed, site, call index).
type Plan struct {
	Every uint64        // fire on calls where (index+1) % Every == 0; 0 = use Prob
	Prob  float64       // per-call firing probability in [0, 1]
	Delay time.Duration // injected sleep for Sleep sites
	Err   error         // error returned by Fail sites (defaults to ErrInjected)
}

// ErrInjected is the default error returned by armed Fail sites.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// Injector decides deterministically whether each call to a named
// site faults. The zero value and the nil pointer are inert: every
// hook is safe to call and never fires.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	plans map[string]Plan
	calls map[string]uint64 // per-site call counter
	fired map[string]uint64 // per-site fault counter
}

// New returns an Injector whose decisions derive from seed.
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		plans: make(map[string]Plan),
		calls: make(map[string]uint64),
		fired: make(map[string]uint64),
	}
}

// Arm installs (or replaces) the plan for site.
func (in *Injector) Arm(site string, p Plan) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[site] = p
	return in
}

// Disarm removes the plan for site.
func (in *Injector) Disarm(site string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.plans, site)
}

// Hit reports whether this call to site faults, advancing the site's
// call counter. Nil-receiver safe. The decision is a pure function of
// (seed, site, call index): replaying the same sequence of calls
// yields the same sequence of faults.
func (in *Injector) Hit(site string) bool {
	if in == nil {
		return false
	}
	hit, _ := in.decide(site)
	return hit
}

func (in *Injector) decide(site string) (bool, Plan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	p, armed := in.plans[site]
	n := in.calls[site]
	in.calls[site] = n + 1
	if !armed {
		return false, Plan{}
	}
	var hit bool
	if p.Every > 0 {
		hit = (n+1)%p.Every == 0
	} else {
		hit = rng.Float64At(rng.Sub(in.seed, site), n) < p.Prob
	}
	if hit {
		in.fired[site]++
	}
	return hit, p
}

// Fail returns the site's injected error when this call faults, and
// nil otherwise. Nil-receiver safe.
func (in *Injector) Fail(site string) error {
	if in == nil {
		return nil
	}
	hit, p := in.decide(site)
	if !hit {
		return nil
	}
	if p.Err != nil {
		return p.Err
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}

// Sleep blocks for the site's configured delay when this call faults.
// Nil-receiver safe.
func (in *Injector) Sleep(site string) {
	if in == nil {
		return
	}
	if hit, p := in.decide(site); hit && p.Delay > 0 {
		time.Sleep(p.Delay)
	}
}

// MaybePanic panics with a labeled value when this call faults —
// exercising the engine's panic-recovery boundaries. Nil-receiver
// safe.
func (in *Injector) MaybePanic(site string) {
	if in == nil {
		return
	}
	if hit, _ := in.decide(site); hit {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
}

// Calls returns how many times site has been consulted.
func (in *Injector) Calls(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[site]
}

// Fired returns how many times site has faulted.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// CorruptFile overwrites a deterministic region of the file with
// seeded garbage, simulating on-disk corruption (torn writes, bit
// rot). The region and bytes derive from seed, so a corruption test
// replays identically.
func CorruptFile(path string, seed uint64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return fmt.Errorf("faultinject: %s is empty, nothing to corrupt", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	// Corrupt up to 64 bytes starting at a seeded offset.
	n := int64(rng.Uint64At(seed, 0)%64) + 1
	off := int64(rng.Uint64At(seed, 1) % uint64(size))
	if off+n > size {
		n = size - off
	}
	garbage := make([]byte, n)
	for i := range garbage {
		garbage[i] = byte(rng.Uint64At(seed, uint64(2+i)))
	}
	_, err = f.WriteAt(garbage, off)
	return err
}

// TruncateFile cuts the file to frac of its current size (clamped to
// [0, 1]), simulating a partial write that lost its tail.
func TruncateFile(path string, frac float64) error {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.Truncate(path, int64(float64(info.Size())*frac))
}
