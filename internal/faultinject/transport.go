package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"

	"soemt/internal/rng"
)

// Network fault sites consumed by RoundTripper. Each site is also
// consulted with an "@host" suffix (e.g. "peer.drop@127.0.0.1:18081"),
// so a test can target one node — the deterministic stand-in for "this
// machine's link to that rack is bad" — while the bare site models
// fleet-wide weather.
const (
	// SitePeerLatency sleeps the armed Delay before the request is
	// sent (slow peer / congested link).
	SitePeerLatency = "peer.latency"
	// SitePeerDrop fails the request with a connection error WITHOUT
	// forwarding it: the modeled packet dies on the wire, so the far
	// node never sees it and a retry elsewhere cannot double-execute.
	SitePeerDrop = "peer.drop"
	// SitePeer5xx synthesizes a 500 response WITHOUT forwarding the
	// request (a proxy or sick front-end failing before admission).
	// Like SitePeerDrop, the far node never processes the request, so
	// retrying on another node keeps cluster-wide dedup exact.
	SitePeer5xx = "peer.5xx"
	// SitePeerCorrupt forwards the request but deterministically
	// flips bytes in the response body (bit rot, torn proxy buffers).
	// The sha256 verification on peer cache fills must catch every
	// such corruption and degrade to a local run — never to a wrong
	// result.
	SitePeerCorrupt = "peer.corrupt"
)

// maxCorruptBody bounds how much of a response RoundTripper buffers
// in order to corrupt it; larger bodies pass through untouched.
const maxCorruptBody = 64 << 20

// CorruptBytes flips a seeded selection of bytes in data in place —
// the in-memory sibling of CorruptFile. The flipped positions and XOR
// masks are pure functions of (seed, index), so a corruption replays
// bit-identically, and every flip XORs with a non-zero mask, so data
// of length >= 1 is guaranteed to actually change.
func CorruptBytes(data []byte, seed, index uint64) {
	if len(data) == 0 {
		return
	}
	n := int(rng.Uint64At(seed, index*97)%8) + 1 // 1..8 flips
	for i := 0; i < n; i++ {
		pos := rng.Uint64At(seed, index*97+uint64(2*i+1)) % uint64(len(data))
		mask := byte(rng.Uint64At(seed, index*97+uint64(2*i+2)))
		if mask == 0 {
			mask = 0xA5
		}
		data[pos] ^= mask
	}
}

// faultTransport injects network faults between an HTTP client and
// its transport.
type faultTransport struct {
	base http.RoundTripper
	inj  *Injector
}

// RoundTripper wraps base with the injector's network sites. A nil
// injector returns base unchanged (zero overhead in production); a
// nil base wraps http.DefaultTransport. Sites fire in this order per
// request: peer.latency (sleep), peer.drop (connection error),
// peer.5xx (synthesized 500), then the real round trip, then
// peer.corrupt (response-body corruption). Both the bare site and its
// "@host" variant are consulted, and each call advances both
// counters, so a replay with the same seed and call sequence faults
// identically.
func RoundTripper(base http.RoundTripper, inj *Injector) http.RoundTripper {
	if inj == nil {
		if base == nil {
			return http.DefaultTransport
		}
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{base: base, inj: inj}
}

// hit consults site and site@host, advancing both counters.
func (t *faultTransport) hit(site, host string) bool {
	a := t.inj.Hit(site)
	b := t.inj.Hit(site + "@" + host)
	return a || b
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.inj.Sleep(SitePeerLatency)
	t.inj.Sleep(SitePeerLatency + "@" + host)

	if t.hit(SitePeerDrop, host) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("faultinject: injected connection drop to %s", host)
	}
	if t.hit(SitePeer5xx, host) {
		if req.Body != nil {
			req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"faultinject: injected 5xx for %s"}`, host)
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if t.hit(SitePeerCorrupt, host) {
		t.corruptBody(resp)
	}
	return resp, nil
}

// corruptBody buffers the response body and flips seeded bytes in it.
// The corruption index is the site's fired count, so consecutive
// corruptions differ but replay identically.
func (t *faultTransport) corruptBody(resp *http.Response) {
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCorruptBody))
	resp.Body.Close()
	if err != nil || len(data) == 0 {
		resp.Body = io.NopCloser(bytes.NewReader(data))
		return
	}
	idx := t.inj.Fired(SitePeerCorrupt) + t.inj.Fired(SitePeerCorrupt+"@"+resp.Request.URL.Host)
	CorruptBytes(data, rng.Sub(t.inj.seed, SitePeerCorrupt), idx)
	resp.Body = io.NopCloser(bytes.NewReader(data))
	resp.ContentLength = int64(len(data))
}
