package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func clientVia(inj *Injector) *http.Client {
	return &http.Client{Transport: RoundTripper(nil, inj)}
}

func TestTransportNilInjectorPassesThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "payload")
	}))
	defer ts.Close()
	resp, err := clientVia(nil).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "payload" {
		t.Fatalf("body = %q", body)
	}
}

func TestTransportDropNeverReachesServer(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer ts.Close()

	inj := New(11).Arm(SitePeerDrop, Plan{Every: 2}) // every 2nd request dies
	cl := clientVia(inj)
	var drops int
	for i := 0; i < 6; i++ {
		resp, err := cl.Get(ts.URL)
		if err != nil {
			if !strings.Contains(err.Error(), "injected connection drop") {
				t.Fatalf("request %d: unexpected error %v", i, err)
			}
			drops++
			continue
		}
		resp.Body.Close()
	}
	if drops != 3 {
		t.Fatalf("drops = %d, want 3 (Every:2 over 6 calls)", drops)
	}
	// The invariant the chaos suite depends on: a dropped request was
	// never processed, so retrying it elsewhere cannot double-execute.
	if served != 3 {
		t.Fatalf("server served %d requests, want 3", served)
	}
}

func TestTransport5xxSynthesizedBeforeForwarding(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer ts.Close()

	inj := New(12).Arm(SitePeer5xx, Plan{Every: 1})
	resp, err := clientVia(inj).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("faultinject")) {
		t.Fatalf("synthesized body = %q", body)
	}
	if served != 0 {
		t.Fatalf("server processed %d requests behind an injected 5xx, want 0", served)
	}
}

func TestTransportCorruptFlipsResponseBytesDeterministically(t *testing.T) {
	const payload = `{"schema":"v1","key":"abc","sum":"deadbeef","result":{"ipc":1.5}}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	read := func(seed uint64) []byte {
		inj := New(seed).Arm(SitePeerCorrupt, Plan{Every: 1})
		resp, err := clientVia(inj).Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	a := read(99)
	if bytes.Equal(a, []byte(payload)) {
		t.Fatal("armed peer.corrupt left the body untouched")
	}
	if !bytes.Equal(a, read(99)) {
		t.Fatal("same seed produced different corruptions")
	}
	if bytes.Equal(read(99), read(100)) {
		t.Fatal("different seeds produced identical corruptions")
	}
}

func TestTransportPerHostSiteTargetsOneNode(t *testing.T) {
	var servedA, servedB int
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { servedA++ }))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { servedB++ }))
	defer b.Close()

	hostA := strings.TrimPrefix(a.URL, "http://")
	inj := New(5).Arm(SitePeerDrop+"@"+hostA, Plan{Every: 1})
	cl := clientVia(inj)

	if _, err := cl.Get(a.URL); err == nil {
		t.Fatal("request to the targeted host survived peer.drop@host")
	}
	resp, err := cl.Get(b.URL)
	if err != nil {
		t.Fatalf("request to the untargeted host failed: %v", err)
	}
	resp.Body.Close()
	if servedA != 0 || servedB != 1 {
		t.Fatalf("served A=%d B=%d, want 0/1", servedA, servedB)
	}
}

func TestTransportLatencySleepsBeforeSend(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	inj := New(3).Arm(SitePeerLatency, Plan{Every: 1, Delay: 40 * time.Millisecond})
	start := time.Now()
	resp, err := clientVia(inj).Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("request completed in %s, want >= 40ms injected latency", d)
	}
}

func TestCorruptBytesProperties(t *testing.T) {
	CorruptBytes(nil, 1, 0) // must not panic
	one := []byte{0x00}
	CorruptBytes(one, 1, 0)
	if one[0] == 0x00 {
		t.Fatal("single-byte buffer not corrupted")
	}
	a := bytes.Repeat([]byte("x"), 256)
	b := bytes.Repeat([]byte("x"), 256)
	CorruptBytes(a, 7, 1)
	CorruptBytes(b, 7, 1)
	if !bytes.Equal(a, b) {
		t.Fatal("same (seed, index) produced different corruptions")
	}
	c := bytes.Repeat([]byte("x"), 256)
	CorruptBytes(c, 7, 2)
	if bytes.Equal(a, c) {
		t.Fatal("different indexes produced identical corruptions")
	}
}
