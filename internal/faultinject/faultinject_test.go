package faultinject

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Hit("x") {
		t.Error("nil injector fired")
	}
	if err := in.Fail("x"); err != nil {
		t.Error("nil injector failed")
	}
	in.Sleep("x")      // must not panic
	in.MaybePanic("x") // must not panic
	if in.Calls("x") != 0 || in.Fired("x") != 0 {
		t.Error("nil injector counted")
	}
}

func TestUnarmedSiteNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 1000; i++ {
		if in.Hit("unarmed") {
			t.Fatal("unarmed site fired")
		}
	}
	if in.Calls("unarmed") != 1000 {
		t.Errorf("calls = %d, want 1000", in.Calls("unarmed"))
	}
}

func TestEveryNthFiresDeterministically(t *testing.T) {
	in := New(7).Arm("s", Plan{Every: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, in.Hit("s"))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("call %d: hit=%v want %v", i, pattern[i], want[i])
		}
	}
	if in.Fired("s") != 3 {
		t.Errorf("fired = %d, want 3", in.Fired("s"))
	}
}

func TestProbabilisticFiringIsSeedDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed).Arm("s", Plan{Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Hit("s")
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns")
	}
	// Sanity: a 0.3 plan over 200 calls fires a plausible number of times.
	fired := 0
	for _, h := range a {
		if h {
			fired++
		}
	}
	if fired < 30 || fired > 90 {
		t.Errorf("fired %d/200 at Prob=0.3, implausible", fired)
	}
}

func TestFailReturnsPlanError(t *testing.T) {
	custom := errors.New("disk on fire")
	in := New(1).Arm("w", Plan{Every: 1, Err: custom})
	if err := in.Fail("w"); !errors.Is(err, custom) {
		t.Fatalf("want custom error, got %v", err)
	}
	in2 := New(1).Arm("w", Plan{Every: 1})
	if err := in2.Fail("w"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
}

func TestMaybePanicPanics(t *testing.T) {
	in := New(1).Arm("p", Plan{Every: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected injected panic")
		}
	}()
	in.MaybePanic("p")
}

func TestSleepDelays(t *testing.T) {
	in := New(1).Arm("d", Plan{Every: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	in.Sleep("d")
	if time.Since(start) < 15*time.Millisecond {
		t.Error("injected delay too short")
	}
}

func TestCorruptFileIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	content := bytes.Repeat([]byte("soemt-cache-entry "), 64)
	write := func(name string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := write("a"), write("b")
	if err := CorruptFile(a, 99); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(b, 99); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(da, content) {
		t.Error("corruption did not change the file")
	}
}

func TestTruncateFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(p, make([]byte, 1000), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(p, 0.4); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 400 {
		t.Errorf("size = %d, want 400", info.Size())
	}
}

func TestConcurrentUse(t *testing.T) {
	in := New(5).Arm("c", Plan{Prob: 0.5})
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				in.Hit("c")
			}
		}()
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if in.Calls("c") != 8000 {
		t.Errorf("calls = %d, want 8000", in.Calls("c"))
	}
}
