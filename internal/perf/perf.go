// Package perf is the simulator's benchmark harness: it times
// simulation runs under both execution engines (idle fast-forward and
// the cycle-by-cycle reference), records wall time, simulated
// cycles/sec, retired instructions/sec and allocation deltas, and
// writes the results to numbered BENCH_<n>.json files so the perf
// trajectory of the simulator is measured rather than guessed.
//
// Regression checking deliberately compares the fast-forward speedup
// ratio (fast-forward vs reference on the same host, same binary, same
// instant) rather than absolute cycles/sec: the ratio cancels host
// speed, so a committed baseline stays meaningful on any CI runner.
package perf

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// Entry is one timed simulation run.
type Entry struct {
	Scenario string  `json:"scenario"`
	Engine   string  `json:"engine"` // "fast-forward" or "cycle-by-cycle"
	Seconds  float64 `json:"seconds"`

	SimCycles    uint64  `json:"sim_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Instrs       uint64  `json:"instrs"`
	InstrsPerSec float64 `json:"instrs_per_sec"`

	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
}

// Report is the content of one BENCH_<n>.json.
type Report struct {
	CreatedAt string  `json:"created_at"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Scale     string  `json:"scale"`
	Entries   []Entry `json:"entries"`

	// Speedups maps scenario name to the fast-forward wall-clock
	// speedup over the cycle-by-cycle reference (ref seconds / ff
	// seconds). Present only for scenarios run under both engines.
	Speedups map[string]float64 `json:"speedups,omitempty"`

	// ObsOverhead maps scenario name to the wall-time ratio of a fully
	// observed run (event tracer + metrics registry attached) over the
	// same run with observability detached, best-of-N both sides. The
	// detached run IS the production configuration, so this ratio bounds
	// what DESIGN.md §10's "≤2% when disabled" budget actually buys:
	// the disabled cost (one nil check per event site) cannot exceed
	// the full enabled cost measured here.
	ObsOverhead map[string]float64 `json:"obs_overhead,omitempty"`
}

// NewReport stamps a report with build metadata.
func NewReport(scale string) *Report {
	return &Report{
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     scale,
		Speedups:  map[string]float64{},
	}
}

// memDelta returns after-before clamped at zero. runtime.MemStats
// counters are cumulative and should only grow, but a clamped delta
// costs nothing and keeps a report free of 2^64-ish garbage if a
// counter ever goes backwards (stats snapshotted around a GC, or a
// future runtime changing counter semantics). A nonsense alloc column
// is worse than a zero: it poisons report diffs silently.
func memDelta(after, before uint64) uint64 {
	if after < before {
		return 0
	}
	return after - before
}

// rate returns n/secs, or 0 when the elapsed time is too small (or
// negative, after clock steps) to produce a finite, meaningful rate.
// Without the guard a ~0s run writes +Inf into BENCH_<n>.json, which
// is not valid JSON (encoding/json rejects it) and would poison every
// later Compare against that report.
func rate(n uint64, secs float64) float64 {
	if secs <= 0 {
		return 0
	}
	r := float64(n) / secs
	if math.IsInf(r, 0) || math.IsNaN(r) {
		return 0
	}
	return r
}

// Measure times fn and fills a raw Entry. fn returns the simulated
// cycle and instruction counts of the run it performed. Allocation
// deltas come from runtime.MemStats and include everything fn did.
func Measure(scenario, engine string, fn func() (cycles, instrs uint64, err error)) (Entry, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	cycles, instrs, err := fn()
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return Entry{}, fmt.Errorf("perf: %s/%s: %w", scenario, engine, err)
	}
	e := Entry{
		Scenario:     scenario,
		Engine:       engine,
		Seconds:      secs,
		SimCycles:    cycles,
		Instrs:       instrs,
		AllocBytes:   memDelta(after.TotalAlloc, before.TotalAlloc),
		AllocObjects: memDelta(after.Mallocs, before.Mallocs),
	}
	e.CyclesPerSec = rate(cycles, secs)
	e.InstrsPerSec = rate(instrs, secs)
	return e, nil
}

// MeasureN runs Measure iters times and returns the median-by-wall-time
// entry. Single timed runs on a shared host swing by double-digit
// percentages; the median of three or more is stable enough to gate
// on. iters < 1 is treated as 1.
func MeasureN(scenario, engine string, iters int, fn func() (cycles, instrs uint64, err error)) (Entry, error) {
	if iters < 1 {
		iters = 1
	}
	entries := make([]Entry, 0, iters)
	for i := 0; i < iters; i++ {
		e, err := Measure(scenario, engine, fn)
		if err != nil {
			return Entry{}, err
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seconds < entries[j].Seconds })
	return entries[len(entries)/2], nil
}

// Add appends an entry and refreshes the scenario's speedups against
// the cycle-by-cycle reference as engine pairs complete: the
// fast-forward ratio keeps its historical bare-scenario key, the
// event-wheel ratio goes under "<scenario>@event-wheel". Old baselines
// without wheel keys stay comparable — Compare walks baseline keys.
func (r *Report) Add(e Entry) {
	r.Entries = append(r.Entries, e)
	var ff, wheel, ref *Entry
	for i := range r.Entries {
		en := &r.Entries[i]
		if en.Scenario != e.Scenario {
			continue
		}
		switch en.Engine {
		case "fast-forward":
			ff = en
		case "event-wheel":
			wheel = en
		case "cycle-by-cycle":
			ref = en
		}
	}
	if ref == nil {
		return
	}
	if r.Speedups == nil {
		r.Speedups = map[string]float64{}
	}
	if ff != nil && ff.Seconds > 0 {
		r.Speedups[e.Scenario] = ref.Seconds / ff.Seconds
	}
	if wheel != nil && wheel.Seconds > 0 {
		r.Speedups[e.Scenario+"@event-wheel"] = ref.Seconds / wheel.Seconds
	}
}

// WriteNumbered writes the report to the first free BENCH_<n>.json in
// dir (starting at 1) and returns the path.
func (r *Report) WriteNumbered(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); err == nil {
			continue
		}
		return path, r.WriteFile(path)
	}
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ResolveBaseline turns a baseline argument into a concrete report
// path. A file path is returned as-is; a directory resolves to its
// highest-numbered BENCH_<n>.json, so a CI gate pointed at the repo
// root always compares against the newest committed report without
// anyone editing the workflow when BENCH_<n+1>.json lands.
func ResolveBaseline(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return path, nil
	}
	matches, err := filepath.Glob(filepath.Join(path, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(m), "BENCH_%d.json", &n); err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("perf: no BENCH_<n>.json reports in %s", path)
	}
	return best, nil
}

// Load reads a report back.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return &r, nil
}

// Compare checks current against a committed baseline and returns an
// error describing every scenario whose engine speedup (fast-forward
// or event-wheel, whatever keys the baseline carries) regressed by
// more than tolerance (e.g. 0.20 = 20%). Scenarios present in only
// one report are ignored (suites may grow), but an empty intersection
// is an error — it means the comparison checked nothing.
func Compare(current, baseline *Report, tolerance float64) error {
	var problems []string
	checked := 0
	names := make([]string, 0, len(baseline.Speedups))
	for name := range baseline.Speedups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Speedups[name]
		cur, ok := current.Speedups[name]
		if !ok || base <= 0 {
			continue
		}
		checked++
		if cur < base*(1-tolerance) {
			problems = append(problems, fmt.Sprintf(
				"%s: speedup %.2fx, baseline %.2fx (allowed floor %.2fx)",
				name, cur, base, base*(1-tolerance)))
		}
	}
	if checked == 0 {
		return fmt.Errorf("perf: no common scenarios between current report and baseline")
	}
	if len(problems) > 0 {
		return fmt.Errorf("perf: speedup regression beyond %.0f%%:\n  %s",
			tolerance*100, joinLines(problems))
	}
	return nil
}

func joinLines(xs []string) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += "\n  "
		}
		s += x
	}
	return s
}
