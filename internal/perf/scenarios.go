package perf

import (
	"context"
	"fmt"

	"soemt/internal/core"
	"soemt/internal/pipeline"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// Scenario is one benchmarkable simulation spec. The suite runs each
// scenario under every engine: Spec.Engine is overridden per run.
type Scenario struct {
	Name string
	Spec sim.Spec
}

// Engines lists the execution engines the suite benchmarks, reference
// first. The names are sim.Spec.Engine values and appear verbatim in
// report entries.
var Engines = []string{"cycle-by-cycle", "fast-forward", "event-wheel"}

// DefaultSuite returns the standing benchmark scenarios at the given
// scale. The mix is deliberate: miss-heavy workloads are where the
// idle fast-forward should pay off (long L2/memory stalls dominated by
// idle cycles), while the compute-bound pair bounds the overhead the
// horizon scan adds when there is nothing to skip.
func DefaultSuite(scale sim.Scale) []Scenario {
	mk := func(policy core.Policy, names ...string) sim.Spec {
		m := sim.DefaultMachine()
		m.Controller.Policy = policy
		s := sim.Spec{Machine: m, Scale: scale}
		for i, n := range names {
			s.Threads = append(s.Threads, sim.ThreadSpec{
				Profile: workload.MustByName(n), Slot: i,
			})
		}
		return s
	}
	withEvents := mk(core.Fairness{F: 1}, "swim", "gcc")
	withEvents.Threads[0].Events = []pipeline.InjectedStall{
		{AtInstr: 50_000, StallCycles: 25_000},
		{AtInstr: 200_000, StallCycles: 60_000},
	}
	// The flagship fast-forward scenario: a miss-heavy pair under a
	// dense external-event schedule (long device-wait-style stalls on
	// both threads, far longer than MaxCyclesQuota). With both threads
	// stalled the machine is provably idle for hundreds of thousands of
	// cycles at a stretch, which is exactly what the idle fast-forward
	// skips. At QuickScale the measure phase runs into the protocol's
	// MaxCycles watchdog — identically under both engines — so the two
	// runs simulate the same capped cycle count.
	heavyEvents := mk(core.Fairness{F: 1}, "swim", "mcf")
	var stalls []pipeline.InjectedStall
	for i := uint64(1); i <= 1600; i++ {
		stalls = append(stalls, pipeline.InjectedStall{AtInstr: 500 * i, StallCycles: 150_000})
	}
	heavyEvents.Threads[0].Events = stalls
	heavyEvents.Threads[1].Events = stalls
	return []Scenario{
		{"single-missy-swim", mk(core.EventOnly{}, "swim")},
		{"single-missy-mcf", mk(core.EventOnly{}, "mcf")},
		{"pair-missy-swim-mcf", mk(core.EventOnly{}, "swim", "mcf")},
		{"pair-missy-fair-swim-mcf", mk(core.Fairness{F: 1}, "swim", "mcf")},
		{"pair-compute-gcc-eon", mk(core.Fairness{F: 1}, "gcc", "eon")},
		{"pair-events-swim-gcc", withEvents},
		{"pair-heavy-events-swim-mcf", heavyEvents},
	}
}

// RunSuite benchmarks every scenario under every engine, appending the
// median-of-iters entries (and derived speedups) to the report.
// progress, if non-nil, receives a line per completed measurement.
func RunSuite(ctx context.Context, r *Report, scenarios []Scenario, iters int, progress func(string)) error {
	for _, sc := range scenarios {
		for _, engine := range Engines {
			if err := ctx.Err(); err != nil {
				return err
			}
			spec := sc.Spec
			spec.Engine = engine
			e, err := MeasureN(sc.Name, engine, iters, func() (uint64, uint64, error) {
				res, err := sim.RunContext(ctx, spec)
				if err != nil {
					return 0, 0, err
				}
				var instrs uint64
				for _, th := range res.Threads {
					instrs += th.Counters.Instrs
				}
				// SimCycles is the measured window only; warmup cycles are
				// simulated too but not reported, so cycles/sec is a
				// consistent (conservative) throughput metric.
				return res.WallCycles, instrs, nil
			})
			if err != nil {
				return err
			}
			r.Add(e)
			if progress != nil {
				progress(fmt.Sprintf("%-28s %-14s %8.3fs  %12.0f cyc/s  %10d allocs",
					e.Scenario, e.Engine, e.Seconds, e.CyclesPerSec, e.AllocObjects))
			}
		}
		if progress != nil {
			progress(fmt.Sprintf("%-28s speedup ff %.2fx  wheel %.2fx",
				sc.Name, r.Speedups[sc.Name], r.Speedups[sc.Name+"@event-wheel"]))
		}
	}
	return nil
}
