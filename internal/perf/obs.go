package perf

import (
	"context"
	"fmt"

	"soemt/internal/core"
	"soemt/internal/obs"
	"soemt/internal/sim"
	"soemt/internal/workload"
)

// obsScenarioName labels the observability-overhead measurement in
// reports and in Report.ObsOverhead.
const obsScenarioName = "obs-overhead-gcc-eon"

// ObsOverheadSpec returns the spec the observability-overhead
// measurement runs: the gcc:eon pair under full F=1 enforcement on the
// production (default event-wheel) engine. The pair switches, samples and
// recomputes quotas constantly, so it exercises every event site the
// tracer and registry hook; a miss-bound pair would instead spend its
// time inside skipIdle where observability costs nothing.
func ObsOverheadSpec(scale sim.Scale) sim.Spec {
	m := sim.DefaultMachine()
	m.Controller.Policy = core.Fairness{F: 1}
	return sim.Spec{
		Machine: m,
		Threads: []sim.ThreadSpec{
			{Profile: workload.MustByName("gcc"), Slot: 0},
			{Profile: workload.MustByName("eon"), Slot: 1},
		},
		Scale: scale,
	}
}

// MeasureObsOverhead times ObsOverheadSpec best-of-rounds twice — with
// observability detached (Spec.Obs nil, the production default) and
// with a live tracer plus registry attached — appends both best
// entries to the report under engines "obs-off" and "obs-on", records
// the wall-time ratio in Report.ObsOverhead, and returns it. Best-of-N
// suppresses scheduler noise: overheads in the single percents are
// smaller than run-to-run variance of a single run.
func MeasureObsOverhead(ctx context.Context, r *Report, scale sim.Scale, rounds int, progress func(string)) (float64, error) {
	if rounds < 1 {
		rounds = 3
	}
	best := map[string]Entry{}
	for round := 0; round < rounds; round++ {
		for _, mode := range []string{"obs-off", "obs-on"} {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			spec := ObsOverheadSpec(scale)
			if mode == "obs-on" {
				spec.Obs = &obs.Observer{Trace: obs.NewTracer(0), Metrics: obs.NewRegistry()}
			}
			e, err := Measure(obsScenarioName, mode, func() (uint64, uint64, error) {
				res, err := sim.RunContext(ctx, spec)
				if err != nil {
					return 0, 0, err
				}
				var instrs uint64
				for _, th := range res.Threads {
					instrs += th.Counters.Instrs
				}
				return res.WallCycles, instrs, nil
			})
			if err != nil {
				return 0, err
			}
			if mode == "obs-on" && spec.Obs.Trace.Len() == 0 {
				return 0, fmt.Errorf("perf: obs-on run traced no events; measurement is vacuous")
			}
			if b, ok := best[mode]; !ok || e.Seconds < b.Seconds {
				best[mode] = e
			}
		}
	}
	off, on := best["obs-off"], best["obs-on"]
	r.Entries = append(r.Entries, off, on)
	if off.Seconds <= 0 {
		// A ~0s obs-off wall time would make the ratio +Inf/NaN, which
		// encoding/json refuses to marshal — the whole report write
		// would fail long after the measurement ran.
		return 0, fmt.Errorf("perf: obs-off run measured no wall time; overhead ratio undefined")
	}
	ratio := on.Seconds / off.Seconds
	if r.ObsOverhead == nil {
		r.ObsOverhead = map[string]float64{}
	}
	r.ObsOverhead[obsScenarioName] = ratio
	if progress != nil {
		progress(fmt.Sprintf("%-28s obs on/off %.3fx (best of %d: %.3fs vs %.3fs)",
			obsScenarioName, ratio, rounds, on.Seconds, off.Seconds))
	}
	return ratio, nil
}
