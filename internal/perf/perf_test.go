package perf

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestMemDeltaClampsWrap pins the MemStats delta clamp: a counter that
// goes backwards between snapshots must yield 0, not a value near
// 2^64.
func TestMemDeltaClampsWrap(t *testing.T) {
	if got := memDelta(100, 250); got != 0 {
		t.Fatalf("memDelta(100, 250) = %d, want 0 (clamped)", got)
	}
	if got := memDelta(250, 100); got != 150 {
		t.Fatalf("memDelta(250, 100) = %d, want 150", got)
	}
	if got := memDelta(^uint64(0)-1, ^uint64(0)); got != 0 {
		t.Fatalf("near-wrap delta = %d, want 0", got)
	}
}

// TestRateGuardsDegenerateElapsed pins the division guard: zero,
// negative or denormal-small elapsed times must produce 0, never
// Inf/NaN — an Inf rate makes the whole report unmarshalable.
func TestRateGuardsDegenerateElapsed(t *testing.T) {
	for _, secs := range []float64{0, -1, math.SmallestNonzeroFloat64} {
		got := rate(1_000_000, secs)
		if math.IsInf(got, 0) || math.IsNaN(got) {
			t.Fatalf("rate(1e6, %g) = %v, want finite", secs, got)
		}
		if secs <= 0 && got != 0 {
			t.Fatalf("rate(1e6, %g) = %v, want 0", secs, got)
		}
	}
	if got := rate(500, 2); got != 250 {
		t.Fatalf("rate(500, 2) = %v, want 250", got)
	}
}

// TestMeasureSurvivesMidRunGC runs Measure around a workload that
// forces garbage collections mid-run: the alloc deltas must stay sane
// (no wrap into 2^64-ish values) and the rates finite.
func TestMeasureSurvivesMidRunGC(t *testing.T) {
	e, err := Measure("gc-torture", "cycle-by-cycle", func() (uint64, uint64, error) {
		sink := make([][]byte, 0, 64)
		for i := 0; i < 16; i++ {
			sink = append(sink, make([]byte, 1<<16))
			runtime.GC()
		}
		_ = sink
		return 1000, 500, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.AllocBytes > 1<<40 || e.AllocObjects > 1<<40 {
		t.Fatalf("alloc deltas wrapped: bytes=%d objects=%d", e.AllocBytes, e.AllocObjects)
	}
	if e.AllocBytes < 16*(1<<16) {
		t.Fatalf("alloc bytes %d below the %d the run visibly allocated", e.AllocBytes, 16*(1<<16))
	}
	if math.IsInf(e.CyclesPerSec, 0) || math.IsNaN(e.CyclesPerSec) ||
		math.IsInf(e.InstrsPerSec, 0) || math.IsNaN(e.InstrsPerSec) {
		t.Fatalf("non-finite rates: %v cyc/s, %v instr/s", e.CyclesPerSec, e.InstrsPerSec)
	}
}

// TestMeasureNTakesMedian runs a deliberately bimodal timing workload
// and asserts the reported entry is neither the fastest nor the
// slowest run.
func TestMeasureNTakesMedian(t *testing.T) {
	calls := 0
	e, err := MeasureN("median", "cycle-by-cycle", 3, func() (uint64, uint64, error) {
		calls++
		return uint64(calls), 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("MeasureN ran fn %d times, want 3", calls)
	}
	// The median entry is one of the three runs; its cycle count
	// identifies which. All three wall times are ~equal, so any index
	// is acceptable — what matters is a single entry came back intact.
	if e.SimCycles < 1 || e.SimCycles > 3 {
		t.Fatalf("median entry cycles = %d, want 1..3", e.SimCycles)
	}
	if _, err := MeasureN("median", "cycle-by-cycle", 0, func() (uint64, uint64, error) {
		return 1, 1, nil
	}); err != nil {
		t.Fatalf("iters<1 should degrade to 1 run: %v", err)
	}
}

// TestResolveBaseline pins the directory resolution rule: newest
// (highest-numbered) BENCH_<n>.json wins, including n >= 10; plain
// files pass through; an empty directory errors.
func TestResolveBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json", "BENCH_x.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ResolveBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("resolved %s, want BENCH_10.json", got)
	}

	file := filepath.Join(dir, "BENCH_2.json")
	if got, err := ResolveBaseline(file); err != nil || got != file {
		t.Fatalf("file passthrough: got %s, %v", got, err)
	}

	if _, err := ResolveBaseline(t.TempDir()); err == nil {
		t.Fatal("empty directory resolved to a baseline")
	}
	if _, err := ResolveBaseline(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing path resolved to a baseline")
	}
}

func addRun(t *testing.T, r *Report, scenario, engine string, secs float64) {
	t.Helper()
	r.Add(Entry{Scenario: scenario, Engine: engine, Seconds: secs, SimCycles: 1000})
}

func TestSpeedupDerivation(t *testing.T) {
	r := NewReport("tiny")
	addRun(t, r, "pair", "cycle-by-cycle", 3.0)
	if len(r.Speedups) != 0 {
		t.Fatalf("speedup derived from a single engine: %v", r.Speedups)
	}
	addRun(t, r, "pair", "fast-forward", 1.0)
	if got := r.Speedups["pair"]; got != 3.0 {
		t.Fatalf("speedup = %v, want 3.0", got)
	}
	addRun(t, r, "pair", "event-wheel", 0.5)
	if got := r.Speedups["pair@event-wheel"]; got != 6.0 {
		t.Fatalf("event-wheel speedup = %v, want 6.0", got)
	}
	// The legacy key must be untouched by the wheel entry.
	if got := r.Speedups["pair"]; got != 3.0 {
		t.Fatalf("fast-forward speedup disturbed: %v, want 3.0", got)
	}
}

func TestWriteNumberedAndLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bench") // exercise MkdirAll
	r := NewReport("tiny")
	addRun(t, r, "pair", "cycle-by-cycle", 2.0)
	addRun(t, r, "pair", "fast-forward", 1.0)

	p1, err := r.WriteNumbered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Fatalf("first report at %s, want BENCH_1.json", p1)
	}
	p2, err := r.WriteNumbered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2.json" {
		t.Fatalf("second report at %s, want BENCH_2.json", p2)
	}

	back, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Scale != "tiny" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if got := back.Speedups["pair"]; got != 2.0 {
		t.Fatalf("round-tripped speedup = %v, want 2.0", got)
	}
}

func TestCompare(t *testing.T) {
	base := NewReport("tiny")
	addRun(t, base, "pair", "cycle-by-cycle", 4.0)
	addRun(t, base, "pair", "fast-forward", 1.0) // 4.0x baseline

	ok := NewReport("tiny")
	addRun(t, ok, "pair", "cycle-by-cycle", 3.5)
	addRun(t, ok, "pair", "fast-forward", 1.0) // 3.5x: within 20%
	if err := Compare(ok, base, 0.20); err != nil {
		t.Fatalf("within-tolerance report rejected: %v", err)
	}

	bad := NewReport("tiny")
	addRun(t, bad, "pair", "cycle-by-cycle", 2.0)
	addRun(t, bad, "pair", "fast-forward", 1.0) // 2.0x: regressed
	err := Compare(bad, base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "pair") {
		t.Fatalf("regression not reported: %v", err)
	}

	// A disjoint suite must not silently pass.
	other := NewReport("tiny")
	addRun(t, other, "elsewhere", "cycle-by-cycle", 1.0)
	addRun(t, other, "elsewhere", "fast-forward", 1.0)
	if err := Compare(other, base, 0.20); err == nil {
		t.Fatal("empty scenario intersection passed the gate")
	}
}
