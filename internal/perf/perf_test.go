package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func addRun(t *testing.T, r *Report, scenario, engine string, secs float64) {
	t.Helper()
	r.Add(Entry{Scenario: scenario, Engine: engine, Seconds: secs, SimCycles: 1000})
}

func TestSpeedupDerivation(t *testing.T) {
	r := NewReport("tiny")
	addRun(t, r, "pair", "cycle-by-cycle", 3.0)
	if len(r.Speedups) != 0 {
		t.Fatalf("speedup derived from a single engine: %v", r.Speedups)
	}
	addRun(t, r, "pair", "fast-forward", 1.0)
	if got := r.Speedups["pair"]; got != 3.0 {
		t.Fatalf("speedup = %v, want 3.0", got)
	}
}

func TestWriteNumberedAndLoadRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bench") // exercise MkdirAll
	r := NewReport("tiny")
	addRun(t, r, "pair", "cycle-by-cycle", 2.0)
	addRun(t, r, "pair", "fast-forward", 1.0)

	p1, err := r.WriteNumbered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Fatalf("first report at %s, want BENCH_1.json", p1)
	}
	p2, err := r.WriteNumbered(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2.json" {
		t.Fatalf("second report at %s, want BENCH_2.json", p2)
	}

	back, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Scale != "tiny" {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if got := back.Speedups["pair"]; got != 2.0 {
		t.Fatalf("round-tripped speedup = %v, want 2.0", got)
	}
}

func TestCompare(t *testing.T) {
	base := NewReport("tiny")
	addRun(t, base, "pair", "cycle-by-cycle", 4.0)
	addRun(t, base, "pair", "fast-forward", 1.0) // 4.0x baseline

	ok := NewReport("tiny")
	addRun(t, ok, "pair", "cycle-by-cycle", 3.5)
	addRun(t, ok, "pair", "fast-forward", 1.0) // 3.5x: within 20%
	if err := Compare(ok, base, 0.20); err != nil {
		t.Fatalf("within-tolerance report rejected: %v", err)
	}

	bad := NewReport("tiny")
	addRun(t, bad, "pair", "cycle-by-cycle", 2.0)
	addRun(t, bad, "pair", "fast-forward", 1.0) // 2.0x: regressed
	err := Compare(bad, base, 0.20)
	if err == nil || !strings.Contains(err.Error(), "pair") {
		t.Fatalf("regression not reported: %v", err)
	}

	// A disjoint suite must not silently pass.
	other := NewReport("tiny")
	addRun(t, other, "elsewhere", "cycle-by-cycle", 1.0)
	addRun(t, other, "elsewhere", "fast-forward", 1.0)
	if err := Compare(other, base, 0.20); err == nil {
		t.Fatal("empty scenario intersection passed the gate")
	}
}
