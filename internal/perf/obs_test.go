package perf

import (
	"context"
	"testing"

	"soemt/internal/sim"
)

// TestObsOverheadWithinBudget runs the observability-overhead scenario
// at a small scale and enforces a loose CI-safe ceiling: a fully
// attached observer (tracer + registry, strictly more work than the
// disabled nil-check path) must not cost more than 25% wall time. The
// DESIGN.md §10 budget of ≤2% for the DISABLED configuration is bounded
// by this measurement from above; soebench records the precise ratio at
// realistic scales, where the per-run constant costs amortize further.
func TestObsOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	scale := sim.Scale{CacheWarm: 40_000, Warm: 20_000, Measure: 120_000, MaxCycles: 10_000_000}
	r := NewReport("test")
	ratio, err := MeasureObsOverhead(context.Background(), r, scale, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("obs on/off wall-time ratio = %.3f", ratio)
	if ratio > 1.25 {
		t.Errorf("enabled observability costs %.1f%% wall time; budget is 25%% at test scale", (ratio-1)*100)
	}
	if ratio < 0.5 {
		t.Errorf("ratio %.3f implausibly low; measurement is broken", ratio)
	}
	if len(r.Entries) != 2 {
		t.Fatalf("expected 2 report entries, got %d", len(r.Entries))
	}
	if _, ok := r.ObsOverhead[obsScenarioName]; !ok {
		t.Fatal("ObsOverhead not recorded in report")
	}
	for _, e := range r.Entries {
		if e.SimCycles == 0 || e.Instrs == 0 {
			t.Errorf("entry %s/%s has zero work recorded", e.Scenario, e.Engine)
		}
	}
}
