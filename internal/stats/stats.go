// Package stats provides the counters, summary statistics, and time
// series used by the simulator and the experiment harnesses.
//
// The paper's fairness mechanism is driven entirely by per-thread
// hardware counters sampled on a fixed period Δ; Window models exactly
// that sample-and-reset behaviour. Series records per-sample values for
// the time-series figures (Figure 5).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs. All values must be
// positive; non-positive values make the result 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs (used by the Luo et al.
// fairness metric the paper compares against). Non-positive values make
// the result 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MinPairRatio is the N-thread fairness metric (paper Eq. 4,
// generalized): the minimum over all thread pairs (j, k) of the ratio
// speedup_j / speedup_k. Because every pairwise ratio lo/hi with
// lo ≤ hi is minimized by the global extremes, the min over all pairs
// equals min(xs) / max(xs) — O(n), not O(n²). Conventions shared by
// core.FairnessMetric and the analytical model:
//
//   - fewer than two values: 1 (a lone thread is trivially fair);
//   - any non-positive or non-finite value: 0 (a starved or degenerate
//     thread is maximally unfair, and NaN must never escape to JSON).
func MinPairRatio(xs []float64) float64 {
	if len(xs) < 2 {
		return 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return 0
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo / hi
}

// Counters is the per-thread hardware-counter block from Section 3.1 of
// the paper: retired instructions, running cycles (excluding switch
// overhead), and switch-causing last-level cache misses.
type Counters struct {
	Instrs uint64 // instructions retired
	Cycles uint64 // cycles the thread was actually running
	Misses uint64 // L2 misses that caused (or would cause) a stall/switch
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Instrs += other.Instrs
	c.Cycles += other.Cycles
	c.Misses += other.Misses
}

// Sub returns c - other, for computing per-window deltas from running
// totals.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		Instrs: c.Instrs - other.Instrs,
		Cycles: c.Cycles - other.Cycles,
		Misses: c.Misses - other.Misses,
	}
}

// IPM returns instructions per miss (Eq. 11): Instrs / max(Misses, 1).
func (c Counters) IPM() float64 {
	return float64(c.Instrs) / float64(maxU64(c.Misses, 1))
}

// CPM returns cycles per miss (Eq. 12): Cycles / max(Misses, 1).
func (c Counters) CPM() float64 {
	return float64(c.Cycles) / float64(maxU64(c.Misses, 1))
}

// IPC returns the realized instructions per running cycle.
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instrs) / float64(c.Cycles)
}

// EstIPCST estimates the thread's single-thread IPC (Eq. 13):
// IPM / (CPM + missLat). A non-positive denominator (a thread that
// never ran, with missLat 0) yields 0, never NaN/Inf.
func (c Counters) EstIPCST(missLat float64) float64 {
	den := c.CPM() + missLat
	if den <= 0 {
		return 0
	}
	return c.IPM() / den
}

func (c Counters) String() string {
	return fmt.Sprintf("{instrs=%d cycles=%d misses=%d}", c.Instrs, c.Cycles, c.Misses)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Window implements Δ-cycle sampling: Totals accumulate forever, and
// Sample returns the delta since the previous sample.
type Window struct {
	Totals Counters
	last   Counters
}

// Sample returns the counter deltas accumulated since the previous call
// (or since creation) and marks the new sampling point.
func (w *Window) Sample() Counters {
	d := w.Totals.Sub(w.last)
	w.last = w.Totals
	return d
}

// Series is an append-only time series of (cycle, value) points, used
// to reproduce the paper's Figure 5 plots.
type Series struct {
	Name   string
	Cycles []uint64
	Values []float64
}

// Append adds a point to the series.
func (s *Series) Append(cycle uint64, v float64) {
	s.Cycles = append(s.Cycles, cycle)
	s.Values = append(s.Values, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// At returns the i-th point.
func (s *Series) At(i int) (uint64, float64) { return s.Cycles[i], s.Values[i] }

// MeanValue returns the mean of the series values.
func (s *Series) MeanValue() float64 { return Mean(s.Values) }
