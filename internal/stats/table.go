package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned
// columns, in the style the experiment harnesses use to print the
// paper's tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Cells beyond the header width are kept; short
// rows are padded when rendering.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from formatted values: each argument is
// rendered with %v unless it is a float64, which uses %.3f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table. It always returns the byte count written
// and the first write error, satisfying io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	grow := func(row []string) {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	grow(t.header)
	for _, r := range t.rows {
		grow(r)
	}

	var total int64
	emit := func(s string) error {
		n, err := io.WriteString(w, s)
		total += int64(n)
		return err
	}
	line := func(row []string) error {
		var b strings.Builder
		for i, wd := range widths {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", wd-len(cell)))
		}
		return emit(strings.TrimRight(b.String(), " ") + "\n")
	}
	if err := line(t.header); err != nil {
		return total, err
	}
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	if err := line(rule); err != nil {
		return total, err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return total, err
		}
	}
	return total, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteTo(&b) // strings.Builder never errors
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
