package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "ipc")
	tb.AddRow("gcc", "1.2")
	tb.AddRowf("eon", 2.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line = %q", lines[1])
	}
	if !strings.Contains(lines[3], "2.000") {
		t.Errorf("float formatting: %q", lines[3])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("longvalue", "x")
	out := tb.String()
	lines := strings.Split(out, "\n")
	// "b" column should start at the same offset in header and row.
	hIdx := strings.Index(lines[0], "b")
	rIdx := strings.Index(lines[2], "x")
	if hIdx != rIdx {
		t.Errorf("misaligned columns: header b at %d, row x at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Error("extra cell dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("name", "note")
	tb.AddRow("a,b", `say "hi"`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "name,note\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
}
