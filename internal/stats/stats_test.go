package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean of 1,2,3 should be 2")
	}
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Error("stddev of constant should be 0")
	}
	// Population stddev of {1,3} is 1.
	if !almost(StdDev([]float64{1, 3}), 1) {
		t.Error("stddev of {1,3} should be 1")
	}
	if StdDev(nil) != 0 {
		t.Error("stddev of empty should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("geomean of {1,4} should be 2")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("geomean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
}

func TestHarmonicMean(t *testing.T) {
	// HM of {1, 1/3} = 2 / (1 + 3) = 0.5.
	if !almost(HarmonicMean([]float64{1, 1.0 / 3}), 0.5) {
		t.Error("harmonic mean of {1, 1/3} should be 0.5")
	}
	if HarmonicMean([]float64{-1, 2}) != 0 {
		t.Error("harmonic mean with non-positive value should be 0")
	}
}

func TestHarmonicLeqGeoLeqArith(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		h, g, m := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		return h <= g+1e-9 && g <= m+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if !almost(Percentile(xs, 0), 1) {
		t.Error("p0 should be min")
	}
	if !almost(Percentile(xs, 1), 4) {
		t.Error("p100 should be max")
	}
	if !almost(Percentile(xs, 0.5), 2.5) {
		t.Error("median of 1..4 should be 2.5")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("percentile of empty should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("min/max wrong")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty min/max should be infinities")
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := Counters{Instrs: 10, Cycles: 20, Misses: 2}
	b := Counters{Instrs: 1, Cycles: 2, Misses: 1}
	a.Add(b)
	if a.Instrs != 11 || a.Cycles != 22 || a.Misses != 3 {
		t.Fatalf("Add wrong: %v", a)
	}
	d := a.Sub(b)
	if d.Instrs != 10 || d.Cycles != 20 || d.Misses != 2 {
		t.Fatalf("Sub wrong: %v", d)
	}
}

func TestCountersRates(t *testing.T) {
	c := Counters{Instrs: 15000, Cycles: 6000, Misses: 1}
	if !almost(c.IPM(), 15000) {
		t.Error("IPM wrong")
	}
	if !almost(c.CPM(), 6000) {
		t.Error("CPM wrong")
	}
	if !almost(c.IPC(), 2.5) {
		t.Error("IPC wrong")
	}
	// Eq. 13 on the paper's Example 2 thread 1: 15000/(6000+300) = 2.381.
	if got := c.EstIPCST(300); math.Abs(got-15000.0/6300) > 1e-9 {
		t.Errorf("EstIPCST = %v", got)
	}
}

func TestCountersZeroMissClamp(t *testing.T) {
	// The paper specifies max(Misses,1) in Eqs. 11-12 so a window with
	// no misses still produces a finite (conservative) estimate.
	c := Counters{Instrs: 1000, Cycles: 500, Misses: 0}
	if !almost(c.IPM(), 1000) || !almost(c.CPM(), 500) {
		t.Error("zero-miss clamp broken")
	}
	if c.IPC() != 2 {
		t.Error("IPC with zero misses")
	}
	var empty Counters
	if empty.IPC() != 0 {
		t.Error("IPC of zero counters should be 0")
	}
}

func TestWindowSampling(t *testing.T) {
	var w Window
	w.Totals.Add(Counters{Instrs: 100, Cycles: 200, Misses: 3})
	d := w.Sample()
	if d.Instrs != 100 || d.Cycles != 200 || d.Misses != 3 {
		t.Fatalf("first sample wrong: %v", d)
	}
	w.Totals.Add(Counters{Instrs: 50, Cycles: 60, Misses: 1})
	d = w.Sample()
	if d.Instrs != 50 || d.Cycles != 60 || d.Misses != 1 {
		t.Fatalf("second sample wrong: %v", d)
	}
	if d = w.Sample(); d != (Counters{}) {
		t.Fatalf("idle sample should be zero: %v", d)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(100, 1.5)
	s.Append(200, 2.5)
	if s.Len() != 2 {
		t.Fatal("len wrong")
	}
	c, v := s.At(1)
	if c != 200 || v != 2.5 {
		t.Fatal("At wrong")
	}
	if !almost(s.MeanValue(), 2.0) {
		t.Fatal("MeanValue wrong")
	}
}
