package stats

import (
	"math"
	"testing"
)

// TestEstIPCSTGuarded pins the Eq. 13 division guard: with zero
// counters and a zero assumed miss latency the denominator vanishes,
// and the estimate must degrade to 0 rather than NaN.
func TestEstIPCSTGuarded(t *testing.T) {
	var c Counters
	if got := c.EstIPCST(0); got != 0 {
		t.Fatalf("EstIPCST(0) on zero counters = %v, want 0", got)
	}
	if got := c.EstIPCST(300); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("EstIPCST(300) on zero counters = %v, must be finite", got)
	}
	// Sanity: a normal counter block is unaffected by the guard.
	c = Counters{Instrs: 6000, Cycles: 2400, Misses: 10}
	want := c.IPM() / (c.CPM() + 300)
	if got := c.EstIPCST(300); got != want {
		t.Fatalf("EstIPCST changed on healthy counters: got %v want %v", got, want)
	}
}

// TestIPCGuarded covers the realized-IPC zero-cycle guard.
func TestIPCGuarded(t *testing.T) {
	var c Counters
	if got := c.IPC(); got != 0 {
		t.Fatalf("IPC on zero counters = %v, want 0", got)
	}
}
