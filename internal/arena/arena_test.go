package arena

import "testing"

// TestNilArenaDegradesToMake pins the optional-arena contract: a nil
// receiver must behave exactly like make([]T, n).
func TestNilArenaDegradesToMake(t *testing.T) {
	s := Slice[uint64](nil, 7)
	if len(s) != 7 {
		t.Fatalf("len = %d, want 7", len(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("s[%d] = %d, want 0", i, v)
		}
	}
	if s := Slice[uint64](nil, 0); len(s) != 0 {
		t.Fatalf("zero-length slice has len %d", len(s))
	}
}

// TestRecycleReusesBacking asserts that after Reset a same-type,
// capacity-sufficient request is served from the recycled backing
// array (no fresh allocation) and arrives zeroed even when the
// previous user left data behind.
func TestRecycleReusesBacking(t *testing.T) {
	a := New()
	s1 := Slice[uint64](a, 64)
	for i := range s1 {
		s1[i] = ^uint64(0) // dirty the backing
	}
	p1 := &s1[0]
	a.Reset()

	s2 := Slice[uint64](a, 32) // smaller fits the recycled cap
	if &s2[0] != p1 {
		t.Fatalf("recycled request did not reuse the backing array")
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("recycled s2[%d] = %#x, want 0 (stale data leaked)", i, v)
		}
	}

	// A larger request must fall through to a fresh allocation.
	s3 := Slice[uint64](a, 128)
	if len(s3) != 128 {
		t.Fatalf("len(s3) = %d, want 128", len(s3))
	}
}

// TestTypesDoNotCrossPollinate asserts the free lists are keyed by
// element type: recycling []uint64 must not serve a []int32 request.
func TestTypesDoNotCrossPollinate(t *testing.T) {
	a := New()
	Slice[uint64](a, 16)
	a.Reset()
	s := Slice[int32](a, 8)
	if len(s) != 8 {
		t.Fatalf("len = %d, want 8", len(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("s[%d] = %d, want 0", i, v)
		}
	}
}

// TestSteadyStateAllocFree asserts the arena's core promise: once
// warmed, a Reset/rebuild cycle of the same slice shapes performs no
// heap allocations for the slices themselves.
func TestSteadyStateAllocFree(t *testing.T) {
	a := New()
	build := func() {
		Slice[uint64](a, 256)
		Slice[uint8](a, 64)
		Slice[int32](a, 64)
	}
	build()
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		build()
		a.Reset()
	})
	if allocs > 0 {
		t.Fatalf("steady-state rebuild allocates %.1f objects/run, want 0", allocs)
	}
}
