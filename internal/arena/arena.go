// Package arena provides a typed recycle arena for the simulator's
// per-run machine state.
//
// A sim run constructs a full machine (pipeline rings, cache arrays,
// TLBs, predictor tables) and discards it at the end; at service rates
// that is the dominant allocation source. An Arena lends out slices
// and, on Reset, takes them all back into per-type free lists so the
// next run's construction reuses the same memory — after warmup a run
// performs O(1) heap allocations for machine state.
//
// The contract is ownership-based, not lifetime-tracked: callers must
// not touch any slice obtained from an arena after that arena is
// Reset. The simulator guarantees this by tying one arena to one
// RunContext and resetting it only after the run's machine becomes
// unreachable. Results and samples that outlive the run are never
// arena-backed.
//
// An Arena is not safe for concurrent use; each RunContext takes its
// own from a pool.
package arena

import "reflect"

// Arena hands out zeroed slices and recycles them on Reset.
type Arena struct {
	used []any                  // slices handed out since the last Reset
	free map[reflect.Type][]any // recycled slices, keyed by slice type
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{free: make(map[reflect.Type][]any)}
}

// Reset reclaims every slice handed out since the previous Reset.
// Callers must have dropped all references to them first.
func (a *Arena) Reset() {
	for i, s := range a.used {
		t := reflect.TypeOf(s)
		a.free[t] = append(a.free[t], s)
		a.used[i] = nil
	}
	a.used = a.used[:0]
}

// Slice returns a zeroed slice of length n, recycled from a's free
// list when one with sufficient capacity is available. A nil arena
// degrades to a plain heap allocation, so construction code can thread
// an optional arena without branching.
//
// The tracked value is always the full-capacity slice, boxed into an
// interface exactly once at first allocation: recycling moves the same
// boxed header between used and free, so steady-state handouts perform
// zero heap allocations (pinned by TestSteadyStateAllocFree).
func Slice[T any](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	t := reflect.TypeOf((*[]T)(nil)).Elem()
	list := a.free[t]
	for i := len(list) - 1; i >= 0; i-- {
		box := list[i]
		s := box.([]T)
		if cap(s) < n {
			continue
		}
		list[i] = list[len(list)-1]
		list[len(list)-1] = nil
		a.free[t] = list[:len(list)-1]
		a.used = append(a.used, box)
		out := s[:n]
		clear(out)
		return out
	}
	s := make([]T, n)
	a.used = append(a.used, any(s[:cap(s)]))
	return s
}
