package isa

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ALU:    "ALU",
		Load:   "LOAD",
		Store:  "STORE",
		Branch: "BRANCH",
		Pause:  "PAUSE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindValid(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if !k.Valid() {
			t.Errorf("kind %v should be valid", k)
		}
	}
	if Kind(NumKinds).Valid() {
		t.Error("NumKinds should not be a valid kind")
	}
}

func TestIsMem(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		want := k == Load || k == Store
		if got := k.IsMem(); got != want {
			t.Errorf("%v.IsMem() = %v, want %v", k, got, want)
		}
	}
}

func TestRegValid(t *testing.T) {
	if RegNone.Valid() {
		t.Error("RegNone must not be valid")
	}
	if !Reg(0).Valid() || !Reg(NumRegs-1).Valid() {
		t.Error("in-range registers must be valid")
	}
	if Reg(NumRegs).Valid() {
		t.Error("out-of-range register must not be valid")
	}
}

func TestLatencyTablePositive(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if k == Load {
			continue // memory-determined
		}
		if Latency[k] <= 0 {
			t.Errorf("latency for %v must be positive, got %d", k, Latency[k])
		}
	}
}

func TestPortsForCoverAllExecutingKinds(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		ports := PortsFor(k)
		switch k {
		case Nop, Pause:
			if len(ports) != 0 {
				t.Errorf("%v should use no port", k)
			}
		default:
			if len(ports) == 0 {
				t.Errorf("%v has no issue port", k)
			}
			for _, p := range ports {
				if p >= NumPorts {
					t.Errorf("%v maps to invalid port %d", k, p)
				}
			}
		}
	}
}

func TestPipelined(t *testing.T) {
	if Pipelined(Div) || Pipelined(FDiv) {
		t.Error("divides must be unpipelined")
	}
	if !Pipelined(ALU) || !Pipelined(Load) {
		t.Error("ALU and Load must be pipelined")
	}
}

func TestUopString(t *testing.T) {
	ld := &Uop{Seq: 1, Kind: Load, Dst: 3, Addr: 0x1000}
	if s := ld.String(); !strings.Contains(s, "LOAD") || !strings.Contains(s, "0x1000") {
		t.Errorf("load string = %q", s)
	}
	st := &Uop{Seq: 2, Kind: Store, Src1: 4, Addr: 0x2000}
	if s := st.String(); !strings.Contains(s, "STORE") {
		t.Errorf("store string = %q", s)
	}
	br := &Uop{Seq: 3, Kind: Branch, PC: 0x40, Taken: true, Target: 0x80}
	if s := br.String(); !strings.Contains(s, "BRANCH") || !strings.Contains(s, " t ") {
		t.Errorf("branch string = %q", s)
	}
	alu := &Uop{Seq: 4, Kind: ALU, Dst: 1, Src1: 2, Src2: 3}
	if s := alu.String(); !strings.Contains(s, "ALU") {
		t.Errorf("alu string = %q", s)
	}
}

func TestHasDst(t *testing.T) {
	u := &Uop{Dst: RegNone}
	if u.HasDst() {
		t.Error("RegNone dst should report no destination")
	}
	u.Dst = 5
	if !u.HasDst() {
		t.Error("valid dst should report a destination")
	}
}
