// Package isa defines the micro-operation model executed by the
// simulated out-of-order core.
//
// The simulator is execution-driven over synthetic instruction streams
// (see internal/workload): each micro-op carries its kind, logical
// registers, and — for loads, stores and branches — the architectural
// information (virtual address, branch target/outcome) that the timing
// model needs. There is no binary encoding; semantics beyond timing are
// out of scope (see DESIGN.md §6).
package isa

import "fmt"

// Kind classifies a micro-op by the functional unit class it needs.
type Kind uint8

// Micro-op kinds. The order is stable and used for indexing port and
// latency tables.
const (
	ALU    Kind = iota // single-cycle integer op
	Mul                // integer multiply
	Div                // integer divide (unpipelined)
	FAdd               // FP add/sub/convert
	FMul               // FP multiply
	FDiv               // FP divide (unpipelined)
	Load               // memory load
	Store              // memory store
	Branch             // conditional or unconditional branch
	Nop                // no-op (consumes a slot, no execution)
	Pause              // x86 PAUSE-style switch hint (Section 6 extension)

	NumKinds // number of kinds; keep last
)

var kindNames = [NumKinds]string{
	"ALU", "MUL", "DIV", "FADD", "FMUL", "FDIV",
	"LOAD", "STORE", "BRANCH", "NOP", "PAUSE",
}

// String returns the conventional mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a defined micro-op kind.
func (k Kind) Valid() bool { return k < NumKinds }

// IsMem reports whether the kind accesses data memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// Reg is a logical (architectural) register number. The synthetic ISA
// has NumRegs general registers; RegNone marks an absent operand.
type Reg int8

// NumRegs is the size of the logical register file.
const NumRegs = 32

// RegNone marks an unused source or destination operand.
const RegNone Reg = -1

// Valid reports whether r is a real register (not RegNone).
func (r Reg) Valid() bool { return r >= 0 && r < NumRegs }

// Uop is one micro-operation of a synthetic program.
//
// Seq is the architectural sequence number within the thread's stream;
// it is the workload generator's replay key: after a pipeline squash
// the front end resumes fetching at the Seq following the last retired
// micro-op.
type Uop struct {
	Seq  uint64 // position in the thread's instruction stream
	PC   uint64 // synthetic program counter (for branch prediction)
	Kind Kind

	Dst  Reg // destination register, RegNone if none
	Src1 Reg // first source, RegNone if none
	Src2 Reg // second source, RegNone if none

	// Memory operands (Kind Load/Store only).
	Addr uint64 // virtual byte address
	Size uint8  // access size in bytes

	// Branch operands (Kind Branch only).
	Taken  bool   // architectural outcome
	Target uint64 // architectural target PC
}

// HasDst reports whether the uop writes a register.
func (u *Uop) HasDst() bool { return u.Dst.Valid() }

// String renders a compact human-readable form, for logs and tests.
func (u *Uop) String() string {
	switch u.Kind {
	case Load:
		return fmt.Sprintf("#%d %s r%d <- [%#x]", u.Seq, u.Kind, u.Dst, u.Addr)
	case Store:
		return fmt.Sprintf("#%d %s [%#x] <- r%d", u.Seq, u.Kind, u.Addr, u.Src1)
	case Branch:
		dir := "nt"
		if u.Taken {
			dir = "t"
		}
		return fmt.Sprintf("#%d %s pc=%#x %s -> %#x", u.Seq, u.Kind, u.PC, dir, u.Target)
	default:
		return fmt.Sprintf("#%d %s r%d <- r%d, r%d", u.Seq, u.Kind, u.Dst, u.Src1, u.Src2)
	}
}

// Latency is the execution latency table, in cycles, for non-memory
// kinds. Loads and stores derive their latency from the memory
// hierarchy. The values follow the P6-style configuration in DESIGN.md.
var Latency = [NumKinds]int{
	ALU:    1,
	Mul:    4,
	Div:    20,
	FAdd:   3,
	FMul:   5,
	FDiv:   24,
	Load:   0, // determined by cache access
	Store:  1, // address generation; data dispatch happens post-retire
	Branch: 1,
	Nop:    1,
	Pause:  1,
}

// Pipelined reports whether the functional unit for k accepts a new op
// every cycle. Divides are iterative and block their unit.
func Pipelined(k Kind) bool { return k != Div && k != FDiv }

// Port identifies an issue port of the execute cluster.
type Port uint8

// Issue ports, P6-flavoured: two integer ALUs (one shared with
// mul/div), one FP cluster port, one load port, one store port, and
// branches resolve on port 1.
const (
	Port0    Port = iota // ALU, MUL, DIV
	Port1                // ALU, BRANCH
	PortFP               // FADD, FMUL, FDIV
	PortLoad             // LOAD
	PortStu              // STORE (address generation)

	NumPorts
)

// PortMask holds PortsFor as a bitmask over port numbers (bit p set
// iff Port(p) can execute the kind; zero for kinds that occupy no
// port). Iterating its set bits from the LSB visits ports in the same
// order PortsFor lists them — hot paths rely on that to replicate the
// port-claim order of the slice-based API exactly.
var PortMask = func() [NumKinds]uint8 {
	var m [NumKinds]uint8
	for k := Kind(0); k < NumKinds; k++ {
		for _, p := range PortsFor(k) {
			m[k] |= 1 << uint(p)
		}
	}
	return m
}()

// PortsFor returns the set of ports that can execute kind k.
// Nop and Pause occupy no port (they complete at issue).
func PortsFor(k Kind) []Port {
	switch k {
	case ALU:
		return []Port{Port0, Port1}
	case Mul, Div:
		return []Port{Port0}
	case FAdd, FMul, FDiv:
		return []Port{PortFP}
	case Load:
		return []Port{PortLoad}
	case Store:
		return []Port{PortStu}
	case Branch:
		return []Port{Port1}
	default:
		return nil
	}
}
