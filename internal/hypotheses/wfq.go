package hypotheses

import (
	"fmt"

	"soemt/internal/core"
	"soemt/internal/sim"
	"soemt/internal/stats"
	"soemt/internal/workload"
)

// wfqSpecs builds n copies of one workload with the deterministic
// per-copy seed offsets soesweep's thread sweep uses, so the copies
// are statistically identical but never phase-locked.
func wfqSpecs(bench string, n int) ([]sim.ThreadSpec, error) {
	prof, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("unknown profile %q", bench)
	}
	var specs []sim.ThreadSpec
	for i := 0; i < n; i++ {
		p := prof
		p.Seed += uint64(i) * 7919
		specs = append(specs, sim.ThreadSpec{Profile: p, Slot: i})
	}
	return specs, nil
}

func wfqExperiment() Experiment {
	return Experiment{
		Name:   "wfq",
		Policy: "wfq",
		Hypothesis: "With three statistically identical copies of a missy workload, " +
			"WFQGrant's per-thread credit counters make realized running-cycle " +
			"shares track the configured grant weights: under weights 8:3:1 the " +
			"shares are strictly ordered with the heaviest thread earning at least " +
			"twice the lightest's cycles, and under uniform weights the shares are " +
			"equal within 25%.",
		Method: []string{
			"Three copies of swim (pinned profile seed, +7919·i per-copy offsets so copies are never phase-locked).",
			"Identical copies isolate the granter: any residency asymmetry is attributable to weights, not workload.",
			"Fixed-wall protocol: a fixed-work run retires the same Measure target on every thread, equalizing cycle shares by construction, so the run is truncated at a fixed cycle budget instead (Measure unreachable, MaxCycles = 20x the scale's Measure) and shares are compared inside that window.",
			"Arms: weights 8:3:1 and uniform 1:1:1; shares are per-thread running cycles / total running cycles.",
			"swim is missy, so grants are frequent and the WFQ credit order gets thousands of decisions per run.",
			"CLI equivalent: soesim -threads swim,swim,swim -policy wfq -weights 8,3,1",
		},
		Run: runWFQ,
	}
}

func runWFQ(env Env) (*Outcome, error) {
	o := &Outcome{Table: stats.NewTable("weights", "thread", "run cycles", "share", "visits")}

	shares := func(weights []float64, label string) ([]float64, error) {
		specs, err := wfqSpecs("swim", 3)
		if err != nil {
			return nil, err
		}
		m := sim.DefaultMachine()
		m.Controller.Policy = core.WFQGrant{Weights: weights}
		res, err := env.Cache.RunSpecContext(env.Ctx, sim.Spec{
			Machine: m, Threads: specs, Scale: fixedWall(env.Scale), Watchdog: env.Watchdog,
		})
		if err != nil {
			return nil, err
		}
		var total uint64
		for _, tr := range res.Threads {
			total += tr.Counters.Cycles
		}
		out := make([]float64, len(res.Threads))
		for i, tr := range res.Threads {
			out[i] = float64(tr.Counters.Cycles) / float64(total)
			o.Table.AddRow(label, fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", tr.Counters.Cycles),
				fmt.Sprintf("%.3f", out[i]),
				fmt.Sprintf("%d", tr.Visits))
		}
		return out, nil
	}

	weighted, err := shares([]float64{8, 3, 1}, "8:3:1")
	if err != nil {
		return nil, err
	}
	uniform, err := shares([]float64{1, 1, 1}, "1:1:1")
	if err != nil {
		return nil, err
	}

	o.check("8:3:1 shares strictly ordered", weighted[0] > weighted[1] && weighted[1] > weighted[2],
		"shares %.3f > %.3f > %.3f", weighted[0], weighted[1], weighted[2])
	o.check("heaviest >= 2x lightest", weighted[0] >= 2*weighted[2],
		"%.3f vs 2x %.3f", weighted[0], weighted[2])
	umax, umin := uniform[0], uniform[0]
	for _, s := range uniform[1:] {
		if s > umax {
			umax = s
		}
		if s < umin {
			umin = s
		}
	}
	o.check("uniform weights stay balanced", umax <= 1.25*umin,
		"max share %.3f <= 1.25x min %.3f", umax, umin)
	o.note("The heavy thread's share saturates near the alternation bound: the " +
		"controller never re-grants the running thread, so once its weight clears " +
		"~2x the others it already wins every eligible grant and runs every other " +
		"visit (~0.42 of cycles). Extra weight beyond that squeezes the LIGHT " +
		"thread instead — 4:2:1 and 6:2:1 measure identical shares, which is why " +
		"the falsifiable floor is 2x heavy-over-light, not the ideal 8x.")
	return o, nil
}
