package hypotheses

import (
	"fmt"

	"soemt/internal/core"
	"soemt/internal/experiments"
	"soemt/internal/sim"
	"soemt/internal/stats"
)

// groupedMix is the starvation mix from the golden suite: one missy
// thread (gcc, CPM ≈ 1k) against three cache-friendly hogs (gzip ≈ 5k,
// eon ≈ 11k, crafty ≈ 21k). Seeds are the profiles' pinned seeds; the
// N-sweep takes prefixes of this list.
func groupedMix() []string { return []string{"gcc", "eon", "gzip", "crafty"} }

func groupedFairnessExperiment() Experiment {
	return Experiment{
		Name:   "grouped-fairness",
		Policy: "grouped-fairness",
		Hypothesis: "On a mixed workload of one missy thread and N-1 cache-friendly " +
			"hogs, GroupedFairness at F=1 (LFOC-style CPM grouping, 2:1 missy grant " +
			"boost) reaches at least the min-over-pairs fairness of the paper's plain " +
			"Fairness policy at F=1 while forcing at most half as many quota switches " +
			"— group-local Eq. 9 floors relax the hogs' budgets, and the weighted " +
			"grant path (not quota churn) protects the missy thread.",
		Method: []string{
			"Mix gcc:eon:gzip:crafty (pinned profile seeds), prefixes N=2..4.",
			"Three arms per N: event-only (F=0 baseline), Fairness{F:1}, GroupedFairness{F:1, MissyWeight:2, FriendlyWeight:1} with the adaptive CPM split.",
			"Fairness is the Eq. 4 min-over-pairs metric over Eq. 3 speedups vs event-only single-thread references.",
			"Checks apply to the full N=4 mix; the sweep table shows N=2..3 for trend.",
			"CLI equivalent: soesweep -sweep threads -threads gcc:eon:gzip:crafty -policy grouped-fairness -F 1",
		},
		Run: runGroupedFairness,
	}
}

func runGroupedFairness(env Env) (*Outcome, error) {
	o := &Outcome{Table: stats.NewTable("N", "mix", "policy", "fairness", "forced", "IPC")}
	type arm struct {
		label  string
		policy core.Policy
	}
	arms := []arm{
		{"event-only", core.EventOnly{}},
		{"fairness", core.Fairness{F: 1}},
		{"grouped", core.GroupedFairness{F: 1, MissyWeight: 2, FriendlyWeight: 1}},
	}
	// fair[label] and forced[label] hold the full-mix (N=4) values the
	// checks run against.
	fair := map[string]float64{}
	forced := map[string]uint64{}
	for n := 2; n <= len(groupedMix()); n++ {
		names := groupedMix()[:n]
		specs, err := experiments.MixSpecs(names)
		if err != nil {
			return nil, err
		}
		for _, a := range arms {
			m := sim.DefaultMachine()
			m.Controller.Policy = a.policy
			res, sp, err := experiments.RunMix(env.Ctx, env.Cache, env.Watchdog, m, specs, env.Scale)
			if err != nil {
				return nil, err
			}
			f := core.FairnessMetric(sp)
			o.Table.AddRow(fmt.Sprintf("%d", n), joinMix(names), a.label,
				fmt.Sprintf("%.3f", f),
				fmt.Sprintf("%d", res.Switches.Forced()),
				fmt.Sprintf("%.3f", res.IPCTotal))
			if n == len(groupedMix()) {
				fair[a.label] = f
				forced[a.label] = res.Switches.Forced()
			}
		}
	}

	o.check("fairness >= plain Fairness", fair["grouped"] >= fair["fairness"],
		"grouped %.3f vs plain %.3f (event-only floor %.3f)",
		fair["grouped"], fair["fairness"], fair["event-only"])
	o.check("forced switches <= half of plain", forced["grouped"]*2 <= forced["fairness"],
		"grouped %d vs plain %d", forced["grouped"], forced["fairness"])
	o.check("clears the Table 2 F=0 floor", fair["grouped"] > 0.11,
		"grouped %.3f > 0.11", fair["grouped"])
	o.note("The grant path does the heavy lifting: WFQ credit ordering inherently " +
		"favors the short-visit missy thread (its visits accrue ~20-30x less credit " +
		"than a hog's), so the missy boost compounds an already-preferential order " +
		"while the group-local floors cut quota churn on the hogs.")
	o.note("The golden suite's TestGoldenQuadDetectsMisgrouping shows the inverse: " +
		"swapping the groups at a decisive weight ratio re-starves gcc to the " +
		"event-only floor.")
	return o, nil
}

func joinMix(names []string) string {
	out := names[0]
	for _, n := range names[1:] {
		out += ":" + n
	}
	return out
}
