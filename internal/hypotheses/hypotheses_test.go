package hypotheses

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentsSupported runs every registered hypothesis experiment
// at the committed (tiny) scale and requires the measurements to
// support it — the policy zoo's acceptance gate. Failures print the
// full findings document so the refuting measurement is visible.
func TestExperimentsSupported(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			env := DefaultEnv()
			o, err := e.Run(env)
			if err != nil {
				t.Fatalf("experiment %s: %v", e.Name, err)
			}
			var b bytes.Buffer
			if err := WriteFindings(&b, e, env, o); err != nil {
				t.Fatalf("render findings: %v", err)
			}
			t.Logf("findings:\n%s", b.String())
			if !o.Supported() {
				t.Errorf("hypothesis %s refuted at scale %s", e.Name, env.ScaleName)
			}
		})
	}
}

// TestFindingsDeterministic renders the same outcome twice and demands
// byte-identical documents — the committed FINDINGS are regenerated
// artifacts, and nondeterminism (timestamps, map iteration) would turn
// every regeneration into a spurious diff.
func TestFindingsDeterministic(t *testing.T) {
	e, ok := ByName("grouped-fairness")
	if !ok {
		t.Fatal("grouped-fairness experiment missing")
	}
	env := DefaultEnv()
	o := &Outcome{}
	o.check("sample", true, "a %.3f vs b %.3f", 1.0, 2.0)
	o.note("note")
	var b1, b2 bytes.Buffer
	if err := WriteFindings(&b1, e, env, o); err != nil {
		t.Fatal(err)
	}
	if err := WriteFindings(&b2, e, env, o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("findings render is nondeterministic")
	}
}

// TestOutcomeSupported pins the vacuous-outcome rule: no checks means
// refuted, one failing check poisons the rest.
func TestOutcomeSupported(t *testing.T) {
	var o Outcome
	if o.Supported() {
		t.Error("outcome with no checks must not count as supported")
	}
	o.check("a", true, "ok")
	if !o.Supported() {
		t.Error("all-pass outcome must be supported")
	}
	o.check("b", false, "bad")
	if o.Supported() {
		t.Error("any failing check must refute")
	}
}

// TestRegistry pins the experiment list: every zoo policy has exactly
// one experiment, names are unique, and lookups resolve.
func TestRegistry(t *testing.T) {
	want := map[string]bool{"grouped-fairness": true, "wfq": true, "malthusian": true}
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if !want[e.Name] {
			t.Errorf("unexpected experiment %q", e.Name)
		}
		if e.Hypothesis == "" || len(e.Method) == 0 || e.Run == nil {
			t.Errorf("experiment %q is missing hypothesis, method, or runner", e.Name)
		}
		if _, ok := ByName(e.Name); !ok {
			t.Errorf("ByName(%q) failed", e.Name)
		}
	}
	for n := range want {
		if !seen[n] {
			t.Errorf("missing experiment %q", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must reject unknown names")
	}
}

// TestReadStatus round-trips the regression marker through a findings
// file on disk, including the missing-marker case the smoke script
// treats as a regression.
func TestReadStatus(t *testing.T) {
	dir := t.TempDir()
	path := FindingsPath(dir, "wfq")
	if !strings.HasSuffix(path, filepath.Join(dir, "FINDINGS_wfq.md")) {
		t.Fatalf("unexpected findings path %q", path)
	}
	e, _ := ByName("wfq")
	env := DefaultEnv()
	o := &Outcome{}
	o.check("sample", true, "ok")
	var b bytes.Buffer
	if err := WriteFindings(&b, e, env, o); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, ok := ReadStatus(path)
	if !ok || st != "SUPPORTED" {
		t.Fatalf("ReadStatus = %q, %v; want SUPPORTED, true", st, ok)
	}
	if err := os.WriteFile(path, []byte("# no marker\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ReadStatus(path); ok {
		t.Error("marker-less findings must not parse as a status")
	}
	if _, ok := ReadStatus(filepath.Join(dir, "absent.md")); ok {
		t.Error("missing file must not parse as a status")
	}
}
