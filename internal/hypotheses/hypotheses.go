// Package hypotheses is the falsifiable-experiment harness for the
// policy zoo (DESIGN.md §15). Every non-paper policy lands with a
// stated hypothesis, a deterministic experiment over pinned workload
// seeds, and a generated FINDINGS_<policy>.md recording whether the
// measurements SUPPORTED or REFUTED it. The harness is deliberately
// boring: an experiment is a pure function from an Env (scale, cache)
// to an Outcome (pass/fail checks plus an evidence table), and the
// findings renderer is byte-deterministic — no timestamps, no
// environment leakage — so a findings regression is a meaningful diff,
// not noise. cmd/soehyp is the CLI; ci/hypotheses_smoke.sh re-runs
// every experiment at QuickScale and fails on any status regression
// against the committed findings.
package hypotheses

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"soemt/internal/experiments"
	"soemt/internal/sim"
	"soemt/internal/stats"
)

// Env is everything an experiment may depend on. Workload seeds are
// pinned inside the experiments themselves (profile seeds plus fixed
// StartSeq offsets); the environment only chooses how long to run.
type Env struct {
	Ctx       context.Context
	ScaleName string // "tiny", "quick", "paper" — recorded in FINDINGS
	Scale     sim.Scale
	Cache     *experiments.Cache
	Watchdog  sim.Watchdog
}

// DefaultEnv returns a tiny-scale in-memory environment, the scale the
// committed FINDINGS are generated at.
func DefaultEnv() Env {
	return Env{
		Ctx:       context.Background(),
		ScaleName: "tiny",
		Scale:     sim.Scale{CacheWarm: 50_000, Warm: 50_000, Measure: 250_000, MaxCycles: 50_000_000},
		Cache:     experiments.NewMemCache(),
	}
}

// Check is one falsification criterion: the hypothesis survives only
// if every check passes.
type Check struct {
	Name   string
	Detail string // measured values, e.g. "grouped 0.456 >= plain 0.243"
	Pass   bool
}

// Outcome is what an experiment measured.
type Outcome struct {
	Checks []Check
	Table  *stats.Table // evidence table (the N-thread sweep)
	Notes  []string     // mechanism observations that are not criteria
}

// Supported reports whether every check passed. An outcome with no
// checks is vacuous and counts as refuted — an experiment must state
// at least one way it could fail.
func (o *Outcome) Supported() bool {
	if len(o.Checks) == 0 {
		return false
	}
	for _, c := range o.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

func (o *Outcome) check(name string, pass bool, format string, args ...interface{}) {
	o.Checks = append(o.Checks, Check{Name: name, Detail: fmt.Sprintf(format, args...), Pass: pass})
}

func (o *Outcome) note(format string, args ...interface{}) {
	o.Notes = append(o.Notes, fmt.Sprintf(format, args...))
}

// Experiment binds a policy to its falsifiable hypothesis.
type Experiment struct {
	Name       string // findings file key, e.g. "grouped-fairness"
	Policy     string // core.PolicyByName key under test
	Hypothesis string // one falsifiable sentence
	Method     []string
	Run        func(Env) (*Outcome, error)
}

// Experiments returns every registered experiment in deterministic
// order (the order FINDINGS and the smoke script iterate in).
func Experiments() []Experiment {
	return []Experiment{
		groupedFairnessExperiment(),
		wfqExperiment(),
		malthusianExperiment(),
	}
}

// ByName looks up a registered experiment.
func ByName(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// FindingsPath is the canonical location of an experiment's findings
// document under dir.
func FindingsPath(dir, name string) string {
	return filepath.Join(dir, "FINDINGS_"+name+".md")
}

const (
	statusSupported = "SUPPORTED"
	statusRefuted   = "REFUTED"
)

// statusLine is the machine-checked regression marker. It must stay
// greppable: ci/hypotheses_smoke.sh and ReadStatus both key on it.
func statusLine(o *Outcome, scaleName string) string {
	st := statusRefuted
	if o.Supported() {
		st = statusSupported
	}
	return fmt.Sprintf("**Status: %s** (scale=%s)", st, scaleName)
}

// WriteFindings renders the deterministic findings document.
func WriteFindings(w io.Writer, e Experiment, env Env, o *Outcome) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# FINDINGS — %s\n\n", e.Name)
	fmt.Fprintf(&b, "%s\n\n", statusLine(o, env.ScaleName))
	fmt.Fprintf(&b, "## Hypothesis\n\n%s\n\n", e.Hypothesis)
	fmt.Fprintf(&b, "## Method\n\n")
	for _, m := range e.Method {
		fmt.Fprintf(&b, "- %s\n", m)
	}
	fmt.Fprintf(&b, "\n## Checks\n\n")
	fmt.Fprintf(&b, "| check | result | measured |\n|---|---|---|\n")
	for _, c := range o.Checks {
		r := "PASS"
		if !c.Pass {
			r = "FAIL"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", c.Name, r, c.Detail)
	}
	if o.Table != nil {
		fmt.Fprintf(&b, "\n## Evidence\n\n```\n")
		o.Table.WriteTo(&b)
		fmt.Fprintf(&b, "```\n")
	}
	if len(o.Notes) > 0 {
		fmt.Fprintf(&b, "\n## Notes\n\n")
		for _, n := range o.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	fmt.Fprintf(&b, "\nRegenerate: `go run ./cmd/soehyp -run %s -scale %s -out hypotheses`\n", e.Name, env.ScaleName)
	_, err := w.Write(b.Bytes())
	return err
}

// ReadStatus extracts the SUPPORTED/REFUTED marker from a committed
// findings document. ok is false when the file has no marker (or does
// not exist) — callers treat that as a regression, not a skip.
func ReadStatus(path string) (status string, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "**Status: ") {
			continue
		}
		rest := strings.TrimPrefix(line, "**Status: ")
		if i := strings.Index(rest, "**"); i > 0 {
			return rest[:i], true
		}
	}
	return "", false
}
