package hypotheses

import (
	"fmt"

	"soemt/internal/core"
	"soemt/internal/experiments"
	"soemt/internal/sim"
	"soemt/internal/stats"
)

// fixedWall turns a fixed-work scale into a fixed-wall one: the
// per-thread Measure target becomes unreachable and the run truncates
// at a 20x cycle budget instead. Throughput and residency questions
// need this protocol — a fixed-work run always retires the same
// instructions and merely stretches the wall clock, which hides any
// policy that trades one thread's progress for aggregate speed.
func fixedWall(s sim.Scale) sim.Scale {
	s.MaxCycles = s.Measure * 20
	s.Measure = 1 << 40
	return s
}

// malthusianMix is the overthreaded workload: six threads, four of
// them missy (swim, mcf, art, vpr) plus two faster integer codes that
// can soak cycles freed by culling. art is the weakest thread and the
// expected demotion victim.
func malthusianMix() []string { return []string{"swim", "mcf", "art", "vpr", "gzip", "gcc"} }

func malthusianExperiment() Experiment {
	return Experiment{
		Name:   "malthusian",
		Policy: "malthusian",
		Hypothesis: "On an overthreaded six-thread missy mix under a fixed cycle " +
			"budget, Malthusian culling (demote the thread with the least window " +
			"progress when aggregate IPC sags below its peak, probe-reactivate " +
			"periodically) raises aggregate throughput at least 5% over event-only " +
			"SOE with all six threads resident, and the gain is paid for by the demoted thread's " +
			"instruction share — a throughput/fairness trade, not a free lunch.",
		Method: []string{
			"Mix swim:mcf:art:vpr:gzip:gcc (pinned profile seeds) — six threads is past the ~3-thread SOE saturation point, so residency is contended.",
			"Fixed-wall protocol: Measure unreachable, MaxCycles = 20x the scale's Measure; both arms see the identical cycle budget.",
			"Arms: event-only (all six stay active) vs Malthusian{MinAggFrac:0.98, ProbeEvery:16} — an aggressive configuration that keeps the cold set populated for most windows between reactivation probes.",
			"Aggregate throughput is Result.IPCTotal over the shared budget; the demotion signature is the weakest thread's falling share of retired instructions.",
			"CLI equivalent: soesim -threads swim,mcf,art,vpr,gzip,gcc -policy malthusian",
		},
		Run: runMalthusian,
	}
}

func runMalthusian(env Env) (*Outcome, error) {
	o := &Outcome{Table: stats.NewTable("policy", "thread", "instrs", "share", "visits")}
	sc := fixedWall(env.Scale)
	specs, err := experiments.MixSpecs(malthusianMix())
	if err != nil {
		return nil, err
	}

	run := func(policy core.Policy, label string) (*sim.Result, []float64, error) {
		m := sim.DefaultMachine()
		m.Controller.Policy = policy
		res, err := env.Cache.RunSpecContext(env.Ctx, sim.Spec{
			Machine: m, Threads: specs, Scale: sc, Watchdog: env.Watchdog,
		})
		if err != nil {
			return nil, nil, err
		}
		var total uint64
		for _, tr := range res.Threads {
			total += tr.Counters.Instrs
		}
		shares := make([]float64, len(res.Threads))
		for i, tr := range res.Threads {
			shares[i] = float64(tr.Counters.Instrs) / float64(total)
			o.Table.AddRow(label, tr.Name,
				fmt.Sprintf("%d", tr.Counters.Instrs),
				fmt.Sprintf("%.3f", shares[i]),
				fmt.Sprintf("%d", tr.Visits))
		}
		return res, shares, nil
	}

	base, baseShares, err := run(core.EventOnly{}, "event-only")
	if err != nil {
		return nil, err
	}
	cull, cullShares, err := run(core.Malthusian{MinAggFrac: 0.98, ProbeEvery: 16}, "malthusian")
	if err != nil {
		return nil, err
	}

	// The weakest thread under event-only is the expected victim.
	victim := 0
	for i, s := range baseShares {
		if s < baseShares[victim] {
			victim = i
		}
	}
	o.check("aggregate IPC rises >= 5%", cull.IPCTotal > 1.05*base.IPCTotal,
		"malthusian %.3f vs event-only %.3f (budget %d cycles)", cull.IPCTotal, base.IPCTotal, sc.MaxCycles)
	o.check("the weakest thread pays", cullShares[victim] < baseShares[victim],
		"%s share %.3f -> %.3f", malthusianMix()[victim], baseShares[victim], cullShares[victim])
	o.note("Culling can only help under a fixed budget: with mandatory fixed work " +
		"the demoted thread's backlog still gates completion. The harness states " +
		"the trade explicitly rather than claiming a universal win.")
	o.note(fmt.Sprintf("Victim identification is measured, not assumed: the weakest "+
		"event-only thread was %s.", malthusianMix()[victim]))
	return o, nil
}
