package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker
// timing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, 100*time.Millisecond, time.Second, 7, clk.Now)

	for i := 0; i < 2; i++ {
		if tripped := b.Failure(0); tripped {
			t.Fatalf("failure %d tripped the breaker, want trip on the 3rd", i+1)
		}
		if !b.Allow() {
			t.Fatalf("breaker refused traffic after %d failures (threshold 3)", i+1)
		}
	}
	if !b.Failure(0) {
		t.Fatal("3rd consecutive failure did not trip the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside its backoff")
	}
	st, rem := b.State()
	if st != BreakerOpen || rem <= 0 {
		t.Fatalf("state = %s rem=%s, want open with positive backoff", st, rem)
	}
	// Jitter keeps the backoff in [base/2, base).
	if rem < 50*time.Millisecond || rem >= 100*time.Millisecond {
		t.Fatalf("first backoff = %s, want within [50ms, 100ms)", rem)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b := newBreaker(3, time.Second, time.Minute, 1, newFakeClock().Now)
	b.Failure(0)
	b.Failure(0)
	b.Success()
	if tripped := b.Failure(0); tripped {
		t.Fatal("failure run survived an intervening success")
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 100*time.Millisecond, time.Second, 3, clk.Now)
	b.Failure(0)
	if b.Allow() {
		t.Fatal("open breaker admitted traffic")
	}
	clk.Advance(200 * time.Millisecond) // past any jittered backoff <= 100ms

	if !b.Allow() {
		t.Fatal("expired breaker refused the half-open probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// A failing probe re-opens with a doubled (jittered) backoff.
	if !b.Failure(0) {
		t.Fatal("failed half-open probe did not re-open the breaker")
	}
	_, rem := b.State()
	if rem < 100*time.Millisecond || rem >= 200*time.Millisecond {
		t.Fatalf("second backoff = %s, want within [100ms, 200ms) (doubled base, jittered)", rem)
	}

	// A succeeding probe closes it fully.
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("expired breaker refused the second probe")
	}
	b.Success()
	if st, _ := b.State(); st != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", st)
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker rate-limited traffic")
	}
}

func TestBreakerHonorsRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 100*time.Millisecond, time.Second, 9, clk.Now)
	// The node asked for 30s; the jittered exponential backoff (< 100ms)
	// must not probe earlier than that.
	b.Failure(30 * time.Second)
	_, rem := b.State()
	if rem != 30*time.Second {
		t.Fatalf("open duration = %s, want the node's Retry-After of 30s", rem)
	}
	clk.Advance(29 * time.Second)
	if b.Allow() {
		t.Fatal("breaker probed before the node's Retry-After elapsed")
	}
	clk.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused traffic after Retry-After elapsed")
	}
}

func TestBreakerBackoffDeterministicInSeed(t *testing.T) {
	rem := func(seed uint64) time.Duration {
		b := newBreaker(1, 100*time.Millisecond, time.Second, seed, newFakeClock().Now)
		b.Failure(0)
		_, r := b.State()
		return r
	}
	if rem(42) != rem(42) {
		t.Fatal("same seed produced different jittered backoffs")
	}
	if rem(1) == rem(2) && rem(3) == rem(1) {
		t.Fatal("distinct seeds produced identical backoffs — jitter looks broken")
	}
}
