package cluster

import (
	"sync"
	"time"

	"soemt/internal/rng"
)

// Breaker states.
const (
	BreakerClosed   = "closed"    // traffic flows, failures counted
	BreakerOpen     = "open"      // traffic refused until the backoff expires
	BreakerHalfOpen = "half-open" // exactly one probe request admitted
)

// Breaker is a per-node circuit breaker. It trips open after
// TripAfter consecutive failures, refuses traffic for a jittered
// exponentially-growing backoff (never shorter than the node's own
// Retry-After, when one was sent), then admits exactly one half-open
// probe; the probe's outcome closes the breaker or re-opens it with a
// doubled backoff. All methods are safe for concurrent use.
//
// The jitter is deterministic in (seed, trip index) — chaos tests
// replay bit-identically — and spans [1/2, 1) of the nominal backoff
// so a fleet of breakers tripped by the same dead node does not probe
// it in lockstep.
type Breaker struct {
	tripAfter int
	base, max time.Duration
	seed      uint64
	now       func() time.Time

	mu      sync.Mutex
	state   string
	fails   int // consecutive failures
	trips   uint64
	probing bool // a half-open probe is in flight
	until   time.Time
}

// newBreaker builds a breaker; zero parameters select the defaults
// (trip after 3, backoff 250ms..30s).
func newBreaker(tripAfter int, base, max time.Duration, seed uint64, now func() time.Time) *Breaker {
	if tripAfter <= 0 {
		tripAfter = 3
	}
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{tripAfter: tripAfter, base: base, max: max, seed: seed, now: now, state: BreakerClosed}
}

// Allow reports whether a request may be sent. An open breaker whose
// backoff has expired flips to half-open and admits exactly one probe;
// concurrent callers are refused until that probe resolves through
// Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful request: the breaker closes and the
// failure run and backoff exponent reset.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.trips = 0
	b.probing = false
}

// Failure records a failed request and returns true when this call
// tripped the breaker open. retryAfter is the node's own Retry-After
// (0 when none was sent); an opened breaker stays open at least that
// long — the node said when to come back, and hammering it sooner is
// exactly the overload cascade the gateway exists to prevent.
func (b *Breaker) Failure(retryAfter time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerOpen {
		return false
	}
	if b.state == BreakerHalfOpen || b.fails >= b.tripAfter {
		b.trips++
		d := b.backoffLocked()
		if retryAfter > d {
			d = retryAfter
		}
		b.state = BreakerOpen
		b.probing = false
		b.until = b.now().Add(d)
		return true
	}
	return false
}

// backoffLocked derives the jittered exponential backoff for the
// current trip count: base << (trips-1) capped at max, scaled into
// [1/2, 1) by the deterministic per-trip jitter.
func (b *Breaker) backoffLocked() time.Duration {
	d := b.base
	for i := uint64(1); i < b.trips && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	frac := 0.5 + rng.Float64At(rng.Sub(b.seed, "breaker"), b.trips)/2
	return time.Duration(float64(d) * frac)
}

// State returns the current state name and, for an open breaker, how
// long until the next half-open probe is admitted (0 otherwise).
func (b *Breaker) State() (string, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if rem := b.until.Sub(b.now()); rem > 0 {
			return BreakerOpen, rem
		}
		// Backoff expired; the next Allow will flip to half-open.
		return BreakerOpen, 0
	}
	return b.state, 0
}
