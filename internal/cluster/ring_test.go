package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossProcessesAndOrderings(t *testing.T) {
	nodes := []string{"http://n1:8081", "http://n2:8082", "http://n3:8083"}
	a := NewRing(nodes, 64)
	b := NewRing(nodes, 64) // a second "process" with the same config
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owners disagree between identically configured rings", key)
		}
		if !reflect.DeepEqual(a.Preference(key), b.Preference(key)) {
			t.Fatalf("key %q: preference lists disagree", key)
		}
	}
}

func TestRingPreferenceCoversAllNodesOnceOwnerFirst(t *testing.T) {
	nodes := []string{"http://n1:8081", "http://n2:8082", "http://n3:8083"}
	r := NewRing(nodes, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		pref := r.Preference(key)
		if len(pref) != len(nodes) {
			t.Fatalf("key %q: preference has %d entries, want %d", key, len(pref), len(nodes))
		}
		if pref[0] != r.Owner(key) {
			t.Fatalf("key %q: preference[0] = %s, owner = %s", key, pref[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("key %q: node %s appears twice in preference", key, n)
			}
			seen[n] = true
		}
	}
}

// Removing one node must move only the keys it owned: every other
// key's owner is unchanged. This is the property that keeps a node
// death from invalidating the surviving nodes' caches.
func TestRingNodeRemovalMovesOnlyItsKeys(t *testing.T) {
	full := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 64)
	minusN3 := NewRing([]string{"http://n1", "http://n2"}, 64)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("spec-%d", i)
		before := full.Owner(key)
		after := minusN3.Owner(key)
		if before == "http://n3" {
			moved++
			// Its new owner must be the next node in the full ring's
			// preference order — the deterministic successor.
			want := full.Preference(key)[1]
			if after != want {
				t.Fatalf("key %q: moved to %s, want deterministic successor %s", key, after, want)
			}
			continue
		}
		kept++
		if after != before {
			t.Fatalf("key %q: owner changed %s -> %s though its owner survived", key, before, after)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	r := NewRing(nodes, 64)
	counts := map[string]int{}
	const total = 3000
	for i := 0; i < total; i++ {
		counts[r.Owner(fmt.Sprintf("fp-%d", i))]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / total
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %s owns %.0f%% of keys — ring badly unbalanced: %v", n, frac*100, counts)
		}
	}
}

func TestRingDegenerateInputs(t *testing.T) {
	if o := NewRing(nil, 64).Owner("k"); o != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", o)
	}
	r := NewRing([]string{"http://a", "", "http://a"}, 8)
	if len(r.Nodes()) != 1 {
		t.Fatalf("dedup failed: %v", r.Nodes())
	}
	if o := r.Owner("k"); o != "http://a" {
		t.Fatalf("single-node ring owner = %q", o)
	}
}
