package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"soemt/internal/obs"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.StopProbes)
	return c
}

func TestProbesDriveHealthStates(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := testCluster(t, Config{Nodes: []string{ts.URL}, DeadAfter: 3, Registry: reg})

	ctx := context.Background()
	c.ProbeAll(ctx)
	if h := c.healthOf(ts.URL); h != Healthy {
		t.Fatalf("health after good probe = %s, want healthy", h)
	}

	healthy.Store(false) // e.g. the node started draining: healthz -> 503
	c.ProbeAll(ctx)
	if h := c.healthOf(ts.URL); h != Suspect {
		t.Fatalf("health after 1 failed probe = %s, want suspect", h)
	}
	c.ProbeAll(ctx)
	c.ProbeAll(ctx)
	if h := c.healthOf(ts.URL); h != Dead {
		t.Fatalf("health after 3 failed probes = %s, want dead", h)
	}
	if got := reg.Counter("cluster.probe_failures").Load(); got != 3 {
		t.Fatalf("cluster.probe_failures = %d, want 3", got)
	}

	healthy.Store(true) // recovery is immediate on the next good probe
	c.ProbeAll(ctx)
	if h := c.healthOf(ts.URL); h != Healthy {
		t.Fatalf("health after recovery probe = %s, want healthy", h)
	}
}

func TestCandidatesExcludeDeadAndPreferHealthy(t *testing.T) {
	nodes := []string{"http://n1", "http://n2", "http://n3"}
	c := testCluster(t, Config{Nodes: nodes})
	key := "somekey"
	pref := c.Preference(key)

	if got := c.Candidates(key); len(got) != 3 || got[0] != pref[0] {
		t.Fatalf("all-healthy candidates = %v, want full preference %v", got, pref)
	}

	// The owner going dead promotes the deterministic successor.
	c.MarkHealth(pref[0], Dead)
	got := c.Candidates(key)
	if len(got) != 2 || got[0] != pref[1] {
		t.Fatalf("candidates with dead owner = %v, want [%s %s]", got, pref[1], pref[2])
	}

	// A suspect node is still routable, but after healthy ones.
	c.MarkHealth(pref[0], Suspect)
	got = c.Candidates(key)
	if len(got) != 3 || got[0] != pref[1] || got[2] != pref[0] {
		t.Fatalf("candidates with suspect owner = %v, want suspect owner demoted to last", got)
	}
}

func TestRoundTripBreakerLifecycle(t *testing.T) {
	var mode atomic.Int32 // 0 = 500s, 1 = 200s
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := testCluster(t, Config{
		Nodes:       []string{ts.URL},
		TripAfter:   3,
		BaseBackoff: 20 * time.Millisecond,
		MaxBackoff:  40 * time.Millisecond,
		Registry:    reg,
	})
	ctx := context.Background()

	// Three 5xx in a row trip the breaker.
	for i := 0; i < 3; i++ {
		resp, err := c.RoundTrip(ctx, ts.URL, "GET", "/x", nil, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := reg.Counter("cluster.breaker_trips").Load(); got != 1 {
		t.Fatalf("cluster.breaker_trips = %d, want 1", got)
	}

	// While open: refused without dialing, with a retry hint.
	_, err := c.RoundTrip(ctx, ts.URL, "GET", "/x", nil, nil)
	var open *ErrBreakerOpen
	if !errors.As(err, &open) {
		t.Fatalf("request against open breaker returned %v, want ErrBreakerOpen", err)
	}
	if open.RetryAfter <= 0 {
		t.Fatalf("ErrBreakerOpen.RetryAfter = %s, want > 0", open.RetryAfter)
	}
	if st, _ := c.Breaker(ts.URL).State(); st != BreakerOpen {
		t.Fatalf("breaker state = %s, want open", st)
	}

	// After the backoff, the half-open probe goes through; a success
	// closes the breaker.
	mode.Store(1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := c.RoundTrip(ctx, ts.URL, "GET", "/x", nil, nil)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st, _ := c.Breaker(ts.URL).State(); st != BreakerClosed {
		t.Fatalf("breaker state after recovery = %s, want closed", st)
	}
}

func TestRoundTrip429SeedsBackoffWithRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := testCluster(t, Config{Nodes: []string{ts.URL}, TripAfter: 1, BaseBackoff: time.Millisecond})
	resp, err := c.RoundTrip(context.Background(), ts.URL, "POST", "/v1/run", []byte(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st, rem := c.Breaker(ts.URL).State()
	if st != BreakerOpen {
		t.Fatalf("breaker after 429 (TripAfter=1) = %s, want open", st)
	}
	// The open duration must honor the node's Retry-After (7s), not the
	// 1ms exponential backoff.
	if rem < 6*time.Second || rem > 7*time.Second {
		t.Fatalf("open duration = %s, want ~7s from Retry-After", rem)
	}
}

func TestSnapshotExportsBreakerAndHealth(t *testing.T) {
	reg := obs.NewRegistry()
	c := testCluster(t, Config{
		Self:     "http://n1",
		Nodes:    []string{"http://n1", "http://n2"},
		Registry: reg,
	})
	c.MarkHealth("http://n2", Dead)
	c.Breaker("http://n2").Failure(0)
	c.Breaker("http://n2").Failure(0)
	c.Breaker("http://n2").Failure(0)

	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d rows, want 2", len(snap))
	}
	byURL := map[string]NodeStatus{}
	for _, s := range snap {
		byURL[s.URL] = s
	}
	if !byURL["http://n1"].Self || byURL["http://n1"].Health != "healthy" {
		t.Fatalf("self row wrong: %+v", byURL["http://n1"])
	}
	n2 := byURL["http://n2"]
	if n2.Health != "dead" || n2.Breaker != BreakerOpen || n2.BreakerRetryMilli <= 0 {
		t.Fatalf("n2 row wrong: %+v", n2)
	}
	if got := reg.Gauge("cluster.breaker_open").Load(); got != 1 {
		t.Fatalf("cluster.breaker_open = %d, want 1", got)
	}
	if got := reg.Gauge("cluster.nodes_dead").Load(); got != 1 {
		t.Fatalf("cluster.nodes_dead = %d, want 1", got)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New(Config{Self: "http://me", Nodes: []string{"http://other"}}); err == nil {
		t.Fatal("self outside the node list accepted")
	}
}
