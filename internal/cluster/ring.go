// Package cluster is the distributed tier's robustness substrate: a
// consistent-hash ring over content-addressed spec fingerprints, node
// health states driven by /healthz probes, and per-node circuit
// breakers with jittered exponential backoff that honors Retry-After.
//
// The design target is *surviving partial failure*, not routing —
// routing is free because the fingerprint is already content-addressed
// (DESIGN.md §7). The paper's lesson (and Malthusian Locks', see
// PAPERS.md) shapes the policies: a greedy retry loop against a sick
// node starves everyone the way an unquota'd event-driven thread
// starves its neighbor, so breakers deliberately cull traffic to
// failing nodes and the backoff honors the node's own Retry-After the
// way Eq. 9 quotas honor the fairness target.
//
// The package deliberately knows nothing about soeserve or the
// experiment engine: it moves bytes to named nodes and reports
// outcomes. soeserve wires it to the peer cache tier
// (serve.Server.SetPeers) and soeproxy wires it to request routing
// (internal/proxy).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"soemt/internal/rng"
)

// Ring is an immutable consistent-hash ring: every node contributes
// VNodes points on a 64-bit circle, and a key is owned by the first
// point at or after its hash. Adding or removing one node moves only
// the keys that node owned — the property that keeps a node death from
// reshuffling the whole fleet's caches.
type Ring struct {
	nodes  []string // configured order, deduplicated
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// hash64 hashes a string to a ring position: FNV-1a finalized through
// the SplitMix64 mixer. FNV alone clusters similar short strings
// ("http://n1#0", "http://n1#1", …) into one arc of the circle; the
// mixer restores avalanche. Both halves are stable across processes
// and Go releases, which the cross-node routing agreement depends on.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return rng.Mix64(h.Sum64())
}

// NewRing builds a ring over the given node names (base URLs, by
// convention) with vnodes virtual points per node (<= 0 selects the
// default 64). Duplicate names are collapsed; order of first
// appearance is preserved and is the tie-break order, so every process
// configured with the same node list derives the same ring.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	for i, n := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's members in configured order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	p := r.Preference(key)
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

// Preference returns every node in ring order starting from key's
// owner: the deterministic failover sequence. Element 0 is the owner;
// when it is unavailable the caller walks down the list, and every
// process with the same node list walks the same way — which is what
// keeps a re-routed spec landing on ONE successor instead of
// scattering (and re-simulating) across the fleet.
func (r *Ring) Preference(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if !seen[pt.node] {
			seen[pt.node] = true
			out = append(out, r.nodes[pt.node])
		}
	}
	return out
}
