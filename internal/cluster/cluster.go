package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"soemt/internal/obs"
)

// Health is a node's probe-driven state.
type Health int

const (
	// Healthy nodes answered their latest /healthz probe (or have not
	// been probed yet — a fresh cluster assumes the best and lets the
	// data path correct it).
	Healthy Health = iota
	// Suspect nodes failed at least one recent probe; they are still
	// routed to (after healthy candidates) because a single dropped
	// probe must not amputate a live node.
	Suspect
	// Dead nodes failed DeadAfter consecutive probes and are excluded
	// from routing until a probe succeeds again.
	Dead
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Config parameterizes a Cluster. Nodes is required; everything else
// has defaults.
type Config struct {
	// Self is this process's own URL in the ring ("" for a pure client
	// such as soeproxy). Self is never probed or dialed.
	Self string
	// Nodes lists every member's base URL (including Self, when set).
	// All processes must agree on this list for routing to agree.
	Nodes []string
	// VNodes is the virtual points per node on the ring. Default 64.
	VNodes int
	// TripAfter is the consecutive-failure count that opens a node's
	// breaker. Default 3.
	TripAfter int
	// DeadAfter is the consecutive failed /healthz probes that mark a
	// node Dead (the first failure marks it Suspect). Default 3.
	DeadAfter int
	// BaseBackoff/MaxBackoff bound the breaker's jittered exponential
	// backoff. Defaults 250ms / 30s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// ProbeInterval spaces the /healthz probe rounds started by
	// StartProbes. Default 2s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request. Default 1s.
	ProbeTimeout time.Duration
	// RequestTimeout bounds one data-path request when the caller's ctx
	// carries no earlier deadline. Default 15s.
	RequestTimeout time.Duration
	// Seed makes breaker jitter deterministic. Default 1.
	Seed uint64
	// Transport is the HTTP transport for all cluster traffic; chaos
	// tests wrap it with faultinject.RoundTripper. Defaults to
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Registry receives cluster.* metrics (nil disables them).
	Registry *obs.Registry
	// Logf, if non-nil, receives state-transition log lines.
	Logf func(format string, args ...interface{})

	now func() time.Time // test hook
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.TripAfter <= 0 {
		c.TripAfter = 3
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// node is one tracked member.
type node struct {
	url     string
	breaker *Breaker

	mu        sync.Mutex
	health    Health
	probeFail int // consecutive failed probes
	lastErr   string
	lastProbe time.Time
}

// ErrBreakerOpen is returned by RoundTrip when the target node's
// breaker refuses the request; RetryAfter is how long until the
// breaker admits its next half-open probe.
type ErrBreakerOpen struct {
	Node       string
	RetryAfter time.Duration
}

func (e *ErrBreakerOpen) Error() string {
	return fmt.Sprintf("cluster: breaker open for %s (retry in %s)", e.Node, e.RetryAfter.Round(time.Millisecond))
}

// ErrNoCandidates is returned by routing when every node in a key's
// preference list is dead or breaker-refused.
var ErrNoCandidates = errors.New("cluster: no routable node")

// Cluster tracks a fixed set of nodes: ring placement, health, and
// per-node breakers. Construct with New; all methods are safe for
// concurrent use.
type Cluster struct {
	cfg    Config
	ring   *Ring
	client *http.Client

	mu    sync.Mutex
	nodes map[string]*node

	probeWG   sync.WaitGroup
	probeStop chan struct{}
	probeOnce sync.Once

	tripsC      *obs.Counter
	probeFailsC *obs.Counter
	openG       *obs.Gauge
	healthyG    *obs.Gauge
	suspectG    *obs.Gauge
	deadG       *obs.Gauge
}

// New builds a Cluster over cfg.Nodes. At least one node other than
// Self is not required — a single-node "cluster" routes everything to
// itself — but an empty node list is an error.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring := NewRing(cfg.Nodes, cfg.VNodes)
	if len(ring.Nodes()) == 0 {
		return nil, errors.New("cluster: no nodes configured")
	}
	if cfg.Self != "" {
		found := false
		for _, n := range ring.Nodes() {
			if n == cfg.Self {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: self %q is not in the node list", cfg.Self)
		}
	}
	c := &Cluster{
		cfg:       cfg,
		ring:      ring,
		client:    &http.Client{Transport: cfg.Transport},
		nodes:     make(map[string]*node, len(ring.Nodes())),
		probeStop: make(chan struct{}),

		tripsC:      cfg.Registry.Counter("cluster.breaker_trips"),
		probeFailsC: cfg.Registry.Counter("cluster.probe_failures"),
		openG:       cfg.Registry.Gauge("cluster.breaker_open"),
		healthyG:    cfg.Registry.Gauge("cluster.nodes_healthy"),
		suspectG:    cfg.Registry.Gauge("cluster.nodes_suspect"),
		deadG:       cfg.Registry.Gauge("cluster.nodes_dead"),
	}
	for i, u := range ring.Nodes() {
		c.nodes[u] = &node{
			url:     u,
			breaker: newBreaker(cfg.TripAfter, cfg.BaseBackoff, cfg.MaxBackoff, cfg.Seed+uint64(i), cfg.now),
		}
	}
	c.publishHealthGauges()
	return c, nil
}

func (c *Cluster) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Self returns this process's own URL ("" for pure clients).
func (c *Cluster) Self() string { return c.cfg.Self }

// Nodes returns the configured members in ring order.
func (c *Cluster) Nodes() []string { return c.ring.Nodes() }

// Owner returns the node owning key on the ring.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Preference returns key's deterministic failover sequence (owner
// first), ignoring health — see Candidates for the filtered view.
func (c *Cluster) Preference(key string) []string { return c.ring.Preference(key) }

// Candidates returns key's preference list filtered for routing: dead
// nodes are dropped, and healthy nodes are tried before suspect ones
// (stable within each class, so the failover target for a given key
// and health configuration is deterministic). Breakers are NOT
// consulted here — admission to a specific node happens in RoundTrip,
// where the half-open single-probe semantics need the request to be
// imminent.
func (c *Cluster) Candidates(key string) []string {
	pref := c.ring.Preference(key)
	healthy := make([]string, 0, len(pref))
	var suspect []string
	for _, u := range pref {
		switch c.healthOf(u) {
		case Healthy:
			healthy = append(healthy, u)
		case Suspect:
			suspect = append(suspect, u)
		}
	}
	return append(healthy, suspect...)
}

func (c *Cluster) node(url string) *node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[url]
}

func (c *Cluster) healthOf(url string) Health {
	n := c.node(url)
	if n == nil {
		return Dead
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.health
}

// retryAfterFrom parses a Retry-After header carrying delay seconds
// (the only form this fleet emits).
func retryAfterFrom(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// RoundTrip sends one request to a specific node, with breaker
// admission and outcome bookkeeping:
//
//   - a refusing breaker returns *ErrBreakerOpen without dialing;
//   - transport errors and 5xx responses count as failures (trips
//     after TripAfter in a row) — the 5xx response is still returned
//     to the caller alongside a nil error so it can relay or retry;
//   - 429/503 count as failures too, seeding the breaker's open
//     duration with the node's own Retry-After: an overloaded node
//     asked the fleet to back off, and the breaker is how the gateway
//     keeps that promise (Malthusian shedding — culling traffic to a
//     saturated node preserves aggregate throughput);
//   - everything else (2xx, 404, 410, other 4xx) counts as a success:
//     the node is alive and serving.
//
// body may be nil; a non-nil body is re-readable by construction
// (bytes, not a stream) so callers can resend it to another node.
func (c *Cluster) RoundTrip(ctx context.Context, nodeURL, method, path string, body []byte, hdr http.Header) (*http.Response, error) {
	n := c.node(nodeURL)
	if n == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", nodeURL)
	}
	if !n.breaker.Allow() {
		_, rem := n.breaker.State()
		return nil, &ErrBreakerOpen{Node: nodeURL, RetryAfter: rem}
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, nodeURL+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.client.Do(req)
	switch {
	case err != nil:
		c.noteFailure(n, 0, err.Error())
		return nil, err
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		c.noteFailure(n, retryAfterFrom(resp), resp.Status)
		return resp, nil
	default:
		n.breaker.Success()
		return resp, nil
	}
}

func (c *Cluster) noteFailure(n *node, retryAfter time.Duration, cause string) {
	if n.breaker.Failure(retryAfter) {
		c.tripsC.Inc()
		_, rem := n.breaker.State()
		c.logf("cluster: breaker for %s tripped open (%s): %s", n.url, rem.Round(time.Millisecond), cause)
	}
}

// ---- health probing ----

// ProbeAll runs one /healthz round over every node except Self,
// sequentially, and updates health states: success → Healthy, failure
// → Suspect, DeadAfter consecutive failures → Dead. A node's /healthz
// answers 503 while draining, so a draining peer organically leaves
// the routable set before it stops accepting work.
func (c *Cluster) ProbeAll(ctx context.Context) {
	for _, u := range c.ring.Nodes() {
		if u == c.cfg.Self {
			continue
		}
		c.probeOne(ctx, u)
	}
	c.publishHealthGauges()
}

func (c *Cluster) probeOne(ctx context.Context, url string) {
	n := c.node(url)
	if n == nil {
		return
	}
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		c.noteProbe(n, err)
		return
	}
	resp, err := c.client.Do(req)
	if err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("healthz: %s", resp.Status)
		}
	}
	c.noteProbe(n, err)
}

func (c *Cluster) noteProbe(n *node, err error) {
	n.mu.Lock()
	prev := n.health
	n.lastProbe = c.cfg.now()
	if err == nil {
		n.health = Healthy
		n.probeFail = 0
		n.lastErr = ""
	} else {
		n.probeFail++
		n.lastErr = err.Error()
		if n.probeFail >= c.cfg.DeadAfter {
			n.health = Dead
		} else {
			n.health = Suspect
		}
	}
	now := n.health
	n.mu.Unlock()
	if err != nil {
		c.probeFailsC.Inc()
	}
	if prev != now {
		c.logf("cluster: node %s %s -> %s%s", n.url, prev, now, causeSuffix(err))
	}
}

func causeSuffix(err error) string {
	if err == nil {
		return ""
	}
	return " (" + err.Error() + ")"
}

// StartProbes begins the background probe loop (one round immediately,
// then every ProbeInterval). Stop it with StopProbes; starting twice
// is a no-op.
func (c *Cluster) StartProbes(ctx context.Context) {
	c.probeOnce.Do(func() {
		c.probeWG.Add(1)
		go func() {
			defer c.probeWG.Done()
			c.ProbeAll(ctx)
			t := time.NewTicker(c.cfg.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.ProbeAll(ctx)
				case <-c.probeStop:
					return
				case <-ctx.Done():
					return
				}
			}
		}()
	})
}

// StopProbes stops the background probe loop and waits for it to exit.
// Safe to call without StartProbes and safe to call twice.
func (c *Cluster) StopProbes() {
	select {
	case <-c.probeStop:
	default:
		close(c.probeStop)
	}
	c.probeWG.Wait()
}

// ---- status export ----

// NodeStatus is one node's row in Snapshot, shaped for /status JSON
// and `soeproxy -status`.
type NodeStatus struct {
	URL               string `json:"url"`
	Self              bool   `json:"self,omitempty"`
	Health            string `json:"health"`
	Breaker           string `json:"breaker"`
	BreakerRetryMilli int64  `json:"breaker_retry_ms,omitempty"`
	ConsecProbeFails  int    `json:"consecutive_probe_failures,omitempty"`
	LastError         string `json:"last_error,omitempty"`
	LastProbe         string `json:"last_probe,omitempty"`
}

// Snapshot returns every node's health and breaker state (sorted by
// URL) and refreshes the cluster.* gauges as a side effect, so a
// /metrics scrape that follows a Snapshot sees current values.
func (c *Cluster) Snapshot() []NodeStatus {
	c.mu.Lock()
	nodes := make([]*node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].url < nodes[j].url })

	out := make([]NodeStatus, 0, len(nodes))
	var open int64
	for _, n := range nodes {
		st, rem := n.breaker.State()
		if st == BreakerOpen {
			open++
		}
		n.mu.Lock()
		row := NodeStatus{
			URL:               n.url,
			Self:              n.url == c.cfg.Self,
			Health:            n.health.String(),
			Breaker:           st,
			BreakerRetryMilli: rem.Milliseconds(),
			ConsecProbeFails:  n.probeFail,
			LastError:         n.lastErr,
		}
		if !n.lastProbe.IsZero() {
			row.LastProbe = n.lastProbe.Format(time.RFC3339)
		}
		n.mu.Unlock()
		out = append(out, row)
	}
	c.openG.Set(open)
	c.publishHealthGauges()
	return out
}

func (c *Cluster) publishHealthGauges() {
	var h, s, d int64
	c.mu.Lock()
	for _, n := range c.nodes {
		n.mu.Lock()
		switch n.health {
		case Healthy:
			h++
		case Suspect:
			s++
		default:
			d++
		}
		n.mu.Unlock()
	}
	c.mu.Unlock()
	c.healthyG.Set(h)
	c.suspectG.Set(s)
	c.deadG.Set(d)
}

// MarkHealth force-sets a node's health (tests and operational
// overrides).
func (c *Cluster) MarkHealth(url string, h Health) {
	n := c.node(url)
	if n == nil {
		return
	}
	n.mu.Lock()
	n.health = h
	if h == Healthy {
		n.probeFail = 0
		n.lastErr = ""
	}
	n.mu.Unlock()
	c.publishHealthGauges()
}

// Breaker exposes a node's breaker (nil for unknown nodes); the proxy
// uses it to derive deterministic Retry-After values when shedding.
func (c *Cluster) Breaker(url string) *Breaker {
	n := c.node(url)
	if n == nil {
		return nil
	}
	return n.breaker
}
