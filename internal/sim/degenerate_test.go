package sim

import (
	"encoding/json"
	"math"
	"testing"

	"soemt/internal/core"
	"soemt/internal/workload"
)

// TestDegenerateSpecsNeverProduceNaN pins the division guards: a
// degenerate run must either fail validation or produce a Result whose
// every float is finite. NaN/Inf would poison the CSV exporter and —
// because encoding/json refuses NaN — fail the persistent result
// cache's marshal, so finiteness is asserted both directly and via
// json.Marshal.
func TestDegenerateSpecsNeverProduceNaN(t *testing.T) {
	m := DefaultMachine()
	m.Controller.MissLat = 0 // extreme but legal: Eq. 13 denominator loses its constant

	t.Run("zero-measure-rejected", func(t *testing.T) {
		spec := Spec{
			Machine: m,
			Threads: []ThreadSpec{{Profile: workload.MustByName("gcc"), Slot: 0}},
			Scale:   Scale{Measure: 0},
		}
		if _, err := Run(spec); err == nil {
			t.Fatal("zero measurement target must fail validation")
		}
	})

	t.Run("immediate-truncation-finite", func(t *testing.T) {
		spec := Spec{
			Machine: m,
			Threads: []ThreadSpec{
				{Profile: workload.MustByName("swim"), Slot: 0},
				{Profile: workload.MustByName("mcf"), Slot: 1},
			},
			// MaxCycles 1 truncates both phases before anything retires:
			// 0 instructions, 0 running cycles, 0 misses, 0 visits.
			Scale: Scale{CacheWarm: 1000, Warm: 1000, Measure: 1000, MaxCycles: 1},
		}
		spec.Machine.Controller.Policy = core.Fairness{F: 1}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Truncated {
			t.Fatal("expected a truncated run")
		}
		assertFinite(t, "IPCTotal", res.IPCTotal)
		assertFinite(t, "ForcedPer1k", res.ForcedPer1k())
		for _, th := range res.Threads {
			assertFinite(t, th.Name+".IPC", th.IPC)
			assertFinite(t, th.Name+".EstIPCST", th.EstIPCST)
			assertFinite(t, th.Name+".IPM", th.IPM)
			assertFinite(t, th.Name+".CPM", th.CPM)
			assertFinite(t, th.Name+".AvgVisit", th.AvgVisit)
		}
		if _, err := json.Marshal(res); err != nil {
			t.Fatalf("result not cacheable: %v", err)
		}
	})
}

func assertFinite(t *testing.T, what string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, must be finite", what, v)
	}
}
