package sim

import (
	"encoding/json"
	"fmt"
)

// FingerprintJSON returns a canonical JSON encoding of everything that
// determines a run's outcome: the machine configuration, the switch
// policy (by name and parameters, since distinct policies can share a
// parameter shape), the thread specs, and the measurement scale.
// Spec.Watchdog, Spec.Engine and Spec.CycleByCycle are deliberately
// excluded: they bound or slow execution but never alter a produced
// result, so cached results remain valid across watchdog settings and
// engine choices.
//
// Simulations are pure functions of this payload, so equal payloads
// imply bit-identical Results. encoding/json emits struct fields in
// declaration order and floats in shortest-round-trip form, so the
// encoding is stable for a given schema version; callers hash it
// together with a schema-version string to form cache keys (see
// internal/experiments.Fingerprint).
func (s Spec) FingerprintJSON() ([]byte, error) {
	if s.Machine.Controller.Policy == nil {
		return nil, fmt.Errorf("sim: fingerprint: nil controller policy")
	}
	doc := struct {
		Pipeline   interface{}
		Memory     interface{}
		Controller interface{}
		PolicyName string
		Threads    []ThreadSpec
		Scale      Scale
	}{
		Pipeline:   s.Machine.Pipeline,
		Memory:     s.Machine.Memory,
		Controller: s.Machine.Controller,
		PolicyName: s.Machine.Controller.Policy.Name(),
		Threads:    s.Threads,
		Scale:      s.Scale,
	}
	return json.Marshal(doc)
}
