package sim

import (
	"fmt"

	"soemt/internal/stats"
)

// Table3 renders the simulated machine parameters as a table, the
// equivalent of the paper's Table 3.
func Table3(m MachineConfig) *stats.Table {
	t := stats.NewTable("parameter", "value")
	p, h, c := m.Pipeline, m.Memory, m.Controller
	add := func(k, v string) { t.AddRow(k, v) }
	add("fetch/rename/retire width", fmt.Sprintf("%d / %d / %d", p.FetchWidth, p.RenameWidth, p.RetireWidth))
	add("ROB / RS", fmt.Sprintf("%d / %d", p.ROBSize, p.RSSize))
	add("load / store buffers", fmt.Sprintf("%d / %d", p.LoadBufSize, p.StoreBufSize))
	add("branch predictor", fmt.Sprintf("tournament, %d entries, %d-bit history", p.BranchEntries, p.HistoryBits))
	add("BTB / RAS", fmt.Sprintf("%d / %d", p.BTBEntries, p.RASDepth))
	cache := func(cc interface {
		Lines() int
	}, name string, sizeKB, ways, lat int) {
		add(name, fmt.Sprintf("%d KiB, %d-way, 64B lines, %d-cycle", sizeKB, ways, lat))
	}
	cache(h.L1I, "L1 instruction cache", h.L1I.SizeKB, h.L1I.Ways, h.L1I.Latency)
	cache(h.L1D, "L1 data cache", h.L1D.SizeKB, h.L1D.Ways, h.L1D.Latency)
	cache(h.L2, "L2 unified cache", h.L2.SizeKB, h.L2.Ways, h.L2.Latency)
	add("ITLB / DTLB", fmt.Sprintf("%d / %d entries, 4 KiB pages", h.ITLB.Entries, h.DTLB.Entries))
	add("bus", fmt.Sprintf("pipelined, %d-cycle occupancy", h.BusOccupancy))
	add("memory latency", fmt.Sprintf("%d cycles (constant)", h.MemLatency))
	add("MSHRs", fmt.Sprintf("%d", h.MSHRs))
	add("thread switch drain", fmt.Sprintf("%d cycles", c.DrainCycles))
	add("sampling period Δ", fmt.Sprintf("%d cycles", c.Delta))
	add("max cycles quota", fmt.Sprintf("%d cycles", c.MaxCyclesQuota))
	add("assumed Miss_lat", fmt.Sprintf("%.0f cycles", c.MissLat))
	return t
}
